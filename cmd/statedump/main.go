// statedump inspects persistent dormancy-state files — the compiler-state
// analogue of `nm` for objects.
//
//	statedump path/to/unit.state
//	statedump -v path/to/unit.state     per-slot records
package main

import (
	"flag"
	"fmt"
	"os"

	"statefulcc/internal/state"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "statedump:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("statedump", flag.ContinueOnError)
	verbose := fs.Bool("v", false, "print per-slot records")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("usage: statedump [-v] <file.state>...")
	}
	for _, path := range fs.Args() {
		st, err := state.Load(path)
		if err != nil {
			return err
		}
		if st == nil {
			return fmt.Errorf("%s: no such file", path)
		}
		size, _ := state.FileSize(st)
		fmt.Printf("%s:\n  unit          %s\n  pipeline hash %016x\n  functions     %d\n  records       %d\n  size          %d bytes\n",
			path, st.Unit, st.PipelineHash, len(st.Funcs), st.RecordCount(), size)
		if !*verbose {
			continue
		}
		for name, fsRec := range st.Funcs {
			fmt.Printf("  func %s:\n", name)
			for i, r := range fsRec.Slots {
				if !fsRec.Seen[i] {
					continue
				}
				verdict := "dormant"
				if r.Changed {
					verdict = "active"
				}
				fmt.Printf("    slot %2d: %-7s hash=%016x cost=%s\n", i, verdict, r.InputHash, fmtNS(r.CostNS))
			}
		}
	}
	return nil
}

func fmtNS(ns int64) string {
	switch {
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
