// benchgen materializes the synthetic benchmark projects (and, optionally,
// simulated commit histories) to disk, so they can be inspected or driven
// through minibuild by hand.
//
//	benchgen -out ./bench-projects                  write the standard suite
//	benchgen -out ./p -project mathkit -commits 5   one project + history
//	benchgen -list                                  show available profiles
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"statefulcc/internal/project"
	"statefulcc/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchgen", flag.ContinueOnError)
	out := fs.String("out", "bench-projects", "output directory")
	projectName := fs.String("project", "", "generate only the named profile")
	commits := fs.Int("commits", 0, "also write N simulated commits as commit-XX/ subdirectories")
	seed := fs.Int64("seed", 1, "history seed")
	list := fs.Bool("list", false, "list available profiles")
	if err := fs.Parse(args); err != nil {
		return err
	}

	suite := workload.StandardSuite()
	if *list {
		fmt.Println("available profiles:")
		for _, p := range suite {
			snap := workload.Generate(p)
			fmt.Printf("  %-12s %3d files  %6d lines\n", p.Name, len(snap), snap.Lines())
		}
		return nil
	}

	for _, p := range suite {
		if *projectName != "" && p.Name != *projectName {
			continue
		}
		base := workload.Generate(p)
		dir := filepath.Join(*out, p.Name)
		if err := project.WriteDir(dir, base); err != nil {
			return err
		}
		fmt.Printf("wrote %s: %d files, %d lines\n", dir, len(base), base.Lines())

		if *commits > 0 {
			hist := workload.GenerateHistory(base, p.Seed^*seed, *commits, workload.DefaultCommitOptions())
			for i, snap := range hist.Commits {
				cdir := filepath.Join(*out, p.Name+"-history", fmt.Sprintf("commit-%02d", i+1))
				if err := project.WriteDir(cdir, snap); err != nil {
					return err
				}
				fmt.Printf("  commit %02d: %d edit(s)", i+1, len(hist.Edits[i]))
				for _, e := range hist.Edits[i] {
					fmt.Printf(" [%s %s/%s]", e.Kind, e.Unit, e.Func)
				}
				fmt.Println()
			}
		}
	}
	return nil
}
