// minicc is the MiniC compiler driver — the per-file tool a build system
// invokes. It compiles one or more source files, optionally links and runs
// them, and exposes the stateful architecture through flags:
//
//	minicc file.mc...                 compile and link (stateless)
//	minicc -mode stateful -state-dir .mcstate file.mc...
//	                                  stateful compilation with persistent
//	                                  dormancy records
//	minicc -run file.mc...            execute the linked program
//	minicc -emit-ir file.mc           print optimized IR
//	minicc -stats file.mc             print pipeline statistics
//	minicc -trace out.json file.mc    write a Chrome trace_event profile
//	minicc -metrics file.mc           print the counters block
//	minicc -O0|-O1|-O2 ...            pipeline selection
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"statefulcc/internal/buildsys"
	"statefulcc/internal/codegen"
	"statefulcc/internal/compiler"
	"statefulcc/internal/core"
	"statefulcc/internal/fingerprint"
	"statefulcc/internal/footprint"
	"statefulcc/internal/obs"
	"statefulcc/internal/passes"
	"statefulcc/internal/state"
	"statefulcc/internal/vm"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "minicc:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("minicc", flag.ContinueOnError)
	mode := fs.String("mode", "stateless", "compilation policy: stateless|stateful|predictive|fullcache")
	stateDir := fs.String("state-dir", "", "directory for persistent dormancy state (stateful modes)")
	emitIR := fs.Bool("emit-ir", false, "print optimized IR instead of producing a program")
	emitAsm := fs.Bool("emit-asm", false, "print disassembled bytecode instead of producing a program")
	stats := fs.Bool("stats", false, "print pipeline statistics per unit")
	runProg := fs.Bool("run", false, "execute the linked program")
	o0 := fs.Bool("O0", false, "disable optimization")
	o1 := fs.Bool("O1", false, "quick pipeline")
	o2 := fs.Bool("O2", true, "standard pipeline (default)")
	verifyIR := fs.Bool("verify-ir", false, "verify IR after every pass")
	verifyState := fs.Bool("verify-state", false, "re-run skipped passes and cross-check dormancy")
	footprintOn := fs.Bool("footprint", false, "record each unit's dependency footprint on its persisted state (inspect with `minibuild deps`)")
	var export obs.CLIExport
	export.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	files := fs.Args()
	if len(files) == 0 {
		fs.Usage()
		return fmt.Errorf("no input files")
	}

	var pipeline []string
	switch {
	case *o0:
		pipeline = []string{}
	case *o1:
		pipeline = passes.QuickPipeline
	case *o2:
		pipeline = passes.StandardPipeline
	}
	// An empty pipeline needs at least a placeholder slot for the driver;
	// use mem2reg alone so codegen sees SSA-ready IR shape (it handles
	// memory form fine too, but -O0 means "minimal", not "none").
	if len(pipeline) == 0 {
		pipeline = []string{"mem2reg"}
	}

	cmode, err := parseMode(*mode)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	comp, err := compiler.New(compiler.Options{
		Pipeline:    pipeline,
		Mode:        cmode,
		VerifyIR:    *verifyIR,
		VerifySkips: *verifyState,
		Obs:         &obs.Sink{Tracer: export.Tracer(), Pass: reg.Pass(), TID: 1},
	})
	if err != nil {
		return err
	}

	var objects []*codegen.Object
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		unit := filepath.ToSlash(file)

		var st *core.UnitState
		if *stateDir != "" {
			st, err = state.Load(statePathFor(*stateDir, unit))
			if err != nil {
				fmt.Fprintf(os.Stderr, "minicc: discarding unreadable state for %s: %v\n", unit, err)
				st = nil
			}
		}

		res, err := comp.CompileUnit(unit, src, st)
		if err != nil {
			return err
		}
		if *footprintOn && res.State != nil {
			// minicc has no build-system seam, so the footprint holds the
			// invalidating and link-scope entries only (no advisory file
			// reads): source bytes, pipeline identity, unresolved symbols.
			tr := footprint.NewTrace(unit)
			tr.AddSource(unit, src)
			tr.AddPipeline(pipeline)
			buildsys.RecordObjectDeps(tr, res.Object)
			res.State.Footprint = tr.Finish(buildsys.ContentHash(src))
		}
		if *stateDir != "" && res.State != nil {
			if err := state.Save(statePathFor(*stateDir, unit), res.State); err != nil {
				fmt.Fprintf(os.Stderr, "minicc: saving state for %s: %v\n", unit, err)
			}
		}
		if *emitIR {
			fmt.Println(res.Module.String())
		}
		if *emitAsm {
			fmt.Println(codegen.DisassembleObject(res.Object))
		}
		if *stats && res.Stats != nil {
			fmt.Printf("--- %s ---\n%s", unit, res.Stats)
		}
		objects = append(objects, res.Object)
	}

	if err := export.Export(os.Stdout, os.Stderr, reg.Snapshot()); err != nil {
		return err
	}

	if *emitIR || *emitAsm {
		return nil
	}
	prog, err := codegen.Link(objects)
	if err != nil {
		return err
	}
	fmt.Printf("linked %d unit(s): %d functions, %d global words, entry %q\n",
		len(objects), len(prog.Funcs), prog.GlobalWords, "main")

	if *runProg {
		res, err := vm.Run(prog, vm.Config{Output: os.Stdout})
		if err != nil {
			return err
		}
		if res.ExitValue != 0 {
			fmt.Fprintf(os.Stderr, "program exited with %d\n", res.ExitValue)
		}
	}
	return nil
}

func parseMode(s string) (compiler.Mode, error) {
	switch strings.ToLower(s) {
	case "stateless":
		return compiler.ModeStateless, nil
	case "stateful":
		return compiler.ModeStateful, nil
	case "predictive":
		return compiler.ModePredictive, nil
	case "fullcache":
		return compiler.ModeFullCache, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", s)
	}
}

func statePathFor(dir, unit string) string {
	return filepath.Join(dir, fmt.Sprintf("%016x.state", fingerprint.Strings([]string{unit})))
}
