// experiments regenerates every table and figure of the evaluation
// (DESIGN.md §5) and prints them as text or markdown. The EXPERIMENTS.md in
// the repository root is produced by:
//
//	go run ./cmd/experiments -md > EXPERIMENTS.md.fragment
//
//	experiments                 run everything (standard suite)
//	experiments -exp t2,f1      selected experiments
//	experiments -quick          two-project suite, short histories
//	experiments -commits 30     longer edit histories
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"statefulcc/internal/bench"
	"statefulcc/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	exps := fs.String("exp", "all", "comma-separated experiment ids (t1,f1,f2,t2,f3,f4,t3,t4,f5,t5,f6,f7,t6) or 'all'")
	quick := fs.Bool("quick", false, "small suite and short histories (fast)")
	commits := fs.Int("commits", 20, "simulated commits per project")
	repeats := fs.Int("repeats", 1, "timing repeats per history (min kept)")
	md := fs.Bool("md", false, "emit markdown instead of text tables")
	if err := fs.Parse(args); err != nil {
		return err
	}

	suite := workload.StandardSuite()
	cfg := bench.Config{Commits: *commits, Repeats: *repeats}
	if *quick {
		suite = workload.QuickSuite()
		if cfg.Commits > 6 {
			cfg.Commits = 6
		}
	}
	// The sweep/ablation experiments use one mid-sized project.
	sweepProject := suite[len(suite)/2]

	want := map[string]bool{}
	for _, id := range strings.Split(strings.ToLower(*exps), ",") {
		want[strings.TrimSpace(id)] = true
	}
	all := want["all"]

	type experiment struct {
		id  string
		run func() (*bench.Table, error)
	}
	list := []experiment{
		{"t1", func() (*bench.Table, error) { return bench.Table1Characteristics(suite) }},
		{"f1", func() (*bench.Table, error) { return bench.Figure1DormantFraction(suite, cfg) }},
		{"f2", func() (*bench.Table, error) { return bench.Figure2DormancyPersistence(suite, cfg) }},
		{"t2", func() (*bench.Table, error) { return bench.Table2EndToEnd(suite, cfg) }},
		{"f3", func() (*bench.Table, error) { return bench.Figure3PerFileCDF(suite, cfg) }},
		{"f4", func() (*bench.Table, error) { return bench.Figure4EditSize(sweepProject, cfg) }},
		{"t3", func() (*bench.Table, error) { return bench.Table3StateOverhead(suite, cfg) }},
		{"t4", func() (*bench.Table, error) { return bench.Table4Correctness(suite, cfg) }},
		{"f5", func() (*bench.Table, error) { return bench.Figure5PerPassSavings(suite, cfg) }},
		{"t5", func() (*bench.Table, error) { return bench.Table5VsFullCache(suite, cfg) }},
		{"f6", func() (*bench.Table, error) { return bench.Figure6Ablation(sweepProject, cfg) }},
		{"f7", func() (*bench.Table, error) { return bench.Figure7Parallelism(sweepProject, cfg) }},
		{"t6", func() (*bench.Table, error) { return bench.Table6PipelineLength(sweepProject, cfg) }},
	}

	for _, e := range list {
		if !all && !want[e.id] {
			continue
		}
		start := time.Now()
		tab, err := e.run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
		if *md {
			fmt.Println(tab.Markdown())
		} else {
			fmt.Println(tab)
		}
		fmt.Fprintf(os.Stderr, "[%s done in %.1fs]\n", e.id, time.Since(start).Seconds())
	}
	return nil
}
