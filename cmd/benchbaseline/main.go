// benchbaseline records the repository's performance trajectory: it runs
// the T2-style stateless-vs-stateful incremental comparison on a few small
// standard-suite profiles and writes the result as JSON (committed as
// BENCH_baseline.json at the repo root), so later changes have a baseline
// to compare against.
//
//	go run ./cmd/benchbaseline -out BENCH_baseline.json
//
// With -matrix it instead emits the multi-core latency matrix (committed
// as BENCH_pr6.json): a workers × profile grid of p50/p99 incremental
// latency, skip rate, fingerprint cost and allocation churn, plus
// old-vs-new fingerprint and state-layout comparisons.
//
//	go run ./cmd/benchbaseline -matrix -out BENCH_pr6.json
//
// -min-skip-rate is the skip-rate guard: when any measured profile (or
// matrix cell) skips less than the floor, the run exits non-zero — a CI
// tripwire against regressions that silently destroy the stateful win.
// Both the floor and the measured minimum are stamped into the JSON.
// -cpuprofile/-memprofile write pprof profiles of the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http/httptest"
	"os"
	"os/exec"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"statefulcc/internal/bench"
	"statefulcc/internal/buildsys"
	"statefulcc/internal/cas"
	"statefulcc/internal/compiler"
	"statefulcc/internal/obs"
	"statefulcc/internal/project"
	"statefulcc/internal/workload"
)

// RunMeta stamps the environment a BENCH_*.json was measured in, so two
// documents are only ever compared knowing whether the host or revision
// moved under them.
type RunMeta struct {
	GoVersion   string `json:"go_version"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	NumCPU      int    `json:"num_cpu"`
	GitRevision string `json:"git_revision"`
}

// runMeta collects the stamp. The git revision degrades to "unknown"
// outside a checkout (or without git on PATH) rather than failing a run.
func runMeta() RunMeta {
	m := RunMeta{
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		GitRevision: "unknown",
	}
	if out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output(); err == nil {
		if rev := strings.TrimSpace(string(out)); rev != "" {
			m.GitRevision = rev
		}
	}
	return m
}

// ProfileResult is one project's stateless-vs-stateful comparison.
type ProfileResult struct {
	Name                   string  `json:"name"`
	Files                  int     `json:"files"`
	StatelessColdMS        float64 `json:"stateless_cold_ms"`
	StatefulColdMS         float64 `json:"stateful_cold_ms"`
	StatelessIncrementalMS float64 `json:"stateless_incremental_ms"`
	StatefulIncrementalMS  float64 `json:"stateful_incremental_ms"`
	SpeedupPct             float64 `json:"speedup_pct"`
	StateKiB               float64 `json:"state_kib"`
	// Metrics is the stateful builder's full counters registry after the
	// history (schema: docs/OBSERVABILITY.md) — the per-profile dormancy
	// and fingerprint accounting behind the headline speedup.
	Metrics map[string]int64 `json:"metrics"`
	// Decisions is the decision-provenance slice of Metrics: how many pass
	// executions were charged to each reason (see docs/OBSERVABILITY.md).
	Decisions map[string]int64 `json:"decisions"`
	// SkipRatePct is pass.skipped / (pass.runs + pass.skipped) × 100.
	SkipRatePct float64 `json:"skip_rate_pct"`
	// Histograms embeds the stateful run's latency-histogram snapshots
	// (unit compile, skip decision, build wall; bucket geometry in
	// docs/OBSERVABILITY.md), with the unit-compile p50/p99 pulled out as
	// headline milliseconds.
	Histograms       map[string]obs.HistogramSnapshot `json:"histograms,omitempty"`
	UnitCompileP50MS float64                          `json:"unit_compile_p50_ms,omitempty"`
	UnitCompileP99MS float64                          `json:"unit_compile_p99_ms,omitempty"`
	// AuditRate is the soundness-sentinel sampling probability of the
	// audited comparison run (0 when -audit is unset; the headline
	// stateful numbers above are always measured unaudited).
	AuditRate float64 `json:"audit_rate"`
	// StatefulAuditedIncrementalMS re-measures the stateful incremental
	// mean with the sentinel sampling at AuditRate; AuditOverheadPct is its
	// cost relative to the unaudited run. AuditSampled/AuditUnsound are the
	// audited run's sentinel counters (unsound must be 0 for honest
	// pipelines).
	StatefulAuditedIncrementalMS float64 `json:"stateful_audited_incremental_ms,omitempty"`
	AuditOverheadPct             float64 `json:"audit_overhead_pct,omitempty"`
	AuditSampled                 int64   `json:"audit_sampled,omitempty"`
	AuditUnsound                 int64   `json:"audit_unsound,omitempty"`
	// FootprintIncrementalMS re-measures the stateful incremental mean with
	// dependency-footprint tracing and enforcement on (the always-correct
	// mode); FootprintOverheadPct is its cost relative to the untraced run.
	// Checked/missed/redundant are the traced run's cross-check counters —
	// missed must be 0 for honest builds.
	FootprintIncrementalMS float64 `json:"footprint_incremental_ms,omitempty"`
	FootprintOverheadPct   float64 `json:"footprint_overhead_pct,omitempty"`
	FootprintChecked       int64   `json:"footprint_checked,omitempty"`
	FootprintMissed        int64   `json:"footprint_missed,omitempty"`
	FootprintRedundant     int64   `json:"footprint_redundant,omitempty"`
	// CAS two-client scenario (-cas): client A replays the history through a
	// shared-cache server (publishing every compile), then a cold client B
	// replays the same history against the warm cache. CASHitRatePct is B's
	// action-lookup hit rate; the fetch quantiles are B's client-side
	// wire+verify+decode latency per remote unit. CASVerifyFailed must be 0
	// on a healthy run.
	CASHitRatePct    float64 `json:"cas_hit_rate_pct,omitempty"`
	CASRemoteUnits   int64   `json:"cas_remote_units,omitempty"`
	CASCompiledUnits int64   `json:"cas_compiled_units,omitempty"`
	CASVerifyFailed  int64   `json:"cas_verify_failed"`
	CASFetchP50MS    float64 `json:"cas_fetch_p50_ms,omitempty"`
	CASFetchP99MS    float64 `json:"cas_fetch_p99_ms,omitempty"`
	// Degraded-network row (-cas): the same history replayed by a stateful
	// client whose shared-cache backend refuses every connection. The
	// breaker must trip and the build must fall back to local compiles;
	// the overhead prices a full partition relative to the no-CAS stateful
	// run (docs/ROBUSTNESS.md, "Network adversity").
	CASDegradedIncrementalMS float64 `json:"cas_degraded_incremental_ms,omitempty"`
	CASDegradedOverheadPct   float64 `json:"cas_degraded_overhead_pct,omitempty"`
	CASBreakerTrips          int64   `json:"cas_breaker_trips,omitempty"`
	CASBreakerFastFails      int64   `json:"cas_breaker_fast_fails,omitempty"`
}

// Baseline is the committed document.
type Baseline struct {
	GeneratedBy string `json:"generated_by"`
	RunMeta
	Commits        int             `json:"commits"`
	Repeats        int             `json:"repeats"`
	Profiles       []ProfileResult `json:"profiles"`
	MeanSpeedupPct float64         `json:"mean_speedup_pct"`
	// Skip-rate guard stamp: the floor the run was held to and the lowest
	// skip rate actually measured (guard is "pass", "fail", or "off").
	MinSkipRateFloorPct    float64 `json:"min_skip_rate_floor_pct"`
	MeasuredMinSkipRatePct float64 `json:"measured_min_skip_rate_pct"`
	SkipRateGuard          string  `json:"skip_rate_guard"`
	// Footprint-overhead guard stamp: the budget (max acceptable tracing
	// overhead percentage) and the highest overhead actually measured.
	FootprintOverheadBudgetPct      float64 `json:"footprint_overhead_budget_pct,omitempty"`
	MeasuredMaxFootprintOverheadPct float64 `json:"measured_max_footprint_overhead_pct,omitempty"`
	FootprintGuard                  string  `json:"footprint_guard,omitempty"`
	// Shared-cache guard stamp (-cas): the cross-client hit-rate floor and
	// the lowest rate any profile's cold client B measured.
	CASHitRateFloorPct       float64 `json:"cas_hit_rate_floor_pct,omitempty"`
	MeasuredMinCASHitRatePct float64 `json:"measured_min_cas_hit_rate_pct,omitempty"`
	CASGuard                 string  `json:"cas_guard,omitempty"`
}

// Matrix is the committed multi-core latency document (BENCH_pr6.json).
type Matrix struct {
	GeneratedBy string `json:"generated_by"`
	RunMeta
	Commits int                `json:"commits"`
	Repeats int                `json:"repeats"`
	Cells   []bench.MatrixCell `json:"cells"`
	// Side-by-side costs of the retired flat fingerprint vs the
	// hierarchical one, and of the v4 vs v5 state layouts.
	FingerprintCompare []*bench.FingerprintCompare `json:"fingerprint_compare"`
	StateCompare       []*bench.StateCompare       `json:"state_compare"`
	// Skip-rate guard stamp (see Baseline).
	MinSkipRateFloorPct    float64 `json:"min_skip_rate_floor_pct"`
	MeasuredMinSkipRatePct float64 `json:"measured_min_skip_rate_pct"`
	SkipRateGuard          string  `json:"skip_rate_guard"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchbaseline:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchbaseline", flag.ContinueOnError)
	out := fs.String("out", "BENCH_baseline.json", "output file ('-' for stdout)")
	commits := fs.Int("commits", 12, "simulated commits per project")
	repeats := fs.Int("repeats", 3, "timing repeats per history (min kept)")
	nprofiles := fs.Int("profiles", 3, "number of standard-suite profiles (smallest first)")
	audit := fs.Float64("audit", 0, "also measure stateful with the soundness sentinel sampling at this rate (0 disables the comparison)")
	footprint := fs.Bool("footprint", false, "also measure stateful with dependency-footprint tracing and enforcement, including the 200+ unit megarepo profile")
	maxFPOverhead := fs.Float64("max-footprint-overhead", 0, "footprint guard: exit non-zero if tracing overhead exceeds this percentage on any profile (0 disables; requires -footprint)")
	casBench := fs.Bool("cas", false, "also measure the shared-cache two-client scenario (publisher A warms the cache, cold client B replays the history) per profile")
	minCASHitRate := fs.Float64("min-cas-hit-rate", 0, "shared-cache guard: exit non-zero if client B's hit rate falls below this percentage on any profile (0 disables; requires -cas)")
	matrix := fs.Bool("matrix", false, "emit the workers × profile latency matrix instead of the baseline comparison")
	workersFlag := fs.String("workers", "1,4,16", "comma-separated worker counts for -matrix")
	minSkip := fs.Float64("min-skip-rate", 0, "skip-rate guard: exit non-zero if any measured skip rate falls below this percentage (0 disables)")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile after the run to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *audit < 0 || *audit > 1 {
		return fmt.Errorf("-audit %v out of range [0,1]", *audit)
	}
	if *minSkip < 0 || *minSkip > 100 {
		return fmt.Errorf("-min-skip-rate %v out of range [0,100]", *minSkip)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchbaseline:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "benchbaseline:", err)
			}
		}()
	}

	if *maxFPOverhead < 0 {
		return fmt.Errorf("-max-footprint-overhead %v must be >= 0", *maxFPOverhead)
	}
	if *minCASHitRate < 0 || *minCASHitRate > 100 {
		return fmt.Errorf("-min-cas-hit-rate %v out of range [0,100]", *minCASHitRate)
	}

	if *matrix {
		return runMatrix(*out, *commits, *repeats, *nprofiles, *workersFlag, *minSkip)
	}
	return runBaseline(*out, *commits, *repeats, *nprofiles, *audit, *minSkip, *footprint, *maxFPOverhead, *casBench, *minCASHitRate)
}

func runBaseline(out string, commits, repeats, nprofiles int, audit, minSkip float64, footprint bool, maxFPOverhead float64, casBench bool, minCASHitRate float64) error {
	suite := workload.StandardSuite()
	if nprofiles < len(suite) {
		suite = suite[:nprofiles]
	}
	if footprint {
		// The scale row: tracing overhead must stay bounded past 200 units,
		// not just on the small profiles.
		suite = append(suite, workload.MegaProfile())
	}
	cfg := bench.Config{Commits: commits, Repeats: repeats}
	modes := []compiler.Mode{compiler.ModeStateless, compiler.ModeStateful}

	genBy := fmt.Sprintf("go run ./cmd/benchbaseline -commits %d -repeats %d -profiles %d",
		commits, repeats, nprofiles)
	if audit > 0 {
		genBy += fmt.Sprintf(" -audit %g", audit)
	}
	if minSkip > 0 {
		genBy += fmt.Sprintf(" -min-skip-rate %g", minSkip)
	}
	if footprint {
		genBy += " -footprint"
	}
	if maxFPOverhead > 0 {
		genBy += fmt.Sprintf(" -max-footprint-overhead %g", maxFPOverhead)
	}
	if casBench {
		genBy += " -cas"
	}
	if minCASHitRate > 0 {
		genBy += fmt.Sprintf(" -min-cas-hit-rate %g", minCASHitRate)
	}
	doc := Baseline{
		GeneratedBy: genBy,
		RunMeta:     runMeta(),
		Commits:     commits,
		Repeats:     repeats,
	}

	var speedupSum float64
	measuredMin := math.Inf(1)
	maxFPMeasured := math.Inf(-1)
	minCASMeasured := math.Inf(1)
	for _, p := range suite {
		runs, err := bench.CompareHistories(p, modes, cfg)
		if err != nil {
			return err
		}
		sl, sf := runs[compiler.ModeStateless], runs[compiler.ModeStateful]
		slIncr := float64(sl.MeanIncrementalNS()) / 1e6
		sfIncr := float64(sf.MeanIncrementalNS()) / 1e6
		speedup := (slIncr/sfIncr - 1) * 100
		speedupSum += speedup
		measuredMin = math.Min(measuredMin, 100*obs.SkipRate(sf.Metrics))

		stateBytes := sf.Cold.StateBytes
		if n := len(sf.Incremental); n > 0 {
			stateBytes = sf.Incremental[n-1].StateBytes
		}
		pr := ProfileResult{
			Name:                   p.Name,
			Files:                  p.Files,
			StatelessColdMS:        round3(float64(sl.Cold.TotalNS) / 1e6),
			StatefulColdMS:         round3(float64(sf.Cold.TotalNS) / 1e6),
			StatelessIncrementalMS: round3(slIncr),
			StatefulIncrementalMS:  round3(sfIncr),
			SpeedupPct:             round3(speedup),
			StateKiB:               round3(float64(stateBytes) / 1024),
			Metrics:                sf.Metrics,
			Decisions:              obs.DecisionCounts(sf.Metrics),
			SkipRatePct:            round3(100 * obs.SkipRate(sf.Metrics)),
			Histograms:             sf.Histograms,
		}
		if h, ok := sf.Histograms[obs.HistUnitCompileNS]; ok {
			pr.UnitCompileP50MS = round3(float64(h.Quantile(0.50)) / 1e6)
			pr.UnitCompileP99MS = round3(float64(h.Quantile(0.99)) / 1e6)
		}
		if audit > 0 {
			// Sentinel-overhead comparison: the same history, stateful, with
			// skip audits sampling at -audit. The delta vs the unaudited run
			// above prices the sentinel.
			acfg := cfg
			acfg.AuditRate = audit
			arun, err := bench.RunHistory(p, compiler.ModeStateful, acfg)
			if err != nil {
				return err
			}
			aIncr := float64(arun.MeanIncrementalNS()) / 1e6
			pr.AuditRate = audit
			pr.StatefulAuditedIncrementalMS = round3(aIncr)
			if sfIncr > 0 {
				pr.AuditOverheadPct = round3((aIncr/sfIncr - 1) * 100)
			}
			pr.AuditSampled = arun.Metrics[obs.CtrAuditSampled]
			pr.AuditUnsound = arun.Metrics[obs.CtrAuditUnsound]
		}
		if footprint {
			// Footprint-overhead comparison: the same history, stateful, with
			// tracing and enforcement on. The delta vs the untraced run above
			// prices the always-correct mode.
			fcfg := cfg
			fcfg.Footprint = true
			fcfg.EnforceFootprint = true
			frun, err := bench.RunHistory(p, compiler.ModeStateful, fcfg)
			if err != nil {
				return err
			}
			fIncr := float64(frun.MeanIncrementalNS()) / 1e6
			pr.FootprintIncrementalMS = round3(fIncr)
			if sfIncr > 0 {
				pr.FootprintOverheadPct = round3((fIncr/sfIncr - 1) * 100)
				maxFPMeasured = math.Max(maxFPMeasured, pr.FootprintOverheadPct)
			}
			pr.FootprintChecked = frun.Metrics[obs.CtrFootprintChecked]
			pr.FootprintMissed = frun.Metrics[obs.CtrFootprintMissed]
			pr.FootprintRedundant = frun.Metrics[obs.CtrFootprintRedundant]
		}
		if casBench {
			if err := runCASScenario(p, commits, &pr); err != nil {
				return err
			}
			minCASMeasured = math.Min(minCASMeasured, pr.CASHitRatePct)
			if err := runCASDegraded(p, commits, sfIncr, &pr); err != nil {
				return err
			}
		}
		doc.Profiles = append(doc.Profiles, pr)
		fmt.Fprintf(os.Stderr, "%-12s stateless %.3fms  stateful %.3fms  speedup %+.2f%%  skip-rate %.1f%%\n",
			p.Name, slIncr, sfIncr, speedup, 100*obs.SkipRate(sf.Metrics))
		if audit > 0 {
			fmt.Fprintf(os.Stderr, "%-12s audited(p=%.2f) %.3fms  overhead %+.2f%%  sampled %d  unsound %d\n",
				"", audit, pr.StatefulAuditedIncrementalMS, pr.AuditOverheadPct, pr.AuditSampled, pr.AuditUnsound)
		}
		if footprint {
			fmt.Fprintf(os.Stderr, "%-12s footprint %.3fms  overhead %+.2f%%  checked %d  missed %d  redundant %d\n",
				"", pr.FootprintIncrementalMS, pr.FootprintOverheadPct,
				pr.FootprintChecked, pr.FootprintMissed, pr.FootprintRedundant)
		}
		if casBench {
			fmt.Fprintf(os.Stderr, "%-12s cas hit-rate %.1f%%  remote %d  compiled %d  fetch p50 %.3fms p99 %.3fms  verify-failed %d\n",
				"", pr.CASHitRatePct, pr.CASRemoteUnits, pr.CASCompiledUnits,
				pr.CASFetchP50MS, pr.CASFetchP99MS, pr.CASVerifyFailed)
			fmt.Fprintf(os.Stderr, "%-12s cas partitioned %.3fms  overhead %+.2f%%  breaker trips %d  fast-fails %d\n",
				"", pr.CASDegradedIncrementalMS, pr.CASDegradedOverheadPct,
				pr.CASBreakerTrips, pr.CASBreakerFastFails)
		}
	}
	doc.MeanSpeedupPct = round3(speedupSum / float64(len(suite)))
	doc.MinSkipRateFloorPct = minSkip
	doc.MeasuredMinSkipRatePct = round3(measuredMin)
	doc.SkipRateGuard = guardVerdict(minSkip, measuredMin)
	if footprint {
		doc.FootprintOverheadBudgetPct = maxFPOverhead
		doc.MeasuredMaxFootprintOverheadPct = round3(maxFPMeasured)
		doc.FootprintGuard = fpGuardVerdict(maxFPOverhead, maxFPMeasured)
	}
	if casBench {
		doc.CASHitRateFloorPct = minCASHitRate
		doc.MeasuredMinCASHitRatePct = round3(minCASMeasured)
		doc.CASGuard = guardVerdict(minCASHitRate, minCASMeasured)
	}

	if err := writeJSON(out, &doc); err != nil {
		return err
	}
	if err := guardErr(minSkip, measuredMin); err != nil {
		return err
	}
	if footprint && maxFPOverhead > 0 && maxFPMeasured > maxFPOverhead {
		return fmt.Errorf("footprint guard: measured maximum overhead %.1f%% above budget %.1f%%", maxFPMeasured, maxFPOverhead)
	}
	if casBench && minCASHitRate > 0 && minCASMeasured < minCASHitRate {
		return fmt.Errorf("cas guard: measured minimum hit rate %.1f%% below floor %.1f%%", minCASMeasured, minCASHitRate)
	}
	return nil
}

// runCASScenario measures cross-client shared-cache reuse for one profile:
// client A (its own tenant, state dir, and HTTP connection) replays the
// profile's commit history against a fresh serve instance, publishing every
// compile; then a cold client B replays the identical history. B's hit
// rate, remote-unit count, and fetch latency fill the pr.CAS* fields.
func runCASScenario(p workload.Profile, commits int, pr *ProfileResult) error {
	base := workload.Generate(p)
	hist := workload.GenerateHistoryStream(base, p.Seed*13, commits,
		workload.DefaultCommitOptions(), workload.StreamDefault)
	snaps := append([]project.Snapshot{base}, hist.Commits...)

	srv := cas.NewServer(cas.NewMemCAS(0), cas.ServerOptions{Metrics: obs.NewRegistry()})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	client := func(tenant string) (*buildsys.Builder, func(), error) {
		dir, err := os.MkdirTemp("", "casbench-*")
		if err != nil {
			return nil, nil, err
		}
		b, err := buildsys.NewBuilder(buildsys.Options{
			Mode:     compiler.ModeStateful,
			StateDir: dir,
			CAS:      cas.NewHTTPCAS(hs.URL, tenant),
		})
		if err != nil {
			os.RemoveAll(dir)
			return nil, nil, err
		}
		return b, func() { os.RemoveAll(dir) }, nil
	}

	a, cleanA, err := client("bench-a")
	if err != nil {
		return err
	}
	defer cleanA()
	for i, snap := range snaps {
		if _, err := a.Build(snap); err != nil {
			return fmt.Errorf("cas scenario %s: publisher commit %d: %w", p.Name, i, err)
		}
	}

	b, cleanB, err := client("bench-b")
	if err != nil {
		return err
	}
	defer cleanB()
	for i, snap := range snaps {
		rep, err := b.Build(snap)
		if err != nil {
			return fmt.Errorf("cas scenario %s: cold client commit %d: %w", p.Name, i, err)
		}
		pr.CASRemoteUnits += int64(rep.UnitsRemote)
		pr.CASCompiledUnits += int64(rep.UnitsCompiled)
	}

	m := b.Metrics()
	if hits, misses := m[obs.CtrCASHits], m[obs.CtrCASMisses]; hits+misses > 0 {
		pr.CASHitRatePct = round3(100 * float64(hits) / float64(hits+misses))
	}
	pr.CASVerifyFailed = m[obs.CtrCASVerifyFailed]
	if h, ok := b.Histograms()[obs.HistCASFetchNS]; ok {
		pr.CASFetchP50MS = round3(float64(h.Quantile(0.50)) / 1e6)
		pr.CASFetchP99MS = round3(float64(h.Quantile(0.99)) / 1e6)
	}
	return nil
}

// runCASDegraded measures the full-partition degraded mode: a stateful
// client whose shared-cache backend refuses every connection replays the
// history. The circuit breaker must trip (after which fetches fast-fail
// instead of burning retries), the build falls back to local compiles,
// and the measured overhead relative to the plain stateful run prices the
// partition.
func runCASDegraded(p workload.Profile, commits int, sfIncr float64, pr *ProfileResult) error {
	base := workload.Generate(p)
	hist := workload.GenerateHistoryStream(base, p.Seed*13, commits,
		workload.DefaultCommitOptions(), workload.StreamDefault)
	snaps := append([]project.Snapshot{base}, hist.Commits...)

	dir, err := os.MkdirTemp("", "casbench-degraded-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	ft := cas.NewFaultTransport(nil, cas.WithNetRules(cas.NetRule{Kind: cas.NetRefused}))
	b, err := buildsys.NewBuilder(buildsys.Options{
		Mode:     compiler.ModeStateful,
		StateDir: dir,
		CAS: cas.NewHTTPCASOpts("http://127.0.0.1:9", "bench-degraded", cas.HTTPOptions{
			Transport: ft, Backoff: time.Millisecond,
		}),
	})
	if err != nil {
		return err
	}
	var incrNS int64
	for i, snap := range snaps {
		start := time.Now()
		if _, err := b.Build(snap); err != nil {
			return fmt.Errorf("cas degraded %s: commit %d: %w", p.Name, i, err)
		}
		if i > 0 {
			incrNS += time.Since(start).Nanoseconds()
		}
	}
	if n := len(snaps) - 1; n > 0 {
		pr.CASDegradedIncrementalMS = round3(float64(incrNS) / float64(n) / 1e6)
		if sfIncr > 0 {
			pr.CASDegradedOverheadPct = round3((pr.CASDegradedIncrementalMS/sfIncr - 1) * 100)
		}
	}
	m := b.Metrics()
	pr.CASBreakerTrips = m[obs.CtrCASBreakerTrips]
	pr.CASBreakerFastFails = m[obs.CtrCASBreakerOpen]
	if pr.CASBreakerTrips == 0 {
		return fmt.Errorf("cas degraded %s: the breaker never tripped against a fully partitioned backend", p.Name)
	}
	return nil
}

// fpGuardVerdict stamps the footprint-overhead guard outcome.
func fpGuardVerdict(budget, measured float64) string {
	switch {
	case budget <= 0:
		return "off"
	case measured > budget:
		return "fail"
	default:
		return "pass"
	}
}

func runMatrix(out string, commits, repeats, nprofiles int, workersFlag string, minSkip float64) error {
	suite := workload.StandardSuite()
	if nprofiles < len(suite) {
		suite = suite[:nprofiles]
	}
	var workers []int
	for _, s := range splitComma(workersFlag) {
		var w int
		if _, err := fmt.Sscanf(s, "%d", &w); err != nil || w < 1 {
			return fmt.Errorf("bad -workers element %q", s)
		}
		workers = append(workers, w)
	}

	genBy := fmt.Sprintf("go run ./cmd/benchbaseline -matrix -commits %d -repeats %d -profiles %d -workers %s",
		commits, repeats, nprofiles, workersFlag)
	if minSkip > 0 {
		genBy += fmt.Sprintf(" -min-skip-rate %g", minSkip)
	}
	doc := Matrix{
		GeneratedBy: genBy,
		RunMeta:     runMeta(),
		Commits:     commits,
		Repeats:     repeats,
	}

	cells, err := bench.RunMatrix(bench.MatrixOptions{
		Profiles: suite,
		Workers:  workers,
		Commits:  commits,
		Repeats:  repeats,
	})
	if err != nil {
		return err
	}
	measuredMin := math.Inf(1)
	for i := range cells {
		c := &cells[i]
		c.ColdMS = round3(c.ColdMS)
		c.P50IncrementalMS = round3(c.P50IncrementalMS)
		c.P99IncrementalMS = round3(c.P99IncrementalMS)
		c.MeanIncrementalMS = round3(c.MeanIncrementalMS)
		c.SkipRatePct = round3(c.SkipRatePct)
		c.MemoHitPct = round3(c.MemoHitPct)
		c.AllocsPerBuild = math.Round(c.AllocsPerBuild)
		measuredMin = math.Min(measuredMin, c.SkipRatePct)
		fmt.Fprintf(os.Stderr, "%-12s ×%-3d p50 %.3fms  p99 %.3fms  skip %.1f%%  memo-hit %.1f%%  allocs/build %.0f\n",
			c.Profile, c.Workers, c.P50IncrementalMS, c.P99IncrementalMS,
			c.SkipRatePct, c.MemoHitPct, c.AllocsPerBuild)
	}
	doc.Cells = cells

	for _, p := range suite {
		fc, err := bench.CompareFingerprints(p)
		if err != nil {
			return err
		}
		fc.SpeedupWarmVsLegacy = round3(fc.SpeedupWarmVsLegacy)
		doc.FingerprintCompare = append(doc.FingerprintCompare, fc)
		sc, err := bench.CompareStateFormats(p)
		if err != nil {
			return err
		}
		doc.StateCompare = append(doc.StateCompare, sc)
		fmt.Fprintf(os.Stderr, "%-12s fingerprint legacy %dns  cold %dns  warm %dns (%.1fx)  state v4 %dB/%dns  v5 %dB/%dns\n",
			p.Name, fc.LegacyNSPerModule, fc.ColdMemoNSPerModule, fc.WarmMemoNSPerModule,
			fc.SpeedupWarmVsLegacy, sc.V4Bytes, sc.V4DecodeNS, sc.V5Bytes, sc.V5DecodeNS)
	}

	doc.MinSkipRateFloorPct = minSkip
	doc.MeasuredMinSkipRatePct = round3(measuredMin)
	doc.SkipRateGuard = guardVerdict(minSkip, measuredMin)

	if err := writeJSON(out, &doc); err != nil {
		return err
	}
	return guardErr(minSkip, measuredMin)
}

func guardVerdict(floor, measured float64) string {
	switch {
	case floor <= 0:
		return "off"
	case measured < floor:
		return "fail"
	default:
		return "pass"
	}
}

func guardErr(floor, measured float64) error {
	if floor > 0 && measured < floor {
		return fmt.Errorf("skip-rate guard: measured minimum %.1f%% below floor %.1f%%", measured, floor)
	}
	return nil
}

func writeJSON(out string, doc any) error {
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

func round3(v float64) float64 {
	return math.Round(v*1000) / 1000
}
