// benchbaseline records the repository's performance trajectory: it runs
// the T2-style stateless-vs-stateful incremental comparison on a few small
// standard-suite profiles and writes the result as JSON (committed as
// BENCH_baseline.json at the repo root), so later changes have a baseline
// to compare against.
//
//	go run ./cmd/benchbaseline -out BENCH_baseline.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"

	"statefulcc/internal/bench"
	"statefulcc/internal/compiler"
	"statefulcc/internal/obs"
	"statefulcc/internal/workload"
)

// ProfileResult is one project's stateless-vs-stateful comparison.
type ProfileResult struct {
	Name                   string  `json:"name"`
	Files                  int     `json:"files"`
	StatelessColdMS        float64 `json:"stateless_cold_ms"`
	StatefulColdMS         float64 `json:"stateful_cold_ms"`
	StatelessIncrementalMS float64 `json:"stateless_incremental_ms"`
	StatefulIncrementalMS  float64 `json:"stateful_incremental_ms"`
	SpeedupPct             float64 `json:"speedup_pct"`
	StateKiB               float64 `json:"state_kib"`
	// Metrics is the stateful builder's full counters registry after the
	// history (schema: docs/OBSERVABILITY.md) — the per-profile dormancy
	// and fingerprint accounting behind the headline speedup.
	Metrics map[string]int64 `json:"metrics"`
	// Decisions is the decision-provenance slice of Metrics: how many pass
	// executions were charged to each reason (see docs/OBSERVABILITY.md).
	Decisions map[string]int64 `json:"decisions"`
	// SkipRatePct is pass.skipped / (pass.runs + pass.skipped) × 100.
	SkipRatePct float64 `json:"skip_rate_pct"`
	// AuditRate is the soundness-sentinel sampling probability of the
	// audited comparison run (0 when -audit is unset; the headline
	// stateful numbers above are always measured unaudited).
	AuditRate float64 `json:"audit_rate"`
	// StatefulAuditedIncrementalMS re-measures the stateful incremental
	// mean with the sentinel sampling at AuditRate; AuditOverheadPct is its
	// cost relative to the unaudited run. AuditSampled/AuditUnsound are the
	// audited run's sentinel counters (unsound must be 0 for honest
	// pipelines).
	StatefulAuditedIncrementalMS float64 `json:"stateful_audited_incremental_ms,omitempty"`
	AuditOverheadPct             float64 `json:"audit_overhead_pct,omitempty"`
	AuditSampled                 int64   `json:"audit_sampled,omitempty"`
	AuditUnsound                 int64   `json:"audit_unsound,omitempty"`
}

// Baseline is the committed document.
type Baseline struct {
	GeneratedBy    string          `json:"generated_by"`
	GoVersion      string          `json:"go_version"`
	GOMAXPROCS     int             `json:"gomaxprocs"`
	Commits        int             `json:"commits"`
	Repeats        int             `json:"repeats"`
	Profiles       []ProfileResult `json:"profiles"`
	MeanSpeedupPct float64         `json:"mean_speedup_pct"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchbaseline:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchbaseline", flag.ContinueOnError)
	out := fs.String("out", "BENCH_baseline.json", "output file ('-' for stdout)")
	commits := fs.Int("commits", 12, "simulated commits per project")
	repeats := fs.Int("repeats", 3, "timing repeats per history (min kept)")
	nprofiles := fs.Int("profiles", 3, "number of standard-suite profiles (smallest first)")
	audit := fs.Float64("audit", 0, "also measure stateful with the soundness sentinel sampling at this rate (0 disables the comparison)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *audit < 0 || *audit > 1 {
		return fmt.Errorf("-audit %v out of range [0,1]", *audit)
	}

	suite := workload.StandardSuite()
	if *nprofiles < len(suite) {
		suite = suite[:*nprofiles]
	}
	cfg := bench.Config{Commits: *commits, Repeats: *repeats}
	modes := []compiler.Mode{compiler.ModeStateless, compiler.ModeStateful}

	genBy := fmt.Sprintf("go run ./cmd/benchbaseline -commits %d -repeats %d -profiles %d",
		*commits, *repeats, *nprofiles)
	if *audit > 0 {
		genBy += fmt.Sprintf(" -audit %g", *audit)
	}
	doc := Baseline{
		GeneratedBy: genBy,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Commits:    *commits,
		Repeats:    *repeats,
	}

	var speedupSum float64
	for _, p := range suite {
		runs, err := bench.CompareHistories(p, modes, cfg)
		if err != nil {
			return err
		}
		sl, sf := runs[compiler.ModeStateless], runs[compiler.ModeStateful]
		slIncr := float64(sl.MeanIncrementalNS()) / 1e6
		sfIncr := float64(sf.MeanIncrementalNS()) / 1e6
		speedup := (slIncr/sfIncr - 1) * 100
		speedupSum += speedup

		stateBytes := sf.Cold.StateBytes
		if n := len(sf.Incremental); n > 0 {
			stateBytes = sf.Incremental[n-1].StateBytes
		}
		pr := ProfileResult{
			Name:                   p.Name,
			Files:                  p.Files,
			StatelessColdMS:        round3(float64(sl.Cold.TotalNS) / 1e6),
			StatefulColdMS:         round3(float64(sf.Cold.TotalNS) / 1e6),
			StatelessIncrementalMS: round3(slIncr),
			StatefulIncrementalMS:  round3(sfIncr),
			SpeedupPct:             round3(speedup),
			StateKiB:               round3(float64(stateBytes) / 1024),
			Metrics:                sf.Metrics,
			Decisions:              obs.DecisionCounts(sf.Metrics),
			SkipRatePct:            round3(100 * obs.SkipRate(sf.Metrics)),
		}
		if *audit > 0 {
			// Sentinel-overhead comparison: the same history, stateful, with
			// skip audits sampling at -audit. The delta vs the unaudited run
			// above prices the sentinel.
			acfg := cfg
			acfg.AuditRate = *audit
			arun, err := bench.RunHistory(p, compiler.ModeStateful, acfg)
			if err != nil {
				return err
			}
			aIncr := float64(arun.MeanIncrementalNS()) / 1e6
			pr.AuditRate = *audit
			pr.StatefulAuditedIncrementalMS = round3(aIncr)
			if sfIncr > 0 {
				pr.AuditOverheadPct = round3((aIncr/sfIncr - 1) * 100)
			}
			pr.AuditSampled = arun.Metrics[obs.CtrAuditSampled]
			pr.AuditUnsound = arun.Metrics[obs.CtrAuditUnsound]
		}
		doc.Profiles = append(doc.Profiles, pr)
		fmt.Fprintf(os.Stderr, "%-12s stateless %.3fms  stateful %.3fms  speedup %+.2f%%  skip-rate %.1f%%\n",
			p.Name, slIncr, sfIncr, speedup, 100*obs.SkipRate(sf.Metrics))
		if *audit > 0 {
			fmt.Fprintf(os.Stderr, "%-12s audited(p=%.2f) %.3fms  overhead %+.2f%%  sampled %d  unsound %d\n",
				"", *audit, pr.StatefulAuditedIncrementalMS, pr.AuditOverheadPct, pr.AuditSampled, pr.AuditUnsound)
		}
	}
	doc.MeanSpeedupPct = round3(speedupSum / float64(len(suite)))

	data, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(*out, data, 0o644)
}

func round3(v float64) float64 {
	return math.Round(v*1000) / 1000
}
