package main

// The flight-recorder reading subcommands: explain (last build's decision
// tables), history (record summaries), and regress (CI regression gate).

import (
	"flag"
	"fmt"

	"statefulcc/internal/history"
)

// loadHistory reads the history file under the resolved state directory.
func loadHistory(dir, cache string) ([]history.Record, string, error) {
	path := history.Path(resolveStateDir(dir, cache))
	recs, err := history.Load(path)
	if err != nil {
		return nil, path, err
	}
	return recs, path, nil
}

// runExplain renders the last build's per-unit, per-pass decision table,
// with the previous build's reasons for comparison. An optional positional
// argument restricts output to one unit.
func runExplain(args []string) error {
	fs := flag.NewFlagSet("minibuild explain", flag.ContinueOnError)
	dir, cache := stateDirFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	unit := ""
	if rest := fs.Args(); len(rest) > 0 {
		unit = rest[0]
	}
	recs, path, err := loadHistory(*dir, *cache)
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return fmt.Errorf("no build history at %s (run a stateful build first)", path)
	}
	out, err := history.RenderExplain(recs, unit)
	if err != nil {
		return err
	}
	fmt.Print(out)
	return nil
}

// runHistory summarizes the newest records, one line per build.
func runHistory(args []string) error {
	fs := flag.NewFlagSet("minibuild history", flag.ContinueOnError)
	dir, cache := stateDirFlags(fs)
	n := fs.Int("n", 20, "newest records to show (0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	recs, path, err := loadHistory(*dir, *cache)
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return fmt.Errorf("no build history at %s (run a stateful build first)", path)
	}
	fmt.Print(history.RenderHistory(recs, *n))
	return nil
}

// runRegress gates on the flight recorder: exit status 2 (via
// errRegression) when the newest build's skip rate dropped or wall time
// rose beyond thresholds relative to the prior window — machine-usable
// from CI.
func runRegress(args []string) error {
	fs := flag.NewFlagSet("minibuild regress", flag.ContinueOnError)
	dir, cache := stateDirFlags(fs)
	window := fs.Int("window", 10, "baseline window (prior records)")
	skipDrop := fs.Float64("skip-drop", 10, "flag a skip-rate drop beyond this many percentage points")
	timeRise := fs.Float64("time-rise", 50, "flag a wall-time rise beyond this percentage")
	minRecords := fs.Int("min-records", 2, "minimum history length required")
	minSkip := fs.Float64("min-skip-rate", 0, "require the newest build's skip rate to reach this percentage")
	if err := fs.Parse(args); err != nil {
		return err
	}
	recs, path, err := loadHistory(*dir, *cache)
	if err != nil {
		return err
	}
	res, err := history.CheckRegress(recs, history.RegressOptions{
		Window:         *window,
		SkipDropPts:    *skipDrop,
		TimeRisePct:    *timeRise,
		MinRecords:     *minRecords,
		MinSkipRatePct: *minSkip,
	})
	if err != nil {
		return fmt.Errorf("%w (history: %s)", err, path)
	}
	if res.Regressed {
		return errRegression{report: res.String()}
	}
	fmt.Print(res.String())
	return nil
}
