package main

// minibuild serve — the long-lived daemon mode: the builder stays resident
// (retaining its object cache, dormancy state, and counters registry),
// polls the project directory for source changes, rebuilds incrementally,
// and exposes live observability over HTTP:
//
//	/metrics      counters registry in Prometheus text format
//	/healthz      liveness + last-build status (JSON)
//	/builds       recent flight-recorder records (JSON, ?n= to bound)
//	/debug/pprof  net/http/pprof profiles of the daemon itself
//
// Polling (os.Stat-free, whole-directory reload + content diff) keeps the
// daemon dependency-free; MiniC projects are small enough that a re-read
// per interval is negligible next to a build.

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"statefulcc/internal/buildsys"
	"statefulcc/internal/compiler"
	"statefulcc/internal/history"
	"statefulcc/internal/obs"
	"statefulcc/internal/project"
)

func runServe(args []string) error {
	fs := flag.NewFlagSet("minibuild serve", flag.ContinueOnError)
	dir, cache := stateDirFlags(fs)
	mode := fs.String("mode", "stateful", "compiler policy: stateless|stateful|predictive|fullcache")
	jobs := fs.Int("j", 0, "parallel compile workers (default GOMAXPROCS)")
	addr := fs.String("addr", "127.0.0.1:8377", "HTTP listen address")
	interval := fs.Duration("interval", 500*time.Millisecond, "project poll interval")
	limit := fs.Int("history-limit", history.DefaultLimit, "flight-recorder record cap")
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv, err := newBuildServer(*dir, *cache, *mode, *jobs, *limit)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Initial build before announcing readiness; failures are recorded in
	// /healthz and retried by the poll loop rather than killing the daemon.
	if built, err := srv.pollOnce(); err != nil {
		fmt.Fprintf(os.Stderr, "minibuild serve: initial build: %v\n", err)
	} else if built {
		fmt.Printf("serving %s on http://%s (mode %s, poll %s) — /metrics /healthz /builds /debug/pprof\n",
			srv.dir, ln.Addr(), *mode, *interval)
	}

	go func() {
		t := time.NewTicker(*interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				if _, err := srv.pollOnce(); err != nil {
					fmt.Fprintf(os.Stderr, "minibuild serve: %v\n", err)
				}
			}
		}
	}()

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		_ = hs.Shutdown(shutdownCtx)
		fmt.Println("minibuild serve: shut down")
		return nil
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

// buildServer owns the resident builder and the daemon's HTTP state.
type buildServer struct {
	dir      string
	histPath string

	mu      sync.Mutex // serializes builds and lastSnap/lastErr access
	builder *buildsys.Builder
	lastSnap project.Snapshot
	builds   int
	lastErr  string
	lastTime time.Time
}

// newBuildServer constructs the resident builder. Unlike one-shot builds,
// serve records flight-recorder history for every mode: the state
// directory exists even when the policy itself persists nothing.
func newBuildServer(dir, cache, mode string, jobs, histLimit int) (*buildServer, error) {
	cmode, err := parseMode(mode)
	if err != nil {
		return nil, err
	}
	stateDir := resolveStateDir(dir, cache)
	if err := os.MkdirAll(stateDir, 0o755); err != nil {
		return nil, err
	}
	histPath := history.Path(stateDir)
	if cmode != compiler.ModeStateful && cmode != compiler.ModePredictive {
		stateDir = ""
	}
	b, err := buildsys.NewBuilder(buildsys.Options{
		Mode:         cmode,
		StateDir:     stateDir,
		Workers:      jobs,
		HistoryPath:  histPath,
		HistoryLimit: histLimit,
	})
	if err != nil {
		return nil, err
	}
	return &buildServer{dir: dir, histPath: histPath, builder: b}, nil
}

// pollOnce reloads the project and rebuilds when any unit's content
// changed (or on the first call). Reports whether a build ran.
func (s *buildServer) pollOnce() (bool, error) {
	snap, err := project.LoadDir(s.dir)
	if err != nil {
		s.noteErr(err)
		return false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lastSnap != nil && len(project.Diff(s.lastSnap, snap)) == 0 {
		return false, nil
	}
	rep, err := s.builder.Build(snap)
	if err != nil {
		s.lastErr = err.Error()
		return false, err
	}
	// State/history I/O degradation is non-fatal for a resident daemon;
	// log it (the state.io_error / history.io_error counters on /metrics
	// carry the same signal for alerting).
	for _, w := range rep.Warnings {
		fmt.Fprintln(os.Stderr, "minibuild serve: warning:", w)
	}
	s.lastSnap = snap
	s.builds++
	s.lastErr = ""
	s.lastTime = time.Now()
	return true, nil
}

func (s *buildServer) noteErr(err error) {
	s.mu.Lock()
	s.lastErr = err.Error()
	s.mu.Unlock()
}

// handler assembles the daemon's HTTP mux.
func (s *buildServer) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/builds", s.handleBuilds)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// handleMetrics renders the builder's counters registry as Prometheus text
// exposition format; values reconcile exactly with Builder.Metrics().
func (s *buildServer) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, obs.FormatProm(s.builder.Metrics()))
}

// handleHealthz reports liveness and the last build outcome.
func (s *buildServer) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	out := map[string]any{
		"status":             "ok",
		"builds":             s.builds,
		"last_build_unix_ms": s.lastTime.UnixMilli(),
	}
	if s.lastErr != "" {
		out["status"] = "degraded"
		out["last_error"] = s.lastErr
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

// handleBuilds serves recent flight-recorder records as a JSON array
// (newest last); ?n= bounds the count.
func (s *buildServer) handleBuilds(w http.ResponseWriter, r *http.Request) {
	recs, err := history.Load(s.histPath)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if nv := r.URL.Query().Get("n"); nv != "" {
		var n int
		if _, err := fmt.Sscanf(nv, "%d", &n); err == nil && n > 0 && len(recs) > n {
			recs = recs[len(recs)-n:]
		}
	}
	if recs == nil {
		recs = []history.Record{}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(recs)
}
