package main

// minibuild serve — the long-lived daemon mode: the builder stays resident
// (retaining its object cache, dormancy state, and counters registry),
// polls the project directory for source changes, rebuilds incrementally,
// and exposes live observability over HTTP:
//
//	/metrics      counters + latency histograms in Prometheus text format
//	/healthz      liveness + last-build status (JSON)
//	/builds       recent flight-recorder records (JSON, ?n= to bound)
//	/dash         live HTML dashboard (waterfall, sparklines; dash.go)
//	/debug/pprof  net/http/pprof profiles of the daemon itself
//
// Polling (os.Stat-free, whole-directory reload + content diff) keeps the
// daemon dependency-free; MiniC projects are small enough that a re-read
// per interval is negligible next to a build.
//
// Shutdown is a drain, not a kill: SIGINT/SIGTERM flips /healthz to
// "draining", refuses new builds, gives the in-flight build a grace window
// to finish (its state commits normally), and only then cancels it
// cooperatively — either way the state directory stays loadable by the
// next cold start. See docs/ROBUSTNESS.md.

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"statefulcc/internal/buildsys"
	"statefulcc/internal/cas"
	"statefulcc/internal/compiler"
	"statefulcc/internal/history"
	"statefulcc/internal/obs"
	"statefulcc/internal/project"
)

// Drain/shutdown tuning.
const (
	// defaultDrainGrace is how long a drain waits for the in-flight build
	// before cancelling it.
	defaultDrainGrace = 5 * time.Second
	// httpShutdownGrace bounds http.Server.Shutdown once builds are settled.
	httpShutdownGrace = 3 * time.Second
)

func runServe(args []string) error {
	fs := flag.NewFlagSet("minibuild serve", flag.ContinueOnError)
	dir, cache := stateDirFlags(fs)
	mode := fs.String("mode", "stateful", "compiler policy: stateless|stateful|predictive|fullcache")
	jobs := fs.Int("j", 0, "parallel compile workers (default GOMAXPROCS)")
	addr := fs.String("addr", "127.0.0.1:8377", "HTTP listen address")
	interval := fs.Duration("interval", 500*time.Millisecond, "project poll interval")
	limit := fs.Int("history-limit", history.DefaultLimit, "flight-recorder record cap")
	audit := fs.Float64("audit", 0, "soundness-sentinel audit rate in [0,1]: probability a would-be-skipped pass executes anyway for verification")
	casServe := fs.Bool("cas-serve", false, "host the shared content-addressed cache under /cas/ (multi-tenant, on-disk under the cache directory; see docs/ARCHITECTURE.md)")
	casQuota := fs.Int64("cas-quota", 256<<20, "per-tenant shared-cache byte quota (LRU eviction past it; 0 = unbounded)")
	casGrace := fs.Duration("cas-lease-grace", 5*time.Second, "coalescing lease grace: how long a build waits on another client's in-flight compile of the same unit")
	casMaxBody := fs.Int64("cas-max-body", 64<<20, "per-request /cas/ upload body limit in bytes (over-limit uploads get 413 and count cas.body_rejected)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *audit < 0 || *audit > 1 {
		return fmt.Errorf("minibuild serve: -audit %v out of range [0,1]", *audit)
	}

	srv, err := newBuildServerCfg(serveConfig{
		dir: *dir, cache: *cache, mode: *mode,
		jobs: *jobs, histLimit: *limit, auditRate: *audit,
		casServe: *casServe, casQuota: *casQuota, casGrace: *casGrace,
		casMaxBody: *casMaxBody,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return serveLoop(ctx, srv, ln, *interval, os.Stdout)
}

// newHTTPServer wraps the daemon mux in an http.Server with read, write,
// and idle timeouts: even a local daemon must not let a stuck or
// malicious client pin a connection (or a half-sent request header or
// body — slowloris) forever. The write timeout comfortably exceeds the
// lease long-poll grace so coalescing waiters are bounded by their own
// deadline, not cut off by the transport's.
func newHTTPServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
}

// serveLoop runs the daemon: initial build, poll ticker, HTTP server, and
// the graceful drain on ctx cancellation (SIGINT/SIGTERM in runServe). It
// is split from runServe so tests can drive the drain end-to-end with a
// real signal against a real listener.
func serveLoop(ctx context.Context, srv *buildServer, ln net.Listener, interval time.Duration, out io.Writer) error {
	// Builds run under their own context: a drain first *waits* for the
	// in-flight build (drainGrace), and only a build that overstays is
	// cancelled. Cancelling ctx directly would abort work that was about to
	// finish cleanly.
	buildCtx, buildCancel := context.WithCancel(context.Background())
	defer buildCancel()

	hs := newHTTPServer(srv.handler())

	// Initial build before announcing readiness; failures are recorded in
	// /healthz and retried by the poll loop rather than killing the daemon.
	if built, err := srv.pollOnce(buildCtx); err != nil {
		fmt.Fprintf(os.Stderr, "minibuild serve: initial build: %v\n", err)
	} else if built {
		fmt.Fprintf(out, "serving %s on http://%s (mode %s, poll %s) — /metrics /healthz /builds /debug/pprof\n",
			srv.dir, ln.Addr(), srv.mode, interval)
	}

	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				if srv.casSrv != nil {
					// Lease janitor: reap coalescing flights whose leader died
					// without publishing or abandoning, so waiters across the
					// fleet never block past the grace (cas.lease_expired).
					srv.casSrv.ExpireStaleLeases()
				}
				if _, err := srv.pollOnce(buildCtx); err != nil {
					fmt.Fprintf(os.Stderr, "minibuild serve: %v\n", err)
				}
			}
		}
	}()

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case <-ctx.Done():
		// Drain: refuse new builds, wait out the in-flight one, cancel it if
		// it overstays the grace window (a cancelled build leaves every state
		// file either untouched or fully written — loadable either way), and
		// only then tear down HTTP so /healthz reports "draining" throughout.
		srv.setDraining()
		idle := make(chan struct{})
		go func() {
			srv.buildMu.Lock() // blocks until the in-flight build releases it
			srv.buildMu.Unlock()
			close(idle)
		}()
		select {
		case <-idle:
		case <-time.After(srv.drainGrace):
			buildCancel()
			<-idle
		}
		if srv.casSrv != nil {
			// Wake every lease long-poll before Shutdown: a waiter blocked on
			// another client's compile would otherwise hold the graceful drain
			// open for its whole grace window.
			srv.casSrv.DrainLeases()
		}
		shutdownCtx, cancel := context.WithTimeout(context.Background(), httpShutdownGrace)
		defer cancel()
		_ = hs.Shutdown(shutdownCtx)
		fmt.Fprintln(out, "minibuild serve: drained, shut down")
		return nil
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

// buildServer owns the resident builder and the daemon's HTTP state.
type buildServer struct {
	dir        string
	histPath   string
	mode       string
	drainGrace time.Duration

	// buildMu is held for the duration of one build. pollOnce *skips* a
	// poll it cannot start (TryLock) rather than queueing behind the build
	// in flight — the next tick re-evaluates against fresh content — and
	// the drain path waits on it for the in-flight build to settle.
	buildMu sync.Mutex

	builder *buildsys.Builder

	// casSrv, when set, is the hosted shared cache mounted at /cas/; its
	// registry merges into /metrics alongside the builder's.
	casSrv *cas.Server

	mu           sync.Mutex // guards the status fields below
	lastSnap     project.Snapshot
	builds       int
	pollsSkipped int
	lastErr      string
	lastTime     time.Time
	draining     bool
}

// serveConfig configures a buildServer; the zero value of the optional
// fields picks the production defaults (tests override pipeline and
// drainGrace).
type serveConfig struct {
	dir, cache, mode string
	jobs, histLimit  int
	auditRate        float64
	pipeline         []string      // pass-list override (tests)
	drainGrace       time.Duration // 0 means defaultDrainGrace

	// Shared-cache hosting (-cas-serve): mount /cas/ over a DiskCAS under
	// the cache directory, with per-tenant quotas and lease-based
	// coalescing. The resident builder publishes through the same policy
	// layer in-process (tenant "serve").
	casServe   bool
	casQuota   int64
	casGrace   time.Duration
	casMaxBody int64
}

// newBuildServer constructs the resident builder with default tuning.
func newBuildServer(dir, cache, mode string, jobs, histLimit int) (*buildServer, error) {
	return newBuildServerCfg(serveConfig{dir: dir, cache: cache, mode: mode, jobs: jobs, histLimit: histLimit})
}

// newBuildServerCfg constructs the resident builder. Unlike one-shot
// builds, serve records flight-recorder history for every mode: the state
// directory exists even when the policy itself persists nothing.
func newBuildServerCfg(cfg serveConfig) (*buildServer, error) {
	cmode, err := parseMode(cfg.mode)
	if err != nil {
		return nil, err
	}
	stateDir := resolveStateDir(cfg.dir, cfg.cache)
	if err := os.MkdirAll(stateDir, 0o755); err != nil {
		return nil, err
	}
	histPath := history.Path(stateDir)
	casDir := filepath.Join(stateDir, "cas")
	if cmode != compiler.ModeStateful && cmode != compiler.ModePredictive {
		stateDir = ""
	}

	var casSrv *cas.Server
	var casStore cas.Store
	if cfg.casServe {
		// NewServer over a DiskCAS runs crash-restart recovery here: temp
		// sweep, ref-marker reload, accounting rebuild (docs/ROBUSTNESS.md).
		casSrv = cas.NewServer(cas.NewDiskCAS(casDir, nil), cas.ServerOptions{
			TenantQuota:  cfg.casQuota,
			LeaseGrace:   cfg.casGrace,
			MaxBodyBytes: cfg.casMaxBody,
			Metrics:      obs.NewRegistry(),
		})
		// The resident builder shares through the same policy layer,
		// in-process, under its own tenant namespace.
		casStore = casSrv.Local("serve")
	}

	b, err := buildsys.NewBuilder(buildsys.Options{
		Mode:         cmode,
		StateDir:     stateDir,
		Workers:      cfg.jobs,
		HistoryPath:  histPath,
		HistoryLimit: cfg.histLimit,
		AuditRate:    cfg.auditRate,
		Pipeline:     cfg.pipeline,
		CAS:          casStore,
	})
	if err != nil {
		return nil, err
	}
	if cfg.drainGrace <= 0 {
		cfg.drainGrace = defaultDrainGrace
	}
	return &buildServer{
		dir: cfg.dir, histPath: histPath, mode: cfg.mode,
		drainGrace: cfg.drainGrace, builder: b, casSrv: casSrv,
	}, nil
}

// pollOnce reloads the project and rebuilds when any unit's content
// changed (or on the first call). Overlap-safe: when another build is
// already in flight the poll is skipped, not queued, and a draining server
// builds nothing. Reports whether a build ran.
func (s *buildServer) pollOnce(ctx context.Context) (bool, error) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		return false, nil
	}
	if !s.buildMu.TryLock() {
		s.mu.Lock()
		s.pollsSkipped++
		s.mu.Unlock()
		return false, nil
	}
	defer s.buildMu.Unlock()

	snap, err := project.LoadDir(s.dir)
	if err != nil {
		s.noteErr(err)
		return false, err
	}
	s.mu.Lock()
	unchanged := s.lastSnap != nil && len(project.Diff(s.lastSnap, snap)) == 0
	s.mu.Unlock()
	if unchanged {
		return false, nil
	}
	rep, err := s.builder.BuildContext(ctx, snap)
	if rep != nil {
		// State/history I/O degradation is non-fatal for a resident daemon;
		// log it (the state.io_error / history.io_error counters on /metrics
		// carry the same signal for alerting). A cancelled build still
		// surfaces the warnings its partial report accumulated.
		for _, w := range rep.Warnings {
			fmt.Fprintln(os.Stderr, "minibuild serve: warning:", w)
		}
	}
	if err != nil {
		s.noteErr(err)
		return false, err
	}
	s.mu.Lock()
	s.lastSnap = snap
	s.builds++
	s.lastErr = ""
	s.lastTime = time.Now()
	s.mu.Unlock()
	return true, nil
}

// setDraining flips the server into drain mode: /healthz reports
// "draining" and subsequent polls build nothing.
func (s *buildServer) setDraining() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

func (s *buildServer) noteErr(err error) {
	s.mu.Lock()
	s.lastErr = err.Error()
	s.mu.Unlock()
}

// handler assembles the daemon's HTTP mux.
func (s *buildServer) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/builds", s.handleBuilds)
	mux.HandleFunc("/dash", s.handleDash)
	if s.casSrv != nil {
		mux.Handle("/cas/", s.casSrv.Handler())
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// handleMetrics renders the builder's counters registry as Prometheus text
// exposition format — counters first, then the latency histograms
// (unit compile, skip decision, build wall) as Prometheus histograms.
// Values reconcile exactly with Builder.Metrics() / Builder.Histograms().
// With -cas-serve on, the hosted cache's registry (server-side cas.*
// counters, cas.serve_ns latency) merges in by addition — sound because
// counters are sums and every histogram shares one bucket geometry.
func (s *buildServer) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	ctrs, hists := s.metricsSnapshots()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, obs.FormatProm(ctrs))
	fmt.Fprint(w, obs.FormatPromHist(hists))
}

// metricsSnapshots returns the daemon's merged counter and histogram
// snapshots (builder registry + hosted CAS registry when present).
func (s *buildServer) metricsSnapshots() (map[string]int64, map[string]obs.HistogramSnapshot) {
	ctrs, hists := s.builder.Metrics(), s.builder.Histograms()
	if s.casSrv != nil {
		if reg := s.casSrv.Metrics(); reg != nil {
			ctrs = obs.MergeCounters(ctrs, reg.Snapshot())
			hists = obs.MergeHistSnapshots(hists, reg.HistSnapshot())
		}
	}
	return ctrs, hists
}

// handleHealthz reports liveness and the last build outcome. Status is
// "ok", "degraded" (last build errored), or "draining" (shutdown in
// progress — overrides degraded).
func (s *buildServer) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	out := map[string]any{
		"status":             "ok",
		"builds":             s.builds,
		"last_build_unix_ms": s.lastTime.UnixMilli(),
	}
	if s.pollsSkipped > 0 {
		out["polls_skipped"] = s.pollsSkipped
	}
	if s.lastErr != "" {
		out["status"] = "degraded"
		out["last_error"] = s.lastErr
	}
	if s.draining {
		out["status"] = "draining"
		out["draining"] = true
	}
	s.mu.Unlock()
	if s.casSrv != nil {
		out["cas_inflight"] = s.casSrv.InFlight()
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

// handleBuilds serves recent flight-recorder records as a JSON array
// (newest last); ?n= bounds the count.
func (s *buildServer) handleBuilds(w http.ResponseWriter, r *http.Request) {
	recs, err := history.Load(s.histPath)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if nv := r.URL.Query().Get("n"); nv != "" {
		var n int
		if _, err := fmt.Sscanf(nv, "%d", &n); err == nil && n > 0 && len(recs) > n {
			recs = recs[len(recs)-n:]
		}
	}
	if recs == nil {
		recs = []history.Record{}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(recs)
}
