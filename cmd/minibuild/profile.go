package main

// minibuild profile — the critical-path build profiler. It replays a
// flight-recorder record's scheduling timeline (internal/history) through
// the critical-path analysis (internal/obs) and renders:
//
//   - a waterfall table of the compile phase (per unit: worker, start
//     offset, duration bar);
//   - the critical chain — the unit sequence that bounded the build's wall
//     time — with per-pass time attribution from the record's decision
//     tables; and
//   - the wait blame: queue wait vs dependency wait vs worker starvation,
//     plus a per-worker utilization table.
//
// -build N selects a record by sequence number (default: the newest record
// that carries a timeline); -json emits the analysis machine-readably (the
// `make profile-smoke` CI check parses it).

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"statefulcc/internal/history"
	"statefulcc/internal/obs"
)

func runProfile(args []string) error {
	fs := flag.NewFlagSet("minibuild profile", flag.ContinueOnError)
	dir, cache := stateDirFlags(fs)
	buildSeq := fs.Int("build", 0, "record sequence number to profile (0 = newest with a timeline)")
	asJSON := fs.Bool("json", false, "emit the analysis as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	recs, path, err := loadHistory(*dir, *cache)
	if err != nil {
		return err
	}
	rec, err := pickTimelineRecord(recs, *buildSeq, path)
	if err != nil {
		return err
	}
	tl := rec.Timeline.ToObs()
	if err := tl.Validate(); err != nil {
		return fmt.Errorf("build %d: corrupt timeline: %w", rec.Seq, err)
	}
	cp := obs.Analyze(tl)
	if *asJSON {
		return json.NewEncoder(os.Stdout).Encode(profileJSON(rec, tl, cp))
	}
	renderProfile(os.Stdout, rec, tl, cp)
	return nil
}

// pickTimelineRecord selects the record to profile: an explicit -build N,
// or the newest record carrying a timeline.
func pickTimelineRecord(recs []history.Record, seq int, path string) (*history.Record, error) {
	if len(recs) == 0 {
		return nil, fmt.Errorf("no build history at %s (run a build first)", path)
	}
	if seq > 0 {
		for i := range recs {
			if recs[i].Seq == seq {
				if recs[i].Timeline == nil {
					return nil, fmt.Errorf("build %d has no scheduling timeline (recorded before the profiler existed?)", seq)
				}
				return &recs[i], nil
			}
		}
		return nil, fmt.Errorf("no record with seq %d in %s", seq, path)
	}
	for i := len(recs) - 1; i >= 0; i-- {
		if recs[i].Timeline != nil {
			return &recs[i], nil
		}
	}
	return nil, fmt.Errorf("no record in %s carries a scheduling timeline (rebuild with this version first)", path)
}

// profileJSON shapes the analysis for -json output.
func profileJSON(rec *history.Record, tl *obs.Timeline, cp *obs.CritPath) map[string]any {
	chain := make([]map[string]any, 0, len(cp.Chain))
	for _, l := range cp.Chain {
		link := map[string]any{
			"unit": l.Unit, "worker": l.Worker, "outcome": l.Outcome,
			"start_ns": l.StartNS, "end_ns": l.EndNS, "self_ns": l.SelfNS,
		}
		if l.WaitNS > 0 {
			link["wait_ns"] = l.WaitNS
			link["wait_cause"] = l.WaitCause
		}
		if passes := passAttribution(rec, l.Unit, 0); len(passes) > 0 {
			link["passes"] = passes
		}
		chain = append(chain, link)
	}
	workers := make([]map[string]any, 0, len(cp.Workers))
	for _, wl := range cp.Workers {
		workers = append(workers, map[string]any{
			"worker": wl.Worker, "units": wl.Units,
			"busy_ns": wl.BusyNS, "idle_ns": wl.IdleNS,
			"longest_gap_ns": wl.LongestGapNS, "utilization_pct": wl.UtilizationPct,
		})
	}
	return map[string]any{
		"seq": rec.Seq, "mode": rec.Mode, "workers": tl.Workers,
		"wall_ns": cp.WallNS, "compile_wall_ns": cp.CompileWallNS, "link_ns": cp.LinkNS,
		"units_compiled": rec.UnitsCompiled, "units_cached": rec.UnitsCached,
		"critical_path":      chain,
		"critical_path_ns":   cp.PathNS,
		"critical_total_ns":  cp.TotalNS,
		"longest_unit":       cp.LongestUnit,
		"longest_unit_ns":    cp.LongestUnitNS,
		"queue_wait_ns":      cp.QueueWaitNS,
		"dependency_wait_ns": cp.DependencyWaitNS,
		"starvation_ns":      cp.StarvationNS,
		"worker_loads":       workers,
	}
}

// passAttribution returns unit's per-pass execution times from the
// record's decision table, largest first (top bounds the list; 0 = all).
func passAttribution(rec *history.Record, unit string, top int) []map[string]any {
	u, ok := rec.Units[unit]
	if !ok {
		return nil
	}
	type pt struct {
		pass string
		ns   int64
	}
	var pts []pt
	for _, p := range u.Passes {
		if p.RunNS > 0 {
			pts = append(pts, pt{p.Pass, p.RunNS})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].ns != pts[j].ns {
			return pts[i].ns > pts[j].ns
		}
		return pts[i].pass < pts[j].pass
	})
	if top > 0 && len(pts) > top {
		pts = pts[:top]
	}
	out := make([]map[string]any, 0, len(pts))
	for _, p := range pts {
		out = append(out, map[string]any{"pass": p.pass, "run_ns": p.ns})
	}
	return out
}

// waterfallWidth is the bar width of the waterfall/utilization charts.
const waterfallWidth = 40

// renderProfile writes the human-readable profile report.
func renderProfile(w io.Writer, rec *history.Record, tl *obs.Timeline, cp *obs.CritPath) {
	fmt.Fprintf(w, "build %d (%s, %d workers): wall %.3fms = compile %.3fms + link %.3fms; %d compiled, %d cached\n",
		rec.Seq, rec.Mode, tl.Workers, fms(cp.WallNS), fms(cp.CompileWallNS), fms(cp.LinkNS),
		rec.UnitsCompiled, rec.UnitsCached)

	// Waterfall: scheduled events by start time, bars scaled to the
	// compile phase.
	var sched []obs.UnitEvent
	for _, e := range tl.Events {
		if e.Scheduled() {
			e.StartNS -= tl.CompileStartNS
			e.EndNS -= tl.CompileStartNS
			sched = append(sched, e)
		}
	}
	sort.Slice(sched, func(i, j int) bool {
		if sched[i].StartNS != sched[j].StartNS {
			return sched[i].StartNS < sched[j].StartNS
		}
		return sched[i].Unit < sched[j].Unit
	})
	onChain := make(map[string]bool, len(cp.Chain))
	for _, l := range cp.Chain {
		onChain[l.Unit] = true
	}
	if len(sched) > 0 {
		fmt.Fprintf(w, "\ncompile waterfall (%d units; * = on the critical path):\n", len(sched))
		for _, e := range sched {
			mark := " "
			if onChain[e.Unit] {
				mark = "*"
			}
			fmt.Fprintf(w, "  %s w%-2d %-20s %10.3fms %s %s\n",
				mark, e.Worker, e.Unit, fms(e.DurNS()), bar(e.StartNS, e.EndNS, cp.CompileWallNS), e.Outcome)
		}
	}

	// The critical chain, with per-pass attribution from the record.
	fmt.Fprintf(w, "\ncritical path: %d units, %.3fms compile + %.3fms wait = %.3fms of %.3fms compile wall (longest unit %s %.3fms)\n",
		len(cp.Chain), fms(cp.PathNS), fms(cp.TotalNS-cp.PathNS), fms(cp.TotalNS), fms(cp.CompileWallNS),
		cp.LongestUnit, fms(cp.LongestUnitNS))
	for _, l := range cp.Chain {
		wait := ""
		if l.WaitNS > 0 {
			wait = fmt.Sprintf("  (+%.3fms %s)", fms(l.WaitNS), l.WaitCause)
		}
		fmt.Fprintf(w, "  %-20s w%-2d %10.3fms %s%s\n", l.Unit, l.Worker, fms(l.SelfNS), l.Outcome, wait)
		for _, p := range passAttribution(rec, l.Unit, 3) {
			fmt.Fprintf(w, "      %-18s %10.3fms\n", p["pass"], fms(p["run_ns"].(int64)))
		}
	}

	// Wait blame, largest cause first.
	type cause struct {
		name string
		ns   int64
	}
	causes := []cause{
		{obs.WaitQueue, cp.QueueWaitNS},
		{obs.WaitDependency, cp.DependencyWaitNS},
		{obs.WaitStarved, cp.StarvationNS},
	}
	sort.Slice(causes, func(i, j int) bool {
		if causes[i].ns != causes[j].ns {
			return causes[i].ns > causes[j].ns
		}
		return causes[i].name < causes[j].name
	})
	fmt.Fprintf(w, "\ntop wait causes:\n")
	for _, c := range causes {
		fmt.Fprintf(w, "  %-16s %10.3fms\n", c.name, fms(c.ns))
	}

	fmt.Fprintf(w, "\nworker utilization (compile phase):\n")
	for _, wl := range cp.Workers {
		fmt.Fprintf(w, "  w%-2d %3d units %10.3fms busy %5.1f%% %s longest gap %.3fms\n",
			wl.Worker, wl.Units, fms(wl.BusyNS), wl.UtilizationPct,
			bar(0, wl.BusyNS, cp.CompileWallNS), fms(wl.LongestGapNS))
	}

	// Shared-cache network adversity, when the build saw any: what the
	// degraded path cost and how the breaker behaved (docs/ROBUSTNESS.md).
	m := rec.Metrics
	if m[obs.CtrCASNetErrors]+m[obs.CtrCASRetries]+m[obs.CtrCASBreakerOpen]+
		m[obs.CtrCASBreakerTrips]+m[obs.CtrCASHedged] > 0 {
		fmt.Fprintf(w, "\nshared-cache network adversity:\n")
		fmt.Fprintf(w, "  net errors %d, retries %d, hedged %d (won %d)\n",
			m[obs.CtrCASNetErrors], m[obs.CtrCASRetries], m[obs.CtrCASHedged], m[obs.CtrCASHedgeWins])
		fmt.Fprintf(w, "  breaker: %d fast-fails while open, %d trips, %d probes, %d recoveries\n",
			m[obs.CtrCASBreakerOpen], m[obs.CtrCASBreakerTrips],
			m[obs.CtrCASBreakerProbes], m[obs.CtrCASBreakerRecovered])
	}
}

// bar renders [start,end) as a fixed-width interval bar over [0,total).
func bar(start, end, total int64) string {
	cells := make([]rune, waterfallWidth)
	for i := range cells {
		cells[i] = '·'
	}
	if total > 0 {
		lo := int(start * waterfallWidth / total)
		hi := int(end * waterfallWidth / total)
		if hi >= waterfallWidth {
			hi = waterfallWidth - 1
		}
		for i := lo; i <= hi && i >= 0; i++ {
			cells[i] = '█'
		}
	}
	return "|" + string(cells) + "|"
}

func fms(ns int64) float64 { return float64(ns) / 1e6 }
