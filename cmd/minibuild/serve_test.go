package main

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"statefulcc/internal/history"
	"statefulcc/internal/obs"
)

const serveProg = `
func main() int {
    var x int = 40;
    return x + 2;
}
`

func newTestServer(t *testing.T) *buildServer {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "main.mc"), []byte(serveProg), 0o644); err != nil {
		t.Fatal(err)
	}
	srv, err := newBuildServer(dir, filepath.Join(dir, ".minibuild"), "stateful", 1, 50)
	if err != nil {
		t.Fatal(err)
	}
	if built, err := srv.pollOnce(); err != nil || !built {
		t.Fatalf("initial build: built=%v err=%v", built, err)
	}
	return srv
}

// TestServeMetricsReconcile is the acceptance check: /metrics must be valid
// Prometheus text whose counter values reconcile exactly with the obs
// registry snapshot for the same build.
func TestServeMetricsReconcile(t *testing.T) {
	srv := newTestServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	res, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("/metrics status %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("/metrics content type %q", ct)
	}
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	parsed := obs.ParseProm(string(body))

	snap := srv.builder.Metrics()
	if len(parsed) != len(snap) {
		t.Fatalf("/metrics exposes %d counters, registry has %d", len(parsed), len(snap))
	}
	for name, v := range snap {
		if got := parsed[obs.PromName(name)]; got != v {
			t.Errorf("counter %s: /metrics=%d registry=%d", name, got, v)
		}
	}
	if parsed[obs.PromName(obs.CtrBuilds)] != 1 {
		t.Errorf("build count %d after one build", parsed[obs.PromName(obs.CtrBuilds)])
	}
	if parsed[obs.PromName(obs.CtrDecCold)] == 0 {
		t.Error("decision.cold_state absent from /metrics after a cold build")
	}
}

func TestServeHealthzAndBuilds(t *testing.T) {
	srv := newTestServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	res, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz struct {
		Status string `json:"status"`
		Builds int    `json:"builds"`
	}
	if err := json.NewDecoder(res.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if hz.Status != "ok" || hz.Builds != 1 {
		t.Errorf("healthz = %+v, want status ok with 1 build", hz)
	}

	res, err = ts.Client().Get(ts.URL + "/builds?n=5")
	if err != nil {
		t.Fatal(err)
	}
	var recs []history.Record
	if err := json.NewDecoder(res.Body).Decode(&recs); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if len(recs) != 1 || recs[0].Seq != 1 {
		t.Fatalf("/builds returned %+v, want one record with seq 1", recs)
	}
	if recs[0].Units["main.mc"].Passes == nil {
		t.Error("/builds record missing pass decisions")
	}
}

// TestServePollRebuilds: an on-disk edit triggers exactly one incremental
// rebuild; an unchanged poll is a no-op.
func TestServePollRebuilds(t *testing.T) {
	srv := newTestServer(t)

	if built, err := srv.pollOnce(); err != nil || built {
		t.Fatalf("unchanged poll rebuilt: built=%v err=%v", built, err)
	}

	path := filepath.Join(srv.dir, "main.mc")
	if err := os.WriteFile(path, []byte(serveProg+"\n// edit\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if built, err := srv.pollOnce(); err != nil || !built {
		t.Fatalf("edited poll did not rebuild: built=%v err=%v", built, err)
	}

	recs, err := history.Load(srv.histPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("%d history records after two builds, want 2", len(recs))
	}
	if recs[1].SkipRatePct <= 0 {
		t.Errorf("incremental rebuild skip rate %.1f%%, want > 0", recs[1].SkipRatePct)
	}
}
