package main

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"statefulcc/internal/history"
	"statefulcc/internal/obs"
	"statefulcc/internal/passes"
)

const serveProg = `
func main() int {
    var x int = 40;
    return x + 2;
}
`

func newTestServer(t *testing.T) *buildServer {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "main.mc"), []byte(serveProg), 0o644); err != nil {
		t.Fatal(err)
	}
	srv, err := newBuildServer(dir, filepath.Join(dir, ".minibuild"), "stateful", 1, 50)
	if err != nil {
		t.Fatal(err)
	}
	if built, err := srv.pollOnce(context.Background()); err != nil || !built {
		t.Fatalf("initial build: built=%v err=%v", built, err)
	}
	return srv
}

// TestServeMetricsReconcile is the acceptance check: /metrics must be valid
// Prometheus text whose counter values reconcile exactly with the obs
// registry snapshot for the same build.
func TestServeMetricsReconcile(t *testing.T) {
	srv := newTestServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	res, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("/metrics status %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("/metrics content type %q", ct)
	}
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	parsed := obs.ParseProm(string(body))

	// The exposition now carries counters plus histogram samples; every
	// parsed line must be one or the other — no unexplained families.
	snap := srv.builder.Metrics()
	known := make(map[string]bool, len(snap))
	for name := range snap {
		known[obs.PromName(name)] = true
	}
	for name := range srv.builder.Histograms() {
		pn := obs.PromName(name)
		known[pn+"_sum"] = true
		known[pn+"_count"] = true
	}
	counters := 0
	for name := range parsed {
		switch {
		case known[name]:
			counters++
		case strings.Contains(name, "_bucket{le="):
		default:
			t.Errorf("/metrics exposes unexplained sample %q", name)
		}
	}
	if want := len(snap) + 2*len(srv.builder.Histograms()); counters != want {
		t.Fatalf("/metrics exposes %d known samples, want %d", counters, want)
	}
	for name, v := range snap {
		if got := parsed[obs.PromName(name)]; got != v {
			t.Errorf("counter %s: /metrics=%d registry=%d", name, got, v)
		}
	}
	if parsed[obs.PromName(obs.CtrBuilds)] != 1 {
		t.Errorf("build count %d after one build", parsed[obs.PromName(obs.CtrBuilds)])
	}
	if parsed[obs.PromName(obs.CtrDecCold)] == 0 {
		t.Error("decision.cold_state absent from /metrics after a cold build")
	}
}

func TestServeHealthzAndBuilds(t *testing.T) {
	srv := newTestServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	res, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz struct {
		Status string `json:"status"`
		Builds int    `json:"builds"`
	}
	if err := json.NewDecoder(res.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if hz.Status != "ok" || hz.Builds != 1 {
		t.Errorf("healthz = %+v, want status ok with 1 build", hz)
	}

	res, err = ts.Client().Get(ts.URL + "/builds?n=5")
	if err != nil {
		t.Fatal(err)
	}
	var recs []history.Record
	if err := json.NewDecoder(res.Body).Decode(&recs); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if len(recs) != 1 || recs[0].Seq != 1 {
		t.Fatalf("/builds returned %+v, want one record with seq 1", recs)
	}
	if recs[0].Units["main.mc"].Passes == nil {
		t.Error("/builds record missing pass decisions")
	}
}

// TestServePollRebuilds: an on-disk edit triggers exactly one incremental
// rebuild; an unchanged poll is a no-op.
func TestServePollRebuilds(t *testing.T) {
	srv := newTestServer(t)

	if built, err := srv.pollOnce(context.Background()); err != nil || built {
		t.Fatalf("unchanged poll rebuilt: built=%v err=%v", built, err)
	}

	path := filepath.Join(srv.dir, "main.mc")
	if err := os.WriteFile(path, []byte(serveProg+"\n// edit\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if built, err := srv.pollOnce(context.Background()); err != nil || !built {
		t.Fatalf("edited poll did not rebuild: built=%v err=%v", built, err)
	}

	recs, err := history.Load(srv.histPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("%d history records after two builds, want 2", len(recs))
	}
	if recs[1].SkipRatePct <= 0 {
		t.Errorf("incremental rebuild skip rate %.1f%%, want > 0", recs[1].SkipRatePct)
	}
}

// TestServeHTTPServerHardened: the daemon's http.Server must carry the
// slowloris-proofing timeouts (a half-sent request header or an idle
// keep-alive connection must not be held forever).
func TestServeHTTPServerHardened(t *testing.T) {
	hs := newHTTPServer(http.NewServeMux())
	if hs.ReadHeaderTimeout <= 0 {
		t.Error("ReadHeaderTimeout unset: slowloris can pin a connection")
	}
	if hs.ReadTimeout <= 0 {
		t.Error("ReadTimeout unset")
	}
	if hs.IdleTimeout <= 0 {
		t.Error("IdleTimeout unset")
	}
}

// TestServePollSkipsOverlap: a poll that cannot start (another build in
// flight) is skipped — counted, not queued — and a draining server builds
// nothing.
func TestServePollSkipsOverlap(t *testing.T) {
	srv := newTestServer(t)

	srv.buildMu.Lock()
	built, err := srv.pollOnce(context.Background())
	srv.buildMu.Unlock()
	if built || err != nil {
		t.Fatalf("overlapping poll: built=%v err=%v, want skip", built, err)
	}
	srv.mu.Lock()
	skipped := srv.pollsSkipped
	srv.mu.Unlock()
	if skipped != 1 {
		t.Errorf("pollsSkipped = %d, want 1", skipped)
	}

	// Draining: even with the build lock free and the project edited, no
	// build runs.
	if err := os.WriteFile(filepath.Join(srv.dir, "main.mc"), []byte(serveProg+"\n// edit\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	srv.setDraining()
	if built, err := srv.pollOnce(context.Background()); built || err != nil {
		t.Fatalf("draining poll: built=%v err=%v, want no-op", built, err)
	}
}

// TestServeSIGTERMDrain is the end-to-end drain test: a real SIGTERM lands
// while a build is in flight (held open by the faulthook pass in block
// mode). /healthz must flip to "draining", the in-flight build must be
// allowed to finish cleanly, serveLoop must return nil, and a cold start
// on the same state directory must find consistent, loadable state.
func TestServeSIGTERMDrain(t *testing.T) {
	dir := t.TempDir()
	cache := filepath.Join(dir, ".minibuild")
	if err := os.WriteFile(filepath.Join(dir, "main.mc"), []byte(serveProg), 0o644); err != nil {
		t.Fatal(err)
	}
	// faulthook rides at the end of the quick pipeline so an armed block
	// can hold a compile in flight; disarmed it is a dormant no-op.
	pipeline := append(append([]string(nil), passes.QuickPipeline...), "faulthook")
	cfg := serveConfig{
		dir: dir, cache: cache, mode: "stateful", jobs: 1, histLimit: 20,
		pipeline: pipeline, drainGrace: 20 * time.Second,
	}
	srv, err := newBuildServerCfg(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- serveLoop(ctx, srv, ln, 20*time.Millisecond, io.Discard) }()

	waitFor(t, "initial build", func() bool { return healthz(t, base).Builds >= 1 })

	// Arm the block, edit the function body (the IR must change so the
	// faulthook slot reruns instead of being skipped as dormant), and wait
	// for the in-flight build to reach the blocked pass.
	passes.ArmFaultHook(passes.FaultConfig{Mode: passes.FaultBlock, Times: 1})
	defer passes.DisarmFaultHook()
	edited := "\nfunc main() int {\n    var x int = 40;\n    return x + 3;\n}\n"
	if err := os.WriteFile(filepath.Join(dir, "main.mc"), []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "blocked build in flight", func() bool { return passes.FaultHookFired() >= 1 })

	// A real SIGTERM: the daemon must flip to draining while the build is
	// still held open.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "healthz draining", func() bool { return healthz(t, base).Status == "draining" })

	// Release the build; the drain lets it finish and shuts down cleanly.
	passes.ReleaseFaultHook()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serveLoop returned %v after drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serveLoop did not return after drain")
	}

	// Cold start on the same directories: the state the drained daemon left
	// behind must load cleanly (no I/O errors, warm state records found).
	srv2, err := newBuildServerCfg(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if built, err := srv2.pollOnce(context.Background()); err != nil || !built {
		t.Fatalf("cold start after drain: built=%v err=%v", built, err)
	}
	m := srv2.builder.Metrics()
	if m[obs.CtrStateIOErrors] != 0 {
		t.Errorf("cold start hit %d state I/O errors; state dir inconsistent after drain", m[obs.CtrStateIOErrors])
	}
	if m[obs.CtrStateLoads] == 0 {
		t.Error("cold start loaded no persisted state; drained build did not persist")
	}
}

// healthz fetches and decodes /healthz.
func healthz(t *testing.T, base string) (hz struct {
	Status string `json:"status"`
	Builds int    `json:"builds"`
}) {
	t.Helper()
	res, err := http.Get(base + "/healthz")
	if err != nil {
		return hz // server may not be accepting yet; caller polls
	}
	defer res.Body.Close()
	_ = json.NewDecoder(res.Body).Decode(&hz)
	return hz
}

// waitFor polls cond until it holds or a deadline expires.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
