package main

// The live build dashboard: `minibuild serve` /dash renders the flight
// recorder as one self-contained HTML page — inline SVG, inline CSS, no
// scripts, no external fetches — so it works from curl output saved to a
// file as well as a browser pointed at the daemon:
//
//   - the last build's scheduling waterfall (per-unit gantt bars on the
//     compile phase, colored by outcome, critical path outlined);
//   - skip-rate and unit-compile p50/p99 sparklines over the history
//     window; and
//   - quarantine / soundness-audit status from the newest record.
//
// The page is a pure function of the history file plus the resident
// builder's histograms; refreshing re-reads both (meta refresh keeps it
// live without JavaScript).

import (
	"fmt"
	"html"
	"net/http"
	"sort"
	"strings"

	"statefulcc/internal/history"
	"statefulcc/internal/obs"
)

// Dashboard geometry.
const (
	dashGanttWidth   = 720 // px, bar area of the waterfall
	dashGanttRow     = 14  // px per unit row
	dashGanttMaxRows = 80  // longest-units cap on rendered rows
	dashSparkWidth   = 240
	dashSparkHeight  = 48
)

// handleDash serves the dashboard page.
func (s *buildServer) handleDash(w http.ResponseWriter, _ *http.Request) {
	recs, err := history.Load(s.histPath)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	var sb strings.Builder
	sb.WriteString(`<!DOCTYPE html><html><head><meta charset="utf-8">` +
		`<meta http-equiv="refresh" content="2">` +
		`<title>minibuild dash</title><style>` +
		`body{font:13px/1.5 monospace;margin:1.5em;background:#fafafa;color:#222}` +
		`h1{font-size:16px}h2{font-size:14px;margin-top:1.5em}` +
		`table{border-collapse:collapse}td,th{padding:2px 10px;text-align:right;border-bottom:1px solid #ddd}` +
		`th{text-align:left}td:first-child{text-align:left}` +
		`.ok{color:#2a7}.warn{color:#c60}.bad{color:#c33}` +
		`svg{background:#fff;border:1px solid #ddd}` +
		`</style></head><body>`)
	fmt.Fprintf(&sb, "<h1>minibuild serve — %s (mode %s)</h1>", html.EscapeString(s.dir), html.EscapeString(s.mode))

	if len(recs) == 0 {
		sb.WriteString("<p>no builds recorded yet</p></body></html>")
		writeHTML(w, sb.String())
		return
	}
	last := recs[len(recs)-1]

	remote := ""
	if last.UnitsRemote > 0 {
		remote = fmt.Sprintf(" (%d from shared cache)", last.UnitsRemote)
	}
	fmt.Fprintf(&sb, "<p>build <b>#%d</b>: %.1fms wall (%.1fms compile, %.1fms link), %d compiled / %d cached%s, skip rate %.1f%%</p>",
		last.Seq, fms(last.TotalNS), fms(last.CompileNS), fms(last.LinkNS),
		last.UnitsCompiled, last.UnitsCached, remote, last.SkipRatePct)

	dashGantt(&sb, &last)
	dashSparklines(&sb, recs)
	dashStatus(&sb, &last)

	sb.WriteString("</body></html>")
	writeHTML(w, sb.String())
}

func writeHTML(w http.ResponseWriter, page string) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, page)
}

// outcomeColor maps a timeline outcome to its bar color.
func outcomeColor(outcome string) string {
	switch outcome {
	case obs.OutcomePanic, obs.OutcomeError:
		return "#c33"
	case obs.OutcomeQuarantine:
		return "#c60"
	case obs.OutcomeRemote:
		return "#2a7"
	default:
		return "#369"
	}
}

// dashGantt renders the last build's compile-phase waterfall as SVG.
func dashGantt(sb *strings.Builder, rec *history.Record) {
	sb.WriteString("<h2>last-build waterfall</h2>")
	if rec.Timeline == nil {
		sb.WriteString("<p>record carries no scheduling timeline</p>")
		return
	}
	tl := rec.Timeline.ToObs()
	cp := obs.Analyze(tl)
	onChain := make(map[string]bool, len(cp.Chain))
	for _, l := range cp.Chain {
		onChain[l.Unit] = true
	}

	var sched []obs.UnitEvent
	skips := 0
	for _, e := range tl.Events {
		if e.Scheduled() {
			e.StartNS -= tl.CompileStartNS
			e.EndNS -= tl.CompileStartNS
			sched = append(sched, e)
		} else {
			skips++
		}
	}
	if len(sched) == 0 {
		fmt.Fprintf(sb, "<p>fully cached build (%d skips) — nothing scheduled</p>", skips)
		return
	}
	sort.Slice(sched, func(i, j int) bool {
		if sched[i].StartNS != sched[j].StartNS {
			return sched[i].StartNS < sched[j].StartNS
		}
		return sched[i].Unit < sched[j].Unit
	})
	truncated := 0
	if len(sched) > dashGanttMaxRows {
		truncated = len(sched) - dashGanttMaxRows
		sched = sched[:dashGanttMaxRows]
	}

	span := cp.CompileWallNS
	if span <= 0 {
		span = 1
	}
	labelW := 180
	height := len(sched)*dashGanttRow + 4
	fmt.Fprintf(sb, `<svg width="%d" height="%d">`, labelW+dashGanttWidth+8, height)
	for i, e := range sched {
		y := i * dashGanttRow
		x := labelW + int(e.StartNS*int64(dashGanttWidth)/span)
		wd := int(e.DurNS() * int64(dashGanttWidth) / span)
		if wd < 1 {
			wd = 1
		}
		stroke := ""
		if onChain[e.Unit] {
			stroke = ` stroke="#000" stroke-width="1"`
		}
		fmt.Fprintf(sb, `<text x="%d" y="%d" font-size="10">%s w%d</text>`,
			2, y+10, html.EscapeString(e.Unit), e.Worker)
		fmt.Fprintf(sb, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s"%s><title>%s: %.3fms on w%d (%s)</title></rect>`,
			x, y+2, wd, dashGanttRow-4, outcomeColor(e.Outcome), stroke,
			html.EscapeString(e.Unit), fms(e.DurNS()), e.Worker, e.Outcome)
	}
	sb.WriteString("</svg>")
	fmt.Fprintf(sb, "<p>%d scheduled, %d cache skips; critical path %d units %.1fms of %.1fms compile wall (outlined); waits: queue %.1fms, dependency %.1fms, starvation %.1fms</p>",
		len(sched)+truncated, skips, len(cp.Chain), fms(cp.TotalNS), fms(cp.CompileWallNS),
		fms(cp.QueueWaitNS), fms(cp.DependencyWaitNS), fms(cp.StarvationNS))
	if truncated > 0 {
		fmt.Fprintf(sb, "<p>(%d shortest rows omitted)</p>", truncated)
	}
}

// unitLatencyQuantile estimates the q-quantile of one record's compiled
// unit latencies (sorted exact quantile — each record is small).
func unitLatencyQuantile(rec *history.Record, q float64) int64 {
	var ns []int64
	for _, u := range rec.Units {
		if !u.Cached && u.CompileNS > 0 {
			ns = append(ns, u.CompileNS)
		}
	}
	if len(ns) == 0 {
		return 0
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	i := int(q * float64(len(ns)-1))
	return ns[i]
}

// sparkline renders vals as a polyline SVG, scaled to its own max.
func sparkline(sb *strings.Builder, label string, vals []float64, unit string) {
	maxV := 0.0
	for _, v := range vals {
		if v > maxV {
			maxV = v
		}
	}
	fmt.Fprintf(sb, `<span style="display:inline-block;margin-right:2em">%s (max %.1f%s)<br>`,
		html.EscapeString(label), maxV, unit)
	fmt.Fprintf(sb, `<svg width="%d" height="%d">`, dashSparkWidth, dashSparkHeight)
	if len(vals) > 1 && maxV > 0 {
		pts := make([]string, len(vals))
		for i, v := range vals {
			x := float64(i) * float64(dashSparkWidth-4) / float64(len(vals)-1)
			y := float64(dashSparkHeight-4) * (1 - v/maxV)
			pts[i] = fmt.Sprintf("%.1f,%.1f", x+2, y+2)
		}
		fmt.Fprintf(sb, `<polyline points="%s" fill="none" stroke="#369" stroke-width="1.5"/>`,
			strings.Join(pts, " "))
	}
	sb.WriteString("</svg></span>")
}

// dashSparklines renders the history-window trend charts.
func dashSparklines(sb *strings.Builder, recs []history.Record) {
	fmt.Fprintf(sb, "<h2>history window (%d builds)</h2>", len(recs))
	skip := make([]float64, len(recs))
	p50 := make([]float64, len(recs))
	p99 := make([]float64, len(recs))
	wall := make([]float64, len(recs))
	for i := range recs {
		skip[i] = recs[i].SkipRatePct
		p50[i] = fms(unitLatencyQuantile(&recs[i], 0.50))
		p99[i] = fms(unitLatencyQuantile(&recs[i], 0.99))
		wall[i] = fms(recs[i].TotalNS)
	}
	sparkline(sb, "skip rate", skip, "%")
	sparkline(sb, "unit p50", p50, "ms")
	sparkline(sb, "unit p99", p99, "ms")
	sparkline(sb, "build wall", wall, "ms")
}

// dashStatus renders the quarantine / soundness-audit panel from the
// newest record.
func dashStatus(sb *strings.Builder, rec *history.Record) {
	sb.WriteString("<h2>quarantine &amp; audit</h2><table>")
	var quarantined []string
	for name, u := range rec.Units {
		if u.Quarantine != "" {
			quarantined = append(quarantined, fmt.Sprintf("%s (%s)", name, u.Quarantine))
		}
	}
	sort.Strings(quarantined)
	cls, val := "ok", "none"
	if len(quarantined) > 0 {
		cls, val = "warn", html.EscapeString(strings.Join(quarantined, ", "))
	}
	fmt.Fprintf(sb, `<tr><td>quarantined units</td><td class="%s">%s</td></tr>`, cls, val)

	m := rec.Metrics
	fmt.Fprintf(sb, "<tr><td>quarantines engaged / lifted</td><td>%d / %d</td></tr>",
		m["quarantine.engaged"], m["quarantine.lifted"])
	cls = "ok"
	if m["audit.unsound"] > 0 {
		cls = "bad"
	}
	fmt.Fprintf(sb, `<tr><td>audits sampled / unsound</td><td class="%s">%d / %d</td></tr>`,
		cls, m["audit.sampled"], m["audit.unsound"])
	cls = "ok"
	if m["state.io_error"]+m["history.io_error"] > 0 {
		cls = "warn"
	}
	fmt.Fprintf(sb, `<tr><td>state / history I/O errors</td><td class="%s">%d / %d</td></tr>`,
		cls, m["state.io_error"], m["history.io_error"])
	fmt.Fprintf(sb, "<tr><td>pass panics isolated</td><td>%d</td></tr>", m["build.panic"])
	if hit, miss := m[obs.CtrCASHits], m[obs.CtrCASMisses]; hit+miss > 0 {
		rate := 100 * float64(hit) / float64(hit+miss)
		cls = "ok"
		if m[obs.CtrCASVerifyFailed] > 0 {
			cls = "warn"
		}
		fmt.Fprintf(sb, `<tr><td>shared cache hits / misses (rate)</td><td>%d / %d (%.1f%%)</td></tr>`,
			hit, miss, rate)
		fmt.Fprintf(sb, `<tr><td>shared cache verify failures</td><td class="%s">%d</td></tr>`,
			cls, m[obs.CtrCASVerifyFailed])
	}
	if netErr, fastFail := m[obs.CtrCASNetErrors], m[obs.CtrCASBreakerOpen]; netErr+fastFail > 0 {
		cls = "warn"
		fmt.Fprintf(sb, `<tr><td>shared cache net errors / breaker fast-fails</td><td class="%s">%d / %d</td></tr>`,
			cls, netErr, fastFail)
	}
	if trips := m[obs.CtrCASBreakerTrips]; trips > 0 {
		cls = "warn"
		if m[obs.CtrCASBreakerRecovered] >= trips {
			cls = "ok" // every trip has recovered: the backend is re-engaged
		}
		fmt.Fprintf(sb, `<tr><td>breaker trips / probes / recoveries</td><td class="%s">%d / %d / %d</td></tr>`,
			cls, trips, m[obs.CtrCASBreakerProbes], m[obs.CtrCASBreakerRecovered])
	}
	if hedged := m[obs.CtrCASHedged]; hedged > 0 {
		fmt.Fprintf(sb, `<tr><td>hedged fetches issued / won</td><td>%d / %d</td></tr>`,
			hedged, m[obs.CtrCASHedgeWins])
	}
	if rec, orph := m[obs.CtrCASRecoveredRefs], m[obs.CtrCASRecoveredOrphans]; rec+orph > 0 {
		fmt.Fprintf(sb, `<tr><td>restart recovery: refs rebuilt / orphans dropped</td><td>%d / %d</td></tr>`,
			rec, orph)
	}
	if exp := m[obs.CtrCASLeaseExpired]; exp > 0 {
		fmt.Fprintf(sb, `<tr><td>coalescing leases expired</td><td class="warn">%d</td></tr>`, exp)
	}
	sb.WriteString("</table>")
}
