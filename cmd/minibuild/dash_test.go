package main

// Tests for the PR's observability surface on the daemon: the /metrics
// histogram exposition must reconcile exactly with the resident builder's
// registry, /dash must render the self-contained page, and the profile
// renderer must produce its sections from a recorded timeline.

import (
	"bytes"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"statefulcc/internal/history"
	"statefulcc/internal/obs"
)

// TestServeMetricsHistograms round-trips the /metrics histogram lines
// through ParsePromHist and reconciles them bucket-for-bucket with the
// builder's own snapshot — the ISSUE acceptance check for the exposition.
func TestServeMetricsHistograms(t *testing.T) {
	srv := newTestServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	res, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	parsed := obs.ParsePromHist(string(body))

	hists := srv.builder.Histograms()
	for _, name := range []string{obs.HistUnitCompileNS, obs.HistSkipDecisionNS, obs.HistBuildWallNS} {
		if _, ok := hists[name]; !ok {
			t.Errorf("builder registry missing histogram %s after a build", name)
		}
	}
	for name, want := range hists {
		got, ok := parsed[obs.PromName(name)]
		if !ok {
			if want.Count == 0 {
				continue // all-zero histograms are elided from the exposition
			}
			t.Errorf("/metrics missing histogram %s", name)
			continue
		}
		if got.Sum != want.Sum || got.Count != want.Count {
			t.Errorf("%s: /metrics sum/count %d/%d, registry %d/%d",
				name, got.Sum, got.Count, want.Sum, want.Count)
		}
		for i := range want.Buckets {
			if got.Buckets[i] != want.Buckets[i] {
				t.Errorf("%s: bucket %d: /metrics %d, registry %d", name, i, got.Buckets[i], want.Buckets[i])
			}
		}
	}
	// One build of one unit: both per-build histograms saw one observation.
	if c := parsed[obs.PromName(obs.HistBuildWallNS)].Count; c != 1 {
		t.Errorf("build.wall_ns count = %d after one build, want 1", c)
	}
	if c := parsed[obs.PromName(obs.HistUnitCompileNS)].Count; c != 1 {
		t.Errorf("unit.compile_ns count = %d after one compiled unit, want 1", c)
	}
}

func TestServeDash(t *testing.T) {
	srv := newTestServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	res, err := ts.Client().Get(ts.URL + "/dash")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("/dash status %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); ct != "text/html; charset=utf-8" {
		t.Errorf("/dash content type %q", ct)
	}
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	page := string(body)
	for _, want := range []string{
		"last-build waterfall",
		"<svg",          // the gantt and sparklines render inline SVG
		"main.mc",       // the built unit appears as a waterfall row
		"critical path", // the analysis summary line
		"history window",
		"quarantined units",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("/dash page missing %q", want)
		}
	}
	if strings.Contains(page, "<script") {
		t.Error("/dash page contains a script tag; it must stay JS-free")
	}
}

// TestRenderProfileSections drives the profile renderer over the record the
// test daemon just wrote and checks each advertised section appears.
func TestRenderProfileSections(t *testing.T) {
	srv := newTestServer(t)
	recs, err := history.Load(srv.histPath)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := pickTimelineRecord(recs, 0, srv.histPath)
	if err != nil {
		t.Fatal(err)
	}
	tl := rec.Timeline.ToObs()
	if err := tl.Validate(); err != nil {
		t.Fatal(err)
	}
	cp := obs.Analyze(tl)

	var buf bytes.Buffer
	renderProfile(&buf, rec, tl, cp)
	out := buf.String()
	for _, want := range []string{
		"compile waterfall", "critical path", "top wait causes", "worker utilization", "main.mc",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("profile output missing %q:\n%s", want, out)
		}
	}

	j := profileJSON(rec, tl, cp)
	for _, key := range []string{
		"seq", "workers", "wall_ns", "critical_path", "critical_total_ns",
		"longest_unit_ns", "queue_wait_ns", "dependency_wait_ns", "starvation_ns", "worker_loads",
	} {
		if _, ok := j[key]; !ok {
			t.Errorf("profile JSON missing key %q", key)
		}
	}
	if total, longest := j["critical_total_ns"].(int64), j["longest_unit_ns"].(int64); total < longest || longest <= 0 {
		t.Errorf("critical_total_ns %d below longest_unit_ns %d", total, longest)
	}

	// -build selection: an explicit unknown sequence must error distinctly.
	if _, err := pickTimelineRecord(recs, 999, srv.histPath); err == nil {
		t.Error("pickTimelineRecord accepted an unknown build sequence")
	}
}
