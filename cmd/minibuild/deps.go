package main

// The deps subcommand: print the dependency footprints recorded by
// footprint-traced builds (state format v6), diff them against the current
// tree, and — with -check — gate CI on missed invalidations, exiting 2 the
// way regress does.
//
//	minibuild deps -dir ./proj                 print per-unit footprints
//	minibuild deps -dir ./proj src/util.mc     one unit only
//	minibuild deps -dir ./proj -diff           drift vs the working tree
//	minibuild deps -dir ./proj -check          exit 2 on any violation
//
// -check applies two independent detectors:
//
//   - the offline paradox: a unit whose current declared content hash
//     equals the recorded one (the cache would say "unchanged") while the
//     recorded ground-truth footprint disagrees with the current bytes — a
//     missed invalidation waiting to happen; the reverse disagreement is
//     reported as redundant (wasted work, not a failure);
//
//   - the flight recorder: the newest history record carrying
//     footprint_missed units — a missed invalidation a live builder
//     already observed (the lying-invalidator case, invisible offline
//     because the lie lives in the builder process).

import (
	"flag"
	"fmt"
	"path/filepath"
	"sort"
	"strings"

	"statefulcc/internal/buildsys"
	"statefulcc/internal/footprint"
	"statefulcc/internal/history"
	"statefulcc/internal/passes"
	"statefulcc/internal/project"
	"statefulcc/internal/state"
	"statefulcc/internal/vfs"
)

func runDeps(args []string) error {
	fs := flag.NewFlagSet("minibuild deps", flag.ContinueOnError)
	dir, cache := stateDirFlags(fs)
	diff := fs.Bool("diff", false, "show only drift between recorded footprints and the working tree")
	check := fs.Bool("check", false, "CI gate: exit 2 on any missed invalidation (offline paradox or recorded by the last build)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	unit := fs.Arg(0)

	stateDir := resolveStateDir(*dir, *cache)
	fps, err := loadFootprints(stateDir)
	if err != nil {
		return err
	}
	if len(fps) == 0 {
		return fmt.Errorf("deps: no footprints recorded under %s (build with -footprint first)", stateDir)
	}
	snap, err := project.LoadDir(*dir)
	if err != nil {
		return err
	}

	units := make([]string, 0, len(fps))
	for name := range fps {
		units = append(units, name)
	}
	sort.Strings(units)
	if unit != "" {
		if _, ok := fps[unit]; !ok {
			return fmt.Errorf("deps: no footprint recorded for unit %q (units: %s)",
				unit, strings.Join(units, ", "))
		}
		units = []string{unit}
	}

	// deps -check uses the same pipeline fingerprint a default build
	// records; a build with a custom -pipeline needs its own live
	// cross-check (the build's footprint.missed counter), not this gate.
	pipeHash := footprint.HashStrings(passes.StandardPipeline)

	var missed, redundant []string
	var sb strings.Builder
	for _, name := range units {
		fp := fps[name]
		src, present := snap[name]
		cur := fp.Changed(src, pipeHash)
		switch {
		case !present:
			fmt.Fprintf(&sb, "unit %s — recorded footprint, unit no longer in tree\n", name)
			continue
		case len(cur) == 0 && buildsys.ContentHash(src) != fp.DeclaredHash:
			redundant = append(redundant, name)
			fmt.Fprintf(&sb, "unit %s — REDUNDANT: declared hash moved but footprint unchanged (recompile would be wasted)\n", name)
		case len(cur) > 0 && buildsys.ContentHash(src) == fp.DeclaredHash:
			missed = append(missed, name)
			fmt.Fprintf(&sb, "unit %s — MISSED INVALIDATION: declared hash unchanged but footprint changed:\n", name)
			for _, e := range cur {
				fmt.Fprintf(&sb, "  ~ %s\n", e)
			}
		case *check:
			// Quiet in CI mode: only violations and the verdict print.
			continue
		case *diff:
			if len(cur) > 0 {
				fmt.Fprintf(&sb, "unit %s — changed vs working tree:\n", name)
				for _, e := range cur {
					fmt.Fprintf(&sb, "  ~ %s\n", e)
				}
			}
			continue
		default:
			fmt.Fprintf(&sb, "unit %s — %d entries (declared %016x)\n", name, len(fp.Entries), fp.DeclaredHash)
			for _, e := range fp.Entries {
				fmt.Fprintf(&sb, "  %s\n", e)
			}
		}
	}

	// Flight-recorder detector: a live builder already caught a missed
	// invalidation (footprint_missed on the newest record).
	var recorded []string
	if recs, herr := history.Load(history.Path(stateDir)); herr == nil && len(recs) > 0 {
		recorded = recs[len(recs)-1].FootprintMissed
	}

	if *check {
		if len(missed) > 0 || len(recorded) > 0 {
			var rb strings.Builder
			rb.WriteString(sb.String())
			if len(recorded) > 0 {
				fmt.Fprintf(&rb, "last recorded build flagged missed invalidations: %s\n",
					strings.Join(recorded, ", "))
			}
			fmt.Fprintf(&rb, "deps check FAILED: %d offline + %d recorded missed invalidations (see docs/ROBUSTNESS.md)\n",
				len(missed), len(recorded))
			return errRegression{report: rb.String()}
		}
		fmt.Fprintf(&sb, "deps check passed: %d units cross-checked, 0 missed invalidations (%d redundant)\n",
			len(units), len(redundant))
	} else if len(recorded) > 0 {
		fmt.Fprintf(&sb, "note: last recorded build flagged missed invalidations: %s\n",
			strings.Join(recorded, ", "))
	}
	fmt.Print(sb.String())
	return nil
}

// loadFootprints reads every state file under stateDir and returns the
// recorded footprints keyed by unit name. Unreadable or footprint-less
// files are skipped (pre-v6 state, corrupt files, quarantine markers from
// untraced builds).
func loadFootprints(stateDir string) (map[string]*footprint.Record, error) {
	entries, err := vfs.OS.ReadDir(stateDir)
	if err != nil {
		return nil, fmt.Errorf("deps: %w", err)
	}
	out := make(map[string]*footprint.Record)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".state") {
			continue
		}
		st, err := state.LoadFS(vfs.OS, filepath.Join(stateDir, e.Name()))
		if err != nil || st == nil || st.Footprint == nil {
			continue
		}
		out[st.Unit] = st.Footprint
	}
	return out, nil
}
