package main

// Daemon-level network adversity: the production http.Server config must
// bound a slow-loris client without disturbing healthy /cas/ traffic, the
// per-request body limit must refuse oversized uploads with 413 (counted
// as cas.body_rejected), and a drain must wake blocked lease long-polls
// immediately instead of holding shutdown open for a grace window.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"statefulcc/internal/cas"
	"statefulcc/internal/obs"
)

// newCASServeServer builds a buildServer hosting /cas/ with the given
// tuning and runs its initial build.
func newCASServeServer(t *testing.T, cfg serveConfig) *buildServer {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "main.mc"), []byte(serveProg), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg.dir = dir
	cfg.cache = filepath.Join(dir, ".minibuild")
	if cfg.mode == "" {
		cfg.mode = "stateful"
	}
	if cfg.jobs == 0 {
		cfg.jobs = 1
	}
	if cfg.histLimit == 0 {
		cfg.histLimit = 50
	}
	cfg.casServe = true
	srv, err := newBuildServerCfg(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if built, err := srv.pollOnce(context.Background()); err != nil || !built {
		t.Fatalf("initial build: built=%v err=%v", built, err)
	}
	return srv
}

// TestServeSlowLorisBounded: a client that sends half a request header
// and then goes silent is disconnected by ReadHeaderTimeout, and a
// healthy /cas/ request served concurrently is unaffected — the stalled
// reader cannot pin the daemon.
func TestServeSlowLorisBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("slow-loris bound waits out the 5s ReadHeaderTimeout")
	}
	srv := newCASServeServer(t, serveConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := newHTTPServer(srv.handler())
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	// The loris: half a request line, then silence.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := io.WriteString(conn, "GET /metrics HT"); err != nil {
		t.Fatal(err)
	}

	// Healthy traffic flows while the loris dangles: a miss probe answers
	// 404 promptly.
	req, _ := http.NewRequest(http.MethodGet, base+"/cas/blob/"+cas.Sum([]byte("absent")).String(), nil)
	req.Header.Set(cas.TenantHeader, "probe")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("healthy request failed while the loris dangled: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("healthy miss probe: status %d, want 404", resp.StatusCode)
	}

	// The server must hang up on the loris within ReadHeaderTimeout plus
	// slack — our own 9s read deadline must never be what ends the wait.
	start := time.Now()
	conn.SetReadDeadline(time.Now().Add(9 * time.Second))
	buf := make([]byte, 64)
	for {
		_, rerr := conn.Read(buf)
		if rerr != nil {
			if nerr, ok := rerr.(net.Error); ok && nerr.Timeout() {
				t.Fatal("server never disconnected the slow-loris client")
			}
			break // server closed the connection
		}
	}
	if elapsed := time.Since(start); elapsed >= 8*time.Second {
		t.Fatalf("loris held the connection %v, want under ReadHeaderTimeout+slack", elapsed)
	}
}

// TestServeCASBodyLimit: an upload past -cas-max-body is refused with 413
// and counted, without disturbing in-limit uploads.
func TestServeCASBodyLimit(t *testing.T) {
	srv := newCASServeServer(t, serveConfig{casMaxBody: 1024})
	hs := newHTTPServer(srv.handler())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	put := func(data []byte) int {
		t.Helper()
		req, _ := http.NewRequest(http.MethodPut,
			base+"/cas/blob/"+cas.Sum(data).String(), bytes.NewReader(data))
		req.Header.Set(cas.TenantHeader, "limit-test")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("PUT: %v", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := put([]byte("comfortably small")); code != http.StatusNoContent {
		t.Fatalf("in-limit PUT: status %d, want 204", code)
	}
	if code := put(bytes.Repeat([]byte("x"), 4096)); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-limit PUT: status %d, want 413", code)
	}
	if got := srv.casSrv.Metrics().Snapshot()[obs.CtrCASBodyRejected]; got != 1 {
		t.Fatalf("%s = %d, want 1", obs.CtrCASBodyRejected, got)
	}
	// The rejection also surfaces on /metrics for alerting.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "cas_body_rejected") {
		t.Fatal("/metrics does not export the body-rejection counter")
	}
}

// TestServeDrainWakesLeaseWaiters: a lease long-poll blocked on another
// client's compile cannot hold shutdown open — the drain wakes it (wire
// verdict "retry": compile locally) and the loop exits promptly even
// though the lease grace is an hour.
func TestServeDrainWakesLeaseWaiters(t *testing.T) {
	srv := newCASServeServer(t, serveConfig{casGrace: time.Hour, drainGrace: 50 * time.Millisecond})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serveLoop(ctx, srv, ln, time.Hour, io.Discard) }()
	base := "http://" + ln.Addr().String()
	action := cas.Sum([]byte("drained action")).String()

	lease := func(tenant string) (string, error) {
		req, _ := http.NewRequest(http.MethodPost, base+"/cas/lease/"+action, nil)
		req.Header.Set(cas.TenantHeader, tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("lease: status %d: %s", resp.StatusCode, body)
		}
		return strings.TrimSpace(string(body)), nil
	}

	// First client becomes the leader (and never publishes — it "died").
	verdict, err := lease("client-a")
	if err != nil || verdict != "leader" {
		t.Fatalf("first lease: verdict=%q err=%v, want leader", verdict, err)
	}
	// Second client blocks as a waiter.
	waiter := make(chan string, 1)
	go func() {
		v, werr := lease("client-b")
		if werr != nil {
			v = "error: " + werr.Error()
		}
		waiter <- v
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.casSrv.LeaseWaiters() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if srv.casSrv.LeaseWaiters() == 0 {
		t.Fatal("the second lease never joined the flight as a waiter")
	}

	// Drain. The waiter must wake with "retry" and the loop must exit well
	// inside the hour-long grace.
	cancel()
	select {
	case v := <-waiter:
		if v != "retry" {
			t.Fatalf("drained lease waiter got %q, want \"retry\"", v)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("lease waiter still blocked after the drain")
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serveLoop: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serveLoop did not exit after the drain")
	}
}
