package main

// Tests for the deps subcommand: footprint listing from a real state
// directory, and both -check detectors — the offline paradox (a recorded
// footprint disagreeing with an unchanged declared hash) and the flight
// recorder (a live build that already logged footprint_missed) — each
// producing the errRegression exit-2 contract CI branches on.

import (
	"os"
	"path/filepath"
	"testing"

	"statefulcc/internal/buildsys"
	"statefulcc/internal/compiler"
	"statefulcc/internal/footprint"
	"statefulcc/internal/state"
	"statefulcc/internal/vfs"
)

// depsProject writes a two-unit project to disk and footprint-builds it
// into <dir>/.minibuild, returning the project dir.
func depsProject(t *testing.T, hook func(string, []byte, uint64) uint64) string {
	t.Helper()
	dir := t.TempDir()
	units := map[string]string{
		"lib.mc": `
func helper(n int) int { return n * 3; }
`,
		"main.mc": `
extern func helper(n int) int;
func main() int { print("v", helper(7)); return 0; }
`,
	}
	for name, src := range units {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	b, err := buildsys.NewBuilder(buildsys.Options{
		Mode: compiler.ModeStateful, StateDir: filepath.Join(dir, ".minibuild"),
		Footprint: true, ContentHashHook: hook,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := map[string][]byte{}
	for name, src := range units {
		snap[name] = []byte(src)
	}
	if _, err := b.Build(snap); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestDepsListsAndChecksCleanly(t *testing.T) {
	dir := depsProject(t, nil)
	if err := runDeps([]string{"-dir", dir}); err != nil {
		t.Fatalf("deps listing: %v", err)
	}
	if err := runDeps([]string{"-dir", dir, "lib.mc"}); err != nil {
		t.Fatalf("deps single unit: %v", err)
	}
	if err := runDeps([]string{"-dir", dir, "-check"}); err != nil {
		t.Fatalf("deps -check on an honest build: %v", err)
	}
	if err := runDeps([]string{"-dir", dir, "no-such.mc"}); err == nil {
		t.Fatal("unknown unit accepted")
	}
}

func TestDepsCheckFlagsOfflineParadox(t *testing.T) {
	dir := depsProject(t, nil)
	stateDir := filepath.Join(dir, ".minibuild")

	// Corrupt one recorded footprint's ground truth while leaving the
	// declared hash matching the tree: the offline paradox.
	entries, err := os.ReadDir(stateDir)
	if err != nil {
		t.Fatal(err)
	}
	tampered := false
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".state" {
			continue
		}
		path := filepath.Join(stateDir, e.Name())
		st, err := state.Load(path)
		if err != nil || st == nil || st.Footprint == nil {
			continue
		}
		for i := range st.Footprint.Entries {
			if st.Footprint.Entries[i].Kind == footprint.KindSource {
				st.Footprint.Entries[i].Hash ^= 0xBAD
				tampered = true
			}
		}
		if err := state.SaveFS(vfs.OS, path, st); err != nil {
			t.Fatal(err)
		}
		break
	}
	if !tampered {
		t.Fatal("no footprint-bearing state file found to tamper with")
	}

	err = runDeps([]string{"-dir", dir, "-check"})
	if err == nil {
		t.Fatal("deps -check passed despite the offline paradox")
	}
	re, ok := err.(errRegression)
	if !ok {
		t.Fatalf("want errRegression (exit 2), got %T: %v", err, err)
	}
	if !contains(re.report, "MISSED INVALIDATION") {
		t.Fatalf("report does not name the violation:\n%s", re.report)
	}
	// Without -check the same state is a listing, not a failure.
	if err := runDeps([]string{"-dir", dir}); err != nil {
		t.Fatalf("plain listing should not fail: %v", err)
	}
}

func TestDepsCheckFlagsRecordedMiss(t *testing.T) {
	// A lying builder records footprint_missed in history; deps -check must
	// flag it even though the offline view looks consistent.
	frozen := map[string]uint64{}
	hook := func(unit string, _ []byte, honest uint64) uint64 {
		if h, ok := frozen[unit]; ok {
			return h
		}
		frozen[unit] = honest
		return honest
	}
	dir := depsProject(t, hook)

	// Edit lib.mc on disk and rebuild with the frozen hash: the build
	// serves stale and logs the miss to history.
	libPath := filepath.Join(dir, "lib.mc")
	edited := []byte(`
func helper(n int) int { return n * 5 + 1; }
`)
	if err := os.WriteFile(libPath, edited, 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := buildsys.NewBuilder(buildsys.Options{
		Mode: compiler.ModeStateful, StateDir: filepath.Join(dir, ".minibuild"),
		Footprint: true, ContentHashHook: hook,
	})
	if err != nil {
		t.Fatal(err)
	}
	mainSrc, err := os.ReadFile(filepath.Join(dir, "main.mc"))
	if err != nil {
		t.Fatal(err)
	}
	// Warm the builder with the original tree first so the rebuild has a
	// cache to serve stale from.
	orig := map[string][]byte{"lib.mc": []byte("\nfunc helper(n int) int { return n * 3; }\n"), "main.mc": mainSrc}
	if _, err := b.Build(orig); err != nil {
		t.Fatal(err)
	}
	rep, err := b.Build(map[string][]byte{"lib.mc": edited, "main.mc": mainSrc})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.FootprintMissed) == 0 {
		t.Fatal("setup: the lying rebuild did not record a miss")
	}

	err = runDeps([]string{"-dir", dir, "-check"})
	if err == nil {
		t.Fatal("deps -check passed despite a recorded missed invalidation")
	}
	if _, ok := err.(errRegression); !ok {
		t.Fatalf("want errRegression (exit 2), got %T: %v", err, err)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
