// minibuild is the incremental build system CLI: it builds a directory of
// MiniC sources, keeping object and compiler state across invocations via a
// cache directory, and optionally runs the resulting program.
//
//	minibuild -dir ./proj -mode stateful -state .minibuild
//	minibuild -dir ./proj -run -j 8
//	minibuild -dir ./proj -watch-stats   per-build pipeline statistics
//	minibuild -dir ./proj -trace out.json   Chrome trace_event profile
//	minibuild -dir ./proj -metrics       machine-readable counters block
//
// Within one process the object cache lives in memory; the dormancy state
// additionally persists to -cache so the *next* invocation's recompiles
// still skip dormant passes — exactly the paper's deployment model.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"statefulcc/internal/buildsys"
	"statefulcc/internal/compiler"
	"statefulcc/internal/obs"
	"statefulcc/internal/project"
	"statefulcc/internal/vm"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "minibuild:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("minibuild", flag.ContinueOnError)
	dir := fs.String("dir", ".", "project directory (*.mc files)")
	mode := fs.String("mode", "stateful", "compiler policy: stateless|stateful|predictive|fullcache")
	cache := fs.String("cache", "", "cache directory for persistent state (default <dir>/.minibuild)")
	fs.StringVar(cache, "state", "", "alias for -cache")
	runProg := fs.Bool("run", false, "execute the built program")
	showStats := fs.Bool("watch-stats", false, "print pipeline statistics")
	jobs := fs.Int("j", 0, "parallel compile workers (default GOMAXPROCS)")
	traceOut := fs.String("trace", "", "write a Chrome trace_event JSON profile to this file")
	showMetrics := fs.Bool("metrics", false, "print the machine-readable counters block")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cmode := compiler.ModeStateful
	switch *mode {
	case "stateless":
		cmode = compiler.ModeStateless
	case "stateful":
		cmode = compiler.ModeStateful
	case "predictive":
		cmode = compiler.ModePredictive
	case "fullcache":
		cmode = compiler.ModeFullCache
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}

	stateDir := *cache
	if stateDir == "" {
		stateDir = filepath.Join(*dir, ".minibuild")
	}
	if cmode == compiler.ModeStateful || cmode == compiler.ModePredictive {
		if err := os.MkdirAll(stateDir, 0o755); err != nil {
			return err
		}
	} else {
		stateDir = ""
	}

	snap, err := project.LoadDir(*dir)
	if err != nil {
		return err
	}

	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer()
	}
	builder, err := buildsys.NewBuilder(buildsys.Options{Mode: cmode, StateDir: stateDir, Workers: *jobs, Trace: tracer})
	if err != nil {
		return err
	}
	rep, err := builder.Build(snap)
	if err != nil {
		return err
	}
	fmt.Printf("built %d units (%d compiled, %d cached) in %.2fms (compile %.2fms, link %.2fms), state %.1fKiB\n",
		rep.UnitsCompiled+rep.UnitsCached, rep.UnitsCompiled, rep.UnitsCached,
		float64(rep.TotalNS)/1e6, float64(rep.CompileNS)/1e6, float64(rep.LinkNS)/1e6,
		float64(rep.StateBytes)/1024)
	if runs, _, skipped := rep.Stats().Totals(); runs+skipped > 0 {
		fmt.Printf("dormancy: %d pass runs, %d skipped (skip rate %.1f%%), pool utilization %.0f%%\n",
			runs, skipped, 100*obs.SkipRate(rep.Metrics), 100*rep.Utilization())
	}

	if *showStats {
		if st := rep.Stats(); len(st.Slots) > 0 {
			fmt.Print(st)
		}
	}
	if *showMetrics {
		fmt.Print(obs.FormatMetrics(rep.Metrics))
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		werr := obs.WriteChrome(f, tracer.Spans(), rep.Metrics)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
		fmt.Printf("trace: %d spans written to %s (load in chrome://tracing or ui.perfetto.dev)\n",
			tracer.Len(), *traceOut)
	}

	if *runProg {
		res, err := vm.Run(rep.Program, vm.Config{Output: os.Stdout})
		if err != nil {
			return err
		}
		fmt.Printf("program finished: exit=%d steps=%d\n", res.ExitValue, res.Steps)
	}
	return nil
}
