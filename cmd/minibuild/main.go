// minibuild is the incremental build system CLI: it builds a directory of
// MiniC sources, keeping object and compiler state across invocations via a
// cache directory, and optionally runs the resulting program. Every build
// with a state directory also appends a record to the build flight recorder
// (<state>/history.jsonl), which the subcommands consume:
//
//	minibuild -dir ./proj -mode stateful -state .minibuild
//	minibuild -dir ./proj -run -j 8
//	minibuild -dir ./proj -watch-stats       per-build pipeline statistics
//	minibuild -dir ./proj -trace out.json    Chrome trace_event profile
//	minibuild -dir ./proj -metrics           machine-readable counters block
//	minibuild -dir ./proj -timeout 30s       deadline; ^C also cancels cleanly
//	minibuild -dir ./proj -audit 0.05        soundness-sentinel skip audits
//	minibuild explain -dir ./proj [unit]     last build's decision table
//	minibuild history -dir ./proj            recent flight-recorder records
//	minibuild -dir ./proj -footprint         trace + cross-check footprints
//	minibuild -dir ./proj -enforce-footprint always-correct mode
//	minibuild regress -dir ./proj            CI regression gate (exit 2)
//	minibuild deps -dir ./proj [-diff|-check] recorded dependency footprints
//	minibuild profile -dir ./proj [-json]    critical-path build profile
//	minibuild serve -dir ./proj -addr :8377  daemon with /metrics, /builds,
//	                                         /healthz, /dash and /debug/pprof
//
// Within one process the object cache lives in memory; the dormancy state
// additionally persists to -cache so the *next* invocation's recompiles
// still skip dormant passes — exactly the paper's deployment model.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"

	"statefulcc/internal/buildsys"
	"statefulcc/internal/cas"
	"statefulcc/internal/compiler"
	"statefulcc/internal/obs"
	"statefulcc/internal/project"
	"statefulcc/internal/vm"
)

// errRegression marks the regress subcommand's threshold failure so main
// can exit with a distinct status (2) CI scripts can branch on.
type errRegression struct{ report string }

func (e errRegression) Error() string { return e.report }

func main() {
	err := run(os.Args[1:])
	if err == nil {
		return
	}
	if re, ok := err.(errRegression); ok {
		fmt.Fprint(os.Stderr, re.report)
		os.Exit(2)
	}
	fmt.Fprintln(os.Stderr, "minibuild:", err)
	os.Exit(1)
}

func run(args []string) error {
	if len(args) > 0 {
		switch args[0] {
		case "explain":
			return runExplain(args[1:])
		case "history":
			return runHistory(args[1:])
		case "regress":
			return runRegress(args[1:])
		case "deps":
			return runDeps(args[1:])
		case "profile":
			return runProfile(args[1:])
		case "serve":
			return runServe(args[1:])
		}
	}
	return runBuild(args)
}

// parseMode maps the -mode flag to a compiler policy.
func parseMode(mode string) (compiler.Mode, error) {
	switch mode {
	case "stateless":
		return compiler.ModeStateless, nil
	case "stateful":
		return compiler.ModeStateful, nil
	case "predictive":
		return compiler.ModePredictive, nil
	case "fullcache":
		return compiler.ModeFullCache, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", mode)
	}
}

// stateDirFlags installs the -dir and -cache/-state flags shared by every
// subcommand and returns their destinations.
func stateDirFlags(fs *flag.FlagSet) (dir, cache *string) {
	dir = fs.String("dir", ".", "project directory (*.mc files)")
	cache = fs.String("cache", "", "cache directory for persistent state (default <dir>/.minibuild)")
	fs.StringVar(cache, "state", "", "alias for -cache")
	return dir, cache
}

// resolveStateDir applies the default state-directory location.
func resolveStateDir(dir, cache string) string {
	if cache != "" {
		return cache
	}
	return filepath.Join(dir, ".minibuild")
}

func runBuild(args []string) error {
	fs := flag.NewFlagSet("minibuild", flag.ContinueOnError)
	dir, cache := stateDirFlags(fs)
	mode := fs.String("mode", "stateful", "compiler policy: stateless|stateful|predictive|fullcache")
	runProg := fs.Bool("run", false, "execute the built program")
	showStats := fs.Bool("watch-stats", false, "print pipeline statistics")
	jobs := fs.Int("j", 0, "parallel compile workers (default GOMAXPROCS)")
	timeout := fs.Duration("timeout", 0, "abort the build after this duration (0 = no deadline); partial results are reported and the state directory stays consistent")
	audit := fs.Float64("audit", 0, "soundness-sentinel audit rate in [0,1]: probability a would-be-skipped pass executes anyway for verification (see docs/ROBUSTNESS.md)")
	footprintOn := fs.Bool("footprint", false, "trace each unit's dependency footprint and cross-check cache decisions against it (see docs/ROBUSTNESS.md and `minibuild deps`)")
	enforce := fs.Bool("enforce-footprint", false, "always-correct mode: the traced footprint overrides the declared content hash (implies -footprint)")
	casURL := fs.String("cas", "", "shared-cache base URL (a `minibuild serve -cas-serve` instance, e.g. http://127.0.0.1:8377): fetch verified objects by content hash and publish local compiles back")
	casTenant := fs.String("cas-tenant", "", "shared-cache tenant namespace (default \"default\")")
	casBudget := fs.Duration("cas-budget", 0, "per-fetch shared-cache deadline budget, retries included (default 10s); a stalled or partitioned backend costs at most this per operation before the build compiles locally")
	casHedge := fs.Duration("cas-hedge", 0, "issue a hedged duplicate shared-cache read if the first has not answered within this duration (0 = off; see docs/ROBUSTNESS.md)")
	var export obs.CLIExport
	export.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *audit < 0 || *audit > 1 {
		return fmt.Errorf("-audit %v out of range [0,1]", *audit)
	}

	cmode, err := parseMode(*mode)
	if err != nil {
		return err
	}

	// Cooperative cancellation: ^C (and an optional -timeout deadline)
	// aborts the build between pass slots rather than killing the process
	// mid-write — completed units' state files are fully written, the rest
	// untouched, so the next invocation always finds a loadable state dir.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	stateDir := resolveStateDir(*dir, *cache)
	if cmode == compiler.ModeStateful || cmode == compiler.ModePredictive {
		if err := os.MkdirAll(stateDir, 0o755); err != nil {
			return err
		}
	} else {
		stateDir = ""
	}

	snap, err := project.LoadDir(*dir)
	if err != nil {
		return err
	}

	var casStore cas.Store
	if *casURL != "" {
		casStore = cas.NewHTTPCASOpts(*casURL, *casTenant, cas.HTTPOptions{
			FetchBudget: *casBudget,
			HedgeAfter:  *casHedge,
		})
	} else if *casTenant != "" || *casBudget != 0 || *casHedge != 0 {
		return fmt.Errorf("-cas-tenant/-cas-budget/-cas-hedge require -cas")
	}

	builder, err := buildsys.NewBuilder(buildsys.Options{
		Mode: cmode, StateDir: stateDir, Workers: *jobs, Trace: export.Tracer(),
		AuditRate: *audit,
		Footprint: *footprintOn || *enforce, EnforceFootprint: *enforce,
		CAS: casStore,
	})
	if err != nil {
		return err
	}
	rep, err := builder.BuildContext(ctx, snap)
	if err != nil {
		if rep != nil {
			// Cancelled/timed-out build: surface what the partial report
			// knows before exiting non-zero.
			for _, w := range rep.Warnings {
				fmt.Fprintln(os.Stderr, "minibuild: warning:", w)
			}
			fmt.Fprintf(os.Stderr, "minibuild: partial build: %d units compiled, %d cached before cancellation (state directory remains consistent)\n",
				rep.UnitsCompiled, rep.UnitsCached)
		}
		return err
	}
	// Degradation warnings (state/history I/O the build absorbed): the
	// build is correct but the next one may run cold.
	for _, w := range rep.Warnings {
		fmt.Fprintln(os.Stderr, "minibuild: warning:", w)
	}
	if len(rep.FootprintMissed) > 0 {
		fmt.Fprintf(os.Stderr, "minibuild: MISSED INVALIDATIONS: %d unit(s) cached against a changed footprint: %v (run `minibuild deps -check`)\n",
			len(rep.FootprintMissed), rep.FootprintMissed)
	}
	if len(rep.FootprintRedundant) > 0 {
		fmt.Fprintf(os.Stderr, "minibuild: footprint: %d redundant recompile(s): %v\n",
			len(rep.FootprintRedundant), rep.FootprintRedundant)
	}
	remote := ""
	if rep.UnitsRemote > 0 {
		remote = fmt.Sprintf(", %d from shared cache", rep.UnitsRemote)
	}
	fmt.Printf("built %d units (%d compiled, %d cached%s) in %.2fms (compile %.2fms, link %.2fms), state %.1fKiB\n",
		rep.UnitsCompiled+rep.UnitsCached, rep.UnitsCompiled, rep.UnitsCached, remote,
		float64(rep.TotalNS)/1e6, float64(rep.CompileNS)/1e6, float64(rep.LinkNS)/1e6,
		float64(rep.StateBytes)/1024)
	if runs, _, skipped := rep.Stats().Totals(); runs+skipped > 0 {
		fmt.Printf("dormancy: %d pass runs, %d skipped (skip rate %.1f%%), pool utilization %.0f%%\n",
			runs, skipped, 100*obs.SkipRate(rep.Metrics), 100*rep.Utilization())
	}

	if *showStats {
		if st := rep.Stats(); len(st.Slots) > 0 {
			fmt.Print(st)
		}
	}
	if err := export.Export(os.Stdout, os.Stdout, rep.Metrics); err != nil {
		return err
	}

	if *runProg {
		res, err := vm.Run(rep.Program, vm.Config{Output: os.Stdout})
		if err != nil {
			return err
		}
		fmt.Printf("program finished: exit=%d steps=%d\n", res.ExitValue, res.Steps)
	}
	return nil
}
