module statefulcc

go 1.22
