package statefulcc_test

// End-to-end tests over the realistic MiniC programs in testdata/: each is
// compiled under every policy and checked against expected behaviour, plus
// a pairwise output-equivalence sweep. These programs are hand-written
// algorithms (sieve, sorting, backtracking, bit tricks) rather than
// generated code, so they cover idioms the workload generator does not.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"statefulcc"
)

// e2eExpectations: program name → (expected output fragmentS, expected exit).
var e2eExpectations = map[string]struct {
	fragments []string
	exit      int64
}{
	"sieve.mc":  {[]string{"prime 2", "prime 11", "count 25"}, 25},
	"sort.mc":   {[]string{"changed 1"}, -1 /* any */},
	"matrix.mc": {[]string{"trace"}, -1},
	"queens.mc": {[]string{"solutions 4"}, 4},
	"bitops.mc": {[]string{"pop 8 0 1", "rev 128 1 85", "par 1 0"}, 6},
	"calc.mc":   {[]string{"result 8"}, 8},
}

func loadTestdata(t *testing.T) map[string][]byte {
	t.Helper()
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	out := map[string][]byte{}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".mc") {
			continue
		}
		src, err := os.ReadFile(filepath.Join("testdata", e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = src
	}
	if len(out) < 5 {
		t.Fatalf("testdata too small: %d programs", len(out))
	}
	return out
}

func TestTestdataPrograms(t *testing.T) {
	programs := loadTestdata(t)
	for name, src := range programs {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			want, known := e2eExpectations[name]
			if !known {
				t.Fatalf("no expectation registered for %s — add one", name)
			}
			var ref string
			var refExit int64
			for i, mode := range []statefulcc.Mode{statefulcc.Stateless, statefulcc.Stateful, statefulcc.FullCache} {
				b, err := statefulcc.NewBuilder(statefulcc.BuildOptions{Mode: mode})
				if err != nil {
					t.Fatal(err)
				}
				// Build twice under stateful modes so records are exercised.
				snap := statefulcc.Snapshot{name: src}
				if _, err := b.Build(snap); err != nil {
					t.Fatalf("%v: %v", mode, err)
				}
				rep, err := b.Build(snap)
				if err != nil {
					t.Fatalf("%v rebuild: %v", mode, err)
				}
				out, exit, err := statefulcc.RunProgram(rep.Program)
				if err != nil {
					t.Fatalf("%v run: %v\noutput:\n%s", mode, err, out)
				}
				if i == 0 {
					ref, refExit = out, exit
					for _, frag := range want.fragments {
						if !strings.Contains(out, frag) {
							t.Errorf("output missing %q:\n%s", frag, out)
						}
					}
					if want.exit >= 0 && exit != want.exit {
						t.Errorf("exit = %d, want %d", exit, want.exit)
					}
				} else if out != ref || exit != refExit {
					t.Errorf("%v behaviour differs from stateless:\n%s\nvs\n%s", mode, out, ref)
				}
			}
		})
	}
}

// TestTestdataAsOneProject links all testdata programs into one project
// (renaming mains) to exercise a larger multi-unit link.
func TestTestdataAsOneProject(t *testing.T) {
	programs := loadTestdata(t)
	snap := statefulcc.Snapshot{}
	var calls []string
	for name, src := range programs {
		fn := "run_" + strings.TrimSuffix(name, ".mc")
		text := strings.Replace(string(src), "func main()", "func "+fn+"()", 1)
		snap[name] = []byte(text)
		calls = append(calls, fn)
	}
	var sb strings.Builder
	for _, fn := range calls {
		sb.WriteString("extern func " + fn + "() int;\n")
	}
	sb.WriteString("func main() int {\n    var total int = 0;\n")
	for _, fn := range calls {
		sb.WriteString("    total += " + fn + "();\n")
	}
	sb.WriteString("    print(\"total-mod\", total % 1000);\n    return total % 128;\n}\n")
	snap["driver.mc"] = []byte(sb.String())

	b, err := statefulcc.NewBuilder(statefulcc.BuildOptions{Mode: statefulcc.Stateful, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := b.Build(snap)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := statefulcc.RunProgram(rep.Program)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	if !strings.Contains(out, "total-mod") {
		t.Errorf("driver output missing:\n%s", out)
	}
}
