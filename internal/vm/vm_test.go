package vm_test

import (
	"strings"
	"testing"

	"statefulcc/internal/testutil"
	"statefulcc/internal/vm"
)

func run(t *testing.T, src string) (string, int64) {
	t.Helper()
	out, exit, err := testutil.RunSource(src, nil)
	if err != nil {
		t.Fatalf("run failed: %v\noutput so far:\n%s", err, out)
	}
	return out, exit
}

func wantTrap(t *testing.T, src, fragment string) {
	t.Helper()
	_, _, err := testutil.RunSource(src, nil)
	if err == nil {
		t.Fatalf("expected runtime error containing %q", fragment)
	}
	if !strings.Contains(err.Error(), fragment) {
		t.Fatalf("error = %v, want contains %q", err, fragment)
	}
}

func TestReturnValue(t *testing.T) {
	_, exit := run(t, `func main() int { return 41 + 1; }`)
	if exit != 42 {
		t.Errorf("exit = %d, want 42", exit)
	}
}

func TestArithmetic(t *testing.T) {
	out, _ := run(t, `
func main() {
    print(7 + 3, 7 - 3, 7 * 3, 7 / 3, 7 % 3);
    print(-5 / 2, -5 % 2);
    print(1 << 4, -16 >> 2, 6 & 3, 6 | 3, 6 ^ 3, ^0);
}`)
	want := "10 4 21 2 1\n-2 -1\n16 -4 2 7 5 -1\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

func TestComparisonsAndBools(t *testing.T) {
	out, _ := run(t, `
func main() {
    print(1 < 2, 2 < 1, 2 <= 2, 3 > 2, 3 >= 4, 5 == 5, 5 != 5);
    var t bool = true;
    var f bool = false;
    print(t, f, !t, !f);
}`)
	want := "1 0 1 1 0 1 0\n1 0 0 1\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

func TestShortCircuit(t *testing.T) {
	out, _ := run(t, `
var calls int = 0;

func effect(r bool) bool {
    calls = calls + 1;
    return r;
}

func main() {
    if false && effect(true) { }
    if true || effect(true) { }
    print("calls", calls);
    if true && effect(true) { }
    if false || effect(false) { }
    print("calls", calls);
}`)
	want := "calls 0\ncalls 2\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

func TestControlFlow(t *testing.T) {
	out, _ := run(t, `
func main() {
    var sum int = 0;
    for var i int = 0; i < 10; i++ {
        if i % 2 == 0 {
            continue;
        }
        if i > 7 {
            break;
        }
        sum += i;
    }
    print(sum); // 1+3+5+7 = 16
    var n int = 3;
    while n > 0 {
        print("n", n);
        n--;
    }
}`)
	want := "16\nn 3\nn 2\nn 1\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

func TestFunctionsAndRecursion(t *testing.T) {
	out, exit := run(t, `
func fib(n int) int {
    if n < 2 {
        return n;
    }
    return fib(n - 1) + fib(n - 2);
}

func fact(n int) int {
    var r int = 1;
    for var i int = 2; i <= n; i++ {
        r *= i;
    }
    return r;
}

func main() int {
    print("fib", fib(10));
    print("fact", fact(6));
    return fib(10) + fact(6);
}`)
	if out != "fib 55\nfact 720\n" || exit != 775 {
		t.Errorf("out=%q exit=%d", out, exit)
	}
}

func TestArraysAndGlobals(t *testing.T) {
	out, _ := run(t, `
var cache [16]int;
var hits int;

func memo(i int) int {
    if cache[i] != 0 {
        hits++;
        return cache[i];
    }
    cache[i] = i * i;
    return cache[i];
}

func main() {
    var local [4]int;
    for var i int = 0; i < 4; i++ {
        local[i] = memo(i + 1);
    }
    for var i int = 0; i < 4; i++ {
        memo(i + 1);
    }
    print(local[0], local[1], local[2], local[3], hits);
}`)
	want := "1 4 9 16 4\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

func TestGlobalInitializers(t *testing.T) {
	out, _ := run(t, `
const K = 7;
var a int = K * 2;
var b int = -3;
var c int;

func main() { print(a, b, c); }`)
	if out != "14 -3 0\n" {
		t.Errorf("output = %q", out)
	}
}

func TestLocalZeroInit(t *testing.T) {
	out, _ := run(t, `
func f() int {
    var x int;
    var a [3]int;
    return x + a[0] + a[1] + a[2];
}
func main() { print(f(), f()); }`)
	if out != "0 0\n" {
		t.Errorf("output = %q, want \"0 0\"", out)
	}
}

func TestMultiUnit(t *testing.T) {
	out, _, err := testutil.Run(map[string]string{
		"util.mc": `
var seed int = 1;
func rand() int {
    seed = seed * 1103515245 + 12345;
    return (seed >> 16) & 32767;
}
func _helper(x int) int { return x * 2; }
func double(x int) int { return _helper(x); }
`,
		"main.mc": `
extern func rand() int;
extern func double(x int) int;
func main() {
    var a int = rand();
    var b int = rand();
    print(a != b, double(21));
}`,
	}, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if out != "1 42\n" {
		t.Errorf("output = %q, want \"1 42\"", out)
	}
}

func TestAssertPassesAndFails(t *testing.T) {
	run(t, `func main() { assert(1 + 1 == 2, "math works"); }`)
	wantTrap(t, `func main() { assert(1 == 2, "broken"); }`, "assertion failed: broken")
	wantTrap(t, `func main() { assert(false); }`, "assertion failed")
}

func TestDivideByZeroTraps(t *testing.T) {
	wantTrap(t, `func main() { var z int = 0; print(1 / z); }`, "div by zero")
	wantTrap(t, `func main() { var z int = 0; print(1 % z); }`, "rem by zero")
}

func TestBoundsCheck(t *testing.T) {
	wantTrap(t, `
func main() {
    var a [4]int;
    var i int = 4;
    a[i] = 1;
}`, "out of bounds")
	wantTrap(t, `
func main() {
    var a [4]int;
    var i int = -1;
    print(a[i]);
}`, "out of bounds")
}

func TestShiftMasking(t *testing.T) {
	out, _ := run(t, `
func main() {
    var s int = 65; // masked to 1
    print(1 << s, 256 >> s);
}`)
	if out != "2 128\n" {
		t.Errorf("output = %q, want \"2 128\"", out)
	}
}

func TestStepLimit(t *testing.T) {
	p, err := testutil.LinkProgram(map[string]string{"main.mc": `
func main() { while true { } }`}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = vm.RunCapture(p, vm.Config{MaxSteps: 1000})
	if err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Errorf("err = %v, want step limit", err)
	}
}

func TestDeepRecursionOverflows(t *testing.T) {
	wantTrap(t, `
func down(n int) int {
    return down(n + 1);
}
func main() { print(down(0)); }`, "overflow")
}

func TestPhiHeavyCode(t *testing.T) {
	// Nested conditions and loop-carried values exercise phi lowering once
	// mem2reg runs; without passes this still checks branch trampolines.
	out, exit := run(t, `
func collatz(n int) int {
    var steps int = 0;
    while n != 1 {
        if n % 2 == 0 {
            n = n / 2;
        } else {
            n = 3 * n + 1;
        }
        steps++;
    }
    return steps;
}
func main() int {
    print(collatz(27));
    return collatz(6);
}`)
	if out != "111\n" || exit != 8 {
		t.Errorf("out=%q exit=%d, want 111/8", out, exit)
	}
}

func TestParamMutation(t *testing.T) {
	out, _ := run(t, `
func f(x int) int {
    x = x * 2;
    x += 1;
    return x;
}
func main() { print(f(10)); }`)
	if out != "21\n" {
		t.Errorf("output = %q, want \"21\"", out)
	}
}

func TestProfiler(t *testing.T) {
	p, err := testutil.LinkProgram(map[string]string{"main.mc": `
func leaf(x int) int { return x * 2 + 1; }
func mid(n int) int {
    var s int = 0;
    for var i int = 0; i < n; i++ { s += leaf(i); }
    return s;
}
func main() int { return mid(10) % 100; }`}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, res, err := vm.RunCapture(p, vm.Config{Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile == nil {
		t.Fatal("no profile collected")
	}
	leaf, mid, main := res.Profile["leaf"], res.Profile["mid"], res.Profile["main"]
	if leaf.Calls != 10 || mid.Calls != 1 || main.Calls != 1 {
		t.Errorf("call counts: leaf=%d mid=%d main=%d", leaf.Calls, mid.Calls, main.Calls)
	}
	// Self-steps over all functions sum to the total step count.
	var sum int64
	for _, fp := range res.Profile {
		sum += fp.Steps
	}
	if sum != res.Steps {
		t.Errorf("profile steps sum %d != total %d", sum, res.Steps)
	}
	// The loop-heavy mid dominates; ordering helper agrees.
	top := res.TopBySteps()
	if len(top) == 0 || top[0] != "mid" {
		t.Errorf("TopBySteps = %v, want mid first", top)
	}
	// Profiling off → nil profile, identical behaviour.
	_, res2, err := vm.RunCapture(p, vm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Profile != nil {
		t.Error("profile collected without Profile flag")
	}
	if res2.ExitValue != res.ExitValue || res2.Steps != res.Steps {
		t.Error("profiling changed execution")
	}
}

func TestLinkErrors(t *testing.T) {
	// Missing extern at link time.
	_, _, err := testutil.Run(map[string]string{
		"main.mc": `extern func missing() int; func main() { print(missing()); }`,
	}, nil)
	if err == nil || !strings.Contains(err.Error(), "undefined function missing") {
		t.Errorf("err = %v, want undefined function", err)
	}
	// No main.
	_, _, err = testutil.Run(map[string]string{"a.mc": `func f() { }`}, nil)
	if err == nil || !strings.Contains(err.Error(), "no main") {
		t.Errorf("err = %v, want no main", err)
	}
	// Duplicate symbol across units.
	_, _, err = testutil.Run(map[string]string{
		"a.mc": `func f() { } func main() { f(); }`,
		"b.mc": `func f() { }`,
	}, nil)
	if err == nil || !strings.Contains(err.Error(), "duplicate function") {
		t.Errorf("err = %v, want duplicate function", err)
	}
	// Arity mismatch between extern and definition.
	_, _, err = testutil.Run(map[string]string{
		"a.mc": `func f(x int) int { return x; }`,
		"b.mc": `extern func f() int; func main() { print(f()); }`,
	}, nil)
	if err == nil || !strings.Contains(err.Error(), "args") {
		t.Errorf("err = %v, want arity mismatch", err)
	}
}
