// Package vm executes linked bytecode programs.
//
// The machine is deliberately simple: a flat word-addressed memory holding
// the global segment followed by an upward-growing call stack of frames;
// each frame is the function's value slots followed by its alloca scratch
// area. Pointers are plain indexes into the memory array, so out-of-range
// accesses are caught by explicit checks and surface as runtime errors
// rather than corruption.
//
// Program behaviour — the print/assert output stream plus main's return
// value — is the observable the compiler test-suite compares when checking
// that optimizations and the stateful pass manager preserve semantics.
package vm

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"statefulcc/internal/codegen"
	"statefulcc/internal/ir"
)

// RuntimeError is a trap raised during execution.
type RuntimeError struct {
	Func    string
	Message string
}

// Error implements the error interface.
func (e *RuntimeError) Error() string {
	return fmt.Sprintf("runtime error in %s: %s", e.Func, e.Message)
}

// Config bounds an execution.
type Config struct {
	// MaxSteps aborts runaway programs (0 = default of 100M).
	MaxSteps int64
	// MaxStackWords bounds total stack usage (0 = default of 1M words).
	MaxStackWords int
	// Output receives print output; nil discards it.
	Output io.Writer
	// Profile enables per-function instruction and call counting
	// (Result.Profile); costs one counter increment per call.
	Profile bool
}

// Result summarizes a finished execution.
type Result struct {
	// ExitValue is main's return value (0 when main is void).
	ExitValue int64
	// Steps is the number of instructions executed.
	Steps int64
	// MaxStack is the high-water mark of stack words used.
	MaxStack int
	// Profile holds per-function execution counts when Config.Profile was
	// set (nil otherwise).
	Profile map[string]FuncProfile
}

// FuncProfile is one function's execution statistics.
type FuncProfile struct {
	// Calls is the number of times the function was entered.
	Calls int64
	// Steps is the number of instructions executed inside the function
	// (callees excluded).
	Steps int64
}

// TopBySteps returns function names sorted by descending step count.
func (r *Result) TopBySteps() []string {
	names := make([]string, 0, len(r.Profile))
	for name := range r.Profile {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		pi, pj := r.Profile[names[i]], r.Profile[names[j]]
		if pi.Steps != pj.Steps {
			return pi.Steps > pj.Steps
		}
		return names[i] < names[j]
	})
	return names
}

// Run executes the program's main function.
func Run(p *codegen.Program, cfg Config) (*Result, error) {
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 100_000_000
	}
	if cfg.MaxStackWords == 0 {
		cfg.MaxStackWords = 1 << 20
	}
	m := &machine{
		prog: p,
		cfg:  cfg,
		mem:  make([]int64, p.GlobalWords, p.GlobalWords+4096),
	}
	copy(m.mem, p.GlobalInit)
	if cfg.Profile {
		m.profCalls = make([]int64, len(p.Funcs))
		m.profSteps = make([]int64, len(p.Funcs))
		m.funcIndex = make(map[*codegen.FuncCode]int, len(p.Funcs))
		for i, f := range p.Funcs {
			m.funcIndex[f] = i
		}
	}

	entry := p.Funcs[p.EntryIndex]
	ret, err := m.call(entry, nil)
	if err != nil {
		return nil, err
	}
	res := &Result{Steps: m.steps, MaxStack: m.maxStack}
	if entry.HasResult {
		res.ExitValue = ret
	}
	if cfg.Profile {
		res.Profile = make(map[string]FuncProfile, len(p.Funcs))
		for i, f := range p.Funcs {
			if m.profCalls[i] > 0 {
				res.Profile[f.Name] = FuncProfile{Calls: m.profCalls[i], Steps: m.profSteps[i]}
			}
		}
	}
	return res, nil
}

// RunCapture executes the program and returns its printed output, which is
// the canonical "program behaviour" for differential testing.
func RunCapture(p *codegen.Program, cfg Config) (string, *Result, error) {
	var sb strings.Builder
	cfg.Output = &sb
	res, err := Run(p, cfg)
	return sb.String(), res, err
}

type machine struct {
	prog     *codegen.Program
	cfg      Config
	mem      []int64
	steps    int64
	maxStack int
	depth    int

	// Profiling state (nil unless Config.Profile).
	profCalls []int64
	profSteps []int64
	funcIndex map[*codegen.FuncCode]int
}

func (m *machine) trap(f *codegen.FuncCode, format string, args ...any) error {
	return &RuntimeError{Func: f.Name, Message: fmt.Sprintf(format, args...)}
}

// call pushes a frame for f, copies args into the first slots, and
// interprets until IRet.
func (m *machine) call(f *codegen.FuncCode, args []int64) (int64, error) {
	m.depth++
	defer func() { m.depth-- }()
	if m.depth > 10000 {
		return 0, m.trap(f, "call stack overflow (depth %d)", m.depth)
	}

	fp := len(m.mem)
	frame := f.FrameWords()
	if fp+frame-m.prog.GlobalWords > m.cfg.MaxStackWords {
		return 0, m.trap(f, "stack limit exceeded (%d words)", fp+frame)
	}
	// Grow zeroed frame storage: appending a fresh zero slice writes zeros
	// over any reused capacity, so frames always start zeroed.
	m.mem = append(m.mem, make([]int64, frame)...)
	if used := fp + frame - m.prog.GlobalWords; used > m.maxStack {
		m.maxStack = used
	}
	copy(m.mem[fp:], args)
	defer func() { m.mem = m.mem[:fp] }()

	fnIdx := -1
	if m.funcIndex != nil {
		fnIdx = m.funcIndex[f]
		m.profCalls[fnIdx]++
	}
	stepsAtEntry := m.steps
	var childSteps int64 // steps consumed by callees (excluded from self)

	slots := m.mem[fp : fp+frame]
	pc := 0
	code := f.Code
	for {
		if pc < 0 || pc >= len(code) {
			return 0, m.trap(f, "pc %d out of range", pc)
		}
		m.steps++
		if m.steps > m.cfg.MaxSteps {
			return 0, m.trap(f, "step limit exceeded (%d)", m.cfg.MaxSteps)
		}
		in := &code[pc]
		switch in.Op {
		case codegen.INop:
			pc++
		case codegen.IConst:
			slots[in.A] = in.Imm
			pc++
		case codegen.IMov:
			slots[in.A] = slots[in.B]
			pc++
		case codegen.IBin:
			x, y := slots[in.B], slots[in.C]
			r, ok := ir.EvalBinary(ir.Op(in.Sub), x, y)
			if !ok {
				return 0, m.trap(f, "%s by zero", ir.Op(in.Sub))
			}
			slots[in.A] = r
			pc++
		case codegen.IUn:
			r, ok := ir.EvalUnary(ir.Op(in.Sub), slots[in.B])
			if !ok {
				return 0, m.trap(f, "bad unary op %d", in.Sub)
			}
			slots[in.A] = r
			pc++
		case codegen.ILea:
			slots[in.A] = int64(fp) + in.Imm
			pc++
		case codegen.IGAddr:
			slots[in.A] = in.Imm
			pc++
		case codegen.IIdx:
			idx := slots[in.C]
			if idx < 0 || idx >= in.Imm {
				return 0, m.trap(f, "index %d out of bounds [0,%d)", idx, in.Imm)
			}
			slots[in.A] = slots[in.B] + idx
			pc++
		case codegen.ILoad:
			addr := slots[in.B]
			if addr < 0 || addr >= int64(len(m.mem)) {
				return 0, m.trap(f, "load from invalid address %d", addr)
			}
			slots[in.A] = m.mem[addr]
			pc++
		case codegen.IStore:
			addr := slots[in.A]
			if addr < 0 || addr >= int64(len(m.mem)) {
				return 0, m.trap(f, "store to invalid address %d", addr)
			}
			m.mem[addr] = slots[in.B]
			pc++
		case codegen.ICall:
			callee := m.prog.Funcs[in.Imm]
			args := make([]int64, len(in.Args))
			for i, s := range in.Args {
				args[i] = slots[s]
			}
			beforeCall := m.steps
			r, err := m.call(callee, args)
			if err != nil {
				return 0, err
			}
			childSteps += m.steps - beforeCall
			// The callee may have grown m.mem's backing array; refresh the
			// frame view.
			slots = m.mem[fp : fp+frame]
			if in.A >= 0 {
				slots[in.A] = r
			}
			pc++
		case codegen.IRet:
			if fnIdx >= 0 {
				m.profSteps[fnIdx] += m.steps - stepsAtEntry - childSteps
			}
			if in.A >= 0 {
				return slots[in.A], nil
			}
			return 0, nil
		case codegen.IJmp:
			pc = int(in.Imm)
		case codegen.IBr:
			if slots[in.A] != 0 {
				pc = int(in.Imm)
			} else {
				pc = int(in.Imm2)
			}
		case codegen.IPrint:
			if m.cfg.Output != nil {
				var sb strings.Builder
				if in.StrIdx >= 0 {
					sb.WriteString(m.prog.Strings[in.StrIdx])
				}
				for i, s := range in.Args {
					if i > 0 || in.StrIdx >= 0 {
						sb.WriteByte(' ')
					}
					fmt.Fprintf(&sb, "%d", slots[s])
				}
				sb.WriteByte('\n')
				if _, err := io.WriteString(m.cfg.Output, sb.String()); err != nil {
					return 0, m.trap(f, "output error: %v", err)
				}
			}
			pc++
		case codegen.IAssert:
			if slots[in.A] == 0 {
				msg := "assertion failed"
				if in.StrIdx >= 0 {
					msg = "assertion failed: " + m.prog.Strings[in.StrIdx]
				}
				return 0, m.trap(f, "%s", msg)
			}
			pc++
		default:
			return 0, m.trap(f, "illegal opcode %d", in.Op)
		}
	}
}
