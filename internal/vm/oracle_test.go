package vm_test

// VM semantics oracle for the stateful compiler: workload-generated
// programs are compiled twice at the compiler layer (no build system in
// between) — once stateless, once stateful with dormancy state threaded
// commit to commit — and executed. Output and exit value must be
// identical. Unlike the buildsys differential tests, this drives
// compiler.CompileUnit directly, so a divergence points at the pass
// driver's skipping rather than at caching above it.

import (
	"testing"

	"statefulcc/internal/codegen"
	"statefulcc/internal/compiler"
	"statefulcc/internal/core"
	"statefulcc/internal/project"
	"statefulcc/internal/vm"
	"statefulcc/internal/workload"
)

// compileSnap compiles every unit of a snapshot with comp, threading
// per-unit state from states (which it updates), and links the result.
func compileSnap(t *testing.T, comp *compiler.Compiler, snap project.Snapshot,
	states map[string]*core.UnitState) *codegen.Program {
	t.Helper()
	var objs []*codegen.Object
	for _, name := range snap.Units() {
		var st *core.UnitState
		if states != nil {
			st = states[name]
		}
		res, err := comp.CompileUnit(name, snap[name], st)
		if err != nil {
			t.Fatalf("compile %s: %v", name, err)
		}
		if states != nil {
			states[name] = res.State
		}
		objs = append(objs, res.Object)
	}
	prog, err := codegen.Link(objs)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestOracleStatefulMatchesStateless(t *testing.T) {
	profiles := workload.QuickSuite()
	if !testing.Short() {
		profiles = workload.StandardSuite()[:4]
	}
	for _, p := range profiles {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			base := workload.Generate(p)
			hist := workload.GenerateHistory(base, p.Seed^0x0ac1e, 3, workload.DefaultCommitOptions())

			stateless, err := compiler.New(compiler.Options{Mode: compiler.ModeStateless})
			if err != nil {
				t.Fatal(err)
			}
			stateful, err := compiler.New(compiler.Options{Mode: compiler.ModeStateful})
			if err != nil {
				t.Fatal(err)
			}
			states := map[string]*core.UnitState{}

			for i, snap := range append([]project.Snapshot{base}, hist.Commits...) {
				ref := compileSnap(t, stateless, snap, nil)
				got := compileSnap(t, stateful, snap, states)

				refOut, refRes, err := vm.RunCapture(ref, vm.Config{})
				if err != nil {
					t.Fatalf("commit %d stateless run: %v", i, err)
				}
				gotOut, gotRes, err := vm.RunCapture(got, vm.Config{})
				if err != nil {
					t.Fatalf("commit %d stateful run: %v", i, err)
				}
				if gotOut != refOut || gotRes.ExitValue != refRes.ExitValue {
					t.Errorf("commit %d: stateful behaviour diverges\nstateless: %q exit=%d\nstateful:  %q exit=%d",
						i, refOut, refRes.ExitValue, gotOut, gotRes.ExitValue)
				}
			}
		})
	}
}
