package vm_test

// Property-based operator-semantics tests: for random operand pairs, a
// compiled-and-executed MiniC expression must agree with an independent Go
// oracle implementing the language rules (two's-complement wraparound,
// round-toward-zero division, masked shifts, traps on division by zero).
// Both the unoptimized path and the full pipeline are exercised, so a
// folding pass whose arithmetic diverged from the VM would be caught here.

import (
	"fmt"
	"testing"
	"testing/quick"

	"statefulcc/internal/ir"
	"statefulcc/internal/passes"
	"statefulcc/internal/testutil"
)

// oracle implements MiniC's int semantics directly with Go operators.
// ok=false means the expression traps (division by zero).
func oracle(op string, a, b int64) (int64, bool) {
	switch op {
	case "+":
		return a + b, true
	case "-":
		return a - b, true
	case "*":
		return a * b, true
	case "/":
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case "%":
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case "&":
		return a & b, true
	case "|":
		return a | b, true
	case "^":
		return a ^ b, true
	case "<<":
		return a << (uint64(b) & 63), true
	case ">>":
		return a >> (uint64(b) & 63), true
	case "<":
		return b2i(a < b), true
	case "<=":
		return b2i(a <= b), true
	case ">":
		return b2i(a > b), true
	case ">=":
		return b2i(a >= b), true
	case "==":
		return b2i(a == b), true
	case "!=":
		return b2i(a != b), true
	}
	panic("unknown op " + op)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// runBinary compiles "f(a,b) = a op b" (comparisons return via a branch so
// bool results become ints) and runs it under the given transform.
func runBinary(t *testing.T, op string, a, b int64, tf testutil.Transform) (int64, error) {
	t.Helper()
	expr := fmt.Sprintf("x %s y", op)
	body := fmt.Sprintf("return %s;", expr)
	switch op {
	case "<", "<=", ">", ">=", "==", "!=":
		body = fmt.Sprintf("if %s { return 1; } return 0;", expr)
	}
	src := fmt.Sprintf(`
func f(x int, y int) int { %s }
func main() int { return f(%d, %d) & 255; }`, body, a, b)
	_, exit, err := testutil.RunSource(src, tf)
	return exit, err
}

func optimized(m *ir.Module) error {
	_, err := passes.RunPipeline(m, passes.StandardPipeline)
	return err
}

func TestBinaryOperatorSemantics(t *testing.T) {
	ops := []string{"+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>", "<", "<=", ">", ">=", "==", "!="}
	cfg := &quick.Config{MaxCount: 12}
	for _, op := range ops {
		op := op
		t.Run(op, func(t *testing.T) {
			prop := func(a32, b32 int32, small uint8) bool {
				a, b := int64(a32), int64(b32)
				if op == "<<" || op == ">>" {
					// Mix small and wild shift amounts.
					if small%2 == 0 {
						b = int64(small % 70)
					}
				}
				want, wantOK := oracle(op, a, b)
				for _, tf := range []testutil.Transform{nil, optimized} {
					got, err := runBinary(t, op, a, b, tf)
					if !wantOK {
						if err == nil {
							t.Logf("%d %s %d: expected trap, got %d", a, op, b, got)
							return false
						}
						continue
					}
					if err != nil {
						t.Logf("%d %s %d: unexpected error %v", a, op, b, err)
						return false
					}
					if got != want&255 {
						t.Logf("%d %s %d: got %d, want %d", a, op, b, got, want&255)
						return false
					}
				}
				return true
			}
			if err := quick.Check(prop, cfg); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestUnaryOperatorSemantics(t *testing.T) {
	prop := func(a32 int32) bool {
		a := int64(a32)
		src := fmt.Sprintf(`
func f(x int) int { return (-x ^ ^x) & 1023; }
func main() int { return f(%d); }`, a)
		want := (-a ^ ^a) & 1023
		for _, tf := range []testutil.Transform{nil, optimized} {
			_, exit, err := testutil.RunSource(src, tf)
			if err != nil {
				t.Logf("x=%d: %v", a, err)
				return false
			}
			if exit != want {
				t.Logf("x=%d: got %d, want %d", a, exit, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestConstantVsRuntimeAgreement: the same expression evaluated at compile
// time (constants visible to folding) and at run time (hidden behind
// params) must agree.
func TestConstantVsRuntimeAgreement(t *testing.T) {
	prop := func(a16, b16 int16, opIdx uint8) bool {
		ops := []string{"+", "-", "*", "&", "|", "^", "<<", ">>"}
		op := ops[int(opIdx)%len(ops)]
		a, b := int64(a16), int64(b16)
		if op == "<<" || op == ">>" {
			b = int64(uint8(b16)) % 64
		}
		constSrc := fmt.Sprintf(`
func main() int { return (%d %s %d) & 255; }`, a, op, b)
		runtimeSrc := fmt.Sprintf(`
func f(x int, y int) int { return (x %s y) & 255; }
func main() int { return f(%d, %d); }`, op, a, b)
		_, e1, err1 := testutil.RunSource(constSrc, optimized)
		_, e2, err2 := testutil.RunSource(runtimeSrc, optimized)
		if err1 != nil || err2 != nil {
			t.Logf("errors: %v / %v", err1, err2)
			return false
		}
		if e1 != e2 {
			t.Logf("%d %s %d: const path %d, runtime path %d", a, op, b, e1, e2)
		}
		return e1 == e2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
