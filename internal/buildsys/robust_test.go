package buildsys_test

// Robustness of the builder's edges: the persistent-state path must never
// turn disk problems into build failures, worker counts normalize, and
// degenerate snapshots (empty, shrinking) are handled.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"statefulcc/internal/buildsys"
	"statefulcc/internal/compiler"
	"statefulcc/internal/project"
	"statefulcc/internal/state"
	"statefulcc/internal/vm"
)

// twoUnitSnap is a minimal cross-unit project.
func twoUnitSnap() project.Snapshot {
	return project.Snapshot{
		"lib.mc": []byte(`
func helper(n int) int {
    var s int = 0;
    for var i int = 0; i < n; i++ { s += i; }
    return s;
}
`),
		"main.mc": []byte(`
extern func helper(n int) int;
func main() int { print("sum", helper(5)); return helper(5); }
`),
	}
}

func mustBuild(t *testing.T, b *buildsys.Builder, snap project.Snapshot) *buildsys.Report {
	t.Helper()
	rep, err := b.Build(snap)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestStatePersistenceAcrossBuilders: dormancy state written by one
// builder warms a fresh builder in a new "process".
func TestStatePersistenceAcrossBuilders(t *testing.T) {
	dir := t.TempDir()
	snap := twoUnitSnap()

	b1, err := buildsys.NewBuilder(buildsys.Options{Mode: compiler.ModeStateful, StateDir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	mustBuild(t, b1, snap)

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var stateFiles []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".state") {
			stateFiles = append(stateFiles, e.Name())
		}
	}
	if len(stateFiles) != len(snap) {
		t.Fatalf("state files = %d, want %d (%v)", len(stateFiles), len(snap), stateFiles)
	}

	// A fresh builder has an empty object cache, so it recompiles — but
	// the disk state must make those recompiles skip dormant passes.
	b2, err := buildsys.NewBuilder(buildsys.Options{Mode: compiler.ModeStateful, StateDir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep := mustBuild(t, b2, snap)
	if rep.UnitsCompiled != len(snap) {
		t.Fatalf("fresh builder compiled %d units, want %d", rep.UnitsCompiled, len(snap))
	}
	if _, _, skipped := rep.Stats().Totals(); skipped == 0 {
		t.Error("persisted state produced no skips in a fresh builder")
	}
	if rep.StateBytes <= 0 {
		t.Error("stateful build reports no state bytes")
	}
}

// TestCorruptStateIsColdStart: truncated or garbage state files must yield
// a correct cold rebuild, never an error.
func TestCorruptStateIsColdStart(t *testing.T) {
	dir := t.TempDir()
	snap := twoUnitSnap()

	b1, err := buildsys.NewBuilder(buildsys.Options{Mode: compiler.ModeStateful, StateDir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ref := mustBuild(t, b1, snap)
	refOut, refRes, err := vm.RunCapture(ref.Program, vm.Config{})
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt every state file a different way: truncate one, fill the
	// next with garbage.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".state") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		if i%2 == 0 {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)/3], 0o644); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := os.WriteFile(path, []byte("not a state file at all"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		i++
	}
	if i == 0 {
		t.Fatal("no state files written")
	}

	b2, err := buildsys.NewBuilder(buildsys.Options{Mode: compiler.ModeStateful, StateDir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := b2.Build(snap)
	if err != nil {
		t.Fatalf("corrupt state must cold-start, got error: %v", err)
	}
	out, res, err := vm.RunCapture(rep.Program, vm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if out != refOut || res.ExitValue != refRes.ExitValue {
		t.Errorf("cold rebuild behaviour differs: %q/%d vs %q/%d", out, res.ExitValue, refOut, refRes.ExitValue)
	}
}

// TestCrashMidStateWrite simulates a process killed partway through
// persisting dormancy state: an orphaned atomic-writer temp file sits next
// to a truncated state file. The next builder must cold-start cleanly,
// produce the same program, and sweep the orphan so temp files cannot
// accumulate across crashes.
func TestCrashMidStateWrite(t *testing.T) {
	dir := t.TempDir()
	snap := twoUnitSnap()

	b1, err := buildsys.NewBuilder(buildsys.Options{Mode: compiler.ModeStateful, StateDir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ref := mustBuild(t, b1, snap)
	refOut, refRes, err := vm.RunCapture(ref.Program, vm.Config{})
	if err != nil {
		t.Fatal(err)
	}

	// Crash leftovers: a half-written temp (matching state.TempPattern, as
	// os.CreateTemp would name it) plus one real state file cut short.
	orphan := filepath.Join(dir, ".state-3141592653")
	if err := os.WriteFile(orphan, []byte("partial write, process died here"), 0o600); err != nil {
		t.Fatal(err)
	}
	if ok, err := filepath.Match(state.TempPattern, filepath.Base(orphan)); err != nil || !ok {
		t.Fatalf("test orphan %q does not match state.TempPattern %q", orphan, state.TempPattern)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	truncated := false
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".state") {
			path := filepath.Join(dir, e.Name())
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
				t.Fatal(err)
			}
			truncated = true
			break
		}
	}
	if !truncated {
		t.Fatal("no state file to truncate")
	}

	// "Restart": a fresh builder over the damaged directory.
	b2, err := buildsys.NewBuilder(buildsys.Options{Mode: compiler.ModeStateful, StateDir: dir, Workers: 2})
	if err != nil {
		t.Fatalf("builder creation must survive crash leftovers: %v", err)
	}
	rep, err := b2.Build(snap)
	if err != nil {
		t.Fatalf("crash leftovers must cold-start, got error: %v", err)
	}
	out, res, err := vm.RunCapture(rep.Program, vm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if out != refOut || res.ExitValue != refRes.ExitValue {
		t.Errorf("post-crash rebuild behaviour differs: %q/%d vs %q/%d",
			out, res.ExitValue, refOut, refRes.ExitValue)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Errorf("orphaned temp file not swept at builder start (stat err: %v)", err)
	}

	// The rebuild rewrote good state; one more fresh builder must skip again.
	b3, err := buildsys.NewBuilder(buildsys.Options{Mode: compiler.ModeStateful, StateDir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep3 := mustBuild(t, b3, snap)
	if _, _, skipped := rep3.Stats().Totals(); skipped == 0 {
		t.Error("state not re-persisted after crash recovery")
	}
}

// TestWorkersNormalized: zero and negative worker counts fall back to a
// sane positive default.
func TestWorkersNormalized(t *testing.T) {
	for _, w := range []int{0, -1, -8} {
		b, err := buildsys.NewBuilder(buildsys.Options{Mode: compiler.ModeStateful, Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if b.Workers() < 1 {
			t.Errorf("workers=%d normalized to %d", w, b.Workers())
		}
		if _, err := b.Build(twoUnitSnap()); err != nil {
			t.Errorf("workers=%d: build failed: %v", w, err)
		}
	}
}

// TestEmptySnapshot: building nothing is a clean error and leaves the
// builder usable.
func TestEmptySnapshot(t *testing.T) {
	b, err := buildsys.NewBuilder(buildsys.Options{Mode: compiler.ModeStateful})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(project.Snapshot{}); err == nil {
		t.Error("empty snapshot built without error")
	}
	if _, err := b.Build(twoUnitSnap()); err != nil {
		t.Errorf("builder unusable after empty snapshot: %v", err)
	}
}

// TestRemovedUnitRebuild: shrinking the project drops the removed unit
// from the cache, its state file from disk, and the link.
func TestRemovedUnitRebuild(t *testing.T) {
	dir := t.TempDir()
	full := twoUnitSnap()
	full["extra.mc"] = []byte(`func unused_extra(x int) int { return x * 2; }`)

	b, err := buildsys.NewBuilder(buildsys.Options{Mode: compiler.ModeStateful, StateDir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	mustBuild(t, b, full)

	count := func() int {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".state") {
				n++
			}
		}
		return n
	}
	if got := count(); got != 3 {
		t.Fatalf("state files after full build = %d, want 3", got)
	}

	shrunk := twoUnitSnap()
	rep := mustBuild(t, b, shrunk)
	if rep.UnitsCompiled != 0 || rep.UnitsCached != 2 {
		t.Errorf("shrunk rebuild: compiled=%d cached=%d, want 0/2", rep.UnitsCompiled, rep.UnitsCached)
	}
	if _, ok := rep.Units["extra.mc"]; ok {
		t.Error("removed unit still reported")
	}
	if got := count(); got != 2 {
		t.Errorf("state files after removal = %d, want 2", got)
	}
	if _, _, err := vm.RunCapture(rep.Program, vm.Config{}); err != nil {
		t.Errorf("shrunk program failed: %v", err)
	}

	// Growing back recompiles only the returning unit.
	rep = mustBuild(t, b, full)
	if rep.UnitsCompiled != 1 || rep.UnitsCached != 2 {
		t.Errorf("regrown rebuild: compiled=%d cached=%d, want 1/2", rep.UnitsCompiled, rep.UnitsCached)
	}
}

// TestBuilderErrorRecovery: a snapshot with a broken unit fails the build
// deterministically but the builder keeps working afterwards.
func TestBuilderErrorRecovery(t *testing.T) {
	b, err := buildsys.NewBuilder(buildsys.Options{Mode: compiler.ModeStateful, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	good := twoUnitSnap()
	mustBuild(t, b, good)

	broken := good.Clone()
	broken["main.mc"] = []byte(`func main() int { return undefined_thing(); }`)
	if _, err := b.Build(broken); err == nil {
		t.Fatal("broken snapshot built without error")
	} else if !strings.Contains(err.Error(), "main.mc") {
		t.Errorf("error does not name the failing unit: %v", err)
	}

	rep := mustBuild(t, b, good)
	if _, _, err := vm.RunCapture(rep.Program, vm.Config{}); err != nil {
		t.Errorf("recovered build failed to run: %v", err)
	}
}
