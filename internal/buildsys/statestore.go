package buildsys

// Persistent per-unit dormancy state. Each unit's records live in their
// own file under Options.StateDir, named from a sanitized unit name plus a
// hash of the full name (unit names contain path separators and may
// collide after sanitizing). The state is a pure optimization: loads that
// fail for any reason — missing file, truncation, corruption, version
// mismatch, injected I/O fault — yield a cold start, and save failures
// are reported as warnings and state.io_error counts rather than failing
// the build (internal/state writes atomically through the vfs seam, so a
// crashed or failed save never leaves a half-written file to confuse the
// next run). The chaos suite (chaos_test.go) walks every fault point on
// these paths and proves the degradation is graceful.

import (
	"errors"
	"io/fs"
	"path/filepath"
	"strings"

	"statefulcc/internal/core"
	"statefulcc/internal/history"
	"statefulcc/internal/state"
	"statefulcc/internal/vfs"
)

// stateSuffix is the per-unit state file extension.
const stateSuffix = ".state"

// statePath maps a unit name to its state file path ("" without StateDir).
func (b *Builder) statePath(unit string) string {
	if b.opts.StateDir == "" {
		return ""
	}
	var sb strings.Builder
	for _, r := range unit {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-', r == '_':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	name := fmt16(contentHash([]byte(unit)))
	return filepath.Join(b.opts.StateDir, sb.String()+"-"+name+stateSuffix)
}

// fmt16 renders a hash as fixed-width lowercase hex without pulling fmt
// into the hot path.
func fmt16(v uint64) string {
	const digits = "0123456789abcdef"
	var buf [16]byte
	for i := 15; i >= 0; i-- {
		buf[i] = digits[v&0xF]
		v >>= 4
	}
	return string(buf[:])
}

// loadUnitState reads a unit's persisted state through fsys; any failure
// is a cold start, never an error. Real failures (as opposed to a simply
// missing file) additionally count as state.io_error and warn, so degraded
// disks are visible. Called concurrently from worker goroutines; the
// counters and warning list are synchronized. fsys is the worker's view of
// b.fs — in footprint mode the unit's recording wrapper, so state reads
// land in the unit's traced footprint as advisory entries.
func (b *Builder) loadUnitState(fsys vfs.FS, unit string) *core.UnitState {
	path := b.statePath(unit)
	if path == "" {
		return nil
	}
	st, err := state.LoadFS(fsys, path)
	if err != nil {
		b.ctr.stateIOErrors.Inc()
		b.warnf("state: load %s: %v (running cold)", filepath.Base(path), err)
	}
	if err != nil || st == nil {
		b.ctr.stateLoadMisses.Inc()
		return nil
	}
	b.ctr.stateLoads.Inc()
	return st
}

// saveUnitState persists a unit's state through fsys; failures degrade to
// a warning and a state.io_error count (state is advisory, and the atomic
// writer never leaves partial files). Writes pass through a footprint
// recording wrapper untouched — only reads are traced.
func (b *Builder) saveUnitState(fsys vfs.FS, unit string, st *core.UnitState) {
	path := b.statePath(unit)
	if path == "" {
		return
	}
	if err := state.SaveFS(fsys, path, st); err != nil {
		b.ctr.stateIOErrors.Inc()
		b.warnf("state: save %s: %v (state not persisted)", filepath.Base(path), err)
		return
	}
	b.ctr.stateSaves.Inc()
}

// sweepStateTemp removes orphaned atomic-write temp files (state and
// history rotation) from StateDir. A process that crashes between temp
// creation and rename leaves one behind; they are never read back, so a
// new builder (the directory's single writer) deletes them at startup.
// Failures only count — the state directory may not even exist yet.
func (b *Builder) sweepStateTemp() {
	if b.opts.StateDir == "" {
		return
	}
	entries, err := b.fs.ReadDir(b.opts.StateDir)
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			b.ctr.stateIOErrors.Inc()
		}
		return
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		stateTemp, _ := filepath.Match(state.TempPattern, e.Name())
		histTemp, _ := filepath.Match(history.TempPattern, e.Name())
		if !stateTemp && !histTemp {
			continue
		}
		if err := b.fs.Remove(filepath.Join(b.opts.StateDir, e.Name())); err != nil {
			b.ctr.stateIOErrors.Inc()
		}
	}
}

// removeUnitState deletes a removed unit's state file so StateDir tracks
// the live project.
func (b *Builder) removeUnitState(unit string) {
	path := b.statePath(unit)
	if path == "" {
		return
	}
	if err := b.fs.Remove(path); err != nil && !errors.Is(err, fs.ErrNotExist) {
		b.ctr.stateIOErrors.Inc()
		b.warnf("state: remove %s: %v (stale state file left behind)", filepath.Base(path), err)
	}
}
