package buildsys

// Persistent per-unit dormancy state. Each unit's records live in their
// own file under Options.StateDir, named from a sanitized unit name plus a
// hash of the full name (unit names contain path separators and may
// collide after sanitizing). The state is a pure optimization: loads that
// fail for any reason — missing file, truncation, corruption, version
// mismatch — yield a cold start, and save failures are dropped rather than
// failing the build (internal/state writes atomically, so a crashed or
// failed save never leaves a half-written file to confuse the next run).

import (
	"os"
	"path/filepath"
	"strings"

	"statefulcc/internal/core"
	"statefulcc/internal/state"
)

// stateSuffix is the per-unit state file extension.
const stateSuffix = ".state"

// statePath maps a unit name to its state file path ("" without StateDir).
func (b *Builder) statePath(unit string) string {
	if b.opts.StateDir == "" {
		return ""
	}
	var sb strings.Builder
	for _, r := range unit {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-', r == '_':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	name := fmt16(contentHash([]byte(unit)))
	return filepath.Join(b.opts.StateDir, sb.String()+"-"+name+stateSuffix)
}

// fmt16 renders a hash as fixed-width lowercase hex without pulling fmt
// into the hot path.
func fmt16(v uint64) string {
	const digits = "0123456789abcdef"
	var buf [16]byte
	for i := 15; i >= 0; i-- {
		buf[i] = digits[v&0xF]
		v >>= 4
	}
	return string(buf[:])
}

// loadUnitState reads a unit's persisted state; any failure is a cold
// start, never an error. Called concurrently from worker goroutines; the
// counters it updates are atomic.
func (b *Builder) loadUnitState(unit string) *core.UnitState {
	path := b.statePath(unit)
	if path == "" {
		return nil
	}
	st, err := state.Load(path)
	if err != nil || st == nil {
		b.ctr.stateLoadMisses.Inc()
		return nil
	}
	b.ctr.stateLoads.Inc()
	return st
}

// saveUnitState persists a unit's state; failures are dropped (state is
// advisory, and the atomic writer never leaves partial files).
func (b *Builder) saveUnitState(unit string, st *core.UnitState) {
	path := b.statePath(unit)
	if path == "" {
		return
	}
	if state.Save(path, st) == nil {
		b.ctr.stateSaves.Inc()
	}
}

// sweepStateTemp removes orphaned atomic-write temp files from StateDir.
// A process that crashes between state.Save's temp creation and rename
// leaves one behind; they are never read back, so a new builder (the
// directory's single writer) deletes them at startup.
func (b *Builder) sweepStateTemp() {
	if b.opts.StateDir == "" {
		return
	}
	matches, err := filepath.Glob(filepath.Join(b.opts.StateDir, state.TempPattern))
	if err != nil {
		return
	}
	for _, m := range matches {
		_ = os.Remove(m)
	}
}

// removeUnitState deletes a removed unit's state file so StateDir tracks
// the live project.
func (b *Builder) removeUnitState(unit string) {
	if path := b.statePath(unit); path != "" {
		_ = os.Remove(path)
	}
}
