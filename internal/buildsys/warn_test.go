package buildsys

// White-box soak for the warning accumulator: the fix for unbounded
// Report.Warnings growth (a pathological filesystem or long-lived serve
// daemon repeating one failure thousands of times) dedupes by message,
// folds repeats into "(×N)" suffixes, caps distinct messages at
// maxWarnings, and reports the overflow in one trailer line.

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func newWarnBuilder(t *testing.T) *Builder {
	t.Helper()
	b, err := NewBuilder(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestWarnfDedupesRepeats(t *testing.T) {
	b := newWarnBuilder(t)
	for i := 0; i < 1000; i++ {
		b.warnf("state: save %s: disk full", "a.mc")
	}
	b.warnf("history: append failed")
	got := b.takeWarnings()
	want := []string{
		"state: save a.mc: disk full (×1000)",
		"history: append failed",
	}
	if len(got) != len(want) {
		t.Fatalf("takeWarnings = %q, want %q", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("warning %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestWarnfCapsDistinctMessages(t *testing.T) {
	b := newWarnBuilder(t)
	const distinct = maxWarnings + 17
	for i := 0; i < distinct; i++ {
		// Each distinct message also repeats, to exercise dedupe + cap
		// together.
		for j := 0; j < 3; j++ {
			b.warnf("failure %d", i)
		}
	}
	got := b.takeWarnings()
	if len(got) != maxWarnings+1 {
		t.Fatalf("%d warnings, want %d distinct + 1 trailer", len(got), maxWarnings)
	}
	for i := 0; i < maxWarnings; i++ {
		want := fmt.Sprintf("failure %d (×3)", i)
		if got[i] != want {
			t.Errorf("warning %d = %q, want %q (first-occurrence order)", i, got[i], want)
		}
	}
	trailer := got[len(got)-1]
	if !strings.Contains(trailer, "17 more distinct warnings") {
		t.Errorf("trailer = %q, want 17 dropped distinct warnings", trailer)
	}
}

// TestWarnfConcurrentSoak hammers warnf from many goroutines (the worker
// pool shape) and checks the invariants hold under -race: bounded output,
// exact repeat counts, no loss below the cap.
func TestWarnfConcurrentSoak(t *testing.T) {
	b := newWarnBuilder(t)
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				b.warnf("worker warning %d", i%4) // 4 distinct messages
			}
		}(w)
	}
	wg.Wait()
	got := b.takeWarnings()
	if len(got) != 4 {
		t.Fatalf("takeWarnings = %q, want 4 deduped messages", got)
	}
	total := workers * perWorker
	for _, msg := range got {
		if !strings.Contains(msg, fmt.Sprintf("(×%d)", total/4)) {
			t.Errorf("warning %q missing exact repeat count %d", msg, total/4)
		}
	}
}

// TestWarnResetBetweenBuilds: Build resets the accumulator, so a build's
// report never carries the previous build's warnings.
func TestWarnResetBetweenBuilds(t *testing.T) {
	b := newWarnBuilder(t)
	b.warnf("stale warning")
	snap := map[string][]byte{"m.mc": []byte("func main() int { return 0; }\n")}
	rep, err := b.Build(snap)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range rep.Warnings {
		if strings.Contains(w, "stale warning") {
			t.Errorf("report carried pre-build warning %q", w)
		}
	}
}
