package buildsys_test

// Build-under-adversity suite (docs/ROBUSTNESS.md): panic isolation and
// whole-unit quarantine, the soundness sentinel catching a nondeterministic
// pass and auto-quarantining the (unit, pass) pair, cooperative
// cancellation leaving a loadable state directory, and the correctness
// contract holding with auditing enabled. Faults are injected through the
// registered faulthook pass (internal/passes), so every scenario exercises
// the real pipeline, worker pool, and state store — no mocks.

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"statefulcc/internal/buildsys"
	"statefulcc/internal/codegen"
	"statefulcc/internal/compiler"
	"statefulcc/internal/core"
	"statefulcc/internal/obs"
	"statefulcc/internal/passes"
	"statefulcc/internal/project"
	"statefulcc/internal/vm"
	"statefulcc/internal/workload"
)

// advPipeline places faulthook mid-pipeline with cleanup passes after it,
// so even a mutate fault's dead IR is swept before codegen — the layout a
// real pipeline's hygiene passes provide.
var advPipeline = []string{"mem2reg", "simplifycfg", "instcombine", "sccp", "faulthook", "dce", "simplifycfg"}

// advSnap returns a three-unit project with known function names.
func advSnap() project.Snapshot {
	return project.Snapshot{
		"a.mc": []byte("func alpha() int { return 1; }\n"),
		"b.mc": []byte("func beta() int { return 2; }\n"),
		"m.mc": []byte("extern func alpha() int;\nextern func beta() int;\nfunc main() int { return alpha() + beta(); }\n"),
	}
}

// statelessRef compiles snap on a fresh stateless builder (hook must be
// disarmed) and returns the canonical program rendering.
func statelessRef(t *testing.T, snap project.Snapshot, pipeline []string) string {
	t.Helper()
	b, err := buildsys.NewBuilder(buildsys.Options{Mode: compiler.ModeStateless, Workers: 1, Pipeline: pipeline})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := b.Build(snap)
	if err != nil {
		t.Fatal(err)
	}
	return codegen.DisassembleProgram(rep.Program)
}

// TestPanicIsolatedToUnit: a pass panicking on one unit must not fail the
// build — the unit is quarantined, retried stateless, and every other unit
// builds normally; the linked program matches the stateless reference.
func TestPanicIsolatedToUnit(t *testing.T) {
	snap := advSnap()
	b, err := buildsys.NewBuilder(buildsys.Options{
		Mode: compiler.ModeStateful, Workers: 2,
		StateDir: t.TempDir(), Pipeline: advPipeline,
	})
	if err != nil {
		t.Fatal(err)
	}

	passes.ArmFaultHook(passes.FaultConfig{Mode: passes.FaultPanic, Func: "beta", Times: 1})
	defer passes.DisarmFaultHook()
	rep, err := b.Build(snap)
	if err != nil {
		t.Fatalf("build with one panicking unit failed: %v", err)
	}
	passes.DisarmFaultHook()

	ur := rep.Units["b.mc"]
	if !ur.Panicked {
		t.Error("b.mc not marked Panicked")
	}
	if ur.Quarantine != core.QuarantinePanic {
		t.Errorf("b.mc quarantine %q, want %q", ur.Quarantine, core.QuarantinePanic)
	}
	for _, name := range []string{"a.mc", "m.mc"} {
		u := rep.Units[name]
		if !u.Compiled || u.Panicked || u.Quarantine != "" {
			t.Errorf("%s: compiled=%v panicked=%v quarantine=%q, want clean compile", name, u.Compiled, u.Panicked, u.Quarantine)
		}
	}
	if rep.Metrics[obs.CtrBuildPanics] != 1 {
		t.Errorf("%s = %d, want 1", obs.CtrBuildPanics, rep.Metrics[obs.CtrBuildPanics])
	}
	if rep.Metrics[obs.CtrQuarantineEngaged] != 1 {
		t.Errorf("%s = %d, want 1", obs.CtrQuarantineEngaged, rep.Metrics[obs.CtrQuarantineEngaged])
	}

	if got, want := codegen.DisassembleProgram(rep.Program), statelessRef(t, snap, advPipeline); got != want {
		t.Error("panicked-then-isolated build differs from stateless reference")
	}
	out, res, err := vm.RunCapture(rep.Program, vm.Config{})
	if err != nil || res.ExitValue != 3 {
		t.Errorf("program ran exit=%d out=%q err=%v, want exit 3", res.ExitValue, out, err)
	}
}

// TestPanicQuarantineLiftsAfterCleanBuilds: a whole-unit quarantine holds
// the unit on the stateless fallback until QuarantineCleanTarget clean
// compiles, then lifts for a cold stateful restart.
func TestPanicQuarantineLiftsAfterCleanBuilds(t *testing.T) {
	snap := advSnap()
	b, err := buildsys.NewBuilder(buildsys.Options{
		Mode: compiler.ModeStateful, Workers: 1,
		StateDir: t.TempDir(), Pipeline: advPipeline,
	})
	if err != nil {
		t.Fatal(err)
	}

	passes.ArmFaultHook(passes.FaultConfig{Mode: passes.FaultPanic, Func: "beta", Times: 1})
	defer passes.DisarmFaultHook()
	if _, err := b.Build(snap); err != nil {
		t.Fatalf("panic build: %v", err)
	}
	passes.DisarmFaultHook()

	// Each edit forces a recompile of b.mc; the quarantined unit compiles
	// stateless until the clean count reaches target.
	for i := 1; i <= core.QuarantineCleanTarget; i++ {
		snap["b.mc"] = append(snap["b.mc"], []byte(fmt.Sprintf("// edit %d\n", i))...)
		rep, err := b.Build(snap)
		if err != nil {
			t.Fatalf("clean build %d: %v", i, err)
		}
		ur := rep.Units["b.mc"]
		if !ur.Compiled {
			t.Fatalf("clean build %d: b.mc not recompiled", i)
		}
		if i < core.QuarantineCleanTarget {
			if ur.Quarantine != core.QuarantinePanic {
				t.Errorf("clean build %d: quarantine %q, want still %q", i, ur.Quarantine, core.QuarantinePanic)
			}
			if ur.Panicked {
				t.Errorf("clean build %d: spurious Panicked", i)
			}
		} else {
			if ur.Quarantine != "" {
				t.Errorf("lift build: quarantine %q, want lifted", ur.Quarantine)
			}
			if rep.Metrics[obs.CtrQuarantineLifted] != 1 {
				t.Errorf("%s = %d, want 1", obs.CtrQuarantineLifted, rep.Metrics[obs.CtrQuarantineLifted])
			}
		}
	}

	// Post-lift: the unit compiles stateful again (cold restart) and the
	// whole history stayed byte-identical to stateless.
	snap["b.mc"] = append(snap["b.mc"], []byte("// post-lift\n")...)
	rep, err := b.Build(snap)
	if err != nil {
		t.Fatal(err)
	}
	if ur := rep.Units["b.mc"]; ur.Quarantine != "" || ur.Panicked {
		t.Errorf("post-lift build: %+v, want plain stateful compile", ur)
	}
	if got, want := codegen.DisassembleProgram(rep.Program), statelessRef(t, snap, advPipeline); got != want {
		t.Error("post-lift build differs from stateless reference")
	}
}

// TestSentinelCatchesUnsoundSkip: at audit rate 1 the sentinel executes a
// would-be-skipped pass that (armed to mutate-but-lie) produces different
// IR, flags the unsound skip, quarantines the (unit, pass) pair — and the
// final program still matches the stateless reference because the sentinel
// leaves exactly the IR a stateless compiler would have produced.
func TestSentinelCatchesUnsoundSkip(t *testing.T) {
	snap := project.Snapshot{
		"u.mc": []byte("func helper() int { return 7; }\nfunc main() int { return helper() + 35; }\n"),
	}
	b, err := buildsys.NewBuilder(buildsys.Options{
		Mode: compiler.ModeStateful, Workers: 1,
		StateDir: t.TempDir(), Pipeline: advPipeline, AuditRate: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(snap); err != nil {
		t.Fatalf("warmup build: %v", err)
	}

	// Edit main only: helper's records stay warm and skippable, so the
	// sentinel audits them. The armed hook mutates helper's IR while
	// reporting "no change" — the lie the sentinel exists to catch.
	snap["u.mc"] = []byte("func helper() int { return 7; }\nfunc main() int { return helper() + 36; }\n")
	passes.ArmFaultHook(passes.FaultConfig{Mode: passes.FaultMutate, Func: "helper"})
	defer passes.DisarmFaultHook()
	rep, err := b.Build(snap)
	if err != nil {
		t.Fatalf("audited build: %v", err)
	}
	passes.DisarmFaultHook()

	audited, unsound := rep.Stats().SentinelTotals()
	if audited == 0 {
		t.Fatal("audit rate 1 recorded no audits")
	}
	if unsound < 1 {
		t.Fatalf("sentinel missed the unsound skip (audited=%d unsound=%d)", audited, unsound)
	}
	if rep.Metrics[obs.CtrAuditSampled] == 0 || rep.Metrics[obs.CtrAuditUnsound] < 1 {
		t.Errorf("counters: %s=%d %s=%d", obs.CtrAuditSampled, rep.Metrics[obs.CtrAuditSampled],
			obs.CtrAuditUnsound, rep.Metrics[obs.CtrAuditUnsound])
	}
	ur := rep.Units["u.mc"]
	if ur.Quarantine != core.QuarantineUnsound {
		t.Errorf("unit quarantine %q, want %q", ur.Quarantine, core.QuarantineUnsound)
	}
	var hookSlot *core.SlotStats
	for i := range ur.Slots {
		if ur.Slots[i].Pass == "faulthook" && ur.Slots[i].Unsound > 0 {
			hookSlot = &ur.Slots[i]
		}
	}
	if hookSlot == nil {
		t.Error("no slot charged the unsound skip to faulthook")
	}
	if got, want := codegen.DisassembleProgram(rep.Program), statelessRef(t, snap, advPipeline); got != want {
		t.Error("audited build with unsound pass differs from stateless reference")
	}
}

// TestSentinelQuarantineSuspendsSkippingThenLifts: a per-pass quarantine
// forces the pass to run (decision "quarantined") on every subsequent
// compile; after QuarantineCleanTarget clean compiles it lifts and
// skipping resumes on the records kept warm throughout.
func TestSentinelQuarantineSuspendsSkippingThenLifts(t *testing.T) {
	snap := project.Snapshot{
		"u.mc": []byte("func helper() int { return 7; }\nfunc main() int { return helper() + 0; }\n"),
	}
	b, err := buildsys.NewBuilder(buildsys.Options{
		Mode: compiler.ModeStateful, Workers: 1,
		StateDir: t.TempDir(), Pipeline: advPipeline, AuditRate: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(snap); err != nil {
		t.Fatal(err)
	}
	edit := func(i int) {
		snap["u.mc"] = []byte(fmt.Sprintf("func helper() int { return 7; }\nfunc main() int { return helper() + %d; }\n", i))
	}

	edit(1)
	passes.ArmFaultHook(passes.FaultConfig{Mode: passes.FaultMutate, Func: "helper", Times: 1})
	defer passes.DisarmFaultHook()
	rep, err := b.Build(snap)
	if err != nil {
		t.Fatal(err)
	}
	passes.DisarmFaultHook()
	if ur := rep.Units["u.mc"]; ur.Quarantine != core.QuarantineUnsound {
		t.Fatalf("setup: quarantine %q, want %q", ur.Quarantine, core.QuarantineUnsound)
	}

	// Clean compiles: faulthook must run with decision "quarantined" while
	// quarantined, then lift at target.
	for i := 1; i <= core.QuarantineCleanTarget; i++ {
		edit(i + 1)
		rep, err = b.Build(snap)
		if err != nil {
			t.Fatalf("clean build %d: %v", i, err)
		}
		ur := rep.Units["u.mc"]
		if i < core.QuarantineCleanTarget {
			if ur.Quarantine != core.QuarantineUnsound {
				t.Errorf("clean build %d: quarantine %q, want still engaged", i, ur.Quarantine)
			}
			quarantinedRuns := 0
			for _, sl := range ur.Slots {
				if sl.Pass == "faulthook" {
					quarantinedRuns += sl.Quarantined
				}
			}
			if quarantinedRuns == 0 {
				t.Errorf("clean build %d: faulthook not forced to run under quarantine", i)
			}
		} else if ur.Quarantine != "" {
			t.Errorf("lift build: quarantine %q, want lifted", ur.Quarantine)
		}
		if got, want := codegen.DisassembleProgram(rep.Program), statelessRef(t, snap, advPipeline); got != want {
			t.Errorf("clean build %d differs from stateless reference", i)
		}
	}
	if rep.Metrics[obs.CtrQuarantineLifted] != 1 {
		t.Errorf("%s = %d, want 1", obs.CtrQuarantineLifted, rep.Metrics[obs.CtrQuarantineLifted])
	}

	// Post-lift: skipping resumes (records stayed warm under quarantine).
	edit(99)
	rep, err = b.Build(snap)
	if err != nil {
		t.Fatal(err)
	}
	skipped := 0
	for _, sl := range rep.Units["u.mc"].Slots {
		skipped += sl.Skipped
	}
	if skipped == 0 {
		t.Error("post-lift build skipped nothing; warm records lost")
	}
}

// TestCancelledBuildLeavesStateLoadable: cancelling a build mid-flight
// (one compile held open by the block fault) yields a partial report and a
// wrapped context error; a fresh builder on the same state directory then
// builds cleanly with zero state I/O errors and stateless-identical output.
func TestCancelledBuildLeavesStateLoadable(t *testing.T) {
	snap := workload.Generate(testProfile(83))
	stateDir := t.TempDir()
	b, err := buildsys.NewBuilder(buildsys.Options{
		Mode: compiler.ModeStateful, Workers: 2,
		StateDir: stateDir, Pipeline: advPipeline,
	})
	if err != nil {
		t.Fatal(err)
	}

	passes.ArmFaultHook(passes.FaultConfig{Mode: passes.FaultBlock, Times: 1})
	defer passes.DisarmFaultHook()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type result struct {
		rep *buildsys.Report
		err error
	}
	done := make(chan result, 1)
	go func() {
		rep, err := b.BuildContext(ctx, snap)
		done <- result{rep, err}
	}()

	deadline := time.Now().Add(10 * time.Second)
	for passes.FaultHookFired() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("block fault never fired")
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	passes.ReleaseFaultHook()

	res := <-done
	if res.err == nil || !errors.Is(res.err, context.Canceled) {
		t.Fatalf("cancelled build returned %v, want context.Canceled", res.err)
	}
	if res.rep == nil {
		t.Fatal("cancelled build returned no partial report")
	}
	if res.rep.Program != nil {
		t.Error("cancelled build linked a program")
	}
	if res.rep.Metrics[obs.CtrBuildCancelled] != 1 {
		t.Errorf("%s = %d, want 1", obs.CtrBuildCancelled, res.rep.Metrics[obs.CtrBuildCancelled])
	}
	passes.DisarmFaultHook()

	// Cold start on the state directory the cancelled build left behind.
	b2, err := buildsys.NewBuilder(buildsys.Options{
		Mode: compiler.ModeStateful, Workers: 2,
		StateDir: stateDir, Pipeline: advPipeline,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := b2.Build(snap)
	if err != nil {
		t.Fatalf("build after cancellation: %v", err)
	}
	if rep2.Metrics[obs.CtrStateIOErrors] != 0 {
		t.Errorf("state dir inconsistent after cancellation: %d I/O errors", rep2.Metrics[obs.CtrStateIOErrors])
	}
	if got, want := codegen.DisassembleProgram(rep2.Program), statelessRef(t, snap, advPipeline); got != want {
		t.Error("post-cancellation build differs from stateless reference")
	}
}

// TestAuditedBuildsMatchStateless: the correctness contract holds with the
// sentinel sampling (p=0.05) and saturated (p=1) across an edit history —
// auditing may only confirm or repair skips, never change output.
func TestAuditedBuildsMatchStateless(t *testing.T) {
	seq := history(t, 71, 4)
	slProgs, slOuts, slExits := buildSeq(t, buildsys.Options{Mode: compiler.ModeStateless, Workers: 1}, seq)
	for _, rate := range []float64{0.05, 1} {
		progs, outs, exits := buildSeq(t, buildsys.Options{
			Mode: compiler.ModeStateful, Workers: 4, AuditRate: rate,
		}, seq)
		for i := range seq {
			if progs[i] != slProgs[i] {
				t.Fatalf("audit=%v build %d: program differs from stateless", rate, i)
			}
			if outs[i] != slOuts[i] || exits[i] != slExits[i] {
				t.Fatalf("audit=%v build %d: behaviour differs", rate, i)
			}
		}
	}
}
