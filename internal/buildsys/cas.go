package buildsys

// Shared-cache integration (internal/cas, docs/ARCHITECTURE.md). With
// Options.CAS set, every unit that misses the local object cache consults
// the shared store before compiling:
//
//	action key → blob key → verified blob → decoded object   (remote hit)
//
// and every honest local compile publishes its object (and, in the
// stateful modes, the unit's dormancy state) back. The degradation
// contract matches the state layer's: any CAS failure — transport error,
// quota refusal, poisoned blob, malformed entry — costs at most a local
// recompile with a warning and a counter; it can never produce a wrong
// build or fail one. A blob is accepted only if its bytes hash to its key
// AND its header names the exact action and unit asked about, so neither a
// poisoned blob nor a redirected action entry can ever be served.
//
// When the store also implements cas.Leaser (HTTPCAS against a serve
// instance does), misses coalesce: one builder becomes the compile leader
// and everyone else waits for its published result instead of compiling
// the same unit N times across the fleet.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"time"

	"statefulcc/internal/cas"
	"statefulcc/internal/codegen"
	"statefulcc/internal/compiler"
	"statefulcc/internal/core"
	"statefulcc/internal/obs"
	"statefulcc/internal/state"
	"statefulcc/internal/vfs"
)

// Action-key domains. The state domain carries the state-file layout
// version so a serialization change stops sharing instead of confusing an
// older decoder (the object payload's layout is covered by
// cas.BlobFormatVersion).
const casObjectDomain = "statefulcc/object"

var casStateDomain = fmt.Sprintf("statefulcc/state/v%d", state.FormatVersion)

// builderCAS is the builder's resolved shared-cache handle: the store, the
// optional coalescing interface, and the pre-resolved client-side cas.*
// counters.
type builderCAS struct {
	store  cas.Store
	leaser cas.Leaser

	hit, miss, verifyFailed *obs.Counter
	coalesced, published    *obs.Counter
	ioErrors                *obs.Counter
	fetch                   *obs.Histogram
}

// newBuilderCAS resolves the shared-cache handle (nil when no store is
// configured).
func newBuilderCAS(store cas.Store, reg *obs.Registry) *builderCAS {
	if store == nil {
		return nil
	}
	cc := &builderCAS{
		store:        store,
		hit:          reg.Counter(obs.CtrCASHits),
		miss:         reg.Counter(obs.CtrCASMisses),
		verifyFailed: reg.Counter(obs.CtrCASVerifyFailed),
		coalesced:    reg.Counter(obs.CtrCASCoalesced),
		published:    reg.Counter(obs.CtrCASPublished),
		ioErrors:     reg.Counter(obs.CtrCASIOErrors),
		fetch:        reg.Histogram(obs.HistCASFetchNS),
	}
	if l, ok := store.(cas.Leaser); ok {
		cc.leaser = l
	}
	// A network-backed store (HTTPCAS) counts its own wire adversity —
	// retries, hedges, breaker transitions; binding it to the builder's
	// registry lands those rows in /metrics and the flight recorder.
	if m, ok := store.(interface{ SetMetrics(*obs.Registry) }); ok {
		m.SetMetrics(reg)
	}
	return cc
}

// objectAction derives the unit's object action key. It hashes the honest
// source bytes directly — a lying ContentHashHook (test-only) can corrupt
// the local declared channel, never the shared cache.
func (b *Builder) objectAction(unit string, src []byte) cas.Key {
	return cas.ActionKey(casObjectDomain, core.StateVersion, cas.BlobFormatVersion,
		b.opts.Mode.String(), b.opts.Pipeline, unit, src)
}

// stateAction derives the unit's dormancy-state action key.
func (b *Builder) stateAction(unit string, src []byte) cas.Key {
	return cas.ActionKey(casStateDomain, core.StateVersion, cas.BlobFormatVersion,
		b.opts.Mode.String(), b.opts.Pipeline, unit, src)
}

// heldLease is a coalescing leadership this worker must settle: publishing
// (casPublish's ActionPut) completes it on the server; any failure path
// abandons it so waiters fall back to compiling locally instead of
// blocking out their grace period.
type heldLease struct {
	leaser cas.Leaser
	action cas.Key
}

// abandon releases the lease (nil-safe; errors are irrelevant — the
// server's grace timeout covers a lost abandon).
func (l *heldLease) abandon() {
	if l != nil {
		_ = l.leaser.Abandon(l.action)
	}
}

// casFetch tries to serve job j from the shared cache. It returns a
// remote-hit outcome, or nil to compile locally — then with a non-nil
// lease if this worker won a coalescing leadership (the caller must
// publish or abandon). Runs on a worker slot; every failure degrades to
// (nil, nil) after counting and warning.
func (b *Builder) casFetch(ctx context.Context, fsys vfs.FS, j compileJob) (*outcome, *heldLease) {
	cc := b.cas
	action := b.objectAction(j.name, j.src)
	start := time.Now()
	coalesced := false
	blobKey, err := cc.store.ActionGet(action)
	if err != nil {
		switch {
		case errors.Is(err, cas.ErrNotFound):
			// A plain miss: try to coalesce with any concurrent compile of
			// the same action before doing the work ourselves.
			if cc.leaser == nil {
				cc.miss.Inc()
				return nil, nil
			}
			lr, lerr := cc.leaser.Lease(ctx, action)
			if lerr != nil {
				if !errors.Is(lerr, cas.ErrUnavailable) {
					cc.ioErrors.Inc()
				}
				cc.miss.Inc()
				b.warnf("cas: unit %s: lease: %v (compiling locally)", j.name, lerr)
				return nil, nil
			}
			switch {
			case lr.Leader:
				cc.miss.Inc()
				return nil, &heldLease{leaser: cc.leaser, action: action}
			case lr.Found:
				blobKey = lr.Blob
				coalesced = true
			default:
				// Leader abandoned or the grace expired: compile locally
				// (and publish, so late waiters still benefit).
				cc.miss.Inc()
				return nil, nil
			}
		case errors.Is(err, cas.ErrVerify):
			cc.verifyFailed.Inc()
			cc.miss.Inc()
			b.warnf("cas: unit %s: poisoned action entry rejected (recompiling locally)", j.name)
			return nil, nil
		case errors.Is(err, cas.ErrUnavailable):
			// Breaker open: the fast-fail was already charged to
			// cas.breaker_open by the client — a miss here, not an io_error
			// (nothing actually touched the wire).
			cc.miss.Inc()
			b.warnf("cas: backend unavailable (circuit open; compiling locally)")
			return nil, nil
		default:
			cc.ioErrors.Inc()
			cc.miss.Inc()
			b.warnf("cas: unit %s: action lookup: %v (recompiling locally)", j.name, err)
			return nil, nil
		}
	}
	obj := b.casFetchObject(j, action, blobKey)
	if obj == nil {
		cc.miss.Inc()
		return nil, nil
	}
	cc.hit.Inc()
	if coalesced {
		cc.coalesced.Inc()
	}
	cc.fetch.Observe(time.Since(start).Nanoseconds())
	out := &outcome{remote: true, casObj: obj}
	if b.statefulMode() {
		if st := b.casFetchState(j); st != nil {
			out.casState = st
			// Persist the adopted state locally so the next process of this
			// client warms up without the network.
			b.saveUnitState(fsys, j.name, st)
		}
	}
	return out, nil
}

// casFetchObject fetches and fully verifies the object blob: bytes hash to
// the blob key (inside Get), the header names this exact action and unit,
// and the payload decodes. Any failure is a counted miss, never a served
// object.
func (b *Builder) casFetchObject(j compileJob, action, blobKey cas.Key) *codegen.Object {
	cc := b.cas
	data, err := cc.store.Get(blobKey)
	if err != nil {
		switch {
		case errors.Is(err, cas.ErrVerify):
			cc.verifyFailed.Inc()
			b.warnf("cas: unit %s: poisoned blob rejected (recompiling locally)", j.name)
		case errors.Is(err, cas.ErrNotFound):
			// Action entry outlived its blob (eviction race): plain miss.
		case errors.Is(err, cas.ErrUnavailable):
			b.warnf("cas: backend unavailable (circuit open; compiling locally)")
		default:
			cc.ioErrors.Inc()
			b.warnf("cas: unit %s: blob fetch: %v (recompiling locally)", j.name, err)
		}
		return nil
	}
	blob, err := cas.DecodeBlob(data)
	if err != nil || blob.Kind != cas.KindObject || blob.Action != action || blob.Unit != j.name {
		cc.verifyFailed.Inc()
		b.warnf("cas: unit %s: blob header mismatch (poisoned entry rejected; recompiling locally)", j.name)
		return nil
	}
	obj, err := cas.DecodeObject(blob.Payload)
	if err != nil {
		cc.verifyFailed.Inc()
		b.warnf("cas: unit %s: object payload rejected: %v (recompiling locally)", j.name, err)
		return nil
	}
	return obj
}

// casFetchState fetches the unit's shared dormancy state (advisory: any
// failure returns nil and the unit just warms up locally). A fetched state
// carrying a quarantine is discarded — quarantine is a local trust
// verdict, not something to import — and its footprint is dropped, since
// traced read sets name the producing client's state paths.
func (b *Builder) casFetchState(j compileJob) *core.UnitState {
	cc := b.cas
	action := b.stateAction(j.name, j.src)
	blobKey, err := cc.store.ActionGet(action)
	if err != nil {
		if errors.Is(err, cas.ErrVerify) {
			cc.verifyFailed.Inc()
		}
		return nil
	}
	data, err := cc.store.Get(blobKey)
	if err != nil {
		if errors.Is(err, cas.ErrVerify) {
			cc.verifyFailed.Inc()
			b.warnf("cas: unit %s: poisoned state blob rejected", j.name)
		}
		return nil
	}
	blob, err := cas.DecodeBlob(data)
	if err != nil || blob.Kind != cas.KindState || blob.Action != action || blob.Unit != j.name {
		cc.verifyFailed.Inc()
		b.warnf("cas: unit %s: state blob header mismatch (rejected)", j.name)
		return nil
	}
	st, err := state.DecodeBytes(blob.Payload)
	if err != nil {
		cc.verifyFailed.Inc()
		b.warnf("cas: unit %s: state payload rejected: %v", j.name, err)
		return nil
	}
	if st.Quarantine != nil {
		return nil
	}
	st.Footprint = nil
	return st
}

// casPublish shares a completed honest compile: the object blob always,
// the dormancy state when the stateful modes produced a clean one. The
// object's ActionPut is what completes a held coalescing lease (waiters
// wake with the result); every failure path abandons the lease instead so
// waiters compile locally rather than waiting out the grace.
func (b *Builder) casPublish(j compileJob, res *compiler.UnitResult, lease *heldLease) {
	cc := b.cas
	if res.Object == nil {
		lease.abandon()
		return
	}
	action := b.objectAction(j.name, j.src)
	blob := cas.EncodeBlob(cas.KindObject, action, j.name, cas.EncodeObject(res.Object))
	key := cas.Sum(blob)
	if err := cc.store.Put(key, blob); err != nil {
		if !errors.Is(err, cas.ErrQuota) && !errors.Is(err, cas.ErrUnavailable) {
			cc.ioErrors.Inc()
		}
		b.warnf("cas: unit %s: publish: %v (result not shared)", j.name, err)
		lease.abandon()
		return
	}
	if err := cc.store.ActionPut(action, key); err != nil {
		if !errors.Is(err, cas.ErrUnavailable) {
			cc.ioErrors.Inc()
		}
		b.warnf("cas: unit %s: publish action: %v (result not shared)", j.name, err)
		lease.abandon()
		return
	}
	cc.published.Inc()

	if !b.statefulMode() || res.State == nil || res.State.Quarantine != nil {
		return
	}
	var buf bytes.Buffer
	if err := state.Encode(&buf, res.State); err != nil {
		return
	}
	saction := b.stateAction(j.name, j.src)
	sblob := cas.EncodeBlob(cas.KindState, saction, j.name, buf.Bytes())
	skey := cas.Sum(sblob)
	if err := cc.store.Put(skey, sblob); err != nil {
		if !errors.Is(err, cas.ErrQuota) && !errors.Is(err, cas.ErrUnavailable) {
			cc.ioErrors.Inc()
		}
		b.warnf("cas: unit %s: publish state: %v (state not shared)", j.name, err)
		return
	}
	if err := cc.store.ActionPut(saction, skey); err != nil {
		if !errors.Is(err, cas.ErrUnavailable) {
			cc.ioErrors.Inc()
		}
		b.warnf("cas: unit %s: publish state action: %v (state not shared)", j.name, err)
	}
}
