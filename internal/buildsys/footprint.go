package buildsys

// Dependency-footprint tracing and the per-build cross-check — the
// always-correct mode (docs/ROBUSTNESS.md). With Options.Footprint on,
// every compile runs with a footprint.Trace attached: the unit's source
// and the pipeline configuration are recorded as invalidating entries,
// state-file I/O flows through the trace's recording FS wrapper as
// advisory entries, and the compiled object's unresolved relocations
// become link-scope entries. The finished record rides on the unit's
// persisted state (format v6) and is retained in memory.
//
// On the next build the partition loop derives the *true* invalidation
// verdict from the retained footprint and compares it with the declared
// content-hash decision:
//
//   - declared says cached, footprint says changed → missed invalidation
//     (footprint.missed, Report.FootprintMissed, a warning) — a build that
//     would have shipped a stale object;
//   - declared says recompile, footprint says unchanged → redundant
//     recompile (footprint.redundant, Report.FootprintRedundant) — wasted
//     work, not wrongness.
//
// EnforceFootprint turns the verdict into the decision: missed units are
// forced to recompile and redundant units are served from cache, so the
// build is correct even when the declared channel lies (the differential
// battery proves outputs stay byte-identical to stateless builds).

import (
	"statefulcc/internal/codegen"
	"statefulcc/internal/footprint"
)

// ContentHash is the declared content hash of a unit's source — the
// file-level identity the object cache is keyed by. Exported so offline
// consumers (`minibuild deps`) can recompute the honest declared hash.
func ContentHash(src []byte) uint64 { return contentHash(src) }

// footprintOn reports whether compiles trace footprints and the partition
// loop cross-checks them.
func (b *Builder) footprintOn() bool {
	return b.opts.Footprint || b.opts.EnforceFootprint
}

// declaredHash is the declared-channel content hash for a unit: the honest
// contentHash unless a ContentHashHook (a lying invalidator under test)
// overrides it.
func (b *Builder) declaredHash(unit string, src []byte) uint64 {
	h := contentHash(src)
	if b.opts.ContentHashHook != nil {
		h = b.opts.ContentHashHook(unit, src, h)
	}
	return h
}

// newTrace starts a unit's footprint trace with its invalidating entries
// pre-recorded. Returns nil when tracing is off.
func (b *Builder) newTrace(unit string, src []byte) *footprint.Trace {
	if !b.footprintOn() {
		return nil
	}
	tr := footprint.NewTrace(unit)
	tr.AddSource(unit, src)
	tr.AddPipeline(b.opts.Pipeline)
	return tr
}

// RecordObjectDeps adds the object's link-scope entries to the trace: each
// relocation whose symbol the unit does not define itself is a cross-unit
// read the linker will resolve. Call entries carry the call arity (the
// property the linker checks against the callee); global entries carry the
// symbol only. Exported so single-unit drivers (minicc -footprint) record
// the same link-scope entries the build system does.
func RecordObjectDeps(tr *footprint.Trace, obj *codegen.Object) {
	own := make(map[string]bool, len(obj.Funcs))
	for _, f := range obj.Funcs {
		own[f.Name] = true
	}
	for _, r := range obj.Relocs {
		if own[r.Symbol] {
			continue
		}
		arity := uint64(0)
		if r.Func >= 0 && r.Func < len(obj.Funcs) {
			code := obj.Funcs[r.Func].Code
			if r.Pc >= 0 && r.Pc < len(code) {
				arity = uint64(len(code[r.Pc].Args))
			}
		}
		tr.Add(footprint.KindCall, r.Symbol, arity)
	}
	ownGlobals := make(map[string]bool, len(obj.Globals))
	for _, g := range obj.Globals {
		ownGlobals[g.Name] = true
	}
	for _, r := range obj.GlobalRelocs {
		if !ownGlobals[r.Symbol] {
			tr.Add(footprint.KindGlobal, r.Symbol, 0)
		}
	}
}

// crossCheck compares one unit's declared cache decision against the
// verdict derived from its retained footprint, updating counters, the
// report, and — under EnforceFootprint — the decision itself. Returns the
// (possibly corrected) cached decision. Only units with both a cached
// object and a retained footprint are checkable; e may be nil.
func (b *Builder) crossCheck(rep *Report, e *unitEntry, name string, src []byte,
	pipeHash uint64, cached bool) bool {
	if e == nil || e.obj == nil || e.fp == nil {
		return cached
	}
	b.ctr.footprintChecked.Inc()
	changed := e.fp.Changed(src, pipeHash)
	switch {
	case cached && len(changed) > 0:
		b.ctr.footprintMissed.Inc()
		rep.FootprintMissed = append(rep.FootprintMissed, name)
		b.warnf("footprint: unit %s: missed invalidation: declared hash says cached but %s changed (stale object%s)",
			name, changed[0], enforceNote(b.opts.EnforceFootprint))
		if b.opts.EnforceFootprint {
			cached = false
		}
	case !cached && len(changed) == 0:
		b.ctr.footprintRedundant.Inc()
		rep.FootprintRedundant = append(rep.FootprintRedundant, name)
		if b.opts.EnforceFootprint {
			// The traced read set is byte-identical to the current inputs, so
			// the cached object is proven valid; serve it and adopt the new
			// declared hash so the declared channel re-converges.
			cached = true
		}
	}
	return cached
}

func enforceNote(enforced bool) string {
	if enforced {
		return "; recompiled by enforcement"
	}
	return " would have shipped"
}

// Footprints snapshots the footprints retained for the builder's units
// (the per-unit ground truth of the most recent compile of each). Units
// compiled before tracing was enabled, or never compiled by this builder,
// are absent.
func (b *Builder) Footprints() map[string]*footprint.Record {
	out := make(map[string]*footprint.Record, len(b.units))
	for name, e := range b.units {
		if e.fp != nil {
			out[name] = e.fp
		}
	}
	return out
}
