package buildsys_test

// Observability-layer invariants under the worker pool. These tests run in
// the -race CI gate (Makefile `race` target): builds execute with tracing
// enabled at several worker counts, and the registry totals must be
// identical regardless of scheduling — a counter update lost to a data
// race shows up here as a cross-schedule mismatch even when -race itself
// stays quiet.

import (
	"testing"

	"statefulcc/internal/buildsys"
	"statefulcc/internal/compiler"
	"statefulcc/internal/obs"
	"statefulcc/internal/project"
	"statefulcc/internal/workload"
)

// obsProfile is big enough that a 4-worker pool genuinely interleaves.
func obsProfile() workload.Profile {
	return workload.Profile{
		Name: "obs", Seed: 7331,
		Files: 12, FuncsPerFileMin: 3, FuncsPerFileMax: 6,
		StmtsPerFuncMin: 4, StmtsPerFuncMax: 8,
		GlobalsPerFile: 2, CrossFileCallFrac: 0.4, PrivateFrac: 0.3,
	}
}

// schedulingInvariant are the counters that must not depend on worker
// interleaving: pure counts, no *_ns timing values.
var schedulingInvariant = []string{
	obs.CtrPassRuns,
	obs.CtrPassDormant,
	obs.CtrPassSkipped,
	obs.CtrPassMispredicted,
	obs.CtrHashes,
	obs.CtrBuilds,
	obs.CtrUnitsCompiled,
	obs.CtrUnitsCached,
	obs.CtrStateLoads,
	obs.CtrStateLoadMisses,
	obs.CtrStateSaves,
	obs.CtrDecSkippedDormant,
	obs.CtrDecCold,
	obs.CtrDecNotDormant,
	obs.CtrDecFPMismatch,
	obs.CtrDecPolicy,
}

// runHistory builds base + commits with a traced stateful builder and
// returns the final counters registry snapshot and all spans.
func runHistory(t *testing.T, workers int, base project.Snapshot, commits []project.Snapshot) (map[string]int64, []obs.Span) {
	t.Helper()
	tr := obs.NewTracer()
	b, err := buildsys.NewBuilder(buildsys.Options{
		Mode:     compiler.ModeStateful,
		StateDir: t.TempDir(),
		Workers:  workers,
		Trace:    tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, snap := range append([]project.Snapshot{base}, commits...) {
		if _, err := b.Build(snap); err != nil {
			t.Fatalf("workers=%d build %d: %v", workers, i, err)
		}
	}
	return b.Metrics(), tr.Spans()
}

// TestObsCountersSchedulingInvariant: the same commit history produces the
// same count-type counters no matter how many workers raced over it.
func TestObsCountersSchedulingInvariant(t *testing.T) {
	base := workload.Generate(obsProfile())
	hist := workload.GenerateHistory(base, 99, 3, workload.DefaultCommitOptions())

	ref, _ := runHistory(t, 1, base, hist.Commits)
	for _, workers := range []int{2, 4} {
		got, _ := runHistory(t, workers, base, hist.Commits)
		for _, name := range schedulingInvariant {
			if got[name] != ref[name] {
				t.Errorf("workers=%d: counter %s = %d, want %d (workers=1)",
					workers, name, got[name], ref[name])
			}
		}
	}
	if ref[obs.CtrPassSkipped] == 0 {
		t.Error("history produced no skipped passes; invariance check is vacuous")
	}
}

// TestObsSpansAgreeWithRegistry: the per-span pass accounting must sum to
// exactly the registry totals — spans and counters are written on the same
// code path, so any divergence means an update was lost or double-counted.
func TestObsSpansAgreeWithRegistry(t *testing.T) {
	base := workload.Generate(obsProfile())
	hist := workload.GenerateHistory(base, 17, 2, workload.DefaultCommitOptions())
	metrics, spans := runHistory(t, 4, base, hist.Commits)

	var runs, skipped, dormant, hashes int64
	for _, s := range spans {
		if s.Cat != obs.CatPass {
			continue
		}
		runs += int64(s.Runs)
		skipped += int64(s.Skipped)
		dormant += int64(s.Dormant)
		hashes += int64(s.Hashes)
	}
	// pass.runs counts mispredicted re-runs too; spans record them in Runs
	// already, so the totals must line up exactly.
	if runs != metrics[obs.CtrPassRuns] {
		t.Errorf("span runs = %d, counter %s = %d", runs, obs.CtrPassRuns, metrics[obs.CtrPassRuns])
	}
	if skipped != metrics[obs.CtrPassSkipped] {
		t.Errorf("span skips = %d, counter %s = %d", skipped, obs.CtrPassSkipped, metrics[obs.CtrPassSkipped])
	}
	if dormant != metrics[obs.CtrPassDormant] {
		t.Errorf("span dormant = %d, counter %s = %d", dormant, obs.CtrPassDormant, metrics[obs.CtrPassDormant])
	}
	if hashes != metrics[obs.CtrHashes] {
		t.Errorf("span hashes = %d, counter %s = %d", hashes, obs.CtrHashes, metrics[obs.CtrHashes])
	}
}

// TestObsSpanCoverage: structural trace invariants plus the acceptance
// criterion that per-pass spans account for the bulk of the passes stage.
func TestObsSpanCoverage(t *testing.T) {
	base := workload.Generate(obsProfile())
	tr := obs.NewTracer()
	b, err := buildsys.NewBuilder(buildsys.Options{Mode: compiler.ModeStateful, Workers: 2, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := b.Build(base)
	if err != nil {
		t.Fatal(err)
	}

	var buildSpan *obs.Span
	var passSum, stageSum int64
	unitSpans, stageSpans := 0, map[string]int{}
	spans := tr.Spans()
	for i := range spans {
		s := &spans[i]
		if s.Dur < 0 {
			t.Errorf("span %s has negative duration %d", s.Name, s.Dur)
		}
		switch s.Cat {
		case obs.CatBuild:
			buildSpan = s
		case obs.CatUnit:
			unitSpans++
		case obs.CatStage:
			stageSpans[s.Name]++
			if s.Name == compiler.StagePasses {
				stageSum += s.Dur
			}
		case obs.CatPass:
			passSum += s.Dur
			if s.TID < 1 || s.TID > b.Workers() {
				t.Errorf("pass span %s on thread %d, want 1..%d", s.Name, s.TID, b.Workers())
			}
		}
	}
	if buildSpan == nil {
		t.Fatal("no build span emitted")
	}
	if unitSpans != rep.UnitsCompiled {
		t.Errorf("unit spans = %d, want %d", unitSpans, rep.UnitsCompiled)
	}
	for _, stage := range []string{compiler.StageFrontend, compiler.StagePasses, compiler.StageCodegen} {
		if stageSpans[stage] != rep.UnitsCompiled {
			t.Errorf("stage %s spans = %d, want %d", stage, stageSpans[stage], rep.UnitsCompiled)
		}
	}
	// Pass spans nest inside the passes stage, so their sum can never
	// exceed it; and per-slot bookkeeping overhead is small, so they must
	// account for at least half of it (in practice >90%).
	if passSum > stageSum {
		t.Errorf("pass spans (%d ns) exceed passes stage (%d ns)", passSum, stageSum)
	}
	if passSum*2 < stageSum {
		t.Errorf("pass spans (%d ns) cover under half the passes stage (%d ns)", passSum, stageSum)
	}
}

// TestObsSkipRatePersistedState: a fresh traced builder on a warmed
// StateDir must report a positive skip rate through the metrics snapshot —
// the CLI's "second build" acceptance criterion at the library level.
func TestObsSkipRatePersistedState(t *testing.T) {
	dir := t.TempDir()
	base := workload.Generate(obsProfile())
	b1, err := buildsys.NewBuilder(buildsys.Options{Mode: compiler.ModeStateful, StateDir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b1.Build(base); err != nil {
		t.Fatal(err)
	}
	if obs.SkipRate(b1.Metrics()) != 0 {
		t.Error("cold build reported a nonzero skip rate")
	}

	b2, err := buildsys.NewBuilder(buildsys.Options{Mode: compiler.ModeStateful, StateDir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := b2.Build(base)
	if err != nil {
		t.Fatal(err)
	}
	m := b2.Metrics()
	if m[obs.CtrPassSkipped] == 0 || obs.SkipRate(m) <= 0 {
		t.Errorf("warm rebuild skipped nothing: %s=%d", obs.CtrPassSkipped, m[obs.CtrPassSkipped])
	}
	if m[obs.CtrStateLoads] != int64(rep.UnitsCompiled) {
		t.Errorf("%s = %d, want %d", obs.CtrStateLoads, m[obs.CtrStateLoads], rep.UnitsCompiled)
	}
	if rep.Metrics[obs.CtrPassSkipped] != m[obs.CtrPassSkipped] {
		t.Error("report metrics snapshot disagrees with builder registry")
	}
	if u := rep.Utilization(); u < 0 || u > 1 {
		t.Errorf("utilization %v out of [0,1]", u)
	}
}
