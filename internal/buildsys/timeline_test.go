package buildsys_test

// Scheduling-timeline invariants (docs/OBSERVABILITY.md): every build's
// recorded timeline must validate, cover exactly the snapshot's units, and
// support a critical-path analysis whose total is sandwiched between the
// longest single unit and the measured wall time — at 1, 4, and 16 workers,
// under the race detector (the events slice is written concurrently by the
// pool).

import (
	"fmt"
	"testing"

	"statefulcc/internal/buildsys"
	"statefulcc/internal/compiler"
	"statefulcc/internal/obs"
)

func TestTimelineInvariants(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			seq := history(t, 7, 4)
			b, err := buildsys.NewBuilder(buildsys.Options{Mode: compiler.ModeStateful, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			for i, snap := range seq {
				rep, err := b.Build(snap)
				if err != nil {
					t.Fatalf("build %d: %v", i, err)
				}
				tl := rep.Timeline
				if tl == nil {
					t.Fatalf("build %d: no timeline recorded", i)
				}
				if err := tl.Validate(); err != nil {
					t.Fatalf("build %d: %v", i, err)
				}
				if tl.Workers != workers {
					t.Errorf("build %d: timeline workers = %d, want %d", i, tl.Workers, workers)
				}

				// One event per unit in the snapshot, partitioned exactly as
				// the report says.
				if len(tl.Events) != len(snap) {
					t.Errorf("build %d: %d events, want %d (one per unit)", i, len(tl.Events), len(snap))
				}
				if got := tl.Compiled(); got != rep.UnitsCompiled {
					t.Errorf("build %d: %d scheduled events, report compiled %d", i, got, rep.UnitsCompiled)
				}
				if skips := len(tl.Events) - tl.Compiled(); skips != rep.UnitsCached {
					t.Errorf("build %d: %d skip events, report cached %d", i, skips, rep.UnitsCached)
				}

				// Critical path total: at least the longest single unit, at
				// most the compile phase wall, which is at most the build wall.
				cp := obs.Analyze(tl)
				if cp.TotalNS > tl.CompileWallNS {
					t.Errorf("build %d: critical total %dns exceeds compile wall %dns", i, cp.TotalNS, tl.CompileWallNS)
				}
				if tl.CompileWallNS > tl.WallNS {
					t.Errorf("build %d: compile wall %dns exceeds build wall %dns", i, tl.CompileWallNS, tl.WallNS)
				}
				if cp.PathNS > cp.TotalNS {
					t.Errorf("build %d: chain compile %dns exceeds chain extent %dns", i, cp.PathNS, cp.TotalNS)
				}
				if rep.UnitsCompiled > 0 {
					if len(cp.Chain) == 0 {
						t.Errorf("build %d: compiled %d units but chain is empty", i, rep.UnitsCompiled)
					}
					if cp.LongestUnitNS <= 0 || cp.TotalNS < cp.LongestUnitNS {
						t.Errorf("build %d: critical total %dns below longest unit %dns",
							i, cp.TotalNS, cp.LongestUnitNS)
					}
				} else if len(cp.Chain) != 0 {
					t.Errorf("build %d: nothing compiled but chain has %d links", i, len(cp.Chain))
				}
			}
		})
	}
}

// TestTimelineDeterministicChain pins the analysis, not the scheduler: two
// fresh single-worker builders over the same snapshot must produce the same
// critical-path unit sequence, because a serial schedule is deterministic
// and Analyze breaks every tie on unit name.
func TestTimelineDeterministicChain(t *testing.T) {
	seq := history(t, 11, 0)
	chains := make([][]string, 2)
	for r := range chains {
		b, err := buildsys.NewBuilder(buildsys.Options{Mode: compiler.ModeStateful, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := b.Build(seq[0])
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range obs.Analyze(rep.Timeline).Chain {
			chains[r] = append(chains[r], l.Unit)
		}
	}
	if len(chains[0]) == 0 {
		t.Fatal("empty critical chain on a cold build")
	}
	if fmt.Sprint(chains[0]) != fmt.Sprint(chains[1]) {
		t.Errorf("serial schedules produced different chains:\n%v\n%v", chains[0], chains[1])
	}
}

// TestTimelineIncrementalSkips checks the skip events: an unchanged rebuild
// schedules nothing and records every unit as an unscheduled cache skip.
func TestTimelineIncrementalSkips(t *testing.T) {
	seq := history(t, 5, 0)
	b, err := buildsys.NewBuilder(buildsys.Options{Mode: compiler.ModeStateful, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(seq[0]); err != nil {
		t.Fatal(err)
	}
	rep, err := b.Build(seq[0])
	if err != nil {
		t.Fatal(err)
	}
	tl := rep.Timeline
	if err := tl.Validate(); err != nil {
		t.Fatal(err)
	}
	if rep.UnitsCompiled != 0 || tl.Compiled() != 0 {
		t.Fatalf("unchanged rebuild compiled %d units (%d scheduled events)", rep.UnitsCompiled, tl.Compiled())
	}
	if len(tl.Events) != len(seq[0]) || len(tl.Events) != rep.UnitsCached {
		t.Errorf("%d skip events, want %d (= %d cached)", len(tl.Events), len(seq[0]), rep.UnitsCached)
	}
	for i := range tl.Events {
		if e := &tl.Events[i]; e.Outcome != obs.OutcomeSkip || e.Scheduled() {
			t.Errorf("%s: outcome %q on worker %d, want unscheduled skip", e.Unit, e.Outcome, e.Worker)
		}
	}
	if cp := obs.Analyze(tl); len(cp.Chain) != 0 {
		t.Errorf("fully cached build produced a %d-link chain", len(cp.Chain))
	}
}
