package buildsys

// The parallel compile phase. Each worker slot owns one compiler (they are
// not safe for concurrent use), and changed units are dispatched across
// the slots:
//
//   - record-keeping modes pull from a shared queue (work stealing), which
//     balances cold builds well — dormancy state is per unit and travels
//     with the job, so it does not matter which worker compiles a unit;
//
//   - fullcache mode shards units to workers by unit-name hash, so a unit
//     recompiles on the worker whose in-memory function cache saw it last
//     and cross-build cache hits survive parallelism.
//
// Outcomes land in a results slice indexed by job order; nothing about the
// build's observable behaviour depends on scheduling. On error the pool
// stops issuing new jobs, drains, and reports the failure of the
// lowest-indexed unit so error messages are deterministic too.
//
// Adversity handling (docs/ROBUSTNESS.md):
//
//   - a pass panic is confined to its unit by a recover() boundary: the
//     unit's state is quarantined and the unit retried once on a stateless
//     fallback compiler, so one berserk pass never kills the build or the
//     serve daemon;
//
//   - context cancellation stops the pool cooperatively: in-flight units
//     abort between pass slots and their state is not persisted, queued
//     units never start, and completed units keep their fully-written
//     state files.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"statefulcc/internal/codegen"
	"statefulcc/internal/compiler"
	"statefulcc/internal/core"
	"statefulcc/internal/footprint"
	"statefulcc/internal/obs"
	"statefulcc/internal/project"
	"statefulcc/internal/vfs"
)

// outcome is one unit's compile result.
type outcome struct {
	res *compiler.UnitResult
	err error
	// panicked means the unit's normal compile panicked and res (if set)
	// came from the stateless fallback.
	panicked bool
	// qstate, when set, is the quarantine-marker state to retain for the
	// unit in place of res.State (whole-unit quarantines compile stateless,
	// so res.State is nil).
	qstate *core.UnitState
	// qclear means the unit's quarantine lifted and it restarts cold.
	qclear bool
	// fp is the unit's traced read footprint (footprint mode only): the
	// ground truth the next build's cross-check runs against.
	fp *footprint.Record
	// remote means the unit was served from the shared cache (res is nil;
	// casObj — and possibly casState — carry the verified fetch instead).
	remote   bool
	casObj   *codegen.Object
	casState *core.UnitState
}

// compileJob carries everything a worker needs, precomputed so workers
// never touch the builder's maps concurrently.
type compileJob struct {
	name string
	src  []byte
	// prev is the unit's in-memory dormancy state, if any.
	prev *core.UnitState
	// probeDisk asks the worker to try loading state from StateDir first
	// (first compile of this unit in this process).
	probeDisk bool
	// enqueueNS is when the job became ready for a worker, on the build's
	// timeline clock. File-level units have no inter-unit dependencies, so
	// every job is ready the moment the pool starts; dependency-ordered
	// scheduling (ROADMAP) will stagger these.
	enqueueNS int64
}

// runCompiles compiles work (in unit-name order) and returns per-job
// outcomes and scheduling events aligned with it. Compile failures return
// an error; cancellation does not — it leaves nil-result holes (and
// zero-unit event holes) for the caller to detect.
func (b *Builder) runCompiles(ctx context.Context, snap project.Snapshot, work []string) ([]outcome, []obs.UnitEvent, error) {
	enq := b.tlNow()
	jobs := make([]compileJob, len(work))
	for i, name := range work {
		j := compileJob{name: name, src: snap[name], enqueueNS: enq}
		if e, ok := b.units[name]; ok {
			j.prev = e.state
			j.probeDisk = !e.diskProbed && e.state == nil
		} else {
			j.probeDisk = true
		}
		jobs[i] = j
	}

	results := make([]outcome, len(jobs))
	events := make([]obs.UnitEvent, len(jobs))
	nworkers := len(b.workers)
	if nworkers > len(jobs) {
		nworkers = len(jobs)
	}
	if nworkers == 0 {
		return results, events, nil
	}

	if b.opts.Mode == compiler.ModeFullCache {
		b.runSharded(ctx, jobs, results, events, nworkers)
	} else {
		b.runStealing(ctx, jobs, results, events, nworkers)
	}

	for i := range results {
		err := results[i].err
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// Cancellation is the caller's ctx speaking, not a unit failing;
			// report it as a hole, not an error.
			results[i] = outcome{}
			events[i] = obs.UnitEvent{}
			continue
		}
		return nil, nil, fmt.Errorf("buildsys: %w", err)
	}
	return results, events, nil
}

// runJob runs job i on worker w and records its scheduling event. Each
// slot in results/events is written by exactly one worker, so no
// synchronization is needed (same contract as b.busy).
func (b *Builder) runJob(ctx context.Context, w, i int, jobs []compileJob, results []outcome, events []obs.UnitEvent) {
	startNS := b.tlNow()
	results[i] = b.compileOne(ctx, w, jobs[i])
	events[i] = b.unitEvent(w, jobs[i], results[i], startNS, b.tlNow())
}

// unitEvent classifies one job's outcome into its timeline event.
func (b *Builder) unitEvent(w int, j compileJob, out outcome, startNS, endNS int64) obs.UnitEvent {
	ev := obs.UnitEvent{
		Unit: j.name, Worker: w, Outcome: obs.OutcomeCompile,
		EnqueueNS: j.enqueueNS, StartNS: startNS, EndNS: endNS,
	}
	switch {
	case out.err != nil:
		ev.Outcome = obs.OutcomeError
	case out.remote:
		ev.Outcome = obs.OutcomeRemote
	case out.panicked:
		ev.Outcome = obs.OutcomePanic
	case out.qstate != nil || out.qclear:
		ev.Outcome = obs.OutcomeQuarantine
	}
	if out.res != nil {
		ev.FrontendNS = out.res.StageNS(compiler.StageFrontend)
		ev.PassesNS = out.res.StageNS(compiler.StagePasses)
		ev.CodegenNS = out.res.StageNS(compiler.StageCodegen)
	}
	return ev
}

// runStealing drains jobs through a shared atomic cursor.
func (b *Builder) runStealing(ctx context.Context, jobs []compileJob, results []outcome, events []obs.UnitEvent, nworkers int) {
	var next int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < nworkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1) - 1)
				if i >= len(jobs) || failed.Load() || ctx.Err() != nil {
					return
				}
				b.runJob(ctx, w, i, jobs, results, events)
				if results[i].err != nil {
					failed.Store(true)
				}
			}
		}(w)
	}
	wg.Wait()
}

// runSharded assigns each job to a fixed worker by unit-name hash.
func (b *Builder) runSharded(ctx context.Context, jobs []compileJob, results []outcome, events []obs.UnitEvent, nworkers int) {
	shards := make([][]int, nworkers)
	for i, j := range jobs {
		// Shard on the full worker set, not nworkers: the unit→worker
		// mapping must not depend on how many units this build touches.
		s := int(contentHash([]byte(j.name)) % uint64(len(b.workers)))
		if s >= nworkers {
			// Fewer active workers than slots this build; fold in.
			s %= nworkers
		}
		shards[s] = append(shards[s], i)
	}
	// No early abort here: a shard must finish its whole list, or a
	// later-indexed failure in one shard could mask an earlier-indexed one
	// in another and make the reported error scheduling-dependent.
	// Cancellation still stops each shard (compileOne's entry check makes
	// the remaining jobs cheap holes).
	var wg sync.WaitGroup
	for w := 0; w < nworkers; w++ {
		wg.Add(1)
		go func(w int, idxs []int) {
			defer wg.Done()
			for _, i := range idxs {
				if ctx.Err() != nil {
					return
				}
				b.runJob(ctx, w, i, jobs, results, events)
			}
		}(w, shards[w])
	}
	wg.Wait()
}

// safeCompile runs one compile under a recover() boundary. A pass panic —
// a bug in the pass, not in the unit's source — must not take down the
// build or the serve daemon; it surfaces as (panicked, msg) for the caller
// to isolate.
func safeCompile(ctx context.Context, c *compiler.Compiler, name string, src []byte, st *core.UnitState) (res *compiler.UnitResult, err error, panicked bool, msg string) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, nil
			panicked = true
			msg = fmt.Sprint(r)
		}
	}()
	res, err = c.CompileUnitContext(ctx, name, src, st)
	return
}

// compileOne runs one unit through worker w's compiler, loading and saving
// persistent dormancy state around it when a state directory is set. Busy
// time (including state I/O) accrues to the worker's slot in b.busy —
// written only by this worker, so no synchronization is needed; the shared
// counters it touches are atomic. The unit's state pointer (shared with
// b.units) is only ever touched by the one worker compiling the unit.
func (b *Builder) compileOne(ctx context.Context, w int, j compileJob) outcome {
	c := b.workers[w]
	busyStart := time.Now()
	defer func() {
		b.busy[w] += time.Since(busyStart).Nanoseconds()
	}()
	if cerr := ctx.Err(); cerr != nil {
		return outcome{err: fmt.Errorf("%s: build cancelled: %w", j.name, cerr)}
	}

	// Footprint mode attaches a per-unit trace: invalidating entries are
	// pre-recorded, and the unit's state I/O goes through the trace's
	// recording FS so it lands as advisory entries. The trace is private to
	// this job — concurrent units never share one, so shared reads are
	// counted once per reading unit, not globally.
	tr := b.newTrace(j.name, j.src)
	fsys := b.fs
	if tr != nil {
		fsys = tr.FS(b.fs)
	}

	prev := j.prev
	if prev == nil && j.probeDisk {
		prev = b.loadUnitState(fsys, j.name)
	}

	// A whole-unit quarantine (a pass panicked on this unit) compiles
	// through the stateless fallback until enough clean builds lift it.
	if b.statefulMode() && prev != nil && prev.Quarantine.Whole() {
		return b.compileQuarantined(ctx, w, fsys, tr, j, prev)
	}

	// Shared cache: try a verified remote fetch before compiling; a miss
	// may return a coalescing lease this worker must publish or abandon.
	var lease *heldLease
	if b.cas != nil {
		remote, held := b.casFetch(ctx, fsys, j)
		if remote != nil {
			return *remote
		}
		lease = held
	}

	res, err, panicked, msg := safeCompile(ctx, c, j.name, j.src, prev)
	if panicked {
		lease.abandon()
		return b.compileAfterPanic(ctx, w, fsys, tr, j, msg)
	}
	if err != nil {
		lease.abandon()
		return outcome{err: err}
	}
	fp := b.finishTrace(tr, j, res)
	if res.State != nil {
		b.settleQuarantine(res)
		res.State.Footprint = fp
		b.saveUnitState(fsys, j.name, res.State)
	}
	if b.cas != nil {
		b.casPublish(j, res, lease)
	}
	return outcome{res: res, fp: fp}
}

// finishTrace folds the compiled object's link-scope dependencies into the
// trace and snapshots the canonical footprint, stamped with the declared
// hash the cache decision used. Nil-safe (returns nil when tracing is off
// or the compile produced nothing).
func (b *Builder) finishTrace(tr *footprint.Trace, j compileJob, res *compiler.UnitResult) *footprint.Record {
	if tr == nil || res == nil {
		return nil
	}
	if res.Object != nil {
		RecordObjectDeps(tr, res.Object)
	}
	return tr.Finish(b.declaredHash(j.name, j.src))
}

// compileQuarantined compiles a whole-unit-quarantined unit on the
// stateless fallback and advances (or resets) the quarantine's clean-build
// count. At core.QuarantineCleanTarget the quarantine lifts and the unit
// restarts cold — the pre-panic records were discarded at engagement, so
// trust rebuilds from fresh observations.
func (b *Builder) compileQuarantined(ctx context.Context, w int, fsys vfs.FS, tr *footprint.Trace, j compileJob, marker *core.UnitState) outcome {
	fc, ferr := b.fallback(w)
	if ferr != nil {
		return outcome{err: ferr}
	}
	res, err, panicked, msg := safeCompile(ctx, fc, j.name, j.src, nil)
	if panicked {
		// Still panicking even stateless: the unit cannot compile at all.
		// That is a unit diagnostic (like a compile error), and the probation
		// window restarts.
		b.ctr.panics.Inc()
		marker.Quarantine.Clean = 0
		b.saveUnitState(fsys, j.name, marker)
		return outcome{
			err:      fmt.Errorf("%s: pass panicked (unit quarantined, stateless retry): %s", j.name, msg),
			panicked: true,
		}
	}
	if err != nil {
		return outcome{err: err}
	}
	fp := b.finishTrace(tr, j, res)
	q := marker.Quarantine
	q.Clean++
	if q.Clean >= core.QuarantineCleanTarget {
		b.ctr.quarantineLifted.Inc()
		b.removeUnitState(j.name)
		return outcome{res: res, qclear: true, fp: fp}
	}
	marker.Footprint = fp
	b.saveUnitState(fsys, j.name, marker)
	return outcome{res: res, qstate: marker, fp: fp}
}

// compileAfterPanic isolates a pass panic: count it, quarantine the unit's
// state (its records may have been half-updated by the panicking pass),
// and retry once on the stateless fallback so the unit — whose source is
// not at fault — still compiles.
func (b *Builder) compileAfterPanic(ctx context.Context, w int, fsys vfs.FS, tr *footprint.Trace, j compileJob, msg string) outcome {
	b.ctr.panics.Inc()
	b.warnf("panic: unit %s: pass panicked: %s (unit quarantined, compiled stateless)", j.name, msg)

	var marker *core.UnitState
	if b.statefulMode() {
		marker = core.NewUnitState(j.name, b.opts.Pipeline)
		marker.Quarantine = &core.Quarantine{Reason: core.QuarantinePanic}
		b.ctr.quarantineEngaged.Inc()
		b.saveUnitState(fsys, j.name, marker)
	}

	fc, ferr := b.fallback(w)
	if ferr != nil {
		return outcome{err: ferr}
	}
	res, err, panicked2, msg2 := safeCompile(ctx, fc, j.name, j.src, nil)
	if panicked2 {
		b.ctr.panics.Inc()
		return outcome{
			err:      fmt.Errorf("%s: pass panicked (persisted through stateless retry): %s", j.name, msg2),
			panicked: true,
			qstate:   marker,
		}
	}
	if err != nil {
		return outcome{err: err}
	}
	return outcome{res: res, panicked: true, qstate: marker, fp: b.finishTrace(tr, j, res)}
}

// settleQuarantine advances a compiled unit's per-pass quarantine: a build
// with fresh unsound-skip evidence (the driver already engaged/extended
// the quarantine and reset its clean count) counts an engagement; a clean
// build bumps the clean count and lifts the quarantine at target. Per-pass
// quarantined passes kept running (and re-recording) while quarantined, so
// a lift resumes skipping on warm records.
func (b *Builder) settleQuarantine(res *compiler.UnitResult) {
	st := res.State
	if st == nil || st.Quarantine == nil {
		return
	}
	if res.Stats != nil {
		if _, unsound := res.Stats.SentinelTotals(); unsound > 0 {
			b.ctr.quarantineEngaged.Inc()
			return
		}
	}
	st.Quarantine.Clean++
	if st.Quarantine.Clean >= core.QuarantineCleanTarget {
		st.Quarantine = nil
		b.ctr.quarantineLifted.Inc()
	}
}
