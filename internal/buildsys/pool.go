package buildsys

// The parallel compile phase. Each worker slot owns one compiler (they are
// not safe for concurrent use), and changed units are dispatched across
// the slots:
//
//   - record-keeping modes pull from a shared queue (work stealing), which
//     balances cold builds well — dormancy state is per unit and travels
//     with the job, so it does not matter which worker compiles a unit;
//
//   - fullcache mode shards units to workers by unit-name hash, so a unit
//     recompiles on the worker whose in-memory function cache saw it last
//     and cross-build cache hits survive parallelism.
//
// Outcomes land in a results slice indexed by job order; nothing about the
// build's observable behaviour depends on scheduling. On error the pool
// stops issuing new jobs, drains, and reports the failure of the
// lowest-indexed unit so error messages are deterministic too.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"statefulcc/internal/compiler"
	"statefulcc/internal/core"
	"statefulcc/internal/project"
)

// outcome is one unit's compile result.
type outcome struct {
	res *compiler.UnitResult
	err error
}

// compileJob carries everything a worker needs, precomputed so workers
// never touch the builder's maps concurrently.
type compileJob struct {
	name string
	src  []byte
	// prev is the unit's in-memory dormancy state, if any.
	prev *core.UnitState
	// probeDisk asks the worker to try loading state from StateDir first
	// (first compile of this unit in this process).
	probeDisk bool
}

// runCompiles compiles work (in unit-name order) and returns per-job
// outcomes aligned with it.
func (b *Builder) runCompiles(snap project.Snapshot, work []string) ([]outcome, error) {
	jobs := make([]compileJob, len(work))
	for i, name := range work {
		j := compileJob{name: name, src: snap[name]}
		if e, ok := b.units[name]; ok {
			j.prev = e.state
			j.probeDisk = !e.diskProbed && e.state == nil
		} else {
			j.probeDisk = true
		}
		jobs[i] = j
	}

	results := make([]outcome, len(jobs))
	nworkers := len(b.workers)
	if nworkers > len(jobs) {
		nworkers = len(jobs)
	}
	if nworkers == 0 {
		return results, nil
	}

	if b.opts.Mode == compiler.ModeFullCache {
		b.runSharded(jobs, results, nworkers)
	} else {
		b.runStealing(jobs, results, nworkers)
	}

	for i := range results {
		if results[i].err != nil {
			return nil, fmt.Errorf("buildsys: %w", results[i].err)
		}
	}
	return results, nil
}

// runStealing drains jobs through a shared atomic cursor.
func (b *Builder) runStealing(jobs []compileJob, results []outcome, nworkers int) {
	var next int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < nworkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1) - 1)
				if i >= len(jobs) || failed.Load() {
					return
				}
				results[i] = b.compileOne(w, jobs[i])
				if results[i].err != nil {
					failed.Store(true)
				}
			}
		}(w)
	}
	wg.Wait()
}

// runSharded assigns each job to a fixed worker by unit-name hash.
func (b *Builder) runSharded(jobs []compileJob, results []outcome, nworkers int) {
	shards := make([][]int, nworkers)
	for i, j := range jobs {
		// Shard on the full worker set, not nworkers: the unit→worker
		// mapping must not depend on how many units this build touches.
		s := int(contentHash([]byte(j.name)) % uint64(len(b.workers)))
		if s >= nworkers {
			// Fewer active workers than slots this build; fold in.
			s %= nworkers
		}
		shards[s] = append(shards[s], i)
	}
	// No early abort here: a shard must finish its whole list, or a
	// later-indexed failure in one shard could mask an earlier-indexed one
	// in another and make the reported error scheduling-dependent.
	var wg sync.WaitGroup
	for w := 0; w < nworkers; w++ {
		wg.Add(1)
		go func(w int, idxs []int) {
			defer wg.Done()
			for _, i := range idxs {
				results[i] = b.compileOne(w, jobs[i])
			}
		}(w, shards[w])
	}
	wg.Wait()
}

// compileOne runs one unit through worker w's compiler, loading and saving
// persistent dormancy state around it when a state directory is set. Busy
// time (including state I/O) accrues to the worker's slot in b.busy —
// written only by this worker, so no synchronization is needed; the shared
// counters it touches are atomic.
func (b *Builder) compileOne(w int, j compileJob) outcome {
	c := b.workers[w]
	busyStart := time.Now()
	defer func() {
		b.busy[w] += time.Since(busyStart).Nanoseconds()
	}()

	prev := j.prev
	if prev == nil && j.probeDisk {
		prev = b.loadUnitState(j.name)
	}
	res, err := c.CompileUnit(j.name, j.src, prev)
	if err != nil {
		return outcome{err: err}
	}
	if res.State != nil {
		b.saveUnitState(j.name, res.State)
	}
	return outcome{res: res}
}
