// Package buildsys is the content-hash incremental build system layered
// under the stateful compiler — the "internal build system" the paper's
// end-to-end numbers are measured through. A Builder retains state across
// Build calls:
//
//   - a per-unit object cache keyed by a content hash of the source, so
//     unchanged units are never recompiled (the make/ninja file-level
//     skipping the paper's dilution structure depends on);
//
//   - per-unit dormancy state for the stateful/predictive policies, fed
//     back into the compiler when a changed unit *is* recompiled, and
//     optionally persisted to a state directory so the next process still
//     skips dormant passes; and
//
//   - one compiler per worker slot, so changed units compile concurrently
//     on a bounded pool (compilers are not safe for concurrent use).
//
// Correctness contract: a parallel stateful build produces byte-identical
// linked programs to a serial stateless build of the same snapshot. Unit
// compilation is deterministic and independent, and the linker orders
// objects by unit name, so neither worker scheduling nor the skipping
// policy can leak into the output.
package buildsys

import (
	"fmt"
	"runtime"
	"time"

	"statefulcc/internal/codegen"
	"statefulcc/internal/compiler"
	"statefulcc/internal/core"
	"statefulcc/internal/fingerprint"
	"statefulcc/internal/passes"
	"statefulcc/internal/project"
	"statefulcc/internal/state"
)

// Options configures a Builder.
type Options struct {
	// Mode is the compilation policy for every unit.
	Mode compiler.Mode
	// Workers bounds concurrent unit compilations; values < 1 normalize to
	// GOMAXPROCS.
	Workers int
	// StateDir, when set, persists per-unit dormancy state across
	// processes (stateful/predictive modes). Missing or corrupt state
	// files are treated as a cold start, never an error.
	StateDir string
	// VerifyIR forwards to the compiler (slow; tests only).
	VerifyIR bool
	// Pipeline overrides the pass list (default passes.StandardPipeline).
	Pipeline []string
}

// UnitReport describes one unit within a build.
type UnitReport struct {
	// Compiled is false when the unit came from the object cache.
	Compiled bool
	// CompileNS is the unit's own compile wall time (0 when cached).
	CompileNS int64
}

// Report summarizes one Build call.
type Report struct {
	// TotalNS is the end-to-end build wall time.
	TotalNS int64
	// CompileNS is the wall time of the (parallel) compile phase.
	CompileNS int64
	// LinkNS is the link wall time.
	LinkNS int64
	// UnitsCompiled / UnitsCached partition the snapshot's units.
	UnitsCompiled, UnitsCached int
	// StateBytes is the persistent-state footprint after this build
	// (serialized dormancy state, or the full cache's memory footprint).
	StateBytes int
	// Units maps every unit in the snapshot to its outcome.
	Units map[string]UnitReport
	// Program is the linked executable.
	Program *codegen.Program

	stats *core.Stats
}

// Stats returns the pass-manager statistics merged across the units
// compiled by this build (empty — never nil — when everything was cached
// or the mode records none).
func (r *Report) Stats() *core.Stats { return r.stats }

// unitEntry is the retained per-unit build state.
type unitEntry struct {
	hash       uint64          // content hash of the compiled source
	obj        *codegen.Object // cached object
	state      *core.UnitState // dormancy records (stateful/predictive)
	stateBytes int             // serialized size of state
	diskProbed bool            // StateDir was already consulted for this unit
}

// Builder runs incremental builds, retaining object and compiler state
// between Build calls. It is not safe for concurrent use; one Build runs
// at a time (its internal workers provide the parallelism).
type Builder struct {
	opts    Options
	workers []*compiler.Compiler // one per worker slot, reused across builds
	units   map[string]*unitEntry
}

// NewBuilder creates an incremental builder.
func NewBuilder(opts Options) (*Builder, error) {
	if opts.Workers < 1 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if len(opts.Pipeline) == 0 {
		opts.Pipeline = passes.StandardPipeline
	}
	opts.Pipeline = append([]string(nil), opts.Pipeline...)

	b := &Builder{opts: opts, units: make(map[string]*unitEntry)}
	for i := 0; i < opts.Workers; i++ {
		c, err := compiler.New(compiler.Options{
			Pipeline: opts.Pipeline,
			Mode:     opts.Mode,
			VerifyIR: opts.VerifyIR,
		})
		if err != nil {
			return nil, fmt.Errorf("buildsys: %w", err)
		}
		b.workers = append(b.workers, c)
	}
	return b, nil
}

// Workers returns the normalized worker count.
func (b *Builder) Workers() int { return b.opts.Workers }

// Mode returns the builder's compilation policy.
func (b *Builder) Mode() compiler.Mode { return b.opts.Mode }

// Build compiles the snapshot incrementally: unchanged units come from the
// object cache, changed units compile concurrently, and the result links
// deterministically (unit-name order, independent of scheduling).
func (b *Builder) Build(snap project.Snapshot) (*Report, error) {
	start := time.Now()
	if len(snap) == 0 {
		return nil, fmt.Errorf("buildsys: empty snapshot (no units to build)")
	}

	// Drop units removed from the project, including their on-disk state.
	for name := range b.units {
		if _, ok := snap[name]; !ok {
			delete(b.units, name)
			b.removeUnitState(name)
		}
	}

	rep := &Report{
		Units: make(map[string]UnitReport, len(snap)),
		stats: &core.Stats{},
	}

	// Partition: content-hash every unit, collect the ones needing work.
	units := snap.Units()
	var work []string
	for _, name := range units {
		h := contentHash(snap[name])
		if e, ok := b.units[name]; ok && e.hash == h && e.obj != nil {
			rep.Units[name] = UnitReport{}
			rep.UnitsCached++
			continue
		}
		work = append(work, name)
	}

	// Compile changed units on the worker pool.
	compileStart := time.Now()
	outcomes, err := b.runCompiles(snap, work)
	if err != nil {
		return nil, err
	}
	rep.CompileNS = time.Since(compileStart).Nanoseconds()

	// Commit outcomes in unit order so report stats, cache contents, and
	// state sizes never depend on worker scheduling.
	for i, name := range work {
		out := outcomes[i]
		e, ok := b.units[name]
		if !ok {
			e = &unitEntry{}
			b.units[name] = e
		}
		e.hash = contentHash(snap[name])
		e.obj = out.res.Object
		e.diskProbed = true // fresh state below supersedes anything on disk
		if st := out.res.State; st != nil {
			e.state = st
			if n, err := state.FileSize(st); err == nil {
				e.stateBytes = n
			}
		}
		if out.res.Stats != nil {
			rep.stats.Merge(out.res.Stats)
		}
		rep.Units[name] = UnitReport{Compiled: true, CompileNS: out.res.Timings.TotalNS}
		rep.UnitsCompiled++
	}

	// Link everything, cached and fresh, in deterministic order.
	linkStart := time.Now()
	objs := make([]*codegen.Object, 0, len(units))
	for _, name := range units {
		objs = append(objs, b.units[name].obj)
	}
	prog, err := codegen.Link(objs)
	if err != nil {
		return nil, fmt.Errorf("buildsys: %w", err)
	}
	rep.LinkNS = time.Since(linkStart).Nanoseconds()
	rep.Program = prog

	rep.StateBytes = b.stateBytes()
	rep.TotalNS = time.Since(start).Nanoseconds()
	return rep, nil
}

// stateBytes reports the retained persistent-state footprint: serialized
// dormancy state for the record-keeping modes, the in-memory cache size
// for fullcache.
func (b *Builder) stateBytes() int {
	n := 0
	if b.opts.Mode == compiler.ModeFullCache {
		for _, c := range b.workers {
			n += c.FullCacheStateBytes()
		}
		return n
	}
	for _, e := range b.units {
		n += e.stateBytes
	}
	return n
}

// contentHash fingerprints a unit's source bytes — the file-level identity
// the object cache is keyed by.
func contentHash(src []byte) uint64 {
	// The IR fingerprint hasher doubles as a fast general-purpose hash;
	// length prefixing (inside String) keeps it unambiguous.
	h := fingerprint.New()
	h.String(string(src))
	return h.Sum()
}
