// Package buildsys is the content-hash incremental build system layered
// under the stateful compiler — the "internal build system" the paper's
// end-to-end numbers are measured through. A Builder retains state across
// Build calls:
//
//   - a per-unit object cache keyed by a content hash of the source, so
//     unchanged units are never recompiled (the make/ninja file-level
//     skipping the paper's dilution structure depends on);
//
//   - per-unit dormancy state for the stateful/predictive policies, fed
//     back into the compiler when a changed unit *is* recompiled, and
//     optionally persisted to a state directory so the next process still
//     skips dormant passes; and
//
//   - one compiler per worker slot, so changed units compile concurrently
//     on a bounded pool (compilers are not safe for concurrent use).
//
// Correctness contract: a parallel stateful build produces byte-identical
// linked programs to a serial stateless build of the same snapshot. Unit
// compilation is deterministic and independent, and the linker orders
// objects by unit name, so neither worker scheduling nor the skipping
// policy can leak into the output.
package buildsys

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"statefulcc/internal/cas"
	"statefulcc/internal/codegen"
	"statefulcc/internal/compiler"
	"statefulcc/internal/core"
	"statefulcc/internal/fingerprint"
	"statefulcc/internal/footprint"
	"statefulcc/internal/obs"
	"statefulcc/internal/passes"
	"statefulcc/internal/project"
	"statefulcc/internal/state"
	"statefulcc/internal/vfs"
)

// Options configures a Builder.
type Options struct {
	// Mode is the compilation policy for every unit.
	Mode compiler.Mode
	// Workers bounds concurrent unit compilations; values < 1 normalize to
	// GOMAXPROCS.
	Workers int
	// StateDir, when set, persists per-unit dormancy state across
	// processes (stateful/predictive modes). Missing or corrupt state
	// files are treated as a cold start, never an error.
	StateDir string
	// VerifyIR forwards to the compiler (slow; tests only).
	VerifyIR bool
	// AuditRate enables the soundness sentinel: with this probability a
	// pass that would be skipped as dormant executes anyway and its output
	// fingerprint is verified against the input. 0 disables; 1 audits every
	// skip (tests). See docs/ROBUSTNESS.md.
	AuditRate float64
	// AuditSeed seeds the sentinel's sampler (0 means a fixed default).
	// Each worker slot derives its own stream from it.
	AuditSeed uint64
	// Pipeline overrides the pass list (default passes.StandardPipeline).
	Pipeline []string
	// Trace, when set, receives build/link/unit/stage/pass spans from
	// every Build call on a shared timeline (minibuild -trace). Nil
	// disables span collection; counters are always kept.
	Trace *obs.Tracer
	// HistoryPath is the flight-recorder file every successful Build
	// appends a record to. Empty defaults to history.Path(StateDir) when a
	// state directory is set; "-" disables recording entirely. Appends are
	// advisory: failures never fail the build.
	HistoryPath string
	// HistoryLimit bounds the history file to the newest N records
	// (default history.DefaultLimit).
	HistoryLimit int
	// FS is the filesystem the state and history layers perform their I/O
	// through. Nil means the real filesystem; the chaos suites inject a
	// vfs.FaultFS here to prove every I/O failure degrades to at most a
	// cold build (see docs/ROBUSTNESS.md).
	FS vfs.FS
	// Footprint enables dependency-footprint tracing (internal/footprint):
	// every compile records its actual read set, the record is persisted
	// with the unit's state, and each build cross-checks the declared cache
	// decisions against the traced ground truth, surfacing missed and
	// redundant invalidations (footprint.* counters, Report fields,
	// warnings). Check-only: decisions are unchanged.
	Footprint bool
	// EnforceFootprint makes the traced footprint authoritative (implies
	// Footprint): a unit whose footprint changed recompiles even if the
	// declared hash says cached, and a unit whose footprint is unchanged is
	// served from cache even if the declared hash moved — the always-correct
	// mode (docs/ROBUSTNESS.md).
	EnforceFootprint bool
	// ContentHashHook, when set, replaces the declared content hash for a
	// unit (receives the honest hash). Test-only: a deliberately lying
	// invalidator for the footprint battery. The footprint's own ground
	// truth never goes through this hook.
	ContentHashHook func(unit string, src []byte, honest uint64) uint64
	// CAS, when set, is the shared content-addressed cache (internal/cas):
	// units that miss the local object cache are fetched from it by action
	// key — with every blob byte-verified before use — and honest local
	// compiles publish their objects and dormancy state back. When the
	// store also implements cas.Leaser, concurrent misses of the same
	// action coalesce onto one compile. Advisory: every CAS failure
	// degrades to a local recompile with a warning (see cas.go).
	CAS cas.Store
}

// UnitReport describes one unit within a build.
type UnitReport struct {
	// Compiled is false when the unit came from the object cache.
	Compiled bool
	// CompileNS is the unit's own compile wall time (0 when cached).
	CompileNS int64
	// Slots is the unit's per-pipeline-slot statistics including decision
	// provenance (nil for cached units and for modes without a pass
	// driver, e.g. fullcache) — the raw material of `minibuild explain`.
	Slots []core.SlotStats
	// Panicked means a pass panicked compiling this unit; the panic was
	// isolated and the unit recompiled through the stateless fallback.
	Panicked bool
	// Quarantine is the unit's active quarantine reason after this build
	// ("" when none): core.QuarantinePanic or core.QuarantineUnsound.
	Quarantine string
	// Remote means the unit was served from the shared cache: its verified
	// object was fetched by content hash instead of compiling.
	Remote bool
}

// Report summarizes one Build call.
type Report struct {
	// TotalNS is the end-to-end build wall time.
	TotalNS int64
	// CompileNS is the wall time of the (parallel) compile phase.
	CompileNS int64
	// LinkNS is the link wall time.
	LinkNS int64
	// UnitsCompiled / UnitsCached partition the snapshot's units.
	UnitsCompiled, UnitsCached int
	// UnitsRemote counts the units served from the shared cache (a subset
	// of UnitsCached: a remote hit is a cache hit that crossed the wire).
	UnitsRemote int
	// StateBytes is the persistent-state footprint after this build
	// (serialized dormancy state, or the full cache's memory footprint).
	StateBytes int
	// Units maps every unit in the snapshot to its outcome.
	Units map[string]UnitReport
	// Program is the linked executable.
	Program *codegen.Program
	// Metrics is a snapshot of the builder's counters registry taken after
	// this build. Counters are cumulative across the builder's lifetime
	// (dormancy hit/skip totals, fingerprint vs pass time, state I/O,
	// worker busy time); see docs/OBSERVABILITY.md for the schema.
	Metrics map[string]int64
	// WorkerBusyNS is each worker slot's busy time during this build's
	// compile phase (index = worker slot).
	WorkerBusyNS []int64
	// Warnings lists the state/history I/O failures this build absorbed:
	// the build is correct but ran degraded (cold starts, unpersisted
	// state, dropped flight-recorder records). Mirrored by the
	// state.io_error / history.io_error counters in Metrics.
	Warnings []string
	// FootprintMissed lists units (unit order) whose declared cache decision
	// was "unchanged" while their traced footprint changed — missed
	// invalidations, the soundness violations the footprint cross-check
	// exists to catch. Under EnforceFootprint they were recompiled; in
	// check-only mode the stale object shipped (and a warning says so).
	FootprintMissed []string
	// FootprintRedundant lists units the declared channel recompiled though
	// their traced footprint proves the cached object was still valid.
	FootprintRedundant []string
	// Timeline is the build's scheduling event log — one event per unit
	// (skip or compile) with monotonic enqueue/start/end timestamps — the
	// raw material of `minibuild profile` (obs.Analyze). Nil on cancelled
	// builds.
	Timeline *obs.Timeline

	stats *core.Stats
}

// Stats returns the pass-manager statistics merged across the units
// compiled by this build (empty — never nil — when everything was cached
// or the mode records none).
func (r *Report) Stats() *core.Stats { return r.stats }

// Utilization reports the worker pool's utilization of this build's
// compile phase: busy time across workers / (workers × phase wall time).
func (r *Report) Utilization() float64 {
	return obs.Utilization(r.WorkerBusyNS, r.CompileNS)
}

// unitEntry is the retained per-unit build state.
type unitEntry struct {
	hash       uint64            // declared content hash of the compiled source
	obj        *codegen.Object   // cached object
	state      *core.UnitState   // dormancy records (stateful/predictive)
	stateBytes int               // serialized size of state
	diskProbed bool              // StateDir was already consulted for this unit
	fp         *footprint.Record // traced read footprint of the last compile
}

// Builder runs incremental builds, retaining object and compiler state
// between Build calls. It is not safe for concurrent use; one Build runs
// at a time (its internal workers provide the parallelism).
type Builder struct {
	opts    Options
	fs      vfs.FS               // normalized Options.FS (never nil)
	workers []*compiler.Compiler // one per worker slot, reused across builds
	units   map[string]*unitEntry

	// fallbacks are lazily created stateless compilers, one per worker
	// slot, used to retry a unit whose compile panicked (panic isolation)
	// and to compile whole-unit-quarantined units until their quarantine
	// lifts.
	fallbacks []*compiler.Compiler
	passCtrs  *obs.PassCounters

	// Observability: reg is the builder's counter registry; ctr holds the
	// pre-resolved counters the build loop and workers update; hist the
	// pre-resolved latency histograms; busy is per-worker busy time, reset
	// each Build (each worker writes only its own slot, so no
	// synchronization is needed within a build).
	reg  *obs.Registry
	ctr  builderCounters
	hist builderHists
	busy []int64

	// cas is the resolved shared-cache handle (nil when Options.CAS is
	// unset); see cas.go.
	cas *builderCAS

	// tlEpoch is the current build's monotonic epoch: every timeline
	// timestamp is time.Since(tlEpoch) — never a wall-clock subtraction,
	// which an NTP step could corrupt (see obs.Timeline). Set at the top of
	// each BuildContext; read by pool workers via tlNow.
	tlEpoch time.Time

	// Degradation warnings accumulated during the current Build (workers
	// append concurrently), deduplicated by message and snapshotted into
	// Report.Warnings.
	warnMu      sync.Mutex
	warnSeen    map[string]int
	warnOrder   []string
	warnDropped int
}

// builderCounters are the registry counters the build system updates
// directly (the pipeline's own counters are resolved by obs.Registry.Pass
// and updated from worker goroutines via the compiler sinks).
type builderCounters struct {
	builds, unitsCompiled, unitsCached      *obs.Counter
	linkNS                                  *obs.Counter
	frontendNS, passesNS, codegenNS         *obs.Counter
	cacheHits, cacheMisses                  *obs.Counter
	stateLoads, stateLoadMisses, stateSaves *obs.Counter
	stateIOErrors, historyIOErrors          *obs.Counter
	workerBusyNS                            *obs.Counter
	panics, cancelled                       *obs.Counter
	quarantineEngaged, quarantineLifted     *obs.Counter
	footprintChecked                        *obs.Counter
	footprintMissed, footprintRedundant     *obs.Counter
}

// builderHists are the registry latency histograms the build loop feeds
// (one Observe per unit or build; see docs/OBSERVABILITY.md).
type builderHists struct {
	unitCompile  *obs.Histogram
	skipDecision *obs.Histogram
	buildWall    *obs.Histogram
}

// NewBuilder creates an incremental builder.
func NewBuilder(opts Options) (*Builder, error) {
	if opts.Workers < 1 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if len(opts.Pipeline) == 0 {
		opts.Pipeline = passes.StandardPipeline
	}
	opts.Pipeline = append([]string(nil), opts.Pipeline...)

	reg := obs.NewRegistry()
	b := &Builder{
		opts:  opts,
		fs:    vfs.Default(opts.FS),
		units: make(map[string]*unitEntry),
		reg:   reg,
		ctr: builderCounters{
			builds:             reg.Counter(obs.CtrBuilds),
			unitsCompiled:      reg.Counter(obs.CtrUnitsCompiled),
			unitsCached:        reg.Counter(obs.CtrUnitsCached),
			linkNS:             reg.Counter(obs.CtrLinkNS),
			frontendNS:         reg.Counter(obs.CtrFrontendNS),
			passesNS:           reg.Counter(obs.CtrPassesNS),
			codegenNS:          reg.Counter(obs.CtrCodegenNS),
			cacheHits:          reg.Counter(obs.CtrCacheHits),
			cacheMisses:        reg.Counter(obs.CtrCacheMisses),
			stateLoads:         reg.Counter(obs.CtrStateLoads),
			stateLoadMisses:    reg.Counter(obs.CtrStateLoadMisses),
			stateSaves:         reg.Counter(obs.CtrStateSaves),
			stateIOErrors:      reg.Counter(obs.CtrStateIOErrors),
			historyIOErrors:    reg.Counter(obs.CtrHistoryIOErrors),
			workerBusyNS:       reg.Counter(obs.CtrWorkerBusyNS),
			panics:             reg.Counter(obs.CtrBuildPanics),
			cancelled:          reg.Counter(obs.CtrBuildCancelled),
			quarantineEngaged:  reg.Counter(obs.CtrQuarantineEngaged),
			quarantineLifted:   reg.Counter(obs.CtrQuarantineLifted),
			footprintChecked:   reg.Counter(obs.CtrFootprintChecked),
			footprintMissed:    reg.Counter(obs.CtrFootprintMissed),
			footprintRedundant: reg.Counter(obs.CtrFootprintRedundant),
		},
		hist: builderHists{
			unitCompile:  reg.Histogram(obs.HistUnitCompileNS),
			skipDecision: reg.Histogram(obs.HistSkipDecisionNS),
			buildWall:    reg.Histogram(obs.HistBuildWallNS),
		},
		busy:      make([]int64, opts.Workers),
		fallbacks: make([]*compiler.Compiler, opts.Workers),
		warnSeen:  make(map[string]int),
	}
	b.cas = newBuilderCAS(opts.CAS, reg)
	pass := reg.Pass()
	b.passCtrs = pass
	seed := opts.AuditSeed
	if seed == 0 {
		seed = 1
	}
	for i := 0; i < opts.Workers; i++ {
		c, err := compiler.New(compiler.Options{
			Pipeline:  opts.Pipeline,
			Mode:      opts.Mode,
			VerifyIR:  opts.VerifyIR,
			AuditRate: opts.AuditRate,
			// Each worker slot gets its own sampling stream so audits are
			// not correlated across workers.
			AuditSeed: seed + uint64(i),
			// Worker i reports as logical thread i+1; thread 0 is the
			// build orchestrator.
			Obs: &obs.Sink{Tracer: opts.Trace, Pass: pass, TID: i + 1},
		})
		if err != nil {
			return nil, fmt.Errorf("buildsys: %w", err)
		}
		b.workers = append(b.workers, c)
	}
	b.sweepStateTemp()
	return b, nil
}

// fallback returns worker w's stateless fallback compiler, creating it on
// first use. The fallback compiles a unit whose normal compile panicked
// (or that is whole-unit quarantined) with no persistent state involved.
func (b *Builder) fallback(w int) (*compiler.Compiler, error) {
	if b.fallbacks[w] == nil {
		c, err := compiler.New(compiler.Options{
			Pipeline: b.opts.Pipeline,
			Mode:     compiler.ModeStateless,
			VerifyIR: b.opts.VerifyIR,
			Obs:      &obs.Sink{Tracer: b.opts.Trace, Pass: b.passCtrs, TID: w + 1},
		})
		if err != nil {
			return nil, fmt.Errorf("buildsys: fallback compiler: %w", err)
		}
		b.fallbacks[w] = c
	}
	return b.fallbacks[w], nil
}

// statefulMode reports whether the builder's mode keeps per-unit dormancy
// state (and therefore has something to quarantine).
func (b *Builder) statefulMode() bool {
	return b.opts.Mode == compiler.ModeStateful || b.opts.Mode == compiler.ModePredictive
}

// Metrics snapshots the builder's counters registry (cumulative across
// builds; see docs/OBSERVABILITY.md for the counter schema).
func (b *Builder) Metrics() map[string]int64 { return b.reg.Snapshot() }

// Histograms snapshots the builder's latency histograms (cumulative across
// builds, same lifetime as Metrics): per-unit compile latency, skip-decision
// latency, and whole-build wall time.
func (b *Builder) Histograms() map[string]obs.HistogramSnapshot { return b.reg.HistSnapshot() }

// tlNow reads the current build's timeline clock: monotonic nanoseconds
// since the build's epoch.
func (b *Builder) tlNow() int64 { return time.Since(b.tlEpoch).Nanoseconds() }

// Workers returns the normalized worker count.
func (b *Builder) Workers() int { return b.opts.Workers }

// Mode returns the builder's compilation policy.
func (b *Builder) Mode() compiler.Mode { return b.opts.Mode }

// Build compiles the snapshot incrementally: unchanged units come from the
// object cache, changed units compile concurrently, and the result links
// deterministically (unit-name order, independent of scheduling).
func (b *Builder) Build(snap project.Snapshot) (*Report, error) {
	return b.BuildContext(context.Background(), snap)
}

// BuildContext is Build under a cancellation context. A deadline or
// cancellation aborts the build cooperatively: in-flight units stop
// between pass slots, their state is not persisted, and the call returns
// a *partial* Report (the units that did complete, no Program) alongside
// an error wrapping ctx's error. Completed units' state files are fully
// written, so the state directory is always loadable by the next process.
func (b *Builder) BuildContext(ctx context.Context, snap project.Snapshot) (*Report, error) {
	start := time.Now()
	b.tlEpoch = start
	buildStart := b.opts.Trace.Now()
	if len(snap) == 0 {
		return nil, fmt.Errorf("buildsys: empty snapshot (no units to build)")
	}
	for i := range b.busy {
		b.busy[i] = 0
	}
	b.warnMu.Lock()
	b.warnSeen, b.warnOrder, b.warnDropped = make(map[string]int), nil, 0
	b.warnMu.Unlock()

	// Drop units removed from the project, including their on-disk state.
	for name := range b.units {
		if _, ok := snap[name]; !ok {
			delete(b.units, name)
			b.removeUnitState(name)
		}
	}

	rep := &Report{
		Units: make(map[string]UnitReport, len(snap)),
		stats: &core.Stats{},
	}

	// Partition: content-hash every unit, collect the ones needing work.
	// With footprint tracing on, every declared decision is cross-checked
	// against the unit's traced read footprint — and under EnforceFootprint
	// the footprint verdict overrides the declared one.
	pipeHash := footprint.HashStrings(b.opts.Pipeline)
	units := snap.Units()
	var work []string
	var skipEvents []obs.UnitEvent
	for _, name := range units {
		src := snap[name]
		decStartNS := b.tlNow()
		h := b.declaredHash(name, src)
		e := b.units[name]
		cached := e != nil && e.hash == h && e.obj != nil
		if b.footprintOn() {
			cached = b.crossCheck(rep, e, name, src, pipeHash, cached)
		}
		decEndNS := b.tlNow()
		b.hist.skipDecision.Observe(decEndNS - decStartNS)
		if cached {
			if e.hash != h {
				// Enforcement proved the object valid under a moved declared
				// hash; adopt the new hash so the channels re-converge.
				e.hash = h
			}
			rep.Units[name] = UnitReport{}
			rep.UnitsCached++
			skipEvents = append(skipEvents, obs.UnitEvent{
				Unit: name, Worker: -1, Outcome: obs.OutcomeSkip,
				EnqueueNS: decStartNS, StartNS: decStartNS, EndNS: decEndNS,
			})
			continue
		}
		work = append(work, name)
	}

	// Compile changed units on the worker pool. The phase-start stamp is
	// taken after compileStart so scheduled events (recorded inside) land
	// within [CompileStartNS, CompileStartNS+CompileNS] on the timeline.
	compileStart := time.Now()
	compileStartNS := b.tlNow()
	outcomes, unitEvents, err := b.runCompiles(ctx, snap, work)
	if err != nil {
		return nil, err
	}
	rep.CompileNS = time.Since(compileStart).Nanoseconds()

	// Commit outcomes in unit order so report stats, cache contents, and
	// state sizes never depend on worker scheduling. A cancelled build has
	// holes (nil results): completed units still commit — their state files
	// are already fully written — and the build reports partially below.
	cancelled := false
	for i, name := range work {
		out := outcomes[i]
		if out.remote {
			// Served from the shared cache: a verified remote object (and
			// possibly adopted dormancy state) with no compile behind it.
			e, ok := b.units[name]
			if !ok {
				e = &unitEntry{}
				b.units[name] = e
			}
			e.hash = b.declaredHash(name, snap[name])
			e.obj = out.casObj
			e.diskProbed = true
			// The remote object carries no trace; any prior footprint no
			// longer describes it.
			e.fp = nil
			if out.casState != nil {
				e.state = out.casState
				if n, err := state.FileSize(out.casState); err == nil {
					e.stateBytes = n
				}
			}
			rep.Units[name] = UnitReport{Remote: true}
			rep.UnitsCached++
			rep.UnitsRemote++
			continue
		}
		if out.res == nil {
			cancelled = true
			continue
		}
		e, ok := b.units[name]
		if !ok {
			e = &unitEntry{}
			b.units[name] = e
		}
		e.hash = b.declaredHash(name, snap[name])
		e.obj = out.res.Object
		e.diskProbed = true // fresh state below supersedes anything on disk
		if out.fp != nil {
			e.fp = out.fp
		}
		switch {
		case out.qclear:
			// Quarantine lifted with nothing to carry over: cold restart.
			e.state, e.stateBytes = nil, 0
		case out.qstate != nil:
			e.state = out.qstate
			if n, err := state.FileSize(out.qstate); err == nil {
				e.stateBytes = n
			}
		default:
			if st := out.res.State; st != nil {
				e.state = st
				if n, err := state.FileSize(st); err == nil {
					e.stateBytes = n
				}
			}
		}
		b.hist.unitCompile.Observe(out.res.TotalNS)
		ur := UnitReport{Compiled: true, CompileNS: out.res.TotalNS, Panicked: out.panicked}
		if e.state != nil && e.state.Quarantine != nil {
			ur.Quarantine = e.state.Quarantine.Reason
		}
		if out.res.Stats != nil {
			rep.stats.Merge(out.res.Stats)
			ur.Slots = append([]core.SlotStats(nil), out.res.Stats.Slots...)
		}
		b.ctr.frontendNS.Add(out.res.StageNS(compiler.StageFrontend))
		b.ctr.passesNS.Add(out.res.StageNS(compiler.StagePasses))
		b.ctr.codegenNS.Add(out.res.StageNS(compiler.StageCodegen))
		b.ctr.cacheHits.Add(int64(out.res.CacheHits))
		b.ctr.cacheMisses.Add(int64(out.res.CacheMisses))
		rep.Units[name] = ur
		rep.UnitsCompiled++
	}

	if cancelled {
		// Partial report: no link, no history record; counters and warnings
		// still reflect the work that happened.
		b.ctr.cancelled.Inc()
		rep.StateBytes = b.stateBytes()
		rep.TotalNS = time.Since(start).Nanoseconds()
		rep.WorkerBusyNS = append([]int64(nil), b.busy...)
		for _, ns := range b.busy {
			b.ctr.workerBusyNS.Add(ns)
		}
		rep.Metrics = b.reg.Snapshot()
		rep.Warnings = b.takeWarnings()
		cerr := ctx.Err()
		if cerr == nil {
			cerr = context.Canceled
		}
		return rep, fmt.Errorf("buildsys: build cancelled: %w", cerr)
	}

	// Link everything, cached and fresh, in deterministic order.
	linkStart := time.Now()
	linkSpanStart := b.opts.Trace.Now()
	objs := make([]*codegen.Object, 0, len(units))
	for _, name := range units {
		objs = append(objs, b.units[name].obj)
	}
	prog, err := codegen.Link(objs)
	if err != nil {
		return nil, fmt.Errorf("buildsys: %w", err)
	}
	rep.LinkNS = time.Since(linkStart).Nanoseconds()
	rep.Program = prog
	b.opts.Trace.Emit(obs.Span{Name: "link", Cat: obs.CatBuild, TID: 0,
		Start: linkSpanStart, Dur: rep.LinkNS})

	rep.StateBytes = b.stateBytes()
	rep.TotalNS = time.Since(start).Nanoseconds()
	b.hist.buildWall.Observe(rep.TotalNS)
	rep.Timeline = assembleTimeline(b.opts.Workers, rep, compileStartNS, skipEvents, unitEvents)

	// Build-level accounting: counters first, then the snapshot the
	// report carries.
	b.ctr.builds.Inc()
	b.ctr.unitsCompiled.Add(int64(rep.UnitsCompiled))
	b.ctr.unitsCached.Add(int64(rep.UnitsCached))
	b.ctr.linkNS.Add(rep.LinkNS)
	rep.WorkerBusyNS = append([]int64(nil), b.busy...)
	for _, ns := range b.busy {
		b.ctr.workerBusyNS.Add(ns)
	}
	rep.Metrics = b.reg.Snapshot()
	b.opts.Trace.Emit(obs.Span{Name: "build", Cat: obs.CatBuild, TID: 0,
		Start: buildStart, Dur: rep.TotalNS})
	b.recordHistory(rep)
	rep.Warnings = b.takeWarnings()
	return rep, nil
}

// maxWarnings bounds distinct warning messages per build. A pathological
// filesystem (every op failing) or a long-lived serve process must never
// balloon a Report: repeats of a message only bump its count, and past the
// cap on distinct messages only a dropped count is kept.
const maxWarnings = 32

// warnf records one degradation warning for the current build,
// deduplicated by rendered message.
func (b *Builder) warnf(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	b.warnMu.Lock()
	defer b.warnMu.Unlock()
	if _, ok := b.warnSeen[msg]; ok {
		b.warnSeen[msg]++
		return
	}
	b.warnSeen[msg] = 1
	if len(b.warnOrder) >= maxWarnings {
		// Past the cap only the count of *distinct* dropped messages is
		// kept (repeats of a dropped message stay deduplicated above).
		b.warnDropped++
		return
	}
	b.warnOrder = append(b.warnOrder, msg)
}

// takeWarnings snapshots the current build's warnings for its report, in
// first-occurrence order with repeat counts folded into "(×N)" suffixes.
func (b *Builder) takeWarnings() []string {
	b.warnMu.Lock()
	defer b.warnMu.Unlock()
	if len(b.warnOrder) == 0 && b.warnDropped == 0 {
		return nil
	}
	out := make([]string, 0, len(b.warnOrder)+1)
	for _, msg := range b.warnOrder {
		if n := b.warnSeen[msg]; n > 1 {
			msg = fmt.Sprintf("%s (×%d)", msg, n)
		}
		out = append(out, msg)
	}
	if b.warnDropped > 0 {
		out = append(out, fmt.Sprintf("… and %d more distinct warnings", b.warnDropped))
	}
	return out
}

// stateBytes reports the retained persistent-state footprint: serialized
// dormancy state for the record-keeping modes, the in-memory cache size
// for fullcache.
func (b *Builder) stateBytes() int {
	n := 0
	if b.opts.Mode == compiler.ModeFullCache {
		for _, c := range b.workers {
			n += c.FullCacheStateBytes()
		}
		return n
	}
	for _, e := range b.units {
		n += e.stateBytes
	}
	return n
}

// assembleTimeline merges the partition stage's skip events with the
// pool's scheduling events into the build's timeline, sorted by unit name
// (scheduling must not leak into the recorded artifact's shape). Event
// holes from cancellation are dropped, but cancelled builds never reach
// this point anyway — only successful builds carry a timeline.
func assembleTimeline(workers int, rep *Report, compileStartNS int64, skips, compiles []obs.UnitEvent) *obs.Timeline {
	events := make([]obs.UnitEvent, 0, len(skips)+len(compiles))
	events = append(events, skips...)
	for _, e := range compiles {
		if e.Unit == "" {
			continue
		}
		events = append(events, e)
	}
	sort.Slice(events, func(i, j int) bool { return events[i].Unit < events[j].Unit })
	return &obs.Timeline{
		Workers:        workers,
		WallNS:         rep.TotalNS,
		CompileStartNS: compileStartNS,
		CompileWallNS:  rep.CompileNS,
		LinkNS:         rep.LinkNS,
		Events:         events,
	}
}

// contentHash fingerprints a unit's source bytes — the file-level identity
// the object cache is keyed by.
func contentHash(src []byte) uint64 {
	// The IR fingerprint hasher doubles as a fast general-purpose hash;
	// length prefixing (inside String) keeps it unambiguous.
	h := fingerprint.New()
	h.String(string(src))
	return h.Sum()
}
