package buildsys_test

// Build-system-level footprint tests: cross-check counters and report
// wiring, enforcement semantics for both disagreement directions, the
// state-v6 persistence round trip, and a chaos walk (TestChaosFootprint*,
// picked up by `make chaos`) proving footprint-enabled builds degrade as
// gracefully under injected I/O faults as untraced ones.

import (
	"strings"
	"testing"

	"statefulcc/internal/buildsys"
	"statefulcc/internal/codegen"
	"statefulcc/internal/compiler"
	"statefulcc/internal/footprint"
	"statefulcc/internal/obs"
	"statefulcc/internal/state"
	"statefulcc/internal/vfs"
	"statefulcc/internal/vfs/chaostest"
)

// footprintBuilder is a stateful builder with tracing on.
func footprintBuilder(t *testing.T, dir string, enforce bool, hook func(string, []byte, uint64) uint64) *buildsys.Builder {
	t.Helper()
	b, err := buildsys.NewBuilder(buildsys.Options{
		Mode: compiler.ModeStateful, StateDir: dir,
		Footprint: true, EnforceFootprint: enforce, ContentHashHook: hook,
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestFootprintCheckedOnCacheHits(t *testing.T) {
	b := footprintBuilder(t, t.TempDir(), false, nil)
	mustBuild(t, b, twoUnitSnap())
	rep := mustBuild(t, b, chaosEditedSnap()) // lib edited, main untouched

	m := b.Metrics()
	if m[obs.CtrFootprintChecked] == 0 {
		t.Fatal("no cross-checks ran on the rebuild (main.mc was served from cache)")
	}
	if m[obs.CtrFootprintMissed] != 0 || m[obs.CtrFootprintRedundant] != 0 {
		t.Fatalf("honest rebuild disagreed with footprint: %v", m)
	}
	if len(rep.FootprintMissed) != 0 || len(rep.FootprintRedundant) != 0 {
		t.Fatalf("honest rebuild flagged units: %v / %v", rep.FootprintMissed, rep.FootprintRedundant)
	}
}

func TestFootprintMissedServesStaleWithoutEnforce(t *testing.T) {
	// The frozen-hash lie without enforcement: the stale object is served
	// (documenting the failure mode), the miss is counted and warned.
	frozen := map[string]uint64{}
	hook := func(unit string, _ []byte, honest uint64) uint64 {
		if h, ok := frozen[unit]; ok {
			return h
		}
		frozen[unit] = honest
		return honest
	}
	b := footprintBuilder(t, t.TempDir(), false, hook)
	repA := mustBuild(t, b, twoUnitSnap())
	repB := mustBuild(t, b, chaosEditedSnap())

	if got := codegen.DisassembleProgram(repB.Program); got != codegen.DisassembleProgram(repA.Program) {
		t.Fatal("without enforcement the lying build should have served the stale object")
	}
	if len(repB.FootprintMissed) == 0 {
		t.Fatal("stale serve not flagged as missed invalidation")
	}
	warned := false
	for _, w := range repB.Warnings {
		if strings.Contains(w, "missed invalidation") {
			warned = true
		}
	}
	if !warned {
		t.Fatalf("no warning for the missed invalidation: %v", repB.Warnings)
	}
}

func TestFootprintRedundantServedUnderEnforce(t *testing.T) {
	// The opposite lie: the declared hash moves although the bytes did not.
	// Unenforced that forces pointless recompiles; enforced, the footprint
	// proves the cached object valid and serves it.
	lie := uint64(0)
	hook := func(_ string, _ []byte, honest uint64) uint64 { return honest ^ lie }

	b := footprintBuilder(t, t.TempDir(), true, hook)
	snap := twoUnitSnap()
	mustBuild(t, b, snap)
	lie = 0xF00D // same bytes, "new" declared hash
	rep := mustBuild(t, b, snap)

	if rep.UnitsCached != len(snap) {
		t.Fatalf("enforcement served %d/%d units from cache; footprint proved all valid", rep.UnitsCached, len(snap))
	}
	if len(rep.FootprintRedundant) != len(snap) {
		t.Fatalf("redundant list %v, want all %d units", rep.FootprintRedundant, len(snap))
	}
	if m := b.Metrics(); m[obs.CtrFootprintRedundant] == 0 {
		t.Fatal("footprint.redundant counter not incremented")
	}

	// The adopted declared hash must re-converge: a third build with the
	// same lie is a plain cache hit, no disagreement.
	rep3 := mustBuild(t, b, snap)
	if len(rep3.FootprintRedundant) != 0 || rep3.UnitsCached != len(snap) {
		t.Fatalf("declared channel did not re-converge: cached %d, redundant %v",
			rep3.UnitsCached, rep3.FootprintRedundant)
	}
}

func TestFootprintPersistsInStateV6(t *testing.T) {
	dir := t.TempDir()
	snap := twoUnitSnap()
	b := footprintBuilder(t, dir, false, nil)
	mustBuild(t, b, snap)

	want := b.Footprints()
	if len(want) != len(snap) {
		t.Fatalf("builder retained %d footprints for %d units", len(want), len(snap))
	}
	seen := 0
	entries, err := vfs.OS.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".state") {
			continue
		}
		st, err := state.Load(dir + "/" + e.Name())
		if err != nil {
			t.Fatalf("load %s: %v", e.Name(), err)
		}
		if st.Footprint == nil {
			t.Fatalf("state file %s carries no footprint", e.Name())
		}
		mem := want[st.Unit]
		if mem == nil || !st.Footprint.Equal(mem) {
			t.Fatalf("unit %s: persisted footprint differs from the in-memory record", st.Unit)
		}
		src := snap[st.Unit]
		if st.Footprint.DeclaredHash != buildsys.ContentHash(src) {
			t.Fatalf("unit %s: declared hash not recorded verbatim", st.Unit)
		}
		if got, ok := st.Footprint.Get(footprint.KindSource, st.Unit); !ok || got != footprint.HashBytes(src) {
			t.Fatalf("unit %s: source ground-truth entry wrong (%016x, ok=%v)", st.Unit, got, ok)
		}
		if _, ok := st.Footprint.Get(footprint.KindPipeline, "pipeline"); !ok {
			t.Fatalf("unit %s: pipeline entry missing", st.Unit)
		}
		seen++
	}
	if seen != len(snap) {
		t.Fatalf("found %d footprint-bearing state files, want %d", seen, len(snap))
	}

	// main.mc calls helper cross-unit: its link-scope entry records the
	// arity the linker checks.
	if h, ok := want["main.mc"].Get(footprint.KindCall, "helper"); !ok || h != 1 {
		t.Fatalf("main.mc call entry for helper = %d, %v; want arity 1", h, ok)
	}
}

// TestChaosFootprintFaultWalk replays the build→edit→rebuild→fresh-builder
// sequence with footprint tracing and enforcement on, injecting one
// FaultError per recorded I/O point. Invariants: builds never fail, output
// stays byte-identical to the stateless oracle (no fault may flip a cache
// decision the wrong way), and honest builds never report missed
// invalidations — a state file that fails to load or save just degrades to
// an untracked (always-recompiled, never-cross-checked) unit.
func TestChaosFootprintFaultWalk(t *testing.T) {
	baseA := statelessDisasm(t, twoUnitSnap())
	baseB := statelessDisasm(t, chaosEditedSnap())

	run := func(t *testing.T, fsys vfs.FS, dir string) {
		t.Helper()
		mk := func() *buildsys.Builder {
			b, err := buildsys.NewBuilder(buildsys.Options{
				Mode: compiler.ModeStateful, StateDir: dir, Workers: 1, FS: fsys,
				Footprint: true, EnforceFootprint: true,
			})
			if err != nil {
				t.Fatalf("builder creation must survive I/O faults: %v", err)
			}
			return b
		}
		b1 := mk()
		repA, err := b1.Build(twoUnitSnap())
		if err != nil {
			t.Fatalf("build A failed under fault: %v", err)
		}
		repB, err := b1.Build(chaosEditedSnap())
		if err != nil {
			t.Fatalf("rebuild B failed under fault: %v", err)
		}
		b2 := mk()
		repB2, err := b2.Build(chaosEditedSnap())
		if err != nil {
			t.Fatalf("fresh-builder rebuild failed under fault: %v", err)
		}
		for i, rep := range []*buildsys.Report{repA, repB, repB2} {
			if len(rep.FootprintMissed) != 0 {
				t.Fatalf("build %d: honest faulted build reported missed invalidations: %v", i, rep.FootprintMissed)
			}
		}
		if codegen.DisassembleProgram(repA.Program) != baseA ||
			codegen.DisassembleProgram(repB.Program) != baseB ||
			codegen.DisassembleProgram(repB2.Program) != baseB {
			t.Fatal("faulted footprint build diverged from the stateless oracle")
		}
	}

	// Clean recorded run enumerates the footprint-mode fault points —
	// including the traced state reads through the recording wrapper.
	recDir := t.TempDir()
	rec := vfs.NewFaultFS(vfs.OS, chaosCanon(recDir))
	run(t, rec, recDir)
	points := chaostest.Points(rec.Calls())
	if len(points) < 30 {
		t.Fatalf("recorded only %d fault points; footprint mode shrank the I/O surface: %v", len(points), points)
	}

	for _, p := range points {
		p := p
		t.Run(chaostest.Name(p, vfs.FaultError), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			ffs := vfs.NewFaultFS(vfs.OS, chaosCanon(dir), vfs.WithRules(chaostest.RuleFor(p, vfs.FaultError)))
			run(t, ffs, dir)
			chaostest.AssertFiredOrAbsent(t, ffs, p)
		})
	}
}
