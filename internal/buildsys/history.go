package buildsys

// Flight-recorder integration: after every successful Build, one
// internal/history record — build timings, the counters-registry snapshot,
// and each unit's per-slot decision provenance — is appended to the state
// directory. Recording is advisory: it is skipped without a destination
// and append failures never fail a build.

import (
	"time"

	"statefulcc/internal/history"
	"statefulcc/internal/obs"
)

// historyPath resolves the flight-recorder destination: an explicit
// Options.HistoryPath wins, "-" disables, and otherwise a configured state
// directory implies its history.jsonl.
func (b *Builder) historyPath() string {
	switch {
	case b.opts.HistoryPath == "-":
		return ""
	case b.opts.HistoryPath != "":
		return b.opts.HistoryPath
	case b.opts.StateDir != "":
		return history.Path(b.opts.StateDir)
	}
	return ""
}

// recordHistory appends one record for a completed build. Failures never
// fail the build, but they are surfaced — history.io_error counter plus a
// report warning — instead of silently dropping the record. (The counter
// increments after this build's Metrics snapshot was taken, so it shows
// up in Builder.Metrics and the next build's record.)
func (b *Builder) recordHistory(rep *Report) {
	path := b.historyPath()
	if path == "" {
		return
	}
	if err := history.AppendFS(b.fs, path, b.historyRecord(rep), b.opts.HistoryLimit); err != nil {
		b.ctr.historyIOErrors.Inc()
		b.warnf("history: append: %v (flight-recorder record dropped)", err)
	}
}

// historyRecord converts a build report into its flight-recorder record.
func (b *Builder) historyRecord(rep *Report) *history.Record {
	rec := &history.Record{
		TimeUnixMS:    time.Now().UnixMilli(),
		Mode:          b.opts.Mode.String(),
		Workers:       b.opts.Workers,
		TotalNS:       rep.TotalNS,
		CompileNS:     rep.CompileNS,
		LinkNS:        rep.LinkNS,
		UnitsCompiled: rep.UnitsCompiled,
		UnitsCached:   rep.UnitsCached,
		UnitsRemote:   rep.UnitsRemote,
		StateBytes:    rep.StateBytes,
		SkipRatePct:   100 * obs.SkipRate(rep.Metrics),
		Metrics:       rep.Metrics,
		Units:         make(map[string]history.UnitRecord, len(rep.Units)),
		Timeline:      history.TimelineFromObs(rep.Timeline),

		FootprintMissed:    rep.FootprintMissed,
		FootprintRedundant: rep.FootprintRedundant,
	}
	for name, ur := range rep.Units {
		u := history.UnitRecord{
			Cached:     !ur.Compiled,
			CompileNS:  ur.CompileNS,
			Panicked:   ur.Panicked,
			Quarantine: ur.Quarantine,
			Remote:     ur.Remote,
		}
		for slot := range ur.Slots {
			sl := &ur.Slots[slot]
			u.Passes = append(u.Passes, history.PassDecision{
				Pass:        sl.Pass,
				Slot:        slot,
				Module:      sl.Module,
				Reason:      sl.Reason(),
				Runs:        sl.Runs,
				Dormant:     sl.Dormant,
				Skipped:     sl.Skipped,
				Cold:        sl.Cold,
				NotDormant:  sl.NotDormant,
				FPMismatch:  sl.FPMismatch,
				Policy:      sl.Policy,
				Quarantined: sl.Quarantined,
				Audited:     sl.Audited,
				Unsound:     sl.Unsound,
				RunNS:       sl.RunNS,
				SavedNS:     sl.SavedNS,

				BlocksMemoized: sl.BlocksMemoized,
				BlocksRehashed: sl.BlocksRehashed,
			})
		}
		rec.Units[name] = u
	}
	return rec
}
