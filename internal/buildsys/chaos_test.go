package buildsys_test

// Build-system chaos suite — the tentpole robustness guarantee: walk every
// injectable state/history I/O fault point of a build→edit→rebuild
// sequence (including a fresh-process disk reload) and prove the
// "never worse than cold" degradation invariant:
//
//  1. the builder returns success whenever the compile itself succeeds —
//     state-layer and flight-recorder failures surface as Report.Warnings
//     and state.io_error / history.io_error counts, never build errors;
//  2. every linked program is byte-identical (by disassembly) to a
//     stateless build of the same snapshot, no matter which I/O call
//     failed, crashed, or tore; and
//  3. after the fault clears, one clean build re-persists state and the
//     next fresh builder recovers the full skip rate of an unfaulted run.
//
// Fault points are enumerated by recording a clean run over the vfs seam
// — the harness asserts its own coverage instead of trusting a hand-kept
// list.

import (
	"sort"
	"strconv"
	"strings"
	"testing"

	"statefulcc/internal/buildsys"
	"statefulcc/internal/codegen"
	"statefulcc/internal/compiler"
	histpkg "statefulcc/internal/history"
	"statefulcc/internal/obs"
	"statefulcc/internal/project"
	"statefulcc/internal/state"
	"statefulcc/internal/vfs"
	"statefulcc/internal/vfs/chaostest"
)

// chaosEditedSnap is twoUnitSnap with lib.mc edited (same signature, new
// body) — the "edit" step of the build→edit→rebuild sequence.
func chaosEditedSnap() project.Snapshot {
	s := twoUnitSnap()
	s["lib.mc"] = []byte(`
func helper(n int) int {
    var s int = 0;
    for var i int = 0; i < n; i++ { s += i * 3 + 1; }
    return s - n;
}
`)
	return s
}

// chaosCanon builds the suite's canonicalizer over a state directory.
func chaosCanon(stateDir string) vfs.Option {
	return vfs.WithCanon(chaostest.Canon(stateDir, state.TempPattern, histpkg.TempPattern))
}

// chaosBuilder constructs a stateful builder over fsys. Workers is a
// parameter: 1 gives a fully deterministic call sequence for the recorded
// walk; >1 exercises the concurrent path under seeded schedules.
func chaosBuilder(t *testing.T, fsys vfs.FS, stateDir string, workers int) *buildsys.Builder {
	t.Helper()
	b, err := buildsys.NewBuilder(buildsys.Options{
		Mode: compiler.ModeStateful, StateDir: stateDir, Workers: workers, FS: fsys,
	})
	if err != nil {
		t.Fatalf("builder creation must survive I/O faults: %v", err)
	}
	return b
}

// chaosSequence runs the workload under test — build A, edit, rebuild B,
// then a fresh builder ("new process") rebuilding B from disk state — and
// returns the three programs' disassemblies. Builds must succeed: the
// compile itself never touches the filesystem (sources come from the
// in-memory snapshot), so any build error here means a state/history I/O
// fault escaped the degradation layer.
func chaosSequence(t *testing.T, fsys vfs.FS, stateDir string, workers int) (disA, disB, disB2 string) {
	t.Helper()
	b1 := chaosBuilder(t, fsys, stateDir, workers)
	repA, err := b1.Build(twoUnitSnap())
	if err != nil {
		t.Fatalf("build A failed under injected I/O fault: %v", err)
	}
	repB, err := b1.Build(chaosEditedSnap())
	if err != nil {
		t.Fatalf("rebuild B failed under injected I/O fault: %v", err)
	}
	b2 := chaosBuilder(t, fsys, stateDir, workers)
	repB2, err := b2.Build(chaosEditedSnap())
	if err != nil {
		t.Fatalf("fresh-builder rebuild B failed under injected I/O fault: %v", err)
	}
	return codegen.DisassembleProgram(repA.Program),
		codegen.DisassembleProgram(repB.Program),
		codegen.DisassembleProgram(repB2.Program)
}

// statelessDisasm builds snap with the stateless policy — the byte-identity
// baseline the chaos walk compares every faulted build against.
func statelessDisasm(t *testing.T, snap project.Snapshot) string {
	t.Helper()
	b, err := buildsys.NewBuilder(buildsys.Options{Mode: compiler.ModeStateless, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return codegen.DisassembleProgram(mustBuild(t, b, snap).Program)
}

// controlSkips measures the full skip rate of an unfaulted fresh builder:
// one clean builder persists state for snapB, then another loads it and
// rebuilds. The walk's recovery invariant must reach exactly this number.
func controlSkips(t *testing.T) int {
	t.Helper()
	dir := t.TempDir()
	snapB := chaosEditedSnap()
	mustBuild(t, chaosBuilder(t, nil, dir, 1), snapB)
	rep := mustBuild(t, chaosBuilder(t, nil, dir, 1), snapB)
	_, _, skipped := rep.Stats().Totals()
	if skipped == 0 {
		t.Fatal("control run has zero skips; the recovery invariant would be vacuous")
	}
	return skipped
}

// assertRecovered checks the recovery invariant over a possibly-damaged
// state directory: a clean (fault-free) build heals the persisted state,
// and the next fresh builder reaches the full control skip rate.
func assertRecovered(t *testing.T, stateDir, wantDisB string, wantSkips int) {
	t.Helper()
	snapB := chaosEditedSnap()
	repHeal := mustBuild(t, chaosBuilder(t, nil, stateDir, 1), snapB)
	if len(repHeal.Warnings) != 0 {
		t.Fatalf("fault-free healing build still warned: %v", repHeal.Warnings)
	}
	if codegen.DisassembleProgram(repHeal.Program) != wantDisB {
		t.Fatal("healing build output differs from the stateless baseline")
	}
	repWarm := mustBuild(t, chaosBuilder(t, nil, stateDir, 1), snapB)
	if codegen.DisassembleProgram(repWarm.Program) != wantDisB {
		t.Fatal("post-recovery warm build output differs from the stateless baseline")
	}
	if _, _, skipped := repWarm.Stats().Totals(); skipped != wantSkips {
		t.Fatalf("post-recovery skip count = %d, want full control rate %d", skipped, wantSkips)
	}
}

// TestChaosBuildRebuild is the fault-point walk over the whole sequence.
func TestChaosBuildRebuild(t *testing.T) {
	baseA := statelessDisasm(t, twoUnitSnap())
	baseB := statelessDisasm(t, chaosEditedSnap())
	if baseA == baseB {
		t.Fatal("edited snapshot compiles identically; the edit step is vacuous")
	}
	wantSkips := controlSkips(t)

	// Record a clean run to enumerate the fault points (Workers 1 keeps the
	// recorded call sequence deterministic).
	recDir := t.TempDir()
	rec := vfs.NewFaultFS(vfs.OS, chaosCanon(recDir))
	disA, disB, disB2 := chaosSequence(t, rec, recDir, 1)
	if disA != baseA || disB != baseB || disB2 != baseB {
		t.Fatal("clean recorded run does not match the stateless baselines")
	}
	points := chaostest.Points(rec.Calls())
	if len(points) < 30 {
		t.Fatalf("recorded only %d fault points; the vfs seam has shrunk: %v", len(points), points)
	}
	cov := chaostest.OpsCovered(points)
	for _, op := range []vfs.Op{vfs.OpMkdirAll, vfs.OpReadDir, vfs.OpOpen, vfs.OpOpenFile,
		vfs.OpCreateTemp, vfs.OpRead, vfs.OpWrite, vfs.OpSync, vfs.OpClose, vfs.OpRename, vfs.OpRemove} {
		if cov[op] == 0 {
			t.Fatalf("sequence never performs %s; the walk is not covering the I/O surface (%v)", op, cov)
		}
	}
	t.Logf("walking %d fault points (%d ops)", len(points), len(cov))

	for _, p := range points {
		kinds := []vfs.Fault{vfs.FaultError, vfs.FaultCrash}
		if p.Op == vfs.OpWrite {
			kinds = append(kinds, vfs.FaultTorn)
		}
		for _, kind := range kinds {
			p, kind := p, kind
			t.Run(chaostest.Name(p, kind), func(t *testing.T) {
				t.Parallel()
				dir := t.TempDir()
				ffs := vfs.NewFaultFS(vfs.OS, chaosCanon(dir), vfs.WithRules(chaostest.RuleFor(p, kind)))
				disA, disB, disB2 := chaosSequence(t, ffs, dir, 1)

				// Coverage self-check. Flight-recorder records embed build
				// timings, so buffered write/read chunk counts can shift ±1
				// between runs; a point that provably did not occur in this
				// replay is tolerated, anything else must fire.
				chaostest.AssertFiredOrAbsent(t, ffs, p)

				// Invariant: byte-identical output under every fault.
				if disA != baseA {
					t.Error("build A output differs from the stateless baseline")
				}
				if disB != baseB {
					t.Error("rebuild B output differs from the stateless baseline")
				}
				if disB2 != baseB {
					t.Error("fresh-builder rebuild B output differs from the stateless baseline")
				}

				// Invariant: the fault clears, state heals, skips recover.
				assertRecovered(t, dir, baseB, wantSkips)
			})
		}
	}
}

// TestChaosStateSaveSurfaced: failing every state save must keep the build
// green while surfacing the degradation as warnings and counters.
func TestChaosStateSaveSurfaced(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(vfs.OS, vfs.WithRules(
		vfs.Rule{Op: vfs.OpCreateTemp, Path: state.TempPattern, Kind: vfs.FaultError}))
	b := chaosBuilder(t, ffs, dir, 1)
	rep := mustBuild(t, b, twoUnitSnap())

	if got := rep.Metrics[obs.CtrStateIOErrors]; got < 2 {
		t.Errorf("%s = %d, want one per unit (≥2)", obs.CtrStateIOErrors, got)
	}
	if got := rep.Metrics[obs.CtrStateSaves]; got != 0 {
		t.Errorf("%s = %d with every save failing", obs.CtrStateSaves, got)
	}
	var stateWarn bool
	for _, w := range rep.Warnings {
		if strings.Contains(w, "state: save") {
			stateWarn = true
		}
	}
	if !stateWarn {
		t.Errorf("no save warning in Report.Warnings: %v", rep.Warnings)
	}
	if codegen.DisassembleProgram(rep.Program) != statelessDisasm(t, twoUnitSnap()) {
		t.Error("degraded build output differs from the stateless baseline")
	}
}

// TestChaosStateLoadSurfaced: unreadable state files mean a cold start
// (correct output, no skips) plus warnings and counters — never an error.
func TestChaosStateLoadSurfaced(t *testing.T) {
	dir := t.TempDir()
	snap := twoUnitSnap()
	mustBuild(t, chaosBuilder(t, nil, dir, 1), snap) // persist good state

	ffs := vfs.NewFaultFS(vfs.OS, vfs.WithRules(
		vfs.Rule{Op: vfs.OpRead, Path: "*" + ".state", Kind: vfs.FaultError}))
	rep := mustBuild(t, chaosBuilder(t, ffs, dir, 1), snap)

	if got := rep.Metrics[obs.CtrStateIOErrors]; got < 2 {
		t.Errorf("%s = %d, want one per unreadable unit (≥2)", obs.CtrStateIOErrors, got)
	}
	if got := rep.Metrics[obs.CtrStateLoadMisses]; got < 2 {
		t.Errorf("%s = %d, want failed loads counted as misses", obs.CtrStateLoadMisses, got)
	}
	var loadWarn bool
	for _, w := range rep.Warnings {
		if strings.Contains(w, "state: load") && strings.Contains(w, "running cold") {
			loadWarn = true
		}
	}
	if !loadWarn {
		t.Errorf("no load warning in Report.Warnings: %v", rep.Warnings)
	}
	if codegen.DisassembleProgram(rep.Program) != statelessDisasm(t, snap) {
		t.Error("cold-start build output differs from the stateless baseline")
	}
}

// TestChaosHistorySurfaced: a failing flight-recorder append must keep the
// build green, warn, and count history.io_error.
func TestChaosHistorySurfaced(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(vfs.OS, vfs.WithRules(
		vfs.Rule{Op: vfs.OpOpenFile, Path: histpkg.FileName, Kind: vfs.FaultError}))
	b := chaosBuilder(t, ffs, dir, 1)
	rep := mustBuild(t, b, twoUnitSnap())

	var histWarn bool
	for _, w := range rep.Warnings {
		if strings.Contains(w, "history: append") {
			histWarn = true
		}
	}
	if !histWarn {
		t.Errorf("no history warning in Report.Warnings: %v", rep.Warnings)
	}
	// The counter lands after the report's own metrics snapshot (the append
	// runs last); read it from the builder.
	if got := b.Metrics()[obs.CtrHistoryIOErrors]; got < 1 {
		t.Errorf("%s = %d, want ≥1", obs.CtrHistoryIOErrors, got)
	}
}

// TestChaosWarningsBounded: a filesystem where everything fails must not
// balloon the report — warnings cap plus a dropped-count trailer.
func TestChaosWarningsBounded(t *testing.T) {
	dir := t.TempDir()
	snap := twoUnitSnap()
	for i := 0; i < 40; i++ { // enough units to overflow the 32-warning cap
		name := strings.Repeat("u", i%7+1) + fmt16ish(i) + ".mc"
		snap[name] = []byte(`func pad_` + fmt16ish(i) + `(x int) int { return x; }`)
	}
	ffs := vfs.NewFaultFS(vfs.OS, vfs.WithRules(vfs.Rule{Kind: vfs.FaultError})) // everything fails
	rep := mustBuild(t, chaosBuilder(t, ffs, dir, 1), snap)
	if len(rep.Warnings) > 33 { // 32 + the "and N more" trailer
		t.Fatalf("warnings not bounded: %d entries", len(rep.Warnings))
	}
	last := rep.Warnings[len(rep.Warnings)-1]
	if !strings.Contains(last, "more distinct warnings") {
		t.Fatalf("overflow trailer missing; last warning: %q", last)
	}
}

// fmt16ish renders a small int as letters so it is valid in identifiers.
func fmt16ish(i int) string {
	const alpha = "abcdefghij"
	return string([]byte{alpha[(i/10)%10], alpha[i%10]})
}

// TestChaosSeededSchedules: probabilistic multi-fault storms over the
// concurrent (Workers 2) path. Every seed must uphold the degradation
// invariant, and replaying the same seed must inject the same fault set —
// the property that makes a failing chaos seed reproducible from its seed
// alone.
func TestChaosSeededSchedules(t *testing.T) {
	baseA := statelessDisasm(t, twoUnitSnap())
	baseB := statelessDisasm(t, chaosEditedSnap())
	wantSkips := controlSkips(t)

	for _, seed := range []uint64{1, 7, 42, 1337} {
		seed := seed
		t.Run("seed"+strconv.FormatUint(seed, 10), func(t *testing.T) {
			t.Parallel()
			run := func(dir string) (disA, disB, disB2 string, injected []string) {
				ffs := vfs.NewFaultFS(vfs.OS, chaosCanon(dir),
					vfs.WithSchedule(&vfs.Schedule{Seed: seed, Prob: 0.2, Torn: true}))
				disA, disB, disB2 = chaosSequence(t, ffs, dir, 2)
				for _, c := range ffs.Injected() {
					injected = append(injected, c.String())
				}
				sort.Strings(injected)
				return
			}

			disA, disB, disB2, inj1 := run(t.TempDir())
			if disA != baseA || disB != baseB || disB2 != baseB {
				t.Fatalf("seed %d: faulted build output differs from stateless baseline", seed)
			}

			// Same seed, fresh directory: the injected fault set must replay
			// up to the timing-dependent write/read chunk points (identities
			// on volatile-size files legitimately come and go; everything
			// else must match exactly).
			_, _, _, inj2 := run(t.TempDir())
			stable := func(in []string) []string {
				var out []string
				for _, s := range in {
					if !strings.HasPrefix(s, string(vfs.OpWrite)+":") &&
						!strings.HasPrefix(s, string(vfs.OpRead)+":") {
						out = append(out, s)
					}
				}
				return out
			}
			s1, s2 := stable(inj1), stable(inj2)
			if strings.Join(s1, "\n") != strings.Join(s2, "\n") {
				t.Fatalf("seed %d does not replay:\nrun1: %v\nrun2: %v", seed, s1, s2)
			}
		})
	}

	// Recovery after a storm: heal one stormed directory and verify full
	// skip-rate recovery.
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(vfs.OS, chaosCanon(dir),
		vfs.WithSchedule(&vfs.Schedule{Seed: 99, Prob: 0.3, Torn: true}))
	chaosSequence(t, ffs, dir, 2)
	assertRecovered(t, dir, baseB, wantSkips)
}
