package buildsys_test

// Concurrency correctness: the whole point of the parallel builder is that
// scheduling must be unobservable. These tests pin that down three ways —
// identical linked-program bytes across worker counts, parallel-stateful
// vs serial-stateless equivalence over edit histories, and the bench
// harness's own behavioural check over several workloads. All of them run
// clean under `go test -race`.

import (
	"testing"

	"statefulcc/internal/bench"
	"statefulcc/internal/buildsys"
	"statefulcc/internal/codegen"
	"statefulcc/internal/compiler"
	"statefulcc/internal/project"
	"statefulcc/internal/vm"
	"statefulcc/internal/workload"
)

func testProfile(seed int64) workload.Profile {
	return workload.Profile{
		Name: "buildsys-test", Seed: seed,
		Files: 6, FuncsPerFileMin: 2, FuncsPerFileMax: 5,
		StmtsPerFuncMin: 3, StmtsPerFuncMax: 8,
		GlobalsPerFile: 2, CrossFileCallFrac: 0.5, PrivateFrac: 0.4,
	}
}

// history returns a base snapshot plus a few commits.
func history(t *testing.T, seed int64, commits int) []project.Snapshot {
	t.Helper()
	base := workload.Generate(testProfile(seed))
	h := workload.GenerateHistory(base, seed*13, commits, workload.DefaultCommitOptions())
	return append([]project.Snapshot{base}, h.Commits...)
}

// buildSeq runs a snapshot sequence through one builder, returning the
// disassembled program text (a canonical byte-for-byte rendering) and VM
// behaviour after each build.
func buildSeq(t *testing.T, opts buildsys.Options, seq []project.Snapshot) (progs []string, outs []string, exits []int64) {
	t.Helper()
	b, err := buildsys.NewBuilder(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, snap := range seq {
		rep, err := b.Build(snap)
		if err != nil {
			t.Fatalf("build %d: %v", i, err)
		}
		out, res, err := vm.RunCapture(rep.Program, vm.Config{})
		if err != nil {
			t.Fatalf("build %d: execution: %v", i, err)
		}
		progs = append(progs, codegen.DisassembleProgram(rep.Program))
		outs = append(outs, out)
		exits = append(exits, res.ExitValue)
	}
	return progs, outs, exits
}

// TestWorkerCountDeterminism: Workers ∈ {1,2,8} must produce identical
// linked programs and identical VM behaviour at every step of a history.
func TestWorkerCountDeterminism(t *testing.T) {
	seq := history(t, 31, 4)
	refProgs, refOuts, refExits := buildSeq(t, buildsys.Options{Mode: compiler.ModeStateful, Workers: 1}, seq)
	for _, workers := range []int{2, 8} {
		progs, outs, exits := buildSeq(t, buildsys.Options{Mode: compiler.ModeStateful, Workers: workers}, seq)
		for i := range seq {
			if progs[i] != refProgs[i] {
				t.Fatalf("workers=%d build %d: linked program differs from workers=1", workers, i)
			}
			if outs[i] != refOuts[i] || exits[i] != refExits[i] {
				t.Fatalf("workers=%d build %d: behaviour differs: %q/%d vs %q/%d",
					workers, i, outs[i], exits[i], refOuts[i], refExits[i])
			}
		}
	}
}

// TestParallelStatefulMatchesSerialStateless: the stateful policy on a
// parallel pool must be indistinguishable — program bytes and behaviour —
// from the conventional serial compiler throughout an edit history.
func TestParallelStatefulMatchesSerialStateless(t *testing.T) {
	seq := history(t, 47, 5)
	slProgs, slOuts, slExits := buildSeq(t, buildsys.Options{Mode: compiler.ModeStateless, Workers: 1}, seq)
	sfProgs, sfOuts, sfExits := buildSeq(t, buildsys.Options{Mode: compiler.ModeStateful, Workers: 8}, seq)
	for i := range seq {
		if sfProgs[i] != slProgs[i] {
			t.Fatalf("build %d: parallel stateful program differs from serial stateless", i)
		}
		if sfOuts[i] != slOuts[i] || sfExits[i] != slExits[i] {
			t.Fatalf("build %d: behaviour differs: %q/%d vs %q/%d",
				i, sfOuts[i], sfExits[i], slOuts[i], slExits[i])
		}
	}
}

// TestVerifyParallelBehaviour runs the bench harness's behavioural check
// over several generated workloads.
func TestVerifyParallelBehaviour(t *testing.T) {
	for _, seed := range []int64{3, 17, 59} {
		snap := workload.Generate(testProfile(seed))
		if err := bench.VerifyParallelBehaviour(snap); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestIncrementalAccounting: unchanged units come from the cache, changed
// units recompile, and the union covers the snapshot.
func TestIncrementalAccounting(t *testing.T) {
	seq := history(t, 9, 2)
	b, err := buildsys.NewBuilder(buildsys.Options{Mode: compiler.ModeStateful, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := b.Build(seq[0])
	if err != nil {
		t.Fatal(err)
	}
	if rep.UnitsCompiled != len(seq[0]) || rep.UnitsCached != 0 {
		t.Errorf("cold build: compiled=%d cached=%d want %d/0", rep.UnitsCompiled, rep.UnitsCached, len(seq[0]))
	}
	for i, snap := range seq[1:] {
		changed := project.Diff(seq[i], snap)
		rep, err := b.Build(snap)
		if err != nil {
			t.Fatal(err)
		}
		if rep.UnitsCompiled != len(changed) {
			t.Errorf("build %d: compiled %d units, want %d (%v)", i+1, rep.UnitsCompiled, len(changed), changed)
		}
		if rep.UnitsCompiled+rep.UnitsCached != len(snap) {
			t.Errorf("build %d: accounting %d+%d != %d", i+1, rep.UnitsCompiled, rep.UnitsCached, len(snap))
		}
		for name, ur := range rep.Units {
			if ur.Compiled && ur.CompileNS <= 0 {
				t.Errorf("build %d: compiled unit %s has no compile time", i+1, name)
			}
		}
	}
}

// TestReportStatsMergedAcrossUnits: a cold stateful build must report
// pipeline statistics covering every unit, and Stats is never nil.
func TestReportStatsMergedAcrossUnits(t *testing.T) {
	snap := workload.Generate(testProfile(5))
	b, err := buildsys.NewBuilder(buildsys.Options{Mode: compiler.ModeStateful, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := b.Build(snap)
	if err != nil {
		t.Fatal(err)
	}
	st := rep.Stats()
	if st == nil {
		t.Fatal("Stats returned nil")
	}
	if runs, _, _ := st.Totals(); runs == 0 {
		t.Error("cold build recorded no pass runs")
	}
	// A rebuild of the identical snapshot compiles nothing: stats must be
	// empty but still non-nil.
	rep2, err := b.Build(snap)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Stats() == nil {
		t.Fatal("cached rebuild Stats returned nil")
	}
	if runs, _, _ := rep2.Stats().Totals(); runs != 0 {
		t.Errorf("cached rebuild reports %d pass runs", runs)
	}
}
