package state_test

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"statefulcc/internal/core"
	"statefulcc/internal/passes"
	"statefulcc/internal/state"
	"statefulcc/internal/testutil"
)

// buildState produces a realistic populated state by actually compiling.
func buildState(t *testing.T) *core.UnitState {
	t.Helper()
	d, err := core.NewDriver(core.Options{Policy: core.Stateful})
	if err != nil {
		t.Fatal(err)
	}
	m, err := testutil.BuildModule("unit.mc", `
var g int = 3;
func _helper(x int) int { return x * g; }
func work(n int) int {
    var s int = 0;
    for var i int = 0; i < n; i++ { s += _helper(i); }
    return s;
}
func main() int { return work(5); }`)
	if err != nil {
		t.Fatal(err)
	}
	st, _, err := d.Run(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestRoundTrip(t *testing.T) {
	st := buildState(t)
	var buf bytes.Buffer
	if err := state.Encode(&buf, st); err != nil {
		t.Fatal(err)
	}
	got, err := state.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Unit != st.Unit || got.PipelineHash != st.PipelineHash {
		t.Errorf("header mismatch: %+v vs %+v", got, st)
	}
	checkRecords(t, "module", st.ModuleSlots, st.ModuleSeen, got.ModuleSlots, got.ModuleSeen)
	if len(got.Funcs) != len(st.Funcs) {
		t.Fatalf("func count %d vs %d", len(got.Funcs), len(st.Funcs))
	}
	for name, fs := range st.Funcs {
		gfs := got.Funcs[name]
		if gfs == nil {
			t.Fatalf("missing func %s", name)
		}
		checkRecords(t, name, fs.Slots, fs.Seen, gfs.Slots, gfs.Seen)
	}
}

// checkRecords verifies the semantically meaningful parts of the records
// survive the roundtrip: the format intentionally drops hashes and costs of
// active (changed) records — they can never satisfy a skip — and quantizes
// dormant costs to 256ns.
func checkRecords(t *testing.T, what string, slots []core.Record, seen []bool, gSlots []core.Record, gSeen []bool) {
	t.Helper()
	if len(slots) != len(gSlots) || !reflect.DeepEqual(seen, gSeen) {
		t.Fatalf("%s: slot shape mismatch", what)
	}
	for i := range slots {
		if gSlots[i].Changed != slots[i].Changed {
			t.Errorf("%s slot %d: changed flag lost", what, i)
		}
		if !seen[i] || slots[i].Changed {
			continue
		}
		if gSlots[i].InputHash != slots[i].InputHash {
			t.Errorf("%s slot %d: dormant hash lost", what, i)
		}
		if diff := gSlots[i].CostNS - slots[i].CostNS; diff > 0 || diff < -256 {
			t.Errorf("%s slot %d: cost %d decoded as %d", what, i, slots[i].CostNS, gSlots[i].CostNS)
		}
	}
}

func TestSaveLoad(t *testing.T) {
	st := buildState(t)
	path := filepath.Join(t.TempDir(), "sub", "unit.state")
	if err := state.Save(path, st); err != nil {
		t.Fatal(err)
	}
	got, err := state.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Unit != st.Unit || got.RecordCount() != st.RecordCount() {
		t.Errorf("load mismatch: %v vs %v", got, st)
	}
}

func TestLoadMissingFile(t *testing.T) {
	got, err := state.Load(filepath.Join(t.TempDir(), "nope.state"))
	if err != nil || got != nil {
		t.Errorf("missing file should be (nil, nil), got (%v, %v)", got, err)
	}
}

func TestLoadRejectsCorrupt(t *testing.T) {
	dir := t.TempDir()
	cases := map[string][]byte{
		"garbage":   []byte("this is not a state file at all........."),
		"badmagic":  append([]byte("NOTSTATE"), make([]byte, 64)...),
		"truncated": {'S', 'C', 'C', 'S', 'T', 'A', 'T', 'E', 1, 0},
	}
	for name, content := range cases {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, content, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := state.Load(p); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestLoadRejectsVersionSkew(t *testing.T) {
	st := buildState(t)
	var buf bytes.Buffer
	if err := state.Encode(&buf, st); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[8] = 99 // bump version field
	if _, err := state.Decode(bytes.NewReader(b)); err == nil {
		t.Error("expected version error")
	}
}

func TestEncodeDeterministic(t *testing.T) {
	st := buildState(t)
	var a, b bytes.Buffer
	if err := state.Encode(&a, st); err != nil {
		t.Fatal(err)
	}
	if err := state.Encode(&b, st); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("encoding is nondeterministic")
	}
}

func TestFileSizeMatchesEncoding(t *testing.T) {
	st := buildState(t)
	n, err := state.FileSize(st)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := state.Encode(&buf, st); err != nil {
		t.Fatal(err)
	}
	if n != buf.Len() {
		t.Errorf("FileSize %d != encoded length %d", n, buf.Len())
	}
	// The paper's pitch: state is tiny. ~17 bytes per record plus names;
	// for this 3-function unit it must be well under a few KiB.
	if n > 4096 {
		t.Errorf("state unexpectedly large: %d bytes", n)
	}
}

func TestReloadedStateSkips(t *testing.T) {
	// End-to-end persistence: records written by one driver, reloaded from
	// disk, must produce skips in a fresh process-like context.
	d, err := core.NewDriver(core.Options{Policy: core.Stateful, Pipeline: passes.StandardPipeline})
	if err != nil {
		t.Fatal(err)
	}
	src := `func main() int { var s int = 0; for var i int = 0; i < 3; i++ { s += i; } return s; }`
	m1, err := testutil.BuildModule("u.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	st, _, err := d.Run(m1, nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "u.state")
	if err := state.Save(path, st); err != nil {
		t.Fatal(err)
	}
	st2, err := state.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := testutil.BuildModule("u.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := d.Run(m2, st2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, skipped := stats.Totals(); skipped == 0 {
		t.Error("reloaded state produced no skips")
	}
}
