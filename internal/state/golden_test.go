package state_test

// Golden-file pin of the version-3 on-disk layout. The state format is a
// cross-process, cross-version contract: a byte produced by one build is
// consumed by a later process of a possibly different binary. This test
// freezes the exact bytes so any encoder change — intended or not — shows
// up as a diff against testdata/, and an intended change forces a
// conscious FormatVersion bump plus `go test ./internal/state -update`.

import (
	"bytes"
	"encoding/hex"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"statefulcc/internal/core"
	"statefulcc/internal/state"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenState exercises every shape the format distinguishes: unseen
// slots, seen-changed slots, seen-dormant slots sharing one hash-table
// entry, a zero-slot function, and an empty-but-seen module block. All
// values are normalized the way the encoder stores them (costs in 256ns
// quanta) so the decoded state compares deeply equal.
func goldenState() *core.UnitState {
	return &core.UnitState{
		Unit:         "golden.mc",
		PipelineHash: 0x1122334455667788,
		ModuleSlots: []core.Record{
			{},                                        // unseen
			{InputHash: 0xAABBCCDD, CostNS: 512},      // seen dormant
			{Changed: true},                           // seen changed: no hash, no cost
			{InputHash: 0xAABBCCDD, CostNS: 256},      // shares the hash-table entry
		},
		ModuleSeen: []bool{false, true, true, true},
		Funcs: map[string]*core.FuncState{
			"helper": {
				Slots: []core.Record{
					{InputHash: 0x0102030405060708, CostNS: 0}, // dormant, zero cost
					{InputHash: 0x0102030405060708, CostNS: (1<<63 - 1) &^ 255}, // max quantized EWMA
				},
				Seen: []bool{true, true},
			},
			"zero_slots": {Slots: []core.Record{}, Seen: []bool{}},
		},
	}
}

func TestGoldenFormatV3(t *testing.T) {
	if state.FormatVersion != 3 {
		t.Fatalf("FormatVersion is %d; regenerate the golden file for the new layout "+
			"(go test ./internal/state -update) and rename it accordingly", state.FormatVersion)
	}
	path := filepath.Join("testdata", "unitstate_v3.golden")

	var buf bytes.Buffer
	if err := state.Encode(&buf, goldenState()); err != nil {
		t.Fatal(err)
	}

	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("encoder output differs from the pinned v3 bytes — this breaks "+
			"states written by released binaries; bump FormatVersion if intended\n"+
			"got:\n%s\nwant:\n%s", hex.Dump(buf.Bytes()), hex.Dump(want))
	}

	// The pinned bytes must also decode back to exactly the source state —
	// the decoder half of the contract.
	got, err := state.Decode(bytes.NewReader(want))
	if err != nil {
		t.Fatalf("pinned golden bytes no longer decode: %v", err)
	}
	if !reflect.DeepEqual(got, goldenState()) {
		t.Fatalf("golden bytes decode to a different state:\ngot:  %+v\nwant: %+v",
			got, goldenState())
	}
}
