package state_test

// Golden-file pins of the on-disk layout. The state format is a
// cross-process, cross-version contract: a byte produced by one build is
// consumed by a later process of a possibly different binary. These tests
// freeze the exact bytes so any encoder change — intended or not — shows
// up as a diff against testdata/, and an intended change forces a
// conscious FormatVersion bump plus `go test ./internal/state -update`.
//
// Four pins exist: the current v6 layout (encoder + decoder; v5 zero-copy
// plus the dependency-footprint block), the frozen v5 files from before
// the footprint block (decode-only), the frozen v4 files from the
// pre-length-prefix layout (EncodeV4 is retained, so both encoder halves
// stay pinned), and the frozen v3 file from before the quarantine block.
// The decoder must keep accepting the frozen versions forever (migration
// path for state written by released binaries).

import (
	"bytes"
	"encoding/hex"
	"flag"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"statefulcc/internal/core"
	"statefulcc/internal/footprint"
	"statefulcc/internal/state"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenState exercises every shape the format distinguishes: unseen
// slots, seen-changed slots, seen-dormant slots sharing one hash-table
// entry, a zero-slot function, and an empty-but-seen module block. All
// values are normalized the way the encoder stores them (costs in 256ns
// quanta) so the decoded state compares deeply equal.
func goldenState() *core.UnitState {
	return &core.UnitState{
		Unit:         "golden.mc",
		PipelineHash: 0x1122334455667788,
		ModuleSlots: []core.Record{
			{},                                   // unseen
			{InputHash: 0xAABBCCDD, CostNS: 512}, // seen dormant
			{Changed: true},                      // seen changed: no hash, no cost
			{InputHash: 0xAABBCCDD, CostNS: 256}, // shares the hash-table entry
		},
		ModuleSeen: []bool{false, true, true, true},
		Funcs: map[string]*core.FuncState{
			"helper": {
				Slots: []core.Record{
					{InputHash: 0x0102030405060708, CostNS: 0},                  // dormant, zero cost
					{InputHash: 0x0102030405060708, CostNS: (1<<63 - 1) &^ 255}, // max quantized EWMA
				},
				Seen: []bool{true, true},
			},
			"zero_slots": {Slots: []core.Record{}, Seen: []bool{}},
		},
	}
}

// goldenQuarantinedState adds the v4+ quarantine block shapes: a per-pass
// quarantine with a nonzero clean count.
func goldenQuarantinedState() *core.UnitState {
	st := goldenState()
	st.Quarantine = &core.Quarantine{
		Reason: core.QuarantineUnsound,
		Clean:  2,
		Passes: []string{"dce", "simplify"},
	}
	return st
}

func checkGolden(t *testing.T, name string, st *core.UnitState,
	encode func(io.Writer, *core.UnitState) error) {
	t.Helper()
	path := filepath.Join("testdata", name)

	var buf bytes.Buffer
	if err := encode(&buf, st); err != nil {
		t.Fatal(err)
	}

	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("encoder output differs from the pinned %s bytes — this breaks "+
			"states written by released binaries; bump FormatVersion if intended\n"+
			"got:\n%s\nwant:\n%s", name, hex.Dump(buf.Bytes()), hex.Dump(want))
	}

	// The pinned bytes must also decode back to exactly the source state —
	// the decoder half of the contract.
	got, err := state.Decode(bytes.NewReader(want))
	if err != nil {
		t.Fatalf("pinned golden bytes no longer decode: %v", err)
	}
	if !reflect.DeepEqual(got, st) {
		t.Fatalf("golden bytes decode to a different state:\ngot:  %+v\nwant: %+v", got, st)
	}
}

// goldenFootprintState adds the v6 footprint block: every entry scope
// (invalidating, advisory, link) in canonical order, plus the declared
// hash recorded verbatim.
func goldenFootprintState() *core.UnitState {
	st := goldenState()
	st.Footprint = &footprint.Record{
		DeclaredHash: 0xDEADBEEF12345678,
		Entries: []footprint.Entry{
			{Kind: footprint.KindSource, Name: "golden.mc", Hash: 0x1111},
			{Kind: footprint.KindPipeline, Name: "pipeline", Hash: 0x2222},
			{Kind: footprint.KindFile, Name: "cache/golden-0011223344556677.state", Hash: 0x3333},
			{Kind: footprint.KindCall, Name: "ext_helper", Hash: 2},
			{Kind: footprint.KindGlobal, Name: "g0", Hash: 0x4444},
		},
	}
	return st
}

func TestGoldenFormatV6(t *testing.T) {
	if state.FormatVersion != 6 {
		t.Fatalf("FormatVersion is %d; regenerate the golden files for the new layout "+
			"(go test ./internal/state -update) and rename them accordingly", state.FormatVersion)
	}
	checkGolden(t, "unitstate_v6.golden", goldenState(), state.Encode)
	checkGolden(t, "unitstate_v6_quarantined.golden", goldenQuarantinedState(), state.Encode)
	checkGolden(t, "unitstate_v6_footprint.golden", goldenFootprintState(), state.Encode)
}

// TestGoldenV5Frozen pins the decode side of the v5 layout: the frozen v5
// files (written before the footprint block existed) must keep decoding to
// the same states — with nil footprints — forever. No v5 encoder is
// retained, so these files are never regenerated.
func TestGoldenV5Frozen(t *testing.T) {
	for _, tc := range []struct {
		file string
		st   *core.UnitState
	}{
		{"unitstate_v5.golden", goldenState()},
		{"unitstate_v5_quarantined.golden", goldenQuarantinedState()},
	} {
		want, err := os.ReadFile(filepath.Join("testdata", tc.file))
		if err != nil {
			t.Fatalf("frozen v5 golden file missing: %v", err)
		}
		got, err := state.Decode(bytes.NewReader(want))
		if err != nil {
			t.Fatalf("v5 bytes no longer decode — migration path broken: %v", err)
		}
		if !reflect.DeepEqual(got, tc.st) {
			t.Fatalf("v5 bytes decode to a different state:\ngot:  %+v\nwant: %+v", got, tc.st)
		}
		if got.Footprint != nil {
			t.Fatalf("v5 file decoded with a footprint: %+v", got.Footprint)
		}
	}
}

// TestGoldenV4Frozen pins the previous layout from both ends: EncodeV4
// (retained for layout-comparison benchmarks) must keep producing the
// frozen v4 bytes, and the decoder must keep accepting them forever. The
// files are never regenerated by -update.
func TestGoldenV4Frozen(t *testing.T) {
	for _, tc := range []struct {
		file string
		st   *core.UnitState
	}{
		{"unitstate_v4.golden", goldenState()},
		{"unitstate_v4_quarantined.golden", goldenQuarantinedState()},
	} {
		want, err := os.ReadFile(filepath.Join("testdata", tc.file))
		if err != nil {
			t.Fatalf("frozen v4 golden file missing: %v", err)
		}
		var buf bytes.Buffer
		if err := state.EncodeV4(&buf, tc.st); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("EncodeV4 drifted from the frozen %s bytes\ngot:\n%s\nwant:\n%s",
				tc.file, hex.Dump(buf.Bytes()), hex.Dump(want))
		}
		got, err := state.Decode(bytes.NewReader(want))
		if err != nil {
			t.Fatalf("v4 bytes no longer decode — migration path broken: %v", err)
		}
		if !reflect.DeepEqual(got, tc.st) {
			t.Fatalf("v4 bytes decode to a different state:\ngot:  %+v\nwant: %+v", got, tc.st)
		}
	}
}

// TestDecodeV3Migration pins the migration path: the frozen v3 golden file
// (written by the pre-quarantine encoder) must decode into the same state
// with no quarantine, forever. This file is never regenerated — it is the
// compatibility contract with already-deployed state directories.
func TestDecodeV3Migration(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "unitstate_v3.golden"))
	if err != nil {
		t.Fatalf("frozen v3 golden file missing: %v", err)
	}
	got, err := state.Decode(bytes.NewReader(want))
	if err != nil {
		t.Fatalf("v3 bytes no longer decode — migration path broken: %v", err)
	}
	if !reflect.DeepEqual(got, goldenState()) {
		t.Fatalf("v3 bytes decode to a different state:\ngot:  %+v\nwant: %+v",
			got, goldenState())
	}
	if got.Quarantine != nil {
		t.Fatalf("v3 file decoded with a quarantine: %+v", got.Quarantine)
	}

	// A migrated state re-encodes as the current version and round-trips.
	var buf bytes.Buffer
	if err := state.Encode(&buf, got); err != nil {
		t.Fatal(err)
	}
	again, err := state.Decode(&buf)
	if err != nil {
		t.Fatalf("migrated re-encode does not decode: %v", err)
	}
	if !reflect.DeepEqual(again, got) {
		t.Fatalf("v3→v%d migration round-trip drifted:\ngot:  %+v\nwant: %+v",
			state.FormatVersion, again, got)
	}
}

// TestDecodeEveryPrefix feeds the decoder every strict prefix of the
// golden v6 files (and the frozen v5/v4/v3 ones). A truncated state file —
// the torn-write shape the atomic saver is designed to prevent but a
// hostile filesystem can still produce — must always be rejected, never
// misparsed into a partial state.
func TestDecodeEveryPrefix(t *testing.T) {
	for _, file := range []string{
		"unitstate_v6.golden", "unitstate_v6_quarantined.golden",
		"unitstate_v6_footprint.golden",
		"unitstate_v5.golden", "unitstate_v5_quarantined.golden",
		"unitstate_v4.golden", "unitstate_v4_quarantined.golden",
		"unitstate_v3.golden",
	} {
		data, err := os.ReadFile(filepath.Join("testdata", file))
		if err != nil {
			t.Fatalf("golden file missing: %v", err)
		}
		for n := 0; n < len(data); n++ {
			if st, err := state.Decode(bytes.NewReader(data[:n])); err == nil {
				t.Fatalf("%s truncated to %d/%d bytes decoded without error: %+v",
					file, n, len(data), st)
			}
		}
	}
}
