package state_test

// Golden-file pins of the on-disk layout. The state format is a
// cross-process, cross-version contract: a byte produced by one build is
// consumed by a later process of a possibly different binary. These tests
// freeze the exact bytes so any encoder change — intended or not — shows
// up as a diff against testdata/, and an intended change forces a
// conscious FormatVersion bump plus `go test ./internal/state -update`.
//
// Two pins exist: the current v4 layout (encoder + decoder), and the
// frozen v3 file from before the quarantine block, which the decoder must
// keep accepting forever (migration path for state written by released
// binaries).

import (
	"bytes"
	"encoding/hex"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"statefulcc/internal/core"
	"statefulcc/internal/state"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenState exercises every shape the format distinguishes: unseen
// slots, seen-changed slots, seen-dormant slots sharing one hash-table
// entry, a zero-slot function, and an empty-but-seen module block. All
// values are normalized the way the encoder stores them (costs in 256ns
// quanta) so the decoded state compares deeply equal.
func goldenState() *core.UnitState {
	return &core.UnitState{
		Unit:         "golden.mc",
		PipelineHash: 0x1122334455667788,
		ModuleSlots: []core.Record{
			{},                                   // unseen
			{InputHash: 0xAABBCCDD, CostNS: 512}, // seen dormant
			{Changed: true},                      // seen changed: no hash, no cost
			{InputHash: 0xAABBCCDD, CostNS: 256}, // shares the hash-table entry
		},
		ModuleSeen: []bool{false, true, true, true},
		Funcs: map[string]*core.FuncState{
			"helper": {
				Slots: []core.Record{
					{InputHash: 0x0102030405060708, CostNS: 0},                  // dormant, zero cost
					{InputHash: 0x0102030405060708, CostNS: (1<<63 - 1) &^ 255}, // max quantized EWMA
				},
				Seen: []bool{true, true},
			},
			"zero_slots": {Slots: []core.Record{}, Seen: []bool{}},
		},
	}
}

// goldenQuarantinedState adds the v4 quarantine block shapes: a per-pass
// quarantine with a nonzero clean count.
func goldenQuarantinedState() *core.UnitState {
	st := goldenState()
	st.Quarantine = &core.Quarantine{
		Reason: core.QuarantineUnsound,
		Clean:  2,
		Passes: []string{"dce", "simplify"},
	}
	return st
}

func checkGolden(t *testing.T, name string, st *core.UnitState) {
	t.Helper()
	path := filepath.Join("testdata", name)

	var buf bytes.Buffer
	if err := state.Encode(&buf, st); err != nil {
		t.Fatal(err)
	}

	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("encoder output differs from the pinned v%d bytes — this breaks "+
			"states written by released binaries; bump FormatVersion if intended\n"+
			"got:\n%s\nwant:\n%s", state.FormatVersion, hex.Dump(buf.Bytes()), hex.Dump(want))
	}

	// The pinned bytes must also decode back to exactly the source state —
	// the decoder half of the contract.
	got, err := state.Decode(bytes.NewReader(want))
	if err != nil {
		t.Fatalf("pinned golden bytes no longer decode: %v", err)
	}
	if !reflect.DeepEqual(got, st) {
		t.Fatalf("golden bytes decode to a different state:\ngot:  %+v\nwant: %+v", got, st)
	}
}

func TestGoldenFormatV4(t *testing.T) {
	if state.FormatVersion != 4 {
		t.Fatalf("FormatVersion is %d; regenerate the golden files for the new layout "+
			"(go test ./internal/state -update) and rename them accordingly", state.FormatVersion)
	}
	checkGolden(t, "unitstate_v4.golden", goldenState())
	checkGolden(t, "unitstate_v4_quarantined.golden", goldenQuarantinedState())
}

// TestDecodeV3Migration pins the migration path: the frozen v3 golden file
// (written by the pre-quarantine encoder) must decode into the same state
// with no quarantine, forever. This file is never regenerated — it is the
// compatibility contract with already-deployed state directories.
func TestDecodeV3Migration(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "unitstate_v3.golden"))
	if err != nil {
		t.Fatalf("frozen v3 golden file missing: %v", err)
	}
	got, err := state.Decode(bytes.NewReader(want))
	if err != nil {
		t.Fatalf("v3 bytes no longer decode — migration path broken: %v", err)
	}
	if !reflect.DeepEqual(got, goldenState()) {
		t.Fatalf("v3 bytes decode to a different state:\ngot:  %+v\nwant: %+v",
			got, goldenState())
	}
	if got.Quarantine != nil {
		t.Fatalf("v3 file decoded with a quarantine: %+v", got.Quarantine)
	}

	// A migrated state re-encodes as v4 and round-trips.
	var buf bytes.Buffer
	if err := state.Encode(&buf, got); err != nil {
		t.Fatal(err)
	}
	again, err := state.Decode(&buf)
	if err != nil {
		t.Fatalf("migrated re-encode does not decode: %v", err)
	}
	if !reflect.DeepEqual(again, got) {
		t.Fatalf("v3→v4 migration round-trip drifted:\ngot:  %+v\nwant: %+v", again, got)
	}
}
