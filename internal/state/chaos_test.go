package state_test

// State-layer chaos suite: walk every injectable I/O fault point of a
// Save-over-existing-state + Load workload and prove the atomic-write
// contract under all of them — the published state file only ever holds
// the complete old bytes or the complete new bytes (a faulted save never
// publishes a torn file), and the loader either returns one of the two
// valid states or an error the callers treat as a cold start. The fault
// points come from recording a clean run, not from a hand-kept list.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"statefulcc/internal/core"
	"statefulcc/internal/state"
	"statefulcc/internal/testutil"
	"statefulcc/internal/vfs"
	"statefulcc/internal/vfs/chaostest"
)

// buildStateFrom compiles src into a populated dormancy state.
func buildStateFrom(t *testing.T, src string) *core.UnitState {
	t.Helper()
	d, err := core.NewDriver(core.Options{Policy: core.Stateful})
	if err != nil {
		t.Fatal(err)
	}
	m, err := testutil.BuildModule("unit.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	st, _, err := d.Run(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// chaosStates builds two distinct valid states plus their canonical
// encodings.
func chaosStates(t *testing.T) (stOld, stNew *core.UnitState, encOld, encNew []byte) {
	t.Helper()
	stOld = buildStateFrom(t, `func main() int { return 1; }`)
	stNew = buildStateFrom(t, `
func helper(x int) int { return x + 3; }
func main() int { return helper(4); }`)
	var a, b bytes.Buffer
	if err := state.Encode(&a, stOld); err != nil {
		t.Fatal(err)
	}
	if err := state.Encode(&b, stNew); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("test states encode identically; chaos invariant would be vacuous")
	}
	return stOld, stNew, a.Bytes(), b.Bytes()
}

// TestSaveSyncsBeforeRename pins the power-loss fix: the atomic writer
// must fsync the temp file before renaming it over the state file.
func TestSaveSyncsBeforeRename(t *testing.T) {
	st := buildStateFrom(t, `func main() int { return 7; }`)
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(vfs.OS, vfs.WithCanon(chaostest.Canon(dir, state.TempPattern)))
	if err := state.SaveFS(ffs, filepath.Join(dir, "unit.state"), st); err != nil {
		t.Fatal(err)
	}
	syncAt, renameAt := -1, -1
	for i, c := range ffs.Calls() {
		switch c.Op {
		case vfs.OpSync:
			if syncAt < 0 {
				syncAt = i
			}
		case vfs.OpRename:
			if renameAt < 0 {
				renameAt = i
			}
		}
	}
	if syncAt < 0 {
		t.Fatal("Save never syncs the temp file: a power loss can publish an empty state file")
	}
	if renameAt < 0 {
		t.Fatal("Save never renamed (atomic publish missing)")
	}
	if syncAt > renameAt {
		t.Fatalf("Sync (call %d) happens after Rename (call %d); must be before", syncAt, renameAt)
	}
}

// TestChaosSaveLoad is the fault-point walk.
func TestChaosSaveLoad(t *testing.T) {
	stOld, stNew, encOld, encNew := chaosStates(t)

	// The workload under test: overwrite existing state, then read it back.
	workload := func(fsys vfs.FS, path string) {
		_ = state.SaveFS(fsys, path, stNew) // may fail under fault: that is the point
		_, _ = state.LoadFS(fsys, path)
	}
	seed := func(t *testing.T, path string) {
		t.Helper()
		if err := state.SaveFS(nil, path, stOld); err != nil {
			t.Fatal(err)
		}
	}

	// Record a clean run to enumerate the fault points.
	recDir := t.TempDir()
	recPath := filepath.Join(recDir, "unit.state")
	seed(t, recPath)
	rec := vfs.NewFaultFS(vfs.OS, vfs.WithCanon(chaostest.Canon(recDir, state.TempPattern)))
	workload(rec, recPath)
	points := chaostest.Points(rec.Calls())
	if len(points) < 8 {
		t.Fatalf("recorded only %d fault points; the seam has shrunk: %v", len(points), points)
	}
	cov := chaostest.OpsCovered(points)
	for _, op := range []vfs.Op{vfs.OpCreateTemp, vfs.OpWrite, vfs.OpSync, vfs.OpClose, vfs.OpRename, vfs.OpOpen, vfs.OpRead} {
		if cov[op] == 0 {
			t.Fatalf("workload never performs %s; recording is not covering the save/load path (%v)", op, cov)
		}
	}

	for _, p := range points {
		kinds := []vfs.Fault{vfs.FaultError, vfs.FaultCrash}
		if p.Op == vfs.OpWrite {
			kinds = append(kinds, vfs.FaultTorn)
		}
		for _, kind := range kinds {
			p, kind := p, kind
			t.Run(chaostest.Name(p, kind), func(t *testing.T) {
				dir := t.TempDir()
				path := filepath.Join(dir, "unit.state")
				seed(t, path)
				ffs := vfs.NewFaultFS(vfs.OS,
					vfs.WithCanon(chaostest.Canon(dir, state.TempPattern)),
					vfs.WithRules(chaostest.RuleFor(p, kind)))
				workload(ffs, path)
				chaostest.AssertFired(t, ffs, p)

				// Invariant 1: the published file is exactly the old or the
				// new encoding — an atomic writer never leaves a third thing.
				raw, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("state file vanished under a save fault: %v", err)
				}
				isOld, isNew := bytes.Equal(raw, encOld), bytes.Equal(raw, encNew)
				if !isOld && !isNew {
					t.Fatalf("state file holds %d bytes that are neither the old nor the new encoding", len(raw))
				}

				// Invariant 2: a clean load returns the matching valid state.
				got, err := state.LoadFS(nil, path)
				if err != nil || got == nil {
					t.Fatalf("clean load of intact file failed: %v", err)
				}
				want := stOld
				if isNew {
					want = stNew
				}
				if got.Unit != want.Unit || got.RecordCount() != want.RecordCount() {
					t.Fatalf("loaded state does not match the on-disk encoding's source state")
				}

				// Invariant 3: recovery — the next clean save fully heals.
				if err := state.SaveFS(nil, path, stNew); err != nil {
					t.Fatalf("clean save after fault failed: %v", err)
				}
				raw, err = os.ReadFile(path)
				if err != nil || !bytes.Equal(raw, encNew) {
					t.Fatalf("recovery save did not publish the new state: %v", err)
				}
			})
		}
	}
}

// TestChaosLoadNeverWrongState: torn on-disk prefixes of a valid file
// (every length) must load as an error or reject — never decode into a
// state that differs from the file's true source. This is the
// crash-mid-write spectrum the atomic writer is supposed to make
// impossible at the publish path; the loader must still be safe if a
// non-atomic writer (or a failing disk) produces one.
func TestChaosLoadNeverWrongState(t *testing.T) {
	_, stNew, _, encNew := chaosStates(t)
	dir := t.TempDir()
	for n := 0; n < len(encNew); n += 7 {
		path := filepath.Join(dir, "trunc.state")
		if err := os.WriteFile(path, encNew[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := state.LoadFS(nil, path)
		if err == nil {
			t.Fatalf("truncation to %d bytes decoded without error (%v)", n, got)
		}
	}
	// The full file still loads.
	path := filepath.Join(dir, "full.state")
	if err := os.WriteFile(path, encNew, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := state.LoadFS(nil, path)
	if err != nil || got == nil || got.RecordCount() != stNew.RecordCount() {
		t.Fatalf("full encoding failed to load: %v", err)
	}
}
