package state_test

// Native fuzz target for the state decoder — the one parser in the system
// that consumes attacker-grade input (a state directory is plain files;
// anything can be in them). Properties:
//
//  1. Decode never panics and never over-allocates, no matter the bytes:
//     every slice it grows is bounded by the bytes actually present, not
//     by counts declared in the header. This covers both decoders — the
//     zero-copy v5 cursor and the legacy v3/v4 streaming parser.
//  2. Anything Decode accepts is canonical: re-encoding the decoded state
//     succeeds, FileSize agrees with the re-encoded length, and decoding
//     the re-encoding reproduces the state exactly (older versions
//     migrate to the current layout in the process).
//
// Run with: go test -fuzz FuzzStateDecode ./internal/state

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"

	"statefulcc/internal/core"
	"statefulcc/internal/footprint"
	"statefulcc/internal/state"
)

// fuzzSeedStates are hand-built states spanning the format's shapes:
// empty, module-only, shared dormant hashes, changed and unseen slots,
// zero-slot functions.
func fuzzSeedStates() []*core.UnitState {
	return []*core.UnitState{
		{
			Unit:        "empty.mc",
			Funcs:       map[string]*core.FuncState{},
			ModuleSlots: []core.Record{},
			ModuleSeen:  []bool{},
		},
		{
			Unit:         "mod.mc",
			PipelineHash: 0xDEADBEEF,
			Funcs:        map[string]*core.FuncState{},
			ModuleSlots:  []core.Record{{InputHash: 7, CostNS: 256}, {Changed: true}},
			ModuleSeen:   []bool{true, true},
		},
		{
			Unit:         "funcs.mc",
			PipelineHash: 1,
			ModuleSlots:  []core.Record{{}},
			ModuleSeen:   []bool{false},
			Funcs: map[string]*core.FuncState{
				"shared": {
					Slots: []core.Record{
						{InputHash: 0xAB, CostNS: 512},
						{InputHash: 0xAB, CostNS: 512},
						{InputHash: 0xCD, CostNS: 0},
					},
					Seen: []bool{true, true, true},
				},
				"zero": {Slots: []core.Record{}, Seen: []bool{}},
			},
		},
		{
			Unit:        "fp.mc",
			Funcs:       map[string]*core.FuncState{},
			ModuleSlots: []core.Record{},
			ModuleSeen:  []bool{},
			Footprint: &footprint.Record{
				DeclaredHash: 0x0123456789ABCDEF,
				Entries: []footprint.Entry{
					{Kind: footprint.KindSource, Name: "fp.mc", Hash: 1},
					{Kind: footprint.KindPipeline, Name: "pipeline", Hash: 2},
					{Kind: footprint.KindFile, Name: "cache/fp.state", Hash: 3},
					{Kind: footprint.KindCall, Name: "callee", Hash: 2},
				},
			},
		},
	}
}

func FuzzStateDecode(f *testing.F) {
	// Seed both the current zero-copy layout and the frozen v4 layout so
	// the fuzzer mutates structure in both decoders from the start.
	for _, st := range fuzzSeedStates() {
		for _, enc := range []func(*bytes.Buffer, *core.UnitState) error{
			func(b *bytes.Buffer, st *core.UnitState) error { return state.Encode(b, st) },
			func(b *bytes.Buffer, st *core.UnitState) error { return state.EncodeV4(b, st) },
		} {
			var buf bytes.Buffer
			if err := enc(&buf, st); err != nil {
				f.Fatal(err)
			}
			data := buf.Bytes()
			f.Add(append([]byte(nil), data...))
			// Truncations steer the fuzzer at every mid-structure boundary.
			for _, n := range []int{0, 4, 8, 12, len(data) / 2, len(data) - 1} {
				if n <= len(data) {
					f.Add(append([]byte(nil), data[:n]...))
				}
			}
		}
	}
	// Adversarial headers: valid magic/version, then huge declared counts
	// with no bytes behind them — the over-allocation shape — for every
	// accepted version.
	for _, v := range []uint32{3, 4, state.FormatVersion} {
		hdr := []byte("SCCSTATE")
		hdr = binary.LittleEndian.AppendUint32(hdr, v)
		hdr = binary.LittleEndian.AppendUint64(hdr, 42)    // pipeline hash
		hdr = binary.LittleEndian.AppendUint32(hdr, 1<<19) // huge unit-name length
		f.Add(append([]byte(nil), hdr...))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := state.Decode(bytes.NewReader(data))
		if err != nil {
			if st != nil {
				t.Fatal("Decode returned both a state and an error")
			}
			return
		}
		if st == nil {
			t.Fatal("Decode returned neither state nor error")
		}

		// DecodeBytes is the same parser without the reader indirection;
		// it must agree byte-for-byte (the zero-copy load path).
		st0, err := state.DecodeBytes(append([]byte(nil), data...))
		if err != nil {
			t.Fatalf("DecodeBytes rejects what Decode accepted: %v", err)
		}
		if !reflect.DeepEqual(st, st0) {
			t.Fatalf("Decode and DecodeBytes disagree:\nreader: %+v\nbytes:  %+v", st, st0)
		}

		// Accepted input must round-trip canonically.
		var buf bytes.Buffer
		if err := state.Encode(&buf, st); err != nil {
			t.Fatalf("re-encoding a decoded state failed: %v", err)
		}
		n, err := state.FileSize(st)
		if err != nil {
			t.Fatalf("FileSize of a decoded state failed: %v", err)
		}
		if n != buf.Len() {
			t.Fatalf("FileSize %d disagrees with encoded length %d", n, buf.Len())
		}
		st2, err := state.Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("decoding a re-encoded state failed: %v", err)
		}
		if !reflect.DeepEqual(st, st2) {
			t.Fatalf("re-encode/decode drifted:\nfirst:  %+v\nsecond: %+v", st, st2)
		}
	})
}
