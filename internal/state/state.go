// Package state persists the stateful compiler's dormancy records to disk.
//
// The format is a compact little-endian binary layout with a magic/version
// header; writes are atomic (temp file + fsync + rename) so a crashed
// build or power loss never publishes a truncated state file — a corrupt
// or stale file is simply discarded by the loader and the next build runs
// cold, which is always safe because the records are a pure optimization.
// That degradation guarantee is proven, not asserted: all I/O goes through
// the internal/vfs seam (SaveFS/LoadFS), and the chaos suites walk every
// injectable fault point (docs/ROBUSTNESS.md).
//
// Layout (version 5). Two observations keep the state tiny, mirroring the
// paper's pitch:
//
//   - only *dormant* records can ever satisfy a skip, so records of active
//     passes need no fingerprint at all — just a flags byte; and
//
//   - a run of consecutive dormant passes shares one input fingerprint, so
//     the dormant hashes are stored once in a small distinct-hash table and
//     referenced by varint index.
//
// Costs are EWMA pass times quantized to 256ns units (they only feed
// estimated-savings reporting).
//
//	magic "SCCSTATE" | u32 version | u64 pipelineHash | string unit
//	quarantineBlock
//	u32 recLen | recordBlock(module slots)                (v5+: length prefix)
//	u32 nFuncs | nFuncs × ( string name, u32 recLen, recordBlock(slots) )
//	footprintBlock                                        (v6+)
//
//	quarantineBlock: u8 present [, string reason, uvarint clean,
//	                 uvarint nPasses, nPasses × string ]
//
//	footprintBlock: u8 present [, u32 len, footprint binary encoding
//	                (internal/footprint, self-versioned canonical codec) ]
//
//	recordBlock: uvarint nSlots | uvarint nHashes | nHashes × u64 |
//	             nSlots × ( u8 flags [, uvarint hashIdx, uvarint cost256] )
//
// flags: bit0 = changed, bit1 = seen. hashIdx/cost follow only for seen
// dormant (changed=0) slots.
//
// Version 5 introduced the zero-copy layout: the loader reads the whole
// file into one buffer and DecodeBytes slices it in place — strings (unit
// name, function names, quarantine reasons) are *references into the
// buffer* (unsafe.String), never copies, and every record block carries a
// u32 byte length so a reader can locate any function's records without
// parsing the ones before it. The returned UnitState therefore aliases the
// input buffer; callers must not mutate it (LoadFS always hands
// DecodeBytes a fresh private buffer). Version 6 appends the optional
// dependency-footprint block (the always-correct-mode ground truth,
// internal/footprint) after the function table; everything before it is
// unchanged, and footprint entry names are private copies, not views.
//
// Version 3 files (no quarantineBlock), version 4 files (no record length
// prefixes, copied strings), and version 5 files (no footprintBlock) still
// decode: the loader accepts all four versions and migrates older ones
// transparently, with a nil footprint where the file predates v6. The next
// save rewrites the file as v6. EncodeV4 is retained so benchmarks can
// compare the layouts and the frozen v4 golden pins stay reproducible.
package state

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"unsafe"

	"statefulcc/internal/core"
	"statefulcc/internal/footprint"
	"statefulcc/internal/vfs"
)

var magic = [8]byte{'S', 'C', 'C', 'S', 'T', 'A', 'T', 'E'}

// FormatVersion is the on-disk layout version the encoder writes (v6: the
// v5 zero-copy layout plus the trailing dependency-footprint block).
const FormatVersion = 6

// minFormatVersion is the oldest layout the decoder still accepts (v3,
// which predates the quarantine block).
const minFormatVersion = 3

// TempPattern is the glob the atomic writer's in-flight temp files match.
// A crash between temp creation and rename orphans one; owners of a state
// directory may sweep matches from a single-writer context (the files are
// never read back, so removal is always safe).
const TempPattern = ".state-*"

// Save writes the unit state to path atomically via the real filesystem.
func Save(path string, st *core.UnitState) error {
	return SaveFS(vfs.OS, path, st)
}

// SaveFS writes the unit state to path atomically through fsys (nil means
// the real filesystem): encode to a temp file, fsync it, then rename. The
// Sync matters — without it a power loss after the rename could publish
// an empty or truncated file; with it, either the old state or the
// complete new state is on disk.
func SaveFS(fsys vfs.FS, path string, st *core.UnitState) error {
	fsys = vfs.Default(fsys)
	if err := fsys.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("state: %w", err)
	}
	tmp, err := fsys.CreateTemp(filepath.Dir(path), TempPattern)
	if err != nil {
		return fmt.Errorf("state: %w", err)
	}
	defer fsys.Remove(tmp.Name())

	w := bufio.NewWriter(tmp)
	if err := Encode(w, st); err != nil {
		tmp.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("state: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("state: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("state: %w", err)
	}
	if err := fsys.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("state: %w", err)
	}
	return nil
}

// Load reads a unit state from the real filesystem; a missing file
// returns (nil, nil) and any malformed file returns an error the caller
// should treat as "run cold".
func Load(path string) (*core.UnitState, error) {
	return LoadFS(vfs.OS, path)
}

// LoadFS is Load through an injectable filesystem (nil means the real
// one). The whole file is read into one private buffer and decoded in
// place — the zero-copy path for v5 files, a plain parse for older
// versions. Going through fsys.Open/Read (rather than mmap) keeps every
// byte of the load path under the fault-injection seam.
func LoadFS(fsys vfs.FS, path string) (*core.UnitState, error) {
	f, err := vfs.Default(fsys).Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("state: %w", err)
	}
	defer f.Close()
	buf, err := io.ReadAll(f)
	if err != nil {
		return nil, fmt.Errorf("state: %w", err)
	}
	return DecodeBytes(buf)
}

// Encode streams the state in the current (v5) binary format. Functions
// are written in name order so the output is deterministic.
func Encode(w io.Writer, st *core.UnitState) error {
	e := &encoder{w: w}
	e.bytes(magic[:])
	e.u32(FormatVersion)
	e.u64(st.PipelineHash)
	e.str(st.Unit)

	e.quarantineBlock(st.Quarantine)

	// Record blocks are length-prefixed in v5 so a reader can slice its way
	// to any function without parsing the blocks before it. The block is
	// staged in a scratch buffer to learn its length; the buffer is reused
	// across functions.
	var scratch bytes.Buffer
	e.sizedRecordBlock(&scratch, st.ModuleSlots, st.ModuleSeen)

	names := make([]string, 0, len(st.Funcs))
	for name := range st.Funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	e.u32(uint32(len(names)))
	for _, name := range names {
		fs := st.Funcs[name]
		e.str(name)
		e.sizedRecordBlock(&scratch, fs.Slots, fs.Seen)
	}
	e.footprintBlock(st.Footprint)
	return e.err
}

// footprintBlock writes the optional dependency footprint (v6+) as a
// length-prefixed embedding of the footprint package's own canonical
// encoding.
func (e *encoder) footprintBlock(fp *footprint.Record) {
	if fp == nil {
		e.bytes([]byte{0})
		return
	}
	e.bytes([]byte{1})
	body := fp.AppendBinary(nil)
	e.u32(uint32(len(body)))
	e.bytes(body)
}

func (d *bdec) footprintBlock() *footprint.Record {
	fb := d.byte()
	if d.err != nil || fb == 0 {
		return nil
	}
	if fb != 1 {
		d.err = fmt.Errorf("bad footprint marker %d", fb)
		return nil
	}
	n := d.u32()
	b := d.take(int(n))
	if d.err != nil {
		return nil
	}
	fp, err := footprint.DecodeBinary(b)
	if err != nil {
		d.err = err
		return nil
	}
	return fp
}

// sizedRecordBlock writes a u32 byte-length prefix followed by the record
// block, staging it in scratch to measure it.
func (e *encoder) sizedRecordBlock(scratch *bytes.Buffer, slots []core.Record, seen []bool) {
	if e.err != nil {
		return
	}
	scratch.Reset()
	sub := &encoder{w: scratch}
	sub.recordBlock(slots, seen)
	if sub.err != nil {
		e.err = sub.err
		return
	}
	e.u32(uint32(scratch.Len()))
	e.bytes(scratch.Bytes())
}

// EncodeV4 streams the state in the previous (v4) layout: no record
// length prefixes. Retained for the frozen v4 golden pins and for
// benchmarks that compare the layouts' encode/decode cost; new state is
// always written by Encode.
func EncodeV4(w io.Writer, st *core.UnitState) error {
	e := &encoder{w: w}
	e.bytes(magic[:])
	e.u32(4)
	e.u64(st.PipelineHash)
	e.str(st.Unit)

	e.quarantineBlock(st.Quarantine)
	e.recordBlock(st.ModuleSlots, st.ModuleSeen)

	names := make([]string, 0, len(st.Funcs))
	for name := range st.Funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	e.u32(uint32(len(names)))
	for _, name := range names {
		fs := st.Funcs[name]
		e.str(name)
		e.recordBlock(fs.Slots, fs.Seen)
	}
	return e.err
}

// quarantineBlock writes the optional quarantine marker (v4+).
func (e *encoder) quarantineBlock(q *core.Quarantine) {
	if q == nil {
		e.bytes([]byte{0})
		return
	}
	e.bytes([]byte{1})
	e.str(q.Reason)
	e.uv(uint64(q.Clean))
	e.uv(uint64(len(q.Passes)))
	for _, p := range q.Passes {
		e.str(p)
	}
}

func (d *decoder) quarantineBlock() *core.Quarantine {
	var fb [1]byte
	d.bytes(fb[:])
	if d.err != nil || fb[0] == 0 {
		return nil
	}
	if d.err == nil && fb[0] != 1 {
		d.err = fmt.Errorf("bad quarantine marker %d", fb[0])
		return nil
	}
	q := &core.Quarantine{Reason: d.str()}
	q.Clean = int(d.uv())
	n := d.uv()
	if d.err == nil && n > 1<<12 {
		d.err = fmt.Errorf("implausible quarantined-pass count %d", n)
	}
	for i := uint64(0); i < n && d.err == nil; i++ {
		q.Passes = append(q.Passes, d.str())
	}
	if d.err != nil {
		return nil
	}
	return q
}

// recordBlock writes slot records with the distinct-hash table compression.
// Only seen dormant records carry a hash and cost.
func (e *encoder) recordBlock(slots []core.Record, seen []bool) {
	e.uv(uint64(len(slots)))
	var hashes []uint64
	idx := make(map[uint64]int)
	for i, r := range slots {
		if !seen[i] || r.Changed {
			continue
		}
		if _, ok := idx[r.InputHash]; !ok {
			idx[r.InputHash] = len(hashes)
			hashes = append(hashes, r.InputHash)
		}
	}
	e.uv(uint64(len(hashes)))
	for _, h := range hashes {
		e.u64(h)
	}
	for i, r := range slots {
		var flags byte
		if r.Changed {
			flags |= 1
		}
		if seen[i] {
			flags |= 2
		}
		e.bytes([]byte{flags})
		if seen[i] && !r.Changed {
			e.uv(uint64(idx[r.InputHash]))
			e.uv(uint64(r.CostNS) >> 8)
		}
	}
}

func (d *decoder) recordBlock() ([]core.Record, []bool) {
	n := d.uv()
	if d.err == nil && n > 1<<16 {
		d.err = fmt.Errorf("implausible slot count %d", n)
	}
	if d.err != nil {
		return nil, nil
	}
	nHashes := d.uv()
	if d.err == nil && nHashes > n {
		d.err = fmt.Errorf("hash table larger than slot count")
	}
	if d.err != nil {
		return nil, nil
	}
	// Counts are attacker-controlled (uvarints from the file), so
	// allocations grow with the bytes actually present instead of
	// trusting the declared sizes — a crafted header cannot force a large
	// up-front allocation.
	hashes := make([]uint64, 0, min(nHashes, 64))
	for i := uint64(0); i < nHashes; i++ {
		h := d.u64()
		if d.err != nil {
			return nil, nil
		}
		hashes = append(hashes, h)
	}
	slots := make([]core.Record, 0, min(n, 256))
	seen := make([]bool, 0, min(n, 256))
	for i := uint64(0); i < n; i++ {
		var fb [1]byte
		d.bytes(fb[:])
		if d.err != nil {
			return nil, nil
		}
		var r core.Record
		r.Changed = fb[0]&1 != 0
		sn := fb[0]&2 != 0
		if sn && !r.Changed {
			hi := d.uv()
			if d.err == nil && hi >= uint64(len(hashes)) {
				d.err = fmt.Errorf("hash index out of range")
			}
			if d.err != nil {
				return nil, nil
			}
			r.InputHash = hashes[hi]
			r.CostNS = int64(d.uv()) << 8
			if d.err != nil {
				return nil, nil
			}
		}
		slots = append(slots, r)
		seen = append(seen, sn)
	}
	return slots, seen
}

// Decode parses the binary format. The reader is drained into one buffer
// and handed to DecodeBytes, so v5 inputs decode zero-copy.
func Decode(r io.Reader) (*core.UnitState, error) {
	buf, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("state: %w", err)
	}
	return DecodeBytes(buf)
}

// DecodeBytes parses a state file held in memory. For v5 input the decode
// is zero-copy: all strings in the returned state are unsafe.String views
// into buf, so the caller must not mutate buf for the lifetime of the
// state. Older versions (v3, v4) are parsed by the streaming decoder and
// migrated; their strings are private copies.
func DecodeBytes(buf []byte) (*core.UnitState, error) {
	if len(buf) < 12 {
		return nil, fmt.Errorf("state: %w", io.ErrUnexpectedEOF)
	}
	if !bytes.Equal(buf[:8], magic[:]) {
		return nil, fmt.Errorf("state: bad magic")
	}
	v := binary.LittleEndian.Uint32(buf[8:12])
	if v < minFormatVersion || v > FormatVersion {
		return nil, fmt.Errorf("state: unsupported version %d", v)
	}
	if v < 5 {
		return decodeStream(bytes.NewReader(buf))
	}
	return decodeV5(buf, v)
}

// decodeV5 is the zero-copy parser for v5 and v6: a cursor over buf whose
// strings alias the buffer and whose record blocks are located via their
// length prefixes. Every declared length is checked against the bytes
// actually present before use, so no count in the file can force an
// allocation or an out-of-range slice. v6 adds the trailing footprint
// block; a v5 file simply has none.
func decodeV5(buf []byte, v uint32) (*core.UnitState, error) {
	d := &bdec{buf: buf, off: 12} // past magic + version
	st := &core.UnitState{Funcs: make(map[string]*core.FuncState)}
	st.PipelineHash = d.u64()
	st.Unit = d.str()

	st.Quarantine = d.quarantineBlock()
	st.ModuleSlots, st.ModuleSeen = d.sizedRecordBlock()

	nFuncs := d.u32()
	if d.err == nil && uint64(nFuncs) > uint64(len(buf)) {
		// Each function costs at least one byte; anything larger is a lie.
		d.err = fmt.Errorf("implausible function count %d", nFuncs)
	}
	for i := uint32(0); i < nFuncs && d.err == nil; i++ {
		name := d.str()
		slots, seen := d.sizedRecordBlock()
		if d.err != nil {
			break
		}
		st.Funcs[name] = &core.FuncState{Slots: slots, Seen: seen}
	}
	if v >= 6 && d.err == nil {
		st.Footprint = d.footprintBlock()
	}
	if d.err == nil && d.off != len(buf) {
		d.err = fmt.Errorf("%d trailing bytes", len(buf)-d.off)
	}
	if d.err != nil {
		return nil, fmt.Errorf("state: %w", d.err)
	}
	return st, nil
}

// bdec is the v5 offset cursor. It reuses the streaming decoder's
// recordBlock/quarantineBlock grammar by exposing the same primitive
// methods, plus zero-copy strings and length-prefixed block slicing.
type bdec struct {
	buf []byte
	off int
	err error
}

func (d *bdec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > len(d.buf)-d.off {
		d.err = io.ErrUnexpectedEOF
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *bdec) u32() uint32 {
	b := d.take(4)
	if d.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *bdec) u64() uint64 {
	b := d.take(8)
	if d.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *bdec) byte() byte {
	b := d.take(1)
	if d.err != nil {
		return 0
	}
	return b[0]
}

func (d *bdec) uv() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.err = io.ErrUnexpectedEOF
		return 0
	}
	d.off += n
	return v
}

// str returns a string aliasing the buffer — the zero-copy read. Length
// is validated against the remaining bytes, so no allocation ever happens
// here regardless of what the file declares.
func (d *bdec) str() string {
	n := d.u32()
	b := d.take(int(n))
	if d.err != nil || n == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// sizedRecordBlock slices a length-prefixed record block out of the
// buffer and parses it. The parse must consume the block exactly — a
// mismatch means a corrupt or non-canonical file.
func (d *bdec) sizedRecordBlock() ([]core.Record, []bool) {
	n := d.u32()
	b := d.take(int(n))
	if d.err != nil {
		return nil, nil
	}
	sub := &bdec{buf: b}
	slots, seen := sub.recordBlock()
	if sub.err != nil {
		d.err = sub.err
		return nil, nil
	}
	if sub.off != len(b) {
		d.err = fmt.Errorf("record block length %d does not match content (%d parsed)", n, sub.off)
		return nil, nil
	}
	return slots, seen
}

func (d *bdec) quarantineBlock() *core.Quarantine {
	fb := d.byte()
	if d.err != nil || fb == 0 {
		return nil
	}
	if fb != 1 {
		d.err = fmt.Errorf("bad quarantine marker %d", fb)
		return nil
	}
	q := &core.Quarantine{Reason: d.str()}
	q.Clean = int(d.uv())
	n := d.uv()
	if d.err == nil && n > 1<<12 {
		d.err = fmt.Errorf("implausible quarantined-pass count %d", n)
	}
	for i := uint64(0); i < n && d.err == nil; i++ {
		q.Passes = append(q.Passes, d.str())
	}
	if d.err != nil {
		return nil
	}
	return q
}

func (d *bdec) recordBlock() ([]core.Record, []bool) {
	n := d.uv()
	if d.err == nil && n > 1<<16 {
		d.err = fmt.Errorf("implausible slot count %d", n)
	}
	if d.err != nil {
		return nil, nil
	}
	nHashes := d.uv()
	if d.err == nil && nHashes > n {
		d.err = fmt.Errorf("hash table larger than slot count")
	}
	// With the whole block in hand the declared counts are validated
	// against the bytes present before anything is allocated: exact-size
	// slices, no growth heuristics needed.
	rem := uint64(len(d.buf) - d.off)
	if d.err == nil && nHashes*8 > rem {
		d.err = io.ErrUnexpectedEOF
	}
	if d.err == nil && n > rem-nHashes*8 {
		// Each slot costs at least its flags byte.
		d.err = io.ErrUnexpectedEOF
	}
	if d.err != nil {
		return nil, nil
	}
	hashes := make([]uint64, nHashes)
	for i := range hashes {
		hashes[i] = d.u64()
	}
	if d.err != nil {
		return nil, nil
	}
	slots := make([]core.Record, 0, n)
	seen := make([]bool, 0, n)
	for i := uint64(0); i < n; i++ {
		fb := d.byte()
		if d.err != nil {
			return nil, nil
		}
		var r core.Record
		r.Changed = fb&1 != 0
		sn := fb&2 != 0
		if sn && !r.Changed {
			hi := d.uv()
			if d.err == nil && hi >= uint64(len(hashes)) {
				d.err = fmt.Errorf("hash index out of range")
			}
			if d.err != nil {
				return nil, nil
			}
			r.InputHash = hashes[hi]
			r.CostNS = int64(d.uv()) << 8
			if d.err != nil {
				return nil, nil
			}
		}
		slots = append(slots, r)
		seen = append(seen, sn)
	}
	return slots, seen
}

// decodeStream parses the legacy (v3/v4) streaming layouts.
func decodeStream(r io.Reader) (*core.UnitState, error) {
	d := &decoder{r: r}
	var m [8]byte
	d.bytes(m[:])
	if d.err == nil && m != magic {
		return nil, fmt.Errorf("state: bad magic")
	}
	v := d.u32()
	if d.err == nil && (v < minFormatVersion || v > 4) {
		return nil, fmt.Errorf("state: unsupported version %d", v)
	}
	st := &core.UnitState{Funcs: make(map[string]*core.FuncState)}
	st.PipelineHash = d.u64()
	st.Unit = d.str()

	if v >= 4 {
		st.Quarantine = d.quarantineBlock()
	}
	st.ModuleSlots, st.ModuleSeen = d.recordBlock()

	nFuncs := d.u32()
	if d.err == nil && nFuncs > 1<<24 {
		return nil, fmt.Errorf("state: implausible function count %d", nFuncs)
	}
	for i := uint32(0); i < nFuncs && d.err == nil; i++ {
		name := d.str()
		slots, seen := d.recordBlock()
		if d.err != nil {
			break
		}
		st.Funcs[name] = &core.FuncState{Slots: slots, Seen: seen}
	}
	if d.err != nil {
		return nil, fmt.Errorf("state: %w", d.err)
	}
	return st, nil
}

// FileSize reports the serialized size of a state value, used by the
// state-overhead experiments.
func FileSize(st *core.UnitState) (int, error) {
	var c countWriter
	if err := Encode(&c, st); err != nil {
		return 0, err
	}
	return c.n, nil
}

type countWriter struct{ n int }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += len(p)
	return len(p), nil
}

// --- low-level encoding -------------------------------------------------------

type encoder struct {
	w   io.Writer
	err error
	buf [8]byte
}

func (e *encoder) bytes(b []byte) {
	if e.err != nil {
		return
	}
	_, e.err = e.w.Write(b)
}

func (e *encoder) u32(v uint32) {
	binary.LittleEndian.PutUint32(e.buf[:4], v)
	e.bytes(e.buf[:4])
}

func (e *encoder) u64(v uint64) {
	binary.LittleEndian.PutUint64(e.buf[:8], v)
	e.bytes(e.buf[:8])
}

func (e *encoder) str(s string) {
	e.u32(uint32(len(s)))
	e.bytes([]byte(s))
}

func (e *encoder) uv(v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	e.bytes(buf[:n])
}

type decoder struct {
	r   io.Reader
	err error
	buf [8]byte
}

func (d *decoder) bytes(b []byte) {
	if d.err != nil {
		return
	}
	_, d.err = io.ReadFull(d.r, b)
}

func (d *decoder) u32() uint32 {
	d.bytes(d.buf[:4])
	if d.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(d.buf[:4])
}

func (d *decoder) u64() uint64 {
	d.bytes(d.buf[:8])
	if d.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(d.buf[:8])
}

func (d *decoder) str() string {
	n := d.u32()
	if d.err != nil {
		return ""
	}
	if n > 1<<20 {
		d.err = fmt.Errorf("implausible string length %d", n)
		return ""
	}
	// Chunked read: a bogus length field only costs as much memory as the
	// file actually provides bytes for.
	b := make([]byte, 0, min(n, 4096))
	var chunk [4096]byte
	for uint32(len(b)) < n && d.err == nil {
		k := n - uint32(len(b))
		if k > uint32(len(chunk)) {
			k = uint32(len(chunk))
		}
		d.bytes(chunk[:k])
		b = append(b, chunk[:k]...)
	}
	if d.err != nil {
		return ""
	}
	return string(b)
}

func (d *decoder) uv() uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(d)
	if err != nil {
		d.err = err
		return 0
	}
	return v
}

// ReadByte makes the decoder an io.ByteReader for ReadUvarint.
func (d *decoder) ReadByte() (byte, error) {
	var b [1]byte
	d.bytes(b[:])
	if d.err != nil {
		return 0, d.err
	}
	return b[0], nil
}
