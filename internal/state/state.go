// Package state persists the stateful compiler's dormancy records to disk.
//
// The format is a compact little-endian binary layout with a magic/version
// header; writes are atomic (temp file + fsync + rename) so a crashed
// build or power loss never publishes a truncated state file — a corrupt
// or stale file is simply discarded by the loader and the next build runs
// cold, which is always safe because the records are a pure optimization.
// That degradation guarantee is proven, not asserted: all I/O goes through
// the internal/vfs seam (SaveFS/LoadFS), and the chaos suites walk every
// injectable fault point (docs/ROBUSTNESS.md).
//
// Layout (version 4). Two observations keep the state tiny, mirroring the
// paper's pitch:
//
//   - only *dormant* records can ever satisfy a skip, so records of active
//     passes need no fingerprint at all — just a flags byte; and
//
//   - a run of consecutive dormant passes shares one input fingerprint, so
//     the dormant hashes are stored once in a small distinct-hash table and
//     referenced by varint index.
//
// Costs are EWMA pass times quantized to 256ns units (they only feed
// estimated-savings reporting).
//
//	magic "SCCSTATE" | u32 version | u64 pipelineHash | unit string
//	quarantineBlock                                       (v4+)
//	recordBlock(module slots)
//	u32 nFuncs | nFuncs × ( string name, recordBlock(slots) )
//
//	quarantineBlock: u8 present [, string reason, uvarint clean,
//	                 uvarint nPasses, nPasses × string ]
//
//	recordBlock: uvarint nSlots | uvarint nHashes | nHashes × u64 |
//	             nSlots × ( u8 flags [, uvarint hashIdx, uvarint cost256] )
//
// flags: bit0 = changed, bit1 = seen. hashIdx/cost follow only for seen
// dormant (changed=0) slots.
//
// Version 3 files (no quarantineBlock) still decode: the loader accepts
// both versions and migrates v3 to an in-memory state with no quarantine.
// The next save rewrites the file as v4.
package state

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"statefulcc/internal/core"
	"statefulcc/internal/vfs"
)

var magic = [8]byte{'S', 'C', 'C', 'S', 'T', 'A', 'T', 'E'}

// FormatVersion is the on-disk layout version the encoder writes.
const FormatVersion = 4

// minFormatVersion is the oldest layout the decoder still accepts (v3,
// which predates the quarantine block).
const minFormatVersion = 3

// TempPattern is the glob the atomic writer's in-flight temp files match.
// A crash between temp creation and rename orphans one; owners of a state
// directory may sweep matches from a single-writer context (the files are
// never read back, so removal is always safe).
const TempPattern = ".state-*"

// Save writes the unit state to path atomically via the real filesystem.
func Save(path string, st *core.UnitState) error {
	return SaveFS(vfs.OS, path, st)
}

// SaveFS writes the unit state to path atomically through fsys (nil means
// the real filesystem): encode to a temp file, fsync it, then rename. The
// Sync matters — without it a power loss after the rename could publish
// an empty or truncated file; with it, either the old state or the
// complete new state is on disk.
func SaveFS(fsys vfs.FS, path string, st *core.UnitState) error {
	fsys = vfs.Default(fsys)
	if err := fsys.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("state: %w", err)
	}
	tmp, err := fsys.CreateTemp(filepath.Dir(path), TempPattern)
	if err != nil {
		return fmt.Errorf("state: %w", err)
	}
	defer fsys.Remove(tmp.Name())

	w := bufio.NewWriter(tmp)
	if err := Encode(w, st); err != nil {
		tmp.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("state: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("state: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("state: %w", err)
	}
	if err := fsys.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("state: %w", err)
	}
	return nil
}

// Load reads a unit state from the real filesystem; a missing file
// returns (nil, nil) and any malformed file returns an error the caller
// should treat as "run cold".
func Load(path string) (*core.UnitState, error) {
	return LoadFS(vfs.OS, path)
}

// LoadFS is Load through an injectable filesystem (nil means the real
// one).
func LoadFS(fsys vfs.FS, path string) (*core.UnitState, error) {
	f, err := vfs.Default(fsys).Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("state: %w", err)
	}
	defer f.Close()
	return Decode(bufio.NewReader(f))
}

// Encode streams the state in the binary format. Functions are written in
// name order so the output is deterministic.
func Encode(w io.Writer, st *core.UnitState) error {
	e := &encoder{w: w}
	e.bytes(magic[:])
	e.u32(FormatVersion)
	e.u64(st.PipelineHash)
	e.str(st.Unit)

	e.quarantineBlock(st.Quarantine)
	e.recordBlock(st.ModuleSlots, st.ModuleSeen)

	names := make([]string, 0, len(st.Funcs))
	for name := range st.Funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	e.u32(uint32(len(names)))
	for _, name := range names {
		fs := st.Funcs[name]
		e.str(name)
		e.recordBlock(fs.Slots, fs.Seen)
	}
	return e.err
}

// quarantineBlock writes the optional quarantine marker (v4+).
func (e *encoder) quarantineBlock(q *core.Quarantine) {
	if q == nil {
		e.bytes([]byte{0})
		return
	}
	e.bytes([]byte{1})
	e.str(q.Reason)
	e.uv(uint64(q.Clean))
	e.uv(uint64(len(q.Passes)))
	for _, p := range q.Passes {
		e.str(p)
	}
}

func (d *decoder) quarantineBlock() *core.Quarantine {
	var fb [1]byte
	d.bytes(fb[:])
	if d.err != nil || fb[0] == 0 {
		return nil
	}
	if d.err == nil && fb[0] != 1 {
		d.err = fmt.Errorf("bad quarantine marker %d", fb[0])
		return nil
	}
	q := &core.Quarantine{Reason: d.str()}
	q.Clean = int(d.uv())
	n := d.uv()
	if d.err == nil && n > 1<<12 {
		d.err = fmt.Errorf("implausible quarantined-pass count %d", n)
	}
	for i := uint64(0); i < n && d.err == nil; i++ {
		q.Passes = append(q.Passes, d.str())
	}
	if d.err != nil {
		return nil
	}
	return q
}

// recordBlock writes slot records with the distinct-hash table compression.
// Only seen dormant records carry a hash and cost.
func (e *encoder) recordBlock(slots []core.Record, seen []bool) {
	e.uv(uint64(len(slots)))
	var hashes []uint64
	idx := make(map[uint64]int)
	for i, r := range slots {
		if !seen[i] || r.Changed {
			continue
		}
		if _, ok := idx[r.InputHash]; !ok {
			idx[r.InputHash] = len(hashes)
			hashes = append(hashes, r.InputHash)
		}
	}
	e.uv(uint64(len(hashes)))
	for _, h := range hashes {
		e.u64(h)
	}
	for i, r := range slots {
		var flags byte
		if r.Changed {
			flags |= 1
		}
		if seen[i] {
			flags |= 2
		}
		e.bytes([]byte{flags})
		if seen[i] && !r.Changed {
			e.uv(uint64(idx[r.InputHash]))
			e.uv(uint64(r.CostNS) >> 8)
		}
	}
}

func (d *decoder) recordBlock() ([]core.Record, []bool) {
	n := d.uv()
	if d.err == nil && n > 1<<16 {
		d.err = fmt.Errorf("implausible slot count %d", n)
	}
	if d.err != nil {
		return nil, nil
	}
	nHashes := d.uv()
	if d.err == nil && nHashes > n {
		d.err = fmt.Errorf("hash table larger than slot count")
	}
	if d.err != nil {
		return nil, nil
	}
	// Counts are attacker-controlled (uvarints from the file), so
	// allocations grow with the bytes actually present instead of
	// trusting the declared sizes — a crafted header cannot force a large
	// up-front allocation.
	hashes := make([]uint64, 0, min(nHashes, 64))
	for i := uint64(0); i < nHashes; i++ {
		h := d.u64()
		if d.err != nil {
			return nil, nil
		}
		hashes = append(hashes, h)
	}
	slots := make([]core.Record, 0, min(n, 256))
	seen := make([]bool, 0, min(n, 256))
	for i := uint64(0); i < n; i++ {
		var fb [1]byte
		d.bytes(fb[:])
		if d.err != nil {
			return nil, nil
		}
		var r core.Record
		r.Changed = fb[0]&1 != 0
		sn := fb[0]&2 != 0
		if sn && !r.Changed {
			hi := d.uv()
			if d.err == nil && hi >= uint64(len(hashes)) {
				d.err = fmt.Errorf("hash index out of range")
			}
			if d.err != nil {
				return nil, nil
			}
			r.InputHash = hashes[hi]
			r.CostNS = int64(d.uv()) << 8
			if d.err != nil {
				return nil, nil
			}
		}
		slots = append(slots, r)
		seen = append(seen, sn)
	}
	return slots, seen
}

// Decode parses the binary format.
func Decode(r io.Reader) (*core.UnitState, error) {
	d := &decoder{r: r}
	var m [8]byte
	d.bytes(m[:])
	if d.err == nil && m != magic {
		return nil, fmt.Errorf("state: bad magic")
	}
	v := d.u32()
	if d.err == nil && (v < minFormatVersion || v > FormatVersion) {
		return nil, fmt.Errorf("state: unsupported version %d", v)
	}
	st := &core.UnitState{Funcs: make(map[string]*core.FuncState)}
	st.PipelineHash = d.u64()
	st.Unit = d.str()

	if v >= 4 {
		st.Quarantine = d.quarantineBlock()
	}
	st.ModuleSlots, st.ModuleSeen = d.recordBlock()

	nFuncs := d.u32()
	if d.err == nil && nFuncs > 1<<24 {
		return nil, fmt.Errorf("state: implausible function count %d", nFuncs)
	}
	for i := uint32(0); i < nFuncs && d.err == nil; i++ {
		name := d.str()
		slots, seen := d.recordBlock()
		if d.err != nil {
			break
		}
		st.Funcs[name] = &core.FuncState{Slots: slots, Seen: seen}
	}
	if d.err != nil {
		return nil, fmt.Errorf("state: %w", d.err)
	}
	return st, nil
}

// FileSize reports the serialized size of a state value, used by the
// state-overhead experiments.
func FileSize(st *core.UnitState) (int, error) {
	var c countWriter
	if err := Encode(&c, st); err != nil {
		return 0, err
	}
	return c.n, nil
}

type countWriter struct{ n int }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += len(p)
	return len(p), nil
}

// --- low-level encoding -------------------------------------------------------

type encoder struct {
	w   io.Writer
	err error
	buf [8]byte
}

func (e *encoder) bytes(b []byte) {
	if e.err != nil {
		return
	}
	_, e.err = e.w.Write(b)
}

func (e *encoder) u32(v uint32) {
	binary.LittleEndian.PutUint32(e.buf[:4], v)
	e.bytes(e.buf[:4])
}

func (e *encoder) u64(v uint64) {
	binary.LittleEndian.PutUint64(e.buf[:8], v)
	e.bytes(e.buf[:8])
}

func (e *encoder) str(s string) {
	e.u32(uint32(len(s)))
	e.bytes([]byte(s))
}

func (e *encoder) uv(v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	e.bytes(buf[:n])
}

type decoder struct {
	r   io.Reader
	err error
	buf [8]byte
}

func (d *decoder) bytes(b []byte) {
	if d.err != nil {
		return
	}
	_, d.err = io.ReadFull(d.r, b)
}

func (d *decoder) u32() uint32 {
	d.bytes(d.buf[:4])
	if d.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(d.buf[:4])
}

func (d *decoder) u64() uint64 {
	d.bytes(d.buf[:8])
	if d.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(d.buf[:8])
}

func (d *decoder) str() string {
	n := d.u32()
	if d.err != nil {
		return ""
	}
	if n > 1<<20 {
		d.err = fmt.Errorf("implausible string length %d", n)
		return ""
	}
	// Chunked read: a bogus length field only costs as much memory as the
	// file actually provides bytes for.
	b := make([]byte, 0, min(n, 4096))
	var chunk [4096]byte
	for uint32(len(b)) < n && d.err == nil {
		k := n - uint32(len(b))
		if k > uint32(len(chunk)) {
			k = uint32(len(chunk))
		}
		d.bytes(chunk[:k])
		b = append(b, chunk[:k]...)
	}
	if d.err != nil {
		return ""
	}
	return string(b)
}

func (d *decoder) uv() uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(d)
	if err != nil {
		d.err = err
		return 0
	}
	return v
}

// ReadByte makes the decoder an io.ByteReader for ReadUvarint.
func (d *decoder) ReadByte() (byte, error) {
	var b [1]byte
	d.bytes(b[:])
	if d.err != nil {
		return 0, d.err
	}
	return b[0], nil
}
