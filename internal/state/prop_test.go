package state_test

// Property-based round-trip: Decode(Encode(st)) must reproduce st exactly
// for every well-formed state, and FileSize must agree with the encoded
// length. States are generated from a fixed seed over the shapes that have
// bitten binary formats before: empty units, zero-slot functions, runs of
// dormant slots sharing one hash (the distinct-hash table), hash zero,
// zero and maximum quantized costs, and empty function names.

import (
	"bytes"
	"math/rand"
	"reflect"
	"strconv"
	"testing"

	"statefulcc/internal/core"
	"statefulcc/internal/footprint"
	"statefulcc/internal/state"
)

// maxQuantCost is the largest EWMA the 256ns-quantized encoding can carry.
const maxQuantCost = (1<<63 - 1) &^ 255

// randBlock generates one record block. Slots are independently unseen,
// seen-changed, or seen-dormant; dormant slots draw from a small shared
// hash pool (plus fresh hashes) so the distinct-hash table gets both
// sharing and growth.
func randBlock(r *rand.Rand, n int, pool []uint64) ([]core.Record, []bool) {
	slots := make([]core.Record, n)
	seen := make([]bool, n)
	for i := range slots {
		switch r.Intn(5) {
		case 0: // unseen: must stay the zero record
		case 1: // seen, changed: flags only
			seen[i] = true
			slots[i].Changed = true
		default: // seen, dormant: hash + quantized cost
			seen[i] = true
			if r.Intn(3) == 0 {
				slots[i].InputHash = r.Uint64()
			} else {
				slots[i].InputHash = pool[r.Intn(len(pool))]
			}
			switch r.Intn(4) {
			case 0:
				slots[i].CostNS = 0
			case 1:
				slots[i].CostNS = maxQuantCost
			default:
				slots[i].CostNS = int64(r.Intn(1<<20)) << 8
			}
		}
	}
	return slots, seen
}

// randState generates one well-formed, encoder-normalized unit state.
func randState(r *rand.Rand) *core.UnitState {
	pool := []uint64{0, r.Uint64(), r.Uint64()} // hash 0 is a legal value
	st := &core.UnitState{
		Unit:         string([]byte("unit__.mc")[:r.Intn(9)+1]),
		PipelineHash: r.Uint64(),
		Funcs:        make(map[string]*core.FuncState),
	}
	st.ModuleSlots, st.ModuleSeen = randBlock(r, r.Intn(6), pool)
	switch r.Intn(4) {
	case 0: // whole-unit quarantine (empty pass list)
		st.Quarantine = &core.Quarantine{Reason: core.QuarantinePanic, Clean: r.Intn(3)}
	case 1: // per-pass quarantine (sorted unique names, AddPass invariant)
		q := &core.Quarantine{Reason: core.QuarantineUnsound}
		for i, n := 0, r.Intn(3)+1; i < n; i++ {
			q.AddPass("p" + strconv.Itoa(r.Intn(4)))
		}
		q.Clean = r.Intn(3)
		st.Quarantine = q
	}
	for i, n := 0, r.Intn(5); i < n; i++ {
		name := "fn" + strconv.Itoa(i)
		if i == 0 && r.Intn(4) == 0 {
			name = "" // empty function name is representable
		}
		st.Funcs[name] = &core.FuncState{}
		st.Funcs[name].Slots, st.Funcs[name].Seen = randBlock(r, r.Intn(6), pool)
	}
	if r.Intn(2) == 0 {
		st.Footprint = randFootprint(r)
	}
	return st
}

// randFootprint generates a canonical footprint via a Trace (the only
// production constructor), covering every kind, duplicate observations
// (deduplicated), empty names, and hash zero.
func randFootprint(r *rand.Rand) *footprint.Record {
	tr := footprint.NewTrace("unit.mc")
	kinds := []footprint.Kind{
		footprint.KindSource, footprint.KindPipeline, footprint.KindFile,
		footprint.KindStat, footprint.KindDir, footprint.KindCall,
		footprint.KindGlobal,
	}
	for i, n := 0, r.Intn(8); i < n; i++ {
		name := "dep" + strconv.Itoa(r.Intn(4))
		if r.Intn(6) == 0 {
			name = "" // empty name is representable
		}
		h := r.Uint64()
		if r.Intn(6) == 0 {
			h = 0 // hash zero is a legal value
		}
		tr.Add(kinds[r.Intn(len(kinds))], name, h)
	}
	return tr.Finish(r.Uint64())
}

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(0x5CC57A7E))
	for i := 0; i < 1000; i++ {
		st := randState(r)
		var buf bytes.Buffer
		if err := state.Encode(&buf, st); err != nil {
			t.Fatalf("case %d: encode: %v\nstate: %+v", i, err, st)
		}
		n, err := state.FileSize(st)
		if err != nil {
			t.Fatalf("case %d: FileSize: %v", i, err)
		}
		if n != buf.Len() {
			t.Fatalf("case %d: FileSize %d != encoded length %d", i, n, buf.Len())
		}
		got, err := state.Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("case %d: decode: %v\nstate: %+v", i, err, st)
		}
		if !reflect.DeepEqual(got, st) {
			t.Fatalf("case %d: round trip drifted\n got: %+v\nwant: %+v", i, got, st)
		}
	}
}

// TestRoundTripHandPickedEdges pins the named edge shapes individually so
// a failure reads as the shape, not a seed.
func TestRoundTripHandPickedEdges(t *testing.T) {
	cases := map[string]*core.UnitState{
		"empty unit": {
			Unit: "e.mc", Funcs: map[string]*core.FuncState{},
			ModuleSlots: []core.Record{}, ModuleSeen: []bool{},
		},
		"zero-slot func": {
			Unit: "z.mc", ModuleSlots: []core.Record{}, ModuleSeen: []bool{},
			Funcs: map[string]*core.FuncState{
				"f": {Slots: []core.Record{}, Seen: []bool{}},
			},
		},
		"all slots share one hash": {
			Unit: "s.mc", ModuleSlots: []core.Record{}, ModuleSeen: []bool{},
			Funcs: map[string]*core.FuncState{
				"f": {
					Slots: []core.Record{
						{InputHash: 9, CostNS: 256}, {InputHash: 9, CostNS: 256},
						{InputHash: 9, CostNS: 256}, {InputHash: 9, CostNS: 256},
					},
					Seen: []bool{true, true, true, true},
				},
			},
		},
		"max cost EWMA": {
			Unit:        "m.mc",
			ModuleSlots: []core.Record{{InputHash: 1, CostNS: maxQuantCost}},
			ModuleSeen:  []bool{true},
			Funcs:       map[string]*core.FuncState{},
		},
	}
	for name, st := range cases {
		var buf bytes.Buffer
		if err := state.Encode(&buf, st); err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		got, err := state.Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if !reflect.DeepEqual(got, st) {
			t.Fatalf("%s: round trip drifted\n got: %+v\nwant: %+v", name, got, st)
		}
	}
}
