package bitcode_test

import (
	"bytes"
	"testing"

	"statefulcc/internal/analysis"
	"statefulcc/internal/bitcode"
	"statefulcc/internal/codegen"
	"statefulcc/internal/fingerprint"
	"statefulcc/internal/ir"
	"statefulcc/internal/passes"
	"statefulcc/internal/testutil"
	"statefulcc/internal/vm"
)

const bigSrc = `
var _table [8]int;
var counter int = 5;
extern func external(x int) int;

func _mix(a int, b int) int {
    var t int = a ^ b * 3;
    if t < 0 { t = -t; }
    return t % 97;
}

func work(n int) int {
    var acc int = 0;
    for var i int = 0; i < n; i++ {
        _table[i % 8] = _mix(i, n);
        acc += _table[i % 8];
        if acc > 1000 { break; }
    }
    while acc % 2 == 0 && acc > 0 {
        acc /= 2;
    }
    return acc;
}

func main() int {
    counter += work(20);
    print("counter", counter);
    assert(counter != 0, "zero counter");
    return counter % 31;
}
`

func buildOptimized(t *testing.T) *ir.Module {
	t.Helper()
	m, err := testutil.BuildModule("big.mc", bigSrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := passes.RunPipeline(m, passes.StandardPipeline); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestModuleRoundTrip(t *testing.T) {
	m := buildOptimized(t)
	var buf bytes.Buffer
	if err := bitcode.EncodeModule(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := bitcode.DecodeModule(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Verify(); err != nil {
		t.Fatalf("decoded module invalid: %v\n%s", err, got)
	}
	for _, f := range got.Funcs {
		if err := analysis.VerifySSA(f); err != nil {
			t.Fatalf("decoded SSA invalid: %v", err)
		}
	}
	// The decoded module must be structurally identical. Value IDs are
	// densely renumbered on decode, so compare via the fingerprint, which
	// normalizes IDs by traversal order.
	if fingerprint.Module(got) != fingerprint.Module(m) {
		t.Errorf("fingerprint changed across roundtrip")
	}
}

func TestFuncRoundTrip(t *testing.T) {
	m := buildOptimized(t)
	for _, f := range m.Funcs {
		var buf bytes.Buffer
		if err := bitcode.EncodeFunc(&buf, f); err != nil {
			t.Fatal(err)
		}
		got, err := bitcode.DecodeFunc(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if fingerprint.Function(got) != fingerprint.Function(f) {
			t.Errorf("func %s: fingerprint changed", f.Name)
		}
	}
}

func TestDecodedModuleExecutes(t *testing.T) {
	m := buildOptimized(t)
	runModule := func(mod *ir.Module) (string, int64) {
		obj, err := codegen.Compile(mod)
		if err != nil {
			t.Fatal(err)
		}
		// Satisfy the extern with a stub unit.
		stub, err := testutil.BuildModule("stub.mc", `func external(x int) int { return x + 1; }`)
		if err != nil {
			t.Fatal(err)
		}
		sobj, err := codegen.Compile(stub)
		if err != nil {
			t.Fatal(err)
		}
		p, err := codegen.Link([]*codegen.Object{obj, sobj})
		if err != nil {
			t.Fatal(err)
		}
		out, res, err := vm.RunCapture(p, vm.Config{})
		if err != nil {
			t.Fatal(err)
		}
		return out, res.ExitValue
	}
	var buf bytes.Buffer
	if err := bitcode.EncodeModule(&buf, m); err != nil {
		t.Fatal(err)
	}
	dec, err := bitcode.DecodeModule(&buf)
	if err != nil {
		t.Fatal(err)
	}
	o1, e1 := runModule(m)
	o2, e2 := runModule(dec)
	if o1 != o2 || e1 != e2 {
		t.Errorf("decoded module behaves differently: %q/%d vs %q/%d", o1, e1, o2, e2)
	}
}

func TestSizeReporting(t *testing.T) {
	m := buildOptimized(t)
	var buf bytes.Buffer
	if err := bitcode.EncodeModule(&buf, m); err != nil {
		t.Fatal(err)
	}
	if n := bitcode.SizeOfModule(m); n != buf.Len() {
		t.Errorf("SizeOfModule %d != encoded %d", n, buf.Len())
	}
	total := 0
	for _, f := range m.Funcs {
		n := bitcode.SizeOfFunc(f)
		if n <= 8 {
			t.Errorf("func %s implausibly small: %d", f.Name, n)
		}
		total += n
	}
	if total >= buf.Len()+64 && len(m.Funcs) > 0 {
		t.Logf("per-func total %d vs module %d (headers repeated)", total, buf.Len())
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := bitcode.DecodeModule(bytes.NewReader([]byte("garbage everywhere"))); err == nil {
		t.Error("garbage module accepted")
	}
	if _, err := bitcode.DecodeFunc(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("garbage func accepted")
	}
	// Truncation mid-stream.
	m := buildOptimized(t)
	var buf bytes.Buffer
	if err := bitcode.EncodeModule(&buf, m); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{5, buf.Len() / 2, buf.Len() - 1} {
		if _, err := bitcode.DecodeModule(bytes.NewReader(buf.Bytes()[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestEncodeDeterministic(t *testing.T) {
	m := buildOptimized(t)
	var a, b bytes.Buffer
	if err := bitcode.EncodeModule(&a, m); err != nil {
		t.Fatal(err)
	}
	if err := bitcode.EncodeModule(&b, m); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("module encoding nondeterministic")
	}
}
