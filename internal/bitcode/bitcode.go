// Package bitcode serializes IR to a compact binary form and back — the
// MiniC analogue of LLVM bitcode. Two consumers depend on it:
//
//   - The full-IR caching baseline (rustc/Zapcc-style) persists optimized
//     per-function IR keyed by input fingerprints; its state-size numbers
//     are only comparable to the dormancy records if both use efficient
//     encodings, so this codec uses varints throughout.
//
//   - The build system's artifact cache, which stores post-optimization IR
//     alongside objects for tooling (minicc -emit-ir of cached units).
//
// Values are referenced by a dense numbering (parameters first, then phis
// and instructions in block layout order); constants are inlined at use
// sites and materialized fresh on decode, matching how the IR treats them.
package bitcode

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"statefulcc/internal/ir"
)

var funcMagic = [4]byte{'M', 'C', 'F', '1'}
var moduleMagic = [4]byte{'M', 'C', 'M', '1'}

// EncodeFunc serializes one function.
func EncodeFunc(w io.Writer, f *ir.Func) error {
	bw := bufio.NewWriter(w)
	e := &writer{w: bw}
	e.raw(funcMagic[:])
	e.fn(f)
	if e.err != nil {
		return e.err
	}
	return bw.Flush()
}

// DecodeFunc reads one function. The returned function has no Module set.
func DecodeFunc(r io.Reader) (*ir.Func, error) {
	d := &reader{r: bufio.NewReader(r)}
	var m [4]byte
	d.raw(m[:])
	if d.err == nil && m != funcMagic {
		return nil, fmt.Errorf("bitcode: bad function magic")
	}
	f := d.fn()
	if d.err != nil {
		return nil, fmt.Errorf("bitcode: %w", d.err)
	}
	return f, nil
}

// EncodeModule serializes a whole module.
func EncodeModule(w io.Writer, m *ir.Module) error {
	bw := bufio.NewWriter(w)
	e := &writer{w: bw}
	e.raw(moduleMagic[:])
	e.str(m.Unit)
	e.uv(uint64(len(m.Globals)))
	for _, g := range m.Globals {
		e.str(g.Name)
		e.uv(uint64(g.Words))
		e.sv(g.Init)
		e.bool(g.Private)
	}
	e.uv(uint64(len(m.Externs)))
	for _, x := range m.Externs {
		e.str(x)
	}
	e.uv(uint64(len(m.Funcs)))
	for _, f := range m.Funcs {
		e.fn(f)
	}
	if e.err != nil {
		return e.err
	}
	return bw.Flush()
}

// DecodeModule reads a module.
func DecodeModule(r io.Reader) (*ir.Module, error) {
	d := &reader{r: bufio.NewReader(r)}
	var mg [4]byte
	d.raw(mg[:])
	if d.err == nil && mg != moduleMagic {
		return nil, fmt.Errorf("bitcode: bad module magic")
	}
	m := &ir.Module{Unit: d.str()}
	nG := d.uv()
	for i := uint64(0); i < nG && d.err == nil; i++ {
		g := &ir.Global{Name: d.str()}
		g.Words = int64(d.uv())
		g.Init = d.sv()
		g.Private = d.bool()
		m.Globals = append(m.Globals, g)
	}
	nX := d.uv()
	for i := uint64(0); i < nX && d.err == nil; i++ {
		m.Externs = append(m.Externs, d.str())
	}
	nF := d.uv()
	for i := uint64(0); i < nF && d.err == nil; i++ {
		f := d.fn()
		if f != nil {
			f.Module = m
			m.Funcs = append(m.Funcs, f)
		}
	}
	if d.err != nil {
		return nil, fmt.Errorf("bitcode: %w", d.err)
	}
	return m, nil
}

// SizeOfFunc reports the encoded size of a function in bytes.
func SizeOfFunc(f *ir.Func) int {
	var c countWriter
	_ = EncodeFunc(&c, f)
	return c.n
}

// SizeOfModule reports the encoded size of a module in bytes.
func SizeOfModule(m *ir.Module) int {
	var c countWriter
	_ = EncodeModule(&c, m)
	return c.n
}

type countWriter struct{ n int }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += len(p)
	return len(p), nil
}

// --- function encoding ----------------------------------------------------

// Reference tags.
const (
	refValue = 0 // followed by dense value index
	refConst = 1 // followed by type byte + zigzag constant
)

func (e *writer) fn(f *ir.Func) {
	e.str(f.Name)
	e.byte(byte(f.Result))
	e.bool(f.Private)
	e.uv(uint64(len(f.Params)))
	for _, p := range f.Params {
		e.byte(byte(p.Type))
	}

	// Numbering: params, then phis+instrs per block in layout order.
	num := make(map[*ir.Value]int, f.NumValues())
	for i, p := range f.Params {
		num[p] = i
	}
	next := len(f.Params)
	blockIdx := make(map[*ir.Block]int, len(f.Blocks))
	for i, b := range f.Blocks {
		blockIdx[b] = i
		for _, v := range b.Phis {
			num[v] = next
			next++
		}
		for _, v := range b.Instrs {
			num[v] = next
			next++
		}
	}

	ref := func(v *ir.Value) {
		if v.Op == ir.OpConst {
			e.uv(refConst)
			e.byte(byte(v.Type))
			e.sv(v.Aux)
			return
		}
		e.uv(refValue)
		e.uv(uint64(num[v]))
	}
	val := func(v *ir.Value) {
		e.byte(byte(v.Op))
		e.byte(byte(v.Type))
		e.sv(v.Aux)
		e.str(v.Sym)
		e.str(v.StrAux)
		e.uv(uint64(len(v.Args)))
		for _, a := range v.Args {
			ref(a)
		}
		e.uv(uint64(len(v.Blocks)))
		for _, b := range v.Blocks {
			e.uv(uint64(blockIdx[b]))
		}
	}

	e.uv(uint64(len(f.Blocks)))
	for _, b := range f.Blocks {
		e.uv(uint64(len(b.Phis)))
		for _, v := range b.Phis {
			val(v)
		}
		e.uv(uint64(len(b.Instrs)))
		for _, v := range b.Instrs {
			val(v)
		}
		if b.Term != nil {
			e.byte(1)
			val(b.Term)
		} else {
			e.byte(0)
		}
	}
}

func (d *reader) fn() *ir.Func {
	name := d.str()
	result := ir.Type(d.byte())
	private := d.bool()
	nParams := d.uv()
	if d.err != nil || nParams > 1<<16 {
		d.fail("implausible param count")
		return nil
	}
	ptypes := make([]ir.Type, nParams)
	for i := range ptypes {
		ptypes[i] = ir.Type(d.byte())
	}
	f := ir.NewFunc(name, ptypes, result)
	f.Private = private

	nBlocks := d.uv()
	if d.err != nil || nBlocks > 1<<20 {
		d.fail("implausible block count")
		return nil
	}

	// Pass 1: materialize blocks and value shells so references resolve.
	type pending struct {
		v      *ir.Value
		isPhi  bool
		isTerm bool
		block  *ir.Block
	}
	blocks := make([]*ir.Block, nBlocks)
	for i := range blocks {
		blocks[i] = f.NewBlock()
	}
	values := make([]*ir.Value, 0, 64)
	values = append(values, f.Params...)

	var order []pending
	readVal := func(b *ir.Block, isPhi, isTerm bool) {
		op := ir.Op(d.byte())
		typ := ir.Type(d.byte())
		aux := d.sv()
		sym := d.str()
		strAux := d.str()
		v := f.NewValue(op, typ)
		v.Aux = aux
		v.Sym = sym
		v.StrAux = strAux
		nArgs := int(d.uv())
		p := pending{v: v, isPhi: isPhi, isTerm: isTerm, block: b}
		// Args and blocks are read in a second step; but the stream is
		// sequential, so record the raw refs now.
		for i := 0; i < nArgs && d.err == nil; i++ {
			tag := d.uv()
			if tag == refConst {
				ct := ir.Type(d.byte())
				cv := d.sv()
				c := f.ConstInt(cv)
				c.Type = ct
				v.Args = append(v.Args, c)
			} else {
				idx := d.uv()
				// Forward references (phis) are resolved after all shells
				// exist; stash the index in a placeholder constant.
				ph := &ir.Value{Op: ir.OpInvalid, Aux: int64(idx)}
				v.Args = append(v.Args, ph)
			}
		}
		nBlks := int(d.uv())
		for i := 0; i < nBlks && d.err == nil; i++ {
			bi := d.uv()
			if bi >= nBlocks {
				d.fail("block index out of range")
				return
			}
			v.Blocks = append(v.Blocks, blocks[bi])
		}
		if !isTerm {
			values = append(values, v) // terminators are never referenced
		}
		order = append(order, p)
	}

	for bi := uint64(0); bi < nBlocks && d.err == nil; bi++ {
		b := blocks[bi]
		nPhis := d.uv()
		if nPhis > 1<<20 {
			d.fail("implausible phi count")
			return nil
		}
		for i := uint64(0); i < nPhis && d.err == nil; i++ {
			readVal(b, true, false)
		}
		nInstrs := d.uv()
		if nInstrs > 1<<20 {
			d.fail("implausible instr count")
			return nil
		}
		for i := uint64(0); i < nInstrs && d.err == nil; i++ {
			readVal(b, false, false)
		}
		if d.byte() == 1 {
			readVal(b, false, true)
		}
	}
	if d.err != nil {
		return nil
	}

	// Pass 2: resolve value references and attach to blocks.
	for _, p := range order {
		for i, a := range p.v.Args {
			if a.Op == ir.OpInvalid {
				idx := int(a.Aux)
				if idx < 0 || idx >= len(values) {
					d.fail("value index out of range")
					return nil
				}
				p.v.Args[i] = values[idx]
			}
		}
		switch {
		case p.isPhi:
			p.block.AddPhi(p.v)
		case p.isTerm:
			p.block.SetTerm(p.v)
		default:
			p.block.AddInstr(p.v)
		}
	}
	return f
}

// --- primitives -------------------------------------------------------------

type writer struct {
	w   io.Writer
	err error
	buf [binary.MaxVarintLen64]byte
}

func (e *writer) raw(b []byte) {
	if e.err != nil {
		return
	}
	_, e.err = e.w.Write(b)
}

func (e *writer) byte(b byte) { e.raw([]byte{b}) }

func (e *writer) bool(b bool) {
	if b {
		e.byte(1)
	} else {
		e.byte(0)
	}
}

func (e *writer) uv(v uint64) {
	n := binary.PutUvarint(e.buf[:], v)
	e.raw(e.buf[:n])
}

func (e *writer) sv(v int64) {
	n := binary.PutVarint(e.buf[:], v)
	e.raw(e.buf[:n])
}

func (e *writer) str(s string) {
	e.uv(uint64(len(s)))
	e.raw([]byte(s))
}

type reader struct {
	r   *bufio.Reader
	err error
}

func (d *reader) fail(msg string) {
	if d.err == nil {
		d.err = fmt.Errorf("%s", msg)
	}
}

func (d *reader) raw(b []byte) {
	if d.err != nil {
		return
	}
	_, d.err = io.ReadFull(d.r, b)
}

func (d *reader) byte() byte {
	if d.err != nil {
		return 0
	}
	b, err := d.r.ReadByte()
	if err != nil {
		d.err = err
		return 0
	}
	return b
}

func (d *reader) bool() bool { return d.byte() == 1 }

func (d *reader) uv() uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(d.r)
	if err != nil {
		d.err = err
		return 0
	}
	return v
}

func (d *reader) sv() int64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(d.r)
	if err != nil {
		d.err = err
		return 0
	}
	return v
}

func (d *reader) str() string {
	n := d.uv()
	if d.err != nil {
		return ""
	}
	if n > 1<<20 {
		d.fail("implausible string length")
		return ""
	}
	b := make([]byte, n)
	d.raw(b)
	return string(b)
}
