// Package core implements the paper's contribution: a *stateful* pass
// manager that persists, per function and per pipeline slot, whether the
// pass was dormant (ran without modifying the IR) together with a
// fingerprint of the IR it saw — and uses those records to skip dormant
// passes in subsequent incremental compilations of the same unit.
//
// Soundness argument (paper §4): passes are deterministic pure functions of
// their input IR (enforced for skipping eligibility by the FunctionLocal
// registry attribute and pinned by determinism tests), so
//
//	same input fingerprint  ∧  dormant last time  ⇒  dormant this time,
//
// and a dormant pass leaves the IR unchanged — meaning the fingerprint
// entering the next slot is the *same* fingerprint, so a run of consecutive
// dormant passes costs one hash instead of N pass executions. Module passes
// are guarded by a module-level fingerprint; any module change re-runs them.
package core

import (
	"fmt"

	"statefulcc/internal/fingerprint"
	"statefulcc/internal/footprint"
)

// StateVersion identifies the on-disk/state-record format and the compiler
// revision. Bumping it invalidates all previous state — the paper's
// compiler-upgrade safety rule. Version 4: the hierarchical fingerprint
// algorithm changed function hash values, so older persisted dormancy
// records must not be trusted against the new hashes.
const StateVersion = 4

// Record is one dormancy observation: the fingerprint of the IR a pass
// instance saw for a function, whether the pass changed it, and the
// smoothed cost of running it (used for reporting estimated savings).
type Record struct {
	InputHash uint64
	Changed   bool
	// CostNS is an exponentially weighted moving average of the observed
	// run time in nanoseconds.
	CostNS int64
}

// blend updates the cost EWMA (¾ old, ¼ new — cheap and stable).
func (r *Record) blend(ns int64) {
	if r.CostNS == 0 {
		r.CostNS = ns
		return
	}
	r.CostNS = (3*r.CostNS + ns) / 4
}

// Quarantine reasons — why a unit's (or pass's) cached execution state is
// no longer trusted. See docs/ROBUSTNESS.md for the state machine.
const (
	// QuarantinePanic: a pass panicked while compiling the unit. The whole
	// unit's state is suspect; it compiles stateless until lifted.
	QuarantinePanic = "panic"
	// QuarantineUnsound: the soundness sentinel caught an unsound skip —
	// a pass that was recorded dormant on this fingerprint changed the IR
	// when audited. The offending (unit, pass) pair stops skipping.
	QuarantineUnsound = "unsound-skip"
)

// QuarantineCleanTarget is the number of consecutive clean compiles of a
// quarantined unit required before the quarantine lifts and the unit
// returns to normal stateful operation (cold — quarantine discards trust
// in the old records, not just skips).
const QuarantineCleanTarget = 3

// Quarantine marks a unit whose execution state is distrusted. It rides in
// the persisted UnitState (format v4) so the distrust survives processes.
type Quarantine struct {
	// Reason is one of the Quarantine* constants.
	Reason string
	// Clean counts consecutive clean compiles since engagement; at
	// QuarantineCleanTarget the quarantine lifts.
	Clean int
	// Passes lists the quarantined pass names (sorted, deduplicated).
	// Empty means the whole unit is quarantined: it compiles through the
	// stateless fallback and none of its records are consulted.
	Passes []string
}

// Whole reports whether the entire unit is quarantined (as opposed to
// specific passes only).
func (q *Quarantine) Whole() bool { return q != nil && len(q.Passes) == 0 }

// Covers reports whether the named pass is quarantined (always true for a
// whole-unit quarantine).
func (q *Quarantine) Covers(pass string) bool {
	if q == nil {
		return false
	}
	if len(q.Passes) == 0 {
		return true
	}
	for _, p := range q.Passes {
		if p == pass {
			return true
		}
	}
	return false
}

// AddPass quarantines one more pass, keeping Passes sorted and unique, and
// resets the clean-build count (new evidence of distrust restarts the
// probation window). Reports whether the pass was newly added.
func (q *Quarantine) AddPass(pass string) bool {
	q.Clean = 0
	for i, p := range q.Passes {
		if p == pass {
			return false
		}
		if p > pass {
			q.Passes = append(q.Passes, "")
			copy(q.Passes[i+1:], q.Passes[i:])
			q.Passes[i] = pass
			return true
		}
	}
	q.Passes = append(q.Passes, pass)
	return true
}

// FuncState holds one function's records, indexed by pipeline slot.
type FuncState struct {
	// Slots[i] corresponds to pipeline entry i; a zero-valued record (hash
	// 0, never observed) means "no information".
	Slots []Record
	// Seen marks slots that hold a real observation.
	Seen []bool
}

func newFuncState(n int) *FuncState {
	return &FuncState{Slots: make([]Record, n), Seen: make([]bool, n)}
}

// UnitState is the persistent compiler state for one compilation unit —
// the artifact the paper adds next to the build system's own metadata.
type UnitState struct {
	// Unit is the source unit this state describes.
	Unit string
	// PipelineHash guards against pipeline/config changes: a different
	// pipeline invalidates all records.
	PipelineHash uint64
	// Funcs maps function name to its per-slot records.
	Funcs map[string]*FuncState
	// ModuleSlots holds records for module passes, indexed by pipeline slot
	// (entries for function-pass slots are unused).
	ModuleSlots []Record
	// ModuleSeen marks module slots with real observations.
	ModuleSeen []bool
	// Quarantine, when non-nil, marks this unit's state as distrusted
	// (a pass panicked, or the soundness sentinel caught an unsound skip).
	// Persisted in format v4; v3 files load with no quarantine.
	Quarantine *Quarantine
	// Footprint, when non-nil, is the dependency footprint recorded during
	// the compile that produced this state: the ground-truth read set the
	// build system cross-checks declared invalidation against
	// (internal/footprint). Persisted in format v6; older files load with
	// no footprint.
	Footprint *footprint.Record
}

// Quarantined reports whether the named pass may not be skipped for this
// unit. Nil-safe.
func (s *UnitState) Quarantined(pass string) bool {
	return s != nil && s.Quarantine.Covers(pass)
}

// NewUnitState creates empty state for a unit compiled with the given
// pipeline.
func NewUnitState(unit string, pipeline []string) *UnitState {
	return &UnitState{
		Unit:         unit,
		PipelineHash: PipelineHash(pipeline),
		Funcs:        make(map[string]*FuncState),
		ModuleSlots:  make([]Record, len(pipeline)),
		ModuleSeen:   make([]bool, len(pipeline)),
	}
}

// PipelineHash fingerprints the pipeline configuration together with the
// state format version.
func PipelineHash(pipeline []string) uint64 {
	h := fingerprint.New()
	h.Uint64(StateVersion)
	h.Uint64(fingerprint.Strings(pipeline))
	return h.Sum()
}

// Compatible reports whether the state can be used for the given pipeline.
func (s *UnitState) Compatible(pipeline []string) bool {
	return s != nil && s.PipelineHash == PipelineHash(pipeline) &&
		len(s.ModuleSlots) == len(pipeline)
}

// funcState returns (creating if needed) the record block for a function.
func (s *UnitState) funcState(name string, slots int) *FuncState {
	fs, ok := s.Funcs[name]
	if !ok || len(fs.Slots) != slots {
		fs = newFuncState(slots)
		s.Funcs[name] = fs
	}
	return fs
}

// Prune drops records for functions not in the given set (deleted
// functions), keeping state size proportional to the live unit.
func (s *UnitState) Prune(live map[string]bool) {
	for name := range s.Funcs {
		if !live[name] {
			delete(s.Funcs, name)
		}
	}
}

// RecordCount returns the total number of (function, slot) observations,
// for state-size reporting.
func (s *UnitState) RecordCount() int {
	n := 0
	for _, fs := range s.Funcs {
		for _, seen := range fs.Seen {
			if seen {
				n++
			}
		}
	}
	for _, seen := range s.ModuleSeen {
		if seen {
			n++
		}
	}
	return n
}

// SizeBytes estimates the serialized footprint of the compressed on-disk
// format: one flags byte per slot, ~3 bytes of varints per seen slot, and 8
// bytes per *distinct* input hash (runs of dormant passes share a hash).
// The exact figure comes from internal/state.FileSize.
func (s *UnitState) SizeBytes() int {
	block := func(slots []Record, seen []bool) int {
		distinct := make(map[uint64]bool)
		n := 2
		for i := range slots {
			n++
			if seen[i] && !slots[i].Changed {
				n += 3
				distinct[slots[i].InputHash] = true
			}
		}
		return n + len(distinct)*8
	}
	n := block(s.ModuleSlots, s.ModuleSeen)
	for name, fs := range s.Funcs {
		n += len(name) + 4
		n += block(fs.Slots, fs.Seen)
	}
	return n
}

// String summarizes the state for debugging.
func (s *UnitState) String() string {
	return fmt.Sprintf("state(%s: %d funcs, %d records, ~%d bytes)",
		s.Unit, len(s.Funcs), s.RecordCount(), s.SizeBytes())
}
