package core

// The stateful pipeline driver — the mechanism §4 of the paper describes
// for retrofitting a conventional pass manager:
//
//  1. Before running function pass i on function F, obtain F's current IR
//     fingerprint. Fingerprints are cached: a skipped or dormant pass
//     leaves the IR unchanged, so the fingerprint flows to the next slot
//     for free, and only *active* passes force a rehash.
//
//  2. If the stored record for (F, i) matches the fingerprint and says
//     "dormant", skip the pass. Otherwise run it, time it, and store the
//     new observation.
//
//  3. Module passes get the same treatment keyed by a module fingerprint
//     assembled from the cached function fingerprints.
//
// The Predictive policy (ablation) skips on the record alone without the
// fingerprint guard; with VerifySkips enabled the driver re-runs every
// skipped pass and counts mispredictions, which is how the soundness of
// the guarded policy is demonstrated experimentally (its misprediction
// count is always zero).

import (
	"context"
	"fmt"
	"time"

	"statefulcc/internal/fingerprint"
	"statefulcc/internal/ir"
	"statefulcc/internal/obs"
	"statefulcc/internal/passes"
)

// Policy selects the skipping strategy.
type Policy int

// Policies.
const (
	// Stateless runs every pass — the conventional compiler baseline.
	Stateless Policy = iota
	// Stateful is the paper's fingerprint-guarded dormant-pass skipping.
	Stateful
	// Predictive skips on dormancy records without the fingerprint guard
	// (ablation; unsound without VerifySkips).
	Predictive
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case Stateless:
		return "stateless"
	case Stateful:
		return "stateful"
	case Predictive:
		return "predictive"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Options configures a Driver.
type Options struct {
	// Pipeline is the ordered pass list (defaults to passes.StandardPipeline).
	Pipeline []string
	// Policy selects the skipping strategy (default Stateless).
	Policy Policy
	// VerifySkips re-runs every skipped pass and cross-checks dormancy;
	// used by tests and the misprediction experiments. Skipping then saves
	// no time but records Mispredicted counts.
	VerifySkips bool
	// VerifyIR runs the IR verifier after every pass (slow; tests only).
	VerifyIR bool
	// AuditRate is the soundness sentinel's sampling probability in [0, 1]:
	// with this probability, a pass that would be skipped as dormant is
	// executed anyway and its output IR fingerprint compared against the
	// input. A mismatch is an unsound skip — recorded (SlotStats.Unsound,
	// audit.unsound) and auto-quarantining the (unit, pass) pair. 0
	// disables auditing; 1 audits every skip (tests).
	AuditRate float64
	// AuditSeed seeds the sentinel's deterministic sampling sequence
	// (default 1). The sample pattern affects only timing and counters,
	// never output: auditing a sound skip re-runs a dormant pass, which by
	// definition leaves the IR unchanged.
	AuditSeed uint64
	// SelfCheckHashes cross-checks every memoized fingerprint against a
	// from-scratch recomputation and panics on divergence (slow; tests
	// only). This is the differential oracle for the hierarchical
	// fingerprint memo: a pass that mutates IR without advancing the
	// generation counters shows up here immediately instead of as a silent
	// unsound skip.
	SelfCheckHashes bool
	// Obs carries the observability context: per-slot spans go to its
	// tracer, pipeline totals to its counters. Nil disables both.
	Obs *obs.Sink
}

// Driver executes a pipeline over modules, maintaining dormancy state.
type Driver struct {
	opts  Options
	infos []passes.Info
	fps   []passes.FuncPass   // per slot (nil for module slots)
	mps   []passes.ModulePass // per slot (nil for function slots)

	// memo caches per-block hashes across pipeline slots and compilations
	// (entries are reset at every Run; the map's capacity persists).
	// Drivers are single-threaded per worker, so no locking.
	memo *fingerprint.Memo

	// auditState is the sentinel's splitmix64 PRNG state (advanced only
	// when 0 < AuditRate < 1).
	auditState uint64
}

// NewDriver builds a driver for the configured pipeline.
func NewDriver(opts Options) (*Driver, error) {
	if len(opts.Pipeline) == 0 {
		opts.Pipeline = passes.StandardPipeline
	}
	if opts.AuditSeed == 0 {
		opts.AuditSeed = 1
	}
	d := &Driver{opts: opts, auditState: opts.AuditSeed, memo: fingerprint.NewMemo()}
	for _, name := range opts.Pipeline {
		info, ok := passes.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("core: unknown pass %q", name)
		}
		d.infos = append(d.infos, info)
		if info.Module {
			d.fps = append(d.fps, nil)
			d.mps = append(d.mps, info.New().(passes.ModulePass))
		} else {
			d.fps = append(d.fps, info.New().(passes.FuncPass))
			d.mps = append(d.mps, nil)
		}
	}
	return d, nil
}

// Pipeline returns the driver's pass list.
func (d *Driver) Pipeline() []string { return d.opts.Pipeline }

// auditFire rolls the sentinel's sampling decision: true means "execute
// this would-be skip and verify it". Deterministic (splitmix64 from
// AuditSeed) so sampling is reproducible within a driver; the pattern only
// affects timing and counters, never output.
func (d *Driver) auditFire() bool {
	p := d.opts.AuditRate
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	d.auditState += 0x9e3779b97f4a7c15
	z := d.auditState
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11)/(1<<53) < p
}

// quarantineFor returns the state's quarantine, creating one with the
// given reason if absent.
func quarantineFor(st *UnitState, reason string) *Quarantine {
	if st.Quarantine == nil {
		st.Quarantine = &Quarantine{Reason: reason}
	}
	return st.Quarantine
}

// Policy returns the driver's skipping policy.
func (d *Driver) Policy() Policy { return d.opts.Policy }

// hashCache caches per-function fingerprints across pipeline slots, backed
// by the driver's per-block hash memo: an active pass invalidates one
// function's hash, and the following rehash recomputes only the blocks the
// pass actually touched (tracked by the IR generation counters).
type hashCache struct {
	vals      map[*ir.Func]uint64
	memo      *fingerprint.Memo
	stats     *Stats
	selfCheck bool
}

func (c *hashCache) get(f *ir.Func) uint64 {
	if h, ok := c.vals[f]; ok {
		return h
	}
	start := time.Now()
	h := fingerprint.FunctionWith(f, c.memo)
	c.stats.HashNS += time.Since(start).Nanoseconds()
	c.stats.Hashes++
	if c.selfCheck {
		if ref := fingerprint.Function(f); ref != h {
			panic(fmt.Sprintf("core: memoized fingerprint of %s diverged from reference "+
				"(%#x != %#x): an IR mutation missed its generation bump", f.Name, h, ref))
		}
	}
	c.vals[f] = h
	return h
}

func (c *hashCache) invalidate(f *ir.Func) { delete(c.vals, f) }

// invalidateDeep additionally drops f's memoized block hashes. The audit
// path uses it: a lying pass may have mutated IR without advancing the
// generation counters, so the sentinel's rehash must not trust the memo.
func (c *hashCache) invalidateDeep(f *ir.Func) {
	delete(c.vals, f)
	c.memo.Invalidate(f)
}

// invalidateAll drops every cached hash, function- and block-level. Module
// passes may mutate any function's blocks without generation-counter
// discipline (they splice IR directly), so the block memo must go too.
func (c *hashCache) invalidateAll() {
	c.vals = make(map[*ir.Func]uint64)
	c.memo.Reset()
}

// Run executes the pipeline on m. When the policy is stateful or
// predictive, st supplies and receives dormancy records; it may be nil (or
// built for another pipeline), in which case a fresh state is created. The
// (possibly new) state is returned alongside the statistics.
func (d *Driver) Run(m *ir.Module, st *UnitState) (*UnitState, *Stats, error) {
	return d.RunContext(context.Background(), m, st)
}

// RunContext is Run with cooperative cancellation: the driver checks ctx
// between every function and every slot, so a cancelled build abandons a
// unit mid-pipeline within one pass execution. The returned error wraps
// ctx's error (errors.Is-able against context.Canceled/DeadlineExceeded);
// the partially updated state must not be persisted by the caller.
func (d *Driver) RunContext(ctx context.Context, m *ir.Module, st *UnitState) (*UnitState, *Stats, error) {
	if !st.Compatible(d.opts.Pipeline) {
		// Quarantine survives a pipeline change: it is keyed by pass name,
		// and distrust in a pass is not cured by reordering the pipeline.
		var q *Quarantine
		if st != nil {
			q = st.Quarantine
		}
		st = NewUnitState(m.Unit, d.opts.Pipeline)
		st.Quarantine = q
	}
	stats := &Stats{
		Slots:     make([]SlotStats, len(d.infos)),
		Functions: len(m.Funcs),
	}
	for i, info := range d.infos {
		stats.Slots[i].Pass = info.Name
		stats.Slots[i].Module = info.Module
	}
	// The block memo never survives a compilation boundary: fresh IR means
	// fresh *ir.Block identities and generation counters, and a stale entry
	// keyed by a recycled pointer must not be consulted.
	d.memo.Reset()
	memoized0, rehashed0 := d.memo.BlocksMemoized, d.memo.BlocksRehashed
	cache := &hashCache{
		vals:      make(map[*ir.Func]uint64),
		memo:      d.memo,
		stats:     stats,
		selfCheck: d.opts.SelfCheckHashes,
	}

	// The prune set is the functions entering the pipeline: a function the
	// pipeline itself deletes (deadfunc) reappears in the next build's
	// fresh IR, and its early-slot records must survive to be skippable.
	live := make(map[string]bool, len(m.Funcs))
	for _, f := range m.Funcs {
		live[f.Name] = true
	}

	tr := d.opts.Obs.Trace()
	for slot, info := range d.infos {
		ss := &stats.Slots[slot]
		// Per-slot span bookkeeping: a slot's work is contiguous, so one
		// span covers it; hash time is attributed by delta.
		spanStart := tr.Now()
		hashes0, hashNS0 := stats.Hashes, stats.HashNS
		bm0, br0 := d.memo.BlocksMemoized, d.memo.BlocksRehashed

		var err error
		if cerr := ctx.Err(); cerr != nil {
			err = fmt.Errorf("core: %s cancelled: %w", m.Unit, cerr)
		} else if info.Module {
			err = d.runModuleSlot(m, st, slot, ss, cache)
		} else {
			// Function slot: iterate a snapshot (module passes may have
			// changed the list; function passes do not).
			funcs := append([]*ir.Func(nil), m.Funcs...)
			for _, f := range funcs {
				if cerr := ctx.Err(); cerr != nil {
					err = fmt.Errorf("core: %s cancelled: %w", m.Unit, cerr)
					break
				}
				if err = d.runFuncSlot(m, f, st, slot, ss, cache); err != nil {
					break
				}
			}
		}
		ss.BlocksMemoized += d.memo.BlocksMemoized - bm0
		ss.BlocksRehashed += d.memo.BlocksRehashed - br0
		if tr != nil {
			tr.Emit(obs.Span{
				Name: "pass:" + info.Name, Cat: obs.CatPass,
				Unit: m.Unit, TID: d.opts.Obs.ThreadID(),
				Start: spanStart, Dur: tr.Now() - spanStart,
				Slot: slot, Runs: ss.Runs, Skipped: ss.Skipped, Dormant: ss.Dormant,
				Hashes: stats.Hashes - hashes0, HashNS: stats.HashNS - hashNS0,
				SavedNS: ss.SavedNS,
			})
		}
		if err != nil {
			stats.BlocksMemoized = d.memo.BlocksMemoized - memoized0
			stats.BlocksRehashed = d.memo.BlocksRehashed - rehashed0
			d.countStats(stats)
			return st, stats, err
		}
	}

	// Garbage-collect records of functions deleted from the source.
	st.Prune(live)
	stats.BlocksMemoized = d.memo.BlocksMemoized - memoized0
	stats.BlocksRehashed = d.memo.BlocksRehashed - rehashed0
	d.countStats(stats)
	return st, stats, nil
}

// countStats folds one compilation's totals into the shared pass counters
// — a handful of atomic adds per unit, safe under the worker pool.
func (d *Driver) countStats(stats *Stats) {
	pc := d.opts.Obs.PassCtrs()
	if pc == nil {
		return
	}
	runs, dormant, skipped := stats.Totals()
	var mispredicted, cold, notDormant, fpMismatch, policy int
	var quarantined, audited, unsound int
	for _, sl := range stats.Slots {
		mispredicted += sl.Mispredicted
		cold += sl.Cold
		notDormant += sl.NotDormant
		fpMismatch += sl.FPMismatch
		policy += sl.Policy
		quarantined += sl.Quarantined
		audited += sl.Audited
		unsound += sl.Unsound
	}
	pc.Runs.Add(int64(runs))
	pc.Dormant.Add(int64(dormant))
	pc.Skipped.Add(int64(skipped))
	pc.Mispredicted.Add(int64(mispredicted))
	pc.RunNS.Add(stats.PassTimeNS())
	pc.SavedNS.Add(stats.SavedNS())
	pc.Hashes.Add(int64(stats.Hashes))
	pc.HashNS.Add(stats.HashNS)
	pc.BlocksMemoized.Add(stats.BlocksMemoized)
	pc.BlocksRehashed.Add(stats.BlocksRehashed)
	pc.DecSkipped.Add(int64(skipped))
	pc.DecCold.Add(int64(cold))
	pc.DecNotDormant.Add(int64(notDormant))
	pc.DecFPMismatch.Add(int64(fpMismatch))
	pc.DecPolicy.Add(int64(policy))
	pc.DecQuarantined.Add(int64(quarantined))
	pc.Audited.Add(int64(audited))
	pc.Unsound.Add(int64(unsound))
}

func (d *Driver) runFuncSlot(m *ir.Module, f *ir.Func, st *UnitState, slot int, ss *SlotStats, cache *hashCache) error {
	info := d.infos[slot]
	pass := d.fps[slot]
	fs := st.funcState(f.Name, len(d.infos))
	rec := &fs.Slots[slot]
	seen := fs.Seen[slot]

	// Lazy hashing: a record that says "changed" can never satisfy a skip
	// and (in the persisted format) carries no fingerprint, so the hash is
	// computed only when a dormant record exists to check against — or
	// after a run that turns out dormant, when the (unmodified) IR still
	// equals the pass input. runReason points at the decision-provenance
	// counter a non-skipped execution charges.
	skippable := false
	var h uint64
	haveHash := false
	runReason := &ss.Policy
	if d.opts.Policy != Stateless && st.Quarantined(info.Name) {
		// Quarantined (unit, pass): skipping is suspended; the pass always
		// runs. Fresh observations are still recorded so trust rebuilds.
		runReason = &ss.Quarantined
	} else {
		switch d.opts.Policy {
		case Stateful:
			switch {
			case !info.FunctionLocal:
				// Ineligible pass: skipping disabled by policy.
			case !seen:
				runReason = &ss.Cold
			case rec.Changed:
				runReason = &ss.NotDormant
			default:
				h = cache.get(f)
				haveHash = true
				if rec.InputHash == h {
					skippable = true
				} else {
					runReason = &ss.FPMismatch
				}
			}
		case Predictive:
			switch {
			case !info.FunctionLocal:
			case !seen:
				runReason = &ss.Cold
			case rec.Changed:
				runReason = &ss.NotDormant
			default:
				skippable = true
			}
		}
	}

	if skippable && !d.opts.VerifySkips {
		if !d.auditFire() {
			ss.Skipped++
			ss.SavedNS += rec.CostNS
			return nil
		}
		// Soundness sentinel: execute the would-be skip anyway and compare
		// the output IR fingerprint against the input. Identical output
		// confirms the skip was sound (and costs only this audit); a
		// mismatch is an unsound skip — the record was lying (a
		// nondeterministic or impure pass), so the (unit, pass) pair is
		// quarantined and the record invalidated. Either way the IR now on
		// hand is exactly what a stateless compiler would have produced.
		if !haveHash {
			h = cache.get(f) // predictive policy skips without hashing
		}
		ss.Audited++
		start := time.Now()
		pass.Run(f)
		elapsed := time.Since(start).Nanoseconds()
		ss.RunNS += elapsed
		cache.invalidateDeep(f)
		h2 := cache.get(f)
		if h2 == h {
			ss.Skipped++ // the skip decision stands, audited and confirmed
			rec.blend(elapsed)
			return nil
		}
		ss.Runs++
		ss.Unsound++
		rec.InputHash = 0
		rec.Changed = true
		fs.Seen[slot] = true
		quarantineFor(st, QuarantineUnsound).AddPass(info.Name)
		if d.opts.VerifyIR {
			if err := f.Verify(); err != nil {
				return fmt.Errorf("core: pass %s broke %s.%s: %w", info.Name, m.Unit, f.Name, err)
			}
		}
		return nil
	}

	start := time.Now()
	changed := pass.Run(f)
	elapsed := time.Since(start).Nanoseconds()

	if skippable { // verify mode: the skip would have happened
		ss.Skipped++
		ss.SavedNS += rec.CostNS
		if changed {
			ss.Mispredicted++
			if d.opts.Policy == Stateful {
				return fmt.Errorf("core: soundness violation: guarded skip of %s on %s.%s was wrong",
					info.Name, m.Unit, f.Name)
			}
		}
	} else {
		ss.Runs++
		(*runReason)++
		ss.RunNS += elapsed
		if !changed {
			ss.Dormant++
		}
	}

	// Record the observation.
	if d.opts.Policy != Stateless && info.FunctionLocal {
		if changed {
			// Changed records never satisfy skips; no fingerprint needed.
			rec.InputHash = 0
			rec.Changed = true
		} else {
			if d.opts.Policy == Stateful && !haveHash {
				// The pass was dormant, so the current IR still equals its
				// input; hash it now (and the cache stays warm for the
				// next slot).
				h = cache.get(f)
			}
			rec.InputHash = h
			rec.Changed = false
			rec.blend(elapsed)
		}
		fs.Seen[slot] = true
	}
	if changed {
		cache.invalidate(f)
	}

	if d.opts.VerifyIR {
		if err := f.Verify(); err != nil {
			return fmt.Errorf("core: pass %s broke %s.%s: %w", info.Name, m.Unit, f.Name, err)
		}
	}
	return nil
}

func (d *Driver) runModuleSlot(m *ir.Module, st *UnitState, slot int, ss *SlotStats, cache *hashCache) error {
	info := d.infos[slot]
	pass := d.mps[slot]
	rec := &st.ModuleSlots[slot]
	seen := st.ModuleSeen[slot]

	// Lazy module hashing mirrors the function-slot logic: compute the
	// module fingerprint only when a dormant record exists to compare
	// against (or after a dormant run, below). Function hashing inside
	// cache.get times itself; the combine step is negligible.
	var h uint64
	haveHash := false
	skippable := false
	runReason := &ss.Policy
	if d.opts.Policy != Stateless && st.Quarantined(info.Name) {
		runReason = &ss.Quarantined
	} else {
		switch d.opts.Policy {
		case Stateful:
			switch {
			case !seen:
				runReason = &ss.Cold
			case rec.Changed:
				runReason = &ss.NotDormant
			default:
				h = fingerprint.ModuleWith(m, cache.get)
				haveHash = true
				if rec.InputHash == h {
					skippable = true
				} else {
					runReason = &ss.FPMismatch
				}
			}
		case Predictive:
			switch {
			case !seen:
				runReason = &ss.Cold
			case rec.Changed:
				runReason = &ss.NotDormant
			default:
				skippable = true
			}
		}
	}

	if skippable && !d.opts.VerifySkips {
		if !d.auditFire() {
			ss.Skipped++
			ss.SavedNS += rec.CostNS
			return nil
		}
		// Sentinel audit, module flavour: run the pass, then recompute the
		// module fingerprint from scratch (the pass may have touched any
		// function, so cached per-function hashes must not be trusted).
		if !haveHash {
			h = fingerprint.ModuleWith(m, cache.get)
		}
		ss.Audited++
		start := time.Now()
		pass.RunModule(m)
		elapsed := time.Since(start).Nanoseconds()
		ss.RunNS += elapsed
		cache.invalidateAll()
		h2 := fingerprint.ModuleWith(m, cache.get)
		if h2 == h {
			ss.Skipped++
			rec.blend(elapsed)
			return nil
		}
		ss.Runs++
		ss.Unsound++
		rec.InputHash = 0
		rec.Changed = true
		st.ModuleSeen[slot] = true
		quarantineFor(st, QuarantineUnsound).AddPass(info.Name)
		if d.opts.VerifyIR {
			if err := m.Verify(); err != nil {
				return fmt.Errorf("core: module pass %s broke %s: %w", info.Name, m.Unit, err)
			}
		}
		return nil
	}

	start := time.Now()
	changed := pass.RunModule(m)
	elapsed := time.Since(start).Nanoseconds()

	if skippable {
		ss.Skipped++
		ss.SavedNS += rec.CostNS
		if changed {
			ss.Mispredicted++
			if d.opts.Policy == Stateful {
				return fmt.Errorf("core: soundness violation: guarded skip of module pass %s on %s was wrong",
					info.Name, m.Unit)
			}
		}
	} else {
		ss.Runs++
		(*runReason)++
		ss.RunNS += elapsed
		if !changed {
			ss.Dormant++
		}
	}

	if d.opts.Policy != Stateless {
		if changed {
			rec.InputHash = 0
			rec.Changed = true
		} else {
			if d.opts.Policy == Stateful && !haveHash {
				h = fingerprint.ModuleWith(m, cache.get)
			}
			rec.InputHash = h
			rec.Changed = false
			rec.blend(elapsed)
		}
		st.ModuleSeen[slot] = true
	}
	if changed {
		// A module pass may have touched any function.
		cache.invalidateAll()
	}

	if d.opts.VerifyIR {
		if err := m.Verify(); err != nil {
			return fmt.Errorf("core: module pass %s broke %s: %w", info.Name, m.Unit, err)
		}
	}
	return nil
}
