package core_test

import (
	"strings"
	"testing"

	"statefulcc/internal/core"
	"statefulcc/internal/ir"
	"statefulcc/internal/passes"
	"statefulcc/internal/testutil"
)

const unitSrc = `
var _counter int = 0;
func _bump(x int) int { _counter += x; return _counter; }

func hot(n int, a int, b int) int {
    var acc int = 0;
    for var i int = 0; i < n; i++ {
        acc += a * b + i;
    }
    return acc;
}

func helper(x int) int {
    if x > 10 { return x - 10; }
    return x + 10;
}

func main() int {
    var t int = 0;
    for var i int = 0; i < 4; i++ {
        t += hot(i, 2, 3) + helper(i * 7) + _bump(1);
    }
    print("t", t);
    return t % 128;
}
`

// editedSrc is unitSrc with a one-constant change inside helper — the
// paper's canonical "minor change" incremental-build scenario.
var editedSrc = strings.Replace(unitSrc, "return x + 10;", "return x + 11;", 1)

func build(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := testutil.BuildModule("unit.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func newDriver(t *testing.T, opts core.Options) *core.Driver {
	t.Helper()
	d, err := core.NewDriver(opts)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestStatefulMatchesStatelessOutput is the central correctness property:
// compiling with dormant-pass skipping must produce byte-identical IR to
// the conventional stateless pipeline, on the first build, on an identical
// rebuild, and after an edit.
func TestStatefulMatchesStatelessOutput(t *testing.T) {
	stateless := newDriver(t, core.Options{Policy: core.Stateless})
	stateful := newDriver(t, core.Options{Policy: core.Stateful, VerifyIR: true})

	var st *core.UnitState
	for round, src := range []string{unitSrc, unitSrc, editedSrc, unitSrc} {
		mBase := build(t, src)
		if _, _, err := stateless.Run(mBase, nil); err != nil {
			t.Fatal(err)
		}
		mStateful := build(t, src)
		var err error
		st, _, err = stateful.Run(mStateful, st)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := mStateful.String(), mBase.String(); got != want {
			t.Fatalf("round %d: stateful output differs from stateless\n--- stateful ---\n%s\n--- stateless ---\n%s",
				round, got, want)
		}
	}
}

// TestSecondBuildSkips: an identical rebuild must skip every pass that was
// dormant, and skip at least something substantial.
func TestSecondBuildSkips(t *testing.T) {
	d := newDriver(t, core.Options{Policy: core.Stateful})

	m1 := build(t, unitSrc)
	st, s1, err := d.Run(m1, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, dormant1, skipped1 := s1.Totals()
	if skipped1 != 0 {
		t.Errorf("cold build skipped %d passes; want 0", skipped1)
	}
	if dormant1 == 0 {
		t.Error("cold build observed no dormant passes; pipeline too small?")
	}

	m2 := build(t, unitSrc)
	_, s2, err := d.Run(m2, st)
	if err != nil {
		t.Fatal(err)
	}
	_, _, skipped2 := s2.Totals()
	if skipped2 == 0 {
		t.Fatal("identical rebuild skipped nothing")
	}
	// Every pass dormant in build 1 must be skipped in build 2 (the IR at
	// each slot is identical by determinism): skipped2 >= dormant1 minus
	// module-pass dormancy that cannot be skipped when the module hash
	// moved (it didn't — source identical), so equality is expected.
	if skipped2 < dormant1 {
		t.Errorf("rebuild skipped %d < %d dormant observations", skipped2, dormant1)
	}
	if s2.DormantFraction() < 0.5 {
		t.Errorf("dormant fraction %.2f unexpectedly low", s2.DormantFraction())
	}
}

// TestGuardedSkipsNeverMispredict: with verification enabled, the stateful
// policy must have zero mispredictions across an edit sequence.
func TestGuardedSkipsNeverMispredict(t *testing.T) {
	d := newDriver(t, core.Options{Policy: core.Stateful, VerifySkips: true, VerifyIR: true})
	var st *core.UnitState
	var err error
	for _, src := range []string{unitSrc, unitSrc, editedSrc, editedSrc, unitSrc} {
		m := build(t, src)
		var stats *core.Stats
		st, stats, err = d.Run(m, st)
		if err != nil {
			t.Fatal(err)
		}
		for _, sl := range stats.Slots {
			if sl.Mispredicted != 0 {
				t.Errorf("pass %s mispredicted %d times under the guarded policy", sl.Pass, sl.Mispredicted)
			}
		}
	}
}

// TestEditLocalizesReruns: after editing one function, the untouched
// functions' dormant passes stay skipped.
func TestEditLocalizesReruns(t *testing.T) {
	d := newDriver(t, core.Options{Policy: core.Stateful})
	m1 := build(t, unitSrc)
	st, _, err := d.Run(m1, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild twice: once identical (baseline skips), once edited.
	mSame := build(t, unitSrc)
	_, sSame, err := d.Run(mSame, st)
	if err != nil {
		t.Fatal(err)
	}
	mEdit := build(t, editedSrc)
	_, sEdit, err := d.Run(mEdit, st)
	if err != nil {
		t.Fatal(err)
	}
	_, _, skippedSame := sSame.Totals()
	_, _, skippedEdit := sEdit.Totals()
	if skippedEdit == 0 {
		t.Fatal("edited rebuild skipped nothing — unrelated functions should still skip")
	}
	if skippedEdit >= skippedSame {
		t.Errorf("edited rebuild skipped %d >= identical rebuild %d; edit should cost some skips",
			skippedEdit, skippedSame)
	}
}

// TestPredictivePolicyMispredicts: without the fingerprint guard, an edit
// that turns a dormant pass active must be caught as a misprediction —
// demonstrating why the guard matters.
func TestPredictivePolicyMispredicts(t *testing.T) {
	d := newDriver(t, core.Options{Policy: core.Predictive, VerifySkips: true})

	// fold is fully simplifiable, so late cleanup passes are dormant; the
	// edit introduces a div-by-unknown that instcombine/sccp cannot fold,
	// changing which passes are active.
	src1 := `func f(x int) int { return x + 1 + 1; } func main() int { return f(1); }`
	src2 := `func f(x int) int { var s int = 0; for var i int = 0; i < 3; i++ { s += x * 4; } return s; } func main() int { return f(1); }`

	m1 := build(t, src1)
	st, _, err := d.Run(m1, nil)
	if err != nil {
		t.Fatal(err)
	}
	m2 := build(t, src2)
	_, stats, err := d.Run(m2, st)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, sl := range stats.Slots {
		total += sl.Mispredicted
	}
	if total == 0 {
		t.Error("predictive policy never mispredicted across a structural edit; ablation signal missing")
	}
}

// TestPipelineChangeInvalidatesState: state built for one pipeline must not
// be consulted for another.
func TestPipelineChangeInvalidatesState(t *testing.T) {
	d1 := newDriver(t, core.Options{Policy: core.Stateful, Pipeline: passes.StandardPipeline})
	m := build(t, unitSrc)
	st, _, err := d1.Run(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Compatible(passes.StandardPipeline) {
		t.Fatal("state incompatible with its own pipeline")
	}
	if st.Compatible(passes.QuickPipeline) {
		t.Fatal("state claims compatibility with a different pipeline")
	}
	d2 := newDriver(t, core.Options{Policy: core.Stateful, Pipeline: passes.QuickPipeline})
	m2 := build(t, unitSrc)
	st2, stats, err := d2.Run(m2, st)
	if err != nil {
		t.Fatal(err)
	}
	if st2 == st {
		t.Error("driver reused incompatible state")
	}
	if _, _, skipped := stats.Totals(); skipped != 0 {
		t.Errorf("skipped %d passes using incompatible state", skipped)
	}
}

// TestStatePruning: deleting a function removes its records.
func TestStatePruning(t *testing.T) {
	d := newDriver(t, core.Options{Policy: core.Stateful})
	srcTwo := `func a() int { return 1; } func main() int { return a(); }`
	srcOne := `func main() int { return 1; }`
	m1 := build(t, srcTwo)
	st, _, err := d.Run(m1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Funcs["a"]; !ok {
		t.Fatal("no record for function a after first build")
	}
	m2 := build(t, srcOne)
	st, _, err = d.Run(m2, st)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Funcs["a"]; ok {
		t.Error("records for deleted function a survived pruning")
	}
}

// TestNewFunctionRunsFully: a function added in an incremental build has no
// records and must run the full pipeline (no skips for it).
func TestNewFunctionRunsFully(t *testing.T) {
	d := newDriver(t, core.Options{Policy: core.Stateful, VerifySkips: true})
	src1 := `func main() int { return 1; }`
	src2 := `func fresh(x int) int { return x * 3; } func main() int { return fresh(2); }`
	m1 := build(t, src1)
	st, _, err := d.Run(m1, nil)
	if err != nil {
		t.Fatal(err)
	}
	m2 := build(t, src2)
	_, stats, err := d.Run(m2, st)
	if err != nil {
		t.Fatal(err)
	}
	for _, sl := range stats.Slots {
		if sl.Mispredicted != 0 {
			t.Errorf("misprediction on new-function build in %s", sl.Pass)
		}
	}
}

// TestHashReuseAcrossDormantRun: the fingerprint cache must make a fully
// dormant rebuild cheap — the number of hashes is bounded by roughly one
// per function plus one per active pass, not #slots × #functions.
func TestHashReuseAcrossDormantRun(t *testing.T) {
	d := newDriver(t, core.Options{Policy: core.Stateful})
	m1 := build(t, unitSrc)
	st, _, err := d.Run(m1, nil)
	if err != nil {
		t.Fatal(err)
	}
	m2 := build(t, unitSrc)
	_, stats, err := d.Run(m2, st)
	if err != nil {
		t.Fatal(err)
	}
	funcs := len(m2.Funcs)
	runs, _, _ := stats.Totals()
	limit := funcs + runs + funcs*2 // generous: initial hash + rehash per active run
	if stats.Hashes > limit+len(passes.StandardPipeline) {
		t.Errorf("hashes = %d exceeds expected bound %d (funcs=%d, runs=%d)",
			stats.Hashes, limit, funcs, runs)
	}
}

// TestStatsMergeAndByPass exercises the aggregation helpers.
func TestStatsMergeAndByPass(t *testing.T) {
	d := newDriver(t, core.Options{Policy: core.Stateful})
	m := build(t, unitSrc)
	_, s1, err := d.Run(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	var agg core.Stats
	agg.Merge(s1)
	agg.Merge(s1)
	r1, _, _ := s1.Totals()
	r2, _, _ := agg.Totals()
	if r2 != 2*r1 {
		t.Errorf("merge: runs %d, want %d", r2, 2*r1)
	}
	by := agg.ByPass()
	if len(by) == 0 || by["mem2reg"].Runs == 0 {
		t.Errorf("ByPass aggregation broken: %+v", by)
	}
	if !strings.Contains(s1.String(), "mem2reg") {
		t.Error("stats String() missing pass rows")
	}
}

// TestDormantFractionMotivation reproduces the paper's motivating claim in
// miniature: on an incremental rebuild, a large majority of pass executions
// are dormant.
func TestDormantFractionMotivation(t *testing.T) {
	d := newDriver(t, core.Options{Policy: core.Stateful, VerifySkips: true})
	m1 := build(t, unitSrc)
	st, _, err := d.Run(m1, nil)
	if err != nil {
		t.Fatal(err)
	}
	m2 := build(t, editedSrc)
	_, stats, err := d.Run(m2, st)
	if err != nil {
		t.Fatal(err)
	}
	if f := stats.DormantFraction(); f < 0.6 {
		t.Errorf("dormant fraction on incremental rebuild = %.2f; motivation expects most passes dormant", f)
	}
}
