package core_test

// Differential oracle for the hierarchical fingerprint memo at driver
// level: full generated edit histories compiled with SelfCheckHashes, which
// cross-checks every memoized fingerprint the driver consumes against a
// memo-free recomputation and panics on divergence. Combined with the
// stateless reference below, this proves the memo changes neither hashes
// nor skip decisions nor output IR over realistic edit sequences.

import (
	"testing"

	"statefulcc/internal/core"
	"statefulcc/internal/project"
	"statefulcc/internal/workload"
)

func TestSelfCheckHashesOverHistory(t *testing.T) {
	p := workload.StandardSuite()[0]
	base := workload.Generate(p)
	hist := workload.GenerateHistory(base, p.Seed, 8, workload.DefaultCommitOptions())

	stateless := newDriver(t, core.Options{Policy: core.Stateless})
	stateful := newDriver(t, core.Options{Policy: core.Stateful, SelfCheckHashes: true, VerifyIR: true})

	states := map[string]*core.UnitState{}
	for ci, snap := range append([]project.Snapshot{base}, hist.Commits...) {
		for _, unit := range snap.Units() {
			src := string(snap[unit])
			ref := build(t, src)
			if _, _, err := stateless.Run(ref, nil); err != nil {
				t.Fatalf("commit %d unit %s stateless: %v", ci, unit, err)
			}
			m := build(t, src)
			st, _, err := stateful.Run(m, states[unit])
			if err != nil {
				t.Fatalf("commit %d unit %s stateful: %v", ci, unit, err)
			}
			states[unit] = st
			if got, want := m.String(), ref.String(); got != want {
				t.Fatalf("commit %d unit %s: self-checked stateful output differs from stateless",
					ci, unit)
			}
		}
	}
}

// TestSelfCheckedSkipDecisionsMatchUnmemoized pins skip-decision
// equivalence directly: the same edit history compiled twice — once
// through the memoized hash path (self-checked), once with a driver whose
// memo is reset so aggressively it never hits — must produce identical
// per-slot run/skip/dormant counts on every build.
func TestSelfCheckedSkipDecisionsMatchUnmemoized(t *testing.T) {
	histSrcs := []string{unitSrc, unitSrc, editedSrc, editedSrc, unitSrc}

	run := func(opts core.Options) []core.Stats {
		d := newDriver(t, opts)
		var st *core.UnitState
		var out []core.Stats
		for _, src := range histSrcs {
			var stats *core.Stats
			var err error
			st, stats, err = d.Run(build(t, src), st)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, *stats)
		}
		return out
	}

	memoized := run(core.Options{Policy: core.Stateful, SelfCheckHashes: true})
	plain := run(core.Options{Policy: core.Stateful})
	for i := range memoized {
		mr, md, ms := memoized[i].Totals()
		pr, pd, ps := plain[i].Totals()
		if mr != pr || md != pd || ms != ps {
			t.Fatalf("build %d: memoized decisions (runs=%d dormant=%d skipped=%d) != reference (runs=%d dormant=%d skipped=%d)",
				i, mr, md, ms, pr, pd, ps)
		}
	}
}
