package core

// Compilation statistics: the measurements behind the paper's motivation
// figures (dormant fraction, dormancy persistence) and its evaluation
// (per-pass savings, skip counts, hashing overhead).

import (
	"fmt"
	"strings"
)

// Decision reasons — why a pass execution ran or was skipped. These are
// the provenance taxonomy the build flight recorder (internal/history) and
// `minibuild explain` report; docs/OBSERVABILITY.md documents each.
const (
	// ReasonSkippedDormant: a fingerprint-matched (or, in predictive mode,
	// record-only) dormancy record allowed the execution to be skipped.
	ReasonSkippedDormant = "skipped-dormant"
	// ReasonColdState: no prior observation existed for this slot.
	ReasonColdState = "cold-state"
	// ReasonNotDormant: the record says the pass changed the IR last time.
	ReasonNotDormant = "not-dormant-last-time"
	// ReasonFingerprintMismatch: a dormant record existed but the input IR
	// fingerprint no longer matches it.
	ReasonFingerprintMismatch = "fingerprint-mismatch"
	// ReasonPolicyDisabled: the policy (stateless) or the pass's own
	// eligibility (not function-local) rules out skipping entirely.
	ReasonPolicyDisabled = "policy-disabled"
	// ReasonQuarantined: the (unit, pass) pair is quarantined — skipping is
	// suspended until enough clean builds restore trust.
	ReasonQuarantined = "quarantined"
	// ReasonAuditUnsound: the soundness sentinel executed a would-be skip
	// and caught the pass changing the IR — the skip would have been
	// unsound. The execution that caught it is charged here.
	ReasonAuditUnsound = "audit-unsound"
	// ReasonRan is the generic fallback when no finer reason was recorded.
	ReasonRan = "ran"
)

// SlotStats aggregates one pipeline slot's behaviour over the functions (or
// the module) it processed.
type SlotStats struct {
	// Pass is the pass name of this pipeline slot.
	Pass string
	// Module is true for module-pass slots.
	Module bool
	// Runs counts actual pass executions.
	Runs int
	// Dormant counts executions that reported no change.
	Dormant int
	// Skipped counts executions avoided by dormancy records.
	Skipped int
	// Mispredicted counts verified skips that would have been wrong
	// (only populated in verify mode; always 0 for the guarded policy).
	Mispredicted int
	// RunNS is the total time spent executing the pass.
	RunNS int64
	// SavedNS estimates the time skipping avoided (sum of recorded costs).
	SavedNS int64

	// Decision provenance: every execution counted in Runs has exactly one
	// of these reasons (Skipped executions are all ReasonSkippedDormant).
	// See the Reason* constants.

	// Cold counts runs with no prior observation for the slot.
	Cold int
	// NotDormant counts runs whose record said "changed last time".
	NotDormant int
	// FPMismatch counts runs whose dormant record failed the fingerprint
	// guard (stateful policy only).
	FPMismatch int
	// Policy counts runs where skipping was ruled out by policy or pass
	// eligibility (stateless mode, or non-function-local function passes).
	Policy int
	// Quarantined counts runs forced by a (unit, pass) quarantine.
	Quarantined int

	// Soundness-sentinel accounting (see docs/ROBUSTNESS.md).

	// Audited counts would-be skips the sentinel executed anyway.
	Audited int
	// Unsound counts audited executions whose output fingerprint differed
	// from the input — unsound skips the sentinel caught (each engages a
	// quarantine and is charged as a run with ReasonAuditUnsound).
	Unsound int

	// Hierarchical-fingerprint accounting: block hashes reused from the
	// memo vs recomputed while this slot's fingerprints were taken.

	// BlocksMemoized counts block hashes served from the memo.
	BlocksMemoized int64
	// BlocksRehashed counts block hashes recomputed.
	BlocksRehashed int64
}

// Reason returns the slot's dominant decision reason — the reason covering
// the most executions, with skips breaking ties (they are the interesting
// outcome), then the run reasons in guard order. ReasonRan covers slots
// that executed without finer provenance; an idle slot reports "".
func (sl *SlotStats) Reason() string {
	best, n := "", 0
	for _, c := range []struct {
		reason string
		count  int
	}{
		{ReasonSkippedDormant, sl.Skipped},
		{ReasonAuditUnsound, sl.Unsound},
		{ReasonQuarantined, sl.Quarantined},
		{ReasonFingerprintMismatch, sl.FPMismatch},
		{ReasonNotDormant, sl.NotDormant},
		{ReasonColdState, sl.Cold},
		{ReasonPolicyDisabled, sl.Policy},
	} {
		if c.count > n {
			best, n = c.reason, c.count
		}
	}
	if best == "" && sl.Runs > 0 {
		return ReasonRan
	}
	return best
}

// Stats aggregates one compilation.
type Stats struct {
	// Slots has one entry per pipeline slot.
	Slots []SlotStats
	// HashNS is the total time spent fingerprinting.
	HashNS int64
	// Hashes counts fingerprint computations.
	Hashes int
	// BlocksMemoized counts block hashes served from the hierarchical
	// fingerprint memo instead of being recomputed.
	BlocksMemoized int64
	// BlocksRehashed counts block hashes actually recomputed.
	BlocksRehashed int64
	// Functions is the number of functions entering the pipeline.
	Functions int
}

// Totals sums runs/dormant/skips across slots.
func (s *Stats) Totals() (runs, dormant, skipped int) {
	for _, sl := range s.Slots {
		runs += sl.Runs
		dormant += sl.Dormant
		skipped += sl.Skipped
	}
	return
}

// SentinelTotals sums the soundness sentinel's audited executions and the
// unsound skips it caught across slots.
func (s *Stats) SentinelTotals() (audited, unsound int) {
	for _, sl := range s.Slots {
		audited += sl.Audited
		unsound += sl.Unsound
	}
	return
}

// PassTimeNS is the total time spent inside passes.
func (s *Stats) PassTimeNS() int64 {
	var t int64
	for _, sl := range s.Slots {
		t += sl.RunNS
	}
	return t
}

// SavedNS is the total estimated time saved by skipping.
func (s *Stats) SavedNS() int64 {
	var t int64
	for _, sl := range s.Slots {
		t += sl.SavedNS
	}
	return t
}

// DormantFraction is the fraction of pass executions (runs + skips) that
// did or would have done nothing — the paper's motivation metric.
func (s *Stats) DormantFraction() float64 {
	runs, dormant, skipped := s.Totals()
	total := runs + skipped
	if total == 0 {
		return 0
	}
	// Skipped executions were dormant by construction.
	return float64(dormant+skipped) / float64(total)
}

// Merge accumulates other into s (slot-wise; pipelines must match).
func (s *Stats) Merge(other *Stats) {
	if len(s.Slots) == 0 {
		s.Slots = make([]SlotStats, len(other.Slots))
		for i := range other.Slots {
			s.Slots[i].Pass = other.Slots[i].Pass
			s.Slots[i].Module = other.Slots[i].Module
		}
	}
	for i := range other.Slots {
		if i >= len(s.Slots) {
			break
		}
		s.Slots[i].Runs += other.Slots[i].Runs
		s.Slots[i].Dormant += other.Slots[i].Dormant
		s.Slots[i].Skipped += other.Slots[i].Skipped
		s.Slots[i].Mispredicted += other.Slots[i].Mispredicted
		s.Slots[i].RunNS += other.Slots[i].RunNS
		s.Slots[i].SavedNS += other.Slots[i].SavedNS
		s.Slots[i].Cold += other.Slots[i].Cold
		s.Slots[i].NotDormant += other.Slots[i].NotDormant
		s.Slots[i].FPMismatch += other.Slots[i].FPMismatch
		s.Slots[i].Policy += other.Slots[i].Policy
		s.Slots[i].Quarantined += other.Slots[i].Quarantined
		s.Slots[i].Audited += other.Slots[i].Audited
		s.Slots[i].Unsound += other.Slots[i].Unsound
		s.Slots[i].BlocksMemoized += other.Slots[i].BlocksMemoized
		s.Slots[i].BlocksRehashed += other.Slots[i].BlocksRehashed
	}
	s.HashNS += other.HashNS
	s.Hashes += other.Hashes
	s.BlocksMemoized += other.BlocksMemoized
	s.BlocksRehashed += other.BlocksRehashed
	s.Functions += other.Functions
}

// ByPass aggregates slot stats by pass name (a pass can appear at several
// pipeline slots).
func (s *Stats) ByPass() map[string]SlotStats {
	out := make(map[string]SlotStats)
	for _, sl := range s.Slots {
		agg := out[sl.Pass]
		agg.Pass = sl.Pass
		agg.Module = sl.Module
		agg.Runs += sl.Runs
		agg.Dormant += sl.Dormant
		agg.Skipped += sl.Skipped
		agg.Mispredicted += sl.Mispredicted
		agg.RunNS += sl.RunNS
		agg.SavedNS += sl.SavedNS
		agg.Cold += sl.Cold
		agg.NotDormant += sl.NotDormant
		agg.FPMismatch += sl.FPMismatch
		agg.Policy += sl.Policy
		agg.Quarantined += sl.Quarantined
		agg.Audited += sl.Audited
		agg.Unsound += sl.Unsound
		agg.BlocksMemoized += sl.BlocksMemoized
		agg.BlocksRehashed += sl.BlocksRehashed
		out[sl.Pass] = agg
	}
	return out
}

// String renders a compact table for logs and the minicc -stats flag.
func (s *Stats) String() string {
	var sb strings.Builder
	runs, dormant, skipped := s.Totals()
	fmt.Fprintf(&sb, "pipeline: %d funcs, %d runs (%d dormant), %d skipped, dormant-fraction %.1f%%\n",
		s.Functions, runs, dormant, skipped, 100*s.DormantFraction())
	fmt.Fprintf(&sb, "pass time %.3fms, est. saved %.3fms, hashing %.3fms (%d hashes)\n",
		float64(s.PassTimeNS())/1e6, float64(s.SavedNS())/1e6, float64(s.HashNS)/1e6, s.Hashes)
	for i, sl := range s.Slots {
		fmt.Fprintf(&sb, "  [%2d] %-12s runs=%-4d dormant=%-4d skipped=%-4d t=%.3fms saved=%.3fms\n",
			i, sl.Pass, sl.Runs, sl.Dormant, sl.Skipped,
			float64(sl.RunNS)/1e6, float64(sl.SavedNS)/1e6)
	}
	return sb.String()
}
