package core

// Compilation statistics: the measurements behind the paper's motivation
// figures (dormant fraction, dormancy persistence) and its evaluation
// (per-pass savings, skip counts, hashing overhead).

import (
	"fmt"
	"strings"
)

// SlotStats aggregates one pipeline slot's behaviour over the functions (or
// the module) it processed.
type SlotStats struct {
	// Pass is the pass name of this pipeline slot.
	Pass string
	// Module is true for module-pass slots.
	Module bool
	// Runs counts actual pass executions.
	Runs int
	// Dormant counts executions that reported no change.
	Dormant int
	// Skipped counts executions avoided by dormancy records.
	Skipped int
	// Mispredicted counts verified skips that would have been wrong
	// (only populated in verify mode; always 0 for the guarded policy).
	Mispredicted int
	// RunNS is the total time spent executing the pass.
	RunNS int64
	// SavedNS estimates the time skipping avoided (sum of recorded costs).
	SavedNS int64
}

// Stats aggregates one compilation.
type Stats struct {
	// Slots has one entry per pipeline slot.
	Slots []SlotStats
	// HashNS is the total time spent fingerprinting.
	HashNS int64
	// Hashes counts fingerprint computations.
	Hashes int
	// Functions is the number of functions entering the pipeline.
	Functions int
}

// Totals sums runs/dormant/skips across slots.
func (s *Stats) Totals() (runs, dormant, skipped int) {
	for _, sl := range s.Slots {
		runs += sl.Runs
		dormant += sl.Dormant
		skipped += sl.Skipped
	}
	return
}

// PassTimeNS is the total time spent inside passes.
func (s *Stats) PassTimeNS() int64 {
	var t int64
	for _, sl := range s.Slots {
		t += sl.RunNS
	}
	return t
}

// SavedNS is the total estimated time saved by skipping.
func (s *Stats) SavedNS() int64 {
	var t int64
	for _, sl := range s.Slots {
		t += sl.SavedNS
	}
	return t
}

// DormantFraction is the fraction of pass executions (runs + skips) that
// did or would have done nothing — the paper's motivation metric.
func (s *Stats) DormantFraction() float64 {
	runs, dormant, skipped := s.Totals()
	total := runs + skipped
	if total == 0 {
		return 0
	}
	// Skipped executions were dormant by construction.
	return float64(dormant+skipped) / float64(total)
}

// Merge accumulates other into s (slot-wise; pipelines must match).
func (s *Stats) Merge(other *Stats) {
	if len(s.Slots) == 0 {
		s.Slots = make([]SlotStats, len(other.Slots))
		for i := range other.Slots {
			s.Slots[i].Pass = other.Slots[i].Pass
			s.Slots[i].Module = other.Slots[i].Module
		}
	}
	for i := range other.Slots {
		if i >= len(s.Slots) {
			break
		}
		s.Slots[i].Runs += other.Slots[i].Runs
		s.Slots[i].Dormant += other.Slots[i].Dormant
		s.Slots[i].Skipped += other.Slots[i].Skipped
		s.Slots[i].Mispredicted += other.Slots[i].Mispredicted
		s.Slots[i].RunNS += other.Slots[i].RunNS
		s.Slots[i].SavedNS += other.Slots[i].SavedNS
	}
	s.HashNS += other.HashNS
	s.Hashes += other.Hashes
	s.Functions += other.Functions
}

// ByPass aggregates slot stats by pass name (a pass can appear at several
// pipeline slots).
func (s *Stats) ByPass() map[string]SlotStats {
	out := make(map[string]SlotStats)
	for _, sl := range s.Slots {
		agg := out[sl.Pass]
		agg.Pass = sl.Pass
		agg.Module = sl.Module
		agg.Runs += sl.Runs
		agg.Dormant += sl.Dormant
		agg.Skipped += sl.Skipped
		agg.Mispredicted += sl.Mispredicted
		agg.RunNS += sl.RunNS
		agg.SavedNS += sl.SavedNS
		out[sl.Pass] = agg
	}
	return out
}

// String renders a compact table for logs and the minicc -stats flag.
func (s *Stats) String() string {
	var sb strings.Builder
	runs, dormant, skipped := s.Totals()
	fmt.Fprintf(&sb, "pipeline: %d funcs, %d runs (%d dormant), %d skipped, dormant-fraction %.1f%%\n",
		s.Functions, runs, dormant, skipped, 100*s.DormantFraction())
	fmt.Fprintf(&sb, "pass time %.3fms, est. saved %.3fms, hashing %.3fms (%d hashes)\n",
		float64(s.PassTimeNS())/1e6, float64(s.SavedNS())/1e6, float64(s.HashNS)/1e6, s.Hashes)
	for i, sl := range s.Slots {
		fmt.Fprintf(&sb, "  [%2d] %-12s runs=%-4d dormant=%-4d skipped=%-4d t=%.3fms saved=%.3fms\n",
			i, sl.Pass, sl.Runs, sl.Dormant, sl.Skipped,
			float64(sl.RunNS)/1e6, float64(sl.SavedNS)/1e6)
	}
	return sb.String()
}
