package project_test

import (
	"os"
	"path/filepath"
	"testing"

	"statefulcc/internal/project"
)

func sample() project.Snapshot {
	return project.Snapshot{
		"main.mc":       []byte("func main() { }\n"),
		"src/lib.mc":    []byte("func lib() int { return 1; }\n"),
		"src/deep/x.mc": []byte("func x() { }\n"),
	}
}

func TestUnitsSorted(t *testing.T) {
	units := sample().Units()
	want := []string{"main.mc", "src/deep/x.mc", "src/lib.mc"}
	if len(units) != len(want) {
		t.Fatalf("units = %v", units)
	}
	for i := range want {
		if units[i] != want[i] {
			t.Errorf("units[%d] = %s, want %s", i, units[i], want[i])
		}
	}
}

func TestDiff(t *testing.T) {
	a := sample()
	b := a.Clone()
	if d := project.Diff(a, b); len(d) != 0 {
		t.Errorf("identical snapshots diff: %v", d)
	}
	b["main.mc"] = []byte("func main() int { return 1; }\n")
	delete(b, "src/lib.mc")
	b["new.mc"] = []byte("func n() { }\n")
	d := project.Diff(a, b)
	if len(d) != 3 {
		t.Fatalf("diff = %v, want 3 entries", d)
	}
	// Sorted: main.mc, new.mc, src/lib.mc.
	if d[0] != "main.mc" || d[1] != "new.mc" || d[2] != "src/lib.mc" {
		t.Errorf("diff order: %v", d)
	}
}

func TestLoadDirRequiresSources(t *testing.T) {
	if _, err := project.LoadDir(t.TempDir()); err == nil {
		t.Error("empty dir should error")
	}
}

func TestNestedRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if err := project.WriteDir(dir, sample()); err != nil {
		t.Fatal(err)
	}
	// Non-.mc files are ignored by LoadDir.
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := project.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("loaded %d units", len(got))
	}
	if string(got["src/deep/x.mc"]) != "func x() { }\n" {
		t.Error("nested unit corrupted")
	}
}

func TestSizeHelpers(t *testing.T) {
	s := sample()
	if s.TotalBytes() != len(s["main.mc"])+len(s["src/lib.mc"])+len(s["src/deep/x.mc"]) {
		t.Error("TotalBytes wrong")
	}
	if s.Lines() < 3 {
		t.Errorf("Lines = %d", s.Lines())
	}
}
