// Package project models multi-file MiniC projects: a Snapshot is the
// source tree of one build (unit name → contents), loadable from and
// writable to a directory. The workload generator produces Snapshots, the
// edit simulator mutates them, and the build system consumes them.
package project

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// SourceSuffix is the MiniC file extension.
const SourceSuffix = ".mc"

// Snapshot is an immutable view of a project's sources at one build.
type Snapshot map[string][]byte

// Clone deep-copies the snapshot (edit simulation mutates copies).
func (s Snapshot) Clone() Snapshot {
	out := make(Snapshot, len(s))
	for k, v := range s {
		c := make([]byte, len(v))
		copy(c, v)
		out[k] = c
	}
	return out
}

// Units returns the unit names in sorted order.
func (s Snapshot) Units() []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TotalBytes sums the source sizes.
func (s Snapshot) TotalBytes() int {
	n := 0
	for _, v := range s {
		n += len(v)
	}
	return n
}

// Lines counts source lines across all units.
func (s Snapshot) Lines() int {
	n := 0
	for _, v := range s {
		n += strings.Count(string(v), "\n") + 1
	}
	return n
}

// Diff lists the unit names whose contents differ between two snapshots
// (added, removed, or changed), sorted.
func Diff(a, b Snapshot) []string {
	set := map[string]bool{}
	for k, av := range a {
		bv, ok := b[k]
		if !ok || string(av) != string(bv) {
			set[k] = true
		}
	}
	for k := range b {
		if _, ok := a[k]; !ok {
			set[k] = true
		}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// LoadDir reads every *.mc file under dir (recursively) into a Snapshot,
// with unit names relative to dir using forward slashes.
func LoadDir(dir string) (Snapshot, error) {
	snap := make(Snapshot)
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(d.Name(), SourceSuffix) {
			return nil
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		content, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		snap[filepath.ToSlash(rel)] = content
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("project: %w", err)
	}
	if len(snap) == 0 {
		return nil, fmt.Errorf("project: no %s files under %s", SourceSuffix, dir)
	}
	return snap, nil
}

// WriteDir materializes the snapshot under dir, creating directories as
// needed and removing stale .mc files that are not part of the snapshot.
func WriteDir(dir string, snap Snapshot) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("project: %w", err)
	}
	// Remove stale units.
	existing, _ := LoadDir(dir)
	for name := range existing {
		if _, ok := snap[name]; !ok {
			_ = os.Remove(filepath.Join(dir, filepath.FromSlash(name)))
		}
	}
	for name, content := range snap {
		p := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			return fmt.Errorf("project: %w", err)
		}
		if err := os.WriteFile(p, content, 0o644); err != nil {
			return fmt.Errorf("project: %w", err)
		}
	}
	return nil
}
