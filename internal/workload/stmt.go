package workload

// Statement and expression generation: a small grammar-driven sampler that
// only emits terminating, trap-free constructs.

import (
	"statefulcc/internal/ast"
	"statefulcc/internal/token"
)

// stmt samples one statement.
func (g *generator) stmt(ctx *bodyCtx) ast.Stmt {
	if ctx.depth > 2 {
		return g.simpleStmt(ctx)
	}
	switch g.intn(0, 11) {
	case 0, 1:
		return g.declStmt(ctx)
	case 2, 3:
		return g.simpleStmt(ctx)
	case 4, 5:
		return g.ifStmt(ctx)
	case 6, 7:
		return g.forStmt(ctx)
	case 8:
		return g.arrayStmt(ctx)
	case 9:
		return g.whileStmt(ctx)
	case 10:
		return g.boolStmt(ctx)
	default:
		return g.callOrSimple(ctx)
	}
}

// boolStmt declares or updates a bool local.
func (g *generator) boolStmt(ctx *bodyCtx) ast.Stmt {
	if len(ctx.boolVars) > 0 && g.chance(0.5) {
		name := ctx.boolVars[g.intn(0, len(ctx.boolVars)-1)]
		return &ast.AssignStmt{Lhs: ident(name), Op: token.ASSIGN, Rhs: g.boolExpr(ctx, 1)}
	}
	name := g.fresh("b")
	d := &ast.VarDecl{
		Name: name,
		Type: &ast.ScalarType{Kind: token.BOOLTYPE},
		Init: g.boolExpr(ctx, 1),
	}
	ctx.boolVars = append(ctx.boolVars, name)
	return &ast.DeclStmt{Decl: d}
}

// whileStmt emits a while loop over a dedicated strictly-decreasing
// counter, so termination holds no matter what the body does (the counter
// is never exposed as an assignable variable, and the final body statement
// always decrements it).
func (g *generator) whileStmt(ctx *bodyCtx) ast.Stmt {
	ctx.depth++
	wasInLoop := ctx.inLoop
	ctx.inLoop = true
	defer func() { ctx.depth--; ctx.inLoop = wasInLoop }()

	w := g.fresh("w")
	init := &ast.DeclStmt{Decl: &ast.VarDecl{
		Name: w, Type: &ast.ScalarType{Kind: token.INTTYPE}, Init: intLit(int64(g.intn(2, 10))),
	}}
	savedRead := ctx.readVars
	ctx.readVars = append(append([]string(nil), ctx.readVars...), w)
	body := g.smallBlock(ctx, 1, 2)
	ctx.readVars = savedRead
	body.Stmts = append(body.Stmts, &ast.AssignStmt{
		Lhs: ident(w), Op: token.SUBASSIGN, Rhs: intLit(int64(g.intn(1, 2))),
	})
	loop := &ast.WhileStmt{
		Cond: &ast.BinaryExpr{X: ident(w), Op: token.GTR, Y: intLit(0)},
		Body: body,
	}
	return &ast.BlockStmt{Stmts: []ast.Stmt{init, loop}}
}

func (g *generator) declStmt(ctx *bodyCtx) ast.Stmt {
	name := g.fresh("v")
	d := &ast.VarDecl{
		Name: name,
		Type: &ast.ScalarType{Kind: token.INTTYPE},
		Init: g.intExpr(ctx, 2),
	}
	ctx.intVars = append(ctx.intVars, name)
	return &ast.DeclStmt{Decl: d}
}

func (g *generator) simpleStmt(ctx *bodyCtx) ast.Stmt {
	target := g.pickVar(ctx)
	ops := []token.Kind{token.ASSIGN, token.ADDASSIGN, token.SUBASSIGN, token.MULASSIGN}
	return &ast.AssignStmt{
		Lhs: ident(target),
		Op:  ops[g.intn(0, len(ops)-1)],
		Rhs: g.intExpr(ctx, 2),
	}
}

func (g *generator) ifStmt(ctx *bodyCtx) ast.Stmt {
	ctx.depth++
	defer func() { ctx.depth-- }()
	s := &ast.IfStmt{
		Cond: g.boolExpr(ctx, 1),
		Then: g.smallBlock(ctx, 1, 2),
	}
	if g.chance(0.5) {
		s.Else = g.smallBlock(ctx, 1, 2)
	}
	return s
}

// forStmt emits a bounded counted loop. Calls inside the loop body are
// restricted to leaf functions (see stmt grammar notes in the package doc).
func (g *generator) forStmt(ctx *bodyCtx) ast.Stmt {
	ctx.depth++
	wasInLoop := ctx.inLoop
	ctx.inLoop = true
	defer func() { ctx.depth--; ctx.inLoop = wasInLoop }()

	iv := g.fresh("i")
	bound := int64(g.intn(2, 12))
	init := &ast.DeclStmt{Decl: &ast.VarDecl{
		Name: iv, Type: &ast.ScalarType{Kind: token.INTTYPE}, Init: intLit(0),
	}}
	// The induction variable is readable inside but never reassigned.
	savedRead := ctx.readVars
	ctx.readVars = append(append([]string(nil), ctx.readVars...), iv)
	body := g.smallBlock(ctx, 1, 3)
	ctx.readVars = savedRead

	return &ast.ForStmt{
		Init: init,
		Cond: &ast.BinaryExpr{X: ident(iv), Op: token.LSS, Y: intLit(bound)},
		Post: &ast.AssignStmt{Lhs: ident(iv), Op: token.ADDASSIGN, Rhs: intLit(1)},
		Body: body,
	}
}

// arrayStmt writes to a global array with a safe index.
func (g *generator) arrayStmt(ctx *bodyCtx) ast.Stmt {
	if len(ctx.arrays) == 0 {
		return g.simpleStmt(ctx)
	}
	arr := ctx.arrays[g.intn(0, len(ctx.arrays)-1)]
	idx := g.safeIndex(ctx, arr.size)
	return &ast.AssignStmt{
		Lhs: &ast.IndexExpr{X: ident(arr.name), Index: idx},
		Op:  token.ASSIGN,
		Rhs: g.intExpr(ctx, 1),
	}
}

func (g *generator) callOrSimple(ctx *bodyCtx) ast.Stmt {
	if fi, ok := g.pickCallee(ctx); ok && fi.returns {
		return &ast.AssignStmt{
			Lhs: ident(g.pickVar(ctx)),
			Op:  token.ADDASSIGN,
			Rhs: g.callExpr(ctx, fi),
		}
	}
	return g.simpleStmt(ctx)
}

func (g *generator) smallBlock(ctx *bodyCtx, lo, hi int) *ast.BlockStmt {
	b := &ast.BlockStmt{}
	// New scope: locals declared inside must not leak out.
	savedInt := append([]string(nil), ctx.intVars...)
	savedBool := append([]string(nil), ctx.boolVars...)
	n := g.intn(lo, hi)
	for i := 0; i < n; i++ {
		b.Stmts = append(b.Stmts, g.stmt(ctx))
	}
	ctx.intVars = savedInt
	ctx.boolVars = savedBool
	return b
}

func (g *generator) pickVar(ctx *bodyCtx) string {
	return ctx.intVars[g.intn(0, len(ctx.intVars)-1)]
}

// pickCallee chooses a callable function: lower level than the current
// function, leaf-only inside loops, honoring the cross-file fraction and
// privacy.
func (g *generator) pickCallee(ctx *bodyCtx) (funcInfo, bool) {
	var candidates []funcInfo
	for _, fi := range g.funcs {
		if fi.level >= ctx.level && ctx.level > 0 {
			continue
		}
		if ctx.level == 0 {
			continue // leaf functions make no calls
		}
		if ctx.inLoop && fi.level != 0 {
			continue
		}
		sameUnit := fi.unit == ctx.unit
		if !sameUnit && fi.private {
			continue
		}
		if !sameUnit && !g.chance(g.p.CrossFileCallFrac) {
			continue
		}
		candidates = append(candidates, fi)
	}
	if len(candidates) == 0 {
		return funcInfo{}, false
	}
	fi := candidates[g.intn(0, len(candidates)-1)]
	if fi.unit != ctx.unit && ctx.externs != nil {
		ctx.externs[fi.name] = fi
	}
	return fi, true
}

func (g *generator) callExpr(ctx *bodyCtx, fi funcInfo) *ast.CallExpr {
	call := &ast.CallExpr{Callee: ident(fi.name)}
	for i := 0; i < fi.params; i++ {
		call.Args = append(call.Args, g.intExpr(ctx, 1))
	}
	if fi.unit != ctx.unit && ctx.externs != nil {
		ctx.externs[fi.name] = fi
	}
	return call
}

// --- expressions -----------------------------------------------------------

// intExpr samples an int-typed expression of bounded depth.
func (g *generator) intExpr(ctx *bodyCtx, depth int) ast.Expr {
	if depth <= 0 {
		return g.intLeaf(ctx)
	}
	switch g.intn(0, 9) {
	case 0, 1, 2:
		return g.intLeaf(ctx)
	case 3, 4, 5:
		ops := []token.Kind{token.ADD, token.SUB, token.MUL, token.AND, token.OR, token.XOR}
		return &ast.BinaryExpr{
			X:  g.intExpr(ctx, depth-1),
			Op: ops[g.intn(0, len(ops)-1)],
			Y:  g.intExpr(ctx, depth-1),
		}
	case 6:
		// Division and remainder by safe nonzero constants.
		op := token.QUO
		if g.chance(0.5) {
			op = token.REM
		}
		return &ast.BinaryExpr{
			X:  g.intExpr(ctx, depth-1),
			Op: op,
			Y:  intLit(int64(g.intn(2, 9))),
		}
	case 7:
		// Shifts by safe constant amounts.
		op := token.SHL
		if g.chance(0.5) {
			op = token.SHR
		}
		return &ast.BinaryExpr{X: g.intExpr(ctx, depth-1), Op: op, Y: intLit(int64(g.intn(0, 6)))}
	case 8:
		return &ast.UnaryExpr{Op: token.SUB, X: g.intExpr(ctx, depth-1)}
	default:
		if fi, ok := g.pickCallee(ctx); ok && fi.returns {
			return g.callExpr(ctx, fi)
		}
		return g.intLeaf(ctx)
	}
}

func (g *generator) intLeaf(ctx *bodyCtx) ast.Expr {
	roll := g.intn(0, 9)
	switch {
	case roll <= 3 && len(ctx.intVars)+len(ctx.readVars) > 0:
		all := append(append([]string(nil), ctx.intVars...), ctx.readVars...)
		return ident(all[g.intn(0, len(all)-1)])
	case roll <= 5 && len(ctx.consts) > 0:
		return ident(ctx.consts[g.intn(0, len(ctx.consts)-1)])
	case roll == 6 && len(ctx.arrays) > 0:
		arr := ctx.arrays[g.intn(0, len(ctx.arrays)-1)]
		return &ast.IndexExpr{X: ident(arr.name), Index: g.safeIndex(ctx, arr.size)}
	case roll == 7:
		// Large literal: the edit simulator's const-tweak targets these.
		return intLit(int64(g.intn(10, 999)))
	default:
		return intLit(int64(g.intn(0, 9)))
	}
}

// safeIndex produces an expression guaranteed to be within [0, size):
// either a constant or (nonNegExpr % size)... with a mask to force
// non-negativity: ((e & 1023) % size).
func (g *generator) safeIndex(ctx *bodyCtx, size int64) ast.Expr {
	if g.chance(0.5) || len(ctx.intVars) == 0 {
		return intLit(int64(g.intn(0, int(size-1))))
	}
	masked := &ast.BinaryExpr{X: ident(g.pickVar(ctx)), Op: token.AND, Y: intLit(1023)}
	return &ast.BinaryExpr{X: &ast.ParenExpr{X: masked}, Op: token.REM, Y: intLit(size)}
}

// boolExpr samples a bool-typed expression.
func (g *generator) boolExpr(ctx *bodyCtx, depth int) ast.Expr {
	if depth <= 0 {
		if len(ctx.boolVars) > 0 && g.chance(0.3) {
			return ident(ctx.boolVars[g.intn(0, len(ctx.boolVars)-1)])
		}
		ops := []token.Kind{token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ}
		return &ast.BinaryExpr{
			X:  g.intExpr(ctx, 0),
			Op: ops[g.intn(0, len(ops)-1)],
			Y:  g.intExpr(ctx, 0),
		}
	}
	switch g.intn(0, 3) {
	case 0:
		return &ast.BinaryExpr{X: g.boolExpr(ctx, depth-1), Op: token.LAND, Y: g.boolExpr(ctx, depth-1)}
	case 1:
		return &ast.BinaryExpr{X: g.boolExpr(ctx, depth-1), Op: token.LOR, Y: g.boolExpr(ctx, depth-1)}
	case 2:
		return &ast.UnaryExpr{Op: token.NOT, X: g.boolExpr(ctx, depth-1)}
	default:
		return g.boolExpr(ctx, 0)
	}
}
