package workload

// The developer-edit simulator: deterministic AST-level mutations applied
// to a snapshot, modelling the "minor changes to existing source code that
// is then frequently recompiled" of the paper's abstract. A commit touches
// a small number of units and functions; every edit preserves
// type-correctness and termination by construction.

import (
	"fmt"
	"math/rand"

	"statefulcc/internal/ast"
	"statefulcc/internal/parser"
	"statefulcc/internal/project"
	"statefulcc/internal/source"
	"statefulcc/internal/token"
)

// EditKind enumerates mutation types.
type EditKind int

// Edit kinds.
const (
	// EditConstTweak changes a large integer literal (safe: divisors,
	// shift amounts, and loop bounds are small by construction).
	EditConstTweak EditKind = iota
	// EditAddStmt appends an accumulator update to a function body.
	EditAddStmt
	// EditSwapOperator flips a commutative-ish arithmetic operator.
	EditSwapOperator
	// EditAddFunction appends a new private helper function.
	EditAddFunction
	numEditKinds
)

// String names the edit kind.
func (k EditKind) String() string {
	switch k {
	case EditConstTweak:
		return "const-tweak"
	case EditAddStmt:
		return "add-stmt"
	case EditSwapOperator:
		return "swap-operator"
	case EditAddFunction:
		return "add-function"
	default:
		if s, ok := waveString(k); ok {
			return s
		}
		return fmt.Sprintf("edit(%d)", int(k))
	}
}

// Edit records one applied mutation.
type Edit struct {
	Unit string
	Func string
	Kind EditKind
}

// Editor applies simulated commits to a project.
type Editor struct {
	rng    *rand.Rand
	nextID int
}

// NewEditor creates an editor with its own deterministic randomness.
func NewEditor(seed int64) *Editor {
	return &Editor{rng: rand.New(rand.NewSource(seed))}
}

// CommitOptions shape one simulated commit.
type CommitOptions struct {
	// Units is how many files the commit touches (≥1).
	Units int
	// EditsPerUnit is how many mutations land in each touched file (≥1).
	EditsPerUnit int
}

// Commit applies one simulated commit, returning the new snapshot and the
// edits performed. The input snapshot is not modified.
func (e *Editor) Commit(snap project.Snapshot, opts CommitOptions) (project.Snapshot, []Edit) {
	if opts.Units < 1 {
		opts.Units = 1
	}
	if opts.EditsPerUnit < 1 {
		opts.EditsPerUnit = 1
	}
	out := snap.Clone()
	units := snap.Units()
	var edits []Edit
	for i := 0; i < opts.Units; i++ {
		unit := units[e.rng.Intn(len(units))]
		newSrc, unitEdits := e.editUnit(unit, out[unit], opts.EditsPerUnit)
		out[unit] = newSrc
		edits = append(edits, unitEdits...)
	}
	return out, edits
}

// editUnit parses, mutates, and re-prints one unit.
func (e *Editor) editUnit(unit string, src []byte, n int) ([]byte, []Edit) {
	var errs source.ErrorList
	tree := parser.ParseFile(source.NewFile(unit, src), &errs)
	if errs.HasErrors() {
		// Should not happen on generated code; leave the unit untouched.
		return src, nil
	}
	var edits []Edit
	for i := 0; i < n; i++ {
		kind := EditKind(e.rng.Intn(int(numEditKinds)))
		if fn, ok := e.applyEdit(tree, kind); ok {
			edits = append(edits, Edit{Unit: unit, Func: fn, Kind: kind})
		}
	}
	return []byte(ast.Print(tree)), edits
}

func (e *Editor) applyEdit(tree *ast.File, kind EditKind) (string, bool) {
	switch kind {
	case EditConstTweak:
		return e.constTweak(tree)
	case EditAddStmt:
		return e.addStmt(tree)
	case EditSwapOperator:
		return e.swapOperator(tree)
	case EditAddFunction:
		return e.addFunction(tree)
	}
	return "", false
}

// indexGuarded collects every node inside an array-index expression of the
// function. The generator guarantees indexes stay in bounds via masking
// idioms like ((x & 1023) % size); mutating anything inside an index would
// void that guarantee, so edits skip these subtrees.
func indexGuarded(fd *ast.FuncDecl) map[ast.Node]bool {
	guarded := make(map[ast.Node]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if ix, ok := n.(*ast.IndexExpr); ok {
			ast.Inspect(ix.Index, func(m ast.Node) bool {
				guarded[m] = true
				return true
			})
		}
		return true
	})
	return guarded
}

// pickFunc selects a non-main function declaration uniformly.
func (e *Editor) pickFunc(tree *ast.File) (*ast.FuncDecl, bool) {
	var fns []*ast.FuncDecl
	for _, d := range tree.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name != "main" {
			fns = append(fns, fd)
		}
	}
	if len(fns) == 0 {
		return nil, false
	}
	return fns[e.rng.Intn(len(fns))], true
}

// constTweak nudges a large literal inside one function. Only literals
// ≥ 10 are touched: generated divisors (2..9), shift amounts (0..6), and
// loop bounds (≤ 12) all stay intact, preserving safety and termination.
func (e *Editor) constTweak(tree *ast.File) (string, bool) {
	fd, ok := e.pickFunc(tree)
	if !ok {
		return "", false
	}
	guarded := indexGuarded(fd)
	var lits []*ast.IntLit
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.IntLit); ok && lit.Value >= 13 && !guarded[n] {
			lits = append(lits, lit)
		}
		return true
	})
	if len(lits) == 0 {
		return "", false
	}
	lit := lits[e.rng.Intn(len(lits))]
	delta := int64(e.rng.Intn(3) + 1)
	if e.rng.Intn(2) == 0 && lit.Value-delta >= 13 {
		lit.Value -= delta
	} else {
		lit.Value += delta
	}
	return fd.Name, true
}

// addStmt appends "acc = acc + C;" where acc is the function's first
// declared int local (the generator always seeds one).
func (e *Editor) addStmt(tree *ast.File) (string, bool) {
	fd, ok := e.pickFunc(tree)
	if !ok {
		return "", false
	}
	var target string
	for _, s := range fd.Body.Stmts {
		if ds, ok := s.(*ast.DeclStmt); ok {
			if _, isScalar := ds.Decl.Type.(*ast.ScalarType); isScalar {
				target = ds.Decl.Name
				break
			}
		}
	}
	if target == "" {
		return "", false
	}
	stmt := &ast.AssignStmt{
		Lhs: &ast.IdentExpr{Name: target},
		Op:  token.ADDASSIGN,
		Rhs: &ast.IntLit{Value: int64(e.rng.Intn(90) + 13)},
	}
	// Insert before a trailing return so the statement is reachable.
	stmts := fd.Body.Stmts
	if n := len(stmts); n > 0 {
		if _, isRet := stmts[n-1].(*ast.ReturnStmt); isRet {
			fd.Body.Stmts = append(stmts[:n-1], stmt, stmts[n-1])
			return fd.Name, true
		}
	}
	fd.Body.Stmts = append(stmts, stmt)
	return fd.Name, true
}

// swapOperator flips + to - or * to + in one expression. The result stays
// type-correct and trap-free (divisions are never touched).
func (e *Editor) swapOperator(tree *ast.File) (string, bool) {
	fd, ok := e.pickFunc(tree)
	if !ok {
		return "", false
	}
	guarded := indexGuarded(fd)
	var bins []*ast.BinaryExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if b, ok := n.(*ast.BinaryExpr); ok && !guarded[n] {
			switch b.Op {
			case token.ADD, token.SUB, token.MUL, token.XOR, token.AND, token.OR:
				bins = append(bins, b)
			}
		}
		return true
	})
	if len(bins) == 0 {
		return "", false
	}
	b := bins[e.rng.Intn(len(bins))]
	switch b.Op {
	case token.ADD:
		b.Op = token.SUB
	case token.SUB:
		b.Op = token.ADD
	case token.MUL:
		b.Op = token.ADD
	case token.XOR:
		b.Op = token.OR
	case token.AND:
		b.Op = token.XOR
	case token.OR:
		b.Op = token.ADD
	}
	return fd.Name, true
}

// addFunction appends a new private helper; it is immediately dead code
// (no caller), which is exactly what deadfunc-style passes see in real
// commits that stage new code.
func (e *Editor) addFunction(tree *ast.File) (string, bool) {
	e.nextID++
	name := fmt.Sprintf("_edit%d", e.nextID)
	c1 := int64(e.rng.Intn(90) + 13)
	c2 := int64(e.rng.Intn(90) + 13)
	fd := &ast.FuncDecl{
		Name: name,
		Params: []*ast.Param{{
			Name: "x", Type: &ast.ScalarType{Kind: token.INTTYPE},
		}},
		Result: &ast.ScalarType{Kind: token.INTTYPE},
		Body: &ast.BlockStmt{Stmts: []ast.Stmt{
			&ast.ReturnStmt{Value: &ast.BinaryExpr{
				X:  &ast.BinaryExpr{X: &ast.IdentExpr{Name: "x"}, Op: token.MUL, Y: &ast.IntLit{Value: c1}},
				Op: token.ADD,
				Y:  &ast.IntLit{Value: c2},
			}},
		}},
	}
	tree.Decls = append(tree.Decls, fd)
	return name, true
}

// History generates a sequence of commits from a base snapshot: the
// standard incremental-build workload used across experiments.
type History struct {
	// Base is the initial snapshot (build 0 compiles it cold).
	Base project.Snapshot
	// Commits holds successive snapshots; Commits[i] is the tree after
	// commit i+1.
	Commits []project.Snapshot
	// Edits[i] describes what commit i changed.
	Edits [][]Edit
}

// GenerateHistory produces a deterministic commit sequence.
func GenerateHistory(base project.Snapshot, seed int64, commits int, opts CommitOptions) *History {
	ed := NewEditor(seed)
	h := &History{Base: base}
	cur := base
	for i := 0; i < commits; i++ {
		next, edits := ed.Commit(cur, opts)
		h.Commits = append(h.Commits, next)
		h.Edits = append(h.Edits, edits)
		cur = next
	}
	return h
}
