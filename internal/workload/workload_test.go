package workload_test

import (
	"bytes"
	"testing"

	"statefulcc/internal/buildsys"
	"statefulcc/internal/compiler"
	"statefulcc/internal/passes"
	"statefulcc/internal/project"
	"statefulcc/internal/testutil"
	"statefulcc/internal/vm"
	"statefulcc/internal/workload"
)

func smallProfile(seed int64) workload.Profile {
	return workload.Profile{
		Name: "test", Seed: seed,
		Files: 4, FuncsPerFileMin: 2, FuncsPerFileMax: 5,
		StmtsPerFuncMin: 3, StmtsPerFuncMax: 7,
		GlobalsPerFile: 2, CrossFileCallFrac: 0.5, PrivateFrac: 0.4,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := workload.Generate(smallProfile(42))
	b := workload.Generate(smallProfile(42))
	if len(a) != len(b) {
		t.Fatalf("unit counts differ: %d vs %d", len(a), len(b))
	}
	for name := range a {
		if !bytes.Equal(a[name], b[name]) {
			t.Errorf("unit %s differs between identically seeded generations", name)
		}
	}
	c := workload.Generate(smallProfile(43))
	same := true
	for name := range a {
		if !bytes.Equal(a[name], c[name]) {
			same = false
		}
	}
	if same && len(a) == len(c) {
		t.Error("different seeds produced identical projects")
	}
}

// buildAndRun compiles a snapshot and executes it.
func buildAndRun(t *testing.T, snap project.Snapshot, mode compiler.Mode) (string, int64) {
	t.Helper()
	b, err := buildsys.NewBuilder(buildsys.Options{Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := b.Build(snap)
	if err != nil {
		t.Fatal(err)
	}
	out, res, err := vm.RunCapture(rep.Program, vm.Config{})
	if err != nil {
		t.Fatalf("execution failed: %v", err)
	}
	return out, res.ExitValue
}

func TestGeneratedProjectsCompileAndRun(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 7, 99} {
		snap := workload.Generate(smallProfile(seed))
		out, _ := buildAndRun(t, snap, compiler.ModeStateless)
		if out == "" {
			t.Errorf("seed %d: program produced no output", seed)
		}
	}
}

// TestGeneratedDifferential is the fuzz-grade semantic check: generated
// projects must behave identically under no optimization, the standard
// pipeline, and the stateful compiler.
func TestGeneratedDifferential(t *testing.T) {
	for _, seed := range []int64{11, 22, 33} {
		snap := workload.Generate(smallProfile(seed))
		// Unoptimized reference via testutil (no pipeline at all).
		units := map[string]string{}
		for name, src := range snap {
			units[name] = string(src)
		}
		refOut, refExit, err := testutil.Run(units, nil)
		if err != nil {
			t.Fatalf("seed %d unoptimized: %v", seed, err)
		}
		for _, mode := range []compiler.Mode{compiler.ModeStateless, compiler.ModeStateful, compiler.ModeFullCache} {
			out, exit := buildAndRun(t, snap, mode)
			if out != refOut || exit != refExit {
				t.Errorf("seed %d mode %v: behaviour differs\nref:  %q/%d\ngot:  %q/%d",
					seed, mode, refOut, refExit, out, exit)
			}
		}
	}
}

func TestEditorDeterministic(t *testing.T) {
	snap := workload.Generate(smallProfile(5))
	h1 := workload.GenerateHistory(snap, 77, 5, workload.DefaultCommitOptions())
	h2 := workload.GenerateHistory(snap, 77, 5, workload.DefaultCommitOptions())
	for i := range h1.Commits {
		for name := range h1.Commits[i] {
			if !bytes.Equal(h1.Commits[i][name], h2.Commits[i][name]) {
				t.Fatalf("commit %d unit %s differs between identical histories", i, name)
			}
		}
	}
}

func TestEditsProduceValidPrograms(t *testing.T) {
	snap := workload.Generate(smallProfile(8))
	h := workload.GenerateHistory(snap, 123, 8, workload.DefaultCommitOptions())
	for i, commit := range h.Commits {
		if len(h.Edits[i]) == 0 {
			continue
		}
		out, _ := buildAndRun(t, commit, compiler.ModeStateless)
		if out == "" {
			t.Errorf("commit %d produced no output", i)
		}
	}
}

func TestEditsChangeSource(t *testing.T) {
	snap := workload.Generate(smallProfile(9))
	h := workload.GenerateHistory(snap, 55, 6, workload.DefaultCommitOptions())
	changedCommits := 0
	cur := snap
	for i, commit := range h.Commits {
		if len(project.Diff(cur, commit)) > 0 {
			changedCommits++
		} else if len(h.Edits[i]) > 0 {
			t.Errorf("commit %d reported edits but no diff", i)
		}
		cur = commit
	}
	if changedCommits == 0 {
		t.Error("no commit changed any source")
	}
}

// TestEditedSequenceDifferential runs a commit history under stateless and
// stateful builders simultaneously, comparing program behaviour after each
// commit — the incremental-correctness property end to end.
func TestEditedSequenceDifferential(t *testing.T) {
	snap := workload.Generate(smallProfile(14))
	h := workload.GenerateHistory(snap, 321, 6, workload.DefaultCommitOptions())

	stateless, err := buildsys.NewBuilder(buildsys.Options{Mode: compiler.ModeStateless})
	if err != nil {
		t.Fatal(err)
	}
	stateful, err := buildsys.NewBuilder(buildsys.Options{Mode: compiler.ModeStateful, VerifyIR: true})
	if err != nil {
		t.Fatal(err)
	}
	fullcache, err := buildsys.NewBuilder(buildsys.Options{Mode: compiler.ModeFullCache})
	if err != nil {
		t.Fatal(err)
	}

	run := func(b *buildsys.Builder, s project.Snapshot) (string, int64) {
		rep, err := b.Build(s)
		if err != nil {
			t.Fatal(err)
		}
		out, res, err := vm.RunCapture(rep.Program, vm.Config{})
		if err != nil {
			t.Fatal(err)
		}
		return out, res.ExitValue
	}

	seq := append([]project.Snapshot{snap}, h.Commits...)
	for i, s := range seq {
		o1, e1 := run(stateless, s)
		o2, e2 := run(stateful, s)
		o3, e3 := run(fullcache, s)
		if o1 != o2 || e1 != e2 {
			t.Fatalf("build %d: stateful behaviour differs: %q/%d vs %q/%d", i, o1, e1, o2, e2)
		}
		if o1 != o3 || e1 != e3 {
			t.Fatalf("build %d: fullcache behaviour differs: %q/%d vs %q/%d", i, o1, e1, o3, e3)
		}
	}
}

// TestIncrementalBuildCachesUnits: unchanged units must come from the
// object cache on rebuilds.
func TestIncrementalBuildCachesUnits(t *testing.T) {
	snap := workload.Generate(smallProfile(21))
	b, err := buildsys.NewBuilder(buildsys.Options{Mode: compiler.ModeStateful})
	if err != nil {
		t.Fatal(err)
	}
	rep1, err := b.Build(snap)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.UnitsCached != 0 || rep1.UnitsCompiled != len(snap) {
		t.Errorf("cold build: compiled=%d cached=%d", rep1.UnitsCompiled, rep1.UnitsCached)
	}
	rep2, err := b.Build(snap)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.UnitsCompiled != 0 || rep2.UnitsCached != len(snap) {
		t.Errorf("identical rebuild: compiled=%d cached=%d", rep2.UnitsCompiled, rep2.UnitsCached)
	}
	// One-commit rebuild recompiles only touched units.
	h := workload.GenerateHistory(snap, 9, 1, workload.DefaultCommitOptions())
	changed := project.Diff(snap, h.Commits[0])
	rep3, err := b.Build(h.Commits[0])
	if err != nil {
		t.Fatal(err)
	}
	if rep3.UnitsCompiled != len(changed) {
		t.Errorf("incremental build compiled %d units, want %d (%v)", rep3.UnitsCompiled, len(changed), changed)
	}
	if st := rep3.Stats(); st != nil {
		if _, _, skipped := st.Totals(); skipped == 0 {
			t.Error("stateful incremental build skipped no passes")
		}
	}
}

// TestLongHistoryProgramsExecute is the regression test for the bounds
// trap the evaluation harness once hit: edited programs from a large
// project history must not just compile but also *run* cleanly, because
// edits must never break the generator's index-safety idioms.
func TestLongHistoryProgramsExecute(t *testing.T) {
	profiles := []workload.Profile{workload.StandardSuite()[5]} // "database", the original trap
	commits := 12
	if testing.Short() {
		profiles = []workload.Profile{smallProfile(5)}
		commits = 6
	}
	for _, p := range profiles {
		base := workload.Generate(p)
		h := workload.GenerateHistory(base, p.Seed^1, commits, workload.DefaultCommitOptions())
		b, err := buildsys.NewBuilder(buildsys.Options{Mode: compiler.ModeStateless})
		if err != nil {
			t.Fatal(err)
		}
		for i, snap := range append([]project.Snapshot{base}, h.Commits...) {
			rep, err := b.Build(snap)
			if err != nil {
				t.Fatalf("%s commit %d: %v", p.Name, i, err)
			}
			if _, _, err := vm.RunCapture(rep.Program, vm.Config{}); err != nil {
				t.Fatalf("%s commit %d: program trapped: %v", p.Name, i, err)
			}
		}
	}
}

func TestStandardSuiteProfiles(t *testing.T) {
	suite := workload.StandardSuite()
	if len(suite) != 8 {
		t.Fatalf("suite has %d profiles, want 8", len(suite))
	}
	names := map[string]bool{}
	for _, p := range suite {
		if names[p.Name] {
			t.Errorf("duplicate profile name %s", p.Name)
		}
		names[p.Name] = true
		if p.Files < 1 || p.FuncsPerFileMax < p.FuncsPerFileMin {
			t.Errorf("profile %s malformed: %+v", p.Name, p)
		}
	}
	// The smallest suite member must generate and build.
	snap := workload.Generate(suite[0])
	if out, _ := buildAndRun(t, snap, compiler.ModeStateless); out == "" {
		t.Error("tinyutil produced no output")
	}
	if snap.Lines() < 50 {
		t.Errorf("tinyutil implausibly small: %d lines", snap.Lines())
	}
}

func TestProjectSnapshotHelpers(t *testing.T) {
	snap := workload.Generate(smallProfile(30))
	clone := snap.Clone()
	for name := range snap {
		clone[name][0] ^= 0xFF
		if bytes.Equal(snap[name], clone[name]) {
			t.Error("Clone shares backing arrays")
		}
		break
	}
	if snap.TotalBytes() <= 0 || snap.Lines() <= 0 {
		t.Error("size helpers broken")
	}
	dir := t.TempDir()
	if err := project.WriteDir(dir, snap); err != nil {
		t.Fatal(err)
	}
	loaded, err := project.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(snap) {
		t.Fatalf("roundtrip lost units: %d vs %d", len(loaded), len(snap))
	}
	for name := range snap {
		if !bytes.Equal(loaded[name], snap[name]) {
			t.Errorf("unit %s changed across disk roundtrip", name)
		}
	}
	// WriteDir removes stale units.
	smaller := snap.Clone()
	for name := range smaller {
		delete(smaller, name)
		break
	}
	if err := project.WriteDir(dir, smaller); err != nil {
		t.Fatal(err)
	}
	reloaded, err := project.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(reloaded) != len(smaller) {
		t.Errorf("stale unit not removed: %d vs %d", len(reloaded), len(smaller))
	}
}

// TestGeneratedPipelineDeterminism: the optimizer must be deterministic on
// generated code too, not just the hand corpus.
func TestGeneratedPipelineDeterminism(t *testing.T) {
	snap := workload.Generate(smallProfile(61))
	for name, src := range snap {
		render := func() string {
			m, err := testutil.BuildModule(name, string(src))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := passes.RunPipeline(m, passes.StandardPipeline); err != nil {
				t.Fatal(err)
			}
			return m.String()
		}
		if render() != render() {
			t.Errorf("unit %s optimizes nondeterministically", name)
		}
	}
}
