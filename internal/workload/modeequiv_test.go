package workload_test

// Differential mode-equivalence suite (the PR's headline correctness
// asset): for every standard-suite profile, the four compilation policies
// must produce byte-identical bytecode — not just identical behaviour —
// across a cold build plus three incremental edits. The stateless build is
// the oracle; stateful, predictive, and fullcache are the candidates whose
// skipping/caching must be invisible in the final program.

import (
	"testing"

	"statefulcc/internal/buildsys"
	"statefulcc/internal/codegen"
	"statefulcc/internal/compiler"
	"statefulcc/internal/project"
	"statefulcc/internal/workload"
)

// modeEquivModes are the candidate policies compared against stateless.
var modeEquivModes = map[string]compiler.Mode{
	"stateful":   compiler.ModeStateful,
	"predictive": compiler.ModePredictive,
	"fullcache":  compiler.ModeFullCache,
}

func TestModeEquivalenceSuite(t *testing.T) {
	profiles := workload.StandardSuite()
	if testing.Short() {
		profiles = workload.QuickSuite()
	}
	for _, p := range profiles {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			base := workload.Generate(p)
			hist := workload.GenerateHistory(base, p.Seed^0x5eed, 3, workload.DefaultCommitOptions())
			seq := append([]project.Snapshot{base}, hist.Commits...)

			oracle, err := buildsys.NewBuilder(buildsys.Options{Mode: compiler.ModeStateless})
			if err != nil {
				t.Fatal(err)
			}
			candidates := map[string]*buildsys.Builder{}
			for name, mode := range modeEquivModes {
				b, err := buildsys.NewBuilder(buildsys.Options{Mode: mode})
				if err != nil {
					t.Fatal(err)
				}
				candidates[name] = b
			}

			for i, snap := range seq {
				rep, err := oracle.Build(snap)
				if err != nil {
					t.Fatalf("build %d stateless: %v", i, err)
				}
				want := codegen.DisassembleProgram(rep.Program)
				for name, b := range candidates {
					rep, err := b.Build(snap)
					if err != nil {
						t.Fatalf("build %d %s: %v", i, name, err)
					}
					got := codegen.DisassembleProgram(rep.Program)
					if got != want {
						t.Errorf("build %d: %s bytecode diverges from stateless (%d vs %d bytes of disassembly)",
							i, name, len(got), len(want))
					}
				}
			}
		})
	}
}

// TestModeEquivalencePersistedState re-runs the history with stateful
// builders that persist dormancy records to disk and are recreated between
// commits — the CLI deployment model, where skips are driven by state
// written in an earlier process — and still demands byte-identical output.
func TestModeEquivalencePersistedState(t *testing.T) {
	p := workload.QuickSuite()[0]
	base := workload.Generate(p)
	hist := workload.GenerateHistory(base, p.Seed^0xd15c, 3, workload.DefaultCommitOptions())
	seq := append([]project.Snapshot{base}, hist.Commits...)
	stateDir := t.TempDir()

	oracle, err := buildsys.NewBuilder(buildsys.Options{Mode: compiler.ModeStateless})
	if err != nil {
		t.Fatal(err)
	}
	for i, snap := range seq {
		rep, err := oracle.Build(snap)
		if err != nil {
			t.Fatalf("build %d stateless: %v", i, err)
		}
		want := codegen.DisassembleProgram(rep.Program)

		// Fresh builder per commit: only the on-disk state carries over.
		b, err := buildsys.NewBuilder(buildsys.Options{Mode: compiler.ModeStateful, StateDir: stateDir})
		if err != nil {
			t.Fatal(err)
		}
		srep, err := b.Build(snap)
		if err != nil {
			t.Fatalf("build %d stateful: %v", i, err)
		}
		if got := codegen.DisassembleProgram(srep.Program); got != want {
			t.Errorf("build %d: persisted-state stateful bytecode diverges from stateless", i)
		}
	}
}
