package workload

// StandardSuite defines the benchmark projects used throughout the
// evaluation — the reproduction's stand-in for the paper's real-world C++
// project list (Table 1). Sizes span roughly an order of magnitude so the
// end-to-end experiments can show how the stateful win scales with project
// size and edit locality.

// StandardSuite returns the eight benchmark project profiles.
func StandardSuite() []Profile {
	return []Profile{
		{
			Name: "tinyutil", Seed: 101,
			Files: 6, FuncsPerFileMin: 3, FuncsPerFileMax: 6,
			StmtsPerFuncMin: 3, StmtsPerFuncMax: 8,
			GlobalsPerFile: 2, CrossFileCallFrac: 0.4, PrivateFrac: 0.35,
		},
		{
			Name: "parserlib", Seed: 202,
			Files: 12, FuncsPerFileMin: 4, FuncsPerFileMax: 8,
			StmtsPerFuncMin: 4, StmtsPerFuncMax: 10,
			GlobalsPerFile: 3, CrossFileCallFrac: 0.35, PrivateFrac: 0.4,
		},
		{
			Name: "mathkit", Seed: 303,
			Files: 16, FuncsPerFileMin: 5, FuncsPerFileMax: 9,
			StmtsPerFuncMin: 5, StmtsPerFuncMax: 12,
			GlobalsPerFile: 2, CrossFileCallFrac: 0.3, PrivateFrac: 0.3,
		},
		{
			Name: "netstack", Seed: 404,
			Files: 24, FuncsPerFileMin: 4, FuncsPerFileMax: 10,
			StmtsPerFuncMin: 4, StmtsPerFuncMax: 10,
			GlobalsPerFile: 4, CrossFileCallFrac: 0.45, PrivateFrac: 0.45,
		},
		{
			Name: "renderer", Seed: 505,
			Files: 32, FuncsPerFileMin: 5, FuncsPerFileMax: 11,
			StmtsPerFuncMin: 5, StmtsPerFuncMax: 14,
			GlobalsPerFile: 3, CrossFileCallFrac: 0.3, PrivateFrac: 0.35,
		},
		{
			Name: "database", Seed: 606,
			Files: 48, FuncsPerFileMin: 5, FuncsPerFileMax: 10,
			StmtsPerFuncMin: 4, StmtsPerFuncMax: 12,
			GlobalsPerFile: 4, CrossFileCallFrac: 0.35, PrivateFrac: 0.4,
		},
		{
			Name: "compilerfe", Seed: 707,
			Files: 64, FuncsPerFileMin: 6, FuncsPerFileMax: 12,
			StmtsPerFuncMin: 5, StmtsPerFuncMax: 12,
			GlobalsPerFile: 3, CrossFileCallFrac: 0.4, PrivateFrac: 0.45,
		},
		{
			Name: "monorepo", Seed: 808,
			Files: 96, FuncsPerFileMin: 5, FuncsPerFileMax: 12,
			StmtsPerFuncMin: 4, StmtsPerFuncMax: 12,
			GlobalsPerFile: 4, CrossFileCallFrac: 0.35, PrivateFrac: 0.4,
		},
	}
}

// MegaProfile returns the scale stress profile — roughly twice monorepo,
// past the 200-unit mark — used by the footprint battery's scale case and
// the footprint-overhead benchmark row. It is deliberately not part of
// StandardSuite so the end-to-end experiment matrix stays fast.
func MegaProfile() Profile {
	return Profile{
		Name: "megarepo", Seed: 909,
		Files: 208, FuncsPerFileMin: 4, FuncsPerFileMax: 9,
		StmtsPerFuncMin: 3, StmtsPerFuncMax: 9,
		GlobalsPerFile: 3, CrossFileCallFrac: 0.4, PrivateFrac: 0.4,
	}
}

// QuickSuite returns a two-project subset for fast tests.
func QuickSuite() []Profile {
	s := StandardSuite()
	return []Profile{s[0], s[1]}
}

// DefaultCommitOptions is the canonical incremental edit shape: one or two
// files touched, a couple of edits each — the paper's "minor changes".
func DefaultCommitOptions() CommitOptions {
	return CommitOptions{Units: 2, EditsPerUnit: 2}
}
