// Package workload generates synthetic MiniC projects and simulates
// developer edit histories over them — the reproduction's stand-in for the
// paper's real-world C++ projects (see DESIGN.md §6).
//
// Programs are generated as ASTs (type-correct by construction) and printed
// to source, so every generated project parses, checks, compiles, and — by
// construction of the statement/expression grammar — terminates:
//
//   - loops are counted for-loops with small constant bounds;
//   - call graphs are layered DAGs (a function only calls lower layers, and
//     calls inside loops only reach layer-0 leaf functions);
//   - divisors, shift amounts, and array indexes come from safe value
//     ranges.
//
// Generation is deterministic in the profile's seed.
package workload

import (
	"fmt"
	"math/rand"

	"statefulcc/internal/ast"
	"statefulcc/internal/project"
	"statefulcc/internal/token"
)

// Profile describes one synthetic project.
type Profile struct {
	// Name labels the project in reports (e.g. "medium-lib").
	Name string
	// Seed drives all randomness.
	Seed int64
	// Files is the number of source units (main.mc included).
	Files int
	// FuncsPerFileMin/Max bound the functions per unit.
	FuncsPerFileMin, FuncsPerFileMax int
	// StmtsPerFuncMin/Max bound top-level statements per function body.
	StmtsPerFuncMin, StmtsPerFuncMax int
	// GlobalsPerFile bounds globals per unit.
	GlobalsPerFile int
	// CrossFileCallFrac is the probability a call targets another unit.
	CrossFileCallFrac float64
	// PrivateFrac is the probability a function is unit-private.
	PrivateFrac float64
}

// funcInfo describes a generated function for later call sites.
type funcInfo struct {
	unit    string
	name    string
	params  int  // all int parameters
	returns bool // int return value
	level   int  // call-DAG layer; 0 = leaf
	private bool
}

type generator struct {
	p       Profile
	rng     *rand.Rand
	funcs   []funcInfo
	nextID  int
	globals map[string][]string // unit -> global scalar names
	arrays  map[string][]arrInfo
}

type arrInfo struct {
	name string
	size int64
}

// Generate builds the project snapshot for a profile.
func Generate(p Profile) project.Snapshot {
	if p.Files < 1 {
		p.Files = 1
	}
	g := &generator{
		p:       p,
		rng:     rand.New(rand.NewSource(p.Seed)),
		globals: make(map[string][]string),
		arrays:  make(map[string][]arrInfo),
	}
	snap := make(project.Snapshot, p.Files)

	// Library units first so cross-file calls have targets, then main.
	unitNames := make([]string, 0, p.Files)
	for i := 0; i < p.Files-1; i++ {
		unitNames = append(unitNames, fmt.Sprintf("src/lib_%03d.mc", i))
	}
	for _, unit := range unitNames {
		snap[unit] = []byte(ast.Print(g.genUnit(unit, false)))
	}
	snap["main.mc"] = []byte(ast.Print(g.genUnit("main.mc", true)))
	return snap
}

func (g *generator) intn(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + g.rng.Intn(hi-lo+1)
}

func (g *generator) chance(p float64) bool { return g.rng.Float64() < p }

func (g *generator) fresh(prefix string) string {
	g.nextID++
	return fmt.Sprintf("%s%d", prefix, g.nextID)
}

// genUnit generates one compilation unit.
func (g *generator) genUnit(unit string, isMain bool) *ast.File {
	f := &ast.File{Name: unit}

	// Consts and globals.
	nConsts := g.intn(1, 3)
	var constNames []string
	for i := 0; i < nConsts; i++ {
		name := g.fresh("K")
		constNames = append(constNames, name)
		f.Decls = append(f.Decls, &ast.ConstDecl{
			Name:  name,
			Value: intLit(int64(g.intn(2, 64))),
		})
	}
	for i := 0; i < g.intn(0, g.p.GlobalsPerFile); i++ {
		if g.chance(0.3) {
			size := int64(g.intn(4, 16))
			name := g.fresh("_tbl")
			f.Decls = append(f.Decls, &ast.VarDecl{
				Name: name,
				Type: &ast.ArrayType{Len: size, Elem: &ast.ScalarType{Kind: token.INTTYPE}},
			})
			g.arrays[unit] = append(g.arrays[unit], arrInfo{name, size})
		} else {
			name := g.fresh("g")
			if g.chance(0.5) {
				name = "_" + name
			}
			f.Decls = append(f.Decls, &ast.VarDecl{
				Name: name,
				Type: &ast.ScalarType{Kind: token.INTTYPE},
				Init: intLit(int64(g.intn(0, 100))),
			})
			g.globals[unit] = append(g.globals[unit], name)
		}
	}

	// Functions.
	nFuncs := g.intn(g.p.FuncsPerFileMin, g.p.FuncsPerFileMax)
	externsNeeded := map[string]funcInfo{}
	var newFuncs []funcInfo
	for i := 0; i < nFuncs; i++ {
		fd, info := g.genFunc(unit, constNames, externsNeeded)
		f.Decls = append(f.Decls, fd)
		newFuncs = append(newFuncs, info)
	}
	if isMain {
		f.Decls = append(f.Decls, g.genMain(unit, externsNeeded))
	}
	g.funcs = append(g.funcs, newFuncs...)

	// Prepend extern declarations for cross-unit callees.
	var externDecls []ast.Decl
	for _, name := range sortedFuncNames(externsNeeded) {
		fi := externsNeeded[name]
		ed := &ast.ExternDecl{Name: fi.name}
		for p := 0; p < fi.params; p++ {
			ed.Params = append(ed.Params, &ast.Param{
				Name: fmt.Sprintf("a%d", p),
				Type: &ast.ScalarType{Kind: token.INTTYPE},
			})
		}
		if fi.returns {
			ed.Result = &ast.ScalarType{Kind: token.INTTYPE}
		}
		externDecls = append(externDecls, ed)
	}
	f.Decls = append(externDecls, f.Decls...)
	return f
}

func sortedFuncNames(m map[string]funcInfo) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	// Insertion sort keeps this dependency-free and deterministic.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// bodyCtx tracks scope while generating a function body.
type bodyCtx struct {
	unit    string
	consts  []string
	intVars []string // assignable int locals/params
	// readVars are readable but never assignment targets (loop counters —
	// reassigning them could break termination).
	readVars []string
	// boolVars are assignable bool locals.
	boolVars []string
	arrays   []arrInfo
	externs  map[string]funcInfo
	level    int
	inLoop   bool
	depth    int
}

func (g *generator) genFunc(unit string, consts []string, externs map[string]funcInfo) (*ast.FuncDecl, funcInfo) {
	private := g.chance(g.p.PrivateFrac)
	base := g.fresh("fn")
	name := base
	if private {
		name = "_" + base
	}
	nParams := g.intn(1, 3)
	returns := g.chance(0.8)

	fd := &ast.FuncDecl{Name: name, Body: &ast.BlockStmt{}}
	ctx := &bodyCtx{unit: unit, consts: consts, externs: externs}
	for i := 0; i < nParams; i++ {
		pname := fmt.Sprintf("p%d", i)
		fd.Params = append(fd.Params, &ast.Param{Name: pname, Type: &ast.ScalarType{Kind: token.INTTYPE}})
		ctx.intVars = append(ctx.intVars, pname)
	}
	if returns {
		fd.Result = &ast.ScalarType{Kind: token.INTTYPE}
	}
	ctx.arrays = g.arrays[unit]

	// Levels: leaf functions (no calls) are level 0; others are one above
	// their highest callee. Decide up front whether this function calls.
	maxLevel := 0
	for _, fi := range g.funcs {
		if fi.level > maxLevel {
			maxLevel = fi.level
		}
	}
	ctx.level = 0
	if len(g.funcs) > 0 && g.chance(0.7) {
		ctx.level = maxLevel + 1
		if ctx.level > 6 {
			ctx.level = 6
		}
	}

	nStmts := g.intn(g.p.StmtsPerFuncMin, g.p.StmtsPerFuncMax)
	// Seed an accumulator local so edits and statements have a target.
	acc := g.fresh("acc")
	fd.Body.Stmts = append(fd.Body.Stmts, &ast.DeclStmt{Decl: &ast.VarDecl{
		Name: acc,
		Type: &ast.ScalarType{Kind: token.INTTYPE},
		Init: g.intExpr(ctx, 1),
	}})
	ctx.intVars = append(ctx.intVars, acc)

	for i := 0; i < nStmts; i++ {
		fd.Body.Stmts = append(fd.Body.Stmts, g.stmt(ctx))
	}
	if returns {
		fd.Body.Stmts = append(fd.Body.Stmts, &ast.ReturnStmt{Value: g.intExpr(ctx, 2)})
	}
	info := funcInfo{unit: unit, name: name, params: nParams, returns: returns, level: ctx.level, private: private}
	return fd, info
}

// genMain builds main(): it calls public functions across the project and
// prints their results, making whole-program behaviour observable.
func (g *generator) genMain(unit string, externs map[string]funcInfo) *ast.FuncDecl {
	fd := &ast.FuncDecl{Name: "main", Body: &ast.BlockStmt{}}
	ctx := &bodyCtx{unit: unit, externs: externs, arrays: g.arrays[unit]}

	total := g.fresh("total")
	fd.Body.Stmts = append(fd.Body.Stmts, &ast.DeclStmt{Decl: &ast.VarDecl{
		Name: total, Type: &ast.ScalarType{Kind: token.INTTYPE}, Init: intLit(0),
	}})
	ctx.intVars = append(ctx.intVars, total)

	// Call a sample of public functions with deterministic arguments.
	nCalls := 0
	for _, fi := range g.funcs {
		if fi.private || !fi.returns {
			continue
		}
		if !g.chance(0.6) {
			continue
		}
		call := g.callExpr(ctx, fi)
		fd.Body.Stmts = append(fd.Body.Stmts, &ast.AssignStmt{
			Lhs: ident(total), Op: token.ADDASSIGN, Rhs: call,
		})
		nCalls++
		if nCalls >= 24 {
			break
		}
	}
	fd.Body.Stmts = append(fd.Body.Stmts,
		&ast.ExprStmt{X: &ast.CallExpr{
			Callee: ident("print"),
			Args:   []ast.Expr{&ast.StringLit{Value: "total"}, ident(total)},
		}},
		&ast.ExprStmt{X: &ast.CallExpr{
			Callee: ident("print"),
			Args:   []ast.Expr{&ast.StringLit{Value: "parity"}, &ast.BinaryExpr{X: ident(total), Op: token.REM, Y: intLit(2)}},
		}},
	)
	return fd
}

func ident(name string) *ast.IdentExpr { return &ast.IdentExpr{Name: name} }
func intLit(v int64) *ast.IntLit       { return &ast.IntLit{Value: v} }
