package workload_test

// Wide-seed differential sweep: the strongest whole-system correctness
// asset. For many random projects and commit histories, program behaviour
// must be identical under the unoptimized, stateless-optimized, stateful,
// and fullcache compilers, and the stateful compiler's output IR must stay
// byte-identical to the stateless compiler's throughout the history.

import (
	"testing"

	"statefulcc/internal/buildsys"
	"statefulcc/internal/compiler"
	"statefulcc/internal/core"
	"statefulcc/internal/project"
	"statefulcc/internal/vm"
	"statefulcc/internal/workload"
)

func TestWideSeedDifferential(t *testing.T) {
	seeds := []int64{101, 202, 303, 404, 505, 606, 707, 808, 909, 1010}
	if testing.Short() {
		seeds = seeds[:3]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			p := smallProfile(seed)
			base := workload.Generate(p)
			hist := workload.GenerateHistory(base, seed*7, 4, workload.DefaultCommitOptions())

			builders := map[string]*buildsys.Builder{}
			for name, mode := range map[string]compiler.Mode{
				"stateless": compiler.ModeStateless,
				"stateful":  compiler.ModeStateful,
				"fullcache": compiler.ModeFullCache,
			} {
				b, err := buildsys.NewBuilder(buildsys.Options{Mode: mode})
				if err != nil {
					t.Fatal(err)
				}
				builders[name] = b
			}

			for i, snap := range append([]project.Snapshot{base}, hist.Commits...) {
				outputs := map[string]string{}
				exits := map[string]int64{}
				for name, b := range builders {
					rep, err := b.Build(snap)
					if err != nil {
						t.Fatalf("seed %d build %d (%s): %v", seed, i, name, err)
					}
					out, res, err := vm.RunCapture(rep.Program, vm.Config{})
					if err != nil {
						t.Fatalf("seed %d build %d (%s): %v", seed, i, name, err)
					}
					outputs[name] = out
					exits[name] = res.ExitValue
				}
				for name := range builders {
					if outputs[name] != outputs["stateless"] || exits[name] != exits["stateless"] {
						t.Fatalf("seed %d build %d: %s diverged:\n%s\nvs\n%s",
							seed, i, name, outputs[name], outputs["stateless"])
					}
				}
			}
		})
	}
}

// TestStatefulIRBitIdentical walks a history compiling every changed unit
// under both drivers and compares the final IR text — stronger than output
// equivalence.
func TestStatefulIRBitIdentical(t *testing.T) {
	p := smallProfile(77)
	base := workload.Generate(p)
	hist := workload.GenerateHistory(base, 770, 5, workload.DefaultCommitOptions())

	stateless, err := core.NewDriver(core.Options{Policy: core.Stateless})
	if err != nil {
		t.Fatal(err)
	}
	stateful, err := core.NewDriver(core.Options{Policy: core.Stateful})
	if err != nil {
		t.Fatal(err)
	}
	states := map[string]*core.UnitState{}

	prev := project.Snapshot(nil)
	for bi, snap := range append([]project.Snapshot{base}, hist.Commits...) {
		for _, unit := range snap.Units() {
			if prev != nil {
				if old, ok := prev[unit]; ok && string(old) == string(snap[unit]) {
					continue
				}
			}
			m1, err := compiler.Frontend(unit, snap[unit])
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := stateless.Run(m1, nil); err != nil {
				t.Fatal(err)
			}
			m2, err := compiler.Frontend(unit, snap[unit])
			if err != nil {
				t.Fatal(err)
			}
			st, _, err := stateful.Run(m2, states[unit])
			if err != nil {
				t.Fatal(err)
			}
			states[unit] = st
			if m1.String() != m2.String() {
				t.Fatalf("build %d unit %s: stateful IR differs from stateless", bi, unit)
			}
		}
		prev = snap
	}
}
