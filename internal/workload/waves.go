package workload

// Project-wide edit waves: mutations that, unlike the single-unit commits
// in edits.go, deliberately ripple across many files at once — renaming a
// public function everywhere it is referenced, or changing its signature
// along with every call site. They model the refactoring commits where
// file-level invalidation is widest and link-scope footprint entries
// (call arity, symbol identity) actually change, and they drive the
// rename-wave and interface-churn streams of the footprint battery.

import (
	"fmt"
	"strings"

	"statefulcc/internal/ast"
	"statefulcc/internal/parser"
	"statefulcc/internal/project"
	"statefulcc/internal/source"
	"statefulcc/internal/token"
)

// Wave edit kinds. They sit after numEditKinds so Commit's uniform kind
// draw never picks them: waves are applied explicitly, not as part of a
// default commit.
const (
	// EditRenameWave renames one public function in its defining unit and
	// at every cross-unit reference (extern decls and call sites).
	EditRenameWave EditKind = numEditKinds + iota
	// EditInterfaceChurn appends a parameter to one public function and
	// threads a constant argument through every call site.
	EditInterfaceChurn
)

// waveString names the wave kinds for EditKind.String.
func waveString(k EditKind) (string, bool) {
	switch k {
	case EditRenameWave:
		return "rename-wave", true
	case EditInterfaceChurn:
		return "interface-churn", true
	}
	return "", false
}

// parsedUnit pairs a unit's parse tree with a dirty flag; only dirty units
// are re-printed, so untouched files keep byte-identical sources (and
// byte-identical footprints).
type parsedUnit struct {
	tree  *ast.File
	dirty bool
}

// parseSnap parses every unit. Units that fail to parse (impossible on
// generated code) are carried through untouched as nil trees.
func parseSnap(snap project.Snapshot) map[string]*parsedUnit {
	out := make(map[string]*parsedUnit, len(snap))
	for unit, src := range snap {
		var errs source.ErrorList
		tree := parser.ParseFile(source.NewFile(unit, src), &errs)
		if errs.HasErrors() {
			tree = nil
		}
		out[unit] = &parsedUnit{tree: tree}
	}
	return out
}

// reprint rebuilds a snapshot from parsed units, re-printing only dirty
// ones.
func reprint(snap project.Snapshot, units map[string]*parsedUnit) project.Snapshot {
	out := snap.Clone()
	for name, pu := range units {
		if pu.dirty && pu.tree != nil {
			out[name] = []byte(ast.Print(pu.tree))
		}
	}
	return out
}

// publicFuncs lists every public non-main function as (unit, name) pairs in
// deterministic (sorted-unit, declaration) order.
func publicFuncs(order []string, units map[string]*parsedUnit) (names []string, defUnit map[string]string) {
	defUnit = make(map[string]string)
	for _, unit := range order {
		pu := units[unit]
		if pu.tree == nil {
			continue
		}
		for _, d := range pu.tree.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name == "main" || strings.HasPrefix(fd.Name, "_") {
				continue
			}
			names = append(names, fd.Name)
			defUnit[fd.Name] = unit
		}
	}
	return names, defUnit
}

// RenameWave renames one randomly chosen public function project-wide: the
// defining declaration, every extern prototype, and every call site. The
// input snapshot is not modified. Returns one Edit per touched unit; a
// project with no public functions comes back unchanged.
func (e *Editor) RenameWave(snap project.Snapshot) (project.Snapshot, []Edit) {
	order := snap.Units()
	units := parseSnap(snap)
	names, _ := publicFuncs(order, units)
	if len(names) == 0 {
		return snap, nil
	}
	old := names[e.rng.Intn(len(names))]
	e.nextID++
	fresh := fmt.Sprintf("%s_r%d", old, e.nextID)

	var edits []Edit
	for _, unit := range order {
		pu := units[unit]
		if pu.tree == nil {
			continue
		}
		touched := false
		for _, d := range pu.tree.Decls {
			switch fd := d.(type) {
			case *ast.FuncDecl:
				if fd.Name == old {
					fd.Name = fresh
					touched = true
				}
			case *ast.ExternDecl:
				if fd.Name == old {
					fd.Name = fresh
					touched = true
				}
			}
		}
		// Generated identifier namespaces are disjoint (fn/acc/g/K/p...),
		// so renaming every matching identifier only hits references to the
		// function.
		ast.Inspect(pu.tree, func(n ast.Node) bool {
			if id, ok := n.(*ast.IdentExpr); ok && id.Name == old {
				id.Name = fresh
				touched = true
			}
			return true
		})
		if touched {
			pu.dirty = true
			edits = append(edits, Edit{Unit: unit, Func: fresh, Kind: EditRenameWave})
		}
	}
	return reprint(snap, units), edits
}

// InterfaceChurn appends an int parameter to one randomly chosen public
// function and threads a constant argument through every call site and
// extern prototype — the signature change invalidates every caller's
// link-scope footprint (call arity), not just the defining unit. The input
// snapshot is not modified.
func (e *Editor) InterfaceChurn(snap project.Snapshot) (project.Snapshot, []Edit) {
	order := snap.Units()
	units := parseSnap(snap)
	names, _ := publicFuncs(order, units)
	if len(names) == 0 {
		return snap, nil
	}
	target := names[e.rng.Intn(len(names))]
	e.nextID++
	param := &ast.Param{
		Name: fmt.Sprintf("q%d", e.nextID),
		Type: &ast.ScalarType{Kind: token.INTTYPE},
	}
	arg := int64(e.rng.Intn(90) + 13)

	var edits []Edit
	for _, unit := range order {
		pu := units[unit]
		if pu.tree == nil {
			continue
		}
		touched := false
		for _, d := range pu.tree.Decls {
			switch fd := d.(type) {
			case *ast.FuncDecl:
				if fd.Name == target {
					fd.Params = append(fd.Params, param)
					touched = true
				}
			case *ast.ExternDecl:
				if fd.Name == target {
					fd.Params = append(fd.Params, param)
					touched = true
				}
			}
		}
		ast.Inspect(pu.tree, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && call.Callee.Name == target {
				call.Args = append(call.Args, &ast.IntLit{Value: arg})
				touched = true
			}
			return true
		})
		if touched {
			pu.dirty = true
			edits = append(edits, Edit{Unit: unit, Func: target, Kind: EditInterfaceChurn})
		}
	}
	return reprint(snap, units), edits
}

// StreamKind selects the edit stream GenerateHistoryStream produces.
type StreamKind int

// Edit streams.
const (
	// StreamDefault is the standard local-commit workload (GenerateHistory).
	StreamDefault StreamKind = iota
	// StreamRenameWave alternates local commits with project-wide renames.
	StreamRenameWave
	// StreamInterfaceChurn alternates local commits with signature changes.
	StreamInterfaceChurn
)

// String names the stream.
func (k StreamKind) String() string {
	switch k {
	case StreamDefault:
		return "default"
	case StreamRenameWave:
		return "rename-wave"
	case StreamInterfaceChurn:
		return "interface-churn"
	default:
		return fmt.Sprintf("stream(%d)", int(k))
	}
}

// GenerateHistoryStream produces a deterministic commit sequence of the
// given stream kind: StreamDefault matches GenerateHistory, the wave
// streams interleave a project-wide wave edit into every second commit so
// histories exercise both narrow and maximally wide invalidation.
func GenerateHistoryStream(base project.Snapshot, seed int64, commits int, opts CommitOptions, kind StreamKind) *History {
	ed := NewEditor(seed)
	h := &History{Base: base}
	cur := base
	for i := 0; i < commits; i++ {
		var next project.Snapshot
		var edits []Edit
		switch {
		case kind == StreamRenameWave && i%2 == 1:
			next, edits = ed.RenameWave(cur)
		case kind == StreamInterfaceChurn && i%2 == 1:
			next, edits = ed.InterfaceChurn(cur)
		default:
			next, edits = ed.Commit(cur, opts)
		}
		h.Commits = append(h.Commits, next)
		h.Edits = append(h.Edits, edits)
		cur = next
	}
	return h
}
