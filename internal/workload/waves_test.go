package workload_test

// Tests for the project-wide edit waves and the scale profile: every wave
// stream must keep the project type-correct and behaviourally identical
// across compiler modes, rename waves must actually touch multiple units,
// and MegaProfile must clear the 200-unit mark the footprint battery and
// overhead benchmark rely on.

import (
	"testing"

	"statefulcc/internal/buildsys"
	"statefulcc/internal/compiler"
	"statefulcc/internal/project"
	"statefulcc/internal/vm"
	"statefulcc/internal/workload"
)

func TestWaveStreamsCompileAndAgree(t *testing.T) {
	for _, kind := range []workload.StreamKind{
		workload.StreamRenameWave, workload.StreamInterfaceChurn,
	} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			base := workload.Generate(smallProfile(1234))
			hist := workload.GenerateHistoryStream(base, 555, 6,
				workload.DefaultCommitOptions(), kind)

			sawWave := false
			for _, edits := range hist.Edits {
				for _, e := range edits {
					if e.Kind == workload.EditRenameWave || e.Kind == workload.EditInterfaceChurn {
						sawWave = true
					}
				}
			}
			if !sawWave {
				t.Fatalf("%s stream produced no wave edits", kind)
			}

			stateless, err := buildsys.NewBuilder(buildsys.Options{Mode: compiler.ModeStateless})
			if err != nil {
				t.Fatal(err)
			}
			stateful, err := buildsys.NewBuilder(buildsys.Options{Mode: compiler.ModeStateful})
			if err != nil {
				t.Fatal(err)
			}
			for i, snap := range append([]project.Snapshot{base}, hist.Commits...) {
				rep1, err := stateless.Build(snap)
				if err != nil {
					t.Fatalf("commit %d stateless: %v", i, err)
				}
				rep2, err := stateful.Build(snap)
				if err != nil {
					t.Fatalf("commit %d stateful: %v", i, err)
				}
				out1, res1, err := vm.RunCapture(rep1.Program, vm.Config{})
				if err != nil {
					t.Fatalf("commit %d stateless run: %v", i, err)
				}
				out2, res2, err := vm.RunCapture(rep2.Program, vm.Config{})
				if err != nil {
					t.Fatalf("commit %d stateful run: %v", i, err)
				}
				if out1 != out2 || res1.ExitValue != res2.ExitValue {
					t.Fatalf("commit %d: modes diverged under %s stream", i, kind)
				}
			}
		})
	}
}

func TestRenameWaveTouchesMultipleUnits(t *testing.T) {
	base := workload.Generate(smallProfile(99))
	ed := workload.NewEditor(7)
	next, edits := ed.RenameWave(base)
	if len(edits) < 2 {
		t.Fatalf("rename wave touched %d units, want >= 2 (defining unit + a caller)", len(edits))
	}
	changed := 0
	for unit, src := range next {
		if string(base[unit]) != string(src) {
			changed++
		}
	}
	if changed != len(edits) {
		t.Fatalf("%d units changed bytes but %d edits reported", changed, len(edits))
	}
	if err := buildOnce(next); err != nil {
		t.Fatalf("post-rename project does not build: %v", err)
	}
}

// buildOnce compiles a snapshot stateless, reporting any frontend, pass, or
// link failure.
func buildOnce(snap project.Snapshot) error {
	b, err := buildsys.NewBuilder(buildsys.Options{Mode: compiler.ModeStateless})
	if err != nil {
		return err
	}
	_, err = b.Build(snap)
	return err
}

func TestInterfaceChurnChangesArity(t *testing.T) {
	base := workload.Generate(smallProfile(99))
	ed := workload.NewEditor(7)
	next, edits := ed.InterfaceChurn(base)
	if len(edits) == 0 {
		t.Fatal("interface churn produced no edits")
	}
	if err := buildOnce(next); err != nil {
		t.Fatalf("post-churn project does not build: %v", err)
	}
}

func TestMegaProfileScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scale profile generation in -short mode")
	}
	p := workload.MegaProfile()
	snap := workload.Generate(p)
	if len(snap) < 200 {
		t.Fatalf("MegaProfile generated %d units, want >= 200", len(snap))
	}
	if err := buildOnce(snap); err != nil {
		t.Fatalf("mega project does not build: %v", err)
	}
}
