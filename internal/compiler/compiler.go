// Package compiler is the per-unit compilation facade: frontend (lex,
// parse, typecheck, lower), the optimization pipeline under one of four
// policies, and bytecode generation. The build system invokes it the way
// make/ninja invoke a real compiler.
//
// Policies:
//
//   - Stateless — the conventional compiler; the paper's baseline.
//   - Stateful — the paper's contribution: fingerprint-guarded dormant-pass
//     skipping driven by persistent per-function records (internal/core).
//   - Predictive — ablation: record-only skipping without the guard.
//   - FullCache — a rustc/Zapcc-style comparator that caches whole
//     optimized function bodies keyed by input fingerprints (see
//     fullcache.go); far more state for a larger per-function win.
package compiler

import (
	"context"
	"fmt"
	"time"

	"statefulcc/internal/codegen"
	"statefulcc/internal/core"
	"statefulcc/internal/ir"
	"statefulcc/internal/irbuild"
	"statefulcc/internal/obs"
	"statefulcc/internal/parser"
	"statefulcc/internal/passes"
	"statefulcc/internal/source"
	"statefulcc/internal/types"
)

// Mode selects the compilation policy.
type Mode int

// Modes.
const (
	ModeStateless Mode = iota
	ModeStateful
	ModePredictive
	ModeFullCache
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeStateless:
		return "stateless"
	case ModeStateful:
		return "stateful"
	case ModePredictive:
		return "predictive"
	case ModeFullCache:
		return "fullcache"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Options configures a Compiler.
type Options struct {
	// Pipeline is the pass list (default passes.StandardPipeline).
	Pipeline []string
	// Mode is the compilation policy (default ModeStateless).
	Mode Mode
	// VerifySkips forwards to core.Options (tests/misprediction studies).
	VerifySkips bool
	// VerifyIR forwards to core.Options.
	VerifyIR bool
	// SkipCodegen stops after the pipeline (used by IR-dumping tools).
	SkipCodegen bool
	// AuditRate forwards to core.Options: the soundness sentinel's
	// probability of executing a would-be-skipped pass anyway to verify the
	// dormancy assumption (0 disables, 1 audits every skip).
	AuditRate float64
	// AuditSeed seeds the sentinel's sampler (0 means a fixed default, so
	// equal-seed compilers audit the same skips).
	AuditSeed uint64
	// Obs carries the observability context (shared tracer, counters,
	// worker thread id). Nil disables tracing; stage spans are still
	// recorded in each UnitResult.
	Obs *obs.Sink
}

// Compiler compiles units under a fixed policy. It is not safe for
// concurrent use (the full cache and driver state are unsynchronized);
// build systems run one compiler per worker.
type Compiler struct {
	opts   Options
	driver *core.Driver
	cache  *FullCache
}

// New builds a compiler.
func New(opts Options) (*Compiler, error) {
	if len(opts.Pipeline) == 0 {
		opts.Pipeline = passes.StandardPipeline
	}
	c := &Compiler{opts: opts}
	switch opts.Mode {
	case ModeStateless, ModeStateful, ModePredictive:
		policy := core.Stateless
		if opts.Mode == ModeStateful {
			policy = core.Stateful
		} else if opts.Mode == ModePredictive {
			policy = core.Predictive
		}
		d, err := core.NewDriver(core.Options{
			Pipeline:    opts.Pipeline,
			Policy:      policy,
			VerifySkips: opts.VerifySkips,
			VerifyIR:    opts.VerifyIR,
			AuditRate:   opts.AuditRate,
			AuditSeed:   opts.AuditSeed,
			Obs:         opts.Obs,
		})
		if err != nil {
			return nil, err
		}
		c.driver = d
	case ModeFullCache:
		c.cache = NewFullCache(opts.Pipeline)
	default:
		return nil, fmt.Errorf("compiler: unknown mode %d", opts.Mode)
	}
	return c, nil
}

// Mode returns the compiler's policy.
func (c *Compiler) Mode() Mode { return c.opts.Mode }

// Pipeline returns the pass list.
func (c *Compiler) Pipeline() []string { return c.opts.Pipeline }

// FullCacheStateBytes reports the full cache's current footprint (0 for
// other modes).
func (c *Compiler) FullCacheStateBytes() int {
	if c.cache == nil {
		return 0
	}
	return c.cache.SizeBytes()
}

// Stage span names emitted for every unit compilation.
const (
	StageFrontend = "frontend"
	StagePasses   = "passes"
	StageCodegen  = "codegen"
)

// UnitResult is the outcome of compiling one unit.
type UnitResult struct {
	// Object is the compiled artifact (nil with SkipCodegen).
	Object *codegen.Object
	// Module is the post-pipeline IR.
	Module *ir.Module
	// State is the updated dormancy state (stateful/predictive modes).
	State *core.UnitState
	// Stats holds pipeline statistics (nil in fullcache mode).
	Stats *core.Stats
	// CacheHits/CacheMisses count full-cache function lookups.
	CacheHits, CacheMisses int
	// Spans is the structured stage breakdown (frontend/passes/codegen).
	// Start times are relative to the tracer epoch when tracing, or to the
	// unit compile start otherwise; per-pass spans go to the tracer only.
	Spans []obs.Span
	// TotalNS is the unit's end-to-end compile wall time.
	TotalNS int64
}

// StageNS returns the duration of the named stage span (0 when absent).
func (r *UnitResult) StageNS(name string) int64 {
	for _, sp := range r.Spans {
		if sp.Name == name {
			return sp.Dur
		}
	}
	return 0
}

// Frontend runs lex/parse/check/lower on one unit.
func Frontend(unitName string, src []byte) (*ir.Module, error) {
	var errs source.ErrorList
	file := source.NewFile(unitName, src)
	tree := parser.ParseFile(file, &errs)
	if errs.HasErrors() {
		errs.Sort()
		return nil, fmt.Errorf("%s: %w", unitName, &errs)
	}
	info := types.Check(file, tree, &errs)
	if errs.HasErrors() {
		errs.Sort()
		return nil, fmt.Errorf("%s: %w", unitName, &errs)
	}
	return irbuild.Build(unitName, tree, info)
}

// CompileUnit compiles one unit from source. For stateful/predictive
// policies, st carries the previous build's dormancy records (nil on cold
// builds) and the updated state is returned in the result.
func (c *Compiler) CompileUnit(unitName string, src []byte, st *core.UnitState) (*UnitResult, error) {
	return c.CompileUnitContext(context.Background(), unitName, src, st)
}

// CompileUnitContext is CompileUnit under a cancellation context: the
// pipeline checks ctx between pass slots and per function, so a deadline
// or cancellation aborts the compile promptly with an error wrapping
// ctx.Err(). The frontend and codegen stages are not interruptible (they
// are short relative to the pipeline).
func (c *Compiler) CompileUnitContext(ctx context.Context, unitName string, src []byte, st *core.UnitState) (*UnitResult, error) {
	// Span clock: the shared tracer's epoch when tracing, the unit start
	// otherwise — either way spans within one unit share a timeline.
	tr := c.opts.Obs.Trace()
	tid := c.opts.Obs.ThreadID()
	unitStart := time.Now()
	now := func() int64 {
		if tr != nil {
			return tr.Now()
		}
		return time.Since(unitStart).Nanoseconds()
	}
	res := &UnitResult{}
	stage := func(name string, start int64) {
		sp := obs.Span{Name: name, Cat: obs.CatStage, Unit: unitName, TID: tid,
			Start: start, Dur: now() - start}
		res.Spans = append(res.Spans, sp)
		tr.Emit(sp)
	}
	t0 := now()

	start := now()
	m, err := Frontend(unitName, src)
	if err != nil {
		return nil, err
	}
	stage(StageFrontend, start)
	res.Module = m

	start = now()
	switch c.opts.Mode {
	case ModeFullCache:
		hits, misses, err := c.cache.Optimize(m)
		if err != nil {
			return nil, err
		}
		res.CacheHits, res.CacheMisses = hits, misses
	default:
		newState, stats, err := c.driver.RunContext(ctx, m, st)
		if err != nil {
			return nil, err
		}
		if c.opts.Mode != ModeStateless {
			// Stateless compilation records nothing; returning the empty
			// state would only make callers persist dead bytes.
			res.State = newState
		}
		res.Stats = stats
	}
	stage(StagePasses, start)

	if !c.opts.SkipCodegen {
		start = now()
		obj, err := codegen.Compile(m)
		if err != nil {
			return nil, err
		}
		stage(StageCodegen, start)
		res.Object = obj
	}
	res.TotalNS = now() - t0
	tr.Emit(obs.Span{Name: "unit " + unitName, Cat: obs.CatUnit, Unit: unitName,
		TID: tid, Start: t0, Dur: res.TotalNS})
	return res, nil
}
