package compiler_test

import (
	"strings"
	"testing"

	"statefulcc/internal/codegen"
	"statefulcc/internal/compiler"
	"statefulcc/internal/core"
	"statefulcc/internal/vm"
)

const libSrc = `
var _mode int = 1;
var shared int;

func _twist(x int) int {
    if _mode > 0 { return x * 3 + 1; }
    return x / 2;
}

func churn(n int) int {
    var acc int = 0;
    for var i int = 1; i <= n; i++ {
        acc += _twist(i);
    }
    shared = acc;
    return acc;
}
`

const mainSrc = `
extern func churn(n int) int;

func fib(n int) int {
    if n < 2 { return n; }
    return fib(n - 1) + fib(n - 2);
}

func main() int {
    print("churn", churn(10));
    print("fib", fib(12));
    return churn(3) + fib(7);
}
`

// runProgram links the given unit results and executes the program.
func runProgram(t *testing.T, results ...*compiler.UnitResult) (string, int64) {
	t.Helper()
	var objs []*codegen.Object
	for _, r := range results {
		objs = append(objs, r.Object)
	}
	p, err := codegen.Link(objs)
	if err != nil {
		t.Fatal(err)
	}
	out, res, err := vm.RunCapture(p, vm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return out, res.ExitValue
}

func compileBoth(t *testing.T, c *compiler.Compiler, states map[string]*core.UnitState) (string, int64, map[string]*core.UnitState) {
	t.Helper()
	newStates := map[string]*core.UnitState{}
	var results []*compiler.UnitResult
	for _, u := range []struct{ name, src string }{{"lib.mc", libSrc}, {"main.mc", mainSrc}} {
		r, err := c.CompileUnit(u.name, []byte(u.src), states[u.name])
		if err != nil {
			t.Fatal(err)
		}
		newStates[u.name] = r.State
		results = append(results, r)
	}
	out, exit := runProgram(t, results...)
	return out, exit, newStates
}

// TestAllModesAgree: every policy must produce the same program behaviour,
// across repeated and edited builds.
func TestAllModesAgree(t *testing.T) {
	base, err := compiler.New(compiler.Options{Mode: compiler.ModeStateless})
	if err != nil {
		t.Fatal(err)
	}
	wantOut, wantExit, _ := compileBoth(t, base, map[string]*core.UnitState{})

	for _, mode := range []compiler.Mode{compiler.ModeStateful, compiler.ModeFullCache} {
		c, err := compiler.New(compiler.Options{Mode: mode, VerifyIR: true})
		if err != nil {
			t.Fatal(err)
		}
		states := map[string]*core.UnitState{}
		for round := 0; round < 3; round++ {
			out, exit, ns := compileBoth(t, c, states)
			states = ns
			if out != wantOut || exit != wantExit {
				t.Errorf("%v round %d: behaviour differs: %q/%d vs %q/%d",
					mode, round, out, exit, wantOut, wantExit)
			}
		}
	}
}

// TestStatefulSkipsOnRebuild: the compiler facade must surface skipping.
func TestStatefulSkipsOnRebuild(t *testing.T) {
	c, err := compiler.New(compiler.Options{Mode: compiler.ModeStateful})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := c.CompileUnit("lib.mc", []byte(libSrc), nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.CompileUnit("lib.mc", []byte(libSrc), r1.State)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, skipped := r2.Stats.Totals(); skipped == 0 {
		t.Error("no skips on identical rebuild")
	}
	if r2.TotalNS <= 0 || r2.StageNS(compiler.StageFrontend) <= 0 {
		t.Error("stage spans not populated")
	}
	if len(r2.Spans) != 3 {
		t.Errorf("stage spans = %d, want 3 (frontend/passes/codegen)", len(r2.Spans))
	}
}

// TestFullCacheHitsOnRebuild: unchanged functions must be cache hits on the
// second build, and an edit must miss only its dependency cone.
func TestFullCacheHitsOnRebuild(t *testing.T) {
	c, err := compiler.New(compiler.Options{Mode: compiler.ModeFullCache})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := c.CompileUnit("main.mc", []byte(mainSrc), nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.CacheHits != 0 {
		t.Errorf("cold build had %d hits", r1.CacheHits)
	}
	r2, err := c.CompileUnit("main.mc", []byte(mainSrc), nil)
	if err != nil {
		t.Fatal(err)
	}
	if r2.CacheMisses != 0 {
		t.Errorf("identical rebuild had %d misses", r2.CacheMisses)
	}
	// Edit fib only: main calls fib, so main misses too; an independent
	// function would hit (fib and main share no independent sibling here,
	// so check hit+miss accounting instead).
	edited := strings.Replace(mainSrc, "return fib(n - 1) + fib(n - 2);", "return fib(n - 1) + fib(n - 2) + 0;", 1)
	r3, err := c.CompileUnit("main.mc", []byte(edited), nil)
	if err != nil {
		t.Fatal(err)
	}
	if r3.CacheMisses == 0 {
		t.Error("edit produced no misses")
	}
	if c.FullCacheStateBytes() == 0 {
		t.Error("full cache reports zero state")
	}
}

// TestFullCacheIndependentFunctionHits: editing one function must not
// invalidate an unrelated one.
func TestFullCacheIndependentFunctionHits(t *testing.T) {
	src1 := `
func alpha(x int) int { return x * 2; }
func beta(x int) int { return x + 5; }
func main() int { return alpha(1) + beta(2); }`
	src2 := strings.Replace(src1, "x * 2", "x * 4", 1)

	c, err := compiler.New(compiler.Options{Mode: compiler.ModeFullCache})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CompileUnit("u.mc", []byte(src1), nil); err != nil {
		t.Fatal(err)
	}
	r2, err := c.CompileUnit("u.mc", []byte(src2), nil)
	if err != nil {
		t.Fatal(err)
	}
	// beta unchanged and independent → hit; alpha and main (calls alpha) miss.
	if r2.CacheHits != 1 || r2.CacheMisses != 2 {
		t.Errorf("hits=%d misses=%d, want 1/2", r2.CacheHits, r2.CacheMisses)
	}
}

// TestFullCacheGlobalUsageTrap is the classic staleness trap: an
// unreachable store to a private global in another function flips to
// reachable; the reader's cached (constified) body must be invalidated.
func TestFullCacheGlobalUsageTrap(t *testing.T) {
	srcDead := `
var _g int = 5;
func writer(c bool) int {
    if false { _g = 7; }
    return 0;
}
func reader() int { return _g; }
func main() int {
    var r int = writer(true);
    return r + reader();
}`
	srcLive := strings.Replace(srcDead, "if false { _g = 7; }", "if c { _g = 7; }", 1)

	c, err := compiler.New(compiler.Options{Mode: compiler.ModeFullCache})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := c.CompileUnit("u.mc", []byte(srcDead), nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.CompileUnit("u.mc", []byte(srcLive), nil)
	if err != nil {
		t.Fatal(err)
	}
	out1, res1 := execUnit(t, r1)
	out2, res2 := execUnit(t, r2)
	if out1 != "" || out2 != "" {
		t.Errorf("unexpected output %q %q", out1, out2)
	}
	if res1 != 5 {
		t.Errorf("dead-store build exit = %d, want 5", res1)
	}
	if res2 != 7 {
		t.Errorf("live-store build exit = %d, want 7 (stale constified reader?)", res2)
	}
}

func execUnit(t *testing.T, r *compiler.UnitResult) (string, int64) {
	t.Helper()
	p, err := codegen.Link([]*codegen.Object{r.Object})
	if err != nil {
		t.Fatal(err)
	}
	out, res, err := vm.RunCapture(p, vm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return out, res.ExitValue
}

// TestFrontendErrors surface cleanly.
func TestFrontendErrors(t *testing.T) {
	c, err := compiler.New(compiler.Options{Mode: compiler.ModeStateless})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CompileUnit("bad.mc", []byte(`func f( {`), nil); err == nil {
		t.Error("parse error not reported")
	}
	if _, err := c.CompileUnit("bad.mc", []byte(`func f() { x = 1; }`), nil); err == nil {
		t.Error("type error not reported")
	}
}

// TestSkipCodegen supports IR tooling.
func TestSkipCodegen(t *testing.T) {
	c, err := compiler.New(compiler.Options{Mode: compiler.ModeStateless, SkipCodegen: true})
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.CompileUnit("u.mc", []byte(`func main() { }`), nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Object != nil || r.Module == nil {
		t.Error("SkipCodegen should produce IR but no object")
	}
}
