package compiler

// FullCache is the rustc/Zapcc-style comparator the paper positions its
// lightweight dormancy records against: instead of remembering one hash and
// one bit per (function, pass), it caches entire optimized function bodies
// (as bitcode) and replays them on a key match, skipping the whole function
// pipeline for that function.
//
// Key construction is where the honesty lives. An optimized body is a pure
// function of:
//
//   - the function's own pre-pipeline IR,
//   - the pre-pipeline IR of every function transitively reachable through
//     its calls (the inliner can splice any of them in),
//   - every function that touches any private global the closure touches
//     (globalopt's constification decisions are module-wide facts), and
//   - the metadata of those globals.
//
// So the key hashes all of the above. Anything outside the key cannot
// change the optimized body: the remaining module passes (deadfunc, and
// globalopt's removal of *other* globals) do not edit this function's
// body. The tests exercise the classic trap — an `if false { _g = 1; }`
// store in another function flipping constification — to demonstrate the
// key catches it.

import (
	"bytes"
	"fmt"
	"sort"

	"statefulcc/internal/bitcode"
	"statefulcc/internal/fingerprint"
	"statefulcc/internal/ir"
	"statefulcc/internal/passes"
)

// FullCache holds optimized function bodies keyed by input fingerprints.
type FullCache struct {
	pipeline []string
	entries  map[string]*fcEntry // by function name
}

type fcEntry struct {
	key  uint64
	blob []byte
}

// NewFullCache creates an empty cache for the given pipeline.
func NewFullCache(pipeline []string) *FullCache {
	return &FullCache{pipeline: pipeline, entries: make(map[string]*fcEntry)}
}

// SizeBytes reports the cache footprint (keys + bitcode blobs).
func (fc *FullCache) SizeBytes() int {
	n := 0
	for name, e := range fc.entries {
		n += len(name) + 8 + len(e.blob)
	}
	return n
}

// Entries reports the number of cached functions.
func (fc *FullCache) Entries() int { return len(fc.entries) }

// Optimize runs the pipeline over m, replaying cached bodies for functions
// whose keys match and pinning them so function passes skip them entirely.
func (fc *FullCache) Optimize(m *ir.Module) (hits, misses int, err error) {
	keys := fc.computeKeys(m)

	pinned := make(map[string]bool)
	for i, f := range m.Funcs {
		e, ok := fc.entries[f.Name]
		if !ok || e.key != keys[f.Name] {
			misses++
			continue
		}
		cached, derr := bitcode.DecodeFunc(bytes.NewReader(e.blob))
		if derr != nil {
			// Corrupt entry: drop it and recompile.
			delete(fc.entries, f.Name)
			misses++
			continue
		}
		cached.Module = m
		m.Funcs[i] = cached
		pinned[f.Name] = true
		hits++
	}

	if err := runPipelineSkipping(m, fc.pipeline, pinned); err != nil {
		return hits, misses, err
	}

	// Store fresh results. Functions deleted by the pipeline (deadfunc) are
	// simply not stored and recompile each build.
	for _, f := range m.Funcs {
		if pinned[f.Name] {
			continue
		}
		key, ok := keys[f.Name]
		if !ok {
			continue
		}
		var buf bytes.Buffer
		if err := bitcode.EncodeFunc(&buf, f); err != nil {
			return hits, misses, fmt.Errorf("fullcache: %w", err)
		}
		fc.entries[f.Name] = &fcEntry{key: key, blob: buf.Bytes()}
	}
	return hits, misses, nil
}

// computeKeys derives every function's cache key from the pre-pipeline
// module.
func (fc *FullCache) computeKeys(m *ir.Module) map[string]uint64 {
	// Per-function facts.
	preHash := make(map[string]uint64, len(m.Funcs))
	callees := make(map[string][]string, len(m.Funcs))
	globalsUsed := make(map[string][]string, len(m.Funcs))
	for _, f := range m.Funcs {
		preHash[f.Name] = fingerprint.Function(f)
		calleeSet := map[string]bool{}
		globalSet := map[string]bool{}
		f.ForEachValue(func(v *ir.Value) {
			switch v.Op {
			case ir.OpCall:
				calleeSet[v.Sym] = true
			case ir.OpGlobalAddr:
				globalSet[v.Sym] = true
			}
		})
		callees[f.Name] = sortedKeys(calleeSet)
		globalsUsed[f.Name] = sortedKeys(globalSet)
	}

	globalMeta := make(map[string]*ir.Global, len(m.Globals))
	for _, g := range m.Globals {
		globalMeta[g.Name] = g
	}

	keys := make(map[string]uint64, len(m.Funcs))
	for _, f := range m.Funcs {
		// Call closure within the module.
		closure := map[string]bool{f.Name: true}
		stack := []string{f.Name}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, callee := range callees[cur] {
				if _, defined := preHash[callee]; defined && !closure[callee] {
					closure[callee] = true
					stack = append(stack, callee)
				}
			}
		}
		// Globals the closure touches, and every function touching them.
		relevantGlobals := map[string]bool{}
		for fn := range closure {
			for _, g := range globalsUsed[fn] {
				relevantGlobals[g] = true
			}
		}
		touchers := map[string]bool{}
		for _, other := range m.Funcs {
			for _, g := range globalsUsed[other.Name] {
				if relevantGlobals[g] {
					touchers[other.Name] = true
				}
			}
		}

		h := fingerprint.New()
		h.Uint64(fingerprint.Strings(fc.pipeline))
		h.String(f.Name)
		for _, fn := range sortedKeys(closure) {
			h.String(fn)
			h.Uint64(preHash[fn])
		}
		for _, fn := range sortedKeys(touchers) {
			h.String(fn)
			h.Uint64(preHash[fn])
		}
		for _, g := range sortedKeys(relevantGlobals) {
			h.String(g)
			if gm := globalMeta[g]; gm != nil {
				h.Int(gm.Words)
				h.Int(gm.Init)
				if gm.Private {
					h.Byte(1)
				} else {
					h.Byte(0)
				}
			}
		}
		keys[f.Name] = h.Sum()
	}
	return keys
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// runPipelineSkipping executes the pipeline, skipping function passes for
// pinned (cache-replayed) functions; module passes always run.
func runPipelineSkipping(m *ir.Module, pipeline []string, pinned map[string]bool) error {
	for _, name := range pipeline {
		info, ok := passes.Lookup(name)
		if !ok {
			return fmt.Errorf("fullcache: unknown pass %q", name)
		}
		if info.Module {
			info.New().(passes.ModulePass).RunModule(m)
			continue
		}
		p := info.New().(passes.FuncPass)
		for _, f := range m.Funcs {
			if pinned[f.Name] {
				continue
			}
			p.Run(f)
		}
	}
	return nil
}
