package history

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func testRecord(skipPct float64, totalNS int64) *Record {
	return &Record{
		TimeUnixMS:    1700000000000,
		Mode:          "stateful",
		Workers:       2,
		TotalNS:       totalNS,
		CompileNS:     totalNS / 2,
		LinkNS:        totalNS / 10,
		UnitsCompiled: 1,
		UnitsCached:   1,
		SkipRatePct:   skipPct,
		Metrics:       map[string]int64{"pass.runs": 10, "pass.skipped": 5, "build.count": 1},
		Units: map[string]UnitRecord{
			"a.mc": {CompileNS: totalNS / 2, Passes: []PassDecision{
				{Pass: "mem2reg", Slot: 0, Reason: "cold-state", Runs: 1, Cold: 1},
			}},
			"b.mc": {Cached: true},
		},
	}
}

// TestAppendLoadRoundTrip: records append with monotonic Seq and read back
// in order with their content intact.
func TestAppendLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), FileName)
	for i := 0; i < 3; i++ {
		if err := Append(path, testRecord(float64(i), int64(1000+i)), 0); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	for i, r := range recs {
		if r.Seq != i+1 {
			t.Errorf("record %d: seq %d, want %d", i, r.Seq, i+1)
		}
		if r.SkipRatePct != float64(i) {
			t.Errorf("record %d: skip %v, want %v", i, r.SkipRatePct, float64(i))
		}
	}
	if got := recs[0].Units["a.mc"].Passes[0].Reason; got != "cold-state" {
		t.Errorf("decision reason lost: %q", got)
	}
	if !recs[1].Units["b.mc"].Cached {
		t.Error("cached flag lost")
	}
}

// TestRotation: the file is bounded to the newest limit records and Seq
// keeps rising across rotations.
func TestRotation(t *testing.T) {
	path := filepath.Join(t.TempDir(), FileName)
	const limit = 5
	for i := 0; i < limit*3; i++ {
		if err := Append(path, testRecord(float64(i), 1000), limit); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != limit {
		t.Fatalf("after rotation: %d records, want %d", len(recs), limit)
	}
	for i, r := range recs {
		want := limit*3 - limit + i + 1
		if r.Seq != want {
			t.Errorf("record %d: seq %d, want %d", i, r.Seq, want)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(data, []byte("\n")); n != limit {
		t.Errorf("file has %d lines, want %d", n, limit)
	}
}

// TestTornTrailingLine: a crash mid-append leaves a partial trailing line;
// the next Load drops it and the next Append still succeeds with a correct
// Seq — the recorder never wedges.
func TestTornTrailingLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), FileName)
	for i := 0; i < 2; i++ {
		if err := Append(path, testRecord(1, 1000), 0); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate the torn write: half a JSON object, no trailing newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":3,"time_unix_ms":17`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recs, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("torn line not dropped: %d records, want 2", len(recs))
	}

	if err := Append(path, testRecord(2, 2000), 0); err != nil {
		t.Fatal(err)
	}
	recs, err = Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("after recovery append: %d records, want 3", len(recs))
	}
	if recs[2].Seq != 3 {
		t.Errorf("recovered seq %d, want 3", recs[2].Seq)
	}
	// The rewrite path must have purged the torn bytes entirely: every
	// remaining line parses as a full record.
	data, _ := os.ReadFile(path)
	for _, line := range bytes.Split(bytes.TrimRight(data, "\n"), []byte("\n")) {
		var r Record
		if err := json.Unmarshal(line, &r); err != nil {
			t.Errorf("torn bytes survived rewrite: line %q: %v", line, err)
		}
	}
}

// TestDeterministicEncoding: encoding the same record twice is
// byte-identical (maps inside are key-sorted by encoding/json).
func TestDeterministicEncoding(t *testing.T) {
	rec := testRecord(42, 1234)
	rec.Metrics = map[string]int64{}
	for _, k := range []string{"z.last", "a.first", "m.mid", "pass.runs", "decision.cold_state"} {
		rec.Metrics[k] = int64(len(k))
	}
	a, err := rec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b, err := rec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("two encodings of the same record differ")
	}
	// Sorted keys: a.first must appear before z.last in the output.
	if bytes.Index(a, []byte("a.first")) > bytes.Index(a, []byte("z.last")) {
		t.Error("metrics keys not sorted in encoding")
	}
}

// TestCheckRegress covers the three tripwires and the healthy path.
func TestCheckRegress(t *testing.T) {
	base := []Record{
		{Seq: 1, SkipRatePct: 60, TotalNS: 10e6},
		{Seq: 2, SkipRatePct: 62, TotalNS: 10e6},
	}
	// Healthy: small wobble.
	res, err := CheckRegress(append(base, Record{Seq: 3, SkipRatePct: 58, TotalNS: 11e6}), RegressOptions{})
	if err != nil || res.Regressed {
		t.Fatalf("healthy history flagged: %+v err=%v", res, err)
	}
	// Skip-rate collapse.
	res, err = CheckRegress(append(base, Record{Seq: 3, SkipRatePct: 10, TotalNS: 10e6}), RegressOptions{})
	if err != nil || !res.Regressed {
		t.Fatalf("skip-rate drop not flagged: %+v err=%v", res, err)
	}
	// Wall-time blowup.
	res, err = CheckRegress(append(base, Record{Seq: 3, SkipRatePct: 61, TotalNS: 30e6}), RegressOptions{})
	if err != nil || !res.Regressed {
		t.Fatalf("wall-time rise not flagged: %+v err=%v", res, err)
	}
	// Skip-rate floor (CI smoke's "was a skip rate recorded at all").
	res, err = CheckRegress(append(base, Record{Seq: 3, SkipRatePct: 0.05, TotalNS: 1e6}),
		RegressOptions{SkipDropPts: 1000, MinSkipRatePct: 0.1})
	if err != nil || !res.Regressed {
		t.Fatalf("skip-rate floor not enforced: %+v err=%v", res, err)
	}
	// Too short.
	if _, err := CheckRegress(base[:1], RegressOptions{}); err == nil {
		t.Fatal("single-record history should error")
	}
}
