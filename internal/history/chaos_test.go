package history_test

// Flight-recorder chaos suite: walk every injectable I/O fault point of
// an append/rotate/load workload and prove the recorder degrades
// gracefully — a faulted append may drop its record (the recorder is
// advisory and reports the error to its caller), but it must never
// corrupt the file into mangled or fused records, and the next clean
// append must fully recover. Fault points are enumerated by recording a
// clean run, not hand-kept.

import (
	"path/filepath"
	"testing"

	"statefulcc/internal/history"
	"statefulcc/internal/vfs"
	"statefulcc/internal/vfs/chaostest"
)

// chaosLimit forces rotation partway through the workload so the walk
// covers the rewrite path (createtemp/write/sync/close/rename) too.
const chaosLimit = 4

// chaosRecord builds a small distinguishable record: Workers carries the
// append index so loaded records can be matched back to what was written.
func chaosRecord(i int) *history.Record {
	return &history.Record{
		TimeUnixMS: 1700000000000 + int64(i),
		Mode:       "stateful",
		Workers:    1000 + i,
		TotalNS:    int64(i) * 1111,
		Metrics:    map[string]int64{"build.count": int64(i + 1)},
		Units:      map[string]history.UnitRecord{"u.mc": {CompileNS: int64(i)}},
	}
}

// appendWorkload appends nAppends records (tolerating per-append
// failures, as the build system does) against fsys.
func appendWorkload(fsys vfs.FS, path string, nAppends int) (failed int) {
	for i := 0; i < nAppends; i++ {
		if err := history.AppendFS(fsys, path, chaosRecord(i), chaosLimit); err != nil {
			failed++
		}
	}
	return failed
}

// checkIntegrity loads the file cleanly and asserts every surviving
// record is exactly one of the written records, in strictly increasing
// Seq order — torn, fused, or mangled records are the failure this suite
// exists to catch.
func checkIntegrity(t *testing.T, path string, nAppends int) []history.Record {
	t.Helper()
	recs, err := history.LoadFS(nil, path)
	if err != nil {
		t.Fatalf("clean load after fault errored: %v", err)
	}
	lastSeq := 0
	for _, r := range recs {
		if r.Seq <= lastSeq {
			t.Fatalf("Seq not strictly increasing: %d after %d", r.Seq, lastSeq)
		}
		lastSeq = r.Seq
		i := r.Workers - 1000
		if i < 0 || i >= nAppends {
			t.Fatalf("loaded record with unknown identity %d", r.Workers)
		}
		want := chaosRecord(i)
		if r.TimeUnixMS != want.TimeUnixMS || r.TotalNS != want.TotalNS ||
			r.Mode != want.Mode || r.Metrics["build.count"] != want.Metrics["build.count"] ||
			r.Units["u.mc"].CompileNS != want.Units["u.mc"].CompileNS {
			t.Fatalf("loaded record %d mangled: %+v", i, r)
		}
	}
	if len(recs) > chaosLimit {
		t.Fatalf("limit not enforced: %d records > %d", len(recs), chaosLimit)
	}
	return recs
}

func TestChaosAppend(t *testing.T) {
	const nAppends = 6 // crosses the rotation threshold at chaosLimit

	// Record a clean run to enumerate fault points.
	recDir := t.TempDir()
	rec := vfs.NewFaultFS(vfs.OS, vfs.WithCanon(chaostest.Canon(recDir, history.TempPattern)))
	if failed := appendWorkload(rec, filepath.Join(recDir, history.FileName), nAppends); failed != 0 {
		t.Fatalf("clean run failed %d appends", failed)
	}
	checkIntegrity(t, filepath.Join(recDir, history.FileName), nAppends)
	points := chaostest.Points(rec.Calls())
	if len(points) < 20 {
		t.Fatalf("recorded only %d fault points: %v", len(points), points)
	}
	cov := chaostest.OpsCovered(points)
	for _, op := range []vfs.Op{vfs.OpMkdirAll, vfs.OpOpen, vfs.OpOpenFile, vfs.OpCreateTemp,
		vfs.OpRead, vfs.OpWrite, vfs.OpSync, vfs.OpClose, vfs.OpRename} {
		if cov[op] == 0 {
			t.Fatalf("workload never performs %s; append/rotate path not covered (%v)", op, cov)
		}
	}

	for _, p := range points {
		kinds := []vfs.Fault{vfs.FaultError, vfs.FaultCrash}
		if p.Op == vfs.OpWrite {
			kinds = append(kinds, vfs.FaultTorn)
		}
		for _, kind := range kinds {
			p, kind := p, kind
			t.Run(chaostest.Name(p, kind), func(t *testing.T) {
				dir := t.TempDir()
				path := filepath.Join(dir, history.FileName)
				ffs := vfs.NewFaultFS(vfs.OS,
					vfs.WithCanon(chaostest.Canon(dir, history.TempPattern)),
					vfs.WithRules(chaostest.RuleFor(p, kind)))
				appendWorkload(ffs, path, nAppends)
				chaostest.AssertFired(t, ffs, p)

				// Degradation invariant: whatever survived is valid, ordered,
				// and bounded.
				checkIntegrity(t, path, nAppends)

				// Recovery invariant: the next clean append lands and the
				// file is fully healthy.
				extra := chaosRecord(nAppends - 1)
				if err := history.AppendFS(nil, path, extra, chaosLimit); err != nil {
					t.Fatalf("clean append after fault failed: %v", err)
				}
				recs := checkIntegrity(t, path, nAppends)
				if len(recs) == 0 || recs[len(recs)-1].Seq != extra.Seq {
					t.Fatalf("recovery append not visible as newest record")
				}
			})
		}
	}
}

// TestChaosTornTrailingLine pins the torn-append recovery contract
// directly: a half-written trailing line is dropped on load and repaired
// by the next append's rewrite path.
func TestChaosTornTrailingLine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, history.FileName)
	if failed := appendWorkload(nil, path, 2); failed != 0 {
		t.Fatal("seed appends failed")
	}

	// Tear the third append mid-line: every write on the history file
	// fails torn.
	ffs := vfs.NewFaultFS(vfs.OS, vfs.WithRules(
		vfs.Rule{Op: vfs.OpWrite, Path: history.FileName, Kind: vfs.FaultTorn}))
	if err := history.AppendFS(ffs, path, chaosRecord(2), chaosLimit); err == nil {
		t.Fatal("torn append reported success")
	}

	recs := checkIntegrity(t, path, 3)
	if len(recs) != 2 {
		t.Fatalf("torn line not dropped: %d records", len(recs))
	}
	if err := history.AppendFS(nil, path, chaosRecord(2), chaosLimit); err != nil {
		t.Fatalf("append after torn line failed: %v", err)
	}
	if recs = checkIntegrity(t, path, 3); len(recs) != 3 {
		t.Fatalf("recovery append did not restore the file: %d records", len(recs))
	}
}
