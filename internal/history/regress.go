package history

// Regression detection over the flight-recorder history — the machine
// usable consumer (`minibuild regress`, wired into `make ci`): compare the
// newest record against the mean of a window of prior records and flag a
// skip-rate drop or wall-time rise beyond thresholds.

import (
	"fmt"
	"strings"
)

// RegressOptions configures CheckRegress. Zero values select defaults.
type RegressOptions struct {
	// Window bounds how many prior records form the baseline (default 10).
	Window int
	// SkipDropPts flags the newest build when its skip rate is more than
	// this many percentage points below the baseline mean (default 10).
	SkipDropPts float64
	// TimeRisePct flags the newest build when its total wall time exceeds
	// the baseline mean by more than this percentage (default 50).
	TimeRisePct float64
	// MinRecords is the least history length required; fewer records is
	// reported as an error so CI can assert recording happened (default 2).
	MinRecords int
	// MinSkipRatePct, when > 0, additionally requires the newest record's
	// skip rate to reach this floor (CI smoke: "skip rate was recorded").
	MinSkipRatePct float64
}

func (o *RegressOptions) defaults() {
	if o.Window <= 0 {
		o.Window = 10
	}
	if o.SkipDropPts == 0 {
		o.SkipDropPts = 10
	}
	if o.TimeRisePct == 0 {
		o.TimeRisePct = 50
	}
	if o.MinRecords <= 0 {
		o.MinRecords = 2
	}
}

// RegressResult is the verdict over one history.
type RegressResult struct {
	// Regressed is true when any check tripped; Reasons explains each.
	Regressed bool
	Reasons   []string
	// Newest/baseline figures, for reporting.
	NewestSeq        int
	BaselineBuilds   int
	NewestSkipPct    float64
	BaselineSkipPct  float64
	NewestTotalMS    float64
	BaselineTotalMS  float64
}

// String renders the verdict for CLI output.
func (r RegressResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "build #%d vs mean of %d prior build(s): skip rate %.1f%% (baseline %.1f%%), wall %.2fms (baseline %.2fms)\n",
		r.NewestSeq, r.BaselineBuilds, r.NewestSkipPct, r.BaselineSkipPct,
		r.NewestTotalMS, r.BaselineTotalMS)
	if !r.Regressed {
		sb.WriteString("no regression detected\n")
		return sb.String()
	}
	for _, reason := range r.Reasons {
		fmt.Fprintf(&sb, "REGRESSION: %s\n", reason)
	}
	return sb.String()
}

// CheckRegress evaluates the newest record against the prior window. An
// error means the history is unusable for the check (too short); a
// Regressed result means the thresholds tripped.
func CheckRegress(recs []Record, opt RegressOptions) (RegressResult, error) {
	opt.defaults()
	var res RegressResult
	if len(recs) < opt.MinRecords {
		return res, fmt.Errorf("history: %d record(s), need at least %d — was the build recorded?",
			len(recs), opt.MinRecords)
	}
	newest := recs[len(recs)-1]
	base := recs[:len(recs)-1]
	if len(base) > opt.Window {
		base = base[len(base)-opt.Window:]
	}

	var skipSum, msSum float64
	for _, r := range base {
		skipSum += r.SkipRatePct
		msSum += float64(r.TotalNS) / 1e6
	}
	res.NewestSeq = newest.Seq
	res.BaselineBuilds = len(base)
	res.NewestSkipPct = newest.SkipRatePct
	res.BaselineSkipPct = skipSum / float64(len(base))
	res.NewestTotalMS = float64(newest.TotalNS) / 1e6
	res.BaselineTotalMS = msSum / float64(len(base))

	if res.NewestSkipPct < res.BaselineSkipPct-opt.SkipDropPts {
		res.Regressed = true
		res.Reasons = append(res.Reasons, fmt.Sprintf(
			"skip rate dropped %.1f points (%.1f%% → %.1f%%, threshold %.1f)",
			res.BaselineSkipPct-res.NewestSkipPct, res.BaselineSkipPct, res.NewestSkipPct, opt.SkipDropPts))
	}
	if res.BaselineTotalMS > 0 && res.NewestTotalMS > res.BaselineTotalMS*(1+opt.TimeRisePct/100) {
		res.Regressed = true
		res.Reasons = append(res.Reasons, fmt.Sprintf(
			"wall time rose %.0f%% (%.2fms → %.2fms, threshold %.0f%%)",
			100*(res.NewestTotalMS/res.BaselineTotalMS-1), res.BaselineTotalMS, res.NewestTotalMS, opt.TimeRisePct))
	}
	if opt.MinSkipRatePct > 0 && res.NewestSkipPct < opt.MinSkipRatePct {
		res.Regressed = true
		res.Reasons = append(res.Reasons, fmt.Sprintf(
			"skip rate %.1f%% below required floor %.1f%%", res.NewestSkipPct, opt.MinSkipRatePct))
	}
	return res, nil
}
