package history

// Rendering for the flight recorder's human consumers: `minibuild explain`
// (the last build's per-unit decision tables, with the previous build's
// reasons alongside so "why did this pass run when it was skipped last
// time?" is answerable at a glance) and `minibuild history` (one summary
// line per record).

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// RenderExplain renders the newest record's decision tables. With unit
// non-empty, only that unit is shown (an unknown unit is an error). The
// previous record, when present, supplies the prev-reason column and the
// headline skip-rate delta.
func RenderExplain(recs []Record, unit string) (string, error) {
	if len(recs) == 0 {
		return "", fmt.Errorf("history: no builds recorded yet")
	}
	last := recs[len(recs)-1]
	var prev *Record
	if len(recs) > 1 {
		prev = &recs[len(recs)-2]
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "build #%d (%s, %d workers) at %s — %d compiled, %d cached, skip rate %.1f%%",
		last.Seq, last.Mode, last.Workers,
		time.UnixMilli(last.TimeUnixMS).UTC().Format(time.RFC3339),
		last.UnitsCompiled, last.UnitsCached, last.SkipRatePct)
	if prev != nil {
		fmt.Fprintf(&sb, " (prev #%d: %.1f%%)", prev.Seq, prev.SkipRatePct)
	}
	sb.WriteString("\n")
	if len(last.FootprintMissed) > 0 {
		fmt.Fprintf(&sb, "MISSED INVALIDATIONS: %s — declared hash said cached while the traced footprint changed (docs/ROBUSTNESS.md)\n",
			strings.Join(last.FootprintMissed, ", "))
	}
	if len(last.FootprintRedundant) > 0 {
		fmt.Fprintf(&sb, "redundant recompiles: %s — footprint proves the cached object was still valid\n",
			strings.Join(last.FootprintRedundant, ", "))
	}

	units := make([]string, 0, len(last.Units))
	for name := range last.Units {
		units = append(units, name)
	}
	sort.Strings(units)
	if unit != "" {
		if _, ok := last.Units[unit]; !ok {
			return "", fmt.Errorf("history: unit %q not in build #%d (units: %s)",
				unit, last.Seq, strings.Join(units, ", "))
		}
		units = []string{unit}
	}

	for _, name := range units {
		ur := last.Units[name]
		sb.WriteString("\n")
		if ur.Cached {
			if inList(last.FootprintMissed, name) {
				fmt.Fprintf(&sb, "unit %s — cached [FOOTPRINT MISSED: traced footprint changed, stale object served]\n", name)
			} else {
				fmt.Fprintf(&sb, "unit %s — cached (content hash unchanged, nothing recompiled)\n", name)
			}
			continue
		}
		fmt.Fprintf(&sb, "unit %s — compiled in %.3fms", name, float64(ur.CompileNS)/1e6)
		if ur.Panicked {
			sb.WriteString(" [PANICKED: isolated, compiled stateless]")
		}
		if ur.Quarantine != "" {
			fmt.Fprintf(&sb, " [QUARANTINED: %s]", ur.Quarantine)
		}
		if inList(last.FootprintMissed, name) {
			sb.WriteString(" [FOOTPRINT MISSED: recompiled by enforcement]")
		}
		if inList(last.FootprintRedundant, name) {
			sb.WriteString(" [FOOTPRINT REDUNDANT]")
		}
		sb.WriteString("\n")
		if len(ur.Passes) == 0 {
			sb.WriteString("  (no pass decisions recorded for this mode)\n")
			continue
		}
		var prevPasses []PassDecision
		if prev != nil {
			if pu, ok := prev.Units[name]; ok {
				prevPasses = pu.Passes
			}
		}
		fmt.Fprintf(&sb, "  %-4s %-12s %-22s %5s %5s %5s %5s %6s %6s %9s %9s  %s\n",
			"slot", "pass", "reason", "runs", "skip", "dorm", "audit", "bmemo", "bhash", "time", "saved", "prev-reason")
		for _, pd := range ur.Passes {
			audit := fmt.Sprintf("%d", pd.Audited)
			if pd.Unsound > 0 {
				audit = fmt.Sprintf("%d!%d", pd.Audited, pd.Unsound)
			}
			fmt.Fprintf(&sb, "  [%2d] %-12s %-22s %5d %5d %5d %5s %6d %6d %8.3fms %8.3fms  %s\n",
				pd.Slot, pd.Pass, pd.Reason, pd.Runs, pd.Skipped, pd.Dormant, audit,
				pd.BlocksMemoized, pd.BlocksRehashed,
				float64(pd.RunNS)/1e6, float64(pd.SavedNS)/1e6,
				prevReason(prevPasses, pd.Slot))
		}
	}
	return sb.String(), nil
}

// inList reports membership in a (short) unit-name list.
func inList(list []string, name string) bool {
	for _, s := range list {
		if s == name {
			return true
		}
	}
	return false
}

// prevReason finds the previous build's reason for the same slot ("-" when
// the unit was cached, absent, or differently shaped last build).
func prevReason(passes []PassDecision, slot int) string {
	for _, pd := range passes {
		if pd.Slot == slot {
			return pd.Reason
		}
	}
	return "-"
}

// RenderHistory renders one summary line per record, oldest first, for the
// newest n records (all when n <= 0).
func RenderHistory(recs []Record, n int) string {
	if n > 0 && len(recs) > n {
		recs = recs[len(recs)-n:]
	}
	if len(recs) == 0 {
		return "history: no builds recorded yet\n"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-5s %-20s %-10s %8s %7s %7s %9s %9s\n",
		"seq", "time", "mode", "compiled", "cached", "skip%", "total", "state")
	for _, r := range recs {
		fmt.Fprintf(&sb, "#%-4d %-20s %-10s %8d %7d %6.1f%% %8.2fms %8.1fK\n",
			r.Seq, time.UnixMilli(r.TimeUnixMS).UTC().Format("2006-01-02T15:04:05Z"),
			r.Mode, r.UnitsCompiled, r.UnitsCached, r.SkipRatePct,
			float64(r.TotalNS)/1e6, float64(r.StateBytes)/1024)
	}
	return sb.String()
}
