package history_test

// Decision-provenance coverage: drive real builds through buildsys and
// assert the flight recorder charges each pass slot to the expected reason,
// and that `explain` (RenderExplain) surfaces it. One scenario per reason:
//
//	cold-state             first stateful build, no prior records
//	not-dormant-last-time  rebuild after an IR-preserving edit; passes that
//	                       changed IR last time (mem2reg) must re-run
//	skipped-dormant        same rebuild; passes that were dormant skip
//	fingerprint-mismatch   rebuild after a semantic edit; dormant records
//	                       no longer match the incoming IR
//	policy-disabled        stateless build: skipping is ineligible
//
// The package is history_test (not history) so it can import buildsys
// without a cycle.

import (
	"path/filepath"
	"strings"
	"testing"

	"statefulcc/internal/buildsys"
	"statefulcc/internal/compiler"
	"statefulcc/internal/core"
	"statefulcc/internal/history"
	"statefulcc/internal/project"
)

const progV1 = `
func main() int {
    var x int = 1;
    return x;
}
`

// newRecordedBuilder returns a builder whose flight recorder writes under
// its own temp state directory, plus the history path.
func newRecordedBuilder(t *testing.T, mode compiler.Mode) (*buildsys.Builder, string) {
	t.Helper()
	stateDir := t.TempDir()
	histPath := history.Path(stateDir)
	opts := buildsys.Options{Mode: mode, HistoryPath: histPath, Workers: 1}
	if mode == compiler.ModeStateful || mode == compiler.ModePredictive {
		opts.StateDir = stateDir
	}
	b, err := buildsys.NewBuilder(opts)
	if err != nil {
		t.Fatal(err)
	}
	return b, histPath
}

func mustBuild(t *testing.T, b *buildsys.Builder, src string) {
	t.Helper()
	if _, err := b.Build(project.Snapshot{"main.mc": []byte(src)}); err != nil {
		t.Fatal(err)
	}
}

func mustLoad(t *testing.T, path string) []history.Record {
	t.Helper()
	recs, err := history.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

// reasonCounts tallies the dominant reason of every active pass slot of a
// unit in a record.
func reasonCounts(t *testing.T, rec history.Record, unit string) map[string]int {
	t.Helper()
	ur, ok := rec.Units[unit]
	if !ok {
		t.Fatalf("record #%d has no unit %q (units: %v)", rec.Seq, unit, rec.Units)
	}
	out := map[string]int{}
	for _, d := range ur.Passes {
		out[d.Reason]++
	}
	return out
}

func TestReasonColdState(t *testing.T) {
	b, hist := newRecordedBuilder(t, compiler.ModeStateful)
	mustBuild(t, b, progV1)

	recs := mustLoad(t, hist)
	if len(recs) != 1 {
		t.Fatalf("%d records after one build, want 1", len(recs))
	}
	counts := reasonCounts(t, recs[0], "main.mc")
	if len(counts) == 0 {
		t.Fatal("no pass decisions recorded")
	}
	for reason, n := range counts {
		if reason != core.ReasonColdState {
			t.Errorf("cold build charged %d slots to %q, want only %q", n, reason, core.ReasonColdState)
		}
	}
	if recs[0].Metrics["decision.cold_state"] == 0 {
		t.Error("decision.cold_state counter is zero after a cold build")
	}

	out, err := history.RenderExplain(recs, "")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, core.ReasonColdState) {
		t.Errorf("explain output missing %q:\n%s", core.ReasonColdState, out)
	}
}

func TestReasonSkippedDormantAndNotDormant(t *testing.T) {
	b, hist := newRecordedBuilder(t, compiler.ModeStateful)
	mustBuild(t, b, progV1)
	// IR-preserving edit: the content hash changes (forcing a recompile)
	// but the parsed program is identical, so dormancy replays exactly.
	mustBuild(t, b, progV1+"\n// touched\n")

	recs := mustLoad(t, hist)
	if len(recs) != 2 {
		t.Fatalf("%d records after two builds, want 2", len(recs))
	}
	rec := recs[1]
	ur := rec.Units["main.mc"]
	var sawSkip, sawNotDormant bool
	for _, d := range ur.Passes {
		switch d.Reason {
		case core.ReasonSkippedDormant:
			sawSkip = true
			if d.Skipped == 0 {
				t.Errorf("slot %d (%s) reason %q but skipped=0", d.Slot, d.Pass, d.Reason)
			}
		case core.ReasonNotDormant:
			sawNotDormant = true
		case core.ReasonColdState:
			t.Errorf("slot %d (%s) still cold on the second build", d.Slot, d.Pass)
		}
	}
	// mem2reg promoted an alloca last build, so its record is not dormant
	// and the slot must be charged to not-dormant-last-time.
	if len(ur.Passes) == 0 || ur.Passes[0].Pass != "mem2reg" {
		t.Fatalf("expected slot 0 to be mem2reg, got %+v", ur.Passes)
	}
	if got := ur.Passes[0].Reason; got != core.ReasonNotDormant {
		t.Errorf("mem2reg reason %q, want %q", got, core.ReasonNotDormant)
	}
	if !sawSkip {
		t.Error("no slot charged to skipped-dormant on an identical-IR rebuild")
	}
	if !sawNotDormant {
		t.Error("no slot charged to not-dormant-last-time on an identical-IR rebuild")
	}
	if rec.Metrics["decision.skipped_dormant"] != rec.Metrics["pass.skipped"] {
		t.Errorf("decision.skipped_dormant=%d diverges from pass.skipped=%d",
			rec.Metrics["decision.skipped_dormant"], rec.Metrics["pass.skipped"])
	}

	out, err := history.RenderExplain(recs, "main.mc")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{core.ReasonSkippedDormant, core.ReasonNotDormant, core.ReasonColdState} {
		// Cold-state appears as the prev-reason column from build #1.
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
}

func TestReasonFingerprintMismatch(t *testing.T) {
	b, hist := newRecordedBuilder(t, compiler.ModeStateful)
	mustBuild(t, b, progV1)
	// Semantic edit: the constant changes, so every slot's incoming IR
	// fingerprint differs from what the dormancy records captured.
	mustBuild(t, b, strings.ReplaceAll(progV1, "= 1;", "= 2;"))

	recs := mustLoad(t, hist)
	rec := recs[len(recs)-1]

	// Slots dormant at the end of build 1 must now be charged to
	// fingerprint-mismatch (their records exist but no longer apply).
	dormantSlots := map[int]string{}
	for _, d := range recs[0].Units["main.mc"].Passes {
		if d.Runs > 0 && d.Dormant == d.Runs {
			dormantSlots[d.Slot] = d.Pass
		}
	}
	if len(dormantSlots) == 0 {
		t.Fatal("build 1 left no dormant slots; scenario cannot exercise fingerprint-mismatch")
	}
	var sawFP bool
	for _, d := range rec.Units["main.mc"].Passes {
		if _, was := dormantSlots[d.Slot]; !was {
			continue
		}
		if d.Reason == core.ReasonFingerprintMismatch {
			sawFP = true
		} else if d.Reason == core.ReasonSkippedDormant {
			t.Errorf("slot %d (%s) skipped despite a semantic edit", d.Slot, d.Pass)
		}
	}
	if !sawFP {
		t.Errorf("no previously-dormant slot charged to fingerprint-mismatch: %+v", rec.Units["main.mc"].Passes)
	}
	if rec.Metrics["decision.fingerprint_mismatch"] == 0 {
		t.Error("decision.fingerprint_mismatch counter is zero after a semantic edit")
	}

	out, err := history.RenderExplain(recs, "main.mc")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, core.ReasonFingerprintMismatch) {
		t.Errorf("explain output missing %q:\n%s", core.ReasonFingerprintMismatch, out)
	}
}

func TestReasonPolicyDisabled(t *testing.T) {
	b, hist := newRecordedBuilder(t, compiler.ModeStateless)
	mustBuild(t, b, progV1)

	recs := mustLoad(t, hist)
	if len(recs) != 1 {
		t.Fatalf("%d records, want 1 (history must record even stateless builds)", len(recs))
	}
	counts := reasonCounts(t, recs[0], "main.mc")
	for reason, n := range counts {
		if reason != core.ReasonPolicyDisabled {
			t.Errorf("stateless build charged %d slots to %q, want only %q", n, reason, core.ReasonPolicyDisabled)
		}
	}
	if recs[0].Metrics["decision.policy_disabled"] == 0 {
		t.Error("decision.policy_disabled counter is zero under stateless policy")
	}

	out, err := history.RenderExplain(recs, "")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, core.ReasonPolicyDisabled) {
		t.Errorf("explain output missing %q:\n%s", core.ReasonPolicyDisabled, out)
	}
}

// TestHistoryPathDefault: with a StateDir and no explicit HistoryPath the
// recorder lands in <state>/history.jsonl; "-" disables it.
func TestHistoryPathDefault(t *testing.T) {
	stateDir := t.TempDir()
	b, err := buildsys.NewBuilder(buildsys.Options{Mode: compiler.ModeStateful, StateDir: stateDir})
	if err != nil {
		t.Fatal(err)
	}
	mustBuild(t, b, progV1)
	recs := mustLoad(t, filepath.Join(stateDir, history.FileName))
	if len(recs) != 1 {
		t.Fatalf("default history path not written: %d records", len(recs))
	}

	offDir := t.TempDir()
	off, err := buildsys.NewBuilder(buildsys.Options{
		Mode: compiler.ModeStateful, StateDir: offDir, HistoryPath: "-",
	})
	if err != nil {
		t.Fatal(err)
	}
	mustBuild(t, off, progV1)
	if recs := mustLoad(t, filepath.Join(offDir, history.FileName)); len(recs) != 0 {
		t.Fatalf("HistoryPath=- still recorded %d records", len(recs))
	}
}
