// Package history is the build flight recorder: one structured JSONL
// record per Builder.Build call, appended to the state directory, so the
// questions the in-process observability layer cannot answer after exit —
// "why did pass X run this time when it was skipped last time?", "did the
// skip rate regress over the last N builds?" — stay answerable across
// processes. Three consumers sit on top: `minibuild explain` (decision
// tables with deltas, explain.go), `minibuild history`/`regress`
// (summaries and CI regression gating, regress.go), and `minibuild serve`
// (the /builds endpoint).
//
// The file is bounded: Append keeps only the newest Limit records
// (default DefaultLimit), rewriting atomically when rotation is needed. A
// torn trailing line from a crashed append is dropped on the next read —
// the recorder is advisory, and must never fail a build.
//
// Determinism: records encode via encoding/json, which sorts map keys, so
// two encodings of the same record (and the metrics/unit tables inside it)
// are byte-identical and history files diff cleanly.
package history

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"statefulcc/internal/obs"
	"statefulcc/internal/vfs"
)

// FileName is the flight-recorder file inside a state directory.
const FileName = "history.jsonl"

// DefaultLimit is the default record cap of a history file.
const DefaultLimit = 200

// TempPattern is the glob the rotation rewriter's in-flight temp files
// match. A crash mid-rewrite orphans one; like state.TempPattern files,
// they are never read back, so a state directory's single writer may
// sweep matches at startup.
const TempPattern = ".history-*"

// PassDecision is one pipeline slot's decision provenance for one unit:
// what the slot did and, for every execution, why. Reason strings are the
// core.Reason* taxonomy (skipped-dormant, cold-state, not-dormant-last-time,
// fingerprint-mismatch, policy-disabled, ran).
type PassDecision struct {
	Pass   string `json:"pass"`
	Slot   int    `json:"slot"`
	Module bool   `json:"module,omitempty"`
	// Reason is the slot's dominant decision reason.
	Reason string `json:"reason"`
	// Per-outcome execution counts.
	Runs    int `json:"runs,omitempty"`
	Dormant int `json:"dormant,omitempty"`
	Skipped int `json:"skipped,omitempty"`
	// Per-reason run counts (each run charged to exactly one).
	Cold        int `json:"cold,omitempty"`
	NotDormant  int `json:"not_dormant,omitempty"`
	FPMismatch  int `json:"fingerprint_mismatch,omitempty"`
	Policy      int `json:"policy_disabled,omitempty"`
	Quarantined int `json:"quarantined,omitempty"`
	// Soundness-sentinel provenance: Audited counts would-be skips the
	// sentinel executed anyway; Unsound counts the audits whose output
	// fingerprint differed — unsound skips (each engages a quarantine).
	Audited int `json:"audited,omitempty"`
	Unsound int `json:"unsound,omitempty"`
	// Timing: pass execution time and estimated time skipping saved.
	RunNS   int64 `json:"run_ns,omitempty"`
	SavedNS int64 `json:"saved_ns,omitempty"`
	// Hierarchical-fingerprint memo effectiveness while this slot's
	// fingerprints were taken: block hashes served from the memo vs
	// recomputed.
	BlocksMemoized int64 `json:"blocks_memoized,omitempty"`
	BlocksRehashed int64 `json:"blocks_rehashed,omitempty"`
}

// UnitRecord is one unit's outcome within a build.
type UnitRecord struct {
	// Cached marks units served whole from the object cache (content hash
	// unchanged); no compilation, hence no pass decisions.
	Cached bool `json:"cached,omitempty"`
	// CompileNS is the unit's compile wall time (0 when cached).
	CompileNS int64 `json:"compile_ns,omitempty"`
	// Passes is the per-slot decision table (nil for cached units and for
	// modes without a pass driver, e.g. fullcache).
	Passes []PassDecision `json:"passes,omitempty"`
	// Panicked marks a unit whose compile panicked this build; the panic was
	// isolated and the unit recompiled through the stateless fallback.
	Panicked bool `json:"panicked,omitempty"`
	// Quarantine is the unit's active quarantine reason after this build
	// ("" when none; see core.Quarantine*).
	Quarantine string `json:"quarantine,omitempty"`
	// Remote marks units served from the shared content-addressed cache
	// (internal/cas): a cache hit fetched and byte-verified over the wire.
	Remote bool `json:"remote,omitempty"`
}

// TimelineEvent is one unit's scheduling event in the compact persisted
// form (single-letter keys: a record carries one event per unit per build,
// and the history file is bounded by bytes in practice, not records).
type TimelineEvent struct {
	Unit    string `json:"u"`
	Worker  int    `json:"w"`
	Outcome string `json:"o"`
	// Monotonic nanoseconds since the build's epoch (obs.UnitEvent).
	EnqueueNS int64 `json:"q,omitempty"`
	StartNS   int64 `json:"s,omitempty"`
	EndNS     int64 `json:"e,omitempty"`
	// Per-stage split of the compile.
	FrontendNS int64 `json:"fe,omitempty"`
	PassesNS   int64 `json:"pa,omitempty"`
	CodegenNS  int64 `json:"cg,omitempty"`
}

// Timeline is the persisted form of a build's scheduling timeline
// (obs.Timeline): what `minibuild profile` and the serve /dash page
// reconstruct schedules from after the building process exited.
type Timeline struct {
	Workers        int             `json:"workers"`
	WallNS         int64           `json:"wall_ns"`
	CompileStartNS int64           `json:"compile_start_ns,omitempty"`
	CompileWallNS  int64           `json:"compile_wall_ns,omitempty"`
	LinkNS         int64           `json:"link_ns,omitempty"`
	Events         []TimelineEvent `json:"events"`
}

// TimelineFromObs converts a build's in-memory timeline to its persisted
// form (nil in, nil out).
func TimelineFromObs(t *obs.Timeline) *Timeline {
	if t == nil {
		return nil
	}
	out := &Timeline{
		Workers:        t.Workers,
		WallNS:         t.WallNS,
		CompileStartNS: t.CompileStartNS,
		CompileWallNS:  t.CompileWallNS,
		LinkNS:         t.LinkNS,
		Events:         make([]TimelineEvent, len(t.Events)),
	}
	for i, e := range t.Events {
		out.Events[i] = TimelineEvent{
			Unit: e.Unit, Worker: e.Worker, Outcome: e.Outcome,
			EnqueueNS: e.EnqueueNS, StartNS: e.StartNS, EndNS: e.EndNS,
			FrontendNS: e.FrontendNS, PassesNS: e.PassesNS, CodegenNS: e.CodegenNS,
		}
	}
	return out
}

// ToObs converts a persisted timeline back to the analysis form consumed
// by obs.Analyze (nil in, nil out).
func (t *Timeline) ToObs() *obs.Timeline {
	if t == nil {
		return nil
	}
	out := &obs.Timeline{
		Workers:        t.Workers,
		WallNS:         t.WallNS,
		CompileStartNS: t.CompileStartNS,
		CompileWallNS:  t.CompileWallNS,
		LinkNS:         t.LinkNS,
		Events:         make([]obs.UnitEvent, len(t.Events)),
	}
	for i, e := range t.Events {
		out.Events[i] = obs.UnitEvent{
			Unit: e.Unit, Worker: e.Worker, Outcome: e.Outcome,
			EnqueueNS: e.EnqueueNS, StartNS: e.StartNS, EndNS: e.EndNS,
			FrontendNS: e.FrontendNS, PassesNS: e.PassesNS, CodegenNS: e.CodegenNS,
		}
	}
	return out
}

// Record is one build's flight-recorder entry.
type Record struct {
	// Seq numbers records monotonically within one history file (assigned
	// by Append).
	Seq int `json:"seq"`
	// TimeUnixMS is the build's completion wall-clock time.
	TimeUnixMS int64 `json:"time_unix_ms"`
	// Mode and Workers describe the builder configuration.
	Mode    string `json:"mode"`
	Workers int    `json:"workers"`
	// Build-level timings and tallies.
	TotalNS       int64 `json:"total_ns"`
	CompileNS     int64 `json:"compile_ns"`
	LinkNS        int64 `json:"link_ns"`
	UnitsCompiled int   `json:"units_compiled"`
	UnitsCached   int   `json:"units_cached"`
	// UnitsRemote counts shared-cache hits within UnitsCached.
	UnitsRemote int `json:"units_remote,omitempty"`
	StateBytes  int `json:"state_bytes"`
	// SkipRatePct is this build's registry skip rate ×100 at record time.
	SkipRatePct float64 `json:"skip_rate_pct"`
	// FootprintMissed / FootprintRedundant list the units (unit order) whose
	// declared cache decision disagreed with their traced dependency
	// footprint this build: missed invalidations are soundness violations,
	// redundant recompiles wasted work (docs/ROBUSTNESS.md). Present only
	// when footprint tracing was on and a disagreement occurred; `minibuild
	// deps -check` exits 2 on a fresh missed entry.
	FootprintMissed    []string `json:"footprint_missed,omitempty"`
	FootprintRedundant []string `json:"footprint_redundant,omitempty"`
	// Timeline is the build's scheduling event log (absent in records from
	// builds that predate it, and in cancelled builds).
	Timeline *Timeline `json:"timeline,omitempty"`
	// Metrics is the builder's counters-registry snapshot after the build
	// (cumulative across the builder's lifetime; schema in
	// docs/OBSERVABILITY.md). encoding/json sorts the keys.
	Metrics map[string]int64 `json:"metrics"`
	// Units maps every unit in the snapshot to its outcome and decisions.
	Units map[string]UnitRecord `json:"units"`
}

// Encode renders the record as its canonical single JSON line (no trailing
// newline). Encoding the same record twice is byte-identical.
func (r *Record) Encode() ([]byte, error) {
	return json.Marshal(r)
}

// Path returns the history file path inside a state directory.
func Path(stateDir string) string {
	return filepath.Join(stateDir, FileName)
}

// Load reads every parseable record from a history file. A missing file is
// an empty history; corrupt lines — in particular a torn trailing line from
// a crashed append — are dropped, never an error. Records are returned in
// file order (oldest first).
func Load(path string) ([]Record, error) {
	return LoadFS(vfs.OS, path)
}

// LoadFS is Load through an injectable filesystem (nil means the real
// one).
func LoadFS(fsys vfs.FS, path string) ([]Record, error) {
	f, err := vfs.Default(fsys).Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("history: %w", err)
	}
	defer f.Close()

	var recs []Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			continue // torn or corrupt line: drop, stay usable
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		// A scanner failure mid-file (e.g. an absurdly long corrupt line)
		// still yields whatever parsed before it.
		return recs, nil
	}
	return recs, nil
}

// Append writes rec to the history file at path, assigning the next Seq and
// bounding the file to the newest limit records (DefaultLimit when limit
// <= 0). The fast path is a plain O_APPEND write; when rotation or corrupt
// lines make a rewrite necessary, the file is replaced atomically
// (temp + fsync + rename) so a crash never loses the existing history.
func Append(path string, rec *Record, limit int) error {
	return AppendFS(vfs.OS, path, rec, limit)
}

// AppendFS is Append through an injectable filesystem (nil means the real
// one). Every failure — including a short write or a failing Close on the
// O_APPEND handle, which can silently drop a buffered record — is
// detected and returned; callers that treat the recorder as advisory
// (the build system) surface the error as a warning and counter rather
// than dropping it on the floor.
func AppendFS(fsys vfs.FS, path string, rec *Record, limit int) error {
	fsys = vfs.Default(fsys)
	if limit <= 0 {
		limit = DefaultLimit
	}
	if err := fsys.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("history: %w", err)
	}

	prev, err := LoadFS(fsys, path)
	if err != nil {
		return err
	}
	rec.Seq = 1
	if n := len(prev); n > 0 {
		rec.Seq = prev[n-1].Seq + 1
	}
	line, err := rec.Encode()
	if err != nil {
		return fmt.Errorf("history: %w", err)
	}
	line = append(line, '\n')

	if lines, partial, _ := fileShape(fsys, path); !partial && lines == len(prev) && len(prev)+1 <= limit {
		f, err := fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("history: %w", err)
		}
		n, werr := f.Write(line)
		if werr == nil && n != len(line) {
			// A short write without an error would silently truncate the
			// record; report it so the caller can count and warn.
			werr = io.ErrShortWrite
		}
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("history: %w", werr)
		}
		return nil
	}

	// Rewrite: drop corrupt lines, keep the newest limit-1 old records plus
	// the new one, and swap atomically.
	if len(prev) > limit-1 {
		prev = prev[len(prev)-(limit-1):]
	}
	tmp, err := fsys.CreateTemp(filepath.Dir(path), TempPattern)
	if err != nil {
		return fmt.Errorf("history: %w", err)
	}
	defer fsys.Remove(tmp.Name())
	w := bufio.NewWriter(tmp)
	for i := range prev {
		old, err := prev[i].Encode()
		if err != nil {
			continue
		}
		w.Write(old)
		w.WriteByte('\n')
	}
	w.Write(line)
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("history: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("history: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("history: %w", err)
	}
	if err := fsys.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("history: %w", err)
	}
	return nil
}

// fileShape reports the number of newline-terminated lines and whether the
// file ends in a partial (torn) line. A line count differing from the
// parseable-record count, or a partial tail, forces the rewrite path — a
// plain append after a torn line would fuse the new record onto it.
func fileShape(fsys vfs.FS, path string) (lines int, partialTail bool, err error) {
	f, err := fsys.Open(path)
	if os.IsNotExist(err) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	for {
		b, err := r.ReadByte()
		if err != nil {
			break
		}
		if b == '\n' {
			lines++
			partialTail = false
		} else {
			partialTail = true
		}
	}
	return lines, partialTail, nil
}
