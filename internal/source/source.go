// Package source provides source-file abstractions shared by every stage of
// the MiniC compiler: position tracking, human-readable location formatting,
// and structured diagnostics with severities.
//
// The design follows the usual compiler-frontend split: a File owns the raw
// bytes and a line-offset table, a Pos is a compact byte offset into one
// file, and a Position is the expanded (file, line, column) form used only
// when rendering messages.
package source

import (
	"fmt"
	"sort"
	"strings"
)

// Pos is a byte offset within a single source file. The zero value NoPos
// means "position unknown".
type Pos int

// NoPos is the unknown position.
const NoPos Pos = -1

// IsValid reports whether the position refers to an actual location.
func (p Pos) IsValid() bool { return p >= 0 }

// Position is a fully resolved source location, suitable for display.
type Position struct {
	Filename string
	Line     int // 1-based
	Column   int // 1-based, in bytes
	Offset   int // 0-based byte offset
}

// String renders the canonical "file:line:col" form. Missing parts are
// omitted so that a zero Position prints as "-".
func (p Position) String() string {
	s := p.Filename
	if p.Line > 0 {
		if s != "" {
			s += ":"
		}
		s += fmt.Sprintf("%d:%d", p.Line, p.Column)
	}
	if s == "" {
		s = "-"
	}
	return s
}

// File holds the contents of one source file together with the line table
// needed to resolve Pos values into Positions.
type File struct {
	Name    string
	Content []byte
	lines   []int // byte offset of the start of each line
}

// NewFile builds a File and computes its line table eagerly; files are small
// (compiler inputs) so the eager scan keeps later lookups allocation-free.
func NewFile(name string, content []byte) *File {
	f := &File{Name: name, Content: content}
	f.lines = append(f.lines, 0)
	for i, b := range content {
		if b == '\n' {
			f.lines = append(f.lines, i+1)
		}
	}
	return f
}

// Size returns the file length in bytes.
func (f *File) Size() int { return len(f.Content) }

// NumLines returns the number of lines in the file.
func (f *File) NumLines() int { return len(f.lines) }

// Position expands a Pos into a Position. Out-of-range or invalid positions
// yield a Position with only the filename set.
func (f *File) Position(p Pos) Position {
	if !p.IsValid() || int(p) > len(f.Content) {
		return Position{Filename: f.Name}
	}
	// Binary search for the greatest line start <= p.
	i := sort.Search(len(f.lines), func(i int) bool { return f.lines[i] > int(p) }) - 1
	return Position{
		Filename: f.Name,
		Line:     i + 1,
		Column:   int(p) - f.lines[i] + 1,
		Offset:   int(p),
	}
}

// Line returns the 1-based line number for p, or 0 if invalid.
func (f *File) Line(p Pos) int {
	if !p.IsValid() {
		return 0
	}
	return f.Position(p).Line
}

// Snippet returns the text of the line containing p, used in diagnostics.
func (f *File) Snippet(p Pos) string {
	pos := f.Position(p)
	if pos.Line == 0 {
		return ""
	}
	start := f.lines[pos.Line-1]
	end := len(f.Content)
	if pos.Line < len(f.lines) {
		end = f.lines[pos.Line] - 1
	}
	return strings.TrimRight(string(f.Content[start:end]), "\r\n")
}

// Severity classifies a diagnostic.
type Severity int

// Severity levels, ordered by increasing seriousness.
const (
	Note Severity = iota
	Warning
	Error
)

// String returns the lowercase severity name.
func (s Severity) String() string {
	switch s {
	case Note:
		return "note"
	case Warning:
		return "warning"
	case Error:
		return "error"
	default:
		return fmt.Sprintf("severity(%d)", int(s))
	}
}

// Diagnostic is a single compiler message anchored to a location.
type Diagnostic struct {
	Pos      Position
	Severity Severity
	Message  string
}

// String renders "file:line:col: severity: message".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Severity, d.Message)
}

// ErrorList accumulates diagnostics across compilation stages. The zero
// value is ready to use. It implements error so a stage can simply return
// the list when it is non-empty.
type ErrorList struct {
	Diags []Diagnostic
}

// Add appends a diagnostic.
func (l *ErrorList) Add(pos Position, sev Severity, format string, args ...any) {
	l.Diags = append(l.Diags, Diagnostic{Pos: pos, Severity: sev, Message: fmt.Sprintf(format, args...)})
}

// Errorf appends an error-severity diagnostic.
func (l *ErrorList) Errorf(pos Position, format string, args ...any) {
	l.Add(pos, Error, format, args...)
}

// Warnf appends a warning-severity diagnostic.
func (l *ErrorList) Warnf(pos Position, format string, args ...any) {
	l.Add(pos, Warning, format, args...)
}

// HasErrors reports whether any diagnostic has Error severity.
func (l *ErrorList) HasErrors() bool {
	for _, d := range l.Diags {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// Len returns the number of accumulated diagnostics.
func (l *ErrorList) Len() int { return len(l.Diags) }

// Sort orders diagnostics by file, then offset, then severity, giving
// deterministic output regardless of discovery order.
func (l *ErrorList) Sort() {
	sort.SliceStable(l.Diags, func(i, j int) bool {
		a, b := l.Diags[i], l.Diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Offset != b.Pos.Offset {
			return a.Pos.Offset < b.Pos.Offset
		}
		return a.Severity > b.Severity
	})
}

// Error implements the error interface: the first few messages joined by
// newlines, with a count of the remainder.
func (l *ErrorList) Error() string {
	const maxShown = 10
	if len(l.Diags) == 0 {
		return "no errors"
	}
	var sb strings.Builder
	for i, d := range l.Diags {
		if i == maxShown {
			fmt.Fprintf(&sb, "... and %d more", len(l.Diags)-maxShown)
			break
		}
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(d.String())
	}
	return sb.String()
}

// Err returns the list as an error if it contains errors, else nil.
func (l *ErrorList) Err() error {
	if l.HasErrors() {
		return l
	}
	return nil
}
