package source

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPositionResolution(t *testing.T) {
	f := NewFile("x.mc", []byte("abc\ndef\n\nxyz"))
	cases := []struct {
		off  int
		line int
		col  int
	}{
		{0, 1, 1}, {2, 1, 3}, {3, 1, 4}, // newline belongs to line 1
		{4, 2, 1}, {7, 2, 4},
		{8, 3, 1},
		{9, 4, 1}, {11, 4, 3},
	}
	for _, c := range cases {
		pos := f.Position(Pos(c.off))
		if pos.Line != c.line || pos.Column != c.col {
			t.Errorf("offset %d: got %d:%d, want %d:%d", c.off, pos.Line, pos.Column, c.line, c.col)
		}
		if pos.Filename != "x.mc" || pos.Offset != c.off {
			t.Errorf("offset %d: metadata wrong: %+v", c.off, pos)
		}
	}
	if f.NumLines() != 4 {
		t.Errorf("NumLines = %d, want 4", f.NumLines())
	}
	if f.Size() != 12 {
		t.Errorf("Size = %d", f.Size())
	}
}

func TestInvalidPositions(t *testing.T) {
	f := NewFile("x.mc", []byte("ab"))
	if p := f.Position(NoPos); p.Line != 0 || p.Filename != "x.mc" {
		t.Errorf("NoPos resolved to %+v", p)
	}
	if p := f.Position(Pos(100)); p.Line != 0 {
		t.Errorf("out-of-range resolved to %+v", p)
	}
	if NoPos.IsValid() || !Pos(0).IsValid() {
		t.Error("IsValid broken")
	}
}

func TestPositionMonotonic(t *testing.T) {
	content := []byte("line one\nsecond\n\nfourth line here\nx")
	f := NewFile("m.mc", content)
	check := func(off uint8) bool {
		o := int(off) % (len(content) + 1)
		p := f.Position(Pos(o))
		if p.Line < 1 || p.Column < 1 {
			return false
		}
		// Reconstruct the offset from (line, col).
		lineStart := 0
		line := 1
		for i := 0; i < o; i++ {
			if content[i] == '\n' {
				line++
				lineStart = i + 1
			}
		}
		return p.Line == line && p.Column == o-lineStart+1
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestSnippet(t *testing.T) {
	f := NewFile("x.mc", []byte("first\nsecond line\nthird"))
	if s := f.Snippet(Pos(8)); s != "second line" {
		t.Errorf("snippet = %q", s)
	}
	if s := f.Snippet(Pos(0)); s != "first" {
		t.Errorf("snippet = %q", s)
	}
	if s := f.Snippet(Pos(20)); s != "third" {
		t.Errorf("snippet = %q", s)
	}
}

func TestPositionString(t *testing.T) {
	p := Position{Filename: "a.mc", Line: 3, Column: 7}
	if p.String() != "a.mc:3:7" {
		t.Errorf("got %q", p.String())
	}
	if (Position{}).String() != "-" {
		t.Errorf("zero position prints %q", (Position{}).String())
	}
	if (Position{Filename: "f"}).String() != "f" {
		t.Error("filename-only position wrong")
	}
}

func TestErrorList(t *testing.T) {
	var l ErrorList
	if l.HasErrors() || l.Err() != nil {
		t.Error("empty list reports errors")
	}
	l.Warnf(Position{Filename: "a", Line: 2, Column: 1, Offset: 10}, "warn %d", 1)
	if l.HasErrors() {
		t.Error("warning counted as error")
	}
	l.Errorf(Position{Filename: "a", Line: 1, Column: 1, Offset: 0}, "boom")
	if !l.HasErrors() || l.Err() == nil {
		t.Error("error not reported")
	}
	l.Add(Position{Filename: "a", Line: 1, Column: 1, Offset: 0}, Note, "fyi")
	l.Sort()
	// After sorting, offset 0 entries come first, error before note at the
	// same offset (higher severity first).
	if l.Diags[0].Severity != Error {
		t.Errorf("sort order wrong: %v", l.Diags)
	}
	msg := l.Error()
	if !strings.Contains(msg, "boom") || !strings.Contains(msg, "warn 1") {
		t.Errorf("Error() = %q", msg)
	}
}

func TestErrorListTruncation(t *testing.T) {
	var l ErrorList
	for i := 0; i < 15; i++ {
		l.Errorf(Position{Filename: "f", Line: i + 1, Column: 1}, "e%d", i)
	}
	if msg := l.Error(); !strings.Contains(msg, "and 5 more") {
		t.Errorf("long list not truncated: %q", msg)
	}
	if l.Len() != 15 {
		t.Errorf("Len = %d", l.Len())
	}
}

func TestSeverityString(t *testing.T) {
	if Note.String() != "note" || Warning.String() != "warning" || Error.String() != "error" {
		t.Error("severity names wrong")
	}
	if !strings.Contains(Severity(9).String(), "9") {
		t.Error("unknown severity should embed the number")
	}
}
