package testutil

import (
	"strings"
	"testing"

	"statefulcc/internal/ir"
)

func TestBuildModuleErrors(t *testing.T) {
	if _, err := BuildModule("u.mc", `func broken( {`); err == nil || !strings.Contains(err.Error(), "parse") {
		t.Errorf("parse error not surfaced: %v", err)
	}
	if _, err := BuildModule("u.mc", `func f() { x = 1; }`); err == nil || !strings.Contains(err.Error(), "check") {
		t.Errorf("check error not surfaced: %v", err)
	}
	m, err := BuildModule("u.mc", `func main() { }`)
	if err != nil || m == nil || m.Unit != "u.mc" {
		t.Errorf("valid build failed: %v", err)
	}
}

func TestTransformErrorsSurface(t *testing.T) {
	_, _, err := RunSource(`func main() { }`, func(m *ir.Module) error {
		return errTransform
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("transform error lost: %v", err)
	}
}

var errTransform = errStr("boom")

type errStr string

func (e errStr) Error() string { return string(e) }

func TestTransformBreakingIRIsCaught(t *testing.T) {
	_, _, err := RunSource(`func main() { print(1); }`, func(m *ir.Module) error {
		// Sabotage: drop the entry block's terminator.
		m.Funcs[0].Blocks[0].Term = nil
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "broke IR") {
		t.Errorf("IR damage not detected: %v", err)
	}
}

func TestRunMultiUnitOrderIndependent(t *testing.T) {
	units := map[string]string{
		"b.mc": `func helper() int { return 5; }`,
		"a.mc": `extern func helper() int; func main() int { return helper(); }`,
	}
	out, exit, err := Run(units, nil)
	if err != nil || out != "" || exit != 5 {
		t.Errorf("out=%q exit=%d err=%v", out, exit, err)
	}
}
