// Package testutil provides shared helpers for the compiler's test suites:
// one-call paths from MiniC source text to checked ASTs, IR modules, linked
// programs, and executed results. Tests across packages use these to do
// differential testing (unoptimized vs optimized vs stateful builds).
package testutil

import (
	"fmt"

	"statefulcc/internal/codegen"
	"statefulcc/internal/ir"
	"statefulcc/internal/irbuild"
	"statefulcc/internal/parser"
	"statefulcc/internal/source"
	"statefulcc/internal/types"
	"statefulcc/internal/vm"
)

// BuildModule runs the frontend (parse, check, lower) on one unit.
func BuildModule(unit, src string) (*ir.Module, error) {
	var errs source.ErrorList
	file := source.NewFile(unit, []byte(src))
	tree := parser.ParseFile(file, &errs)
	if errs.HasErrors() {
		return nil, fmt.Errorf("parse: %w", &errs)
	}
	info := types.Check(file, tree, &errs)
	if errs.HasErrors() {
		return nil, fmt.Errorf("check: %w", &errs)
	}
	return irbuild.Build(unit, tree, info)
}

// Transform is an optional IR transformation applied between lowering and
// codegen (tests plug pass pipelines in here).
type Transform func(*ir.Module) error

// LinkProgram builds, optionally transforms, compiles, and links the units.
// The map key is the unit name; iteration order does not matter because the
// linker sorts units.
func LinkProgram(units map[string]string, tf Transform) (*codegen.Program, error) {
	var objs []*codegen.Object
	for name, src := range units {
		m, err := BuildModule(name, src)
		if err != nil {
			return nil, fmt.Errorf("unit %s: %w", name, err)
		}
		if tf != nil {
			if err := tf(m); err != nil {
				return nil, fmt.Errorf("transform %s: %w", name, err)
			}
			if err := m.Verify(); err != nil {
				return nil, fmt.Errorf("transform %s broke IR: %w", name, err)
			}
		}
		obj, err := codegen.Compile(m)
		if err != nil {
			return nil, fmt.Errorf("codegen %s: %w", name, err)
		}
		objs = append(objs, obj)
	}
	return codegen.Link(objs)
}

// Run compiles and executes a set of units, returning the print output and
// main's return value.
func Run(units map[string]string, tf Transform) (string, int64, error) {
	p, err := LinkProgram(units, tf)
	if err != nil {
		return "", 0, err
	}
	out, res, err := vm.RunCapture(p, vm.Config{})
	if err != nil {
		return out, 0, err
	}
	return out, res.ExitValue, nil
}

// RunSource is Run for a single unit named main.mc.
func RunSource(src string, tf Transform) (string, int64, error) {
	return Run(map[string]string{"main.mc": src}, tf)
}
