package passes

// Unroll fully expands innermost loops with a provable small constant trip
// count. The recognized shape is the canonical rotated-while loop that
// irbuild produces and the other passes preserve:
//
//	preheader → header: phi-based induction variable, a comparison against
//	a constant, branch(body, exit); body blocks form the loop and a single
//	latch jumps back to the header; the header's exit edge is the loop's
//	only exit.
//
// Each iteration is materialized by cloning the loop region with the
// header phis pre-substituted by that iteration's values; the final header
// clone runs the header's instructions one last time (matching the N+1
// evaluations of the original loop condition) and jumps to the exit.
//
// The trip count is established by symbolically executing the comparison
// with the shared ir.EvalBinary semantics, so any comparison operator (
// including != with wrap-around steps) is handled uniformly — or rejected
// by the iteration cap.

import (
	"statefulcc/internal/analysis"
	"statefulcc/internal/ir"
)

// Unroll is the full loop-unrolling pass.
type Unroll struct {
	// MaxTrips bounds the trip count eligible for full unrolling
	// (default 8).
	MaxTrips int
	// MaxClonedInstrs bounds trips × loop size (default 160).
	MaxClonedInstrs int
}

// Name implements FuncPass.
func (*Unroll) Name() string { return "unroll" }

// Run implements FuncPass.
func (u *Unroll) Run(f *ir.Func) bool {
	maxTrips := u.MaxTrips
	if maxTrips == 0 {
		maxTrips = 8
	}
	maxCloned := u.MaxClonedInstrs
	if maxCloned == 0 {
		maxCloned = 160
	}

	changed := false
	// Unroll one loop per outer iteration: unrolling invalidates the loop
	// analysis, and an unrolled body may expose a newly-innermost loop.
	for rounds := 0; rounds < 8; rounds++ {
		f.RemoveUnreachable()
		dom := analysis.BuildDomTree(f)
		loops := analysis.FindLoops(f, dom)
		done := true
		for i := len(loops.Loops) - 1; i >= 0; i-- {
			loop := loops.Loops[i]
			if plan, ok := planUnroll(f, loops, loop, maxTrips, maxCloned); ok {
				expand(f, plan)
				changed = true
				done = false
				break
			}
		}
		if done {
			break
		}
	}
	return changed
}

// unrollPlan captures everything needed to expand one loop.
type unrollPlan struct {
	loop     *analysis.Loop
	pre      *ir.Block // preheader (unique outside entry)
	latch    *ir.Block
	exit     *ir.Block
	bodySucc *ir.Block // header's in-loop successor
	trips    int
	// initOf maps each header phi to its value entering from the preheader.
	initOf map[*ir.Value]*ir.Value
}

func planUnroll(f *ir.Func, loops *analysis.LoopInfo, loop *analysis.Loop, maxTrips, maxCloned int) (*unrollPlan, bool) {
	// Innermost, single latch, single exit edge leaving from the header.
	for _, b := range loop.Blocks {
		if loops.InnermostLoop(b) != loop {
			return nil, false
		}
	}
	if len(loop.Latches) != 1 {
		return nil, false
	}
	if len(loop.Exits) != 1 || loop.Exits[0].From != loop.Header {
		return nil, false
	}
	header := loop.Header
	if header.Term == nil || header.Term.Op != ir.OpBranch {
		return nil, false
	}
	pre := loop.Preheader()
	if pre == nil {
		return nil, false // LICM runs earlier and creates preheaders
	}
	if len(header.Preds) != 2 {
		return nil, false
	}

	exit := loop.Exits[0].To
	var bodySucc *ir.Block
	for _, s := range header.Succs() {
		if s != exit {
			bodySucc = s
		}
	}
	if bodySucc == nil || !loop.Contains(bodySucc) {
		return nil, false
	}

	// The branch condition: cmp(iv, const) or cmp(const, iv), where iv is a
	// header phi advanced by a constant in the latch.
	cond := header.Term.Args[0]
	if !cond.Op.IsCompare() || cond.Block != header {
		return nil, false
	}
	cmpOp := cond.Op
	var iv *ir.Value
	var bound int64
	if c, ok := cond.Args[1].IsConst(); ok {
		iv, bound = cond.Args[0], c
	} else if c, ok := cond.Args[0].IsConst(); ok {
		// Normalize const to the right by swapping the comparison.
		sw, _ := cmpOp.SwapCompare()
		cmpOp = sw
		iv, bound = cond.Args[1], c
	} else {
		return nil, false
	}
	if iv.Op != ir.OpPhi || iv.Block != header {
		return nil, false
	}
	// Continuation polarity: loop continues when the branch takes bodySucc.
	continueWhenTrue := header.Term.Blocks[0] == bodySucc

	latch := loop.Latches[0]
	init := iv.Incoming(pre)
	next := iv.Incoming(latch)
	if init == nil || next == nil {
		return nil, false
	}
	initC, ok := init.IsConst()
	if !ok {
		return nil, false
	}
	var step int64
	switch next.Op {
	case ir.OpAdd:
		if c, ok := next.Args[1].IsConst(); ok && next.Args[0] == iv {
			step = c
		} else if c, ok := next.Args[0].IsConst(); ok && next.Args[1] == iv {
			step = c
		} else {
			return nil, false
		}
	case ir.OpSub:
		if c, ok := next.Args[1].IsConst(); ok && next.Args[0] == iv {
			step = -c
		} else {
			return nil, false
		}
	default:
		return nil, false
	}

	// Symbolic trip count.
	trips := 0
	x := initC
	for {
		r, ok := ir.EvalBinary(cmpOp, x, bound)
		if !ok {
			return nil, false
		}
		continues := r != 0
		if !continueWhenTrue {
			continues = !continues
		}
		if !continues {
			break
		}
		trips++
		if trips > maxTrips {
			return nil, false
		}
		x += step
	}

	size := 0
	for _, b := range loop.Blocks {
		size += len(b.Phis) + len(b.Instrs) + 1
	}
	if (trips+1)*size > maxCloned {
		return nil, false
	}

	initOf := make(map[*ir.Value]*ir.Value, len(header.Phis))
	for _, phi := range header.Phis {
		in := phi.Incoming(pre)
		if in == nil {
			return nil, false
		}
		initOf[phi] = in
	}
	return &unrollPlan{
		loop: loop, pre: pre, latch: latch, exit: exit,
		bodySucc: bodySucc, trips: trips, initOf: initOf,
	}, true
}

// expand materializes the unrolled loop.
func expand(f *ir.Func, p *unrollPlan) {
	header := p.loop.Header

	// env maps each header phi to its value for the iteration being built.
	env := make(map[*ir.Value]*ir.Value, len(p.initOf))
	for phi, in := range p.initOf {
		env[phi] = in
	}

	var headerClones []*ir.Block
	var latchClones []*ir.Block
	var finalVmap map[*ir.Value]*ir.Value

	for k := 0; k < p.trips; k++ {
		vmap := make(map[*ir.Value]*ir.Value)
		for phi, v := range env {
			vmap[phi] = v
		}
		bmap := ir.CloneBlocksInto(f, p.loop.Blocks, vmap)
		hc := bmap[header]
		// The check passes for this iteration: jump straight into the body
		// clone (dropping the transient edge to the exit).
		replaceTermWithJump(hc, bmap[p.bodySucc])
		headerClones = append(headerClones, hc)
		latchClones = append(latchClones, bmap[p.latch])

		// Next iteration's phi values flow around the cloned backedge.
		nextEnv := make(map[*ir.Value]*ir.Value, len(env))
		for _, phi := range header.Phis {
			in := phi.Incoming(p.latch)
			if m, ok := vmap[in]; ok {
				in = m
			}
			nextEnv[phi] = in
		}
		env = nextEnv
	}

	// Final check: the header executes once more (its instructions may have
	// observable effects and feed the exit block's phis) and leaves the loop.
	finalVmap = make(map[*ir.Value]*ir.Value)
	for phi, v := range env {
		finalVmap[phi] = v
	}
	fb := ir.CloneBlocksInto(f, []*ir.Block{header}, finalVmap)
	finalCheck := fb[header]
	replaceTermWithJump(finalCheck, p.exit)
	headerClones = append(headerClones, finalCheck)

	// Chain the iterations: each cloned latch's backedge (which points at
	// its own iteration's header clone) advances to the next clone.
	for k, lc := range latchClones {
		lc.RedirectEdge(headerClones[k], headerClones[k+1])
	}

	// Supply the exit block's phi operands for the new incoming edge.
	for _, phi := range p.exit.Phis {
		in := phi.Incoming(header)
		if in != nil {
			if m, ok := finalVmap[in]; ok {
				in = m
			}
			phi.SetIncoming(finalCheck, in)
		}
	}

	// Values defined in the (dominating) original header may be used after
	// the loop; route those uses to the final iteration's copies.
	replaceOutside := func(old, new *ir.Value) {
		if old != new {
			f.ReplaceAllUses(old, new)
		}
	}
	for _, phi := range header.Phis {
		replaceOutside(phi, finalVmap[phi])
	}
	for _, v := range header.Instrs {
		replaceOutside(v, finalVmap[v])
	}

	// Enter the expansion instead of the original loop; the original blocks
	// become unreachable and are removed (fixing the exit's old phi edge).
	p.pre.RedirectEdge(header, headerClones[0])
	f.RemoveUnreachable()
}
