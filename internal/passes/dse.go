package passes

// DSE removes stores that can never be observed. Two cases are handled,
// both restricted to allocas whose address does not escape (address used
// only by load/store/indexaddr):
//
//  1. Write-only allocas: no load ever reads the alloca or any address
//     derived from it, so every store to it — and the alloca itself — dies.
//
//  2. Overwritten stores: within one block, a store to the same scalar
//     alloca address with no intervening load or call kills the earlier
//     store.

import (
	"statefulcc/internal/ir"
)

// DSE is the dead store elimination pass.
type DSE struct{}

// Name implements FuncPass.
func (*DSE) Name() string { return "dse" }

// Run implements FuncPass.
func (*DSE) Run(f *ir.Func) bool {
	changed := false
	if removeWriteOnlyAllocas(f) {
		changed = true
	}
	if removeOverwrittenStores(f) {
		changed = true
	}
	return changed
}

// allocaInfo classifies how each alloca's address flows.
type allocaInfo struct {
	escaped bool
	loaded  bool
	// derived index-address values rooted at the alloca.
	derived map[*ir.Value]bool
}

func analyzeAllocas(f *ir.Func) map[*ir.Value]*allocaInfo {
	infos := make(map[*ir.Value]*allocaInfo)
	f.ForEachValue(func(v *ir.Value) {
		if v.Op == ir.OpAlloca {
			infos[v] = &allocaInfo{derived: map[*ir.Value]bool{v: true}}
		}
	})
	// Propagate derived pointers (indexaddr chains are at most one level in
	// MiniC, but iterate for safety).
	for {
		grew := false
		f.ForEachValue(func(v *ir.Value) {
			if v.Op != ir.OpIndexAddr {
				return
			}
			for _, info := range infos {
				if info.derived[v.Args[0]] && !info.derived[v] {
					info.derived[v] = true
					grew = true
				}
			}
		})
		if !grew {
			break
		}
	}
	// Classify uses.
	f.ForEachValue(func(v *ir.Value) {
		for i, a := range v.Args {
			for _, info := range infos {
				if !info.derived[a] {
					continue
				}
				switch {
				case v.Op == ir.OpLoad && i == 0:
					info.loaded = true
				case v.Op == ir.OpStore && i == 0:
					// a pure write
				case v.Op == ir.OpIndexAddr && i == 0:
					// address derivation, already tracked
				default:
					info.escaped = true
				}
			}
		}
	})
	return infos
}

func removeWriteOnlyAllocas(f *ir.Func) bool {
	infos := analyzeAllocas(f)
	changed := false
	for _, b := range f.Blocks {
		removed := false
		keep := b.Instrs[:0]
		for _, v := range b.Instrs {
			dead := false
			switch v.Op {
			case ir.OpStore:
				for _, info := range infos {
					if info.derived[v.Args[0]] && !info.loaded && !info.escaped {
						dead = true
					}
				}
			}
			if dead {
				v.Block = nil
				removed = true
				changed = true
			} else {
				keep = append(keep, v)
			}
		}
		b.Instrs = keep
		if removed {
			b.TouchLayout()
		}
	}
	// The allocas and their indexaddrs are now dead; leave them to DCE
	// (indexaddr is marked effectful for bounds checks, but a bounds check
	// on a never-read array is still required? No: the check's trap is an
	// observable effect, so indexaddrs must stay. Only stores were removed.)
	return changed
}

// removeOverwrittenStores kills stores overwritten in the same block before
// any possible read. Conservative kill set: any load, call, or derived
// address use between the two stores keeps the earlier one.
func removeOverwrittenStores(f *ir.Func) bool {
	infos := analyzeAllocas(f)
	safe := func(ptr *ir.Value) bool {
		info := infos[ptr]
		return info != nil && !info.escaped
	}
	changed := false
	for _, b := range f.Blocks {
		// lastStore maps a scalar alloca to the index of the most recent
		// store not yet observed.
		lastStore := make(map[*ir.Value]int)
		var dead []int
		for i, v := range b.Instrs {
			switch v.Op {
			case ir.OpStore:
				ptr := v.Args[0]
				if ptr.Op == ir.OpAlloca && ptr.Aux == 1 && safe(ptr) {
					if prev, ok := lastStore[ptr]; ok {
						dead = append(dead, prev)
					}
					lastStore[ptr] = i
				}
			case ir.OpLoad:
				// A load may read any alloca whose address it names; clear
				// the matching pending store.
				for _, info := range infos {
					if info.derived[v.Args[0]] {
						for a := range info.derived {
							if a.Op == ir.OpAlloca {
								delete(lastStore, a)
							}
						}
					}
				}
			case ir.OpCall:
				// Calls cannot read local allocas in MiniC (addresses never
				// escape as values), but stay conservative anyway.
				lastStore = make(map[*ir.Value]int)
			}
		}
		if len(dead) > 0 {
			deadSet := make(map[int]bool, len(dead))
			for _, i := range dead {
				deadSet[i] = true
			}
			keep := b.Instrs[:0]
			for i, v := range b.Instrs {
				if deadSet[i] {
					v.Block = nil
					changed = true
				} else {
					keep = append(keep, v)
				}
			}
			b.Instrs = keep
			b.TouchLayout()
		}
	}
	return changed
}
