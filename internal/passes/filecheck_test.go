package passes_test

// FileCheck-style pass tests: every testdata/*.mc file declares a pipeline
// and CHECK directives against the printed IR (see internal/filecheck).
// This is the idiom real compiler repositories use for per-pass behaviour,
// complementing the API-level tests in pipeline_test.go.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"statefulcc/internal/filecheck"
	"statefulcc/internal/ir"
	"statefulcc/internal/passes"
	"statefulcc/internal/testutil"
)

func TestFileCheckCorpus(t *testing.T) {
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".mc") {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			srcBytes, err := os.ReadFile(filepath.Join("testdata", name))
			if err != nil {
				t.Fatal(err)
			}
			src := string(srcBytes)
			script, err := filecheck.Parse(src)
			if err != nil {
				t.Fatalf("directives: %v", err)
			}
			if !script.HasChecks() {
				t.Fatalf("%s has no CHECK directives", name)
			}
			// The test file may lack main; add a stub so checking passes.
			if !strings.Contains(src, "func main") {
				src += "\nfunc main() { }\n"
			}
			m, err := testutil.BuildModule(name, src)
			if err != nil {
				t.Fatalf("frontend: %v", err)
			}
			if _, err := passes.RunPipeline(m, script.Pipeline); err != nil {
				t.Fatalf("pipeline: %v", err)
			}
			if err := m.Verify(); err != nil {
				t.Fatalf("pipeline broke IR: %v", err)
			}
			output := m.String()
			if script.Func != "" {
				f := m.FindFunc(script.Func)
				if f == nil {
					t.Fatalf("RUN: func=%s not found after pipeline", script.Func)
				}
				output = f.String()
			}
			if err := script.Verify(output); err != nil {
				t.Fatalf("%v", err)
			}
		})
		ran++
	}
	if ran < 8 {
		t.Fatalf("only %d filecheck tests found; corpus shrunk?", ran)
	}
}

// TestFileCheckFilesStillExecute: every filecheck program must also run
// correctly end to end under its own pipeline (directives alone could pass
// on miscompiled code).
func TestFileCheckFilesStillExecute(t *testing.T) {
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".mc") {
			continue
		}
		srcBytes, err := os.ReadFile(filepath.Join("testdata", e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		src := string(srcBytes)
		script, err := filecheck.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(src, "func main") {
			src += "\nfunc main() { }\n"
		}
		base, baseExit, err := testutil.RunSource(src, nil)
		if err != nil {
			t.Fatalf("%s unoptimized: %v", e.Name(), err)
		}
		opt, optExit, err := testutil.RunSource(src, func(m *ir.Module) error {
			_, err := passes.RunPipeline(m, script.Pipeline)
			return err
		})
		if err != nil {
			t.Fatalf("%s optimized: %v", e.Name(), err)
		}
		if base != opt || baseExit != optExit {
			t.Errorf("%s: behaviour changed under its pipeline", e.Name())
		}
	}
}
