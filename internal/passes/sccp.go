package passes

// SCCP is sparse conditional constant propagation (Wegman–Zadeck): a
// three-level lattice (unknown → constant → varying) propagated over SSA
// edges together with branch-directed block reachability, so constants are
// found even through conditionally dead paths that straight folding misses.

import (
	"statefulcc/internal/ir"
)

// SCCP is the sparse conditional constant propagation pass.
type SCCP struct{}

// Name implements FuncPass.
func (*SCCP) Name() string { return "sccp" }

type latticeKind uint8

const (
	latUnknown latticeKind = iota // never executed / no information yet
	latConst
	latVarying
)

type lattice struct {
	kind latticeKind
	val  int64
}

type sccpState struct {
	f        *ir.Func
	val      map[*ir.Value]lattice
	execEdge map[[2]*ir.Block]bool
	execBlk  map[*ir.Block]bool
	users    map[*ir.Value][]*ir.Value
	ssaWork  []*ir.Value
	flowWork [][2]*ir.Block
}

// Run implements FuncPass.
func (*SCCP) Run(f *ir.Func) bool {
	s := &sccpState{
		f:        f,
		val:      make(map[*ir.Value]lattice),
		execEdge: make(map[[2]*ir.Block]bool),
		execBlk:  make(map[*ir.Block]bool),
		users:    make(map[*ir.Value][]*ir.Value),
	}
	f.ForEachValue(func(v *ir.Value) {
		for _, a := range v.Args {
			s.users[a] = append(s.users[a], v)
		}
	})

	entry := f.Entry()
	if entry == nil {
		return false
	}
	s.markBlock(entry)
	for len(s.ssaWork) > 0 || len(s.flowWork) > 0 {
		for len(s.flowWork) > 0 {
			e := s.flowWork[len(s.flowWork)-1]
			s.flowWork = s.flowWork[:len(s.flowWork)-1]
			s.processEdge(e[0], e[1])
		}
		for len(s.ssaWork) > 0 {
			v := s.ssaWork[len(s.ssaWork)-1]
			s.ssaWork = s.ssaWork[:len(s.ssaWork)-1]
			if v.Block != nil && s.execBlk[v.Block] {
				s.visit(v)
			}
		}
	}
	return s.rewrite()
}

func (s *sccpState) lookup(v *ir.Value) lattice {
	switch v.Op {
	case ir.OpConst:
		return lattice{latConst, v.Aux}
	case ir.OpParam:
		return lattice{kind: latVarying}
	}
	return s.val[v]
}

// lower updates v's lattice downwards, queueing its users when it changed.
func (s *sccpState) lower(v *ir.Value, l lattice) {
	old := s.val[v]
	if old.kind == l.kind && (l.kind != latConst || old.val == l.val) {
		return
	}
	// The lattice only moves down: unknown → const → varying.
	if old.kind == latVarying || (old.kind == latConst && l.kind == latConst && old.val != l.val) {
		l = lattice{kind: latVarying}
		if old.kind == latVarying {
			return
		}
	}
	s.val[v] = l
	s.ssaWork = append(s.ssaWork, s.users[v]...)
}

func (s *sccpState) markBlock(b *ir.Block) {
	if s.execBlk[b] {
		return
	}
	s.execBlk[b] = true
	for _, phi := range b.Phis {
		s.visit(phi)
	}
	for _, v := range b.Instrs {
		s.visit(v)
	}
	if b.Term != nil {
		s.visit(b.Term)
	}
}

func (s *sccpState) markEdge(from, to *ir.Block) {
	key := [2]*ir.Block{from, to}
	if s.execEdge[key] {
		return
	}
	s.execEdge[key] = true
	s.flowWork = append(s.flowWork, key)
}

func (s *sccpState) processEdge(from, to *ir.Block) {
	if s.execBlk[to] {
		// Re-evaluate phis: a new incoming edge can change their meet.
		for _, phi := range to.Phis {
			s.visit(phi)
		}
		return
	}
	s.markBlock(to)
}

func (s *sccpState) visit(v *ir.Value) {
	switch v.Op {
	case ir.OpPhi:
		s.visitPhi(v)
	case ir.OpJump:
		s.markEdge(v.Block, v.Blocks[0])
	case ir.OpBranch:
		c := s.lookup(v.Args[0])
		switch c.kind {
		case latConst:
			if c.val != 0 {
				s.markEdge(v.Block, v.Blocks[0])
			} else {
				s.markEdge(v.Block, v.Blocks[1])
			}
		case latVarying:
			s.markEdge(v.Block, v.Blocks[0])
			s.markEdge(v.Block, v.Blocks[1])
		}
	case ir.OpRet, ir.OpStore, ir.OpPrint, ir.OpAssert:
		// No result.
	case ir.OpCall, ir.OpLoad, ir.OpAlloca, ir.OpIndexAddr, ir.OpGlobalAddr:
		s.lower(v, lattice{kind: latVarying})
	default:
		s.visitArith(v)
	}
}

func (s *sccpState) visitPhi(v *ir.Value) {
	res := lattice{kind: latUnknown}
	for i, a := range v.Args {
		if !s.execEdge[[2]*ir.Block{v.Blocks[i], v.Block}] {
			continue
		}
		al := s.lookup(a)
		switch al.kind {
		case latUnknown:
			// contributes nothing yet
		case latVarying:
			res = lattice{kind: latVarying}
		case latConst:
			switch res.kind {
			case latUnknown:
				res = al
			case latConst:
				if res.val != al.val {
					res = lattice{kind: latVarying}
				}
			}
		}
		if res.kind == latVarying {
			break
		}
	}
	s.lower(v, res)
}

func (s *sccpState) visitArith(v *ir.Value) {
	// Unary and binary pure arithmetic.
	switch len(v.Args) {
	case 1:
		a := s.lookup(v.Args[0])
		switch a.kind {
		case latVarying:
			s.lower(v, lattice{kind: latVarying})
		case latConst:
			if r, ok := ir.EvalUnary(v.Op, a.val); ok {
				s.lower(v, lattice{latConst, r})
			} else {
				s.lower(v, lattice{kind: latVarying})
			}
		}
	case 2:
		a, b := s.lookup(v.Args[0]), s.lookup(v.Args[1])
		if a.kind == latConst && b.kind == latConst {
			if r, ok := ir.EvalBinary(v.Op, a.val, b.val); ok {
				s.lower(v, lattice{latConst, r})
			} else {
				s.lower(v, lattice{kind: latVarying}) // division by zero traps
			}
			return
		}
		if a.kind == latVarying || b.kind == latVarying {
			s.lower(v, lattice{kind: latVarying})
		}
	}
}

// rewrite applies the solution: constant values are substituted, constant
// branches become jumps, and unreachable blocks are removed.
func (s *sccpState) rewrite() bool {
	changed := false
	for _, b := range s.f.Blocks {
		if !s.execBlk[b] {
			continue
		}
		rewriteList := func(list []*ir.Value, remove func(*ir.Value) bool) {
			for _, v := range append([]*ir.Value(nil), list...) {
				l := s.val[v]
				if l.kind != latConst || v.Type == ir.TVoid {
					continue
				}
				if v.Op == ir.OpDiv || v.Op == ir.OpRem {
					// Folded result exists, but operands proved constant
					// only along executable paths; EvalBinary succeeded so
					// replacement is safe.
					_ = v
				}
				s.f.ReplaceAllUses(v, makeConst(s.f, l.val, v.Type))
				if remove(v) {
					changed = true
				}
			}
		}
		rewriteList(b.Phis, func(v *ir.Value) bool { return b.RemovePhi(v) })
		rewriteList(b.Instrs, func(v *ir.Value) bool {
			// Keep instructions whose execution is observable even when
			// the result is known (calls may print; loads cannot trap but
			// keeping DCE-able ones is harmless... they are pure reads, so
			// removal is fine; calls are never latConst anyway).
			return b.RemoveInstr(v)
		})
		if b.Term != nil && b.Term.Op == ir.OpBranch {
			if c := s.lookup(b.Term.Args[0]); c.kind == latConst {
				taken := b.Term.Blocks[0]
				if c.val == 0 {
					taken = b.Term.Blocks[1]
				}
				replaceTermWithJump(b, taken)
				changed = true
			}
		}
	}
	if s.f.RemoveUnreachable() > 0 {
		changed = true
	}
	return changed
}
