package passes

// Mem2Reg promotes scalar allocas whose address never escapes into SSA
// values, inserting phi nodes at iterated dominance frontiers (Cytron et
// al.) and renaming loads/stores along the dominator tree. This is the pass
// that converts freshly lowered "memory form" IR into real SSA, so on a
// fresh compilation it is essentially always active — and on the IR it
// itself produced it is always dormant, a property the stateful pass
// manager's tests pin down.

import (
	"statefulcc/internal/analysis"
	"statefulcc/internal/ir"
)

// Mem2Reg is the alloca-promotion pass.
type Mem2Reg struct{}

// Name implements FuncPass.
func (*Mem2Reg) Name() string { return "mem2reg" }

// Run implements FuncPass.
func (*Mem2Reg) Run(f *ir.Func) bool {
	changed := f.RemoveUnreachable() > 0

	allocas := promotable(f)
	if len(allocas) == 0 {
		return changed
	}

	dom := analysis.BuildDomTree(f)
	df := dom.Frontiers()

	// Phi placement at iterated dominance frontiers.
	phiFor := make(map[*ir.Value]*ir.Value) // phi -> alloca
	for _, a := range allocas {
		t := allocaType(f, a)
		hasPhi := make(map[*ir.Block]bool)
		work := defBlocks(f, a)
		var queue []*ir.Block
		queue = append(queue, work...)
		for len(queue) > 0 {
			b := queue[0]
			queue = queue[1:]
			for _, fb := range df[b.ID] {
				if hasPhi[fb] {
					continue
				}
				hasPhi[fb] = true
				phi := f.NewValue(ir.OpPhi, t)
				fb.AddPhi(phi)
				phiFor[phi] = a
				queue = append(queue, fb)
			}
		}
	}

	// Renaming along the dominator tree.
	type stackEntry struct {
		alloca *ir.Value
		val    *ir.Value
	}
	stacks := make(map[*ir.Value][]*ir.Value) // alloca -> def stack
	replace := make(map[*ir.Value]*ir.Value)  // dead load -> value
	var deadInstrs []*ir.Value
	isPromoted := make(map[*ir.Value]bool, len(allocas))
	for _, a := range allocas {
		isPromoted[a] = true
	}

	top := func(a *ir.Value) *ir.Value {
		s := stacks[a]
		if len(s) > 0 {
			return s[len(s)-1]
		}
		// Uninitialized path: MiniC zero-initializes scalars, so this value
		// is unobservable; zero keeps the IR well-defined.
		if allocaType(f, a) == ir.TBool {
			return f.ConstBool(false)
		}
		return f.ConstInt(0)
	}

	var visit func(b *ir.Block)
	visit = func(b *ir.Block) {
		var pushed []stackEntry
		for _, phi := range b.Phis {
			if a, ok := phiFor[phi]; ok {
				stacks[a] = append(stacks[a], phi)
				pushed = append(pushed, stackEntry{a, phi})
			}
		}
		for _, v := range b.Instrs {
			switch v.Op {
			case ir.OpStore:
				if a := v.Args[0]; isPromoted[a] {
					stacks[a] = append(stacks[a], v.Args[1])
					pushed = append(pushed, stackEntry{a, v.Args[1]})
					deadInstrs = append(deadInstrs, v)
				}
			case ir.OpLoad:
				if a := v.Args[0]; isPromoted[a] {
					replace[v] = top(a)
					deadInstrs = append(deadInstrs, v)
				}
			}
		}
		for _, s := range b.Succs() {
			for _, phi := range s.Phis {
				if a, ok := phiFor[phi]; ok {
					phi.SetIncoming(b, top(a))
				}
			}
		}
		for _, c := range dom.Children(b) {
			visit(c)
		}
		for _, pe := range pushed {
			s := stacks[pe.alloca]
			stacks[pe.alloca] = s[:len(s)-1]
		}
	}
	visit(f.Entry())

	// Substitute dead loads everywhere, resolving chains (a load replaced
	// by another load that is itself replaced).
	resolve := func(v *ir.Value) *ir.Value {
		for {
			nv, ok := replace[v]
			if !ok {
				return v
			}
			v = nv
		}
	}
	f.ForEachValue(func(v *ir.Value) {
		for i, a := range v.Args {
			if r := resolve(a); r != a {
				v.Args[i] = r
				if v.Block != nil {
					v.Block.Touch()
				}
			}
		}
	})

	// Delete the rewritten loads/stores and the allocas themselves.
	for _, v := range deadInstrs {
		v.Block.RemoveInstr(v)
	}
	for _, a := range allocas {
		a.Block.RemoveInstr(a)
	}
	return true
}

// promotable returns the single-word allocas used only as the address
// operand of loads and stores, in deterministic (layout) order.
func promotable(f *ir.Func) []*ir.Value {
	bad := make(map[*ir.Value]bool)
	seen := make(map[*ir.Value]bool)
	var candidates []*ir.Value

	f.ForEachValue(func(v *ir.Value) {
		if v.Op == ir.OpAlloca {
			seen[v] = true
			if v.Aux == 1 {
				candidates = append(candidates, v)
			} else {
				bad[v] = true
			}
		}
		for i, a := range v.Args {
			if a.Op != ir.OpAlloca {
				continue
			}
			okUse := (v.Op == ir.OpLoad && i == 0) || (v.Op == ir.OpStore && i == 0)
			if !okUse {
				bad[a] = true
			}
		}
	})
	var out []*ir.Value
	for _, a := range candidates {
		if !bad[a] {
			out = append(out, a)
		}
	}
	return out
}

// allocaType infers the scalar type stored in the alloca from its first
// load or store; untouched allocas default to int.
func allocaType(f *ir.Func, a *ir.Value) ir.Type {
	t := ir.TInt
	found := false
	f.ForEachValue(func(v *ir.Value) {
		if found {
			return
		}
		switch v.Op {
		case ir.OpLoad:
			if v.Args[0] == a {
				t = v.Type
				found = true
			}
		case ir.OpStore:
			if v.Args[0] == a {
				t = v.Args[1].Type
				found = true
			}
		}
	})
	return t
}

// defBlocks returns the blocks containing stores to a, deduplicated, in
// layout order.
func defBlocks(f *ir.Func, a *ir.Value) []*ir.Block {
	var out []*ir.Block
	last := map[*ir.Block]bool{}
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			if v.Op == ir.OpStore && v.Args[0] == a && !last[b] {
				last[b] = true
				out = append(out, b)
			}
		}
	}
	return out
}
