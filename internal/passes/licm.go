package passes

// LICM hoists loop-invariant pure computations into a preheader block,
// creating the preheader when the loop lacks one. Memory reads are not
// hoisted (no alias analysis), and trapping div/rem are not hoisted either:
// a loop that executes zero iterations must not gain a trap the original
// program avoided. Pure ops cannot trap, so speculatively executing them in
// the preheader is always safe.

import (
	"statefulcc/internal/analysis"
	"statefulcc/internal/ir"
)

// LICM is the loop-invariant code motion pass.
type LICM struct{}

// Name implements FuncPass.
func (*LICM) Name() string { return "licm" }

// Run implements FuncPass.
func (*LICM) Run(f *ir.Func) bool {
	f.RemoveUnreachable()
	dom := analysis.BuildDomTree(f)
	loops := analysis.FindLoops(f, dom)
	if len(loops.Loops) == 0 {
		return false
	}
	changed := false
	// Loops are sorted by body size descending; iterating in reverse
	// processes inner loops first, letting invariants migrate outward one
	// level per LICM run of the enclosing loop.
	for i := len(loops.Loops) - 1; i >= 0; i-- {
		if hoistLoop(f, loops.Loops[i]) {
			changed = true
		}
	}
	return changed
}

func hoistLoop(f *ir.Func, loop *analysis.Loop) bool {
	inLoop := make(map[*ir.Block]bool, len(loop.Blocks))
	for _, b := range loop.Blocks {
		inLoop[b] = true
	}

	hoisted := make(map[*ir.Value]bool)
	// hoistable: pure op whose operands are constants, params, values
	// defined outside the loop, or values already marked for hoisting.
	hoistable := func(v *ir.Value) bool {
		if !v.Op.IsPure() {
			return false
		}
		for _, a := range v.Args {
			if a.Op == ir.OpConst || a.Op == ir.OpParam {
				continue
			}
			if a.Block != nil && inLoop[a.Block] && !hoisted[a] {
				return false
			}
		}
		return true
	}

	// Fixed-point collection in deterministic (loop block list, layout)
	// order; rounds guarantee defs precede users in the hoist list.
	var toHoist []*ir.Value
	for {
		found := false
		for _, b := range loop.Blocks {
			for _, v := range b.Instrs {
				if !hoisted[v] && hoistable(v) {
					hoisted[v] = true
					toHoist = append(toHoist, v)
					found = true
				}
			}
		}
		if !found {
			break
		}
	}
	if len(toHoist) == 0 {
		return false
	}

	pre := ensurePreheader(f, loop)
	if pre == nil {
		return false
	}
	for _, v := range toHoist {
		v.Block.RemoveInstr(v)
		v.Block = pre
		pre.Instrs = append(pre.Instrs, v)
	}
	pre.TouchLayout()
	return true
}

// ensurePreheader returns the loop's preheader, creating one when needed by
// routing all outside entries through a fresh block. Returns nil when the
// header has no outside predecessors (cannot happen for natural loops in
// code lowered from structured sources).
func ensurePreheader(f *ir.Func, loop *analysis.Loop) *ir.Block {
	if p := loop.Preheader(); p != nil {
		return p
	}
	header := loop.Header
	var outside []*ir.Block
	for _, p := range header.Preds {
		if !loop.Contains(p) {
			outside = append(outside, p)
		}
	}
	if len(outside) == 0 {
		return nil
	}
	if len(outside) == 1 {
		// A single outside pred that merely has other successors: splitting
		// the edge yields a dedicated preheader.
		return outside[0].SplitEdge(header)
	}

	// Multiple outside entries: build a preheader that merges them.
	// Header phis donate their outside operands to new preheader phis.
	pre := f.NewBlock()
	var prePhis []*ir.Value
	for _, phi := range header.Phis {
		nphi := f.NewValue(ir.OpPhi, phi.Type)
		for _, p := range outside {
			nphi.Args = append(nphi.Args, phi.Incoming(p))
			nphi.Blocks = append(nphi.Blocks, p)
		}
		pre.AddPhi(nphi)
		prePhis = append(prePhis, nphi)
	}
	// Redirect each outside edge header→pre; this drops the header phis'
	// outside operands (already captured above) and fills pre.Preds.
	for _, p := range outside {
		p.RedirectEdge(header, pre)
	}
	// Terminate the preheader into the header and give every header phi a
	// single operand for the new edge: the corresponding preheader phi.
	j := f.NewValue(ir.OpJump, ir.TVoid)
	j.Blocks = []*ir.Block{header}
	pre.SetTerm(j)
	for i, phi := range header.Phis {
		phi.SetIncoming(pre, prePhis[i])
	}
	return pre
}
