package passes_test

import (
	"fmt"
	"strings"
	"testing"

	"statefulcc/internal/analysis"
	"statefulcc/internal/ir"
	"statefulcc/internal/passes"
	"statefulcc/internal/testutil"
)

// runPipeline is a testutil.Transform applying the named pipeline.
func runPipeline(pipeline []string) testutil.Transform {
	return func(m *ir.Module) error {
		_, err := passes.RunPipeline(m, pipeline)
		return err
	}
}

// TestDifferentialPipelines is the linchpin semantic test: every corpus
// program must behave identically unoptimized, under the quick pipeline,
// and under the full standard pipeline.
func TestDifferentialPipelines(t *testing.T) {
	for _, prog := range corpus {
		prog := prog
		t.Run(prog.name, func(t *testing.T) {
			baseOut, baseExit, err := testutil.RunSource(prog.src, nil)
			if err != nil {
				t.Fatalf("unoptimized run failed: %v", err)
			}
			for _, pl := range [][]string{passes.QuickPipeline, passes.StandardPipeline} {
				out, exit, err := testutil.RunSource(prog.src, runPipeline(pl))
				if err != nil {
					t.Fatalf("optimized run failed (%d passes): %v", len(pl), err)
				}
				if out != baseOut || exit != baseExit {
					t.Errorf("behaviour changed (%d passes):\nbase: exit=%d out=%q\nopt:  exit=%d out=%q",
						len(pl), baseExit, baseOut, exit, out)
				}
			}
		})
	}
}

// TestPassesPreserveInvariants runs the standard pipeline pass by pass,
// checking structural and SSA validity after every step — so a pass that
// corrupts the IR is identified by name.
func TestPassesPreserveInvariants(t *testing.T) {
	for _, prog := range corpus {
		prog := prog
		t.Run(prog.name, func(t *testing.T) {
			m, err := testutil.BuildModule("main.mc", prog.src)
			if err != nil {
				t.Fatal(err)
			}
			for step, name := range passes.StandardPipeline {
				applyOnePass(t, m, name)
				if err := m.Verify(); err != nil {
					t.Fatalf("after pass %d (%s): %v\n%s", step, name, err, m)
				}
				for _, f := range m.Funcs {
					if err := analysis.VerifySSA(f); err != nil {
						t.Fatalf("after pass %d (%s): %v\n%s", step, name, err, f)
					}
				}
			}
		})
	}
}

func applyOnePass(t *testing.T, m *ir.Module, name string) bool {
	t.Helper()
	info, ok := passes.Lookup(name)
	if !ok {
		t.Fatalf("unknown pass %s", name)
	}
	if info.Module {
		return info.New().(passes.ModulePass).RunModule(m)
	}
	p := info.New().(passes.FuncPass)
	changed := false
	for _, f := range m.Funcs {
		if p.Run(f) {
			changed = true
		}
	}
	return changed
}

// TestPipelineDeterminism: compiling the same source twice must yield
// byte-identical optimized IR. Determinism is the property that makes
// fingerprint-guarded dormant-pass skipping sound, so this test is
// load-bearing for the whole reproduction.
func TestPipelineDeterminism(t *testing.T) {
	for _, prog := range corpus {
		prog := prog
		t.Run(prog.name, func(t *testing.T) {
			render := func() string {
				m, err := testutil.BuildModule("main.mc", prog.src)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := passes.RunPipeline(m, passes.StandardPipeline); err != nil {
					t.Fatal(err)
				}
				return m.String()
			}
			a, b := render(), render()
			if a != b {
				t.Errorf("pipeline is nondeterministic:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
			}
		})
	}
}

// TestFunctionPassDeterminism checks each function pass in isolation: on
// the same input IR (rebuilt from source), two runs must produce identical
// output IR and the same changed verdict.
func TestFunctionPassDeterminism(t *testing.T) {
	for _, info := range passes.Registry() {
		if info.Module {
			continue
		}
		info := info
		t.Run(info.Name, func(t *testing.T) {
			for _, prog := range corpus {
				render := func() (string, string) {
					m, err := testutil.BuildModule("main.mc", prog.src)
					if err != nil {
						t.Fatal(err)
					}
					p := info.New().(passes.FuncPass)
					verdicts := ""
					for _, f := range m.Funcs {
						verdicts += fmt.Sprintf("%s=%t;", f.Name, p.Run(f))
					}
					return m.String(), verdicts
				}
				ir1, v1 := render()
				ir2, v2 := render()
				if ir1 != ir2 || v1 != v2 {
					t.Fatalf("%s nondeterministic on %s (verdicts %q vs %q)", info.Name, prog.name, v1, v2)
				}
			}
		})
	}
}

// TestDormancyOnOwnOutput: running a function pass twice in a row — the
// second run on the pass's own output — must report no change for the
// idempotent cleanup passes. This is the micro-behaviour behind the
// paper's dormancy statistics.
func TestDormancyOnOwnOutput(t *testing.T) {
	idempotent := []string{"mem2reg", "simplifycfg", "instcombine", "sccp", "gvn", "licm", "unroll", "strength", "loadelim", "dse", "dce"}
	for _, name := range idempotent {
		name := name
		t.Run(name, func(t *testing.T) {
			for _, prog := range corpus {
				m, err := testutil.BuildModule("main.mc", prog.src)
				if err != nil {
					t.Fatal(err)
				}
				p, err := passes.NewFuncPass(name)
				if err != nil {
					t.Fatal(err)
				}
				for _, f := range m.Funcs {
					p.Run(f)
					if p.Run(f) {
						t.Errorf("%s not dormant on its own output for %s.%s", name, prog.name, f.Name)
					}
				}
			}
		})
	}
}

// --- per-pass behavioural checks ---------------------------------------------

func buildFunc(t *testing.T, src, fn string) (*ir.Module, *ir.Func) {
	t.Helper()
	m, err := testutil.BuildModule("main.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	f := m.FindFunc(fn)
	if f == nil {
		t.Fatalf("no function %s", fn)
	}
	return m, f
}

func countOps(f *ir.Func, op ir.Op) int {
	n := 0
	f.ForEachValue(func(v *ir.Value) {
		if v.Op == op {
			n++
		}
	})
	return n
}

func mustRun(t *testing.T, name string, f *ir.Func) bool {
	t.Helper()
	p, err := passes.NewFuncPass(name)
	if err != nil {
		t.Fatal(err)
	}
	changed := p.Run(f)
	if err := f.Verify(); err != nil {
		t.Fatalf("%s broke IR: %v\n%s", name, err, f)
	}
	if err := analysis.VerifySSA(f); err != nil {
		t.Fatalf("%s broke SSA: %v\n%s", name, err, f)
	}
	return changed
}

func TestMem2RegPromotesScalars(t *testing.T) {
	_, f := buildFunc(t, `
func f(a int) int {
    var x int = a + 1;
    var y int = x * 2;
    if a > 0 { x = y; }
    return x + y;
}`, "f")
	if countOps(f, ir.OpAlloca) == 0 {
		t.Fatal("expected allocas before mem2reg")
	}
	if !mustRun(t, "mem2reg", f) {
		t.Fatal("mem2reg reported dormant on fresh IR")
	}
	if n := countOps(f, ir.OpAlloca); n != 0 {
		t.Errorf("allocas remain after mem2reg: %d\n%s", n, f)
	}
	if countOps(f, ir.OpPhi) == 0 {
		t.Errorf("expected a phi for the conditional assignment\n%s", f)
	}
}

func TestMem2RegKeepsArrays(t *testing.T) {
	_, f := buildFunc(t, `
func f() int {
    var a [4]int;
    a[1] = 5;
    return a[1];
}`, "f")
	mustRun(t, "mem2reg", f)
	if countOps(f, ir.OpAlloca) != 1 {
		t.Errorf("array alloca should survive mem2reg\n%s", f)
	}
}

func TestSimplifyCFGFoldsConstantBranch(t *testing.T) {
	_, f := buildFunc(t, `
func f() int {
    if true { return 1; }
    return 2;
}`, "f")
	mustRun(t, "mem2reg", f)
	mustRun(t, "simplifycfg", f)
	if n := countOps(f, ir.OpBranch); n != 0 {
		t.Errorf("constant branch survived: %d\n%s", n, f)
	}
	if len(f.Blocks) != 1 {
		t.Errorf("expected a single block, got %d\n%s", len(f.Blocks), f)
	}
}

func TestInstCombineIdentities(t *testing.T) {
	_, f := buildFunc(t, `
func f(x int) int {
    var a int = x + 0;
    var b int = a * 1;
    var c int = b - b;
    var d int = b ^ 0;
    return c + d;
}`, "f")
	mustRun(t, "mem2reg", f)
	mustRun(t, "instcombine", f)
	mustRun(t, "dce", f)
	// Everything folds down to "return x".
	for _, op := range []ir.Op{ir.OpAdd, ir.OpMul, ir.OpSub, ir.OpXor} {
		if n := countOps(f, op); n != 0 {
			t.Errorf("%s not folded (%d remain)\n%s", op, n, f)
		}
	}
}

func TestSCCPThroughBranches(t *testing.T) {
	_, f := buildFunc(t, `
func f() int {
    var x int = 4;
    var y int;
    if x > 3 { y = 10; } else { y = 20; }
    return y + x;
}`, "f")
	mustRun(t, "mem2reg", f)
	mustRun(t, "sccp", f)
	mustRun(t, "simplifycfg", f)
	mustRun(t, "dce", f)
	// SCCP proves the branch and the final value: only "ret 14" remains.
	if len(f.Blocks) != 1 || len(f.Blocks[0].Instrs) != 0 {
		t.Errorf("sccp failed to collapse:\n%s", f)
	}
	ret := f.Blocks[0].Term
	if c, ok := ret.Args[0].IsConst(); !ok || c != 14 {
		t.Errorf("return is not const 14:\n%s", f)
	}
}

func TestGVNMergesDuplicates(t *testing.T) {
	_, f := buildFunc(t, `
func f(a int, b int) int {
    var x int = a * b + 3;
    var y int = a * b + 3;
    return x + y;
}`, "f")
	mustRun(t, "mem2reg", f)
	mustRun(t, "gvn", f)
	mustRun(t, "dce", f)
	if n := countOps(f, ir.OpMul); n != 1 {
		t.Errorf("duplicate a*b not merged: %d muls\n%s", n, f)
	}
}

func TestGVNRespectsDominance(t *testing.T) {
	// The duplicate expressions are in sibling branches — neither dominates
	// the other, so GVN must NOT merge them.
	src := `
func f(a int, b int, c bool) int {
    var r int = 0;
    if c { r = a * b; } else { r = a * b + 1; }
    return r;
}
func main() { print(f(3, 4, true), f(3, 4, false)); }`
	out, _, err := testutil.RunSource(src, runPipeline([]string{"mem2reg", "gvn", "dce"}))
	if err != nil {
		t.Fatal(err)
	}
	if out != "12 13\n" {
		t.Errorf("out = %q, want \"12 13\"", out)
	}
}

func TestLICMHoistsInvariant(t *testing.T) {
	_, f := buildFunc(t, `
func f(n int, a int, b int) int {
    var acc int = 0;
    for var i int = 0; i < n; i++ {
        acc += a * b;
    }
    return acc;
}`, "f")
	mustRun(t, "mem2reg", f)
	if !mustRun(t, "licm", f) {
		t.Fatalf("licm found nothing to hoist\n%s", f)
	}
	// The multiply must now be outside the loop: in a block that is not
	// part of any loop.
	dom := analysis.BuildDomTree(f)
	loops := analysis.FindLoops(f, dom)
	found := false
	f.ForEachValue(func(v *ir.Value) {
		if v.Op == ir.OpMul {
			found = true
			if loops.InnermostLoop(v.Block) != nil {
				t.Errorf("a*b still inside the loop\n%s", f)
			}
		}
	})
	if !found {
		t.Fatalf("multiply disappeared\n%s", f)
	}
}

func TestUnrollEliminatesLoop(t *testing.T) {
	_, f := buildFunc(t, `
func f() int {
    var s int = 0;
    for var i int = 0; i < 4; i++ {
        s += i * i;
    }
    return s;
}`, "f")
	mustRun(t, "mem2reg", f)
	mustRun(t, "licm", f)
	if !mustRun(t, "unroll", f) {
		t.Fatalf("unroll did nothing\n%s", f)
	}
	dom := analysis.BuildDomTree(f)
	loops := analysis.FindLoops(f, dom)
	if len(loops.Loops) != 0 {
		t.Errorf("loop survived unrolling\n%s", f)
	}
}

func TestUnrollPreservesSemantics(t *testing.T) {
	src := `
func sumsq(n int) int {
    var s int = 0;
    for var i int = 0; i < 5; i++ {
        s += i * n;
    }
    return s;
}
func main() int {
    var zero int = 0;
    for var i int = 3; i < 3; i++ { zero = 1; } // zero-trip
    print(sumsq(2), sumsq(-1), zero);
    return sumsq(10);
}`
	baseOut, baseExit, err := testutil.RunSource(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, exit, err := testutil.RunSource(src, runPipeline([]string{"mem2reg", "simplifycfg", "licm", "unroll", "instcombine", "dce", "simplifycfg"}))
	if err != nil {
		t.Fatal(err)
	}
	if out != baseOut || exit != baseExit {
		t.Errorf("unroll changed behaviour: %q/%d vs %q/%d", baseOut, baseExit, out, exit)
	}
}

func TestStrengthReduction(t *testing.T) {
	_, f := buildFunc(t, `
func f(x int) int {
    return x * 8 + x * 9 + x * 7 + x * -1;
}`, "f")
	mustRun(t, "mem2reg", f)
	mustRun(t, "strength", f)
	if n := countOps(f, ir.OpMul); n != 0 {
		t.Errorf("multiplications survive strength reduction: %d\n%s", n, f)
	}
	if countOps(f, ir.OpShl) < 3 {
		t.Errorf("expected shifts\n%s", f)
	}
	if countOps(f, ir.OpNeg) != 1 {
		t.Errorf("x * -1 should become neg\n%s", f)
	}
}

func TestStrengthPreservesNegatives(t *testing.T) {
	src := `
func main() {
    var x int = -7;
    print(x * 8, x * 9, x * 7, x + x);
}`
	base, _, err := testutil.RunSource(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	opt, _, err := testutil.RunSource(src, runPipeline([]string{"mem2reg", "strength"}))
	if err != nil {
		t.Fatal(err)
	}
	if base != opt {
		t.Errorf("strength changed behaviour: %q vs %q", base, opt)
	}
}

func TestDSERemovesWriteOnlyArray(t *testing.T) {
	_, f := buildFunc(t, `
func f(x int) int {
    var scratch [8]int;
    scratch[0] = x;
    scratch[1] = x * 2;
    return x + 1;
}`, "f")
	mustRun(t, "mem2reg", f)
	if !mustRun(t, "dse", f) {
		t.Fatalf("dse found nothing\n%s", f)
	}
	if n := countOps(f, ir.OpStore); n != 0 {
		t.Errorf("dead stores remain: %d\n%s", n, f)
	}
}

func TestDSEOverwrittenStore(t *testing.T) {
	// Arrays resist mem2reg, so stores survive to DSE; the scalar double
	// store is handled by mem2reg itself, so test via an array cell with a
	// non-escaping alloca and same-block overwrite... a scalar alloca kept
	// alive by an address-of pattern does not exist in MiniC, so check the
	// write-only path plus semantics instead.
	src := `
func main() {
    var a [2]int;
    a[0] = 1;
    a[0] = 2;
    print(a[0]);
}`
	out, _, err := testutil.RunSource(src, runPipeline([]string{"mem2reg", "dse", "dce"}))
	if err != nil {
		t.Fatal(err)
	}
	if out != "2\n" {
		t.Errorf("out = %q, want 2", out)
	}
}

func TestLoadElimMergesArrayLoads(t *testing.T) {
	_, f := buildFunc(t, `
var a [8]int;
func f(i int) int {
    var x int = a[i];
    var y int = a[i];
    return x + y;
}`, "f")
	mustRun(t, "mem2reg", f)
	mustRun(t, "gvn", f) // canonicalize the two indexaddrs to one value
	if !mustRun(t, "loadelim", f) {
		t.Fatalf("loadelim found nothing\n%s", f)
	}
	if n := countOps(f, ir.OpLoad); n != 1 {
		t.Errorf("loads remaining = %d, want 1\n%s", n, f)
	}
}

func TestLoadElimStoreForwarding(t *testing.T) {
	_, f := buildFunc(t, `
var a [8]int;
func f(v int) int {
    a[3] = v;
    return a[3];
}`, "f")
	mustRun(t, "mem2reg", f)
	mustRun(t, "gvn", f)
	if !mustRun(t, "loadelim", f) {
		t.Fatalf("loadelim found nothing\n%s", f)
	}
	if n := countOps(f, ir.OpLoad); n != 0 {
		t.Errorf("store-to-load forwarding missed: %d loads\n%s", n, f)
	}
}

func TestLoadElimRespectsClobbers(t *testing.T) {
	// An intervening store to a *different* cell must kill availability
	// (the indexes may alias dynamically), and a call must kill globals.
	src := `
var a [8]int;
var g int;
func set(x int) { g = x; }
func f(i int, j int) int {
    a[i] = 1;
    a[j] = 2;
    return a[i]; // may be 1 or 2 depending on i==j
}
func main() {
    print(f(3, 3), f(3, 4));
    g = 5;
    set(9);
    print(g);
}`
	base, _, err := testutil.RunSource(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	opt, _, err := testutil.RunSource(src, runPipeline(passes.StandardPipeline))
	if err != nil {
		t.Fatal(err)
	}
	if base != opt {
		t.Errorf("loadelim changed behaviour: %q vs %q", base, opt)
	}
	if base != "2 1\n9\n" {
		t.Errorf("baseline output unexpected: %q", base)
	}
}

func TestDCERemovesDeadArithmetic(t *testing.T) {
	_, f := buildFunc(t, `
func f(x int) int {
    var dead int = x * 12345;
    dead = dead + 1;
    return x;
}`, "f")
	mustRun(t, "mem2reg", f)
	mustRun(t, "dce", f)
	if n := countOps(f, ir.OpMul); n != 0 {
		t.Errorf("dead multiply survives\n%s", f)
	}
}

func TestInlineSmallCallee(t *testing.T) {
	m, err := testutil.BuildModule("main.mc", `
func tiny(x int) int { return x + 1; }
func caller(y int) int { return tiny(y) * tiny(y + 2); }
func main() { print(caller(5)); }`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := passes.NewModulePass("inline")
	if err != nil {
		t.Fatal(err)
	}
	if !p.RunModule(m) {
		t.Fatal("inliner did nothing")
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("inline broke IR: %v\n%s", err, m)
	}
	caller := m.FindFunc("caller")
	if n := countOps(caller, ir.OpCall); n != 0 {
		t.Errorf("calls remain in caller: %d\n%s", n, caller)
	}
	for _, f := range m.Funcs {
		if err := analysis.VerifySSA(f); err != nil {
			t.Fatalf("SSA broken after inline: %v", err)
		}
	}
}

func TestInlineSkipsRecursive(t *testing.T) {
	m, err := testutil.BuildModule("main.mc", `
func fact(n int) int {
    if n <= 1 { return 1; }
    return n * fact(n - 1);
}
func main() { print(fact(5)); }`)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := passes.NewModulePass("inline")
	p.RunModule(m)
	mainFn := m.FindFunc("main")
	if n := countOps(mainFn, ir.OpCall); n != 1 {
		t.Errorf("recursive fact should not be inlined (calls=%d)\n%s", n, mainFn)
	}
}

func TestInlineVoidAndMultiReturn(t *testing.T) {
	src := `
func note(x int) { print("note", x); }
func pick(a int, b int) int {
    if a > b { return a; }
    return b;
}
func main() {
    note(1);
    print(pick(3, 9), pick(9, 3));
}`
	base, _, err := testutil.RunSource(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	opt, _, err := testutil.RunSource(src, runPipeline([]string{"mem2reg", "inline", "simplifycfg", "dce"}))
	if err != nil {
		t.Fatal(err)
	}
	if base != opt {
		t.Errorf("inline changed behaviour: %q vs %q", base, opt)
	}
}

func TestGlobalOptConstifiesAndRemoves(t *testing.T) {
	m, err := testutil.BuildModule("main.mc", `
var _ro int = 17;
var _never [4]int;
var public int = 5;
func main() { print(_ro + public); }`)
	if err != nil {
		t.Fatal(err)
	}
	// globalopt needs loads visible; run after mem2reg for realism.
	p, _ := passes.NewModulePass("globalopt")
	if !p.RunModule(m) {
		t.Fatal("globalopt did nothing")
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("globalopt broke IR: %v", err)
	}
	if m.FindGlobal("_never") != nil {
		t.Error("_never should be removed")
	}
	if m.FindGlobal("public") == nil {
		t.Error("public global must survive")
	}
	// _ro's load became const 17; after DCE its address is gone too.
	dcePass, _ := passes.NewFuncPass("dce")
	for _, f := range m.Funcs {
		dcePass.Run(f)
	}
	p.RunModule(m)
	if m.FindGlobal("_ro") != nil {
		t.Errorf("constified _ro should be removable:\n%s", m)
	}
}

func TestDeadFuncRemoval(t *testing.T) {
	m, err := testutil.BuildModule("main.mc", `
func _orphan() int { return 1; }
func _chain1() int { return _chain2(); }
func _chain2() int { return _chain1(); }
func keepme() int { return 2; }
func main() { print(keepme()); }`)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := passes.NewModulePass("deadfunc")
	if !p.RunModule(m) {
		t.Fatal("deadfunc did nothing")
	}
	if m.FindFunc("_orphan") != nil {
		t.Error("_orphan survived")
	}
	// Mutually recursive orphans are NOT removed (each is called); that is
	// the documented conservative behaviour.
	if m.FindFunc("keepme") == nil || m.FindFunc("main") == nil {
		t.Error("live functions removed")
	}
}

func TestPipelineOnMultiUnit(t *testing.T) {
	units := map[string]string{
		"lib.mc": `
var _state int = 3;
func _bump(x int) int { _state += x; return _state; }
func api(x int) int { return _bump(x) * 2; }
`,
		"main.mc": `
extern func api(x int) int;
func main() { print(api(1), api(2)); }
`,
	}
	base, baseExit, err := testutil.Run(units, nil)
	if err != nil {
		t.Fatal(err)
	}
	opt, optExit, err := testutil.Run(units, runPipeline(passes.StandardPipeline))
	if err != nil {
		t.Fatal(err)
	}
	if base != opt || baseExit != optExit {
		t.Errorf("multi-unit behaviour changed: %q vs %q", base, opt)
	}
}

func TestRunPipelineUnknownPass(t *testing.T) {
	m, err := testutil.BuildModule("main.mc", `func main() { }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := passes.RunPipeline(m, []string{"nosuchpass"}); err == nil {
		t.Error("expected error for unknown pass")
	}
}

func TestRegistryIntegrity(t *testing.T) {
	seen := map[string]bool{}
	for _, info := range passes.Registry() {
		if seen[info.Name] {
			t.Errorf("duplicate pass name %s", info.Name)
		}
		seen[info.Name] = true
		inst := info.New()
		if info.Module {
			mp, ok := inst.(passes.ModulePass)
			if !ok || mp.Name() != info.Name {
				t.Errorf("%s: bad module pass construction", info.Name)
			}
		} else {
			fp, ok := inst.(passes.FuncPass)
			if !ok || fp.Name() != info.Name {
				t.Errorf("%s: bad function pass construction", info.Name)
			}
		}
		if info.Module && info.FunctionLocal {
			t.Errorf("%s: module pass cannot be function-local", info.Name)
		}
	}
	for _, name := range passes.StandardPipeline {
		if _, ok := passes.Lookup(name); !ok {
			t.Errorf("pipeline references unknown pass %s", name)
		}
	}
	if !strings.Contains(strings.Join(passes.StandardPipeline, ","), "mem2reg") {
		t.Error("standard pipeline must start from memory form")
	}
}
