package passes

// DCE removes instructions whose results are never used and that have no
// side effects, using mark-and-sweep from effectful roots so that dead phi
// cycles (mutually referencing phis with no outside user) are collected too.

import (
	"statefulcc/internal/ir"
)

// DCE is the dead code elimination pass.
type DCE struct{}

// Name implements FuncPass.
func (*DCE) Name() string { return "dce" }

// Run implements FuncPass.
func (*DCE) Run(f *ir.Func) bool {
	live := make(map[*ir.Value]bool)
	var work []*ir.Value

	markRoot := func(v *ir.Value) {
		if !live[v] {
			live[v] = true
			work = append(work, v)
		}
	}
	f.ForEachValue(func(v *ir.Value) {
		if v.Op.HasSideEffects() {
			markRoot(v)
		}
	})
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		for _, a := range v.Args {
			if !live[a] {
				live[a] = true
				work = append(work, a)
			}
		}
	}

	changed := false
	for _, b := range f.Blocks {
		removed := false
		keepInstrs := b.Instrs[:0]
		for _, v := range b.Instrs {
			if live[v] || v.Op.HasSideEffects() {
				keepInstrs = append(keepInstrs, v)
			} else {
				v.Block = nil
				removed = true
			}
		}
		b.Instrs = keepInstrs
		keepPhis := b.Phis[:0]
		for _, v := range b.Phis {
			if live[v] {
				keepPhis = append(keepPhis, v)
			} else {
				v.Block = nil
				removed = true
			}
		}
		b.Phis = keepPhis
		if removed {
			b.TouchLayout()
			changed = true
		}
	}
	return changed
}
