package passes

// Inline is a bottom-up inliner: functions are visited in call-graph
// postorder (callees before callers), and call sites whose callee is
// defined in the same module, is not self-recursive, and is below the size
// threshold are replaced by a clone of the callee's body. Call sites
// introduced by inlining are not reconsidered within the same run, which
// bounds growth even for mutual recursion.

import (
	"statefulcc/internal/ir"
)

// Inline is the function-inlining pass.
type Inline struct {
	// Threshold is the maximum callee size (phis + instructions) eligible
	// for inlining (default 24).
	Threshold int
}

// Name implements ModulePass.
func (*Inline) Name() string { return "inline" }

// RunModule implements ModulePass.
func (p *Inline) RunModule(m *ir.Module) bool {
	threshold := p.Threshold
	if threshold == 0 {
		threshold = 24
	}

	order := callGraphPostorder(m)
	changed := false
	for _, f := range order {
		// Snapshot the call sites before inlining mutates the function;
		// calls introduced by inlining are not reconsidered this run.
		var sites []*ir.Value
		for _, b := range f.Blocks {
			for _, v := range b.Instrs {
				if v.Op == ir.OpCall {
					sites = append(sites, v)
				}
			}
		}
		for _, call := range sites {
			callee := m.FindFunc(call.Sym)
			if callee == nil || callee == f {
				continue
			}
			if funcSize(callee) > threshold || selfRecursive(callee) {
				continue
			}
			// Earlier inlines may have moved the call into a continuation
			// block (or deleted it with an unreachable region).
			if call.Block == nil {
				continue
			}
			inlineCall(f, call.Block, call, callee)
			changed = true
		}
	}
	return changed
}

func funcSize(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Phis) + len(b.Instrs) + 1
	}
	return n
}

func selfRecursive(f *ir.Func) bool {
	found := false
	f.ForEachValue(func(v *ir.Value) {
		if v.Op == ir.OpCall && v.Sym == f.Name {
			found = true
		}
	})
	return found
}

// callGraphPostorder orders functions callees-first, deterministically
// (module order for roots, call-site order for edges).
func callGraphPostorder(m *ir.Module) []*ir.Func {
	state := make(map[*ir.Func]int) // 0 unvisited, 1 visiting, 2 done
	var order []*ir.Func
	var visit func(f *ir.Func)
	visit = func(f *ir.Func) {
		if state[f] != 0 {
			return
		}
		state[f] = 1
		f.ForEachValue(func(v *ir.Value) {
			if v.Op == ir.OpCall {
				if callee := m.FindFunc(v.Sym); callee != nil && state[callee] == 0 {
					visit(callee)
				}
			}
		})
		state[f] = 2
		order = append(order, f)
	}
	for _, f := range m.Funcs {
		visit(f)
	}
	return order
}

// inlineCall splices a clone of callee into f at the given call site.
func inlineCall(f *ir.Func, b *ir.Block, call *ir.Value, callee *ir.Func) {
	// Locate the call within the block.
	idx := -1
	for i, v := range b.Instrs {
		if v == call {
			idx = i
			break
		}
	}
	if idx < 0 {
		return
	}

	// Split b after the call: everything below moves to cont, along with
	// b's terminator (successor bookkeeping transfers with it).
	cont := f.NewBlock()
	for _, v := range b.Instrs[idx+1:] {
		v.Block = cont
		cont.Instrs = append(cont.Instrs, v)
	}
	b.Instrs = b.Instrs[:idx] // drops the call itself
	term := b.Term
	b.Term = nil
	term.Block = cont
	cont.Term = term
	for _, s := range term.Blocks {
		for i, pd := range s.Preds {
			if pd == b {
				s.Preds[i] = cont
			}
		}
		for _, phi := range s.Phis {
			for i, in := range phi.Blocks {
				if in == b {
					phi.Blocks[i] = cont
				}
			}
		}
	}

	// Clone the callee with parameters bound to the call arguments.
	vmap := make(map[*ir.Value]*ir.Value, len(callee.Params))
	for i, p := range callee.Params {
		vmap[p] = call.Args[i]
	}
	bmap := ir.CloneBlocksInto(f, callee.Blocks, vmap)

	// Enter the inlined body.
	entry := bmap[callee.Entry()]
	j := f.NewValue(ir.OpJump, ir.TVoid)
	j.Blocks = []*ir.Block{entry}
	j.Block = b
	b.Term = j
	entry.Preds = append(entry.Preds, b)

	// Each cloned return becomes a jump to cont; returned values merge in a
	// phi when there is more than one return.
	type retSite struct {
		block *ir.Block
		val   *ir.Value
	}
	var rets []retSite
	for _, cb := range callee.Blocks {
		nb := bmap[cb]
		if nb.Term != nil && nb.Term.Op == ir.OpRet {
			var rv *ir.Value
			if len(nb.Term.Args) == 1 {
				rv = nb.Term.Args[0]
			}
			nj := f.NewValue(ir.OpJump, ir.TVoid)
			nj.Blocks = []*ir.Block{cont}
			nb.SetTerm(nj)
			rets = append(rets, retSite{nb, rv})
		}
	}

	// Substitute the call's value.
	if call.Type != ir.TVoid {
		var repl *ir.Value
		switch len(rets) {
		case 0:
			// No returning path: cont is unreachable; any value will do.
			repl = f.ConstInt(0)
		case 1:
			repl = rets[0].val
		default:
			phi := f.NewValue(ir.OpPhi, call.Type)
			for _, r := range rets {
				phi.Args = append(phi.Args, r.val)
				phi.Blocks = append(phi.Blocks, r.block)
			}
			cont.AddPhi(phi)
			repl = phi
		}
		f.ReplaceAllUses(call, repl)
	}

	// A callee with no returning path leaves cont unreachable; clean up so
	// the IR verifies.
	if len(rets) == 0 {
		f.RemoveUnreachable()
	}
}
