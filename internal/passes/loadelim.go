package passes

// LoadElim performs block-local redundant-load elimination and
// store-to-load forwarding on the memory accesses mem2reg cannot promote
// (array cells and globals):
//
//	x = a[i]; y = a[i];        → y reuses x
//	a[i] = v; x = a[i];        → x reuses v
//
// Soundness without alias analysis: the availability table is keyed by
// pointer *value* (the same SSA value ⇒ the same address), and any store
// invalidates everything except the stored pointer's own entry; calls
// invalidate everything (the callee may store globals). Availability never
// crosses block boundaries.

import (
	"statefulcc/internal/ir"
)

// LoadElim is the redundant-load elimination pass.
type LoadElim struct{}

// Name implements FuncPass.
func (*LoadElim) Name() string { return "loadelim" }

// Run implements FuncPass.
func (*LoadElim) Run(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		avail := make(map[*ir.Value]*ir.Value) // ptr -> current memory value
		removed := false
		keep := b.Instrs[:0]
		for _, v := range b.Instrs {
			switch v.Op {
			case ir.OpLoad:
				ptr := v.Args[0]
				if known, ok := avail[ptr]; ok && known.Type == v.Type {
					f.ReplaceAllUses(v, known)
					v.Block = nil
					removed = true
					changed = true
					continue // drop the load
				}
				avail[ptr] = v
			case ir.OpStore:
				// Any store may alias any tracked pointer except itself.
				ptr, val := v.Args[0], v.Args[1]
				for k := range avail {
					delete(avail, k)
				}
				avail[ptr] = val
			case ir.OpCall:
				for k := range avail {
					delete(avail, k)
				}
			}
			keep = append(keep, v)
		}
		b.Instrs = keep
		if removed {
			b.TouchLayout()
		}
	}
	return changed
}
