package passes

// InstCombine performs local algebraic simplification: per-instruction
// constant folding (through the shared ir.Eval* semantics so folding can
// never disagree with the VM), identity and annihilator rules, operand
// canonicalization, double-negation removal, comparison-of-self folding,
// constant reassociation, and branch-on-not inversion. It iterates within
// the function until no rule fires.

import (
	"statefulcc/internal/ir"
)

// InstCombine is the peephole simplification pass.
type InstCombine struct{}

// Name implements FuncPass.
func (*InstCombine) Name() string { return "instcombine" }

// Run implements FuncPass.
func (*InstCombine) Run(f *ir.Func) bool {
	changed := false
	for round := 0; round < 16; round++ {
		iter := false
		for _, b := range f.Blocks {
			for _, v := range append([]*ir.Value(nil), b.Instrs...) {
				repl, mutated := simplifyValue(f, v)
				if mutated {
					iter = true
				}
				if repl != nil {
					f.ReplaceAllUses(v, repl)
					b.RemoveInstr(v)
					iter = true
				}
			}
			if b.Term != nil && b.Term.Op == ir.OpBranch {
				if simplifyBranch(b) {
					iter = true
				}
			}
		}
		if !iter {
			break
		}
		changed = true
	}
	return changed
}

// simplifyBranch rewrites "branch !x, a, b" into "branch x, b, a" — the
// edge set is unchanged, so phis stay valid.
func simplifyBranch(b *ir.Block) bool {
	t := b.Term
	cond := t.Args[0]
	if cond.Op != ir.OpNot {
		return false
	}
	t.Args[0] = cond.Args[0]
	t.Blocks[0], t.Blocks[1] = t.Blocks[1], t.Blocks[0]
	b.Touch()
	return true
}

// simplifyValue returns a replacement value for v (nil if none) and whether
// v was mutated in place. Replacements always dominate v's uses: they are
// constants, operands of v, or operands of v's operands.
func simplifyValue(f *ir.Func, v *ir.Value) (*ir.Value, bool) {
	switch {
	case v.Op == ir.OpCopy:
		return v.Args[0], false

	case v.Op.IsBinaryInt() || v.Op.IsCompare():
		return simplifyBinary(f, v)

	case v.Op == ir.OpNeg || v.Op == ir.OpCompl || v.Op == ir.OpNot:
		x := v.Args[0]
		if c, ok := x.IsConst(); ok {
			if r, ok := ir.EvalUnary(v.Op, c); ok {
				return makeConst(f, r, v.Type), false
			}
		}
		// Double application cancels: -(-x), ^^x, !!x.
		if x.Op == v.Op {
			return x.Args[0], false
		}
		// !(cmp) becomes the inverted comparison, computed as a rewrite of
		// the not itself (the original comparison may have other users).
		if v.Op == ir.OpNot && x.Op.IsCompare() {
			inv, _ := x.Op.InvertCompare()
			v.Op = inv
			v.Args = []*ir.Value{x.Args[0], x.Args[1]}
			v.Block.Touch()
			return nil, true
		}
		return nil, false
	}
	return nil, false
}

func simplifyBinary(f *ir.Func, v *ir.Value) (*ir.Value, bool) {
	x, y := v.Args[0], v.Args[1]
	xc, xConst := x.IsConst()
	yc, yConst := y.IsConst()

	// Full folding.
	if xConst && yConst {
		if r, ok := ir.EvalBinary(v.Op, xc, yc); ok {
			return makeConst(f, r, v.Type), false
		}
		return nil, false // div/rem by zero: preserve the trap
	}

	mutated := false
	// Canonicalize: constant on the right for commutative ops.
	if xConst && !yConst && v.Op.IsCommutative() {
		v.Args[0], v.Args[1] = y, x
		x, y = v.Args[0], v.Args[1]
		xc, xConst, yc, yConst = yc, yConst, xc, xConst
		v.Block.Touch()
		mutated = true
	}

	// Identity/annihilator rules with a constant RHS.
	if yConst {
		switch v.Op {
		case ir.OpAdd, ir.OpSub, ir.OpXor, ir.OpOr, ir.OpShl, ir.OpShr:
			if yc == 0 {
				return x, mutated
			}
		case ir.OpMul:
			switch yc {
			case 1:
				return x, mutated
			case 0:
				return makeConst(f, 0, v.Type), mutated
			}
		case ir.OpDiv:
			if yc == 1 {
				return x, mutated
			}
		case ir.OpRem:
			if yc == 1 {
				return makeConst(f, 0, v.Type), mutated
			}
		case ir.OpAnd:
			switch yc {
			case 0:
				return makeConst(f, 0, v.Type), mutated
			case -1:
				return x, mutated
			}
		}
		// Reassociate constant chains: (x op c1) op c2 → x op (c1 op c2)
		// for associative-commutative add/mul/and/or/xor.
		if assoc(v.Op) && x.Op == v.Op {
			if c1, ok := x.Args[1].IsConst(); ok {
				if folded, ok := ir.EvalBinary(v.Op, c1, yc); ok {
					v.Args[0] = x.Args[0]
					v.Args[1] = f.ConstInt(folded)
					v.Block.Touch()
					return nil, true
				}
			}
		}
	}

	// Same-operand rules.
	if x == y {
		switch v.Op {
		case ir.OpSub, ir.OpXor:
			return makeConst(f, 0, v.Type), mutated
		case ir.OpAnd, ir.OpOr:
			return x, mutated
		case ir.OpEq, ir.OpLe, ir.OpGe:
			return makeConst(f, 1, v.Type), mutated
		case ir.OpNe, ir.OpLt, ir.OpGt:
			return makeConst(f, 0, v.Type), mutated
		}
	}
	return nil, mutated
}

func assoc(op ir.Op) bool {
	switch op {
	case ir.OpAdd, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor:
		return true
	}
	return false
}

func makeConst(f *ir.Func, v int64, t ir.Type) *ir.Value {
	if t == ir.TBool {
		return f.ConstBool(v != 0)
	}
	return f.ConstInt(v)
}
