package passes

// Strength reduction: multiplications by constants become shift/add/sub
// combinations, and x+x becomes a shift. Signed division and remainder are
// deliberately left alone — the round-toward-zero semantics of MiniC's /
// and % do not match arithmetic shifts for negative operands.

import (
	"math/bits"

	"statefulcc/internal/ir"
)

// Strength is the strength-reduction pass.
type Strength struct{}

// Name implements FuncPass.
func (*Strength) Name() string { return "strength" }

// Run implements FuncPass.
func (*Strength) Run(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		for i := 0; i < len(b.Instrs); i++ {
			v := b.Instrs[i]
			switch v.Op {
			case ir.OpMul:
				if reduceMul(f, b, &i, v) {
					changed = true
				}
			case ir.OpAdd:
				if v.Args[0] == v.Args[1] && v.Args[0].Op != ir.OpConst {
					// x + x → x << 1.
					v.Op = ir.OpShl
					v.Args[1] = f.ConstInt(1)
					b.Touch()
					changed = true
				}
			}
		}
	}
	return changed
}

// reduceMul rewrites x*c for profitable constants. i tracks the
// instruction index so that helper instructions inserted before v are not
// rescanned.
func reduceMul(f *ir.Func, b *ir.Block, i *int, v *ir.Value) bool {
	x, y := v.Args[0], v.Args[1]
	c, ok := y.IsConst()
	if !ok {
		if c2, ok2 := x.IsConst(); ok2 {
			x, c = y, c2
		} else {
			return false
		}
	}
	if x.Op == ir.OpConst {
		return false // instcombine folds const*const
	}
	switch {
	case c == -1:
		v.Op = ir.OpNeg
		v.Args = []*ir.Value{x}
		b.Touch()
		return true
	case c > 1 && isPow2(c):
		v.Op = ir.OpShl
		v.Args = []*ir.Value{x, f.ConstInt(int64(bits.TrailingZeros64(uint64(c))))}
		b.Touch()
		return true
	case c > 2 && isPow2(c-1):
		// x * (2^k + 1) → (x << k) + x
		sh := f.NewValue(ir.OpShl, ir.TInt, x, f.ConstInt(int64(bits.TrailingZeros64(uint64(c-1)))))
		b.InsertInstr(*i, sh)
		*i++
		v.Op = ir.OpAdd
		v.Args = []*ir.Value{sh, x}
		b.Touch()
		return true
	case c > 2 && isPow2(c+1):
		// x * (2^k - 1) → (x << k) - x
		sh := f.NewValue(ir.OpShl, ir.TInt, x, f.ConstInt(int64(bits.TrailingZeros64(uint64(c+1)))))
		b.InsertInstr(*i, sh)
		*i++
		v.Op = ir.OpSub
		v.Args = []*ir.Value{sh, x}
		b.Touch()
		return true
	}
	return false
}

func isPow2(c int64) bool { return c > 0 && c&(c-1) == 0 }
