package passes_test

// Shared MiniC test corpus: programs chosen to exercise every pass with
// observable behaviour (prints and exit values) so differential tests can
// detect any semantic change introduced by optimization.

type corpusProgram struct {
	name string
	src  string
}

var corpus = []corpusProgram{
	{"arith", `
func main() int {
    var a int = 15;
    var b int = 4;
    print(a + b, a - b, a * b, a / b, a % b);
    print(a & b, a | b, a ^ b, a << 2, a >> 1);
    print(-a, ^a);
    return a * b % 7;
}`},

	{"branches", `
func classify(x int) int {
    if x < 0 {
        return -1;
    } else if x == 0 {
        return 0;
    } else if x < 100 {
        return 1;
    }
    return 2;
}
func main() {
    for var i int = -2; i < 3; i++ {
        print(classify(i * 60));
    }
}`},

	{"loops", `
func main() int {
    var total int = 0;
    for var i int = 1; i <= 10; i++ {
        for var j int = i; j > 0; j-- {
            total += j;
        }
    }
    var k int = 100;
    while k > 1 {
        if k % 2 == 0 { k /= 2; } else { k = k * 3 + 1; }
        total++;
    }
    print(total);
    return total % 256;
}`},

	{"calls", `
func square(x int) int { return x * x; }
func cube(x int) int { return square(x) * x; }
func apply_twice(x int) int { return square(square(x)); }
func main() {
    print(square(7), cube(3), apply_twice(2));
}`},

	{"recursion", `
func gcd(a int, b int) int {
    if b == 0 { return a; }
    return gcd(b, a % b);
}
func ackermannish(m int, n int) int {
    if m == 0 { return n + 1; }
    if n == 0 { return ackermannish(m - 1, 1); }
    return ackermannish(m - 1, ackermannish(m, n - 1));
}
func main() {
    print(gcd(48, 36), gcd(17, 5), ackermannish(2, 3));
}`},

	{"arrays", `
var hist [10]int;
func main() {
    var data [16]int;
    var seed int = 42;
    for var i int = 0; i < 16; i++ {
        seed = (seed * 1103515245 + 12345) % 2147483648;
        if seed < 0 { seed = -seed; }
        data[i] = seed % 10;
        hist[data[i]] += 1;
    }
    var mx int = 0;
    for var i int = 0; i < 10; i++ {
        if hist[i] > mx { mx = hist[i]; }
    }
    print("max-bucket", mx);
    print(data[0], data[7], data[15]);
}`},

	{"shortcircuit", `
var count int = 0;
func tick(v bool) bool { count++; return v; }
func main() {
    var a bool = tick(true) && tick(false) && tick(true);
    var b bool = tick(false) || tick(true);
    print(a, b, count);
    if count > 0 && tick(true) || tick(false) {
        print("taken", count);
    }
}`},

	{"constfold", `
const N = 12;
const MASK = (1 << 8) - 1;
var table [12]int;
func main() {
    var x int = N * 4 + MASK % 7;
    print(x, N <= 12, MASK);
    for var i int = 0; i < N; i++ {
        table[i] = i * 3;
    }
    print(table[N - 1]);
}`},

	{"invariants", `
func hot(n int, a int, b int) int {
    var acc int = 0;
    for var i int = 0; i < n; i++ {
        var inv int = a * b + 17; // loop-invariant
        acc += inv + i;
    }
    return acc;
}
func main() {
    print(hot(10, 3, 4), hot(0, 9, 9), hot(1, -2, 5));
}`},

	{"smallloops", `
func main() {
    var s int = 0;
    for var i int = 0; i < 4; i++ {
        s += i * i; // fully unrollable
    }
    var p int = 1;
    for var j int = 1; j <= 5; j++ {
        p *= j;
    }
    print(s, p);
}`},

	{"privates", `
var _hidden int = 99;
var _scratch [4]int;
func _unused() int { return 1; }
func _helper(x int) int { return x + _hidden; }
func main() {
    print(_helper(1));
    _scratch[0] = 5; // stored but never read
}`},

	{"deadcode", `
func main() int {
    var a int = 3;
    var dead int = a * 1000; // never used
    var b int = a + 0;
    var c int = b * 1;
    dead = dead + 1;
    if false {
        print("never");
    }
    return c - a; // 0
}`},

	{"mixed", `
const LIM = 6;
var acc int;
func _mix(a int, b int) int {
    var t int = a ^ b;
    t = t * 9; // strength-reducible
    return t % 1000;
}
func step(i int) int {
    if i % 3 == 0 || i % 5 == 0 {
        return _mix(i, i + 1);
    }
    return i * 8;
}
func main() int {
    for var i int = 0; i < LIM * 2; i++ {
        acc += step(i);
        assert(acc >= 0, "accumulator overflow");
    }
    print("acc", acc);
    return acc % 100;
}`},

	{"zerotrip", `
func main() {
    var s int = 1;
    for var i int = 10; i < 10; i++ {
        s = 999;
    }
    while false {
        s = 777;
    }
    print(s);
}`},

	{"boolheavy", `
func xor3(a bool, b bool, c bool) bool {
    return a != b != c;
}
func main() {
    var n int = 0;
    for var i int = 0; i < 8; i++ {
        var a bool = (i & 1) == 1;
        var b bool = (i & 2) == 2;
        var c bool = (i & 4) == 4;
        if xor3(a, b, c) { n++; }
        if !(a && b) || c { n += 10; }
    }
    print(n);
}`},
}
