// Package passes implements the optimization pipeline of the MiniC
// compiler: a pass framework plus the individual function- and module-level
// transformations (mem2reg, simplifycfg, instcombine, SCCP, GVN, LICM, loop
// unrolling, strength reduction, DSE, DCE, the inliner, globalopt, and dead
// function elimination).
//
// Two properties of this package are load-bearing for the stateful pass
// manager in internal/core:
//
//   - Every pass reports whether it changed the IR. A pass that ran but
//     reported false is *dormant* — the observation the paper's skipping
//     scheme is built on.
//
//   - Every pass is deterministic: the same input IR produces the same
//     output IR (no map-iteration-order dependence). Determinism is what
//     makes "same input fingerprint + dormant last time ⇒ dormant now" a
//     sound skipping rule, and it is enforced by tests.
package passes

import (
	"fmt"

	"statefulcc/internal/ir"
)

// FuncPass transforms one function at a time.
type FuncPass interface {
	// Name returns the pass's registry name.
	Name() string
	// Run applies the pass, reporting whether it modified the function.
	Run(f *ir.Func) bool
}

// ModulePass transforms a whole module.
type ModulePass interface {
	// Name returns the pass's registry name.
	Name() string
	// RunModule applies the pass, reporting whether it modified the module.
	RunModule(m *ir.Module) bool
}

// Info describes a registered pass.
type Info struct {
	// Name is the unique registry key.
	Name string
	// Description is a one-line summary.
	Description string
	// Module is true for module-level passes.
	Module bool
	// FunctionLocal is true when the pass's behaviour on a function depends
	// only on that function's IR (deterministic, no module state). Only
	// function-local passes are eligible for fingerprint-guarded skipping.
	FunctionLocal bool
	// New constructs a fresh pass instance.
	New func() any
}

// registry lists all passes in a fixed order (ordering matters only for
// help output; pipelines name passes explicitly).
var registry = []Info{
	{Name: "mem2reg", Description: "promote allocas to SSA registers", FunctionLocal: true,
		New: func() any { return &Mem2Reg{} }},
	{Name: "simplifycfg", Description: "merge blocks, fold constant branches, remove unreachable code", FunctionLocal: true,
		New: func() any { return &SimplifyCFG{} }},
	{Name: "instcombine", Description: "algebraic simplification and instruction-level constant folding", FunctionLocal: true,
		New: func() any { return &InstCombine{} }},
	{Name: "sccp", Description: "sparse conditional constant propagation", FunctionLocal: true,
		New: func() any { return &SCCP{} }},
	{Name: "gvn", Description: "dominator-scoped global value numbering and copy propagation", FunctionLocal: true,
		New: func() any { return &GVN{} }},
	{Name: "licm", Description: "loop-invariant code motion", FunctionLocal: true,
		New: func() any { return &LICM{} }},
	{Name: "unroll", Description: "full unrolling of small constant-trip loops", FunctionLocal: true,
		New: func() any { return &Unroll{} }},
	{Name: "strength", Description: "strength reduction of multiplications by constants", FunctionLocal: true,
		New: func() any { return &Strength{} }},
	{Name: "loadelim", Description: "block-local redundant load elimination and store-to-load forwarding", FunctionLocal: true,
		New: func() any { return &LoadElim{} }},
	{Name: "dse", Description: "dead store elimination on non-escaping allocas", FunctionLocal: true,
		New: func() any { return &DSE{} }},
	{Name: "dce", Description: "dead code elimination", FunctionLocal: true,
		New: func() any { return &DCE{} }},
	{Name: "inline", Description: "bottom-up function inlining", Module: true,
		New: func() any { return &Inline{} }},
	{Name: "globalopt", Description: "remove and constify unit-private globals", Module: true,
		New: func() any { return &GlobalOpt{} }},
	{Name: "deadfunc", Description: "remove uncalled unit-private functions", Module: true,
		New: func() any { return &DeadFunc{} }},
	{Name: "faulthook", Description: "fault-injection hook (no-op unless armed; adversity tests only)", FunctionLocal: true,
		New: func() any { return &FaultHook{} }},
}

// Registry returns descriptors for all passes.
func Registry() []Info {
	out := make([]Info, len(registry))
	copy(out, registry)
	return out
}

// Lookup finds a pass descriptor by name.
func Lookup(name string) (Info, bool) {
	for _, in := range registry {
		if in.Name == name {
			return in, true
		}
	}
	return Info{}, false
}

// NewFuncPass instantiates a function pass by name.
func NewFuncPass(name string) (FuncPass, error) {
	in, ok := Lookup(name)
	if !ok || in.Module {
		return nil, fmt.Errorf("passes: no function pass %q", name)
	}
	return in.New().(FuncPass), nil
}

// NewModulePass instantiates a module pass by name.
func NewModulePass(name string) (ModulePass, error) {
	in, ok := Lookup(name)
	if !ok || !in.Module {
		return nil, fmt.Errorf("passes: no module pass %q", name)
	}
	return in.New().(ModulePass), nil
}

// StandardPipeline is the default -O2-style pipeline: a mix of cleanup,
// scalar optimization, loop optimization, and interprocedural passes. The
// repetition of cleanup passes after enabling transformations mirrors real
// pipelines (and creates the dormancy the stateful compiler exploits: most
// of these instances find nothing to do on most functions).
var StandardPipeline = []string{
	"mem2reg",
	"simplifycfg",
	"instcombine",
	"sccp",
	"simplifycfg",
	"dce",
	"inline",
	"instcombine",
	"gvn",
	"simplifycfg",
	"licm",
	"unroll",
	"instcombine",
	"sccp",
	"strength",
	"gvn",
	"loadelim",
	"dse",
	"dce",
	"simplifycfg",
	"globalopt",
	"deadfunc",
}

// QuickPipeline is the -O1-style pipeline used by fast builds and tests.
var QuickPipeline = []string{
	"mem2reg",
	"simplifycfg",
	"instcombine",
	"sccp",
	"dce",
	"simplifycfg",
}

// RunPipeline applies the named passes to a module sequentially (function
// passes run function-by-function), reporting whether anything changed.
// This is the *stateless* execution path — exactly what a conventional
// compiler does; the stateful driver lives in internal/core.
func RunPipeline(m *ir.Module, pipeline []string) (bool, error) {
	changed := false
	for _, name := range pipeline {
		in, ok := Lookup(name)
		if !ok {
			return changed, fmt.Errorf("passes: unknown pass %q in pipeline", name)
		}
		if in.Module {
			p := in.New().(ModulePass)
			if p.RunModule(m) {
				changed = true
			}
		} else {
			p := in.New().(FuncPass)
			for _, f := range m.Funcs {
				if p.Run(f) {
					changed = true
				}
			}
		}
	}
	return changed, nil
}
