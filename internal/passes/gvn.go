package passes

// GVN performs dominator-scoped value numbering: walking the dominator tree
// with a scoped hash table of expressions, later computations of an
// available expression are replaced by the dominating one. Trapping div/rem
// and bounds-checked indexaddr are safe to merge because the dominating
// occurrence traps first on identical operands. Copies are propagated away
// in the same walk.

import (
	"statefulcc/internal/analysis"
	"statefulcc/internal/ir"
)

// GVN is the global value numbering pass.
type GVN struct{}

// Name implements FuncPass.
func (*GVN) Name() string { return "gvn" }

// exprKey identifies a computation up to operand identity; commutative ops
// are canonicalized by operand ID order.
type exprKey struct {
	op     ir.Op
	typ    ir.Type
	aux    int64
	sym    string
	a0, a1 int
}

// Run implements FuncPass.
func (*GVN) Run(f *ir.Func) bool {
	f.RemoveUnreachable()
	dom := analysis.BuildDomTree(f)
	table := make(map[exprKey]*ir.Value)
	// repl maps replaced values to their representatives, applied lazily so
	// chains resolve without repeated whole-function rewrites.
	repl := make(map[*ir.Value]*ir.Value)
	changed := false

	resolve := func(v *ir.Value) *ir.Value {
		for {
			nv, ok := repl[v]
			if !ok {
				return v
			}
			v = nv
		}
	}

	// constID interns constants so equal constants share a value number.
	constIDs := make(map[[2]int64]int)
	valueNum := func(v *ir.Value) int {
		v = resolve(v)
		if v.Op == ir.OpConst {
			k := [2]int64{v.Aux, int64(v.Type)}
			if id, ok := constIDs[k]; ok {
				return id
			}
			id := -(len(constIDs) + 2) // negative space for constants
			constIDs[k] = id
			return id
		}
		return v.ID
	}

	var visit func(b *ir.Block)
	visit = func(b *ir.Block) {
		var added []exprKey
		for _, v := range append([]*ir.Value(nil), b.Instrs...) {
			// Resolve operands through earlier replacements.
			for i, a := range v.Args {
				if r := resolve(a); r != a {
					v.Args[i] = r
					b.Touch()
					changed = true
				}
			}
			if v.Op == ir.OpCopy {
				repl[v] = v.Args[0]
				b.RemoveInstr(v)
				changed = true
				continue
			}
			if !numberable(v.Op) {
				continue
			}
			key := exprKey{op: v.Op, typ: v.Type, aux: v.Aux, sym: v.Sym}
			switch len(v.Args) {
			case 1:
				key.a0 = valueNum(v.Args[0])
				key.a1 = -1
			case 2:
				key.a0 = valueNum(v.Args[0])
				key.a1 = valueNum(v.Args[1])
				if v.Op.IsCommutative() && key.a1 < key.a0 {
					key.a0, key.a1 = key.a1, key.a0
				}
			}
			if rep, ok := table[key]; ok {
				repl[v] = rep
				b.RemoveInstr(v)
				changed = true
				continue
			}
			table[key] = v
			added = append(added, key)
		}
		// Phis and terminators also need operand resolution.
		for _, phi := range b.Phis {
			for i, a := range phi.Args {
				if r := resolve(a); r != a {
					phi.Args[i] = r
					b.Touch()
					changed = true
				}
			}
		}
		if b.Term != nil {
			for i, a := range b.Term.Args {
				if r := resolve(a); r != a {
					b.Term.Args[i] = r
					b.Touch()
					changed = true
				}
			}
		}
		for _, c := range dom.Children(b) {
			visit(c)
		}
		for _, k := range added {
			delete(table, k)
		}
	}
	if e := f.Entry(); e != nil {
		visit(e)
	}

	// A final sweep: phis in blocks dominated by nothing we visited after
	// their operands were replaced (back edges) still hold stale values.
	f.ForEachValue(func(v *ir.Value) {
		for i, a := range v.Args {
			if r := resolve(a); r != a {
				v.Args[i] = r
				if v.Block != nil {
					v.Block.Touch()
				}
				changed = true
			}
		}
	})
	return changed
}

// numberable reports whether the op can be value-numbered. Loads are not
// (memory may change); calls are not (effects); div/rem/indexaddr are —
// their traps are preserved by the dominating occurrence.
func numberable(op ir.Op) bool {
	if op.IsPure() {
		return op != ir.OpCopy // handled separately
	}
	switch op {
	case ir.OpDiv, ir.OpRem, ir.OpIndexAddr:
		return true
	}
	return false
}
