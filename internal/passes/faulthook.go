package passes

// FaultHook is a test-only fault-injection pass: a registered,
// fingerprint-skippable pass that behaves as a perfectly dormant no-op
// until armed, then misbehaves on demand — panicking, mutating the IR
// while reporting "no change" (the lie a nondeterministic or impure pass
// tells, which the soundness sentinel exists to catch), or blocking to
// hold a build in flight. The adversity suites use it to prove panic
// isolation, sentinel detection, quarantine engagement/lift, and graceful
// serve drains against a real pipeline rather than mocks.
//
// Arming is process-global (compilers instantiate fresh pass instances per
// worker, so per-instance state would never reach them) and synchronized:
// worker goroutines consult the armed config concurrently.

import (
	"sync"
	"time"

	"statefulcc/internal/ir"
)

// FaultMode selects what an armed FaultHook does when it fires.
type FaultMode int

// Fault modes.
const (
	// FaultNone leaves the hook dormant (same as disarmed).
	FaultNone FaultMode = iota
	// FaultPanic panics mid-pass, exercising the build system's recover()
	// boundary.
	FaultPanic
	// FaultMutate inserts a fresh dead constant into the function's entry
	// block but *reports no change* — simulating a nondeterministic/buggy
	// pass whose dormancy records lie. Each firing uses a different
	// constant, so repeated executions produce different IR.
	FaultMutate
	// FaultBlock parks the pass until ReleaseFaultHook (or a safety
	// timeout), holding a build in flight for drain/cancellation tests.
	FaultBlock
)

// FaultConfig describes one arming of the hook.
type FaultConfig struct {
	// Mode is what a firing does.
	Mode FaultMode
	// Func targets one function by exact name ("" fires on any function).
	Func string
	// Times bounds the number of firings before the hook auto-disarms
	// (0 = unlimited).
	Times int
}

var (
	faultMu    sync.Mutex
	faultCfg   FaultConfig
	faultFired int
	faultGate  chan struct{}
)

// ArmFaultHook arms the fault hook for subsequent compilations. Arming
// replaces any previous arming and resets the fired count.
func ArmFaultHook(cfg FaultConfig) {
	faultMu.Lock()
	defer faultMu.Unlock()
	faultCfg = cfg
	faultFired = 0
	if cfg.Mode == FaultBlock {
		faultGate = make(chan struct{})
	}
}

// DisarmFaultHook returns the hook to its dormant no-op behaviour and
// releases any blocked firings.
func DisarmFaultHook() {
	faultMu.Lock()
	defer faultMu.Unlock()
	faultCfg = FaultConfig{}
	if faultGate != nil {
		close(faultGate)
		faultGate = nil
	}
}

// ReleaseFaultHook unblocks FaultBlock firings without disarming.
func ReleaseFaultHook() {
	faultMu.Lock()
	defer faultMu.Unlock()
	if faultGate != nil {
		close(faultGate)
		faultGate = nil
	}
}

// FaultHookFired reports how many times the armed hook has fired.
func FaultHookFired() int {
	faultMu.Lock()
	defer faultMu.Unlock()
	return faultFired
}

// faultHookFire consults the armed config for one pass execution,
// consuming a firing when it matches.
func faultHookFire(fn string) (FaultConfig, int, chan struct{}, bool) {
	faultMu.Lock()
	defer faultMu.Unlock()
	cfg := faultCfg
	if cfg.Mode == FaultNone {
		return cfg, 0, nil, false
	}
	if cfg.Func != "" && cfg.Func != fn {
		return cfg, 0, nil, false
	}
	if cfg.Times > 0 && faultFired >= cfg.Times {
		return cfg, 0, nil, false
	}
	faultFired++
	return cfg, faultFired, faultGate, true
}

// FaultHook is the pass. Registered FunctionLocal so it is eligible for
// fingerprint-guarded skipping — required for the sentinel tests, and
// honest while disarmed (a true no-op).
type FaultHook struct{}

// Name returns the registry name.
func (*FaultHook) Name() string { return "faulthook" }

// Run fires the armed fault, if any. Disarmed (or non-matching) runs are
// dormant no-ops.
func (*FaultHook) Run(f *ir.Func) bool {
	cfg, seq, gate, fire := faultHookFire(f.Name)
	if !fire {
		return false
	}
	switch cfg.Mode {
	case FaultPanic:
		panic("faulthook: injected pass panic on " + f.Name)
	case FaultMutate:
		// A dead constant, unique per firing: the IR fingerprint changes but
		// the pass lies and reports dormant. Pipelines that place a dce
		// after this slot still produce byte-identical final output.
		if len(f.Blocks) > 0 {
			f.Blocks[0].AddInstr(f.ConstInt(1_000_003 + int64(seq)))
		}
		return false
	case FaultBlock:
		if gate != nil {
			select {
			case <-gate:
			case <-time.After(30 * time.Second): // safety: never wedge a suite
			}
		}
	}
	return false
}
