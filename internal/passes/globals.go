package passes

// Module-level global and function cleanup. MiniC treats names with a '_'
// prefix as unit-private (the analogue of C's static), which is what makes
// these passes sound without whole-program information: public symbols may
// be referenced by other units and are never touched.

import (
	"statefulcc/internal/ir"
)

// GlobalOpt removes unreferenced private globals and turns loads of
// never-stored private scalar globals into constants.
type GlobalOpt struct{}

// Name implements ModulePass.
func (*GlobalOpt) Name() string { return "globalopt" }

// globalUsage summarizes how a global is accessed within the module.
type globalUsage struct {
	addrTaken bool // any OpGlobalAddr refers to it
	stored    bool // a store reaches it (directly or via indexaddr)
	escaped   bool // its address flows somewhere we do not track
}

func analyzeGlobals(m *ir.Module) map[string]*globalUsage {
	usage := make(map[string]*globalUsage, len(m.Globals))
	for _, g := range m.Globals {
		usage[g.Name] = &globalUsage{}
	}
	for _, f := range m.Funcs {
		// addrs maps values derived from each global's address.
		addrs := make(map[*ir.Value]string)
		f.ForEachValue(func(v *ir.Value) {
			if v.Op == ir.OpGlobalAddr {
				if u := usage[v.Sym]; u != nil {
					u.addrTaken = true
					addrs[v] = v.Sym
				}
			}
		})
		// One propagation round suffices for indexaddr chains of depth 1;
		// iterate for safety.
		for {
			grew := false
			f.ForEachValue(func(v *ir.Value) {
				if v.Op == ir.OpIndexAddr {
					if name, ok := addrs[v.Args[0]]; ok {
						if _, seen := addrs[v]; !seen {
							addrs[v] = name
							grew = true
						}
					}
				}
			})
			if !grew {
				break
			}
		}
		f.ForEachValue(func(v *ir.Value) {
			for i, a := range v.Args {
				name, ok := addrs[a]
				if !ok {
					continue
				}
				u := usage[name]
				switch {
				case v.Op == ir.OpLoad && i == 0:
					// read
				case v.Op == ir.OpStore && i == 0:
					u.stored = true
				case v.Op == ir.OpIndexAddr && i == 0:
					// tracked derivation
				default:
					u.escaped = true
				}
			}
		})
	}
	return usage
}

// RunModule implements ModulePass.
func (*GlobalOpt) RunModule(m *ir.Module) bool {
	usage := analyzeGlobals(m)
	changed := false

	// Constify loads of never-stored private scalars.
	for _, g := range m.Globals {
		u := usage[g.Name]
		if !g.Private || g.Words != 1 || u.stored || u.escaped || !u.addrTaken {
			continue
		}
		for _, f := range m.Funcs {
			var deadLoads []*ir.Value
			f.ForEachValue(func(v *ir.Value) {
				if v.Op == ir.OpLoad && v.Args[0].Op == ir.OpGlobalAddr && v.Args[0].Sym == g.Name {
					deadLoads = append(deadLoads, v)
				}
			})
			for _, ld := range deadLoads {
				f.ReplaceAllUses(ld, makeConst(f, g.Init, ld.Type))
				ld.Block.RemoveInstr(ld)
				changed = true
			}
		}
	}

	// Remove private globals that are no longer referenced at all
	// (recompute after constification deleted loads; the GlobalAddr values
	// may linger until DCE, so check for remaining addresses directly).
	stillUsed := make(map[string]bool)
	for _, f := range m.Funcs {
		used := make(map[*ir.Value]bool)
		f.ForEachValue(func(w *ir.Value) {
			for _, a := range w.Args {
				used[a] = true
			}
		})
		f.ForEachValue(func(v *ir.Value) {
			if v.Op == ir.OpGlobalAddr && used[v] {
				stillUsed[v.Sym] = true
			}
		})
	}
	keep := m.Globals[:0]
	for _, g := range m.Globals {
		if g.Private && !stillUsed[g.Name] {
			changed = true
			// Also delete the now-dangling GlobalAddr instructions.
			for _, f := range m.Funcs {
				var dead []*ir.Value
				f.ForEachValue(func(v *ir.Value) {
					if v.Op == ir.OpGlobalAddr && v.Sym == g.Name {
						dead = append(dead, v)
					}
				})
				for _, v := range dead {
					v.Block.RemoveInstr(v)
				}
			}
			continue
		}
		keep = append(keep, g)
	}
	m.Globals = keep
	return changed
}

// DeadFunc removes unit-private functions that are never called within the
// module, iterating because removing one may orphan another.
type DeadFunc struct{}

// Name implements ModulePass.
func (*DeadFunc) Name() string { return "deadfunc" }

// RunModule implements ModulePass.
func (*DeadFunc) RunModule(m *ir.Module) bool {
	changed := false
	for {
		called := make(map[string]bool)
		for _, f := range m.Funcs {
			f.ForEachValue(func(v *ir.Value) {
				if v.Op == ir.OpCall {
					called[v.Sym] = true
				}
			})
		}
		removed := false
		for _, f := range append([]*ir.Func(nil), m.Funcs...) {
			if f.Private && !called[f.Name] && f.Name != "main" {
				m.RemoveFunc(f.Name)
				removed = true
				changed = true
			}
		}
		if !removed {
			return changed
		}
	}
}
