package passes

// SimplifyCFG canonicalizes control flow: unreachable-block removal,
// constant-branch folding, single-operand phi elimination, straight-line
// block merging, and empty-block threading. It iterates to a fixed point
// because each simplification tends to expose the next.

import (
	"statefulcc/internal/ir"
)

// SimplifyCFG is the control-flow cleanup pass.
type SimplifyCFG struct{}

// Name implements FuncPass.
func (*SimplifyCFG) Name() string { return "simplifycfg" }

// Run implements FuncPass.
func (*SimplifyCFG) Run(f *ir.Func) bool {
	changed := false
	for {
		iter := false
		if f.RemoveUnreachable() > 0 {
			iter = true
		}
		if foldConstBranches(f) {
			iter = true
		}
		if removeTrivialPhis(f) {
			iter = true
		}
		if mergeStraightLine(f) {
			iter = true
		}
		if threadEmptyBlocks(f) {
			iter = true
		}
		if !iter {
			return changed
		}
		changed = true
	}
}

// foldConstBranches rewrites branches on constant conditions into jumps,
// and branches whose two targets coincide (when the target has no phis)
// into jumps.
func foldConstBranches(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		t := b.Term
		if t == nil || t.Op != ir.OpBranch {
			continue
		}
		if c, ok := t.Args[0].IsConst(); ok {
			taken := t.Blocks[0]
			if c == 0 {
				taken = t.Blocks[1]
			}
			replaceTermWithJump(b, taken)
			changed = true
			continue
		}
		if t.Blocks[0] == t.Blocks[1] && len(t.Blocks[0].Phis) == 0 {
			replaceTermWithJump(b, t.Blocks[0])
			changed = true
		}
	}
	return changed
}

// replaceTermWithJump swaps b's terminator for an unconditional jump to
// target, preserving target's phi operands for b (SetTerm drops them while
// unhooking the old terminator's edges).
func replaceTermWithJump(b, target *ir.Block) {
	f := b.Func
	var phis []*ir.Value
	var vals []*ir.Value
	for _, phi := range target.Phis {
		phis = append(phis, phi)
		vals = append(vals, phi.Incoming(b))
	}
	j := f.NewValue(ir.OpJump, ir.TVoid)
	j.Blocks = []*ir.Block{target}
	b.SetTerm(j)
	for i, phi := range phis {
		if vals[i] != nil {
			phi.SetIncoming(b, vals[i])
		}
	}
}

// removeTrivialPhis replaces phis that have a single predecessor, or whose
// operands are all identical (ignoring self-references), with the operand.
func removeTrivialPhis(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		for _, phi := range append([]*ir.Value(nil), b.Phis...) {
			var uniq *ir.Value
			trivial := true
			for _, a := range phi.Args {
				if a == phi {
					continue
				}
				if sameValue(uniq, a) {
					continue
				}
				if uniq == nil {
					uniq = a
					continue
				}
				trivial = false
				break
			}
			if !trivial || uniq == nil {
				continue
			}
			f.ReplaceAllUses(phi, uniq)
			b.RemovePhi(phi)
			changed = true
		}
	}
	return changed
}

// sameValue treats equal constants as the same value even when they are
// distinct Value objects (irbuild creates constants per use site).
func sameValue(a, b *ir.Value) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a == b {
		return true
	}
	if a.Op == ir.OpConst && b.Op == ir.OpConst {
		return a.Aux == b.Aux && a.Type == b.Type
	}
	return false
}

// mergeStraightLine merges b into its unique predecessor when that
// predecessor jumps only to b: pred's jump is replaced by b's body and
// terminator.
func mergeStraightLine(f *ir.Func) bool {
	changed := false
	for _, b := range append([]*ir.Block(nil), f.Blocks...) {
		if b == f.Entry() || len(b.Preds) != 1 {
			continue
		}
		pred := b.Preds[0]
		if pred == b || pred.Term == nil || pred.Term.Op != ir.OpJump || len(pred.Succs()) != 1 {
			continue
		}
		// b has one pred, so its phis are single-operand; fold them first.
		for _, phi := range append([]*ir.Value(nil), b.Phis...) {
			f.ReplaceAllUses(phi, phi.Args[0])
			b.RemovePhi(phi)
		}
		// Move instructions into pred.
		for _, v := range b.Instrs {
			v.Block = pred
			pred.Instrs = append(pred.Instrs, v)
		}
		b.Instrs = nil
		// Transfer the terminator: retarget b's successors to treat pred
		// as the incoming block.
		term := b.Term
		for _, s := range term.Blocks {
			for i, p := range s.Preds {
				if p == b {
					s.Preds[i] = pred
				}
			}
			for _, phi := range s.Phis {
				for i, in := range phi.Blocks {
					if in == b {
						phi.Blocks[i] = pred
					}
				}
			}
			s.Touch()
		}
		b.Term = nil
		term.Block = pred
		// Detach pred's old jump and install b's terminator directly: the
		// successor pred-lists were already rewritten in place.
		pred.Term = term
		pred.TouchLayout()
		// Remove b from the function.
		for i, q := range f.Blocks {
			if q == b {
				f.Blocks = append(f.Blocks[:i], f.Blocks[i+1:]...)
				b.TouchLayout()
				break
			}
		}
		changed = true
	}
	return changed
}

// threadEmptyBlocks redirects edges that pass through a block containing
// only a jump (no phis, no instructions) straight to its destination.
func threadEmptyBlocks(f *ir.Func) bool {
	changed := false
	for _, b := range append([]*ir.Block(nil), f.Blocks...) {
		if b == f.Entry() || len(b.Instrs) > 0 || len(b.Phis) > 0 {
			continue
		}
		if b.Term == nil || b.Term.Op != ir.OpJump {
			continue
		}
		dest := b.Term.Blocks[0]
		if dest == b {
			continue // infinite self-loop; leave it
		}
		// Redirect every pred of b to dest, provided this does not create a
		// duplicate edge into a block with phis (which our phi representation
		// cannot express) and the pred is not already a dest predecessor
		// with a conflicting phi value.
		for _, p := range append([]*ir.Block(nil), b.Preds...) {
			if hasEdge(p, dest) && len(dest.Phis) > 0 {
				continue
			}
			// The value flowing from b into dest's phis must now flow from p.
			var phiVals []*ir.Value
			for _, phi := range dest.Phis {
				phiVals = append(phiVals, phi.Incoming(b))
			}
			if !p.RedirectEdge(b, dest) {
				continue
			}
			for i, phi := range dest.Phis {
				phi.SetIncoming(p, phiVals[i])
			}
			changed = true
		}
	}
	if changed {
		f.RemoveUnreachable()
	}
	return changed
}

func hasEdge(from, to *ir.Block) bool {
	for _, s := range from.Succs() {
		if s == to {
			return true
		}
	}
	return false
}
