package passes_test

// Native Go fuzz harnesses. Under plain `go test` only the seed corpus
// runs; `go test -fuzz=FuzzPipelineDifferential ./internal/passes` explores
// further. The invariant fuzzed is the project's central one: any program
// that compiles must behave identically with and without optimization.

import (
	"strings"
	"testing"

	"statefulcc/internal/analysis"
	"statefulcc/internal/ir"
	"statefulcc/internal/passes"
	"statefulcc/internal/testutil"
	"statefulcc/internal/vm"
)

func FuzzPipelineDifferential(f *testing.F) {
	for _, prog := range corpus {
		f.Add(prog.src)
	}
	f.Add(`func main() { }`)
	f.Add(`func main() int { var z int = 0; return 1 / z; }`)
	f.Add(`func f(x int) int { while true { if x > 0 { return x; } x++; } }
func main() int { return f(-3); }`)

	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			return
		}
		// Reject programs that do not compile — fuzzing targets the
		// optimizer, not the frontend's error paths (those have their own
		// fuzz tests).
		m, err := testutil.BuildModule("fuzz.mc", src)
		if err != nil {
			return
		}
		mainFn := m.FindFunc("main")
		if mainFn == nil || len(mainFn.Params) != 0 {
			return
		}
		if len(m.Externs) > 0 {
			return // cannot link without the other unit
		}

		run := func(tf testutil.Transform) (string, int64, error) {
			p, err := testutil.LinkProgram(map[string]string{"fuzz.mc": src}, tf)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			out, res, err := vm.RunCapture(p, vm.Config{MaxSteps: 2_000_000})
			if err != nil {
				return out, 0, err
			}
			return out, res.ExitValue, nil
		}

		baseOut, baseExit, baseErr := run(nil)
		optOut, optExit, optErr := run(func(m *ir.Module) error {
			if _, err := passes.RunPipeline(m, passes.StandardPipeline); err != nil {
				return err
			}
			if err := m.Verify(); err != nil {
				t.Fatalf("pipeline broke IR: %v", err)
			}
			for _, fn := range m.Funcs {
				if err := analysis.VerifySSA(fn); err != nil {
					t.Fatalf("pipeline broke SSA: %v", err)
				}
			}
			return nil
		})

		// A step-limit abort is indeterminate (optimization legitimately
		// changes instruction counts), so such runs are skipped.
		for _, e := range []error{baseErr, optErr} {
			if e != nil && strings.Contains(e.Error(), "step limit") {
				return
			}
		}
		// Otherwise both must trap or both succeed with identical
		// behaviour.
		if (baseErr == nil) != (optErr == nil) {
			t.Fatalf("trap behaviour diverged: base=%v opt=%v\nsrc:\n%s", baseErr, optErr, src)
		}
		if baseErr == nil && (baseOut != optOut || baseExit != optExit) {
			t.Fatalf("behaviour diverged:\nbase %q/%d\nopt  %q/%d\nsrc:\n%s",
				baseOut, baseExit, optOut, optExit, src)
		}
	})
}
