// Package irbuild lowers a type-checked MiniC AST into IR.
//
// The output is "memory form": every local variable and parameter is an
// Alloca accessed through Load/Store, and control flow is fully explicit.
// This matches how Clang emits LLVM IR; the mem2reg pass later promotes the
// allocas into SSA registers, which makes mem2reg a pass that always has
// work to do on freshly lowered code — exactly the cost structure the
// stateful pass manager's dormancy analysis is designed around.
package irbuild

import (
	"fmt"

	"statefulcc/internal/ast"
	"statefulcc/internal/ir"
	"statefulcc/internal/token"
	"statefulcc/internal/types"
)

// Build lowers one checked compilation unit into an IR module.
// The AST must have passed type checking without errors.
func Build(unit string, tree *ast.File, info *types.Info) (*ir.Module, error) {
	m := &ir.Module{Unit: unit}

	for _, d := range tree.Decls {
		switch d := d.(type) {
		case *ast.VarDecl:
			sym := info.Defs[d]
			if sym == nil {
				continue
			}
			g := &ir.Global{Name: sym.Name, Words: 1, Private: isPrivate(sym.Name)}
			if sym.Type.Kind == types.Array {
				g.Words = sym.Type.Len
			} else {
				g.Init = info.GlobalInits[sym]
			}
			m.Globals = append(m.Globals, g)
		case *ast.ExternDecl:
			m.Externs = append(m.Externs, d.Name)
		}
	}

	for _, fd := range info.Funcs {
		fn, err := buildFunc(m, fd, info)
		if err != nil {
			return nil, err
		}
		fn.Module = m
		m.Funcs = append(m.Funcs, fn)
	}
	if err := m.Verify(); err != nil {
		return nil, fmt.Errorf("irbuild produced invalid IR: %w", err)
	}
	return m, nil
}

func isPrivate(name string) bool { return len(name) > 0 && name[0] == '_' }

func irType(t *types.Type) ir.Type {
	switch t.Kind {
	case types.Int:
		return ir.TInt
	case types.Bool:
		return ir.TBool
	case types.Void:
		return ir.TVoid
	default:
		return ir.TInt
	}
}

type builder struct {
	m    *ir.Module
	f    *ir.Func
	info *types.Info
	cur  *ir.Block
	// vars maps local/param symbols to their allocas.
	vars map[*types.Symbol]*ir.Value
	// loop control targets, innermost last.
	breaks    []*ir.Block
	continues []*ir.Block
}

func buildFunc(m *ir.Module, fd *ast.FuncDecl, info *types.Info) (*ir.Func, error) {
	sym := info.Defs[fd]
	fsym, ok := sym, sym != nil
	if !ok {
		return nil, fmt.Errorf("function %s has no symbol", fd.Name)
	}
	var ptypes []ir.Type
	for _, p := range fsym.Sig.Params {
		ptypes = append(ptypes, irType(p))
	}
	f := ir.NewFunc(fd.Name, ptypes, irType(fsym.Sig.Result))

	b := &builder{m: m, f: f, info: info, vars: make(map[*types.Symbol]*ir.Value)}
	entry := f.NewBlock()
	b.cur = entry

	// Parameters are mutable in MiniC: spill each into an alloca.
	for i, p := range fd.Params {
		psym := info.Defs[p]
		slot := f.NewValue(ir.OpAlloca, ir.TPtr)
		slot.Aux = 1
		b.emit(slot)
		b.vars[psym] = slot
		st := f.NewValue(ir.OpStore, ir.TVoid, slot, f.Params[i])
		b.emit(st)
	}

	b.block(fd.Body)

	// Seal any fall-through: void functions return implicitly; non-void
	// fall-throughs are unreachable by the checker's analysis but must
	// still terminate the block.
	if b.cur != nil {
		ret := f.NewValue(ir.OpRet, ir.TVoid)
		if f.Result != ir.TVoid {
			ret.Args = []*ir.Value{b.constZero(f.Result)}
		}
		b.cur.SetTerm(ret)
	}
	f.RemoveUnreachable()
	return f, nil
}

func (b *builder) constZero(t ir.Type) *ir.Value {
	if t == ir.TBool {
		return b.f.ConstBool(false)
	}
	return b.f.ConstInt(0)
}

// emit appends an instruction to the current block. When the current block
// has been terminated (code after return/break), instructions land in a
// fresh unreachable block that RemoveUnreachable deletes later.
func (b *builder) emit(v *ir.Value) *ir.Value {
	if b.cur == nil {
		b.cur = b.f.NewBlock()
	}
	return b.cur.AddInstr(v)
}

// terminate installs t on the current block and clears it.
func (b *builder) terminate(t *ir.Value) {
	if b.cur == nil {
		b.cur = b.f.NewBlock()
	}
	b.cur.SetTerm(t)
	b.cur = nil
}

func (b *builder) jumpTo(target *ir.Block) {
	j := b.f.NewValue(ir.OpJump, ir.TVoid)
	j.Blocks = []*ir.Block{target}
	b.terminate(j)
}

func (b *builder) branchTo(cond *ir.Value, then, els *ir.Block) {
	br := b.f.NewValue(ir.OpBranch, ir.TVoid, cond)
	br.Blocks = []*ir.Block{then, els}
	b.terminate(br)
}

// --- statements ---------------------------------------------------------------

func (b *builder) block(blk *ast.BlockStmt) {
	for _, s := range blk.Stmts {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.block(s)
	case *ast.DeclStmt:
		b.localDecl(s.Decl)
	case *ast.AssignStmt:
		b.assign(s)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.WhileStmt:
		b.whileStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.ReturnStmt:
		ret := b.f.NewValue(ir.OpRet, ir.TVoid)
		if s.Value != nil {
			ret.Args = []*ir.Value{b.expr(s.Value)}
		}
		b.terminate(ret)
	case *ast.BreakStmt:
		b.jumpTo(b.breaks[len(b.breaks)-1])
	case *ast.ContinueStmt:
		b.jumpTo(b.continues[len(b.continues)-1])
	case *ast.ExprStmt:
		b.expr(s.X)
	}
}

func (b *builder) localDecl(d *ast.VarDecl) {
	sym := b.info.Defs[d]
	size := int64(1)
	if sym.Type.Kind == types.Array {
		size = sym.Type.Len
	}
	slot := b.f.NewValue(ir.OpAlloca, ir.TPtr)
	slot.Aux = size
	b.emit(slot)
	b.vars[sym] = slot
	if d.Init != nil {
		v := b.expr(d.Init)
		b.emit(b.f.NewValue(ir.OpStore, ir.TVoid, slot, v))
	} else if sym.Type.Kind != types.Array {
		// Scalars are zero-initialized, matching global semantics and
		// keeping the VM deterministic.
		b.emit(b.f.NewValue(ir.OpStore, ir.TVoid, slot, b.constZero(irType(sym.Type))))
	}
	// Arrays: the VM zeroes fresh frame storage, so no per-element stores.
}

// lvalueAddr computes the address of an assignable location.
func (b *builder) lvalueAddr(e ast.Expr) *ir.Value {
	switch e := e.(type) {
	case *ast.IdentExpr:
		sym := b.info.Uses[e]
		return b.symbolAddr(sym)
	case *ast.IndexExpr:
		base := b.lvalueAddr(e.X)
		idx := b.expr(e.Index)
		arrLen := b.arrayLen(e.X)
		gep := b.f.NewValue(ir.OpIndexAddr, ir.TPtr, base, idx)
		gep.Aux = arrLen
		return b.emit(gep)
	default:
		panic(fmt.Sprintf("irbuild: not an lvalue: %T", e))
	}
}

func (b *builder) arrayLen(e ast.Expr) int64 {
	if t := b.info.TypeOf(e); t.Kind == types.Array {
		return t.Len
	}
	return 1
}

func (b *builder) symbolAddr(sym *types.Symbol) *ir.Value {
	switch sym.Kind {
	case types.SymGlobal:
		g := b.f.NewValue(ir.OpGlobalAddr, ir.TPtr)
		g.Sym = sym.Name
		return b.emit(g)
	default:
		slot := b.vars[sym]
		if slot == nil {
			panic(fmt.Sprintf("irbuild: no storage for %s %s", sym.Kind, sym.Name))
		}
		return slot
	}
}

func (b *builder) assign(s *ast.AssignStmt) {
	addr := b.lvalueAddr(s.Lhs)
	var val *ir.Value
	if binOp, ok := s.Op.CompoundAssignOp(); ok {
		old := b.emit(b.f.NewValue(ir.OpLoad, irType(b.info.TypeOf(s.Lhs)), addr))
		rhs := b.expr(s.Rhs)
		val = b.emit(b.f.NewValue(intOp(binOp), ir.TInt, old, rhs))
	} else {
		val = b.expr(s.Rhs)
	}
	b.emit(b.f.NewValue(ir.OpStore, ir.TVoid, addr, val))
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	thenB := b.f.NewBlock()
	done := b.f.NewBlock()
	elseB := done
	if s.Else != nil {
		elseB = b.f.NewBlock()
	}
	b.cond(s.Cond, thenB, elseB)

	b.cur = thenB
	b.block(s.Then)
	if b.cur != nil {
		b.jumpTo(done)
	}
	if s.Else != nil {
		b.cur = elseB
		b.stmt(s.Else)
		if b.cur != nil {
			b.jumpTo(done)
		}
	}
	b.cur = done
}

func (b *builder) whileStmt(s *ast.WhileStmt) {
	head := b.f.NewBlock()
	body := b.f.NewBlock()
	done := b.f.NewBlock()
	b.jumpTo(head)

	b.cur = head
	b.cond(s.Cond, body, done)

	b.breaks = append(b.breaks, done)
	b.continues = append(b.continues, head)
	b.cur = body
	b.block(s.Body)
	if b.cur != nil {
		b.jumpTo(head)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]

	b.cur = done
}

func (b *builder) forStmt(s *ast.ForStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.f.NewBlock()
	body := b.f.NewBlock()
	post := b.f.NewBlock()
	done := b.f.NewBlock()
	b.jumpTo(head)

	b.cur = head
	if s.Cond != nil {
		b.cond(s.Cond, body, done)
	} else {
		b.jumpTo(body)
	}

	b.breaks = append(b.breaks, done)
	b.continues = append(b.continues, post)
	b.cur = body
	b.block(s.Body)
	if b.cur != nil {
		b.jumpTo(post)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]

	b.cur = post
	if s.Post != nil {
		b.stmt(s.Post)
	}
	b.jumpTo(head)

	b.cur = done
}

// cond lowers a boolean expression as control flow into then/els,
// implementing short-circuit evaluation without materializing the value.
func (b *builder) cond(e ast.Expr, then, els *ir.Block) {
	switch e := e.(type) {
	case *ast.ParenExpr:
		b.cond(e.X, then, els)
		return
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			b.cond(e.X, els, then)
			return
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			mid := b.f.NewBlock()
			b.cond(e.X, mid, els)
			b.cur = mid
			b.cond(e.Y, then, els)
			return
		case token.LOR:
			mid := b.f.NewBlock()
			b.cond(e.X, then, mid)
			b.cur = mid
			b.cond(e.Y, then, els)
			return
		}
	case *ast.BoolLit:
		if e.Value {
			b.jumpTo(then)
		} else {
			b.jumpTo(els)
		}
		return
	}
	v := b.expr(e)
	b.branchTo(v, then, els)
}

// --- expressions ---------------------------------------------------------------

func intOp(k token.Kind) ir.Op {
	switch k {
	case token.ADD:
		return ir.OpAdd
	case token.SUB:
		return ir.OpSub
	case token.MUL:
		return ir.OpMul
	case token.QUO:
		return ir.OpDiv
	case token.REM:
		return ir.OpRem
	case token.AND:
		return ir.OpAnd
	case token.OR:
		return ir.OpOr
	case token.XOR:
		return ir.OpXor
	case token.SHL:
		return ir.OpShl
	case token.SHR:
		return ir.OpShr
	}
	panic("irbuild: not an int op: " + k.String())
}

func cmpOp(k token.Kind) ir.Op {
	switch k {
	case token.EQL:
		return ir.OpEq
	case token.NEQ:
		return ir.OpNe
	case token.LSS:
		return ir.OpLt
	case token.LEQ:
		return ir.OpLe
	case token.GTR:
		return ir.OpGt
	case token.GEQ:
		return ir.OpGe
	}
	panic("irbuild: not a comparison: " + k.String())
}

func (b *builder) expr(e ast.Expr) *ir.Value {
	// Frontend constant folding: anything the checker proved constant
	// lowers to a single literal.
	if v, ok := b.info.ConstVals[e]; ok {
		return b.f.ConstInt(v)
	}
	switch e := e.(type) {
	case *ast.IntLit:
		return b.f.ConstInt(e.Value)
	case *ast.BoolLit:
		return b.f.ConstBool(e.Value)
	case *ast.ParenExpr:
		return b.expr(e.X)
	case *ast.IdentExpr:
		sym := b.info.Uses[e]
		if sym.Kind == types.SymConst {
			return b.f.ConstInt(sym.Const)
		}
		addr := b.symbolAddr(sym)
		return b.emit(b.f.NewValue(ir.OpLoad, irType(b.info.TypeOf(e)), addr))
	case *ast.IndexExpr:
		addr := b.lvalueAddr(e)
		return b.emit(b.f.NewValue(ir.OpLoad, ir.TInt, addr))
	case *ast.UnaryExpr:
		return b.unary(e)
	case *ast.BinaryExpr:
		return b.binary(e)
	case *ast.CallExpr:
		return b.call(e)
	default:
		panic(fmt.Sprintf("irbuild: unexpected expression %T", e))
	}
}

func (b *builder) unary(e *ast.UnaryExpr) *ir.Value {
	x := b.expr(e.X)
	switch e.Op {
	case token.SUB:
		return b.emit(b.f.NewValue(ir.OpNeg, ir.TInt, x))
	case token.XOR:
		return b.emit(b.f.NewValue(ir.OpCompl, ir.TInt, x))
	case token.NOT:
		return b.emit(b.f.NewValue(ir.OpNot, ir.TBool, x))
	}
	panic("irbuild: unexpected unary " + e.Op.String())
}

func (b *builder) binary(e *ast.BinaryExpr) *ir.Value {
	switch e.Op {
	case token.LAND, token.LOR:
		return b.shortCircuit(e)
	}
	x := b.expr(e.X)
	y := b.expr(e.Y)
	switch e.Op {
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		return b.emit(b.f.NewValue(cmpOp(e.Op), ir.TBool, x, y))
	default:
		return b.emit(b.f.NewValue(intOp(e.Op), ir.TInt, x, y))
	}
}

// shortCircuit materializes a && / || value via control flow and a phi.
func (b *builder) shortCircuit(e *ast.BinaryExpr) *ir.Value {
	rhs := b.f.NewBlock()
	join := b.f.NewBlock()

	x := b.expr(e.X)
	fromLhs := b.cur
	if b.cur == nil {
		fromLhs = b.f.NewBlock()
		b.cur = fromLhs
	}
	if e.Op == token.LAND {
		b.branchTo(x, rhs, join)
	} else {
		b.branchTo(x, join, rhs)
	}

	b.cur = rhs
	y := b.expr(e.Y)
	fromRhs := b.cur
	b.jumpTo(join)

	b.cur = join
	phi := b.f.NewValue(ir.OpPhi, ir.TBool)
	short := b.f.ConstBool(e.Op == token.LOR)
	phi.Args = []*ir.Value{short, y}
	phi.Blocks = []*ir.Block{fromLhs, fromRhs}
	join.AddPhi(phi)
	return phi
}

func (b *builder) call(e *ast.CallExpr) *ir.Value {
	sym := b.info.Uses[e.Callee]
	if sym.Kind == types.SymBuiltin {
		return b.builtinCall(e, sym)
	}
	var args []*ir.Value
	for _, a := range e.Args {
		args = append(args, b.expr(a))
	}
	call := b.f.NewValue(ir.OpCall, irType(sym.Sig.Result), args...)
	call.Sym = sym.Name
	return b.emit(call)
}

func (b *builder) builtinCall(e *ast.CallExpr, sym *types.Symbol) *ir.Value {
	switch sym.Name {
	case types.BuiltinPrint:
		var label string
		var args []*ir.Value
		for i, a := range e.Args {
			if s, ok := a.(*ast.StringLit); ok && i == 0 {
				label = s.Value
				continue
			}
			args = append(args, b.expr(a))
		}
		p := b.f.NewValue(ir.OpPrint, ir.TVoid, args...)
		p.StrAux = label
		return b.emit(p)
	case types.BuiltinAssert:
		cond := b.expr(e.Args[0])
		a := b.f.NewValue(ir.OpAssert, ir.TVoid, cond)
		if len(e.Args) == 2 {
			if s, ok := e.Args[1].(*ast.StringLit); ok {
				a.StrAux = s.Value
			}
		}
		return b.emit(a)
	}
	panic("irbuild: unknown builtin " + sym.Name)
}
