package irbuild_test

import (
	"strings"
	"testing"

	"statefulcc/internal/analysis"
	"statefulcc/internal/ir"
	"statefulcc/internal/testutil"
)

func build(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := testutil.BuildModule("u.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func fn(t *testing.T, m *ir.Module, name string) *ir.Func {
	t.Helper()
	f := m.FindFunc(name)
	if f == nil {
		t.Fatalf("no function %s", name)
	}
	return f
}

func count(f *ir.Func, op ir.Op) int {
	n := 0
	f.ForEachValue(func(v *ir.Value) {
		if v.Op == op {
			n++
		}
	})
	return n
}

func TestLoweringIsMemoryForm(t *testing.T) {
	m := build(t, `func f(a int, b int) int { var x int = a + b; return x * 2; }`)
	f := fn(t, m, "f")
	// Params spilled + one local = 3 allocas; loads/stores present.
	if n := count(f, ir.OpAlloca); n != 3 {
		t.Errorf("allocas = %d, want 3 (two params + one local)\n%s", n, f)
	}
	if count(f, ir.OpLoad) == 0 || count(f, ir.OpStore) == 0 {
		t.Errorf("expected load/store memory form\n%s", f)
	}
}

func TestLoweredIRAlwaysVerifies(t *testing.T) {
	srcs := []string{
		`func f() { }`,
		`func f(x int) int { return x; }`,
		`func f(x int) int { if x > 0 { return 1; } else { return 2; } }`,
		`func f(n int) int { var s int = 0; while n > 0 { s += n; n--; } return s; }`,
		`func f(n int) int {
            var s int = 0;
            for var i int = 0; i < n; i++ {
                if i == 3 { continue; }
                if i == 7 { break; }
                s += i;
            }
            return s;
        }`,
		`func f(a bool, b bool, c bool) bool { return a && (b || !c) || c && a; }`,
		`func f() int { var t [5]int; t[0] = 1; t[4] = t[0] + 1; return t[4]; }`,
		`func f(x int) int { while true { if x > 0 { return x; } x++; } }`,
		`func f() { return; print(1); }`, // unreachable tail
	}
	for _, src := range srcs {
		full := src
		if !strings.Contains(src, "func main") {
			full += "\nfunc main() { }"
		}
		m := build(t, full)
		if err := m.Verify(); err != nil {
			t.Errorf("%q: %v", src, err)
		}
		for _, f := range m.Funcs {
			if err := analysis.VerifySSA(f); err != nil {
				t.Errorf("%q: %v", src, err)
			}
		}
	}
}

func TestShortCircuitCreatesControlFlow(t *testing.T) {
	m := build(t, `func f(a bool, b bool) bool { return a && b; }`)
	f := fn(t, m, "f")
	if count(f, ir.OpPhi) == 0 {
		t.Errorf("&& in value position should lower to a phi\n%s", f)
	}
	if len(f.Blocks) < 3 {
		t.Errorf("&& should create control flow, got %d blocks", len(f.Blocks))
	}
}

func TestCondShortCircuitAvoidsPhi(t *testing.T) {
	// In condition position, && lowers as pure control flow — no phi.
	m := build(t, `func f(a bool, b bool) int { if a && b { return 1; } return 0; }`)
	f := fn(t, m, "f")
	if n := count(f, ir.OpPhi); n != 0 {
		t.Errorf("condition && lowered with %d phis, want 0\n%s", n, f)
	}
}

func TestConstFoldingInFrontend(t *testing.T) {
	m := build(t, `const K = 6; func f() int { return K * 7; }`)
	f := fn(t, m, "f")
	// The checker folds K*7 → 42; no multiply survives lowering.
	if count(f, ir.OpMul) != 0 {
		t.Errorf("constant expression not folded\n%s", f)
	}
	ret := f.Blocks[0].Term
	if c, ok := ret.Args[0].IsConst(); !ok || c != 42 {
		t.Errorf("return is not const 42\n%s", f)
	}
}

func TestGlobalsAndExterns(t *testing.T) {
	m := build(t, `
var pub int = 3;
var _priv [4]int;
extern func e(x int) int;
func main() { pub = e(pub) + _priv[0]; }`)
	if len(m.Globals) != 2 {
		t.Fatalf("globals = %d", len(m.Globals))
	}
	var pub, priv *ir.Global
	for _, g := range m.Globals {
		switch g.Name {
		case "pub":
			pub = g
		case "_priv":
			priv = g
		}
	}
	if pub == nil || pub.Words != 1 || pub.Init != 3 || pub.Private {
		t.Errorf("pub global wrong: %+v", pub)
	}
	if priv == nil || priv.Words != 4 || !priv.Private {
		t.Errorf("_priv global wrong: %+v", priv)
	}
	if len(m.Externs) != 1 || m.Externs[0] != "e" {
		t.Errorf("externs = %v", m.Externs)
	}
}

func TestBoundsMetadataOnIndexAddr(t *testing.T) {
	m := build(t, `func f(i int) int { var a [9]int; return a[i]; }`)
	f := fn(t, m, "f")
	found := false
	f.ForEachValue(func(v *ir.Value) {
		if v.Op == ir.OpIndexAddr {
			found = true
			if v.Aux != 9 {
				t.Errorf("indexaddr bound = %d, want 9", v.Aux)
			}
		}
	})
	if !found {
		t.Fatalf("no indexaddr\n%s", f)
	}
}

func TestPrintAssertLowering(t *testing.T) {
	m := build(t, `func main() { print("label", 1, true); print(); assert(true, "msg"); }`)
	f := fn(t, m, "main")
	var prints, asserts int
	f.ForEachValue(func(v *ir.Value) {
		switch v.Op {
		case ir.OpPrint:
			prints++
			if prints == 1 {
				if v.StrAux != "label" || len(v.Args) != 2 {
					t.Errorf("print lowering wrong: %s", v.LongString())
				}
			}
		case ir.OpAssert:
			asserts++
			if v.StrAux != "msg" {
				t.Errorf("assert message lost: %s", v.LongString())
			}
		}
	})
	if prints != 2 || asserts != 1 {
		t.Errorf("prints=%d asserts=%d", prints, asserts)
	}
}

func TestCompoundAssignAndIncDec(t *testing.T) {
	m := build(t, `
var a [3]int;
func main() {
    var x int = 1;
    x += 2;
    x *= 3;
    a[1] -= x;
    x++;
}`)
	f := fn(t, m, "main")
	// Compound ops load-modify-store; count the arithmetic.
	if count(f, ir.OpAdd) < 2 || count(f, ir.OpMul) < 1 || count(f, ir.OpSub) < 1 {
		t.Errorf("compound assignment arithmetic missing\n%s", f)
	}
}

func TestWhileTrueNonVoidFallthrough(t *testing.T) {
	// The checker requires returns on all paths; while-true bodies satisfy
	// it only via internal returns. The lowered fall-through block must
	// still terminate (dead ret).
	m := build(t, `func f(x int) int { while true { if x > 3 { return x; } x++; } }
func main() { }`)
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestScalarZeroInit(t *testing.T) {
	m := build(t, `func f() int { var x int; return x; }`)
	f := fn(t, m, "f")
	// A zero store must exist for the uninitialized local.
	found := false
	f.ForEachValue(func(v *ir.Value) {
		if v.Op == ir.OpStore {
			if c, ok := v.Args[1].IsConst(); ok && c == 0 {
				found = true
			}
		}
	})
	if !found {
		t.Errorf("no zero initialization store\n%s", f)
	}
}
