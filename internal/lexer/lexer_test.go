package lexer

import (
	"strings"
	"testing"

	"statefulcc/internal/source"
	"statefulcc/internal/token"
)

func lex(t *testing.T, src string) ([]Token, *source.ErrorList) {
	t.Helper()
	var errs source.ErrorList
	l := New(source.NewFile("test.mc", []byte(src)), &errs)
	return l.Tokenize(), &errs
}

func kinds(toks []Token) []token.Kind {
	out := make([]token.Kind, 0, len(toks))
	for _, t := range toks {
		out = append(out, t.Kind)
	}
	return out
}

func TestBasicTokens(t *testing.T) {
	toks, errs := lex(t, "func main() { return 42; }")
	if errs.HasErrors() {
		t.Fatalf("unexpected errors: %v", errs)
	}
	want := []token.Kind{
		token.FUNC, token.IDENT, token.LPAREN, token.RPAREN, token.LBRACE,
		token.RETURN, token.INT, token.SEMICOLON, token.RBRACE, token.EOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("token count = %d, want %d: %v", len(got), len(want), toks)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestOperators(t *testing.T) {
	cases := map[string]token.Kind{
		"+": token.ADD, "-": token.SUB, "*": token.MUL, "/": token.QUO, "%": token.REM,
		"==": token.EQL, "!=": token.NEQ, "<": token.LSS, "<=": token.LEQ,
		">": token.GTR, ">=": token.GEQ, "&&": token.LAND, "||": token.LOR,
		"!": token.NOT, "<<": token.SHL, ">>": token.SHR, "&": token.AND,
		"|": token.OR, "^": token.XOR, "=": token.ASSIGN, "+=": token.ADDASSIGN,
		"-=": token.SUBASSIGN, "*=": token.MULASSIGN, "/=": token.QUOASSIGN,
		"%=": token.REMASSIGN, "++": token.INC, "--": token.DEC,
	}
	for src, want := range cases {
		toks, errs := lex(t, src)
		if errs.HasErrors() {
			t.Errorf("%q: unexpected error %v", src, errs)
			continue
		}
		if toks[0].Kind != want {
			t.Errorf("%q lexed as %v, want %v", src, toks[0].Kind, want)
		}
		if len(toks) != 2 {
			t.Errorf("%q produced %d tokens, want 2", src, len(toks))
		}
	}
}

func TestNumbers(t *testing.T) {
	toks, errs := lex(t, "0 123 0x1F 0xdead")
	if errs.HasErrors() {
		t.Fatalf("unexpected errors: %v", errs)
	}
	wantLits := []string{"0", "123", "0x1F", "0xdead"}
	for i, w := range wantLits {
		if toks[i].Kind != token.INT || toks[i].Lit != w {
			t.Errorf("token %d = %v, want INT(%s)", i, toks[i], w)
		}
	}
}

func TestIdentVsKeyword(t *testing.T) {
	toks, _ := lex(t, "whilex while forloop for iff if")
	want := []token.Kind{token.IDENT, token.WHILE, token.IDENT, token.FOR, token.IDENT, token.IF, token.EOF}
	for i, w := range want {
		if toks[i].Kind != w {
			t.Errorf("token %d = %v, want %v", i, toks[i].Kind, w)
		}
	}
}

func TestComments(t *testing.T) {
	toks, errs := lex(t, "a // line comment\nb /* block\ncomment */ c")
	if errs.HasErrors() {
		t.Fatalf("unexpected errors: %v", errs)
	}
	var idents []string
	for _, tk := range toks {
		if tk.Kind == token.IDENT {
			idents = append(idents, tk.Lit)
		}
	}
	if strings.Join(idents, " ") != "a b c" {
		t.Errorf("idents = %v, want [a b c]", idents)
	}
}

func TestKeepComments(t *testing.T) {
	var errs source.ErrorList
	l := New(source.NewFile("t.mc", []byte("x // hi")), &errs, KeepComments())
	toks := l.Tokenize()
	found := false
	for _, tk := range toks {
		if tk.Kind == token.COMMENT {
			found = true
		}
	}
	if !found {
		t.Error("KeepComments did not emit a COMMENT token")
	}
}

func TestStringLiteral(t *testing.T) {
	toks, errs := lex(t, `"hello" "a\nb" "q\"q"`)
	if errs.HasErrors() {
		t.Fatalf("unexpected errors: %v", errs)
	}
	want := []string{"hello", "a\nb", `q"q`}
	for i, w := range want {
		if toks[i].Kind != token.STRING || toks[i].Lit != w {
			t.Errorf("token %d = %q, want %q", i, toks[i].Lit, w)
		}
	}
}

func TestErrors(t *testing.T) {
	cases := []string{
		"@",          // illegal char
		`"unclosed`,  // unterminated string
		"/* forever", // unterminated comment
		"123abc",     // ident starting with digit
		"0x",         // malformed hex
	}
	for _, src := range cases {
		_, errs := lex(t, src)
		if !errs.HasErrors() {
			t.Errorf("%q: expected a lex error", src)
		}
	}
}

func TestPositions(t *testing.T) {
	toks, _ := lex(t, "a\n  bb\n")
	f := source.NewFile("t.mc", []byte("a\n  bb\n"))
	posA := f.Position(toks[0].Pos)
	posB := f.Position(toks[1].Pos)
	if posA.Line != 1 || posA.Column != 1 {
		t.Errorf("a at %v, want 1:1", posA)
	}
	if posB.Line != 2 || posB.Column != 3 {
		t.Errorf("bb at %v, want 2:3", posB)
	}
}

func TestEOFIsSticky(t *testing.T) {
	var errs source.ErrorList
	l := New(source.NewFile("t.mc", []byte("x")), &errs)
	l.Next() // x
	for i := 0; i < 3; i++ {
		if tk := l.Next(); tk.Kind != token.EOF {
			t.Fatalf("Next after EOF = %v, want EOF", tk)
		}
	}
}
