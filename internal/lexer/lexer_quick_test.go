package lexer

// Property-based lexer tests (testing/quick): tokenization must terminate,
// cover the input, and round-trip operator/keyword spellings.

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"statefulcc/internal/source"
	"statefulcc/internal/token"
)

// TestLexTerminatesAndCovers: for arbitrary printable input, tokenization
// terminates with EOF and every token's position is within the file.
func TestLexTerminatesAndCovers(t *testing.T) {
	prop := func(raw []byte) bool {
		// Restrict to printable ASCII + whitespace so positions are byte
		// positions (MiniC is ASCII-only by definition).
		buf := make([]byte, len(raw))
		for i, b := range raw {
			buf[i] = 32 + b%95
			if b%13 == 0 {
				buf[i] = '\n'
			}
		}
		var errs source.ErrorList
		l := New(source.NewFile("q.mc", buf), &errs)
		toks := l.Tokenize()
		if len(toks) == 0 || toks[len(toks)-1].Kind != token.EOF {
			return false
		}
		prev := source.Pos(-1)
		for _, tk := range toks[:len(toks)-1] {
			if int(tk.Pos) < 0 || int(tk.Pos) > len(buf) {
				return false
			}
			if tk.Pos < prev {
				return false // positions must be non-decreasing
			}
			prev = tk.Pos
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestSpellingRoundTrip: joining random operator/keyword spellings with
// spaces lexes back to exactly those tokens.
func TestSpellingRoundTrip(t *testing.T) {
	kinds := []token.Kind{
		token.ADD, token.SUB, token.MUL, token.QUO, token.REM, token.AND,
		token.OR, token.XOR, token.SHL, token.SHR, token.LAND, token.LOR,
		token.NOT, token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR,
		token.GEQ, token.ASSIGN, token.ADDASSIGN, token.SUBASSIGN,
		token.MULASSIGN, token.QUOASSIGN, token.REMASSIGN, token.INC,
		token.DEC, token.LPAREN, token.RPAREN, token.LBRACE, token.RBRACE,
		token.LBRACK, token.RBRACK, token.COMMA, token.SEMICOLON,
		token.FUNC, token.VAR, token.CONST, token.IF, token.ELSE,
		token.WHILE, token.FOR, token.RETURN, token.BREAK, token.CONTINUE,
		token.TRUE, token.FALSE, token.EXTERN, token.INTTYPE, token.BOOLTYPE,
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(30)
		var want []token.Kind
		var parts []string
		for i := 0; i < n; i++ {
			k := kinds[rng.Intn(len(kinds))]
			want = append(want, k)
			parts = append(parts, k.String())
		}
		var errs source.ErrorList
		l := New(source.NewFile("q.mc", []byte(strings.Join(parts, " "))), &errs)
		toks := l.Tokenize()
		if errs.HasErrors() {
			t.Fatalf("trial %d: %v", trial, errs)
		}
		var got []token.Kind
		for _, tk := range toks[:len(toks)-1] {
			got = append(got, tk.Kind)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: %v != %v (input %q)", trial, got, want, strings.Join(parts, " "))
		}
	}
}

// TestIntLiteralRoundTrip: non-negative integers survive print → lex.
func TestIntLiteralRoundTrip(t *testing.T) {
	prop := func(v uint32) bool {
		src := []byte(strings.TrimSpace(" " + itoa(int64(v)) + " "))
		var errs source.ErrorList
		l := New(source.NewFile("q.mc", src), &errs)
		toks := l.Tokenize()
		return !errs.HasErrors() && len(toks) == 2 && toks[0].Kind == token.INT &&
			toks[0].Lit == string(src)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var b [24]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
