// Package lexer turns MiniC source bytes into a token stream.
//
// The scanner is a straightforward hand-written state machine over the raw
// byte slice: MiniC source is ASCII-only, so no UTF-8 decoding is needed.
// Comments use // and /* */; the latter may not nest.
package lexer

import (
	"statefulcc/internal/source"
	"statefulcc/internal/token"
)

// Token is one lexical token with its location and raw text.
type Token struct {
	Kind token.Kind
	Pos  source.Pos
	Lit  string // raw text for IDENT, INT, STRING, COMMENT and ILLEGAL
}

// String renders the token for test failures and debugging.
func (t Token) String() string {
	if t.Lit != "" && (t.Kind.IsLiteral() || t.Kind == token.ILLEGAL || t.Kind == token.COMMENT) {
		return t.Kind.String() + "(" + t.Lit + ")"
	}
	return t.Kind.String()
}

// Lexer scans one source file.
type Lexer struct {
	file   *source.File
	src    []byte
	offset int
	errs   *source.ErrorList

	// keepComments controls whether COMMENT tokens are emitted or skipped;
	// the parser never wants them, but tools may.
	keepComments bool
}

// Option configures a Lexer.
type Option func(*Lexer)

// KeepComments makes the lexer emit COMMENT tokens instead of skipping them.
func KeepComments() Option {
	return func(l *Lexer) { l.keepComments = true }
}

// New returns a lexer over the file, reporting problems to errs.
func New(file *source.File, errs *source.ErrorList, opts ...Option) *Lexer {
	l := &Lexer{file: file, src: file.Content, errs: errs}
	for _, o := range opts {
		o(l)
	}
	return l
}

// File returns the underlying source file.
func (l *Lexer) File() *source.File { return l.file }

func (l *Lexer) errorf(off int, format string, args ...any) {
	if l.errs != nil {
		l.errs.Errorf(l.file.Position(source.Pos(off)), format, args...)
	}
}

func (l *Lexer) peek() byte {
	if l.offset < len(l.src) {
		return l.src[l.offset]
	}
	return 0
}

func (l *Lexer) peekAt(n int) byte {
	if l.offset+n < len(l.src) {
		return l.src[l.offset+n]
	}
	return 0
}

func isLetter(b byte) bool {
	return 'a' <= b && b <= 'z' || 'A' <= b && b <= 'Z' || b == '_'
}

func isDigit(b byte) bool { return '0' <= b && b <= '9' }

func isSpace(b byte) bool { return b == ' ' || b == '\t' || b == '\r' || b == '\n' }

// Next returns the next token. After EOF, it keeps returning EOF.
func (l *Lexer) Next() Token {
	for {
		l.skipSpace()
		start := l.offset
		if l.offset >= len(l.src) {
			return Token{Kind: token.EOF, Pos: source.Pos(start)}
		}
		b := l.src[l.offset]

		switch {
		case isLetter(b):
			return l.scanIdent(start)
		case isDigit(b):
			return l.scanNumber(start)
		case b == '"':
			return l.scanString(start)
		case b == '/' && (l.peekAt(1) == '/' || l.peekAt(1) == '*'):
			tok, ok := l.scanComment(start)
			if ok && l.keepComments {
				return tok
			}
			continue // comment skipped; rescan
		default:
			return l.scanOperator(start)
		}
	}
}

// Tokenize scans the whole file into a slice, always ending with EOF.
func (l *Lexer) Tokenize() []Token {
	var toks []Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks
		}
	}
}

func (l *Lexer) skipSpace() {
	for l.offset < len(l.src) && isSpace(l.src[l.offset]) {
		l.offset++
	}
}

func (l *Lexer) scanIdent(start int) Token {
	for l.offset < len(l.src) && (isLetter(l.src[l.offset]) || isDigit(l.src[l.offset])) {
		l.offset++
	}
	lit := string(l.src[start:l.offset])
	kind := token.Lookup(lit)
	if kind != token.IDENT {
		return Token{Kind: kind, Pos: source.Pos(start)}
	}
	return Token{Kind: token.IDENT, Pos: source.Pos(start), Lit: lit}
}

func (l *Lexer) scanNumber(start int) Token {
	// Hex literal?
	if l.peek() == '0' && (l.peekAt(1) == 'x' || l.peekAt(1) == 'X') {
		l.offset += 2
		n := 0
		for l.offset < len(l.src) && isHexDigit(l.src[l.offset]) {
			l.offset++
			n++
		}
		if n == 0 {
			l.errorf(start, "malformed hex literal")
			return Token{Kind: token.ILLEGAL, Pos: source.Pos(start), Lit: string(l.src[start:l.offset])}
		}
		return Token{Kind: token.INT, Pos: source.Pos(start), Lit: string(l.src[start:l.offset])}
	}
	for l.offset < len(l.src) && isDigit(l.src[l.offset]) {
		l.offset++
	}
	if l.offset < len(l.src) && isLetter(l.src[l.offset]) {
		// 123abc is a single illegal token rather than INT IDENT.
		for l.offset < len(l.src) && (isLetter(l.src[l.offset]) || isDigit(l.src[l.offset])) {
			l.offset++
		}
		l.errorf(start, "identifier may not start with a digit")
		return Token{Kind: token.ILLEGAL, Pos: source.Pos(start), Lit: string(l.src[start:l.offset])}
	}
	return Token{Kind: token.INT, Pos: source.Pos(start), Lit: string(l.src[start:l.offset])}
}

func isHexDigit(b byte) bool {
	return isDigit(b) || 'a' <= b && b <= 'f' || 'A' <= b && b <= 'F'
}

func (l *Lexer) scanString(start int) Token {
	l.offset++ // opening quote
	for l.offset < len(l.src) {
		b := l.src[l.offset]
		if b == '"' {
			l.offset++
			// Lit excludes the quotes; MiniC strings have no escapes beyond \n and \\.
			return Token{Kind: token.STRING, Pos: source.Pos(start), Lit: unescape(string(l.src[start+1 : l.offset-1]))}
		}
		if b == '\\' && l.offset+1 < len(l.src) {
			l.offset++ // skip escaped char
		}
		if b == '\n' {
			break
		}
		l.offset++
	}
	l.errorf(start, "unterminated string literal")
	return Token{Kind: token.ILLEGAL, Pos: source.Pos(start), Lit: string(l.src[start:l.offset])}
}

func unescape(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
			switch s[i] {
			case 'n':
				out = append(out, '\n')
			case 't':
				out = append(out, '\t')
			case '\\':
				out = append(out, '\\')
			case '"':
				out = append(out, '"')
			default:
				out = append(out, '\\', s[i])
			}
			continue
		}
		out = append(out, s[i])
	}
	return string(out)
}

func (l *Lexer) scanComment(start int) (Token, bool) {
	if l.peekAt(1) == '/' {
		for l.offset < len(l.src) && l.src[l.offset] != '\n' {
			l.offset++
		}
		return Token{Kind: token.COMMENT, Pos: source.Pos(start), Lit: string(l.src[start:l.offset])}, true
	}
	// Block comment.
	l.offset += 2
	for l.offset+1 < len(l.src) {
		if l.src[l.offset] == '*' && l.src[l.offset+1] == '/' {
			l.offset += 2
			return Token{Kind: token.COMMENT, Pos: source.Pos(start), Lit: string(l.src[start:l.offset])}, true
		}
		l.offset++
	}
	l.offset = len(l.src)
	l.errorf(start, "unterminated block comment")
	return Token{Kind: token.ILLEGAL, Pos: source.Pos(start), Lit: string(l.src[start:l.offset])}, false
}

// twoCharOps maps a leading byte to its possible two-character operators.
type twoChar struct {
	second byte
	kind   token.Kind
}

var twoCharOps = map[byte][]twoChar{
	'+': {{'+', token.INC}, {'=', token.ADDASSIGN}},
	'-': {{'-', token.DEC}, {'=', token.SUBASSIGN}},
	'*': {{'=', token.MULASSIGN}},
	'/': {{'=', token.QUOASSIGN}},
	'%': {{'=', token.REMASSIGN}},
	'=': {{'=', token.EQL}},
	'!': {{'=', token.NEQ}},
	'<': {{'=', token.LEQ}, {'<', token.SHL}},
	'>': {{'=', token.GEQ}, {'>', token.SHR}},
	'&': {{'&', token.LAND}},
	'|': {{'|', token.LOR}},
}

var oneCharOps = map[byte]token.Kind{
	'+': token.ADD, '-': token.SUB, '*': token.MUL, '/': token.QUO, '%': token.REM,
	'&': token.AND, '|': token.OR, '^': token.XOR,
	'=': token.ASSIGN, '!': token.NOT, '<': token.LSS, '>': token.GTR,
	'(': token.LPAREN, ')': token.RPAREN, '{': token.LBRACE, '}': token.RBRACE,
	'[': token.LBRACK, ']': token.RBRACK, ',': token.COMMA, ';': token.SEMICOLON,
	':': token.COLON,
}

func (l *Lexer) scanOperator(start int) Token {
	b := l.src[l.offset]
	if cands, ok := twoCharOps[b]; ok {
		next := l.peekAt(1)
		for _, c := range cands {
			if next == c.second {
				l.offset += 2
				return Token{Kind: c.kind, Pos: source.Pos(start)}
			}
		}
	}
	if k, ok := oneCharOps[b]; ok {
		l.offset++
		return Token{Kind: k, Pos: source.Pos(start)}
	}
	l.offset++
	l.errorf(start, "illegal character %q", string(b))
	return Token{Kind: token.ILLEGAL, Pos: source.Pos(start), Lit: string(b)}
}
