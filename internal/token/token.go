// Package token defines the lexical token kinds of the MiniC language and
// the operator-precedence table shared by the lexer and parser.
package token

import "fmt"

// Kind identifies a lexical token class.
type Kind int

// Token kinds. The blocks are delimited by the *_beg/*_end markers so that
// classification predicates stay O(1).
const (
	ILLEGAL Kind = iota
	EOF
	COMMENT

	literalBeg
	IDENT  // foo
	INT    // 123
	STRING // "abc" (only in print statements / asserts messages)
	literalEnd

	operatorBeg
	ADD // +
	SUB // -
	MUL // *
	QUO // /
	REM // %

	AND // &
	OR  // |
	XOR // ^
	SHL // <<
	SHR // >>

	LAND // &&
	LOR  // ||
	NOT  // !

	EQL // ==
	NEQ // !=
	LSS // <
	LEQ // <=
	GTR // >
	GEQ // >=

	ASSIGN    // =
	ADDASSIGN // +=
	SUBASSIGN // -=
	MULASSIGN // *=
	QUOASSIGN // /=
	REMASSIGN // %=
	INC       // ++
	DEC       // --
	LPAREN    // (
	RPAREN    // )
	LBRACE    // {
	RBRACE    // }
	LBRACK    // [
	RBRACK    // ]
	COMMA     // ,
	SEMICOLON // ;
	COLON     // :
	operatorEnd

	keywordBeg
	FUNC
	VAR
	CONST
	IF
	ELSE
	WHILE
	FOR
	RETURN
	BREAK
	CONTINUE
	TRUE
	FALSE
	EXTERN
	INTTYPE  // int
	BOOLTYPE // bool
	keywordEnd
)

var names = map[Kind]string{
	ILLEGAL:   "ILLEGAL",
	EOF:       "EOF",
	COMMENT:   "COMMENT",
	IDENT:     "IDENT",
	INT:       "INT",
	STRING:    "STRING",
	ADD:       "+",
	SUB:       "-",
	MUL:       "*",
	QUO:       "/",
	REM:       "%",
	AND:       "&",
	OR:        "|",
	XOR:       "^",
	SHL:       "<<",
	SHR:       ">>",
	LAND:      "&&",
	LOR:       "||",
	NOT:       "!",
	EQL:       "==",
	NEQ:       "!=",
	LSS:       "<",
	LEQ:       "<=",
	GTR:       ">",
	GEQ:       ">=",
	ASSIGN:    "=",
	ADDASSIGN: "+=",
	SUBASSIGN: "-=",
	MULASSIGN: "*=",
	QUOASSIGN: "/=",
	REMASSIGN: "%=",
	INC:       "++",
	DEC:       "--",
	LPAREN:    "(",
	RPAREN:    ")",
	LBRACE:    "{",
	RBRACE:    "}",
	LBRACK:    "[",
	RBRACK:    "]",
	COMMA:     ",",
	SEMICOLON: ";",
	COLON:     ":",
	FUNC:      "func",
	VAR:       "var",
	CONST:     "const",
	IF:        "if",
	ELSE:      "else",
	WHILE:     "while",
	FOR:       "for",
	RETURN:    "return",
	BREAK:     "break",
	CONTINUE:  "continue",
	TRUE:      "true",
	FALSE:     "false",
	EXTERN:    "extern",
	INTTYPE:   "int",
	BOOLTYPE:  "bool",
}

// String returns the token's source spelling for operators and keywords,
// and a symbolic name for the other classes.
func (k Kind) String() string {
	if s, ok := names[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// IsLiteral reports whether k names a literal class.
func (k Kind) IsLiteral() bool { return literalBeg < k && k < literalEnd }

// IsOperator reports whether k is an operator or delimiter.
func (k Kind) IsOperator() bool { return operatorBeg < k && k < operatorEnd }

// IsKeyword reports whether k is a reserved word.
func (k Kind) IsKeyword() bool { return keywordBeg < k && k < keywordEnd }

// Keywords maps reserved spellings to their kinds.
var Keywords = func() map[string]Kind {
	m := make(map[string]Kind)
	for k := keywordBeg + 1; k < keywordEnd; k++ {
		m[names[k]] = k
	}
	return m
}()

// Lookup returns the keyword kind for ident, or IDENT.
func Lookup(ident string) Kind {
	if k, ok := Keywords[ident]; ok {
		return k
	}
	return IDENT
}

// Precedence levels for binary operators, following C conventions.
// Higher binds tighter. Non-binary tokens return 0.
func (k Kind) Precedence() int {
	switch k {
	case LOR:
		return 1
	case LAND:
		return 2
	case OR:
		return 3
	case XOR:
		return 4
	case AND:
		return 5
	case EQL, NEQ:
		return 6
	case LSS, LEQ, GTR, GEQ:
		return 7
	case SHL, SHR:
		return 8
	case ADD, SUB:
		return 9
	case MUL, QUO, REM:
		return 10
	}
	return 0
}

// MaxPrecedence is the highest binary precedence level.
const MaxPrecedence = 10

// CompoundAssignOp returns the underlying binary operator of a compound
// assignment token (+= → +), and ok=false for plain "=" or non-assignments.
func (k Kind) CompoundAssignOp() (Kind, bool) {
	switch k {
	case ADDASSIGN:
		return ADD, true
	case SUBASSIGN:
		return SUB, true
	case MULASSIGN:
		return MUL, true
	case QUOASSIGN:
		return QUO, true
	case REMASSIGN:
		return REM, true
	}
	return ILLEGAL, false
}

// IsAssignOp reports whether k is "=" or any compound assignment.
func (k Kind) IsAssignOp() bool {
	if k == ASSIGN {
		return true
	}
	_, ok := k.CompoundAssignOp()
	return ok
}
