package token

import "testing"

func TestClassification(t *testing.T) {
	if !IDENT.IsLiteral() || !INT.IsLiteral() || !STRING.IsLiteral() {
		t.Error("literal classification broken")
	}
	if ADD.IsLiteral() || FUNC.IsLiteral() {
		t.Error("non-literals classified as literal")
	}
	if !ADD.IsOperator() || !SEMICOLON.IsOperator() {
		t.Error("operator classification broken")
	}
	if !FUNC.IsKeyword() || !BOOLTYPE.IsKeyword() || IDENT.IsKeyword() {
		t.Error("keyword classification broken")
	}
}

func TestLookup(t *testing.T) {
	if Lookup("while") != WHILE || Lookup("extern") != EXTERN {
		t.Error("keyword lookup broken")
	}
	if Lookup("whileish") != IDENT || Lookup("") != IDENT {
		t.Error("non-keywords should map to IDENT")
	}
	// Every keyword spelling must round-trip.
	for spelling, kind := range Keywords {
		if Lookup(spelling) != kind {
			t.Errorf("keyword %q lookup = %v", spelling, kind)
		}
		if kind.String() != spelling {
			t.Errorf("keyword %v prints %q, want %q", kind, kind.String(), spelling)
		}
	}
}

func TestPrecedenceTotalOrder(t *testing.T) {
	// Binary operators must have positive precedence ≤ MaxPrecedence;
	// everything else zero.
	binaries := []Kind{LOR, LAND, OR, XOR, AND, EQL, NEQ, LSS, LEQ, GTR, GEQ, SHL, SHR, ADD, SUB, MUL, QUO, REM}
	for _, k := range binaries {
		p := k.Precedence()
		if p < 1 || p > MaxPrecedence {
			t.Errorf("%v precedence %d out of range", k, p)
		}
	}
	for _, k := range []Kind{ASSIGN, NOT, LPAREN, IDENT, FUNC, EOF} {
		if k.Precedence() != 0 {
			t.Errorf("%v should have no precedence", k)
		}
	}
	if MUL.Precedence() <= ADD.Precedence() || ADD.Precedence() <= EQL.Precedence() {
		t.Error("precedence ordering wrong")
	}
	if LAND.Precedence() <= LOR.Precedence() {
		t.Error("&& must bind tighter than ||")
	}
}

func TestCompoundAssign(t *testing.T) {
	wants := map[Kind]Kind{
		ADDASSIGN: ADD, SUBASSIGN: SUB, MULASSIGN: MUL, QUOASSIGN: QUO, REMASSIGN: REM,
	}
	for compound, base := range wants {
		got, ok := compound.CompoundAssignOp()
		if !ok || got != base {
			t.Errorf("%v compound base = %v/%t", compound, got, ok)
		}
		if !compound.IsAssignOp() {
			t.Errorf("%v not recognized as assignment", compound)
		}
	}
	if _, ok := ASSIGN.CompoundAssignOp(); ok {
		t.Error("plain = has no compound base")
	}
	if !ASSIGN.IsAssignOp() || ADD.IsAssignOp() {
		t.Error("IsAssignOp broken")
	}
}

func TestStringFallback(t *testing.T) {
	if s := Kind(250).String(); s == "" {
		t.Error("unknown kind prints empty")
	}
	if ADD.String() != "+" || SHR.String() != ">>" || RETURN.String() != "return" {
		t.Error("spellings wrong")
	}
}
