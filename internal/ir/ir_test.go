package ir_test

import (
	"strings"
	"testing"

	"statefulcc/internal/ir"
)

// buildDiamond constructs:
//
//	entry → (then | else) → join(phi) → ret
func buildDiamond(t *testing.T) (*ir.Func, map[string]*ir.Block) {
	t.Helper()
	f := ir.NewFunc("diamond", []ir.Type{ir.TInt}, ir.TInt)
	entry := f.NewBlock()
	thenB := f.NewBlock()
	elseB := f.NewBlock()
	join := f.NewBlock()

	cond := entry.AddInstr(f.NewValue(ir.OpGt, ir.TBool, f.Params[0], f.ConstInt(0)))
	br := f.NewValue(ir.OpBranch, ir.TVoid, cond)
	br.Blocks = []*ir.Block{thenB, elseB}
	entry.SetTerm(br)

	v1 := thenB.AddInstr(f.NewValue(ir.OpAdd, ir.TInt, f.Params[0], f.ConstInt(1)))
	j1 := f.NewValue(ir.OpJump, ir.TVoid)
	j1.Blocks = []*ir.Block{join}
	thenB.SetTerm(j1)

	v2 := elseB.AddInstr(f.NewValue(ir.OpSub, ir.TInt, f.Params[0], f.ConstInt(1)))
	j2 := f.NewValue(ir.OpJump, ir.TVoid)
	j2.Blocks = []*ir.Block{join}
	elseB.SetTerm(j2)

	phi := f.NewValue(ir.OpPhi, ir.TInt)
	phi.Args = []*ir.Value{v1, v2}
	phi.Blocks = []*ir.Block{thenB, elseB}
	join.AddPhi(phi)
	ret := f.NewValue(ir.OpRet, ir.TVoid, phi)
	join.SetTerm(ret)

	return f, map[string]*ir.Block{"entry": entry, "then": thenB, "else": elseB, "join": join}
}

func TestDiamondVerifies(t *testing.T) {
	f, _ := buildDiamond(t)
	if err := f.Verify(); err != nil {
		t.Fatalf("diamond does not verify: %v\n%s", err, f)
	}
}

func TestVerifyCatchesBrokenIR(t *testing.T) {
	// Missing terminator.
	f := ir.NewFunc("bad", nil, ir.TVoid)
	f.NewBlock()
	if err := f.Verify(); err == nil || !strings.Contains(err.Error(), "no terminator") {
		t.Errorf("missing terminator not caught: %v", err)
	}

	// Phi operand count mismatch.
	f2, blocks := buildDiamond(t)
	phi := blocks["join"].Phis[0]
	phi.Args = phi.Args[:1]
	phi.Blocks = phi.Blocks[:1]
	if err := f2.Verify(); err == nil {
		t.Error("phi/pred mismatch not caught")
	}

	// Branch with non-bool condition.
	f3, blocks3 := buildDiamond(t)
	blocks3["entry"].Term.Args[0] = f3.ConstInt(1)
	if err := f3.Verify(); err == nil || !strings.Contains(err.Error(), "bool") {
		t.Errorf("non-bool branch condition not caught: %v", err)
	}

	// Pred list out of sync.
	f4, blocks4 := buildDiamond(t)
	blocks4["join"].Preds = blocks4["join"].Preds[:1]
	if err := f4.Verify(); err == nil {
		t.Error("pred desync not caught")
	}
}

func TestSetTermMaintainsPreds(t *testing.T) {
	f := ir.NewFunc("f", nil, ir.TVoid)
	a := f.NewBlock()
	b := f.NewBlock()
	c := f.NewBlock()

	j := f.NewValue(ir.OpJump, ir.TVoid)
	j.Blocks = []*ir.Block{b}
	a.SetTerm(j)
	if len(b.Preds) != 1 || b.Preds[0] != a {
		t.Fatalf("preds after SetTerm: %v", b.Preds)
	}
	// Replace the terminator: b loses the pred, c gains it.
	j2 := f.NewValue(ir.OpJump, ir.TVoid)
	j2.Blocks = []*ir.Block{c}
	a.SetTerm(j2)
	if len(b.Preds) != 0 || len(c.Preds) != 1 {
		t.Errorf("pred maintenance broken: b=%v c=%v", b.Preds, c.Preds)
	}
}

func TestRedirectEdgeFixesPhis(t *testing.T) {
	f, blocks := buildDiamond(t)
	join, thenB := blocks["join"], blocks["then"]
	newTarget := f.NewBlock()
	r := f.NewValue(ir.OpRet, ir.TVoid, f.ConstInt(0))
	newTarget.SetTerm(r)

	phi := join.Phis[0]
	if phi.Incoming(thenB) == nil {
		t.Fatal("phi missing then operand before redirect")
	}
	if !thenB.RedirectEdge(join, newTarget) {
		t.Fatal("redirect failed")
	}
	if phi.Incoming(thenB) != nil {
		t.Error("phi operand for redirected pred not dropped")
	}
	if len(newTarget.Preds) != 1 || newTarget.Preds[0] != thenB {
		t.Errorf("new target preds: %v", newTarget.Preds)
	}
}

func TestSplitEdge(t *testing.T) {
	f, blocks := buildDiamond(t)
	entry, thenB, join := blocks["entry"], blocks["then"], blocks["join"]
	phi := join.Phis[0]
	before := phi.Incoming(thenB)

	mid := entry.SplitEdge(thenB)
	if err := f.Verify(); err != nil {
		t.Fatalf("split edge broke IR: %v\n%s", err, f)
	}
	if len(mid.Preds) != 1 || mid.Preds[0] != entry {
		t.Errorf("mid preds: %v", mid.Preds)
	}
	if got := entry.Succs()[0]; got != mid {
		t.Errorf("entry's first successor is %s, want mid", got.Name())
	}
	if phi.Incoming(thenB) != before {
		t.Error("unrelated phi operand disturbed")
	}
}

func TestSplitCriticalEdgeWithPhis(t *testing.T) {
	// entry branches to (join, other); join has another pred — a critical
	// edge whose phi operands must be retargeted.
	f := ir.NewFunc("crit", []ir.Type{ir.TBool}, ir.TInt)
	entry := f.NewBlock()
	other := f.NewBlock()
	join := f.NewBlock()

	br := f.NewValue(ir.OpBranch, ir.TVoid, f.Params[0])
	br.Blocks = []*ir.Block{join, other}
	entry.SetTerm(br)

	j := f.NewValue(ir.OpJump, ir.TVoid)
	j.Blocks = []*ir.Block{join}
	other.SetTerm(j)

	phi := f.NewValue(ir.OpPhi, ir.TInt)
	phi.Args = []*ir.Value{f.ConstInt(1), f.ConstInt(2)}
	phi.Blocks = []*ir.Block{entry, other}
	join.AddPhi(phi)
	ret := f.NewValue(ir.OpRet, ir.TVoid, phi)
	join.SetTerm(ret)

	if !entry.HasCriticalEdge(join) {
		t.Fatal("edge should be critical")
	}
	mid := entry.SplitEdge(join)
	if err := f.Verify(); err != nil {
		t.Fatalf("critical edge split broke IR: %v\n%s", err, f)
	}
	if in := phi.Incoming(mid); in == nil || !in.IsConstValue(1) {
		t.Errorf("phi operand not retargeted to mid: %v", in)
	}
}

func TestReplaceAllUses(t *testing.T) {
	f, blocks := buildDiamond(t)
	phi := blocks["join"].Phis[0]
	repl := f.ConstInt(99)
	f.ReplaceAllUses(phi, repl)
	if blocks["join"].Term.Args[0] != repl {
		t.Error("use not replaced")
	}
}

func TestPostorderAndRPO(t *testing.T) {
	f, blocks := buildDiamond(t)
	rpo := f.ReversePostorder()
	if rpo[0] != blocks["entry"] {
		t.Errorf("RPO must start at entry, got %s", rpo[0].Name())
	}
	if rpo[len(rpo)-1] != blocks["join"] {
		t.Errorf("RPO must end at join, got %s", rpo[len(rpo)-1].Name())
	}
	po := f.Postorder()
	if po[len(po)-1] != blocks["entry"] {
		t.Error("postorder must end at entry")
	}
}

func TestRemoveUnreachable(t *testing.T) {
	f, blocks := buildDiamond(t)
	// Add an unreachable block that jumps into join, polluting its phis.
	dead := f.NewBlock()
	j := f.NewValue(ir.OpJump, ir.TVoid)
	j.Blocks = []*ir.Block{blocks["join"]}
	dead.SetTerm(j)
	blocks["join"].Phis[0].SetIncoming(dead, f.ConstInt(7))

	if n := f.RemoveUnreachable(); n != 1 {
		t.Fatalf("removed %d blocks, want 1", n)
	}
	if err := f.Verify(); err != nil {
		t.Fatalf("IR invalid after unreachable removal: %v\n%s", err, f)
	}
	if blocks["join"].Phis[0].Incoming(dead) != nil {
		t.Error("phi operand for dead pred not dropped")
	}
}

func TestCloneFuncIndependence(t *testing.T) {
	f, blocks := buildDiamond(t)
	g := ir.CloneFunc(f)
	if err := g.Verify(); err != nil {
		t.Fatalf("clone invalid: %v\n%s", err, g)
	}
	// Mutating the clone must not touch the original.
	g.Blocks[0].Instrs[0].Aux = 12345
	gphi := g.Blocks[3].Phis[0]
	gphi.Args[0] = g.ConstInt(777)
	if blocks["join"].Phis[0].Args[0].IsConstValue(777) {
		t.Error("clone shares values with original")
	}
	if len(g.Blocks) != len(f.Blocks) {
		t.Errorf("clone block count %d, want %d", len(g.Blocks), len(f.Blocks))
	}
}

func TestCloneModule(t *testing.T) {
	f, _ := buildDiamond(t)
	m := &ir.Module{Unit: "u.mc", Funcs: []*ir.Func{f}}
	f.Module = m
	m.Globals = append(m.Globals, &ir.Global{Name: "g", Words: 1, Init: 3})
	m.Externs = append(m.Externs, "ext")

	c := ir.CloneModule(m)
	if err := c.Verify(); err != nil {
		t.Fatalf("module clone invalid: %v", err)
	}
	c.Globals[0].Init = 99
	if m.Globals[0].Init != 3 {
		t.Error("clone shares globals")
	}
	if c.Funcs[0].Module != c {
		t.Error("clone function does not point at cloned module")
	}
}

func TestEvalBinarySemantics(t *testing.T) {
	cases := []struct {
		op   ir.Op
		x, y int64
		want int64
		ok   bool
	}{
		{ir.OpAdd, 2, 3, 5, true},
		{ir.OpSub, 2, 3, -1, true},
		{ir.OpMul, -4, 3, -12, true},
		{ir.OpDiv, 7, 2, 3, true},
		{ir.OpDiv, -7, 2, -3, true}, // round toward zero
		{ir.OpDiv, 1, 0, 0, false},
		{ir.OpRem, -7, 2, -1, true},
		{ir.OpRem, 1, 0, 0, false},
		{ir.OpShl, 1, 65, 2, true},   // masked shift
		{ir.OpShr, -16, 2, -4, true}, // arithmetic shift
		{ir.OpLt, 1, 2, 1, true},
		{ir.OpGe, 1, 2, 0, true},
		{ir.OpEq, 5, 5, 1, true},
	}
	for _, c := range cases {
		got, ok := ir.EvalBinary(c.op, c.x, c.y)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("EvalBinary(%v, %d, %d) = (%d, %t), want (%d, %t)", c.op, c.x, c.y, got, ok, c.want, c.ok)
		}
	}
	if v, ok := ir.EvalUnary(ir.OpNeg, 5); !ok || v != -5 {
		t.Errorf("neg: %d %t", v, ok)
	}
	if v, ok := ir.EvalUnary(ir.OpCompl, 0); !ok || v != -1 {
		t.Errorf("compl: %d %t", v, ok)
	}
	if v, ok := ir.EvalUnary(ir.OpNot, 0); !ok || v != 1 {
		t.Errorf("not: %d %t", v, ok)
	}
}

func TestOpPredicates(t *testing.T) {
	if !ir.OpAdd.IsCommutative() || ir.OpSub.IsCommutative() {
		t.Error("commutativity misclassified")
	}
	if !ir.OpBranch.IsTerminator() || ir.OpAdd.IsTerminator() {
		t.Error("terminators misclassified")
	}
	if !ir.OpStore.HasSideEffects() || ir.OpAdd.HasSideEffects() {
		t.Error("side effects misclassified")
	}
	if !ir.OpDiv.HasSideEffects() {
		t.Error("div can trap; it has effects")
	}
	if inv, ok := ir.OpLt.InvertCompare(); !ok || inv != ir.OpGe {
		t.Error("InvertCompare(Lt) wrong")
	}
	if sw, ok := ir.OpLe.SwapCompare(); !ok || sw != ir.OpGe {
		t.Error("SwapCompare(Le) wrong")
	}
	if _, ok := ir.OpAdd.InvertCompare(); ok {
		t.Error("InvertCompare on non-compare")
	}
}

func TestPrinterStable(t *testing.T) {
	f, _ := buildDiamond(t)
	s1, s2 := f.String(), f.String()
	if s1 != s2 {
		t.Error("printer nondeterministic")
	}
	for _, want := range []string{"func diamond", "branch", "phi", "ret", "preds:"} {
		if !strings.Contains(s1, want) {
			t.Errorf("printed IR missing %q:\n%s", want, s1)
		}
	}
}

func TestModuleHelpers(t *testing.T) {
	f, _ := buildDiamond(t)
	m := &ir.Module{Unit: "u.mc", Funcs: []*ir.Func{f}}
	if m.FindFunc("diamond") != f || m.FindFunc("nope") != nil {
		t.Error("FindFunc broken")
	}
	m.Globals = append(m.Globals, &ir.Global{Name: "g", Words: 2})
	if m.FindGlobal("g") == nil || m.FindGlobal("x") != nil {
		t.Error("FindGlobal broken")
	}
	if !m.RemoveFunc("diamond") || m.RemoveFunc("diamond") {
		t.Error("RemoveFunc broken")
	}
}

func TestNumUses(t *testing.T) {
	f, blocks := buildDiamond(t)
	uses := f.NumUses()
	phi := blocks["join"].Phis[0]
	if uses[phi.ID] != 1 {
		t.Errorf("phi uses = %d, want 1 (the ret)", uses[phi.ID])
	}
}
