package ir

// This file provides the mutation utilities passes are built from. They
// keep the CFG invariants (pred lists, phi operands) intact so that passes
// can compose without re-deriving structure.

// ForEachValue visits every instruction value in the function: phis, body
// instructions, and terminators, in layout order.
func (f *Func) ForEachValue(fn func(*Value)) {
	for _, b := range f.Blocks {
		for _, v := range b.Phis {
			fn(v)
		}
		for _, v := range b.Instrs {
			fn(v)
		}
		if b.Term != nil {
			fn(b.Term)
		}
	}
}

// ReplaceAllUses rewrites every operand equal to old into new, across the
// whole function. It does not remove old's defining instruction.
func (f *Func) ReplaceAllUses(old, new *Value) {
	f.ForEachValue(func(v *Value) {
		for i, a := range v.Args {
			if a == old {
				v.Args[i] = new
				if v.Block != nil {
					v.Block.Touch()
				}
			}
		}
	})
}

// RemoveInstr removes the instruction from its block (by identity). Phis
// and terminators are not handled here.
func (b *Block) RemoveInstr(v *Value) bool {
	for i, w := range b.Instrs {
		if w == v {
			b.Instrs = append(b.Instrs[:i], b.Instrs[i+1:]...)
			v.Block = nil
			b.TouchLayout()
			return true
		}
	}
	return false
}

// RemovePhi removes a phi from its block (by identity).
func (b *Block) RemovePhi(v *Value) bool {
	for i, w := range b.Phis {
		if w == v {
			b.Phis = append(b.Phis[:i], b.Phis[i+1:]...)
			v.Block = nil
			b.TouchLayout()
			return true
		}
	}
	return false
}

// RedirectEdge retargets the CFG edge from b to oldTo so that it points to
// newTo instead: the terminator's block operand is rewritten, oldTo loses b
// as a predecessor (its phis drop the operand), and newTo gains it. Phis in
// newTo that lack an operand for b must be fixed by the caller.
func (b *Block) RedirectEdge(oldTo, newTo *Block) bool {
	if b.Term == nil {
		return false
	}
	done := false
	for i, s := range b.Term.Blocks {
		if s == oldTo {
			b.Term.Blocks[i] = newTo
			oldTo.removePredEdge(b)
			newTo.Preds = append(newTo.Preds, b)
			b.Touch()
			newTo.Touch()
			done = true
			break // redirect a single occurrence
		}
	}
	return done
}

// Unlink disconnects the block from the CFG (removing its outgoing edges
// and fixing successors' phis) and deletes it from the function's block
// list. The caller must ensure nothing references the block's values.
func (f *Func) Unlink(b *Block) {
	if b.Term != nil {
		for _, s := range b.Term.Blocks {
			s.removePredEdge(b)
		}
		b.Term = nil
	}
	for i, q := range f.Blocks {
		if q == b {
			f.Blocks = append(f.Blocks[:i], f.Blocks[i+1:]...)
			f.layoutGen++
			break
		}
	}
}

// SplitEdge inserts a fresh block on the edge from b to succ, containing
// only a jump to succ. Phi operands in succ are retargeted to the new
// block. Returns the inserted block.
func (b *Block) SplitEdge(succ *Block) *Block {
	f := b.Func
	mid := f.NewBlock()
	// Retarget one occurrence of succ in b's terminator.
	for i, s := range b.Term.Blocks {
		if s == succ {
			b.Term.Blocks[i] = mid
			b.Touch()
			break
		}
	}
	// Fix pred lists.
	for i, p := range succ.Preds {
		if p == b {
			succ.Preds[i] = mid
			succ.Touch()
			break
		}
	}
	mid.Preds = append(mid.Preds, b)
	// Retarget phi incoming blocks.
	for _, phi := range succ.Phis {
		for i, p := range phi.Blocks {
			if p == b {
				phi.Blocks[i] = mid
				break
			}
		}
	}
	// Terminator of mid: jump to succ. Installed directly (succ's pred list
	// was already fixed above, so SetTerm's bookkeeping would double-add).
	j := f.NewValue(OpJump, TVoid)
	j.Blocks = []*Block{succ}
	j.Block = mid
	mid.Term = j
	return mid
}

// HasCriticalEdge reports whether the edge b→succ is critical (b has
// multiple successors and succ multiple predecessors).
func (b *Block) HasCriticalEdge(succ *Block) bool {
	return len(b.Succs()) > 1 && len(succ.Preds) > 1
}

// NumUses counts uses of each value in the function, keyed by value ID.
// The result slice is indexed by Value.ID.
func (f *Func) NumUses() []int {
	uses := make([]int, f.NumValues())
	f.ForEachValue(func(v *Value) {
		for _, a := range v.Args {
			if a.ID < len(uses) {
				uses[a.ID]++
			}
		}
	})
	return uses
}

// Postorder returns the blocks reachable from entry in postorder.
func (f *Func) Postorder() []*Block {
	seen := make([]bool, f.NumBlockIDs())
	var order []*Block
	var visit func(b *Block)
	visit = func(b *Block) {
		if seen[b.ID] {
			return
		}
		seen[b.ID] = true
		for _, s := range b.Succs() {
			visit(s)
		}
		order = append(order, b)
	}
	if e := f.Entry(); e != nil {
		visit(e)
	}
	return order
}

// ReversePostorder returns the blocks reachable from entry in reverse
// postorder — the canonical forward-dataflow iteration order.
func (f *Func) ReversePostorder() []*Block {
	po := f.Postorder()
	for i, j := 0, len(po)-1; i < j; i, j = i+1, j-1 {
		po[i], po[j] = po[j], po[i]
	}
	return po
}

// Reachable returns a dense block-ID-indexed set of blocks reachable from
// entry.
func (f *Func) Reachable() []bool {
	seen := make([]bool, f.NumBlockIDs())
	var stack []*Block
	if e := f.Entry(); e != nil {
		stack = append(stack, e)
		seen[e.ID] = true
	}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs() {
			if !seen[s.ID] {
				seen[s.ID] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// RemoveUnreachable deletes blocks not reachable from entry, fixing the
// phis of surviving blocks. Returns the number of blocks removed.
func (f *Func) RemoveUnreachable() int {
	reach := f.Reachable()
	var dead []*Block
	for _, b := range f.Blocks {
		if !reach[b.ID] {
			dead = append(dead, b)
		}
	}
	for _, b := range dead {
		f.Unlink(b)
	}
	return len(dead)
}
