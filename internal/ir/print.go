package ir

// This file implements the textual IR printer used in tests, debugging, and
// the minicc -emit-ir mode. The format is line-oriented and stable: golden
// tests compare it directly.

import (
	"fmt"
	"strings"
)

// String renders the whole module.
func (m *Module) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %q\n", m.Unit)
	for _, g := range m.Globals {
		if g.Words > 1 {
			fmt.Fprintf(&sb, "global %s [%d]int\n", g.Name, g.Words)
		} else {
			fmt.Fprintf(&sb, "global %s int = %d\n", g.Name, g.Init)
		}
	}
	for _, e := range m.Externs {
		fmt.Fprintf(&sb, "extern %s\n", e)
	}
	for i, f := range m.Funcs {
		if i > 0 || len(m.Globals) > 0 || len(m.Externs) > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(f.String())
	}
	return sb.String()
}

// String renders one function.
func (f *Func) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s(", f.Name)
	for i, p := range f.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "p%d %s", p.Aux, p.Type)
	}
	sb.WriteString(")")
	if f.Result != TVoid {
		fmt.Fprintf(&sb, " %s", f.Result)
	}
	sb.WriteString(" {\n")
	for _, b := range f.Blocks {
		sb.WriteString(b.String())
	}
	sb.WriteString("}\n")
	return sb.String()
}

// String renders one block with its instructions.
func (b *Block) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s:", b.Name())
	if len(b.Preds) > 0 {
		sb.WriteString(" ; preds:")
		for _, p := range b.Preds {
			fmt.Fprintf(&sb, " %s", p.Name())
		}
	}
	sb.WriteByte('\n')
	for _, v := range b.Phis {
		fmt.Fprintf(&sb, "    %s\n", v.LongString())
	}
	for _, v := range b.Instrs {
		fmt.Fprintf(&sb, "    %s\n", v.LongString())
	}
	if b.Term != nil {
		fmt.Fprintf(&sb, "    %s\n", b.Term.LongString())
	}
	return sb.String()
}

// LongString renders an instruction with its operands, e.g.
// "v7 = add v3, v5" or "store v2, v9".
func (v *Value) LongString() string {
	var sb strings.Builder
	if v.Type != TVoid {
		fmt.Fprintf(&sb, "v%d = ", v.ID)
	}
	sb.WriteString(v.Op.String())
	switch v.Op {
	case OpConst:
		fmt.Fprintf(&sb, " %d", v.Aux)
		if v.Type == TBool {
			sb.WriteString(" (bool)")
		}
		return sb.String()
	case OpParam:
		fmt.Fprintf(&sb, " #%d", v.Aux)
		return sb.String()
	case OpAlloca:
		fmt.Fprintf(&sb, " %d", v.Aux)
		return sb.String()
	case OpGlobalAddr:
		fmt.Fprintf(&sb, " @%s", v.Sym)
		return sb.String()
	case OpCall:
		fmt.Fprintf(&sb, " @%s", v.Sym)
	case OpPhi:
		for i, a := range v.Args {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, " [%s, %s]", a, v.Blocks[i].Name())
		}
		return sb.String()
	case OpJump:
		fmt.Fprintf(&sb, " %s", v.Blocks[0].Name())
		return sb.String()
	case OpBranch:
		fmt.Fprintf(&sb, " %s, %s, %s", v.Args[0], v.Blocks[0].Name(), v.Blocks[1].Name())
		return sb.String()
	}
	for i, a := range v.Args {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, " %s", a)
	}
	if v.Op == OpIndexAddr {
		fmt.Fprintf(&sb, " (len %d)", v.Aux)
	}
	if v.StrAux != "" {
		fmt.Fprintf(&sb, " %q", v.StrAux)
	}
	return sb.String()
}
