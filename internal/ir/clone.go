package ir

// This file implements IR cloning: whole-function deep copies (used by the
// verification harness and the full-IR caching baseline) and region cloning
// with value remapping (used by the inliner and the loop unroller).

// CloneFunc returns a deep copy of f with fresh value and block identities.
// The copy belongs to the same module pointer but is not inserted into it.
func CloneFunc(f *Func) *Func {
	g := &Func{
		Name:    f.Name,
		Module:  f.Module,
		Result:  f.Result,
		Private: f.Private,
	}
	vmap := make(map[*Value]*Value, f.NumValues())
	for _, p := range f.Params {
		np := &Value{ID: g.takeValueID(), Op: OpParam, Type: p.Type, Aux: p.Aux}
		g.Params = append(g.Params, np)
		vmap[p] = np
	}
	CloneBlocksInto(g, f.Blocks, vmap)
	return g
}

// CloneBlocksInto clones the given blocks into dst, remapping operands via
// vmap. On entry vmap must contain mappings for values defined outside the
// cloned region that should be substituted (e.g. callee params → call
// arguments); values defined inside the region get fresh clones added to
// vmap; any other operand maps to itself. A region value pre-seeded in vmap
// is substituted instead of cloned — the unroller uses this to replace a
// loop header's phis with the current iteration's values. Block operands
// that point inside the region are remapped; edges leaving the region keep
// their original targets (and those targets gain predecessor entries for
// the clones).
//
// The returned map gives the clone of each original block.
func CloneBlocksInto(dst *Func, blocks []*Block, vmap map[*Value]*Value) map[*Block]*Block {
	bmap := make(map[*Block]*Block, len(blocks))
	for _, b := range blocks {
		bmap[b] = dst.NewBlock()
	}

	// Pass 1: create shell clones of every value defined in the region so
	// that forward references (phis) resolve. Pre-seeded values keep their
	// substitution and are not cloned.
	preseeded := make(map[*Value]bool)
	cloneShell := func(v *Value) *Value {
		if _, ok := vmap[v]; ok {
			preseeded[v] = true
			return vmap[v]
		}
		nv := &Value{
			ID:     dst.takeValueID(),
			Op:     v.Op,
			Type:   v.Type,
			Aux:    v.Aux,
			Sym:    v.Sym,
			StrAux: v.StrAux,
		}
		vmap[v] = nv
		return nv
	}
	for _, b := range blocks {
		for _, v := range b.Phis {
			cloneShell(v)
		}
		for _, v := range b.Instrs {
			cloneShell(v)
		}
		if b.Term != nil {
			cloneShell(b.Term)
		}
	}

	lookupV := func(v *Value) *Value {
		if nv, ok := vmap[v]; ok {
			return nv
		}
		return v
	}
	lookupB := func(b *Block) *Block {
		if nb, ok := bmap[b]; ok {
			return nb
		}
		return b
	}

	// Pass 2: fill operands and attach clones to their blocks. Pre-seeded
	// values were substituted, not cloned, so they are skipped here.
	for _, b := range blocks {
		nb := bmap[b]
		for _, v := range b.Phis {
			if preseeded[v] {
				continue
			}
			nv := vmap[v]
			for _, a := range v.Args {
				nv.Args = append(nv.Args, lookupV(a))
			}
			for _, pb := range v.Blocks {
				nv.Blocks = append(nv.Blocks, lookupB(pb))
			}
			nb.AddPhi(nv)
		}
		for _, v := range b.Instrs {
			if preseeded[v] {
				continue
			}
			nv := vmap[v]
			for _, a := range v.Args {
				nv.Args = append(nv.Args, lookupV(a))
			}
			nb.AddInstr(nv)
		}
		if b.Term != nil {
			nt := vmap[b.Term]
			for _, a := range b.Term.Args {
				nt.Args = append(nt.Args, lookupV(a))
			}
			for _, tb := range b.Term.Blocks {
				nt.Blocks = append(nt.Blocks, lookupB(tb))
			}
			nb.SetTerm(nt)
		}
	}
	return bmap
}

// CloneModule deep-copies a whole module, used to snapshot IR for the
// stateful-vs-stateless verification harness.
func CloneModule(m *Module) *Module {
	nm := &Module{Unit: m.Unit}
	nm.Externs = append(nm.Externs, m.Externs...)
	for _, g := range m.Globals {
		gg := *g
		nm.Globals = append(nm.Globals, &gg)
	}
	for _, f := range m.Funcs {
		nf := CloneFunc(f)
		nf.Module = nm
		nm.Funcs = append(nm.Funcs, nf)
	}
	return nm
}
