package ir

// This file centralizes the evaluation semantics of MiniC operators.
// Every consumer — SCCP, instcombine, the interpreter in the VM — calls
// these functions, so compile-time folding can never disagree with runtime
// behaviour.

// EvalBinary applies a binary operator to constant operands. ok is false
// when the operation would trap at runtime (division or remainder by zero),
// in which case the compiler must not fold it.
//
// Shift semantics: amounts are masked to [0, 64) like hardware shifters;
// OpShr is arithmetic.
func EvalBinary(op Op, x, y int64) (int64, bool) {
	switch op {
	case OpAdd:
		return x + y, true
	case OpSub:
		return x - y, true
	case OpMul:
		return x * y, true
	case OpDiv:
		if y == 0 {
			return 0, false
		}
		return x / y, true
	case OpRem:
		if y == 0 {
			return 0, false
		}
		return x % y, true
	case OpAnd:
		return x & y, true
	case OpOr:
		return x | y, true
	case OpXor:
		return x ^ y, true
	case OpShl:
		return x << (uint64(y) & 63), true
	case OpShr:
		return x >> (uint64(y) & 63), true
	case OpEq:
		return b2i(x == y), true
	case OpNe:
		return b2i(x != y), true
	case OpLt:
		return b2i(x < y), true
	case OpLe:
		return b2i(x <= y), true
	case OpGt:
		return b2i(x > y), true
	case OpGe:
		return b2i(x >= y), true
	}
	return 0, false
}

// EvalUnary applies a unary operator to a constant operand.
func EvalUnary(op Op, x int64) (int64, bool) {
	switch op {
	case OpNeg:
		return -x, true
	case OpCompl:
		return ^x, true
	case OpNot:
		return b2i(x == 0), true
	case OpCopy:
		return x, true
	}
	return 0, false
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
