package ir

// This file implements the structural IR verifier. It checks the invariants
// every pass relies on; the pipeline driver runs it between passes when
// verification mode is enabled, so a pass that corrupts the CFG is caught at
// the pass that broke it rather than at codegen. Dominance-based SSA
// checking lives in internal/analysis (it needs the dominator tree).

import "fmt"

// Verify checks the module's structural invariants, returning the first
// problem found or nil.
func (m *Module) Verify() error {
	names := make(map[string]bool)
	for _, g := range m.Globals {
		if names[g.Name] {
			return fmt.Errorf("module %s: duplicate global %s", m.Unit, g.Name)
		}
		names[g.Name] = true
		if g.Words < 1 {
			return fmt.Errorf("module %s: global %s has size %d", m.Unit, g.Name, g.Words)
		}
	}
	for _, f := range m.Funcs {
		if names[f.Name] {
			return fmt.Errorf("module %s: duplicate symbol %s", m.Unit, f.Name)
		}
		names[f.Name] = true
		if err := f.Verify(); err != nil {
			return fmt.Errorf("module %s: %w", m.Unit, err)
		}
	}
	return nil
}

// Verify checks one function's structural invariants.
func (f *Func) Verify() error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("func %s: no blocks", f.Name)
	}
	blockSet := make(map[*Block]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		if b.Func != f {
			return fmt.Errorf("func %s: block %s has wrong owner", f.Name, b.Name())
		}
		blockSet[b] = true
	}
	if len(f.Entry().Preds) != 0 {
		return fmt.Errorf("func %s: entry block has predecessors", f.Name)
	}

	// Collect definitions to validate operand ownership.
	defined := make(map[*Value]bool)
	for _, p := range f.Params {
		defined[p] = true
	}
	f.ForEachValue(func(v *Value) { defined[v] = true })

	edgeCount := func(from, to *Block) int {
		n := 0
		for _, s := range from.Succs() {
			if s == to {
				n++
			}
		}
		return n
	}

	for _, b := range f.Blocks {
		if b.Term == nil {
			return fmt.Errorf("func %s: block %s has no terminator", f.Name, b.Name())
		}
		if !b.Term.Op.IsTerminator() {
			return fmt.Errorf("func %s: block %s terminator is %s", f.Name, b.Name(), b.Term.Op)
		}
		// Pred lists mirror successor edges (with multiplicity).
		for _, s := range b.Succs() {
			if !blockSet[s] {
				return fmt.Errorf("func %s: block %s targets foreign block %s", f.Name, b.Name(), s.Name())
			}
			want := edgeCount(b, s)
			got := 0
			for _, p := range s.Preds {
				if p == b {
					got++
				}
			}
			if got != want {
				return fmt.Errorf("func %s: edge %s->%s has %d pred entries, want %d",
					f.Name, b.Name(), s.Name(), got, want)
			}
		}
		for _, p := range b.Preds {
			if !blockSet[p] {
				return fmt.Errorf("func %s: block %s has foreign pred", f.Name, b.Name())
			}
			if edgeCount(p, b) == 0 {
				return fmt.Errorf("func %s: block %s lists pred %s with no edge", f.Name, b.Name(), p.Name())
			}
		}

		check := func(v *Value, where string) error {
			if v.Block != b {
				return fmt.Errorf("func %s: %s %s in %s has wrong owner block", f.Name, where, v.Op, b.Name())
			}
			for i, a := range v.Args {
				if a == nil {
					return fmt.Errorf("func %s: %s in %s has nil arg %d", f.Name, v.LongString(), b.Name(), i)
				}
				// Constants are free-floating values, never stored in blocks.
				if a.Op == OpConst {
					continue
				}
				if !defined[a] {
					return fmt.Errorf("func %s: %s in %s uses undefined value v%d (%s)",
						f.Name, v.LongString(), b.Name(), a.ID, a.Op)
				}
			}
			return nil
		}

		for _, phi := range b.Phis {
			if phi.Op != OpPhi {
				return fmt.Errorf("func %s: non-phi %s in phi list of %s", f.Name, phi.Op, b.Name())
			}
			if err := check(phi, "phi"); err != nil {
				return err
			}
			if len(phi.Args) != len(phi.Blocks) {
				return fmt.Errorf("func %s: phi v%d arg/block mismatch", f.Name, phi.ID)
			}
			if len(phi.Args) != len(b.Preds) {
				return fmt.Errorf("func %s: phi v%d in %s has %d operands for %d preds",
					f.Name, phi.ID, b.Name(), len(phi.Args), len(b.Preds))
			}
			seen := make(map[*Block]int)
			for _, in := range phi.Blocks {
				seen[in]++
			}
			for _, p := range b.Preds {
				if seen[p] == 0 {
					return fmt.Errorf("func %s: phi v%d in %s missing operand for pred %s",
						f.Name, phi.ID, b.Name(), p.Name())
				}
				seen[p]--
			}
		}
		for _, v := range b.Instrs {
			if v.Op.IsTerminator() || v.Op == OpPhi {
				return fmt.Errorf("func %s: %s in instruction list of %s", f.Name, v.Op, b.Name())
			}
			if err := check(v, "instr"); err != nil {
				return err
			}
			if err := verifyOperandShape(f, v); err != nil {
				return err
			}
		}
		if err := check(b.Term, "terminator"); err != nil {
			return err
		}
		if err := verifyOperandShape(f, b.Term); err != nil {
			return err
		}
	}
	return nil
}

// verifyOperandShape checks opcode-specific arities and types.
func verifyOperandShape(f *Func, v *Value) error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("func %s: %s: %s", f.Name, v.LongString(), fmt.Sprintf(format, args...))
	}
	argn := func(n int) error {
		if len(v.Args) != n {
			return bad("want %d args, have %d", n, len(v.Args))
		}
		return nil
	}
	switch v.Op {
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr:
		if err := argn(2); err != nil {
			return err
		}
		if v.Type != TInt {
			return bad("result must be int")
		}
	case OpNeg, OpCompl:
		if err := argn(1); err != nil {
			return err
		}
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		if err := argn(2); err != nil {
			return err
		}
		if v.Type != TBool {
			return bad("comparison must produce bool")
		}
	case OpNot:
		if err := argn(1); err != nil {
			return err
		}
		if v.Type != TBool {
			return bad("not must produce bool")
		}
	case OpLoad:
		if err := argn(1); err != nil {
			return err
		}
		if v.Args[0].Type != TPtr {
			return bad("load needs ptr operand")
		}
	case OpStore:
		if err := argn(2); err != nil {
			return err
		}
		if v.Args[0].Type != TPtr {
			return bad("store needs ptr operand")
		}
	case OpIndexAddr:
		if err := argn(2); err != nil {
			return err
		}
		if v.Args[0].Type != TPtr || v.Type != TPtr {
			return bad("indexaddr is ptr -> ptr")
		}
	case OpAlloca:
		if v.Aux < 1 {
			return bad("alloca size %d", v.Aux)
		}
		if v.Type != TPtr {
			return bad("alloca must produce ptr")
		}
	case OpGlobalAddr:
		if v.Sym == "" {
			return bad("globaladdr without symbol")
		}
	case OpCall:
		if v.Sym == "" {
			return bad("call without callee")
		}
	case OpAssert:
		if len(v.Args) != 1 {
			return bad("assert takes 1 arg")
		}
	case OpRet:
		if len(v.Args) > 1 {
			return bad("ret takes at most 1 arg")
		}
		if f.Result == TVoid && len(v.Args) != 0 {
			return bad("void function returns a value")
		}
		if f.Result != TVoid && len(v.Args) != 1 {
			return bad("non-void function returns nothing")
		}
	case OpJump:
		if len(v.Blocks) != 1 {
			return bad("jump needs 1 target")
		}
	case OpBranch:
		if err := argn(1); err != nil {
			return err
		}
		if len(v.Blocks) != 2 {
			return bad("branch needs 2 targets")
		}
		if v.Args[0].Type != TBool {
			return bad("branch condition must be bool")
		}
	case OpConst, OpParam:
		return bad("pseudo-value stored in a block")
	}
	return nil
}
