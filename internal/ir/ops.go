// Package ir defines the compiler's intermediate representation: a typed,
// SSA-based, control-flow-graph IR closely modelled on LLVM's.
//
// A Module holds globals and functions; a Func is a list of Blocks; a Block
// holds phi nodes, ordinary instructions, and exactly one terminator. Every
// instruction is a *Value; constants and parameters are Values too, so all
// operands are uniform. The IR begins in non-SSA "memory form" (locals are
// Allocas accessed by Load/Store) and the mem2reg pass rewrites it into
// pruned SSA with phis.
package ir

import "fmt"

// Op enumerates instruction opcodes.
type Op uint8

// Opcodes.
const (
	OpInvalid Op = iota

	// Pseudo-values (not stored in blocks).
	OpConst // Aux = constant value
	OpParam // Aux = parameter index

	// Integer arithmetic (operands and result TInt).
	OpAdd
	OpSub
	OpMul
	OpDiv // trapping on divide-by-zero at runtime
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl   // shift amounts masked to [0,63] at runtime
	OpShr   // arithmetic shift right
	OpNeg   // unary minus
	OpCompl // bitwise complement

	// Comparisons (operands TInt or TBool, result TBool).
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe

	// Boolean (operands and result TBool).
	OpNot

	// Memory.
	OpAlloca     // Aux = size in words; result TPtr (frame storage)
	OpGlobalAddr // Sym = global name; result TPtr
	OpIndexAddr  // Args[0] ptr, Args[1] index; Aux = array length for bounds; result TPtr
	OpLoad       // Args[0] ptr; result TInt or TBool
	OpStore      // Args[0] ptr, Args[1] value; result TVoid

	// Calls and builtins.
	OpCall   // Sym = callee, Args = arguments; result is callee's
	OpPrint  // StrAux = optional label, Args = scalar values; TVoid
	OpAssert // Args[0] = cond; StrAux = optional message; TVoid

	// SSA plumbing.
	OpPhi  // Args[i] flows in from Blocks[i]
	OpCopy // Args[0]; inserted by phi-elimination and folded by copy-prop

	// Terminators.
	OpRet    // Args: 0 or 1 values
	OpJump   // Blocks[0] = target
	OpBranch // Args[0] = cond (TBool); Blocks[0] = then, Blocks[1] = else

	numOps
)

var opNames = [...]string{
	OpInvalid:    "invalid",
	OpConst:      "const",
	OpParam:      "param",
	OpAdd:        "add",
	OpSub:        "sub",
	OpMul:        "mul",
	OpDiv:        "div",
	OpRem:        "rem",
	OpAnd:        "and",
	OpOr:         "or",
	OpXor:        "xor",
	OpShl:        "shl",
	OpShr:        "shr",
	OpNeg:        "neg",
	OpCompl:      "compl",
	OpEq:         "eq",
	OpNe:         "ne",
	OpLt:         "lt",
	OpLe:         "le",
	OpGt:         "gt",
	OpGe:         "ge",
	OpNot:        "not",
	OpAlloca:     "alloca",
	OpGlobalAddr: "globaladdr",
	OpIndexAddr:  "indexaddr",
	OpLoad:       "load",
	OpStore:      "store",
	OpCall:       "call",
	OpPrint:      "print",
	OpAssert:     "assert",
	OpPhi:        "phi",
	OpCopy:       "copy",
	OpRet:        "ret",
	OpJump:       "jump",
	OpBranch:     "branch",
}

// String returns the opcode mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// IsTerminator reports whether the op ends a block.
func (o Op) IsTerminator() bool { return o == OpRet || o == OpJump || o == OpBranch }

// IsCommutative reports whether operand order is irrelevant.
func (o Op) IsCommutative() bool {
	switch o {
	case OpAdd, OpMul, OpAnd, OpOr, OpXor, OpEq, OpNe:
		return true
	}
	return false
}

// IsBinaryInt reports whether the op is a two-operand integer arithmetic op.
func (o Op) IsBinaryInt() bool { return o >= OpAdd && o <= OpShr }

// IsCompare reports whether the op is a comparison.
func (o Op) IsCompare() bool { return o >= OpEq && o <= OpGe }

// HasSideEffects reports whether the instruction must not be removed even
// when its result is unused. Div/Rem are included because they can trap.
func (o Op) HasSideEffects() bool {
	switch o {
	case OpStore, OpCall, OpPrint, OpAssert, OpRet, OpJump, OpBranch, OpDiv, OpRem, OpIndexAddr:
		// OpIndexAddr performs a bounds check, so it is effectful too.
		return true
	}
	return false
}

// IsPure reports whether the instruction's result depends only on its
// operands (no memory, no effects), making it eligible for CSE/GVN.
func (o Op) IsPure() bool {
	switch o {
	case OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpShl, OpShr,
		OpNeg, OpCompl, OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpNot,
		OpCopy, OpGlobalAddr:
		return true
	}
	return false
}

// InvertCompare returns the comparison with inverted truth value
// (Lt → Ge, Eq → Ne, ...), and ok=false for non-comparisons.
func (o Op) InvertCompare() (Op, bool) {
	switch o {
	case OpEq:
		return OpNe, true
	case OpNe:
		return OpEq, true
	case OpLt:
		return OpGe, true
	case OpLe:
		return OpGt, true
	case OpGt:
		return OpLe, true
	case OpGe:
		return OpLt, true
	}
	return OpInvalid, false
}

// SwapCompare returns the comparison with swapped operands
// (Lt → Gt, Le → Ge, Eq → Eq), and ok=false for non-comparisons.
func (o Op) SwapCompare() (Op, bool) {
	switch o {
	case OpEq:
		return OpEq, true
	case OpNe:
		return OpNe, true
	case OpLt:
		return OpGt, true
	case OpLe:
		return OpGe, true
	case OpGt:
		return OpLt, true
	case OpGe:
		return OpLe, true
	}
	return OpInvalid, false
}

// Type is the IR-level type of a value.
type Type uint8

// IR types. Booleans are word-sized 0/1 values; TPtr is a frame or global
// address.
const (
	TVoid Type = iota
	TInt
	TBool
	TPtr
)

// String returns the type name.
func (t Type) String() string {
	switch t {
	case TVoid:
		return "void"
	case TInt:
		return "int"
	case TBool:
		return "bool"
	case TPtr:
		return "ptr"
	default:
		return fmt.Sprintf("type(%d)", int(t))
	}
}
