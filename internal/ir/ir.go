package ir

// This file defines the core IR data structures — Module, Global, Func,
// Block, Value — and their construction and mutation helpers.

import (
	"fmt"
	"sort"
)

// Module is the IR of one compilation unit.
type Module struct {
	// Unit is the source unit name (relative file path).
	Unit string
	// Globals in declaration order.
	Globals []*Global
	// Funcs in declaration order.
	Funcs []*Func
	// Externs records the names this unit expects other units to provide;
	// the linker checks them.
	Externs []string
}

// Global is a module-level variable. Arrays occupy Words > 1 consecutive
// words; scalars one word initialized to Init.
type Global struct {
	Name  string
	Words int64
	Init  int64
	// Private marks unit-local globals (names starting with '_'),
	// removable by globalopt when unreferenced.
	Private bool
}

// FindFunc returns the function with the given name, or nil.
func (m *Module) FindFunc(name string) *Func {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// FindGlobal returns the global with the given name, or nil.
func (m *Module) FindGlobal(name string) *Global {
	for _, g := range m.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// RemoveFunc deletes the named function from the module.
func (m *Module) RemoveFunc(name string) bool {
	for i, f := range m.Funcs {
		if f.Name == name {
			m.Funcs = append(m.Funcs[:i], m.Funcs[i+1:]...)
			return true
		}
	}
	return false
}

// Func is one function's IR.
type Func struct {
	Name string
	// Module is the owning module (set by Module construction; may be nil
	// in tests that build bare functions).
	Module *Module
	// Params are the parameter pseudo-values, in order.
	Params []*Value
	// Result is the return type (TVoid for none).
	Result Type
	// Blocks in layout order; Blocks[0] is the entry.
	Blocks []*Block
	// Private marks unit-local functions (names starting with '_').
	Private bool

	nextValueID int
	nextBlockID int
	layoutGen   uint32
}

// NewFunc creates an empty function with the given parameter types.
func NewFunc(name string, params []Type, result Type) *Func {
	f := &Func{Name: name, Result: result, Private: len(name) > 0 && name[0] == '_'}
	for i, t := range params {
		f.Params = append(f.Params, &Value{
			ID: f.takeValueID(), Op: OpParam, Type: t, Aux: int64(i),
		})
	}
	return f
}

func (f *Func) takeValueID() int {
	id := f.nextValueID
	f.nextValueID++
	return id
}

// Entry returns the entry block (nil for an empty function).
func (f *Func) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// NewBlock appends a fresh empty block to the function.
func (f *Func) NewBlock() *Block {
	b := &Block{ID: f.nextBlockID, Func: f}
	f.nextBlockID++
	f.Blocks = append(f.Blocks, b)
	f.layoutGen++
	return b
}

// LayoutGen returns the function's structural generation. It advances on
// every mutation that can change the dense value numbering or block
// indexing the fingerprint package derives from layout order: block
// creation/removal and instruction or phi list membership changes.
// In-place rewrites (operand swaps, opcode changes) advance only the owning
// block's Gen. Together the two counters are the hierarchical fingerprint
// memo's invalidation key: a memoized block hash is valid iff both match.
func (f *Func) LayoutGen() uint32 { return f.layoutGen }

// NumValues returns an upper bound on value IDs, for dense side tables.
func (f *Func) NumValues() int { return f.nextValueID }

// NumBlockIDs returns an upper bound on block IDs, for dense side tables.
func (f *Func) NumBlockIDs() int { return f.nextBlockID }

// NewValue creates an instruction value owned by this function but not yet
// placed in any block.
func (f *Func) NewValue(op Op, t Type, args ...*Value) *Value {
	return &Value{ID: f.takeValueID(), Op: op, Type: t, Args: args}
}

// ConstInt returns a fresh integer constant value.
func (f *Func) ConstInt(v int64) *Value {
	return &Value{ID: f.takeValueID(), Op: OpConst, Type: TInt, Aux: v}
}

// ConstBool returns a fresh boolean constant value.
func (f *Func) ConstBool(v bool) *Value {
	b := int64(0)
	if v {
		b = 1
	}
	return &Value{ID: f.takeValueID(), Op: OpConst, Type: TBool, Aux: b}
}

// Block is a basic block: phis, then ordinary instructions, then one
// terminator. Preds is maintained by the edge-editing helpers in edit.go.
type Block struct {
	ID     int
	Func   *Func
	Phis   []*Value
	Instrs []*Value
	Term   *Value
	Preds  []*Block

	gen uint32
}

// Name returns the block's printable label.
func (b *Block) Name() string { return fmt.Sprintf("b%d", b.ID) }

// Gen returns the block's content generation, advanced by every mutation
// of the block's own contents (instructions, phis, terminator, preds).
// Fingerprint memoization keys block hashes by (Gen, Func.LayoutGen); see
// Func.LayoutGen for the invalidation contract.
func (b *Block) Gen() uint32 { return b.gen }

// Touch marks the block's contents changed in place. Every IR helper calls
// it automatically; passes that write Block or Value fields directly must
// call it themselves (or TouchLayout when list membership changed) — a
// missed touch turns into a stale memoized block hash, which the
// fingerprint self-check tests and the soundness sentinel exist to catch.
func (b *Block) Touch() { b.gen++ }

// TouchLayout marks a structural change: the block's instruction/phi list
// membership or order changed, shifting the function-wide dense value
// numbering every other block's hash may reference.
func (b *Block) TouchLayout() {
	b.gen++
	if b.Func != nil {
		b.Func.layoutGen++
	}
}

// Succs returns the block's successors (the terminator's block operands).
func (b *Block) Succs() []*Block {
	if b.Term == nil {
		return nil
	}
	return b.Term.Blocks
}

// AddInstr appends an ordinary instruction to the block and records
// ownership.
func (b *Block) AddInstr(v *Value) *Value {
	v.Block = b
	b.Instrs = append(b.Instrs, v)
	b.TouchLayout()
	return v
}

// InsertInstr inserts v at position i among the ordinary instructions.
func (b *Block) InsertInstr(i int, v *Value) {
	v.Block = b
	b.Instrs = append(b.Instrs, nil)
	copy(b.Instrs[i+1:], b.Instrs[i:])
	b.Instrs[i] = v
	b.TouchLayout()
}

// AddPhi appends a phi to the block.
func (b *Block) AddPhi(v *Value) *Value {
	v.Block = b
	b.Phis = append(b.Phis, v)
	b.TouchLayout()
	return v
}

// SetTerm installs the block's terminator and updates the successors'
// predecessor lists.
func (b *Block) SetTerm(v *Value) {
	if b.Term != nil {
		for _, s := range b.Term.Blocks {
			s.removePredEdge(b)
		}
	}
	v.Block = b
	b.Term = v
	b.Touch()
	for _, s := range v.Blocks {
		s.Preds = append(s.Preds, b)
		s.Touch()
	}
}

// removePredEdge removes one occurrence of p from b.Preds and drops the
// corresponding phi operands.
func (b *Block) removePredEdge(p *Block) {
	for i, q := range b.Preds {
		if q == p {
			b.Preds = append(b.Preds[:i], b.Preds[i+1:]...)
			for _, phi := range b.Phis {
				phi.removeIncoming(p)
			}
			b.Touch()
			return
		}
	}
}

// Value is an SSA value: an instruction, constant, or parameter.
type Value struct {
	// ID is unique within the owning function.
	ID int
	Op Op
	// Type of the produced value (TVoid for effect-only instructions).
	Type Type
	// Args are value operands.
	Args []*Value
	// Blocks are block operands: phi incoming blocks, or branch targets.
	Blocks []*Block
	// Aux carries the constant value (OpConst), parameter index (OpParam),
	// alloca size in words (OpAlloca), or array length (OpIndexAddr).
	Aux int64
	// Sym is the callee (OpCall) or global name (OpGlobalAddr).
	Sym string
	// StrAux is the print label or assert message.
	StrAux string
	// Block is the owning block (nil for constants and parameters).
	Block *Block
}

// AuxInt returns the constant payload.
func (v *Value) AuxInt() int64 { return v.Aux }

// IsConst reports whether v is a constant, returning its value.
func (v *Value) IsConst() (int64, bool) {
	if v.Op == OpConst {
		return v.Aux, true
	}
	return 0, false
}

// IsConstValue reports whether v is the constant c.
func (v *Value) IsConstValue(c int64) bool {
	return v.Op == OpConst && v.Aux == c
}

// Incoming returns the phi operand flowing in from pred, or nil.
func (v *Value) Incoming(pred *Block) *Value {
	for i, b := range v.Blocks {
		if b == pred {
			return v.Args[i]
		}
	}
	return nil
}

// SetIncoming replaces the phi operand for pred.
func (v *Value) SetIncoming(pred *Block, val *Value) {
	if v.Block != nil {
		v.Block.Touch()
	}
	for i, b := range v.Blocks {
		if b == pred {
			v.Args[i] = val
			return
		}
	}
	v.Blocks = append(v.Blocks, pred)
	v.Args = append(v.Args, val)
}

// removeIncoming drops the phi operand for pred (one occurrence).
func (v *Value) removeIncoming(pred *Block) {
	for i, b := range v.Blocks {
		if b == pred {
			v.Args = append(v.Args[:i], v.Args[i+1:]...)
			v.Blocks = append(v.Blocks[:i], v.Blocks[i+1:]...)
			if v.Block != nil {
				v.Block.Touch()
			}
			return
		}
	}
}

// String returns a short printable form ("v12").
func (v *Value) String() string {
	if v == nil {
		return "<nil>"
	}
	switch v.Op {
	case OpConst:
		if v.Type == TBool {
			if v.Aux != 0 {
				return "true"
			}
			return "false"
		}
		return fmt.Sprintf("%d", v.Aux)
	case OpParam:
		return fmt.Sprintf("p%d", v.Aux)
	default:
		return fmt.Sprintf("v%d", v.ID)
	}
}

// SortFuncs orders module functions by name; used before fingerprinting
// module-level state so that declaration order doesn't leak into hashes.
func (m *Module) SortFuncs() {
	sort.Slice(m.Funcs, func(i, j int) bool { return m.Funcs[i].Name < m.Funcs[j].Name })
}
