package ir_test

// Printer coverage: every opcode's LongString form renders with its
// operands visible, so debug dumps never hide information.

import (
	"strings"
	"testing"

	"statefulcc/internal/ir"
)

func TestLongStringAllOps(t *testing.T) {
	f := ir.NewFunc("p", []ir.Type{ir.TInt, ir.TBool}, ir.TInt)
	b := f.NewBlock()
	b2 := f.NewBlock()

	x := f.Params[0]
	c := f.ConstInt(7)

	cases := []struct {
		v    *ir.Value
		want []string
	}{
		{f.NewValue(ir.OpAdd, ir.TInt, x, c), []string{"add", "p0", "7"}},
		{f.NewValue(ir.OpDiv, ir.TInt, x, c), []string{"div"}},
		{f.NewValue(ir.OpNeg, ir.TInt, x), []string{"neg p0"}},
		{f.NewValue(ir.OpCompl, ir.TInt, x), []string{"compl"}},
		{f.NewValue(ir.OpEq, ir.TBool, x, c), []string{"eq"}},
		{f.NewValue(ir.OpNot, ir.TBool, f.Params[1]), []string{"not p1"}},
		{f.NewValue(ir.OpCopy, ir.TInt, x), []string{"copy p0"}},
	}
	for _, tc := range cases {
		s := tc.v.LongString()
		for _, w := range tc.want {
			if !strings.Contains(s, w) {
				t.Errorf("%s: missing %q", s, w)
			}
		}
	}

	al := f.NewValue(ir.OpAlloca, ir.TPtr)
	al.Aux = 4
	if s := al.LongString(); !strings.Contains(s, "alloca 4") {
		t.Errorf("alloca: %s", s)
	}
	ga := f.NewValue(ir.OpGlobalAddr, ir.TPtr)
	ga.Sym = "glob"
	if s := ga.LongString(); !strings.Contains(s, "@glob") {
		t.Errorf("globaladdr: %s", s)
	}
	ix := f.NewValue(ir.OpIndexAddr, ir.TPtr, al, c)
	ix.Aux = 4
	if s := ix.LongString(); !strings.Contains(s, "len 4") {
		t.Errorf("indexaddr: %s", s)
	}
	ld := f.NewValue(ir.OpLoad, ir.TInt, ix)
	if s := ld.LongString(); !strings.Contains(s, "load") {
		t.Errorf("load: %s", s)
	}
	st := f.NewValue(ir.OpStore, ir.TVoid, ix, c)
	if s := st.LongString(); !strings.Contains(s, "store") || strings.Contains(s, "=") {
		t.Errorf("store must be valueless: %s", s)
	}
	call := f.NewValue(ir.OpCall, ir.TInt, x)
	call.Sym = "callee"
	if s := call.LongString(); !strings.Contains(s, "call @callee") {
		t.Errorf("call: %s", s)
	}
	pr := f.NewValue(ir.OpPrint, ir.TVoid, x)
	pr.StrAux = "lbl"
	if s := pr.LongString(); !strings.Contains(s, `"lbl"`) {
		t.Errorf("print: %s", s)
	}
	as := f.NewValue(ir.OpAssert, ir.TVoid, f.Params[1])
	as.StrAux = "msg"
	if s := as.LongString(); !strings.Contains(s, `"msg"`) {
		t.Errorf("assert: %s", s)
	}

	phi := f.NewValue(ir.OpPhi, ir.TInt)
	phi.Args = []*ir.Value{c, x}
	phi.Blocks = []*ir.Block{b, b2}
	if s := phi.LongString(); !strings.Contains(s, "[7, b0]") || !strings.Contains(s, "[p0, b1]") {
		t.Errorf("phi: %s", s)
	}

	j := f.NewValue(ir.OpJump, ir.TVoid)
	j.Blocks = []*ir.Block{b2}
	if s := j.LongString(); !strings.Contains(s, "jump b1") {
		t.Errorf("jump: %s", s)
	}
	br := f.NewValue(ir.OpBranch, ir.TVoid, f.Params[1])
	br.Blocks = []*ir.Block{b, b2}
	if s := br.LongString(); !strings.Contains(s, "branch p1, b0, b1") {
		t.Errorf("branch: %s", s)
	}
	ret := f.NewValue(ir.OpRet, ir.TVoid, x)
	if s := ret.LongString(); !strings.Contains(s, "ret p0") {
		t.Errorf("ret: %s", s)
	}

	tb := f.ConstBool(true)
	if tb.String() != "true" || f.ConstBool(false).String() != "false" {
		t.Error("bool constant rendering")
	}
	if c.String() != "7" || x.String() != "p0" {
		t.Error("operand short forms")
	}
	if (*ir.Value)(nil).String() != "<nil>" {
		t.Error("nil value rendering")
	}
}

func TestModulePrintIncludesEverything(t *testing.T) {
	f := ir.NewFunc("fn", nil, ir.TVoid)
	b := f.NewBlock()
	b.SetTerm(f.NewValue(ir.OpRet, ir.TVoid))
	m := &ir.Module{
		Unit:    "m.mc",
		Globals: []*ir.Global{{Name: "g", Words: 1, Init: 5}, {Name: "arr", Words: 8}},
		Externs: []string{"helper"},
		Funcs:   []*ir.Func{f},
	}
	s := m.String()
	for _, want := range []string{`module "m.mc"`, "global g int = 5", "global arr [8]int", "extern helper", "func fn()"} {
		if !strings.Contains(s, want) {
			t.Errorf("module print missing %q:\n%s", want, s)
		}
	}
}
