package ast

// This file implements the AST pretty-printer. It emits canonical MiniC
// source that re-parses to an equivalent tree; the workload edit simulator
// relies on this to apply AST mutations and write the result back to disk.

import (
	"fmt"
	"strings"

	"statefulcc/internal/token"
)

// Print renders a whole file as canonical MiniC source.
func Print(f *File) string {
	var p printer
	for i, d := range f.Decls {
		if i > 0 {
			p.buf.WriteByte('\n')
		}
		p.decl(d)
	}
	return p.buf.String()
}

// PrintDecl renders a single declaration.
func PrintDecl(d Decl) string {
	var p printer
	p.decl(d)
	return p.buf.String()
}

// PrintStmt renders a single statement at the given indent level.
func PrintStmt(s Stmt) string {
	var p printer
	p.stmt(s)
	return p.buf.String()
}

// PrintExpr renders an expression.
func PrintExpr(e Expr) string {
	var p printer
	p.expr(e)
	return p.buf.String()
}

type printer struct {
	buf    strings.Builder
	indent int
}

func (p *printer) nl() {
	p.buf.WriteByte('\n')
	for i := 0; i < p.indent; i++ {
		p.buf.WriteString("    ")
	}
}

func (p *printer) typeExpr(t TypeExpr) {
	switch t := t.(type) {
	case *ScalarType:
		p.buf.WriteString(t.Kind.String())
	case *ArrayType:
		fmt.Fprintf(&p.buf, "[%d]int", t.Len)
	}
}

func (p *printer) params(params []*Param) {
	p.buf.WriteByte('(')
	for i, prm := range params {
		if i > 0 {
			p.buf.WriteString(", ")
		}
		p.buf.WriteString(prm.Name)
		p.buf.WriteByte(' ')
		p.typeExpr(prm.Type)
	}
	p.buf.WriteByte(')')
}

func (p *printer) decl(d Decl) {
	switch d := d.(type) {
	case *FuncDecl:
		p.buf.WriteString("func ")
		p.buf.WriteString(d.Name)
		p.params(d.Params)
		if d.Result != nil {
			p.buf.WriteByte(' ')
			p.typeExpr(d.Result)
		}
		p.buf.WriteByte(' ')
		p.block(d.Body)
		p.buf.WriteByte('\n')
	case *ExternDecl:
		p.buf.WriteString("extern func ")
		p.buf.WriteString(d.Name)
		p.params(d.Params)
		if d.Result != nil {
			p.buf.WriteByte(' ')
			p.typeExpr(d.Result)
		}
		p.buf.WriteString(";\n")
	case *VarDecl:
		p.varDecl(d)
		p.buf.WriteByte('\n')
	case *ConstDecl:
		p.buf.WriteString("const ")
		p.buf.WriteString(d.Name)
		p.buf.WriteString(" = ")
		p.expr(d.Value)
		p.buf.WriteString(";\n")
	}
}

func (p *printer) varDecl(d *VarDecl) {
	p.buf.WriteString("var ")
	p.buf.WriteString(d.Name)
	p.buf.WriteByte(' ')
	p.typeExpr(d.Type)
	if d.Init != nil {
		p.buf.WriteString(" = ")
		p.expr(d.Init)
	}
	p.buf.WriteByte(';')
}

func (p *printer) block(b *BlockStmt) {
	p.buf.WriteByte('{')
	p.indent++
	for _, s := range b.Stmts {
		p.nl()
		p.stmt(s)
	}
	p.indent--
	p.nl()
	p.buf.WriteByte('}')
}

func (p *printer) stmt(s Stmt) {
	switch s := s.(type) {
	case *BlockStmt:
		p.block(s)
	case *DeclStmt:
		p.varDecl(s.Decl)
	case *AssignStmt:
		p.expr(s.Lhs)
		p.buf.WriteByte(' ')
		p.buf.WriteString(s.Op.String())
		p.buf.WriteByte(' ')
		p.expr(s.Rhs)
		p.buf.WriteByte(';')
	case *IfStmt:
		p.buf.WriteString("if ")
		p.expr(s.Cond)
		p.buf.WriteByte(' ')
		p.block(s.Then)
		if s.Else != nil {
			p.buf.WriteString(" else ")
			p.stmt(s.Else)
		}
	case *WhileStmt:
		p.buf.WriteString("while ")
		p.expr(s.Cond)
		p.buf.WriteByte(' ')
		p.block(s.Body)
	case *ForStmt:
		p.buf.WriteString("for ")
		if s.Init != nil {
			p.stmtNoSemi(s.Init)
		}
		p.buf.WriteString("; ")
		if s.Cond != nil {
			p.expr(s.Cond)
		}
		p.buf.WriteString("; ")
		if s.Post != nil {
			p.stmtNoSemi(s.Post)
		}
		p.buf.WriteByte(' ')
		p.block(s.Body)
	case *ReturnStmt:
		p.buf.WriteString("return")
		if s.Value != nil {
			p.buf.WriteByte(' ')
			p.expr(s.Value)
		}
		p.buf.WriteByte(';')
	case *BreakStmt:
		p.buf.WriteString("break;")
	case *ContinueStmt:
		p.buf.WriteString("continue;")
	case *ExprStmt:
		p.expr(s.X)
		p.buf.WriteByte(';')
	}
}

// stmtNoSemi prints a simple statement without its trailing semicolon,
// for use in for-headers.
func (p *printer) stmtNoSemi(s Stmt) {
	var q printer
	q.stmt(s)
	p.buf.WriteString(strings.TrimSuffix(q.buf.String(), ";"))
}

func (p *printer) expr(e Expr) {
	switch e := e.(type) {
	case *IdentExpr:
		p.buf.WriteString(e.Name)
	case *IntLit:
		fmt.Fprintf(&p.buf, "%d", e.Value)
	case *BoolLit:
		fmt.Fprintf(&p.buf, "%t", e.Value)
	case *StringLit:
		fmt.Fprintf(&p.buf, "%q", e.Value)
	case *BinaryExpr:
		p.binaryOperand(e.X, e.Op, false)
		p.buf.WriteByte(' ')
		p.buf.WriteString(e.Op.String())
		p.buf.WriteByte(' ')
		p.binaryOperand(e.Y, e.Op, true)
	case *UnaryExpr:
		p.buf.WriteString(e.Op.String())
		if needsUnaryParens(e) {
			p.buf.WriteByte('(')
			p.expr(e.X)
			p.buf.WriteByte(')')
		} else {
			p.expr(e.X)
		}
	case *CallExpr:
		p.buf.WriteString(e.Callee.Name)
		p.buf.WriteByte('(')
		for i, a := range e.Args {
			if i > 0 {
				p.buf.WriteString(", ")
			}
			p.expr(a)
		}
		p.buf.WriteByte(')')
	case *IndexExpr:
		p.expr(e.X)
		p.buf.WriteByte('[')
		p.expr(e.Index)
		p.buf.WriteByte(']')
	case *ParenExpr:
		p.buf.WriteByte('(')
		p.expr(e.X)
		p.buf.WriteByte(')')
	}
}

// needsUnaryParens reports whether a unary operand must be parenthesized:
// binary children for precedence, and nested negations/negative literals so
// that "-(-x)" does not print as "--x" (the decrement token).
func needsUnaryParens(e *UnaryExpr) bool {
	switch x := e.X.(type) {
	case *BinaryExpr:
		return true
	case *UnaryExpr:
		return x.Op == e.Op
	case *IntLit:
		return x.Value < 0
	}
	return false
}

// binaryOperand prints a child of a binary expression, parenthesizing when
// the child binds looser than the parent (or equal, on the right side) so
// that the printed text re-parses to the same tree.
func (p *printer) binaryOperand(e Expr, parent token.Kind, right bool) {
	need := false
	if b, ok := e.(*BinaryExpr); ok {
		pp, cp := parent.Precedence(), b.Op.Precedence()
		need = cp < pp || (cp == pp && right)
	}
	if need {
		p.buf.WriteByte('(')
		p.expr(e)
		p.buf.WriteByte(')')
	} else {
		p.expr(e)
	}
}
