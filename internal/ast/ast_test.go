package ast_test

import (
	"strings"
	"testing"

	"statefulcc/internal/ast"
	"statefulcc/internal/parser"
	"statefulcc/internal/source"
	"statefulcc/internal/token"
)

func parseTree(t *testing.T, src string) *ast.File {
	t.Helper()
	var errs source.ErrorList
	tree := parser.ParseSource("t.mc", src, &errs)
	if errs.HasErrors() {
		t.Fatalf("parse: %v", errs)
	}
	return tree
}

func TestInspectEarlyStop(t *testing.T) {
	tree := parseTree(t, `func f(a int) int { return a + 1 * 2; }`)
	// Returning false on the FuncDecl must skip its entire subtree.
	visits := 0
	ast.Inspect(tree, func(n ast.Node) bool {
		visits++
		_, isFunc := n.(*ast.FuncDecl)
		return !isFunc
	})
	if visits != 2 { // File + FuncDecl
		t.Errorf("visits = %d, want 2", visits)
	}
	ast.Inspect(nil, func(ast.Node) bool { t.Fatal("visited nil"); return true })
}

func TestPrintHelpers(t *testing.T) {
	tree := parseTree(t, `
const K = 3;
func f(a int) int {
    if a > K { return a; }
    return -a;
}`)
	if s := ast.PrintDecl(tree.Decls[0]); !strings.Contains(s, "const K = 3;") {
		t.Errorf("PrintDecl: %q", s)
	}
	fn := tree.Decls[1].(*ast.FuncDecl)
	if s := ast.PrintStmt(fn.Body.Stmts[0]); !strings.Contains(s, "if a > K {") {
		t.Errorf("PrintStmt: %q", s)
	}
	ret := fn.Body.Stmts[1].(*ast.ReturnStmt)
	if s := ast.PrintExpr(ret.Value); s != "-a" {
		t.Errorf("PrintExpr: %q", s)
	}
}

func TestPrintPrecedenceMinimalParens(t *testing.T) {
	// The printer inserts parens only where re-parsing requires them.
	cases := map[string]string{
		"a + b * c":       "a + b * c",
		"(a + b) * c":     "(a + b) * c",
		"a - (b - c)":     "a - (b - c)",
		"a - b - c":       "a - b - c",
		"-(a + b)":        "-(a + b)",
		"!(x && y)":       "!(x && y)",
		"a * (b + c) * d": "a * (b + c) * d",
	}
	for src, want := range cases {
		var errs source.ErrorList
		e := parser.ParseExpr(src, &errs)
		if errs.HasErrors() {
			t.Fatalf("%q: %v", src, errs)
		}
		got := ast.PrintExpr(e)
		// Re-parse and compare structure via re-printing.
		var errs2 source.ErrorList
		e2 := parser.ParseExpr(got, &errs2)
		if errs2.HasErrors() {
			t.Fatalf("printed %q does not re-parse: %v", got, errs2)
		}
		if ast.PrintExpr(e2) != got {
			t.Errorf("%q: print not a fixed point (%q)", src, got)
		}
		_ = want
	}
}

func TestDeclNames(t *testing.T) {
	tree := parseTree(t, `
const C = 1;
var v int;
extern func e() int;
func f() { }`)
	want := []string{"C", "v", "e", "f"}
	for i, d := range tree.Decls {
		if d.DeclName() != want[i] {
			t.Errorf("decl %d name = %s, want %s", i, d.DeclName(), want[i])
		}
	}
}

func TestNodePositions(t *testing.T) {
	tree := parseTree(t, "func f() { return; }")
	ast.Inspect(tree, func(n ast.Node) bool {
		if _, isFile := n.(*ast.File); isFile {
			return true
		}
		if !n.Pos().IsValid() {
			t.Errorf("%T has invalid position", n)
		}
		return true
	})
}

func TestTokenKindsInAST(t *testing.T) {
	tree := parseTree(t, `func f(b bool) { var x int = 1; x += 2; }`)
	fn := tree.Decls[0].(*ast.FuncDecl)
	as := fn.Body.Stmts[1].(*ast.AssignStmt)
	if as.Op != token.ADDASSIGN {
		t.Errorf("op = %v", as.Op)
	}
}
