// Package ast defines the abstract syntax tree of the MiniC language.
//
// The grammar is deliberately C-like: a file is a sequence of declarations
// (functions, global variables, constants, and extern function prototypes);
// statements and expressions follow C with Go-flavoured spelling. Every
// node carries its source position for diagnostics.
package ast

import (
	"statefulcc/internal/source"
	"statefulcc/internal/token"
)

// Node is the interface implemented by all AST nodes.
type Node interface {
	Pos() source.Pos
}

// ---------------------------------------------------------------------------
// Types (syntactic type expressions)

// TypeExpr is a syntactic type: int, bool, or [N]int.
type TypeExpr interface {
	Node
	typeExpr()
}

// ScalarType is "int" or "bool".
type ScalarType struct {
	TokPos source.Pos
	Kind   token.Kind // token.INTTYPE or token.BOOLTYPE
}

// ArrayType is "[N]int" — fixed-size arrays of int.
type ArrayType struct {
	LbrackPos source.Pos
	Len       int64
	Elem      *ScalarType
}

func (t *ScalarType) Pos() source.Pos { return t.TokPos }
func (t *ArrayType) Pos() source.Pos  { return t.LbrackPos }
func (*ScalarType) typeExpr()         {}
func (*ArrayType) typeExpr()          {}

// ---------------------------------------------------------------------------
// Declarations

// File is one parsed compilation unit.
type File struct {
	Name  string
	Decls []Decl
}

// Pos returns the position of the first declaration, or NoPos when empty.
func (f *File) Pos() source.Pos {
	if len(f.Decls) > 0 {
		return f.Decls[0].Pos()
	}
	return source.NoPos
}

// Decl is a top-level declaration.
type Decl interface {
	Node
	decl()
	// DeclName returns the declared identifier.
	DeclName() string
}

// Param is one function parameter.
type Param struct {
	NamePos source.Pos
	Name    string
	Type    TypeExpr
}

func (p *Param) Pos() source.Pos { return p.NamePos }

// FuncDecl is "func name(params) ret? { body }".
type FuncDecl struct {
	FuncPos source.Pos
	Name    string
	Params  []*Param
	Result  TypeExpr // nil for void
	Body    *BlockStmt
}

// ExternDecl is "extern func name(params) ret?;" — a prototype for a
// function defined in another compilation unit.
type ExternDecl struct {
	ExternPos source.Pos
	Name      string
	Params    []*Param
	Result    TypeExpr // nil for void
}

// VarDecl is a global "var name type (= const)?;". Inside function bodies
// the same node appears wrapped in a DeclStmt.
type VarDecl struct {
	VarPos source.Pos
	Name   string
	Type   TypeExpr
	Init   Expr // optional; must be constant for globals
}

// ConstDecl is "const name = constexpr;" — an int constant.
type ConstDecl struct {
	ConstPos source.Pos
	Name     string
	Value    Expr
}

func (d *FuncDecl) Pos() source.Pos   { return d.FuncPos }
func (d *ExternDecl) Pos() source.Pos { return d.ExternPos }
func (d *VarDecl) Pos() source.Pos    { return d.VarPos }
func (d *ConstDecl) Pos() source.Pos  { return d.ConstPos }

func (*FuncDecl) decl()   {}
func (*ExternDecl) decl() {}
func (*VarDecl) decl()    {}
func (*ConstDecl) decl()  {}

func (d *FuncDecl) DeclName() string   { return d.Name }
func (d *ExternDecl) DeclName() string { return d.Name }
func (d *VarDecl) DeclName() string    { return d.Name }
func (d *ConstDecl) DeclName() string  { return d.Name }

// ---------------------------------------------------------------------------
// Statements

// Stmt is a statement node.
type Stmt interface {
	Node
	stmt()
}

// BlockStmt is "{ stmts }".
type BlockStmt struct {
	LbracePos source.Pos
	Stmts     []Stmt
}

// DeclStmt wraps a local VarDecl used as a statement.
type DeclStmt struct {
	Decl *VarDecl
}

// AssignStmt is "lhs op rhs;" where op is "=" or a compound assignment.
// For "x++" / "x--" the parser desugars to "x += 1" / "x -= 1".
type AssignStmt struct {
	Lhs Expr // IdentExpr or IndexExpr
	Op  token.Kind
	Rhs Expr
}

// IfStmt is "if cond { } else ..." — Else is nil, a BlockStmt, or an IfStmt.
type IfStmt struct {
	IfPos source.Pos
	Cond  Expr
	Then  *BlockStmt
	Else  Stmt
}

// WhileStmt is "while cond { body }".
type WhileStmt struct {
	WhilePos source.Pos
	Cond     Expr
	Body     *BlockStmt
}

// ForStmt is "for init; cond; post { body }"; any of the three may be nil.
type ForStmt struct {
	ForPos source.Pos
	Init   Stmt // DeclStmt or AssignStmt
	Cond   Expr
	Post   Stmt // AssignStmt
	Body   *BlockStmt
}

// ReturnStmt is "return expr?;".
type ReturnStmt struct {
	ReturnPos source.Pos
	Value     Expr // nil for void return
}

// BreakStmt is "break;".
type BreakStmt struct{ BreakPos source.Pos }

// ContinueStmt is "continue;".
type ContinueStmt struct{ ContinuePos source.Pos }

// ExprStmt is an expression evaluated for effect (a call).
type ExprStmt struct {
	X Expr
}

func (s *BlockStmt) Pos() source.Pos    { return s.LbracePos }
func (s *DeclStmt) Pos() source.Pos     { return s.Decl.Pos() }
func (s *AssignStmt) Pos() source.Pos   { return s.Lhs.Pos() }
func (s *IfStmt) Pos() source.Pos       { return s.IfPos }
func (s *WhileStmt) Pos() source.Pos    { return s.WhilePos }
func (s *ForStmt) Pos() source.Pos      { return s.ForPos }
func (s *ReturnStmt) Pos() source.Pos   { return s.ReturnPos }
func (s *BreakStmt) Pos() source.Pos    { return s.BreakPos }
func (s *ContinueStmt) Pos() source.Pos { return s.ContinuePos }
func (s *ExprStmt) Pos() source.Pos     { return s.X.Pos() }

func (*BlockStmt) stmt()    {}
func (*DeclStmt) stmt()     {}
func (*AssignStmt) stmt()   {}
func (*IfStmt) stmt()       {}
func (*WhileStmt) stmt()    {}
func (*ForStmt) stmt()      {}
func (*ReturnStmt) stmt()   {}
func (*BreakStmt) stmt()    {}
func (*ContinueStmt) stmt() {}
func (*ExprStmt) stmt()     {}

// ---------------------------------------------------------------------------
// Expressions

// Expr is an expression node.
type Expr interface {
	Node
	expr()
}

// IdentExpr is a name use.
type IdentExpr struct {
	NamePos source.Pos
	Name    string
}

// IntLit is an integer literal.
type IntLit struct {
	LitPos source.Pos
	Value  int64
}

// BoolLit is "true" or "false".
type BoolLit struct {
	LitPos source.Pos
	Value  bool
}

// StringLit appears only as the first argument of print.
type StringLit struct {
	LitPos source.Pos
	Value  string
}

// BinaryExpr is "x op y".
type BinaryExpr struct {
	X  Expr
	Op token.Kind
	Y  Expr
}

// UnaryExpr is "op x" for op in {-, !, ^}.
type UnaryExpr struct {
	OpPos source.Pos
	Op    token.Kind
	X     Expr
}

// CallExpr is "callee(args)". Builtins (print, assert) are calls too.
type CallExpr struct {
	Callee *IdentExpr
	Args   []Expr
	Rparen source.Pos
}

// IndexExpr is "arr[i]".
type IndexExpr struct {
	X     Expr // IdentExpr naming an array
	Index Expr
}

// ParenExpr is "(x)"; kept so the printer round-trips faithfully.
type ParenExpr struct {
	LparenPos source.Pos
	X         Expr
}

func (e *IdentExpr) Pos() source.Pos  { return e.NamePos }
func (e *IntLit) Pos() source.Pos     { return e.LitPos }
func (e *BoolLit) Pos() source.Pos    { return e.LitPos }
func (e *StringLit) Pos() source.Pos  { return e.LitPos }
func (e *BinaryExpr) Pos() source.Pos { return e.X.Pos() }
func (e *UnaryExpr) Pos() source.Pos  { return e.OpPos }
func (e *CallExpr) Pos() source.Pos   { return e.Callee.Pos() }
func (e *IndexExpr) Pos() source.Pos  { return e.X.Pos() }
func (e *ParenExpr) Pos() source.Pos  { return e.LparenPos }

func (*IdentExpr) expr()  {}
func (*IntLit) expr()     {}
func (*BoolLit) expr()    {}
func (*StringLit) expr()  {}
func (*BinaryExpr) expr() {}
func (*UnaryExpr) expr()  {}
func (*CallExpr) expr()   {}
func (*IndexExpr) expr()  {}
func (*ParenExpr) expr()  {}

// ---------------------------------------------------------------------------
// Traversal

// Inspect walks the tree rooted at n in depth-first order, calling f for
// each node; if f returns false the node's children are skipped.
func Inspect(n Node, f func(Node) bool) {
	if n == nil || !f(n) {
		return
	}
	switch n := n.(type) {
	case *File:
		for _, d := range n.Decls {
			Inspect(d, f)
		}
	case *FuncDecl:
		for _, p := range n.Params {
			Inspect(p, f)
		}
		if n.Result != nil {
			Inspect(n.Result, f)
		}
		Inspect(n.Body, f)
	case *ExternDecl:
		for _, p := range n.Params {
			Inspect(p, f)
		}
		if n.Result != nil {
			Inspect(n.Result, f)
		}
	case *VarDecl:
		Inspect(n.Type, f)
		if n.Init != nil {
			Inspect(n.Init, f)
		}
	case *ConstDecl:
		Inspect(n.Value, f)
	case *Param:
		Inspect(n.Type, f)
	case *ArrayType:
		Inspect(n.Elem, f)
	case *BlockStmt:
		for _, s := range n.Stmts {
			Inspect(s, f)
		}
	case *DeclStmt:
		Inspect(n.Decl, f)
	case *AssignStmt:
		Inspect(n.Lhs, f)
		Inspect(n.Rhs, f)
	case *IfStmt:
		Inspect(n.Cond, f)
		Inspect(n.Then, f)
		if n.Else != nil {
			Inspect(n.Else, f)
		}
	case *WhileStmt:
		Inspect(n.Cond, f)
		Inspect(n.Body, f)
	case *ForStmt:
		if n.Init != nil {
			Inspect(n.Init, f)
		}
		if n.Cond != nil {
			Inspect(n.Cond, f)
		}
		if n.Post != nil {
			Inspect(n.Post, f)
		}
		Inspect(n.Body, f)
	case *ReturnStmt:
		if n.Value != nil {
			Inspect(n.Value, f)
		}
	case *ExprStmt:
		Inspect(n.X, f)
	case *BinaryExpr:
		Inspect(n.X, f)
		Inspect(n.Y, f)
	case *UnaryExpr:
		Inspect(n.X, f)
	case *CallExpr:
		Inspect(n.Callee, f)
		for _, a := range n.Args {
			Inspect(a, f)
		}
	case *IndexExpr:
		Inspect(n.X, f)
		Inspect(n.Index, f)
	case *ParenExpr:
		Inspect(n.X, f)
	case *ScalarType, *IdentExpr, *IntLit, *BoolLit, *StringLit, *BreakStmt, *ContinueStmt:
		// leaves
	}
}
