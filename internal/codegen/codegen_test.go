package codegen_test

import (
	"strings"
	"testing"

	"statefulcc/internal/codegen"
	"statefulcc/internal/ir"
	"statefulcc/internal/passes"
	"statefulcc/internal/testutil"
	"statefulcc/internal/vm"
)

func compileUnit(t *testing.T, src string) *codegen.Object {
	t.Helper()
	return compileNamed(t, "u.mc", src)
}

func compileNamed(t *testing.T, unit, src string) *codegen.Object {
	t.Helper()
	m, err := testutil.BuildModule(unit, src)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := codegen.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	return obj
}

func TestObjectShape(t *testing.T) {
	obj := compileUnit(t, `
var g int = 7;
var arr [4]int;
extern func ext(x int) int;
func f(a int) int { return ext(a) + g + arr[0]; }
func main() int { return f(1); }`)
	if len(obj.Funcs) != 2 {
		t.Errorf("funcs = %d, want 2", len(obj.Funcs))
	}
	if len(obj.Globals) != 2 {
		t.Errorf("globals = %d, want 2", len(obj.Globals))
	}
	if len(obj.Relocs) == 0 {
		t.Error("no call relocations recorded")
	}
	if len(obj.GlobalRelocs) == 0 {
		t.Error("no global relocations recorded")
	}
	if len(obj.Externs) != 1 || obj.Externs[0] != "ext" {
		t.Errorf("externs = %v", obj.Externs)
	}
}

func TestLinkerDoesNotMutateObjects(t *testing.T) {
	// Linking the same objects twice must work identically — the build
	// system caches objects across builds, so the linker must copy before
	// patching.
	objA := compileNamed(t, "a.mc", `func lib(x int) int { return x + 1; }`)
	objB := compileNamed(t, "b.mc", `extern func lib(x int) int; func main() int { return lib(41); }`)

	run := func() int64 {
		p, err := codegen.Link([]*codegen.Object{objA, objB})
		if err != nil {
			t.Fatal(err)
		}
		res, err := vm.Run(p, vm.Config{})
		if err != nil {
			t.Fatal(err)
		}
		return res.ExitValue
	}
	if a, b := run(), run(); a != b || a != 42 {
		t.Errorf("relink results: %d then %d, want 42 both times", a, b)
	}

	// A third unit shifts layout; relinking with different sets must still
	// produce correct code from the shared cached objects.
	objC := compileNamed(t, "c.mc", `var pad [32]int; func pad_user() int { return pad[3]; }`)
	p, err := codegen.Link([]*codegen.Object{objC, objA, objB})
	if err != nil {
		t.Fatal(err)
	}
	res, err := vm.Run(p, vm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitValue != 42 {
		t.Errorf("after layout shift: %d, want 42", res.ExitValue)
	}
	if a := run(); a != 42 {
		t.Errorf("original link broken after third-unit link: %d", a)
	}
}

func TestDeterministicLinkOrder(t *testing.T) {
	objA := compileNamed(t, "a.mc", `var ga int = 1; func fa() int { return ga; }`)
	objB := compileNamed(t, "b.mc", `var gb int = 2; extern func fa() int; func main() int { return fa() + gb; }`)
	p1, err := codegen.Link([]*codegen.Object{objA, objB})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := codegen.Link([]*codegen.Object{objB, objA})
	if err != nil {
		t.Fatal(err)
	}
	if p1.GlobalIndex["ga"] != p2.GlobalIndex["ga"] {
		t.Error("global layout depends on object order")
	}
	if p1.FuncIndex["fa"] != p2.FuncIndex["fa"] {
		t.Error("function layout depends on object order")
	}
}

func TestPhiLoweringTrampolines(t *testing.T) {
	// After mem2reg, loop-carried values become phis whose critical edges
	// need trampolines; verify the lowered program computes correctly.
	m, err := testutil.BuildModule("u.mc", `
func collatz(n int) int {
    var steps int = 0;
    while n != 1 {
        if n % 2 == 0 { n /= 2; } else { n = 3 * n + 1; }
        steps++;
    }
    return steps;
}
func main() int { return collatz(27); }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := passes.RunPipeline(m, passes.StandardPipeline); err != nil {
		t.Fatal(err)
	}
	// Confirm phis actually exist post-optimization (the test is vacuous
	// otherwise).
	phis := 0
	for _, f := range m.Funcs {
		f.ForEachValue(func(v *ir.Value) {
			if v.Op == ir.OpPhi {
				phis++
			}
		})
	}
	if phis == 0 {
		t.Fatal("expected phis in optimized collatz")
	}
	obj, err := codegen.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	p, err := codegen.Link([]*codegen.Object{obj})
	if err != nil {
		t.Fatal(err)
	}
	res, err := vm.Run(p, vm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitValue != 111 {
		t.Errorf("collatz(27) = %d, want 111", res.ExitValue)
	}
}

func TestParallelPhiCopies(t *testing.T) {
	// Swapping phis (a,b) = (b,a) in a loop is the classic parallel-copy
	// trap: naive sequential copies corrupt one value.
	src := `
func swapper(n int) int {
    var a int = 1;
    var b int = 2;
    for var i int = 0; i < n; i++ {
        var t int = a;
        a = b;
        b = t;
    }
    return a * 10 + b;
}
func main() int { return swapper(5); }`
	m, err := testutil.BuildModule("u.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	// mem2reg alone gives the phi-swap shape without later passes
	// simplifying it away.
	p, err := passes.NewFuncPass("mem2reg")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range m.Funcs {
		p.Run(f)
	}
	obj, err := codegen.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := codegen.Link([]*codegen.Object{obj})
	if err != nil {
		t.Fatal(err)
	}
	res, err := vm.Run(prog, vm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// 5 swaps from (1,2): odd count → (2,1) → 21.
	if res.ExitValue != 21 {
		t.Errorf("swapper(5) = %d, want 21", res.ExitValue)
	}
}

func TestOpcodeStrings(t *testing.T) {
	names := map[codegen.Opcode]string{
		codegen.IConst: "const", codegen.IMov: "mov", codegen.IBin: "bin",
		codegen.ICall: "call", codegen.IRet: "ret", codegen.IBr: "br",
	}
	for op, want := range names {
		if got := op.String(); got != want {
			t.Errorf("opcode %d = %q, want %q", op, got, want)
		}
	}
	if s := codegen.Opcode(200).String(); !strings.Contains(s, "200") {
		t.Errorf("unknown opcode string: %s", s)
	}
}

func TestFrameWords(t *testing.T) {
	obj := compileUnit(t, `
func f() int {
    var a [10]int;
    a[3] = 5;
    return a[3];
}
func main() int { return f(); }`)
	var f *codegen.FuncCode
	for _, fc := range obj.Funcs {
		if fc.Name == "f" {
			f = fc
		}
	}
	if f == nil {
		t.Fatal("no f")
	}
	if f.AllocaWords < 10 {
		t.Errorf("alloca words = %d, want >= 10", f.AllocaWords)
	}
	if f.FrameWords() != f.NumSlots+f.AllocaWords {
		t.Error("FrameWords inconsistent")
	}
}

func TestDisassembler(t *testing.T) {
	obj := compileUnit(t, `
var g int = 3;
func f(x int) int {
    var a [2]int;
    a[0] = x;
    print("v", a[0]);
    assert(x != 0, "nonzero");
    if x > 0 { return g; }
    return helper(x);
}
extern func helper(x int) int;
func main() int { return f(1); }`)
	asm := codegen.DisassembleObject(obj)
	for _, want := range []string{
		"object", "global g", "extern helper", "func f:", "lea fp+",
		"idx", "load", "store", "br s", "ret s", `print "v"`,
		`assert s`, "; -> @helper", "; -> @g",
	} {
		if !strings.Contains(asm, want) {
			t.Errorf("disassembly missing %q:\n%s", want, asm)
		}
	}
	p, err := codegen.Link([]*codegen.Object{obj,
		compileNamed(t, "h.mc", `func helper(x int) int { return x; }`)})
	if err != nil {
		t.Fatal(err)
	}
	pasm := codegen.DisassembleProgram(p)
	if !strings.Contains(pasm, "program:") || !strings.Contains(pasm, "call #") {
		t.Errorf("program disassembly broken:\n%s", pasm)
	}
	if pasm != codegen.DisassembleProgram(p) {
		t.Error("disassembly nondeterministic")
	}
}

func TestOptimizedVsUnoptimizedCodegen(t *testing.T) {
	// The same source must behave identically when codegen consumes
	// memory-form IR and fully optimized IR.
	src := `
func main() int {
    var acc int = 0;
    for var i int = 1; i <= 6; i++ {
        acc += i * i;
    }
    print("acc", acc);
    return acc % 100;
}`
	out1, exit1, err := testutil.RunSource(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	out2, exit2, err := testutil.RunSource(src, func(m *ir.Module) error {
		_, err := passes.RunPipeline(m, passes.StandardPipeline)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if out1 != out2 || exit1 != exit2 {
		t.Errorf("codegen differs across IR forms: %q/%d vs %q/%d", out1, exit1, out2, exit2)
	}
}
