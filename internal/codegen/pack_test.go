package codegen_test

import (
	"testing"

	"statefulcc/internal/codegen"
	"statefulcc/internal/passes"
	"statefulcc/internal/testutil"
	"statefulcc/internal/vm"
	"statefulcc/internal/workload"
)

// compileBoth compiles the module with and without slot packing.
func compileBoth(t *testing.T, src string) (packed, plain *codegen.Object) {
	t.Helper()
	build := func(opts codegen.Options) *codegen.Object {
		m, err := testutil.BuildModule("u.mc", src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := passes.RunPipeline(m, passes.StandardPipeline); err != nil {
			t.Fatal(err)
		}
		obj, err := codegen.CompileWithOptions(m, opts)
		if err != nil {
			t.Fatal(err)
		}
		return obj
	}
	return build(codegen.Options{}), build(codegen.Options{DisableSlotPacking: true})
}

const packSrc = `
func chain(n int) int {
    var a int = n + 1;
    var b int = a * 2;
    var c int = b - 3;
    var d int = c * c;
    var e int = d + a;
    var f int = e % 97;
    var g int = f << 2;
    var h int = g ^ 15;
    return h;
}
func loopy(n int) int {
    var acc int = 0;
    for var i int = 0; i < n; i++ {
        var t1 int = i * 3;
        var t2 int = t1 + 7;
        var t3 int = t2 % 13;
        acc += t3;
    }
    return acc;
}
func main() int { return chain(5) + loopy(20); }
`

func TestPackingShrinksFrames(t *testing.T) {
	packed, plain := compileBoth(t, packSrc)
	shrunk := false
	for i, pf := range packed.Funcs {
		uf := plain.Funcs[i]
		if pf.NumSlots > uf.NumSlots {
			t.Errorf("func %s: packing grew slots %d -> %d", pf.Name, uf.NumSlots, pf.NumSlots)
		}
		if pf.NumSlots < uf.NumSlots {
			shrunk = true
		}
	}
	if !shrunk {
		t.Error("packing never reduced any frame")
	}
}

func TestPackingPreservesBehaviour(t *testing.T) {
	packed, plain := compileBoth(t, packSrc)
	run := func(obj *codegen.Object) (string, int64, int) {
		p, err := codegen.Link([]*codegen.Object{obj})
		if err != nil {
			t.Fatal(err)
		}
		out, res, err := vm.RunCapture(p, vm.Config{})
		if err != nil {
			t.Fatal(err)
		}
		return out, res.ExitValue, res.MaxStack
	}
	o1, e1, stack1 := run(packed)
	o2, e2, stack2 := run(plain)
	if o1 != o2 || e1 != e2 {
		t.Errorf("packing changed behaviour: %q/%d vs %q/%d", o1, e1, o2, e2)
	}
	if stack1 > stack2 {
		t.Errorf("packed stack %d > plain stack %d", stack1, stack2)
	}
}

// TestPackingDifferentialOnGenerated runs packed vs unpacked codegen over
// generated projects (memory form and optimized), comparing behaviour.
func TestPackingDifferentialOnGenerated(t *testing.T) {
	for _, seed := range []int64{3, 17, 29} {
		profile := workload.Profile{
			Name: "pack", Seed: seed,
			Files: 3, FuncsPerFileMin: 3, FuncsPerFileMax: 6,
			StmtsPerFuncMin: 4, StmtsPerFuncMax: 9,
			GlobalsPerFile: 2, CrossFileCallFrac: 0.5, PrivateFrac: 0.3,
		}
		snap := workload.Generate(profile)
		for _, optimize := range []bool{false, true} {
			run := func(opts codegen.Options) (string, int64) {
				var objs []*codegen.Object
				for _, unit := range snap.Units() {
					m, err := testutil.BuildModule(unit, string(snap[unit]))
					if err != nil {
						t.Fatal(err)
					}
					if optimize {
						if _, err := passes.RunPipeline(m, passes.StandardPipeline); err != nil {
							t.Fatal(err)
						}
					}
					obj, err := codegen.CompileWithOptions(m, opts)
					if err != nil {
						t.Fatal(err)
					}
					objs = append(objs, obj)
				}
				p, err := codegen.Link(objs)
				if err != nil {
					t.Fatal(err)
				}
				out, res, err := vm.RunCapture(p, vm.Config{})
				if err != nil {
					t.Fatal(err)
				}
				return out, res.ExitValue
			}
			o1, e1 := run(codegen.Options{})
			o2, e2 := run(codegen.Options{DisableSlotPacking: true})
			if o1 != o2 || e1 != e2 {
				t.Fatalf("seed %d optimize=%t: packing diverged:\n%q/%d\nvs\n%q/%d",
					seed, optimize, o1, e1, o2, e2)
			}
		}
	}
}

// TestPackingPhiHeavy targets the parallel-copy interaction: loop-carried
// phis whose sources and destinations could alias if interference were
// wrong.
func TestPackingPhiHeavy(t *testing.T) {
	src := `
func rotate3(n int) int {
    var a int = 1;
    var b int = 2;
    var c int = 3;
    for var i int = 0; i < n; i++ {
        var t int = a;
        a = b;
        b = c;
        c = t;
    }
    return a * 100 + b * 10 + c;
}
func main() int { return rotate3(4); }`
	m, err := testutil.BuildModule("u.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	// mem2reg only: maximal phi pressure, no simplification.
	p, _ := passes.NewFuncPass("mem2reg")
	for _, f := range m.Funcs {
		p.Run(f)
	}
	obj, err := codegen.CompileWithOptions(m, codegen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := codegen.Link([]*codegen.Object{obj})
	if err != nil {
		t.Fatal(err)
	}
	res, err := vm.Run(prog, vm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// 4 rotations of (1,2,3): each rotation (a,b,c) = (b,c,a);
	// after 4: (2,3,1) → 231.
	if res.ExitValue != 231 {
		t.Errorf("rotate3(4) = %d, want 231", res.ExitValue)
	}
}

// TestPackingDeterministic: packed slot assignment must be reproducible.
func TestPackingDeterministic(t *testing.T) {
	a, _ := compileBoth(t, packSrc)
	b, _ := compileBoth(t, packSrc)
	for i := range a.Funcs {
		if a.Funcs[i].NumSlots != b.Funcs[i].NumSlots {
			t.Fatalf("func %s: slot counts differ across runs", a.Funcs[i].Name)
		}
		if len(a.Funcs[i].Code) != len(b.Funcs[i].Code) {
			t.Fatalf("func %s: code length differs", a.Funcs[i].Name)
		}
		for pc := range a.Funcs[i].Code {
			if !packEqualInstr(a.Funcs[i].Code[pc], b.Funcs[i].Code[pc]) {
				t.Fatalf("func %s pc %d: instruction differs across runs", a.Funcs[i].Name, pc)
			}
		}
	}
}

func packEqualInstr(x, y codegen.Instr) bool {
	if x.Op != y.Op || x.Sub != y.Sub || x.A != y.A || x.B != y.B || x.C != y.C ||
		x.Imm != y.Imm || x.Imm2 != y.Imm2 || x.StrIdx != y.StrIdx || len(x.Args) != len(y.Args) {
		return false
	}
	for i := range x.Args {
		if x.Args[i] != y.Args[i] {
			return false
		}
	}
	return true
}
