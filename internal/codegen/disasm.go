package codegen

// Bytecode disassembler — the tooling face of the backend, surfaced through
// `minicc -emit-asm`. The format is line-oriented and stable so golden
// tests can rely on it.

import (
	"fmt"
	"strings"

	"statefulcc/internal/ir"
)

// Disassemble renders one function's bytecode.
func (f *FuncCode) Disassemble(strtab []string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s: params=%d slots=%d alloca=%d\n",
		f.Name, f.NumParams, f.NumSlots, f.AllocaWords)
	for pc, in := range f.Code {
		fmt.Fprintf(&sb, "  %4d: %s\n", pc, disasmInstr(in, strtab))
	}
	return sb.String()
}

// DisassembleObject renders a whole object with its relocation tables.
func DisassembleObject(o *Object) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "object %q\n", o.Unit)
	for _, g := range o.Globals {
		fmt.Fprintf(&sb, "global %s: %d word(s), init %d\n", g.Name, g.Words, g.Init)
	}
	for _, x := range o.Externs {
		fmt.Fprintf(&sb, "extern %s\n", x)
	}
	// Index relocations for inline annotation.
	type site struct{ fn, pc int }
	callSym := map[site]string{}
	for _, r := range o.Relocs {
		callSym[site{r.Func, r.Pc}] = r.Symbol
	}
	globSym := map[site]string{}
	for _, r := range o.GlobalRelocs {
		globSym[site{r.Func, r.Pc}] = r.Symbol
	}
	for fi, f := range o.Funcs {
		fmt.Fprintf(&sb, "\nfunc %s: params=%d slots=%d alloca=%d\n",
			f.Name, f.NumParams, f.NumSlots, f.AllocaWords)
		for pc, in := range f.Code {
			line := disasmInstr(in, o.Strings)
			if sym, ok := callSym[site{fi, pc}]; ok {
				line += " ; -> @" + sym
			}
			if sym, ok := globSym[site{fi, pc}]; ok {
				line += " ; -> @" + sym
			}
			fmt.Fprintf(&sb, "  %4d: %s\n", pc, line)
		}
	}
	return sb.String()
}

// DisassembleProgram renders a linked program.
func DisassembleProgram(p *Program) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "program: %d functions, %d global words, entry #%d\n",
		len(p.Funcs), p.GlobalWords, p.EntryIndex)
	for _, f := range p.Funcs {
		sb.WriteByte('\n')
		sb.WriteString(f.Disassemble(p.Strings))
	}
	return sb.String()
}

func disasmInstr(in Instr, strtab []string) string {
	str := func(idx int32) string {
		if idx >= 0 && int(idx) < len(strtab) {
			return fmt.Sprintf("%q", strtab[idx])
		}
		return ""
	}
	args := func() string {
		parts := make([]string, len(in.Args))
		for i, a := range in.Args {
			parts[i] = fmt.Sprintf("s%d", a)
		}
		return strings.Join(parts, ", ")
	}
	switch in.Op {
	case INop:
		return "nop"
	case IConst:
		return fmt.Sprintf("s%d = const %d", in.A, in.Imm)
	case IMov:
		return fmt.Sprintf("s%d = s%d", in.A, in.B)
	case IBin:
		return fmt.Sprintf("s%d = %s s%d, s%d", in.A, ir.Op(in.Sub), in.B, in.C)
	case IUn:
		return fmt.Sprintf("s%d = %s s%d", in.A, ir.Op(in.Sub), in.B)
	case ILea:
		return fmt.Sprintf("s%d = lea fp+%d", in.A, in.Imm)
	case IGAddr:
		return fmt.Sprintf("s%d = gaddr %d", in.A, in.Imm)
	case IIdx:
		return fmt.Sprintf("s%d = idx s%d[s%d] (len %d)", in.A, in.B, in.C, in.Imm)
	case ILoad:
		return fmt.Sprintf("s%d = load [s%d]", in.A, in.B)
	case IStore:
		return fmt.Sprintf("store [s%d] = s%d", in.A, in.B)
	case ICall:
		dst := "_"
		if in.A >= 0 {
			dst = fmt.Sprintf("s%d", in.A)
		}
		return fmt.Sprintf("%s = call #%d(%s)", dst, in.Imm, args())
	case IRet:
		if in.A >= 0 {
			return fmt.Sprintf("ret s%d", in.A)
		}
		return "ret"
	case IJmp:
		return fmt.Sprintf("jmp %d", in.Imm)
	case IBr:
		return fmt.Sprintf("br s%d ? %d : %d", in.A, in.Imm, in.Imm2)
	case IPrint:
		s := "print"
		if lbl := str(in.StrIdx); lbl != "" {
			s += " " + lbl
		}
		if len(in.Args) > 0 {
			s += " " + args()
		}
		return s
	case IAssert:
		s := fmt.Sprintf("assert s%d", in.A)
		if msg := str(in.StrIdx); msg != "" {
			s += " " + msg
		}
		return s
	default:
		return fmt.Sprintf("opcode(%d)", in.Op)
	}
}
