package codegen

// The linker combines compiled objects into an executable Program: it lays
// out the global segment, assigns program-wide function indices, merges
// string tables, and patches call and global-address relocations. Objects
// are never mutated — the build system caches them across builds — so every
// patched function body is copied first.

import (
	"fmt"
	"sort"
)

// Link combines objects into a runnable program. Objects may arrive in any
// order; layout is made deterministic by sorting on unit name.
func Link(objects []*Object) (*Program, error) {
	objs := make([]*Object, len(objects))
	copy(objs, objects)
	sort.SliceStable(objs, func(i, j int) bool { return objs[i].Unit < objs[j].Unit })

	p := &Program{
		FuncIndex:   make(map[string]int),
		GlobalIndex: make(map[string]int),
		EntryIndex:  -1,
	}

	// Pass 1: lay out globals and functions.
	for _, o := range objs {
		for _, g := range o.Globals {
			if _, dup := p.GlobalIndex[g.Name]; dup {
				return nil, fmt.Errorf("link: duplicate global %s (unit %s)", g.Name, o.Unit)
			}
			p.GlobalIndex[g.Name] = p.GlobalWords
			for w := int64(0); w < g.Words; w++ {
				v := int64(0)
				if w == 0 && g.Words == 1 {
					v = g.Init
				}
				p.GlobalInit = append(p.GlobalInit, v)
			}
			p.GlobalWords += int(g.Words)
		}
		for _, f := range o.Funcs {
			if _, dup := p.FuncIndex[f.Name]; dup {
				return nil, fmt.Errorf("link: duplicate function %s (unit %s)", f.Name, o.Unit)
			}
			p.FuncIndex[f.Name] = len(p.Funcs)
			p.Funcs = append(p.Funcs, f) // replaced by a patched copy below
		}
	}

	// Pass 2: copy function bodies, remap strings, patch relocations.
	for _, o := range objs {
		strMap := make([]int32, len(o.Strings))
		for i, s := range o.Strings {
			strMap[i] = p.internString(s)
		}
		// Index this object's relocations by (func, pc).
		type site struct{ fn, pc int }
		callSym := make(map[site]string)
		for _, r := range o.Relocs {
			callSym[site{r.Func, r.Pc}] = r.Symbol
		}
		globSym := make(map[site]string)
		for _, r := range o.GlobalRelocs {
			globSym[site{r.Func, r.Pc}] = r.Symbol
		}

		for fi, f := range o.Funcs {
			nf := *f
			nf.Code = make([]Instr, len(f.Code))
			copy(nf.Code, f.Code)
			for pc := range nf.Code {
				in := &nf.Code[pc]
				if in.StrIdx >= 0 {
					in.StrIdx = strMap[in.StrIdx]
				}
				switch in.Op {
				case ICall:
					sym := callSym[site{fi, pc}]
					idx, ok := p.FuncIndex[sym]
					if !ok {
						return nil, fmt.Errorf("link: undefined function %s (called from %s in unit %s)",
							sym, f.Name, o.Unit)
					}
					callee := p.Funcs[idx]
					if len(in.Args) != callee.NumParams {
						return nil, fmt.Errorf("link: %s calls %s with %d args, want %d",
							f.Name, sym, len(in.Args), callee.NumParams)
					}
					in.Imm = int64(idx)
				case IGAddr:
					sym := globSym[site{fi, pc}]
					addr, ok := p.GlobalIndex[sym]
					if !ok {
						return nil, fmt.Errorf("link: undefined global %s (used by %s in unit %s)",
							sym, f.Name, o.Unit)
					}
					in.Imm = int64(addr)
				}
			}
			p.Funcs[p.FuncIndex[f.Name]] = &nf
		}
	}

	if idx, ok := p.FuncIndex["main"]; ok {
		p.EntryIndex = idx
		if p.Funcs[idx].NumParams != 0 {
			return nil, fmt.Errorf("link: main must take no parameters")
		}
	} else {
		return nil, fmt.Errorf("link: no main function")
	}
	return p, nil
}

func (p *Program) internString(s string) int32 {
	for i, t := range p.Strings {
		if t == s {
			return int32(i)
		}
	}
	p.Strings = append(p.Strings, s)
	return int32(len(p.Strings) - 1)
}
