package codegen

// IR → bytecode lowering. Phi nodes are eliminated during emission: each CFG
// edge into a block with phis gets a parallel-copy sequence, placed either
// at the end of the predecessor (single-successor preds) or in a trampoline
// appended after the main code (the bytecode equivalent of critical-edge
// splitting). The IR itself is never mutated, so cached IR stays valid.

import (
	"fmt"

	"statefulcc/internal/ir"
)

// Options configures code generation.
type Options struct {
	// DisableSlotPacking turns off the liveness-driven frame-slot packing
	// (see pack.go); used by the packing ablation.
	DisableSlotPacking bool
}

// Compile lowers a whole module to an object file with default options
// (slot packing enabled).
func Compile(m *ir.Module) (*Object, error) {
	return CompileWithOptions(m, Options{})
}

// CompileWithOptions lowers a whole module to an object file.
func CompileWithOptions(m *ir.Module, opts Options) (*Object, error) {
	obj := &Object{Unit: m.Unit}
	obj.Externs = append(obj.Externs, m.Externs...)
	for _, g := range m.Globals {
		obj.Globals = append(obj.Globals, GlobalDef{Name: g.Name, Words: g.Words, Init: g.Init})
	}
	strIdx := make(map[string]int32)
	for i, f := range m.Funcs {
		fc, err := compileFunc(f, obj, i, strIdx, opts)
		if err != nil {
			return nil, fmt.Errorf("unit %s: %w", m.Unit, err)
		}
		obj.Funcs = append(obj.Funcs, fc)
	}
	return obj, nil
}

type fnCompiler struct {
	f       *ir.Func
	obj     *Object
	fnIndex int
	strIdx  map[string]int32

	code        []Instr
	slotOf      map[*ir.Value]int32
	constSlot   map[constKey]int32
	consts      []constDef
	nextSlot    int32
	allocaOff   map[*ir.Value]int64
	allocaWords int64
	tempBase    int32
	// pack enables liveness-driven slot sharing (pack.go).
	pack bool
	// frozen is set once slot assignment is complete; allocating new slots
	// afterwards would corrupt alloca addressing, so it panics.
	frozen bool

	blockPC map[*ir.Block]int
	// fixups: instruction pc whose Imm/Imm2 must be resolved to a block or
	// trampoline start.
	fixups []fixup
	tramps []*trampoline
}

type constKey struct {
	val int64
}

type constDef struct {
	slot int32
	val  int64
}

type fixup struct {
	pc     int
	second bool // patch Imm2 instead of Imm
	block  *ir.Block
	tramp  *trampoline
}

type trampoline struct {
	moves  []move
	target *ir.Block
	pc     int
}

type move struct{ dst, src int32 }

func compileFunc(f *ir.Func, obj *Object, fnIndex int, strIdx map[string]int32, opts Options) (*FuncCode, error) {
	c := &fnCompiler{
		f:         f,
		obj:       obj,
		fnIndex:   fnIndex,
		strIdx:    strIdx,
		slotOf:    make(map[*ir.Value]int32),
		constSlot: make(map[constKey]int32),
		allocaOff: make(map[*ir.Value]int64),
		blockPC:   make(map[*ir.Block]int),
		pack:      !opts.DisableSlotPacking,
	}
	c.assignSlots()
	c.emitPrologue()
	for _, b := range f.Blocks {
		c.blockPC[b] = len(c.code)
		for _, v := range b.Instrs {
			if err := c.emitInstr(v); err != nil {
				return nil, fmt.Errorf("func %s: %w", f.Name, err)
			}
		}
		if err := c.emitTerminator(b); err != nil {
			return nil, fmt.Errorf("func %s: %w", f.Name, err)
		}
	}
	c.emitTrampolines()
	c.resolveFixups()

	return &FuncCode{
		Name:        f.Name,
		NumParams:   len(f.Params),
		NumSlots:    int(c.nextSlot),
		AllocaWords: int(c.allocaWords),
		Code:        c.code,
		HasResult:   f.Result != ir.TVoid,
	}, nil
}

// assignSlots gives every value-producing instruction a frame slot:
// parameters first (the calling convention places arguments there), then
// instruction results (shared between disjoint lifetimes when packing is
// on), constants, and finally the parallel-copy temporaries.
func (c *fnCompiler) assignSlots() {
	var colors map[int]int32
	if c.pack {
		colors, c.nextSlot = packColors(c.f)
	}
	for i, p := range c.f.Params {
		if c.pack {
			c.slotOf[p] = colors[p.ID]
		} else {
			c.slotOf[p] = int32(i)
			c.nextSlot++
		}
	}
	maxPhis := 0
	c.f.ForEachValue(func(v *ir.Value) {
		if v.Type != ir.TVoid {
			if c.pack {
				c.slotOf[v] = colors[v.ID]
			} else {
				c.slotOf[v] = c.nextSlot
				c.nextSlot++
			}
		}
		if v.Op == ir.OpAlloca {
			c.allocaOff[v] = c.allocaWords
			c.allocaWords += v.Aux
		}
		for _, a := range v.Args {
			if a.Op == ir.OpConst {
				c.constSlotFor(a)
			}
		}
	})
	for _, b := range c.f.Blocks {
		if len(b.Phis) > maxPhis {
			maxPhis = len(b.Phis)
		}
	}
	c.tempBase = c.nextSlot
	c.nextSlot += int32(maxPhis)
	c.frozen = true
}

// constSlotFor interns a constant into a slot loaded in the prologue.
func (c *fnCompiler) constSlotFor(v *ir.Value) int32 {
	k := constKey{val: v.Aux}
	if s, ok := c.constSlot[k]; ok {
		c.slotOf[v] = s
		return s
	}
	if c.frozen {
		panic(fmt.Sprintf("codegen: constant %d discovered after slot assignment", v.Aux))
	}
	s := c.nextSlot
	c.nextSlot++
	c.constSlot[k] = s
	c.consts = append(c.consts, constDef{slot: s, val: v.Aux})
	c.slotOf[v] = s
	return s
}

func (c *fnCompiler) emitPrologue() {
	for _, cd := range c.consts {
		c.code = append(c.code, Instr{Op: IConst, A: cd.slot, Imm: cd.val, StrIdx: -1})
	}
}

// slot returns the frame slot holding v's value.
func (c *fnCompiler) slot(v *ir.Value) int32 {
	if s, ok := c.slotOf[v]; ok {
		return s
	}
	if v.Op == ir.OpConst {
		return c.constSlotFor(v)
	}
	panic(fmt.Sprintf("codegen: value %s (%s) has no slot", v, v.Op))
}

func (c *fnCompiler) internString(s string) int32 {
	if i, ok := c.strIdx[s]; ok {
		return i
	}
	i := int32(len(c.obj.Strings))
	c.obj.Strings = append(c.obj.Strings, s)
	c.strIdx[s] = i
	return i
}

func (c *fnCompiler) emit(i Instr) int {
	c.code = append(c.code, i)
	return len(c.code) - 1
}

func (c *fnCompiler) emitInstr(v *ir.Value) error {
	switch v.Op {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem, ir.OpAnd, ir.OpOr,
		ir.OpXor, ir.OpShl, ir.OpShr, ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe,
		ir.OpGt, ir.OpGe:
		c.emit(Instr{Op: IBin, Sub: uint8(v.Op), A: c.slot(v), B: c.slot(v.Args[0]), C: c.slot(v.Args[1]), StrIdx: -1})
	case ir.OpNeg, ir.OpCompl, ir.OpNot:
		c.emit(Instr{Op: IUn, Sub: uint8(v.Op), A: c.slot(v), B: c.slot(v.Args[0]), StrIdx: -1})
	case ir.OpCopy:
		c.emit(Instr{Op: IMov, A: c.slot(v), B: c.slot(v.Args[0]), StrIdx: -1})
	case ir.OpAlloca:
		// Address = fp + numSlots + allocaOffset; numSlots is only known
		// after slot assignment, which already ran, but temp slots are
		// final too, so nextSlot is stable here.
		c.emit(Instr{Op: ILea, A: c.slot(v), Imm: int64(c.nextSlot) + c.allocaOff[v], StrIdx: -1})
	case ir.OpGlobalAddr:
		pc := c.emit(Instr{Op: IGAddr, A: c.slot(v), StrIdx: -1})
		c.obj.GlobalRelocs = append(c.obj.GlobalRelocs, Reloc{Func: c.fnIndex, Pc: pc, Symbol: v.Sym})
	case ir.OpIndexAddr:
		c.emit(Instr{Op: IIdx, A: c.slot(v), B: c.slot(v.Args[0]), C: c.slot(v.Args[1]), Imm: v.Aux, StrIdx: -1})
	case ir.OpLoad:
		c.emit(Instr{Op: ILoad, A: c.slot(v), B: c.slot(v.Args[0]), StrIdx: -1})
	case ir.OpStore:
		c.emit(Instr{Op: IStore, A: c.slot(v.Args[0]), B: c.slot(v.Args[1]), StrIdx: -1})
	case ir.OpCall:
		in := Instr{Op: ICall, A: -1, StrIdx: -1}
		if v.Type != ir.TVoid {
			in.A = c.slot(v)
		}
		for _, a := range v.Args {
			in.Args = append(in.Args, c.slot(a))
		}
		pc := c.emit(in)
		c.obj.Relocs = append(c.obj.Relocs, Reloc{Func: c.fnIndex, Pc: pc, Symbol: v.Sym})
	case ir.OpPrint:
		in := Instr{Op: IPrint, StrIdx: -1}
		if v.StrAux != "" {
			in.StrIdx = c.internString(v.StrAux)
		}
		for _, a := range v.Args {
			in.Args = append(in.Args, c.slot(a))
		}
		c.emit(in)
	case ir.OpAssert:
		in := Instr{Op: IAssert, A: c.slot(v.Args[0]), StrIdx: -1}
		if v.StrAux != "" {
			in.StrIdx = c.internString(v.StrAux)
		}
		c.emit(in)
	default:
		return fmt.Errorf("cannot lower %s", v.LongString())
	}
	return nil
}

// phiMoves builds the parallel-copy sequence for the edge pred→succ:
// all sources are first copied into temporaries, then temporaries into the
// phi slots, so that phis reading each other's old values stay correct.
func (c *fnCompiler) phiMoves(pred, succ *ir.Block) []move {
	if len(succ.Phis) == 0 {
		return nil
	}
	var ms []move
	for i, phi := range succ.Phis {
		in := phi.Incoming(pred)
		ms = append(ms, move{dst: c.tempBase + int32(i), src: c.slot(in)})
	}
	for i, phi := range succ.Phis {
		ms = append(ms, move{dst: c.slot(phi), src: c.tempBase + int32(i)})
	}
	return ms
}

func (c *fnCompiler) emitMoves(ms []move) {
	for _, m := range ms {
		if m.dst != m.src {
			c.emit(Instr{Op: IMov, A: m.dst, B: m.src, StrIdx: -1})
		}
	}
}

func (c *fnCompiler) emitTerminator(b *ir.Block) error {
	t := b.Term
	switch t.Op {
	case ir.OpRet:
		in := Instr{Op: IRet, A: -1, StrIdx: -1}
		if len(t.Args) == 1 {
			in.A = c.slot(t.Args[0])
		}
		c.emit(in)
	case ir.OpJump:
		succ := t.Blocks[0]
		c.emitMoves(c.phiMoves(b, succ))
		pc := c.emit(Instr{Op: IJmp, StrIdx: -1})
		c.fixups = append(c.fixups, fixup{pc: pc, block: succ})
	case ir.OpBranch:
		thenB, elseB := t.Blocks[0], t.Blocks[1]
		pc := c.emit(Instr{Op: IBr, A: c.slot(t.Args[0]), StrIdx: -1})
		c.fixups = append(c.fixups, c.edgeFixup(pc, false, b, thenB))
		c.fixups = append(c.fixups, c.edgeFixup(pc, true, b, elseB))
	default:
		return fmt.Errorf("bad terminator %s", t.Op)
	}
	return nil
}

// edgeFixup routes a branch edge either directly to the target block or
// through a trampoline carrying the edge's phi moves.
func (c *fnCompiler) edgeFixup(pc int, second bool, pred, succ *ir.Block) fixup {
	ms := c.phiMoves(pred, succ)
	if len(ms) == 0 {
		return fixup{pc: pc, second: second, block: succ}
	}
	tr := &trampoline{moves: ms, target: succ}
	c.tramps = append(c.tramps, tr)
	return fixup{pc: pc, second: second, tramp: tr}
}

func (c *fnCompiler) emitTrampolines() {
	for _, tr := range c.tramps {
		tr.pc = len(c.code)
		c.emitMoves(tr.moves)
		pc := c.emit(Instr{Op: IJmp, StrIdx: -1})
		c.fixups = append(c.fixups, fixup{pc: pc, block: tr.target})
	}
}

func (c *fnCompiler) resolveFixups() {
	for _, fx := range c.fixups {
		var target int
		if fx.tramp != nil {
			target = fx.tramp.pc
		} else {
			target = c.blockPC[fx.block]
		}
		if fx.second {
			c.code[fx.pc].Imm2 = int64(target)
		} else {
			c.code[fx.pc].Imm = int64(target)
		}
	}
}
