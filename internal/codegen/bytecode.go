// Package codegen lowers optimized IR into executable bytecode and links
// compiled units into programs.
//
// The target is a word-addressed virtual machine (internal/vm): each
// function gets a frame of value slots followed by its alloca storage, and
// pointers are plain indexes into the VM's flat memory (globals first, then
// the call stack). The lowering performs phi elimination via critical-edge
// splitting and per-edge parallel copies, then a single linear scan that
// assigns every SSA value a frame slot.
package codegen

import "fmt"

// Opcode is a bytecode operation.
type Opcode uint8

// Bytecode opcodes. Slot operands (A/B/C) index the current frame unless
// noted otherwise.
const (
	INop Opcode = iota

	// IConst: slot[A] = Imm.
	IConst
	// IMov: slot[A] = slot[B].
	IMov

	// Binary arithmetic: slot[A] = slot[B] op slot[C]. The ir.Op is in Sub.
	IBin
	// Unary: slot[A] = op slot[B]. The ir.Op is in Sub.
	IUn

	// ILea: slot[A] = fp + Imm (address of an alloca).
	ILea
	// IGAddr: slot[A] = Imm (absolute address of a global).
	IGAddr
	// IIdx: slot[A] = slot[B] + slot[C], after checking 0 <= slot[C] < Imm.
	IIdx
	// ILoad: slot[A] = mem[slot[B]].
	ILoad
	// IStore: mem[slot[A]] = slot[B].
	IStore

	// ICall: call function Imm (program function index) with args from
	// Args slots; result (if any) into slot[A] (A = -1 for void).
	ICall
	// IRet: return slot[A] (A = -1 for void).
	IRet

	// IJmp: jump to instruction Imm.
	IJmp
	// IBr: if slot[A] != 0 jump to Imm else to Imm2.
	IBr

	// IPrint: print StrIdx label (if >= 0) and Args slots.
	IPrint
	// IAssert: trap with StrIdx message if slot[A] == 0.
	IAssert
)

var opcodeNames = [...]string{
	INop: "nop", IConst: "const", IMov: "mov", IBin: "bin", IUn: "un",
	ILea: "lea", IGAddr: "gaddr", IIdx: "idx", ILoad: "load", IStore: "store",
	ICall: "call", IRet: "ret", IJmp: "jmp", IBr: "br", IPrint: "print",
	IAssert: "assert",
}

// String returns the opcode mnemonic.
func (o Opcode) String() string {
	if int(o) < len(opcodeNames) && opcodeNames[o] != "" {
		return opcodeNames[o]
	}
	return fmt.Sprintf("opcode(%d)", int(o))
}

// Instr is one bytecode instruction.
type Instr struct {
	Op   Opcode
	Sub  uint8 // ir.Op for IBin/IUn
	A    int32 // dst slot (or cond for IBr/IAssert, addr for IStore)
	B    int32 // src slot
	C    int32 // src slot
	Imm  int64 // constant / target pc / global addr / function index / bounds
	Imm2 int64 // second target for IBr
	// Args holds call/print argument slots.
	Args []int32
	// StrIdx indexes the program string table (labels/messages); -1 none.
	StrIdx int32
}

// FuncCode is one compiled function.
type FuncCode struct {
	Name string
	// NumParams values arrive in slots 0..NumParams-1.
	NumParams int
	// NumSlots is the number of value slots in the frame.
	NumSlots int
	// AllocaWords of scratch memory follow the slots in the frame.
	AllocaWords int
	// Code is the instruction stream.
	Code []Instr
	// HasResult reports whether callers receive a value.
	HasResult bool
}

// FrameWords is the total frame size in memory words.
func (f *FuncCode) FrameWords() int { return f.NumSlots + f.AllocaWords }

// Object is the compiled form of one compilation unit, pre-link: calls and
// globals are still symbolic.
type Object struct {
	Unit string
	// Globals declared by this unit.
	Globals []GlobalDef
	// Funcs defined by this unit.
	Funcs []*FuncCode
	// Strings referenced by the unit's code.
	Strings []string
	// Relocs record call sites to patch: Code[Pc].Imm must become the
	// program-wide function index of Symbol.
	Relocs []Reloc
	// GlobalRelocs record IGAddr sites: Code[Pc].Imm must become the
	// program-wide address of the named global.
	GlobalRelocs []Reloc
	// Externs this unit expects at link time.
	Externs []string
}

// GlobalDef is a global variable in an object.
type GlobalDef struct {
	Name  string
	Words int64
	Init  int64
}

// Reloc is a link-time patch site.
type Reloc struct {
	Func   int // index into Object.Funcs
	Pc     int // instruction index
	Symbol string
}

// Program is a fully linked executable.
type Program struct {
	Funcs     []*FuncCode
	FuncIndex map[string]int
	// GlobalWords is the size of the global segment; Globals hold initial
	// values at their assigned addresses.
	GlobalWords int
	GlobalInit  []int64
	GlobalIndex map[string]int
	Strings     []string
	// EntryIndex is the index of main.
	EntryIndex int
}
