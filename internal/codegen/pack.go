package codegen

// Frame-slot packing: a liveness-driven greedy coloring that lets SSA
// values with disjoint lifetimes share frame slots, shrinking VM frames
// (the backend analogue of register allocation's spill-slot coalescing).
//
// Interference is built from a backward scan per block: a definition
// interferes with everything live at its program point. Phi values get
// three conservative extras — the live-in set of their block, their sibling
// phis, and the live-out set of every predecessor — because their slot is
// written by the parallel-copy sequence on incoming edges. Parameter slots
// are fixed by the calling convention and never reused (the liveness
// analysis does not track parameters).

import (
	"statefulcc/internal/analysis"
	"statefulcc/internal/ir"
)

// packColors assigns each value-producing instruction a frame slot, with
// parameters pre-colored 0..n-1. Returns the coloring (by value ID) and
// the number of slots used.
func packColors(f *ir.Func) (map[int]int32, int32) {
	lv := analysis.ComputeLiveness(f)
	nv := f.NumValues()

	// Interference adjacency as bitsets keyed by value ID.
	adj := make([]analysis.BitSet, nv)
	ensure := func(id int) analysis.BitSet {
		if adj[id] == nil {
			adj[id] = analysis.NewBitSet(nv)
		}
		return adj[id]
	}
	addEdge := func(a, b int) {
		if a == b {
			return
		}
		ensure(a).Add(b)
		ensure(b).Add(a)
	}
	interfereWithSet := func(id int, set analysis.BitSet) {
		for w := 0; w < nv; w++ {
			if set.Has(w) {
				addEdge(id, w)
			}
		}
	}

	producesValue := func(v *ir.Value) bool { return v.Type != ir.TVoid }

	for _, b := range f.Blocks {
		// Phi extras: live-in of the block, sibling phis, preds' live-out.
		for _, phi := range b.Phis {
			interfereWithSet(phi.ID, lv.LiveIn[b.ID])
			for _, other := range b.Phis {
				addEdge(phi.ID, other.ID)
			}
			for _, p := range b.Preds {
				interfereWithSet(phi.ID, lv.LiveOut[p.ID])
			}
		}
		// Backward scan for ordinary definitions.
		live := lv.LiveOut[b.ID].Clone()
		scan := func(v *ir.Value) {
			if producesValue(v) {
				interfereWithSet(v.ID, live)
				live.Remove(v.ID)
			}
			for _, a := range v.Args {
				if a.Op != ir.OpConst && a.Op != ir.OpParam {
					live.Add(a.ID)
				}
			}
		}
		if b.Term != nil {
			scan(b.Term)
		}
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			scan(b.Instrs[i])
		}
	}

	colors := make(map[int]int32, nv)
	nParams := int32(len(f.Params))
	for i, p := range f.Params {
		colors[p.ID] = int32(i)
	}
	maxColor := nParams - 1

	// Color in deterministic layout order; smallest color not used by any
	// neighbor, never reusing the reserved parameter slots.
	assign := func(v *ir.Value) {
		used := make(map[int32]bool)
		if adj[v.ID] != nil {
			for w := 0; w < nv; w++ {
				if adj[v.ID].Has(w) {
					if c, ok := colors[w]; ok {
						used[c] = true
					}
				}
			}
		}
		c := nParams
		for used[c] {
			c++
		}
		colors[v.ID] = c
		if c > maxColor {
			maxColor = c
		}
	}
	for _, b := range f.Blocks {
		for _, v := range b.Phis {
			assign(v)
		}
		for _, v := range b.Instrs {
			if producesValue(v) {
				assign(v)
			}
		}
	}
	return colors, maxColor + 1
}
