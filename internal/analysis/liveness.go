package analysis

// Backward liveness over SSA values, used by codegen's frame-slot packing
// and available as a general analysis.

import (
	"statefulcc/internal/ir"
)

// Liveness holds per-block live-in/live-out SSA value sets, keyed by value
// ID in dense bitsets.
type Liveness struct {
	fn      *ir.Func
	LiveIn  []BitSet // indexed by block ID
	LiveOut []BitSet
}

// BitSet is a fixed-capacity bitset over value IDs.
type BitSet []uint64

// NewBitSet returns a set able to hold n elements.
func NewBitSet(n int) BitSet { return make(BitSet, (n+63)/64) }

// Has reports membership.
func (s BitSet) Has(i int) bool { return s[i/64]&(1<<(uint(i)%64)) != 0 }

// Add inserts i, reporting whether the set changed.
func (s BitSet) Add(i int) bool {
	w, m := i/64, uint64(1)<<(uint(i)%64)
	if s[w]&m != 0 {
		return false
	}
	s[w] |= m
	return true
}

// Remove deletes i.
func (s BitSet) Remove(i int) { s[i/64] &^= 1 << (uint(i) % 64) }

// UnionInto ors s into dst, reporting whether dst changed.
func (s BitSet) UnionInto(dst BitSet) bool {
	changed := false
	for i, w := range s {
		if dst[i]|w != dst[i] {
			dst[i] |= w
			changed = true
		}
	}
	return changed
}

// Clone copies the set.
func (s BitSet) Clone() BitSet {
	c := make(BitSet, len(s))
	copy(c, s)
	return c
}

// Count returns the number of elements.
func (s BitSet) Count() int {
	n := 0
	for _, w := range s {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// ComputeLiveness runs iterative backward liveness to a fixed point.
// Phi operands are treated as live-out of the corresponding predecessor
// (the standard SSA convention), not live-in of the phi's block.
func ComputeLiveness(f *ir.Func) *Liveness {
	nb := f.NumBlockIDs()
	nv := f.NumValues()
	lv := &Liveness{
		fn:      f,
		LiveIn:  make([]BitSet, nb),
		LiveOut: make([]BitSet, nb),
	}
	for _, b := range f.Blocks {
		lv.LiveIn[b.ID] = NewBitSet(nv)
		lv.LiveOut[b.ID] = NewBitSet(nv)
	}

	// Iterate in postorder until stable (backward problem).
	po := f.Postorder()
	changed := true
	for changed {
		changed = false
		for _, b := range po {
			out := lv.LiveOut[b.ID]
			// live-out = union over successors of (live-in(s) minus s's phis,
			// plus the phi operands flowing along this edge).
			for _, s := range b.Succs() {
				tmp := lv.LiveIn[s.ID].Clone()
				for _, phi := range s.Phis {
					tmp.Remove(phi.ID)
				}
				if tmp.UnionInto(out) {
					changed = true
				}
				for _, phi := range s.Phis {
					if in := phi.Incoming(b); in != nil && trackable(in) {
						if out.Add(in.ID) {
							changed = true
						}
					}
				}
			}
			// live-in = (live-out minus defs) plus uses, scanned backwards.
			in := out.Clone()
			if b.Term != nil {
				stepLive(in, b.Term)
			}
			for i := len(b.Instrs) - 1; i >= 0; i-- {
				stepLive(in, b.Instrs[i])
			}
			for _, phi := range b.Phis {
				in.Remove(phi.ID)
			}
			if in.UnionInto(lv.LiveIn[b.ID]) {
				changed = true
			}
		}
	}
	return lv
}

// trackable reports whether liveness tracks the value (instructions and
// phis; constants and params are rematerializable/always live).
func trackable(v *ir.Value) bool {
	return v.Op != ir.OpConst && v.Op != ir.OpParam
}

func stepLive(set BitSet, v *ir.Value) {
	if v.Type != ir.TVoid {
		set.Remove(v.ID)
	}
	for _, a := range v.Args {
		if trackable(a) {
			set.Add(a.ID)
		}
	}
}

// LiveAcrossCall reports, per value ID, whether the value is live across
// any call instruction — a statistic used by the codegen slot packer.
func LiveAcrossCall(f *ir.Func, lv *Liveness) []bool {
	res := make([]bool, f.NumValues())
	for _, b := range f.Blocks {
		live := lv.LiveOut[b.ID].Clone()
		if b.Term != nil {
			stepLive(live, b.Term)
		}
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			v := b.Instrs[i]
			if v.Op == ir.OpCall {
				for w := 0; w < f.NumValues(); w++ {
					if live.Has(w) {
						res[w] = true
					}
				}
			}
			stepLive(live, v)
		}
	}
	return res
}
