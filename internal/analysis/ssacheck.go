package analysis

// VerifySSA: the dominance half of IR verification (structure is checked by
// ir.Verify). Separated into this package because it needs the dominator
// tree.

import (
	"fmt"

	"statefulcc/internal/ir"
)

// VerifySSA checks that every use of an SSA value is dominated by its
// definition: ordinary uses must be dominated by the defining instruction,
// and phi uses must be dominated at the end of the incoming block. It also
// checks that each value is defined once.
func VerifySSA(f *ir.Func) error {
	dom := BuildDomTree(f)

	defBlock := make(map[*ir.Value]*ir.Block)
	defIndex := make(map[*ir.Value]int) // position within block; phis = -1
	seen := make(map[*ir.Value]bool)

	for _, b := range f.Blocks {
		for _, v := range b.Phis {
			if seen[v] {
				return fmt.Errorf("func %s: v%d defined twice", f.Name, v.ID)
			}
			seen[v] = true
			defBlock[v] = b
			defIndex[v] = -1
		}
		for i, v := range b.Instrs {
			if seen[v] {
				return fmt.Errorf("func %s: v%d defined twice", f.Name, v.ID)
			}
			seen[v] = true
			defBlock[v] = b
			defIndex[v] = i
		}
		if b.Term != nil {
			defBlock[b.Term] = b
			defIndex[b.Term] = len(b.Instrs)
		}
	}

	// dominatesUse reports whether def (an instruction/phi) dominates a use
	// at position (useBlock, useIndex).
	dominatesUse := func(def *ir.Value, useBlock *ir.Block, useIndex int) bool {
		if def.Op == ir.OpConst || def.Op == ir.OpParam {
			return true
		}
		db, ok := defBlock[def]
		if !ok {
			return false // defined nowhere (foreign value)
		}
		if db == useBlock {
			return defIndex[def] < useIndex
		}
		return dom.StrictlyDominates(db, useBlock)
	}

	for _, b := range f.Blocks {
		if !dom.Reachable(b) {
			continue // unreachable code may be malformed until simplifycfg runs
		}
		for _, phi := range b.Phis {
			for i, a := range phi.Args {
				in := phi.Blocks[i]
				if a.Op == ir.OpConst || a.Op == ir.OpParam {
					continue
				}
				if !dom.Reachable(in) {
					continue
				}
				// Operand must dominate the end of the incoming block.
				if !dominatesUse(a, in, len(in.Instrs)+1) {
					return fmt.Errorf("func %s: phi v%d operand v%d not available at end of %s",
						f.Name, phi.ID, a.ID, in.Name())
				}
			}
		}
		for i, v := range b.Instrs {
			for _, a := range v.Args {
				if a.Op == ir.OpConst || a.Op == ir.OpParam {
					continue
				}
				if !dominatesUse(a, b, i) {
					return fmt.Errorf("func %s: %s in %s uses v%d before definition",
						f.Name, v.LongString(), b.Name(), a.ID)
				}
			}
		}
		if b.Term != nil {
			for _, a := range b.Term.Args {
				if a.Op == ir.OpConst || a.Op == ir.OpParam {
					continue
				}
				if !dominatesUse(a, b, len(b.Instrs)) {
					return fmt.Errorf("func %s: terminator of %s uses v%d before definition",
						f.Name, b.Name(), a.ID)
				}
			}
		}
	}
	return nil
}
