package analysis

// Natural-loop detection from back edges in the dominator tree, used by
// LICM and the unroller.

import (
	"sort"

	"statefulcc/internal/ir"
)

// Loop is one natural loop.
type Loop struct {
	// Header is the loop entry block (dominates all loop blocks).
	Header *ir.Block
	// Latches are the blocks with back edges to the header.
	Latches []*ir.Block
	// Blocks is the loop body including the header, in discovery order.
	Blocks []*ir.Block
	// Parent is the innermost enclosing loop, or nil.
	Parent *Loop
	// Depth is 1 for outermost loops.
	Depth int
	// Exits are edges (From inside, To outside).
	Exits []LoopExit
}

// LoopExit is an edge leaving a loop.
type LoopExit struct {
	From *ir.Block // inside the loop
	To   *ir.Block // outside the loop
}

// Contains reports whether b belongs to the loop body.
func (l *Loop) Contains(b *ir.Block) bool {
	for _, x := range l.Blocks {
		if x == b {
			return true
		}
	}
	return false
}

// LoopInfo holds all natural loops of a function.
type LoopInfo struct {
	// Loops in header reverse-postorder (outer loops before inner).
	Loops []*Loop
	// loopOf[b.ID] is the innermost loop containing the block, or nil.
	loopOf []*Loop
}

// InnermostLoop returns the innermost loop containing b, or nil.
func (li *LoopInfo) InnermostLoop(b *ir.Block) *Loop {
	if b.ID < len(li.loopOf) {
		return li.loopOf[b.ID]
	}
	return nil
}

// Depth returns the loop nesting depth of block b (0 = not in a loop).
func (li *LoopInfo) Depth(b *ir.Block) int {
	if l := li.InnermostLoop(b); l != nil {
		return l.Depth
	}
	return 0
}

// FindLoops detects natural loops: for each back edge (latch → header where
// header dominates latch), the loop body is everything that reaches the
// latch without passing through the header. Loops sharing a header are
// merged, matching LLVM's convention.
func FindLoops(f *ir.Func, dom *DomTree) *LoopInfo {
	li := &LoopInfo{loopOf: make([]*Loop, f.NumBlockIDs())}
	byHeader := make(map[*ir.Block]*Loop)

	for _, b := range dom.ReversePostorder() {
		for _, s := range b.Succs() {
			if !dom.Dominates(s, b) {
				continue // not a back edge
			}
			header, latch := s, b
			loop := byHeader[header]
			if loop == nil {
				loop = &Loop{Header: header, Blocks: []*ir.Block{header}}
				byHeader[header] = loop
				li.Loops = append(li.Loops, loop)
			}
			loop.Latches = append(loop.Latches, latch)
			// Walk backwards from the latch collecting the body.
			in := map[*ir.Block]bool{header: true}
			for _, blk := range loop.Blocks {
				in[blk] = true
			}
			stack := []*ir.Block{latch}
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if in[x] {
					continue
				}
				in[x] = true
				loop.Blocks = append(loop.Blocks, x)
				for _, p := range x.Preds {
					if !in[p] && dom.Reachable(p) {
						stack = append(stack, p)
					}
				}
			}
		}
	}

	// Sort loops by body size descending so that assigning loopOf in order
	// leaves the innermost (smallest) loop in place; nesting links follow.
	sort.SliceStable(li.Loops, func(i, j int) bool {
		return len(li.Loops[i].Blocks) > len(li.Loops[j].Blocks)
	})
	for _, l := range li.Loops {
		for _, b := range l.Blocks {
			if inner := li.loopOf[b.ID]; inner != nil && inner != l && b == inner.Header {
				// l encloses inner (l was visited earlier only if bigger).
				_ = inner
			}
			li.loopOf[b.ID] = l
		}
	}
	// Parent/depth: a loop's parent is the innermost loop containing its
	// header that isn't itself. Compute by re-scanning containment.
	for _, l := range li.Loops {
		var parent *Loop
		for _, cand := range li.Loops {
			if cand == l || len(cand.Blocks) <= len(l.Blocks) {
				continue
			}
			if cand.Contains(l.Header) {
				if parent == nil || len(cand.Blocks) < len(parent.Blocks) {
					parent = cand
				}
			}
		}
		l.Parent = parent
	}
	for _, l := range li.Loops {
		d := 1
		for p := l.Parent; p != nil; p = p.Parent {
			d++
		}
		l.Depth = d
	}

	// Exits.
	for _, l := range li.Loops {
		for _, b := range l.Blocks {
			for _, s := range b.Succs() {
				if !l.Contains(s) {
					l.Exits = append(l.Exits, LoopExit{From: b, To: s})
				}
			}
		}
	}
	return li
}

// Preheader returns the unique block that enters the loop from outside via
// a single edge to the header, or nil when no such block exists. LICM
// creates one on demand.
func (l *Loop) Preheader() *ir.Block {
	var outside []*ir.Block
	for _, p := range l.Header.Preds {
		if !l.Contains(p) {
			outside = append(outside, p)
		}
	}
	if len(outside) == 1 && len(outside[0].Succs()) == 1 {
		return outside[0]
	}
	return nil
}
