// Package analysis provides the CFG analyses that optimization passes
// consume: dominator trees (Cooper–Harvey–Kennedy), dominance frontiers,
// natural-loop detection, liveness, and a dominance-based SSA verifier.
//
// All analyses are pure functions of the IR — they are recomputed on demand
// by passes rather than cached, which keeps the pass manager's invalidation
// story trivial and makes pass dormancy exactly "the IR did not change".
package analysis

import (
	"statefulcc/internal/ir"
)

// DomTree is the dominator tree of a function's reachable blocks.
type DomTree struct {
	fn *ir.Func
	// idom[b.ID] is the immediate dominator; entry maps to itself.
	idom []*ir.Block
	// children[b.ID] lists the blocks immediately dominated by b.
	children [][]*ir.Block
	// pre and post order numbers of each block in the dominator tree,
	// giving O(1) Dominates queries.
	pre, post []int
	// rpo[b.ID] is the reverse-postorder index (reachable blocks only).
	rpo []int
	// order is the reverse postorder itself.
	order []*ir.Block
}

// BuildDomTree computes the dominator tree using the Cooper–Harvey–Kennedy
// iterative algorithm over reverse postorder.
func BuildDomTree(f *ir.Func) *DomTree {
	n := f.NumBlockIDs()
	t := &DomTree{
		fn:       f,
		idom:     make([]*ir.Block, n),
		children: make([][]*ir.Block, n),
		pre:      make([]int, n),
		post:     make([]int, n),
		rpo:      make([]int, n),
	}
	t.order = f.ReversePostorder()
	for i := range t.rpo {
		t.rpo[i] = -1
	}
	for i, b := range t.order {
		t.rpo[b.ID] = i
	}
	entry := f.Entry()
	if entry == nil {
		return t
	}
	t.idom[entry.ID] = entry

	intersect := func(a, b *ir.Block) *ir.Block {
		for a != b {
			for t.rpo[a.ID] > t.rpo[b.ID] {
				a = t.idom[a.ID]
			}
			for t.rpo[b.ID] > t.rpo[a.ID] {
				b = t.idom[b.ID]
			}
		}
		return a
	}

	changed := true
	for changed {
		changed = false
		for _, b := range t.order[1:] {
			var newIdom *ir.Block
			for _, p := range b.Preds {
				if t.rpo[p.ID] < 0 || t.idom[p.ID] == nil {
					continue // unreachable or not yet processed
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != nil && t.idom[b.ID] != newIdom {
				t.idom[b.ID] = newIdom
				changed = true
			}
		}
	}

	// Build children lists and DFS numbering for O(1) dominance queries.
	for _, b := range t.order {
		if b == entry {
			continue
		}
		id := t.idom[b.ID]
		if id != nil {
			t.children[id.ID] = append(t.children[id.ID], b)
		}
	}
	clock := 0
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		clock++
		t.pre[b.ID] = clock
		for _, c := range t.children[b.ID] {
			dfs(c)
		}
		clock++
		t.post[b.ID] = clock
	}
	dfs(entry)
	return t
}

// Idom returns the immediate dominator of b (the entry returns itself),
// or nil for unreachable blocks.
func (t *DomTree) Idom(b *ir.Block) *ir.Block { return t.idom[b.ID] }

// Children returns the blocks immediately dominated by b.
func (t *DomTree) Children(b *ir.Block) []*ir.Block { return t.children[b.ID] }

// Reachable reports whether b was reachable when the tree was built.
func (t *DomTree) Reachable(b *ir.Block) bool { return t.rpo[b.ID] >= 0 }

// Dominates reports whether a dominates b (reflexively).
func (t *DomTree) Dominates(a, b *ir.Block) bool {
	if !t.Reachable(a) || !t.Reachable(b) {
		return false
	}
	return t.pre[a.ID] <= t.pre[b.ID] && t.post[b.ID] <= t.post[a.ID]
}

// StrictlyDominates reports whether a dominates b and a != b.
func (t *DomTree) StrictlyDominates(a, b *ir.Block) bool {
	return a != b && t.Dominates(a, b)
}

// ReversePostorder returns the reachable blocks in reverse postorder.
func (t *DomTree) ReversePostorder() []*ir.Block { return t.order }

// Frontiers computes the dominance frontier of every block
// (Cytron et al.), used by mem2reg's phi placement.
func (t *DomTree) Frontiers() [][]*ir.Block {
	df := make([][]*ir.Block, t.fn.NumBlockIDs())
	for _, b := range t.order {
		if len(b.Preds) < 2 {
			continue
		}
		for _, p := range b.Preds {
			if !t.Reachable(p) {
				continue
			}
			// idom(b) dominates every reachable predecessor of b, so the
			// walk up the dominator tree from p always terminates at it.
			for runner := p; runner != t.idom[b.ID]; runner = t.idom[runner.ID] {
				df[runner.ID] = appendUnique(df[runner.ID], b)
			}
		}
	}
	return df
}

func appendUnique(s []*ir.Block, b *ir.Block) []*ir.Block {
	for _, x := range s {
		if x == b {
			return s
		}
	}
	return append(s, b)
}
