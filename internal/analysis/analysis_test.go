package analysis_test

import (
	"testing"

	"statefulcc/internal/analysis"
	"statefulcc/internal/ir"
	"statefulcc/internal/testutil"
)

// lowerFunc builds IR for fn from source (memory form, no passes).
func lowerFunc(t *testing.T, src, fn string) *ir.Func {
	t.Helper()
	m, err := testutil.BuildModule("t.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	f := m.FindFunc(fn)
	if f == nil {
		t.Fatalf("no function %s", fn)
	}
	return f
}

func TestDomTreeDiamond(t *testing.T) {
	f := lowerFunc(t, `
func f(x int) int {
    var r int;
    if x > 0 { r = 1; } else { r = 2; }
    return r;
}`, "f")
	dom := analysis.BuildDomTree(f)
	entry := f.Entry()

	for _, b := range f.Blocks {
		if !dom.Reachable(b) {
			continue
		}
		if !dom.Dominates(entry, b) {
			t.Errorf("entry does not dominate %s", b.Name())
		}
		if !dom.Dominates(b, b) {
			t.Errorf("dominance not reflexive on %s", b.Name())
		}
		if dom.StrictlyDominates(b, b) {
			t.Errorf("strict dominance reflexive on %s", b.Name())
		}
	}
	// The join block (the one with 2 preds) is dominated by entry but not
	// by either branch arm.
	for _, b := range f.Blocks {
		if len(b.Preds) == 2 {
			for _, p := range b.Preds {
				if p != entry && dom.Dominates(p, b) {
					t.Errorf("branch arm %s should not dominate join %s", p.Name(), b.Name())
				}
			}
			if dom.Idom(b) != entry {
				t.Errorf("idom(join) = %v, want entry", dom.Idom(b).Name())
			}
		}
	}
}

func TestDomTreeAgainstBruteForce(t *testing.T) {
	// Brute-force dominance: a dominates b iff removing a from the graph
	// makes b unreachable. Compare on several lowered functions.
	srcs := []string{
		`func f(n int) int {
            var s int = 0;
            for var i int = 0; i < n; i++ {
                if i % 2 == 0 { s += i; } else { s -= i; }
                while s > 100 { s /= 2; }
            }
            return s;
        }`,
		`func f(a bool, b bool) int {
            if a { if b { return 1; } return 2; }
            for ;; { if b { break; } }
            return 3;
        }`,
	}
	for _, src := range srcs {
		f := lowerFunc(t, src, "f")
		dom := analysis.BuildDomTree(f)
		reach := reachableWithout(f, nil)
		for _, a := range f.Blocks {
			if !reach[a.ID] {
				continue
			}
			blocked := reachableWithout(f, a)
			for _, b := range f.Blocks {
				if !reach[b.ID] {
					continue
				}
				want := a == b || !blocked[b.ID]
				if got := dom.Dominates(a, b); got != want {
					t.Errorf("Dominates(%s,%s) = %t, want %t\n%s", a.Name(), b.Name(), got, want, f)
				}
			}
		}
	}
}

// reachableWithout computes reachability from entry with one block removed.
func reachableWithout(f *ir.Func, skip *ir.Block) []bool {
	seen := make([]bool, f.NumBlockIDs())
	var stack []*ir.Block
	if e := f.Entry(); e != nil && e != skip {
		seen[e.ID] = true
		stack = append(stack, e)
	}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs() {
			if s == skip || seen[s.ID] {
				continue
			}
			seen[s.ID] = true
			stack = append(stack, s)
		}
	}
	return seen
}

func TestDominanceFrontiers(t *testing.T) {
	f := lowerFunc(t, `
func f(x int) int {
    var r int;
    if x > 0 { r = 1; } else { r = 2; }
    return r;
}`, "f")
	dom := analysis.BuildDomTree(f)
	df := dom.Frontiers()

	var join *ir.Block
	for _, b := range f.Blocks {
		if len(b.Preds) == 2 {
			join = b
		}
	}
	if join == nil {
		t.Fatal("no join block")
	}
	// Both branch arms have the join in their frontier; entry does not.
	for _, p := range join.Preds {
		found := false
		for _, fb := range df[p.ID] {
			if fb == join {
				found = true
			}
		}
		if !found {
			t.Errorf("join missing from DF(%s)", p.Name())
		}
	}
	for _, fb := range df[f.Entry().ID] {
		if fb == join {
			t.Error("join should not be in DF(entry) — entry dominates it")
		}
	}
}

func TestLoopDetection(t *testing.T) {
	f := lowerFunc(t, `
func f(n int) int {
    var s int = 0;
    for var i int = 0; i < n; i++ {
        for var j int = 0; j < i; j++ {
            s += j;
        }
    }
    return s;
}`, "f")
	dom := analysis.BuildDomTree(f)
	loops := analysis.FindLoops(f, dom)
	if len(loops.Loops) != 2 {
		t.Fatalf("found %d loops, want 2\n%s", len(loops.Loops), f)
	}
	var outer, inner *analysis.Loop
	for _, l := range loops.Loops {
		if l.Parent == nil {
			outer = l
		} else {
			inner = l
		}
	}
	if outer == nil || inner == nil {
		t.Fatalf("nesting not detected")
	}
	if inner.Parent != outer {
		t.Error("inner loop's parent is not the outer loop")
	}
	if outer.Depth != 1 || inner.Depth != 2 {
		t.Errorf("depths: outer=%d inner=%d", outer.Depth, inner.Depth)
	}
	if !outer.Contains(inner.Header) {
		t.Error("outer loop does not contain inner header")
	}
	if len(outer.Exits) == 0 || len(inner.Exits) == 0 {
		t.Error("loop exits not detected")
	}
	for _, b := range inner.Blocks {
		if loops.InnermostLoop(b) != inner {
			t.Errorf("innermost loop of %s is not the inner loop", b.Name())
		}
		if loops.Depth(b) != 2 {
			t.Errorf("depth of %s = %d, want 2", b.Name(), loops.Depth(b))
		}
	}
}

func TestNoLoops(t *testing.T) {
	f := lowerFunc(t, `func f(x int) int { if x > 0 { return 1; } return 0; }`, "f")
	dom := analysis.BuildDomTree(f)
	loops := analysis.FindLoops(f, dom)
	if len(loops.Loops) != 0 {
		t.Errorf("found %d loops in loop-free code", len(loops.Loops))
	}
}

func TestPreheaderDetection(t *testing.T) {
	f := lowerFunc(t, `
func f(n int) int {
    var s int = 0;
    while s < n { s += 3; }
    return s;
}`, "f")
	dom := analysis.BuildDomTree(f)
	loops := analysis.FindLoops(f, dom)
	if len(loops.Loops) != 1 {
		t.Fatalf("loops = %d", len(loops.Loops))
	}
	// Freshly lowered while loops have a dedicated preheader (the entry
	// fall-through block).
	if loops.Loops[0].Preheader() == nil {
		t.Errorf("no preheader found\n%s", f)
	}
}

func TestLiveness(t *testing.T) {
	f := lowerFunc(t, `
func f(a int, b int) int {
    var x int = a + b;
    var y int = a - b;
    if x > 0 { return x; }
    return y;
}`, "f")
	// Promote to SSA first so liveness tracks computed values.
	// (Using the raw memory form is fine too, but SSA makes assertions
	// easier: find the add and sub results.)
	lv := analysis.ComputeLiveness(f)
	if lv == nil {
		t.Fatal("nil liveness")
	}
	// Sanity: entry live-in is empty (params are not tracked).
	if n := lv.LiveIn[f.Entry().ID].Count(); n != 0 {
		t.Errorf("entry live-in count = %d, want 0", n)
	}
	// Any value used across a block boundary must be live-out somewhere.
	crossUses := 0
	f.ForEachValue(func(v *ir.Value) {
		for _, a := range v.Args {
			if a.Block != nil && v.Block != nil && a.Block != v.Block {
				crossUses++
				if !lv.LiveOut[a.Block.ID].Has(a.ID) {
					t.Errorf("v%d used in %s but not live-out of defining %s",
						a.ID, v.Block.Name(), a.Block.Name())
				}
			}
		}
	})
	if crossUses == 0 {
		t.Log("no cross-block uses in this shape; liveness exercised trivially")
	}
}

func TestBitSet(t *testing.T) {
	s := analysis.NewBitSet(130)
	if s.Has(0) || s.Has(129) {
		t.Error("fresh set non-empty")
	}
	if !s.Add(129) || s.Add(129) {
		t.Error("Add change-reporting broken")
	}
	if !s.Has(129) || s.Count() != 1 {
		t.Error("membership broken")
	}
	s.Add(5)
	c := s.Clone()
	c.Remove(5)
	if !s.Has(5) || c.Has(5) {
		t.Error("Clone aliases storage")
	}
	d := analysis.NewBitSet(130)
	if !s.UnionInto(d) || s.UnionInto(d) {
		t.Error("UnionInto change-reporting broken")
	}
	if d.Count() != 2 {
		t.Errorf("union count = %d, want 2", d.Count())
	}
}

func TestVerifySSAAcceptsAndRejects(t *testing.T) {
	f := lowerFunc(t, `func f(x int) int { var y int = x * 2; return y + 1; }`, "f")
	if err := analysis.VerifySSA(f); err != nil {
		t.Fatalf("valid IR rejected: %v", err)
	}
	// Corrupt: move an instruction's use before its definition by swapping.
	entry := f.Entry()
	if len(entry.Instrs) >= 2 {
		// Find a pair (def, use) and swap them.
		for i := 0; i < len(entry.Instrs); i++ {
			for j := i + 1; j < len(entry.Instrs); j++ {
				uses := false
				for _, a := range entry.Instrs[j].Args {
					if a == entry.Instrs[i] {
						uses = true
					}
				}
				if uses {
					entry.Instrs[i], entry.Instrs[j] = entry.Instrs[j], entry.Instrs[i]
					if err := analysis.VerifySSA(f); err == nil {
						t.Error("use-before-def not caught")
					}
					return
				}
			}
		}
	}
	t.Skip("no def-use pair found in entry block")
}
