// Package parser implements a recursive-descent parser for MiniC with
// precedence-climbing expression parsing and panic-free error recovery:
// on a syntax error the parser records a diagnostic and resynchronizes at
// the next statement or declaration boundary, so one bad construct does not
// hide later errors.
package parser

import (
	"strconv"

	"statefulcc/internal/ast"
	"statefulcc/internal/lexer"
	"statefulcc/internal/source"
	"statefulcc/internal/token"
)

// Parser consumes the token stream of one file.
type Parser struct {
	file *source.File
	toks []lexer.Token
	pos  int
	errs *source.ErrorList
}

// ParseFile lexes and parses one source file, reporting problems to errs.
// A partial AST is returned even when errors occurred.
func ParseFile(file *source.File, errs *source.ErrorList) *ast.File {
	lx := lexer.New(file, errs)
	p := &Parser{file: file, toks: lx.Tokenize(), errs: errs}
	return p.parseFile()
}

// ParseSource is a convenience wrapper over ParseFile for in-memory text.
func ParseSource(name, src string, errs *source.ErrorList) *ast.File {
	return ParseFile(source.NewFile(name, []byte(src)), errs)
}

// ParseExpr parses a standalone expression, for tests and tools.
func ParseExpr(src string, errs *source.ErrorList) ast.Expr {
	f := source.NewFile("<expr>", []byte(src))
	lx := lexer.New(f, errs)
	p := &Parser{file: f, toks: lx.Tokenize(), errs: errs}
	e := p.parseExpr()
	p.expect(token.EOF)
	return e
}

// --- token-stream helpers ---------------------------------------------------

func (p *Parser) cur() lexer.Token { return p.toks[p.pos] }
func (p *Parser) kind() token.Kind { return p.toks[p.pos].Kind }
func (p *Parser) peek() token.Kind {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1].Kind
	}
	return token.EOF
}

func (p *Parser) advance() lexer.Token {
	t := p.toks[p.pos]
	if t.Kind != token.EOF {
		p.pos++
	}
	return t
}

func (p *Parser) at(k token.Kind) bool { return p.kind() == k }

func (p *Parser) accept(k token.Kind) bool {
	if p.at(k) {
		p.advance()
		return true
	}
	return false
}

func (p *Parser) expect(k token.Kind) lexer.Token {
	if p.at(k) {
		return p.advance()
	}
	p.errorf("expected %q, found %q", k.String(), p.cur().String())
	return lexer.Token{Kind: k, Pos: p.cur().Pos}
}

func (p *Parser) errorf(format string, args ...any) {
	p.errs.Errorf(p.file.Position(p.cur().Pos), format, args...)
}

// sync skips tokens until a likely statement/declaration boundary.
func (p *Parser) sync(stopAtBrace bool) {
	for {
		switch p.kind() {
		case token.EOF, token.FUNC, token.EXTERN:
			return
		case token.SEMICOLON:
			p.advance()
			return
		case token.RBRACE:
			if stopAtBrace {
				return
			}
			p.advance()
		default:
			p.advance()
		}
	}
}

// --- declarations ------------------------------------------------------------

func (p *Parser) parseFile() *ast.File {
	f := &ast.File{Name: p.file.Name}
	for !p.at(token.EOF) {
		before := p.pos
		if d := p.parseDecl(); d != nil {
			f.Decls = append(f.Decls, d)
		}
		if p.pos == before {
			// Guarantee progress on pathological input.
			p.errorf("unexpected token %q at top level", p.cur().String())
			p.advance()
		}
	}
	return f
}

func (p *Parser) parseDecl() ast.Decl {
	switch p.kind() {
	case token.FUNC:
		return p.parseFuncDecl()
	case token.EXTERN:
		return p.parseExternDecl()
	case token.VAR:
		d := p.parseVarDecl()
		p.expect(token.SEMICOLON)
		return d
	case token.CONST:
		return p.parseConstDecl()
	default:
		p.errorf("expected declaration, found %q", p.cur().String())
		p.sync(false)
		return nil
	}
}

func (p *Parser) parseFuncDecl() *ast.FuncDecl {
	fn := &ast.FuncDecl{FuncPos: p.expect(token.FUNC).Pos}
	fn.Name = p.expect(token.IDENT).Lit
	fn.Params = p.parseParams()
	if p.at(token.INTTYPE) || p.at(token.BOOLTYPE) || p.at(token.LBRACK) {
		fn.Result = p.parseType()
	}
	fn.Body = p.parseBlock()
	return fn
}

func (p *Parser) parseExternDecl() *ast.ExternDecl {
	d := &ast.ExternDecl{ExternPos: p.expect(token.EXTERN).Pos}
	p.expect(token.FUNC)
	d.Name = p.expect(token.IDENT).Lit
	d.Params = p.parseParams()
	if p.at(token.INTTYPE) || p.at(token.BOOLTYPE) || p.at(token.LBRACK) {
		d.Result = p.parseType()
	}
	p.expect(token.SEMICOLON)
	return d
}

func (p *Parser) parseParams() []*ast.Param {
	p.expect(token.LPAREN)
	var params []*ast.Param
	for !p.at(token.RPAREN) && !p.at(token.EOF) {
		if len(params) > 0 && !p.accept(token.COMMA) {
			p.errorf("expected ',' between parameters")
			break
		}
		name := p.expect(token.IDENT)
		typ := p.parseType()
		params = append(params, &ast.Param{NamePos: name.Pos, Name: name.Lit, Type: typ})
	}
	p.expect(token.RPAREN)
	return params
}

func (p *Parser) parseType() ast.TypeExpr {
	switch p.kind() {
	case token.INTTYPE:
		return &ast.ScalarType{TokPos: p.advance().Pos, Kind: token.INTTYPE}
	case token.BOOLTYPE:
		return &ast.ScalarType{TokPos: p.advance().Pos, Kind: token.BOOLTYPE}
	case token.LBRACK:
		lb := p.advance()
		lenTok := p.expect(token.INT)
		n, _ := parseIntLit(lenTok.Lit)
		p.expect(token.RBRACK)
		elemTok := p.expect(token.INTTYPE)
		return &ast.ArrayType{
			LbrackPos: lb.Pos,
			Len:       n,
			Elem:      &ast.ScalarType{TokPos: elemTok.Pos, Kind: token.INTTYPE},
		}
	default:
		p.errorf("expected type, found %q", p.cur().String())
		return &ast.ScalarType{TokPos: p.cur().Pos, Kind: token.INTTYPE}
	}
}

func (p *Parser) parseVarDecl() *ast.VarDecl {
	d := &ast.VarDecl{VarPos: p.expect(token.VAR).Pos}
	d.Name = p.expect(token.IDENT).Lit
	d.Type = p.parseType()
	if p.accept(token.ASSIGN) {
		d.Init = p.parseExpr()
	}
	return d
}

func (p *Parser) parseConstDecl() *ast.ConstDecl {
	d := &ast.ConstDecl{ConstPos: p.expect(token.CONST).Pos}
	d.Name = p.expect(token.IDENT).Lit
	p.expect(token.ASSIGN)
	d.Value = p.parseExpr()
	p.expect(token.SEMICOLON)
	return d
}

// --- statements ---------------------------------------------------------------

func (p *Parser) parseBlock() *ast.BlockStmt {
	b := &ast.BlockStmt{LbracePos: p.expect(token.LBRACE).Pos}
	for !p.at(token.RBRACE) && !p.at(token.EOF) {
		before := p.pos
		if s := p.parseStmt(); s != nil {
			b.Stmts = append(b.Stmts, s)
		}
		if p.pos == before {
			p.errorf("unexpected token %q in block", p.cur().String())
			p.advance()
		}
	}
	p.expect(token.RBRACE)
	return b
}

func (p *Parser) parseStmt() ast.Stmt {
	switch p.kind() {
	case token.LBRACE:
		return p.parseBlock()
	case token.VAR:
		d := p.parseVarDecl()
		p.expect(token.SEMICOLON)
		return &ast.DeclStmt{Decl: d}
	case token.IF:
		return p.parseIf()
	case token.WHILE:
		return p.parseWhile()
	case token.FOR:
		return p.parseFor()
	case token.RETURN:
		r := &ast.ReturnStmt{ReturnPos: p.advance().Pos}
		if !p.at(token.SEMICOLON) {
			r.Value = p.parseExpr()
		}
		p.expect(token.SEMICOLON)
		return r
	case token.BREAK:
		s := &ast.BreakStmt{BreakPos: p.advance().Pos}
		p.expect(token.SEMICOLON)
		return s
	case token.CONTINUE:
		s := &ast.ContinueStmt{ContinuePos: p.advance().Pos}
		p.expect(token.SEMICOLON)
		return s
	case token.SEMICOLON:
		p.advance() // empty statement
		return nil
	default:
		s := p.parseSimpleStmt()
		p.expect(token.SEMICOLON)
		return s
	}
}

// parseSimpleStmt parses an assignment, inc/dec, or expression statement —
// the statement forms legal in for-headers — without the trailing semicolon.
func (p *Parser) parseSimpleStmt() ast.Stmt {
	if p.at(token.VAR) {
		return &ast.DeclStmt{Decl: p.parseVarDecl()}
	}
	e := p.parseExpr()
	switch {
	case p.kind().IsAssignOp():
		op := p.advance().Kind
		rhs := p.parseExpr()
		if !isLvalue(e) {
			p.errs.Errorf(p.file.Position(e.Pos()), "left side of assignment must be a variable or array element")
		}
		return &ast.AssignStmt{Lhs: e, Op: op, Rhs: rhs}
	case p.at(token.INC), p.at(token.DEC):
		op := token.ADDASSIGN
		if p.advance().Kind == token.DEC {
			op = token.SUBASSIGN
		}
		if !isLvalue(e) {
			p.errs.Errorf(p.file.Position(e.Pos()), "operand of ++/-- must be a variable or array element")
		}
		return &ast.AssignStmt{Lhs: e, Op: op, Rhs: &ast.IntLit{LitPos: e.Pos(), Value: 1}}
	default:
		if _, ok := e.(*ast.CallExpr); !ok {
			p.errs.Errorf(p.file.Position(e.Pos()), "expression statement must be a call")
		}
		return &ast.ExprStmt{X: e}
	}
}

func isLvalue(e ast.Expr) bool {
	switch e.(type) {
	case *ast.IdentExpr, *ast.IndexExpr:
		return true
	}
	return false
}

func (p *Parser) parseIf() ast.Stmt {
	s := &ast.IfStmt{IfPos: p.expect(token.IF).Pos}
	s.Cond = p.parseExpr()
	s.Then = p.parseBlock()
	if p.accept(token.ELSE) {
		if p.at(token.IF) {
			s.Else = p.parseIf()
		} else {
			s.Else = p.parseBlock()
		}
	}
	return s
}

func (p *Parser) parseWhile() ast.Stmt {
	s := &ast.WhileStmt{WhilePos: p.expect(token.WHILE).Pos}
	s.Cond = p.parseExpr()
	s.Body = p.parseBlock()
	return s
}

func (p *Parser) parseFor() ast.Stmt {
	s := &ast.ForStmt{ForPos: p.expect(token.FOR).Pos}
	if !p.at(token.SEMICOLON) {
		s.Init = p.parseSimpleStmt()
	}
	p.expect(token.SEMICOLON)
	if !p.at(token.SEMICOLON) {
		s.Cond = p.parseExpr()
	}
	p.expect(token.SEMICOLON)
	if !p.at(token.LBRACE) {
		s.Post = p.parseSimpleStmt()
	}
	s.Body = p.parseBlock()
	return s
}

// --- expressions ----------------------------------------------------------------

func (p *Parser) parseExpr() ast.Expr { return p.parseBinary(1) }

// parseBinary implements precedence climbing; all MiniC binary operators are
// left-associative.
func (p *Parser) parseBinary(minPrec int) ast.Expr {
	x := p.parseUnary()
	for {
		prec := p.kind().Precedence()
		if prec < minPrec || prec == 0 {
			return x
		}
		op := p.advance().Kind
		y := p.parseBinary(prec + 1)
		x = &ast.BinaryExpr{X: x, Op: op, Y: y}
	}
}

func (p *Parser) parseUnary() ast.Expr {
	switch p.kind() {
	case token.SUB, token.NOT, token.XOR:
		t := p.advance()
		return &ast.UnaryExpr{OpPos: t.Pos, Op: t.Kind, X: p.parseUnary()}
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() ast.Expr {
	x := p.parsePrimary()
	for {
		switch p.kind() {
		case token.LBRACK:
			p.advance()
			idx := p.parseExpr()
			p.expect(token.RBRACK)
			x = &ast.IndexExpr{X: x, Index: idx}
		case token.LPAREN:
			id, ok := x.(*ast.IdentExpr)
			if !ok {
				p.errorf("called object is not a function name")
				id = &ast.IdentExpr{NamePos: x.Pos(), Name: "<error>"}
			}
			x = p.parseCall(id)
		default:
			return x
		}
	}
}

func (p *Parser) parseCall(callee *ast.IdentExpr) ast.Expr {
	p.expect(token.LPAREN)
	call := &ast.CallExpr{Callee: callee}
	for !p.at(token.RPAREN) && !p.at(token.EOF) {
		if len(call.Args) > 0 && !p.accept(token.COMMA) {
			p.errorf("expected ',' between arguments")
			break
		}
		call.Args = append(call.Args, p.parseExpr())
	}
	call.Rparen = p.expect(token.RPAREN).Pos
	return call
}

func (p *Parser) parsePrimary() ast.Expr {
	switch p.kind() {
	case token.IDENT:
		t := p.advance()
		return &ast.IdentExpr{NamePos: t.Pos, Name: t.Lit}
	case token.INT:
		t := p.advance()
		v, err := parseIntLit(t.Lit)
		if err != nil {
			p.errs.Errorf(p.file.Position(t.Pos), "invalid integer literal %q", t.Lit)
		}
		return &ast.IntLit{LitPos: t.Pos, Value: v}
	case token.TRUE:
		return &ast.BoolLit{LitPos: p.advance().Pos, Value: true}
	case token.FALSE:
		return &ast.BoolLit{LitPos: p.advance().Pos, Value: false}
	case token.STRING:
		t := p.advance()
		return &ast.StringLit{LitPos: t.Pos, Value: t.Lit}
	case token.LPAREN:
		lp := p.advance()
		x := p.parseExpr()
		p.expect(token.RPAREN)
		return &ast.ParenExpr{LparenPos: lp.Pos, X: x}
	default:
		p.errorf("expected expression, found %q", p.cur().String())
		t := p.cur()
		if !p.at(token.EOF) && !p.at(token.SEMICOLON) && !p.at(token.RBRACE) && !p.at(token.RPAREN) {
			p.advance()
		}
		return &ast.IntLit{LitPos: t.Pos, Value: 0}
	}
}

func parseIntLit(lit string) (int64, error) {
	if len(lit) > 2 && (lit[:2] == "0x" || lit[:2] == "0X") {
		v, err := strconv.ParseUint(lit[2:], 16, 64)
		return int64(v), err
	}
	return strconv.ParseInt(lit, 10, 64)
}
