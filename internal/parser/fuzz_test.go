package parser

// Native fuzz target for the frontend: any byte sequence must lex, parse,
// and type-check without panicking or hanging (diagnostics are the only
// acceptable outcome). Complements the seeded robustness tests.

import (
	"testing"

	"statefulcc/internal/source"
	"statefulcc/internal/types"
)

func FuzzFrontend(f *testing.F) {
	f.Add("func main() { }")
	f.Add(`func f(a int, b bool) int { if b { return a; } return -a; }`)
	f.Add(`var g [4]int; const K = 1 << 3; extern func e(x int) int;`)
	f.Add("func f() { var x int = 1 +; }")
	f.Add("/* unterminated")
	f.Add(`func r() { r[0] = 0; }`)
	f.Add("\x00\xff func while 0x")

	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 8192 {
			return
		}
		var errs source.ErrorList
		file := source.NewFile("fuzz.mc", []byte(src))
		tree := ParseFile(file, &errs)
		if tree == nil {
			t.Fatal("parser returned nil tree")
		}
		// The checker must also be panic-free on whatever the parser
		// recovered.
		types.Check(file, tree, &errs)
	})
}
