package parser

// Robustness tests: the frontend must never panic or hang, no matter the
// input — it reports diagnostics and returns. Random inputs are generated
// from a seeded RNG (deterministic failures) in three flavours: raw bytes,
// token-ish soup, and mutated valid programs.

import (
	"math/rand"
	"testing"

	"statefulcc/internal/source"
)

func parseArbitrary(t *testing.T, input []byte) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("parser panicked on %q: %v", input, r)
		}
	}()
	var errs source.ErrorList
	ParseFile(source.NewFile("fuzz.mc", input), &errs)
}

func TestParserSurvivesRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		n := rng.Intn(200)
		buf := make([]byte, n)
		for j := range buf {
			buf[j] = byte(rng.Intn(256))
		}
		parseArbitrary(t, buf)
	}
}

func TestParserSurvivesTokenSoup(t *testing.T) {
	fragments := []string{
		"func", "var", "const", "if", "else", "while", "for", "return",
		"break", "continue", "extern", "int", "bool", "true", "false",
		"x", "y", "main", "0", "42", `"str"`, "+", "-", "*", "/", "%",
		"==", "!=", "<", "<=", ">", ">=", "&&", "||", "!", "(", ")",
		"{", "}", "[", "]", ",", ";", "=", "+=", "++", "<<", ">>",
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		var buf []byte
		n := rng.Intn(60)
		for j := 0; j < n; j++ {
			buf = append(buf, fragments[rng.Intn(len(fragments))]...)
			buf = append(buf, ' ')
		}
		parseArbitrary(t, buf)
	}
}

func TestParserSurvivesMutatedPrograms(t *testing.T) {
	base := []byte(`
const N = 4;
var table [8]int;
extern func helper(x int) int;
func compute(a int, b bool) int {
    var x int = a * 2;
    for var i int = 0; i < N; i++ {
        if b && x > 3 { x = -x; } else { x += helper(i); }
        table[i % 8] = x;
    }
    while x > 0 { x -= 3; }
    return x;
}
func main() { print("r", compute(5, true)); }
`)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 400; i++ {
		buf := append([]byte(nil), base...)
		// Apply 1-4 byte-level mutations: flip, delete, insert, duplicate.
		for m := 0; m < 1+rng.Intn(4); m++ {
			if len(buf) == 0 {
				break
			}
			pos := rng.Intn(len(buf))
			switch rng.Intn(4) {
			case 0:
				buf[pos] = byte(rng.Intn(128))
			case 1:
				buf = append(buf[:pos], buf[pos+1:]...)
			case 2:
				buf = append(buf[:pos], append([]byte{byte(rng.Intn(128))}, buf[pos:]...)...)
			case 3:
				end := pos + rng.Intn(10)
				if end > len(buf) {
					end = len(buf)
				}
				buf = append(buf[:end], append(append([]byte(nil), buf[pos:end]...), buf[end:]...)...)
			}
		}
		parseArbitrary(t, buf)
	}
}

func TestDeeplyNestedInput(t *testing.T) {
	// Deep nesting must not blow the stack unreasonably or hang.
	var buf []byte
	buf = append(buf, []byte("func f() int { return ")...)
	for i := 0; i < 2000; i++ {
		buf = append(buf, '(')
	}
	buf = append(buf, '1')
	for i := 0; i < 2000; i++ {
		buf = append(buf, ')')
	}
	buf = append(buf, []byte("; }")...)
	parseArbitrary(t, buf)
}
