package parser

import (
	"strings"
	"testing"

	"statefulcc/internal/ast"
	"statefulcc/internal/source"
	"statefulcc/internal/token"
)

func parse(t *testing.T, src string) (*ast.File, *source.ErrorList) {
	t.Helper()
	var errs source.ErrorList
	f := ParseSource("test.mc", src, &errs)
	return f, &errs
}

func mustParse(t *testing.T, src string) *ast.File {
	t.Helper()
	f, errs := parse(t, src)
	if errs.HasErrors() {
		t.Fatalf("parse errors: %v", errs)
	}
	return f
}

func TestFuncDecl(t *testing.T) {
	f := mustParse(t, `
func add(a int, b int) int {
    return a + b;
}`)
	if len(f.Decls) != 1 {
		t.Fatalf("decls = %d, want 1", len(f.Decls))
	}
	fn, ok := f.Decls[0].(*ast.FuncDecl)
	if !ok {
		t.Fatalf("decl is %T, want FuncDecl", f.Decls[0])
	}
	if fn.Name != "add" || len(fn.Params) != 2 || fn.Result == nil {
		t.Errorf("bad FuncDecl: name=%s params=%d result=%v", fn.Name, len(fn.Params), fn.Result)
	}
}

func TestExternAndGlobals(t *testing.T) {
	f := mustParse(t, `
extern func helper(x int) int;
var counter int = 10;
var table [8]int;
const LIMIT = 100;
func main() { }
`)
	if len(f.Decls) != 5 {
		t.Fatalf("decls = %d, want 5", len(f.Decls))
	}
	if _, ok := f.Decls[0].(*ast.ExternDecl); !ok {
		t.Errorf("decl 0 is %T, want ExternDecl", f.Decls[0])
	}
	v1 := f.Decls[1].(*ast.VarDecl)
	if v1.Init == nil {
		t.Error("counter should have an initializer")
	}
	v2 := f.Decls[2].(*ast.VarDecl)
	at, ok := v2.Type.(*ast.ArrayType)
	if !ok || at.Len != 8 {
		t.Errorf("table type = %#v, want [8]int", v2.Type)
	}
	if _, ok := f.Decls[3].(*ast.ConstDecl); !ok {
		t.Errorf("decl 3 is %T, want ConstDecl", f.Decls[3])
	}
}

func TestPrecedence(t *testing.T) {
	var errs source.ErrorList
	e := ParseExpr("1 + 2 * 3", &errs)
	if errs.HasErrors() {
		t.Fatalf("errors: %v", errs)
	}
	b, ok := e.(*ast.BinaryExpr)
	if !ok || b.Op != token.ADD {
		t.Fatalf("root = %#v, want ADD", e)
	}
	rhs, ok := b.Y.(*ast.BinaryExpr)
	if !ok || rhs.Op != token.MUL {
		t.Fatalf("rhs = %#v, want MUL", b.Y)
	}
}

func TestPrecedenceTable(t *testing.T) {
	// Each case: src, expected top operator after parsing.
	cases := []struct {
		src string
		top token.Kind
	}{
		{"a || b && c", token.LOR},
		{"a && b == c", token.LAND},
		{"a == b < c", token.EQL},
		{"a < b + c", token.LSS},
		{"a + b << c", token.SHL}, // + binds tighter than <<
		{"a | b ^ c", token.OR},
		{"a ^ b & c", token.XOR},
		{"a & b == c", token.AND}, // == binds tighter than & (Go-style table)
	}
	for _, c := range cases {
		var errs source.ErrorList
		e := ParseExpr(c.src, &errs)
		if errs.HasErrors() {
			t.Errorf("%q: %v", c.src, errs)
			continue
		}
		b, ok := e.(*ast.BinaryExpr)
		if !ok {
			t.Errorf("%q: not a binary expr", c.src)
			continue
		}
		if b.Op != c.top {
			t.Errorf("%q: top op = %v, want %v", c.src, b.Op, c.top)
		}
	}
}

func TestLeftAssociativity(t *testing.T) {
	var errs source.ErrorList
	e := ParseExpr("a - b - c", &errs)
	b := e.(*ast.BinaryExpr)
	// (a-b)-c: left child is the inner subtraction.
	if _, ok := b.X.(*ast.BinaryExpr); !ok {
		t.Errorf("a-b-c parsed right-associatively")
	}
}

func TestStatements(t *testing.T) {
	f := mustParse(t, `
func f(n int) int {
    var s int = 0;
    var arr [4]int;
    arr[0] = 1;
    for var i int = 0; i < n; i += 1 {
        s += arr[i % 4];
        if s > 100 {
            break;
        } else if s < 0 {
            continue;
        }
    }
    while s > 10 {
        s = s / 2;
    }
    s++;
    s--;
    print("s", s);
    return s;
}`)
	fn := f.Decls[0].(*ast.FuncDecl)
	if len(fn.Body.Stmts) < 7 {
		t.Errorf("body stmts = %d, want >= 7", len(fn.Body.Stmts))
	}
}

func TestIncDecDesugar(t *testing.T) {
	f := mustParse(t, `func f() { var x int; x++; }`)
	fn := f.Decls[0].(*ast.FuncDecl)
	as, ok := fn.Body.Stmts[1].(*ast.AssignStmt)
	if !ok || as.Op != token.ADDASSIGN {
		t.Fatalf("x++ did not desugar to +=: %#v", fn.Body.Stmts[1])
	}
	lit, ok := as.Rhs.(*ast.IntLit)
	if !ok || lit.Value != 1 {
		t.Errorf("x++ rhs = %#v, want 1", as.Rhs)
	}
}

func TestErrorRecovery(t *testing.T) {
	f, errs := parse(t, `
func good1() { return; }
func bad( { }
func good2() { return; }
`)
	if !errs.HasErrors() {
		t.Fatal("expected parse errors")
	}
	// good2 must still be present despite the error in bad.
	found := false
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name == "good2" {
			found = true
		}
	}
	if !found {
		t.Error("parser did not recover to parse good2")
	}
}

func TestMultipleErrors(t *testing.T) {
	_, errs := parse(t, `
func a() { 1 +; }
func b() { return @; }
`)
	if errs.Len() < 2 {
		t.Errorf("expected at least 2 diagnostics, got %d: %v", errs.Len(), errs)
	}
}

func TestPrintRoundTrip(t *testing.T) {
	src := `
const N = 16;
var total int = 0;
var buf [16]int;
extern func ext(x int) int;

func compute(a int, b bool) int {
    var x int = a * 2 + 1;
    if b && x > 3 || a == 0 {
        x = -x;
    }
    for var i int = 0; i < N; i++ {
        buf[i] = ext(x) % (i + 1);
        total += buf[i];
    }
    while x > 0 {
        x -= 3;
    }
    return x + total;
}

func main() {
    print("result", compute(5, true));
    assert(total >= 0, "total negative");
}
`
	f1 := mustParse(t, src)
	printed := ast.Print(f1)
	f2, errs := parse(t, printed)
	if errs.HasErrors() {
		t.Fatalf("printed source does not re-parse: %v\n--- printed ---\n%s", errs, printed)
	}
	printed2 := ast.Print(f2)
	if printed != printed2 {
		t.Errorf("print is not a fixed point:\n--- first ---\n%s\n--- second ---\n%s", printed, printed2)
	}
}

func TestParenPreserved(t *testing.T) {
	var errs source.ErrorList
	e := ParseExpr("(a + b) * c", &errs)
	if s := ast.PrintExpr(e); !strings.Contains(s, "(") {
		t.Errorf("parens lost: %s", s)
	}
}

func TestForHeaderVariants(t *testing.T) {
	srcs := []string{
		`func f() { for ;; { break; } }`,
		`func f() { for var i int = 0; ; i++ { break; } }`,
		`func f(n int) { for ; n > 0; { n--; } }`,
	}
	for _, src := range srcs {
		if _, errs := parse(t, src); errs.HasErrors() {
			t.Errorf("%q: %v", src, errs)
		}
	}
}

func TestDanglingElse(t *testing.T) {
	f := mustParse(t, `func f(a bool, b bool) { if a { } else if b { } else { } }`)
	fn := f.Decls[0].(*ast.FuncDecl)
	ifs := fn.Body.Stmts[0].(*ast.IfStmt)
	inner, ok := ifs.Else.(*ast.IfStmt)
	if !ok {
		t.Fatalf("else-if did not chain: %#v", ifs.Else)
	}
	if inner.Else == nil {
		t.Error("final else lost")
	}
}
