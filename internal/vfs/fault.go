package vfs

// FaultFS: the deterministic fault injector. It wraps any FS, records
// every operation in a call log, and injects failures according to
// explicit rules and/or a seeded probabilistic schedule. Determinism is
// the design center: a call is identified by (op, canonical path, nth
// occurrence of that pair), a key that does not depend on goroutine
// interleaving across distinct paths — so a fault schedule replays
// exactly, even under the build system's worker pool, and a failing chaos
// seed reproduces from its seed alone.

import (
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"strings"
	"sync"
)

// ErrInjected is the base error of every injected (non-crash) fault.
var ErrInjected = errors.New("vfs: injected fault")

// ErrCrashed is returned by every operation after a crash fault fires —
// the filesystem behaves as if the process lost its disk mid-run.
var ErrCrashed = errors.New("vfs: crashed by fault injection")

// Fault selects how a firing rule fails the operation.
type Fault int

const (
	// FaultError fails the operation with ErrInjected (or Rule.Err).
	FaultError Fault = iota
	// FaultTorn, on a write, writes only half the buffer before failing —
	// a torn/short write. On any other op it behaves like FaultError.
	FaultTorn
	// FaultCrash fails the operation and every subsequent operation on
	// this FaultFS (and all files opened through it) with ErrCrashed.
	FaultCrash
)

// String names the fault kind for logs and subtest labels.
func (k Fault) String() string {
	switch k {
	case FaultError:
		return "error"
	case FaultTorn:
		return "torn"
	case FaultCrash:
		return "crash"
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// Rule selects calls to fail. Zero fields match everything: an empty Op
// matches any operation, an empty Path matches any path, and Nth 0 fires
// on every matching call (Nth n > 0 fires only on the nth matching call,
// counted per rule).
type Rule struct {
	Op   Op
	Path string // glob, matched against the canonical path and its base
	Nth  int
	Kind Fault
	Err  error // error to inject; nil defaults to ErrInjected
}

// Call is one logged filesystem operation. N is the 1-based occurrence
// index of this (Op, Path) pair — the replay-stable identity of the call.
type Call struct {
	Op   Op
	Path string
	N    int
}

// String renders the call as its subtest-friendly identity.
func (c Call) String() string { return fmt.Sprintf("%s:%s#%d", c.Op, c.Path, c.N) }

// Schedule injects faults probabilistically but reproducibly: whether a
// call fails is a pure function of (Seed, op, canonical path, occurrence
// index), so the same seed over the same workload injects the same faults
// regardless of thread interleaving.
type Schedule struct {
	Seed uint64
	// Prob is the per-call injection probability in [0, 1].
	Prob float64
	// Torn additionally turns half the injected write faults into torn
	// writes (decided by the same hash, so still reproducible).
	Torn bool
}

// decide returns whether the call faults and how.
func (s *Schedule) decide(c Call) (bool, Fault) {
	if s == nil || s.Prob <= 0 {
		return false, FaultError
	}
	h := uint64(14695981039346656037) // FNV-1a offset basis
	mix := func(b byte) { h ^= uint64(b); h *= 1099511628211 }
	for i := 0; i < 8; i++ {
		mix(byte(s.Seed >> (8 * i)))
	}
	for i := 0; i < len(c.Op); i++ {
		mix(c.Op[i])
	}
	mix(0)
	for i := 0; i < len(c.Path); i++ {
		mix(c.Path[i])
	}
	mix(0)
	for i := 0; i < 8; i++ {
		mix(byte(uint64(c.N) >> (8 * i)))
	}
	if float64(h&0xFFFFFFFF)/float64(1<<32) >= s.Prob {
		return false, FaultError
	}
	if s.Torn && c.Op == OpWrite && h&(1<<33) != 0 {
		return true, FaultTorn
	}
	return true, FaultError
}

// FaultFS wraps an FS with call logging and deterministic fault
// injection. With no rules and no schedule it is a pure recorder — the
// chaos harness uses that mode to enumerate the fault-point space. Safe
// for concurrent use.
type FaultFS struct {
	inner FS
	canon func(string) string

	mu       sync.Mutex
	rules    []Rule
	matches  []int // per-rule matching-call count (drives Nth)
	sched    *Schedule
	keyCount map[Call]int // (op, path) → occurrences; N field zero in keys
	calls    []Call
	injected []Call
	crashed  bool
}

// Option configures a FaultFS.
type Option func(*FaultFS)

// WithCanon sets the path canonicalizer applied before rule matching and
// logging. The chaos harness uses it to strip test-temp roots and fold
// randomized temp-file names into their patterns, making call identities
// stable across runs. Must be idempotent; nil means identity.
func WithCanon(f func(string) string) Option {
	return func(ffs *FaultFS) { ffs.canon = f }
}

// WithRules installs explicit fault rules.
func WithRules(rules ...Rule) Option {
	return func(ffs *FaultFS) { ffs.rules = append(ffs.rules, rules...) }
}

// WithSchedule installs a seeded probabilistic schedule.
func WithSchedule(s *Schedule) Option {
	return func(ffs *FaultFS) { ffs.sched = s }
}

// NewFaultFS wraps inner.
func NewFaultFS(inner FS, opts ...Option) *FaultFS {
	ffs := &FaultFS{inner: inner, keyCount: make(map[Call]int)}
	for _, o := range opts {
		o(ffs)
	}
	ffs.matches = make([]int, len(ffs.rules))
	return ffs
}

// Calls returns a copy of the full call log, in observation order.
func (f *FaultFS) Calls() []Call {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Call(nil), f.calls...)
}

// Injected returns the calls that had a fault injected.
func (f *FaultFS) Injected() []Call {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Call(nil), f.injected...)
}

// Crashed reports whether a crash fault has fired.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// begin logs one operation and decides its fate: a nil error means the
// operation proceeds to the wrapped FS; kind is meaningful only when err
// is non-nil (FaultTorn lets the caller perform a partial write).
func (f *FaultFS) begin(op Op, path string) (kind Fault, err error) {
	if f.canon != nil {
		path = f.canon(path)
	}
	f.mu.Lock()
	defer f.mu.Unlock()

	key := Call{Op: op, Path: path}
	f.keyCount[key]++
	call := Call{Op: op, Path: path, N: f.keyCount[key]}
	f.calls = append(f.calls, call)

	if f.crashed {
		f.injected = append(f.injected, call)
		return FaultCrash, fmt.Errorf("%s %s: %w", op, path, ErrCrashed)
	}
	for i := range f.rules {
		r := &f.rules[i]
		if !ruleMatches(r, call) {
			continue
		}
		f.matches[i]++
		if r.Nth != 0 && f.matches[i] != r.Nth {
			continue
		}
		return f.fire(call, r.Kind, r.Err)
	}
	if ok, kind := f.sched.decide(call); ok {
		return f.fire(call, kind, nil)
	}
	return FaultError, nil
}

// fire records an injection and builds its error (mu held).
func (f *FaultFS) fire(call Call, kind Fault, base error) (Fault, error) {
	f.injected = append(f.injected, call)
	if kind == FaultCrash {
		f.crashed = true
		return kind, fmt.Errorf("%s %s: %w", call.Op, call.Path, ErrCrashed)
	}
	if base == nil {
		base = ErrInjected
	}
	return kind, fmt.Errorf("%s %s: %w", call.Op, call.Path, base)
}

// ruleMatches reports whether a rule selects a call (ignoring Nth).
func ruleMatches(r *Rule, c Call) bool {
	if r.Op != "" && r.Op != c.Op {
		return false
	}
	if r.Path == "" {
		return true
	}
	if ok, _ := filepath.Match(r.Path, c.Path); ok {
		return true
	}
	if strings.ContainsRune(r.Path, filepath.Separator) {
		// A glob with a separator is anchored to the full path; only
		// bare-name globs fall back to base matching.
		return false
	}
	ok, _ := filepath.Match(r.Path, filepath.Base(c.Path))
	return ok
}

// --- FS implementation --------------------------------------------------------

func (f *FaultFS) Open(name string) (File, error) {
	if _, err := f.begin(OpOpen, name); err != nil {
		return nil, err
	}
	inner, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner, path: name}, nil
}

func (f *FaultFS) Create(name string) (File, error) {
	if _, err := f.begin(OpCreate, name); err != nil {
		return nil, err
	}
	inner, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner, path: name}, nil
}

func (f *FaultFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	if _, err := f.begin(OpOpenFile, name); err != nil {
		return nil, err
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner, path: name}, nil
}

func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	// The call is identified by dir/pattern — the randomized generated
	// name could never replay.
	if _, err := f.begin(OpCreateTemp, filepath.Join(dir, pattern)); err != nil {
		return nil, err
	}
	inner, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner, path: inner.Name()}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	// Identified by the destination: the source is usually a randomized
	// temp name.
	if _, err := f.begin(OpRename, newpath); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error {
	if _, err := f.begin(OpRemove, name); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

func (f *FaultFS) MkdirAll(path string, perm fs.FileMode) error {
	if _, err := f.begin(OpMkdirAll, path); err != nil {
		return err
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *FaultFS) ReadDir(name string) ([]fs.DirEntry, error) {
	if _, err := f.begin(OpReadDir, name); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(name)
}

func (f *FaultFS) Stat(name string) (fs.FileInfo, error) {
	if _, err := f.begin(OpStat, name); err != nil {
		return nil, err
	}
	return f.inner.Stat(name)
}

// faultFile routes handle-level ops back through the injector. It keeps
// the raw path; canonicalization happens in begin, so a temp file's ops
// fold into its pattern class.
type faultFile struct {
	fs    *FaultFS
	inner File
	path  string
}

func (f *faultFile) Name() string { return f.inner.Name() }

func (f *faultFile) Read(p []byte) (int, error) {
	if _, err := f.fs.begin(OpRead, f.path); err != nil {
		return 0, err
	}
	return f.inner.Read(p)
}

func (f *faultFile) Write(p []byte) (int, error) {
	kind, err := f.fs.begin(OpWrite, f.path)
	if err != nil {
		if kind == FaultTorn && len(p) > 0 {
			// Torn write: half the buffer lands, then the failure.
			n, werr := f.inner.Write(p[:len(p)/2])
			if werr != nil {
				return n, werr
			}
			return n, err
		}
		return 0, err
	}
	return f.inner.Write(p)
}

func (f *faultFile) Sync() error {
	if _, err := f.fs.begin(OpSync, f.path); err != nil {
		return err
	}
	return f.inner.Sync()
}

func (f *faultFile) Close() error {
	if _, err := f.fs.begin(OpClose, f.path); err != nil {
		// The underlying handle must still be released, or fault walks
		// leak descriptors; the injected error still reports failure.
		_ = f.inner.Close()
		return err
	}
	return f.inner.Close()
}
