// Package chaostest holds the shared machinery of the crash/chaos
// robustness suites (buildsys, history, state): canonical call identities
// that survive fresh temp directories, fault-point enumeration from a
// recorded clean run, and the rule construction that replays exactly one
// fault at one point.
//
// The harness pattern (see docs/ROBUSTNESS.md):
//
//  1. Run the workload once over a recording FaultFS (no rules). Every
//     logged call is an injectable fault point — the enumeration comes
//     from observation, not a hand-kept list.
//  2. For each point, re-run the workload in a fresh directory with a
//     FaultFS that fails exactly that call (and, for crash faults,
//     everything after it), then assert the degradation invariant.
//  3. Assert coverage: every walked run must report its fault actually
//     fired (Injected non-empty), or the enumeration and the replay have
//     drifted and the suite fails loudly.
package chaostest

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"statefulcc/internal/vfs"
)

// Canon builds the canonicalizer the suites install with vfs.WithCanon:
// paths under root become root-relative (so fault points recorded in one
// t.TempDir replay in another), and a basename matching one of the
// temp-file patterns folds into the pattern itself (so randomized
// CreateTemp names share one stable identity). Idempotent.
func Canon(root string, tempPatterns ...string) func(string) string {
	return func(path string) string {
		if rel, err := filepath.Rel(root, path); err == nil && rel != ".." &&
			!strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
			path = rel
		}
		path = filepath.Clean(path)
		dir, base := filepath.Split(path)
		for _, pat := range tempPatterns {
			if ok, _ := filepath.Match(pat, base); ok && base != pat {
				return filepath.Join(dir, pat)
			}
		}
		return path
	}
}

// Points converts a recorded call log into the fault-point enumeration:
// the distinct calls, in first-observation order. (A single clean run
// never logs the same (op, path, n) twice; deduping keeps the walk
// well-defined if a recording is ever concatenated.)
func Points(calls []vfs.Call) []vfs.Call {
	seen := make(map[vfs.Call]bool, len(calls))
	out := make([]vfs.Call, 0, len(calls))
	for _, c := range calls {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// RuleFor builds the rule that injects kind at exactly point p: same op,
// the canonical path as an anchored glob, and the point's occurrence
// index as the rule's Nth. (Canonical temp-class paths contain the glob
// metacharacter '*' and match their whole class, which is exactly the
// identity they replay under.)
func RuleFor(p vfs.Call, kind vfs.Fault) vfs.Rule {
	return vfs.Rule{Op: p.Op, Path: p.Path, Nth: p.N, Kind: kind}
}

// OpsCovered tallies fault points per operation — the suites assert the
// workload actually exercises the fault space (writes, syncs, renames,
// …) rather than silently recording nothing.
func OpsCovered(points []vfs.Call) map[vfs.Op]int {
	out := make(map[vfs.Op]int)
	for _, p := range points {
		out[p.Op]++
	}
	return out
}

// AssertFired fails the test unless the walked run injected at least one
// fault — the harness's own coverage check: a recorded point that no
// longer fires means enumeration and replay have drifted.
func AssertFired(t *testing.T, ffs *vfs.FaultFS, p vfs.Call) {
	t.Helper()
	if len(ffs.Injected()) == 0 {
		t.Fatalf("fault point %v never fired during replay: enumeration and workload have drifted", p)
	}
}

// AssertFiredOrAbsent is AssertFired for workloads whose I/O volume is
// not perfectly reproducible (build timings embedded in flight-recorder
// records shift buffered-write chunk counts by ±1). If the fault did not
// fire, the replay's own call log decides: fewer occurrences of the
// point's (op, path) key than p.N means the point legitimately did not
// exist in this run (reported, not failed); at least p.N occurrences
// without a firing is real drift and fails. Returns whether it fired.
func AssertFiredOrAbsent(t *testing.T, ffs *vfs.FaultFS, p vfs.Call) bool {
	t.Helper()
	if len(ffs.Injected()) > 0 {
		return true
	}
	occurrences := 0
	for _, c := range ffs.Calls() {
		if c.Op == p.Op && c.Path == p.Path {
			occurrences++
		}
	}
	if occurrences < p.N {
		t.Logf("fault point %v absent in this run (%d occurrences); covered by neighboring points", p, occurrences)
		return false
	}
	t.Fatalf("fault point %v occurred (%d ≥ %d) but never fired: enumeration and replay have drifted", p, occurrences, p.N)
	return false
}

// Name renders a point as a stable subtest name.
func Name(p vfs.Call, kind vfs.Fault) string {
	return fmt.Sprintf("%s/%s", kind, strings.ReplaceAll(p.String(), string(filepath.Separator), "|"))
}
