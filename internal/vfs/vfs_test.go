package vfs_test

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"statefulcc/internal/vfs"
)

// TestOsFSPassthrough drives every FS operation through vfs.OS and checks
// it behaves exactly like the os package.
func TestOsFSPassthrough(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "a", "b")
	if err := vfs.OS.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}

	f, err := vfs.OS.Create(filepath.Join(sub, "x.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	tmp, err := vfs.OS.CreateTemp(sub, ".tmp-*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tmp.Write([]byte("temp")); err != nil {
		t.Fatal(err)
	}
	if err := tmp.Close(); err != nil {
		t.Fatal(err)
	}
	if err := vfs.OS.Rename(tmp.Name(), filepath.Join(sub, "y.txt")); err != nil {
		t.Fatal(err)
	}

	r, err := vfs.OS.Open(filepath.Join(sub, "x.txt"))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(r)
	if err != nil || string(data) != "hello" {
		t.Fatalf("read %q, %v", data, err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	entries, err := vfs.OS.ReadDir(sub)
	if err != nil || len(entries) != 2 {
		t.Fatalf("readdir: %d entries, %v", len(entries), err)
	}
	if fi, err := vfs.OS.Stat(filepath.Join(sub, "y.txt")); err != nil || fi.Size() != 4 {
		t.Fatalf("stat: %v, %v", fi, err)
	}
	if err := vfs.OS.Remove(filepath.Join(sub, "y.txt")); err != nil {
		t.Fatal(err)
	}
	if _, err := vfs.OS.Open(filepath.Join(sub, "y.txt")); !os.IsNotExist(err) {
		t.Fatalf("removed file still opens: %v", err)
	}
	if _, err := vfs.OS.Open(filepath.Join(sub, "missing")); err == nil {
		t.Fatal("open of missing file succeeded")
	}
}

func TestDefault(t *testing.T) {
	if vfs.Default(nil) != vfs.OS {
		t.Error("Default(nil) is not OS")
	}
	ffs := vfs.NewFaultFS(vfs.OS)
	if vfs.Default(ffs) != vfs.FS(ffs) {
		t.Error("Default does not pass through a non-nil FS")
	}
}

// TestFaultNthCall: a rule with Nth fails exactly the nth matching call.
func TestFaultNthCall(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(vfs.OS, vfs.WithRules(vfs.Rule{Op: vfs.OpCreate, Nth: 2}))

	if f, err := ffs.Create(filepath.Join(dir, "one")); err != nil {
		t.Fatalf("first create should pass: %v", err)
	} else {
		f.Close()
	}
	if _, err := ffs.Create(filepath.Join(dir, "two")); !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("second create should fail injected, got %v", err)
	}
	if f, err := ffs.Create(filepath.Join(dir, "three")); err != nil {
		t.Fatalf("third create should pass: %v", err)
	} else {
		f.Close()
	}
	if got := len(ffs.Injected()); got != 1 {
		t.Fatalf("injected %d faults, want 1", got)
	}
}

// TestFaultGlob: path globs select by full path (with separators) or base
// name (without).
func TestFaultGlob(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(vfs.OS, vfs.WithRules(vfs.Rule{Op: vfs.OpCreate, Path: "*.state"}))
	if _, err := ffs.Create(filepath.Join(dir, "unit.state")); !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("*.state create should fail, got %v", err)
	}
	if f, err := ffs.Create(filepath.Join(dir, "unit.other")); err != nil {
		t.Fatalf("non-matching create failed: %v", err)
	} else {
		f.Close()
	}

	// Anchored glob (contains a separator) must not fall back to base
	// matching in a different directory.
	anchored := vfs.NewFaultFS(vfs.OS, vfs.WithRules(vfs.Rule{Path: filepath.Join(dir, "sub", "*.state")}))
	if f, err := anchored.Create(filepath.Join(dir, "unit.state")); err != nil {
		t.Fatalf("anchored glob leaked to other dir: %v", err)
	} else {
		f.Close()
	}
}

// TestFaultTornWrite: a torn write lands half the buffer and reports an
// injected error with a short count.
func TestFaultTornWrite(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(vfs.OS, vfs.WithRules(vfs.Rule{Op: vfs.OpWrite, Kind: vfs.FaultTorn}))
	f, err := ffs.Create(filepath.Join(dir, "torn"))
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("0123456789")
	n, err := f.Write(payload)
	if !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("torn write reported %v", err)
	}
	if n != len(payload)/2 {
		t.Fatalf("torn write landed %d bytes, want %d", n, len(payload)/2)
	}
	f.Close()
	data, err := os.ReadFile(filepath.Join(dir, "torn"))
	if err != nil || string(data) != "01234" {
		t.Fatalf("on-disk torn content %q, %v", data, err)
	}
}

// TestFaultCrash: after a crash fault fires, every subsequent operation —
// including handles opened before the crash — fails with ErrCrashed.
func TestFaultCrash(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(vfs.OS, vfs.WithRules(vfs.Rule{Op: vfs.OpRename, Kind: vfs.FaultCrash}))

	pre, err := ffs.Create(filepath.Join(dir, "pre"))
	if err != nil {
		t.Fatal(err)
	}
	if err := ffs.Rename(filepath.Join(dir, "pre"), filepath.Join(dir, "post")); !errors.Is(err, vfs.ErrCrashed) {
		t.Fatalf("crash op reported %v", err)
	}
	if !ffs.Crashed() {
		t.Fatal("FS not marked crashed")
	}
	if _, err := ffs.Create(filepath.Join(dir, "later")); !errors.Is(err, vfs.ErrCrashed) {
		t.Fatalf("post-crash create reported %v", err)
	}
	if _, err := pre.Write([]byte("x")); !errors.Is(err, vfs.ErrCrashed) {
		t.Fatalf("post-crash write on old handle reported %v", err)
	}
	if err := pre.Close(); !errors.Is(err, vfs.ErrCrashed) {
		t.Fatalf("post-crash close reported %v", err)
	}
}

// TestCallLogIdentity: the log assigns stable (op, path, nth) identities,
// and CreateTemp folds into its dir/pattern class.
func TestCallLogIdentity(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(vfs.OS)
	for i := 0; i < 2; i++ {
		f, err := ffs.CreateTemp(dir, ".state-*")
		if err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	calls := ffs.Calls()
	key := filepath.Join(dir, ".state-*")
	want := []vfs.Call{
		{Op: vfs.OpCreateTemp, Path: key, N: 1},
		{Op: vfs.OpClose, Path: key, N: 1},
		{Op: vfs.OpCreateTemp, Path: key, N: 2},
		{Op: vfs.OpClose, Path: key, N: 2},
	}
	// Without a canonicalizer the Close path is the literal temp name, so
	// install identity expectations only on ops keyed by pattern.
	if len(calls) != len(want) {
		t.Fatalf("logged %d calls, want %d: %v", len(calls), len(want), calls)
	}
	for i := range want {
		if calls[i].Op != want[i].Op {
			t.Fatalf("call %d op = %s, want %s", i, calls[i].Op, want[i].Op)
		}
	}
	if calls[0] != want[0] || calls[2] != want[2] {
		t.Fatalf("createtemp identities %v / %v, want %v / %v", calls[0], calls[2], want[0], want[2])
	}
}

// TestScheduleReplay: the same seed over the same call sequence injects
// the same faults; a different seed (almost surely) differs somewhere
// over many calls.
func TestScheduleReplay(t *testing.T) {
	run := func(seed uint64) []vfs.Call {
		dir := t.TempDir()
		ffs := vfs.NewFaultFS(vfs.OS,
			vfs.WithSchedule(&vfs.Schedule{Seed: seed, Prob: 0.3, Torn: true}),
			vfs.WithCanon(func(p string) string {
				rel, err := filepath.Rel(dir, p)
				if err != nil {
					return p
				}
				return rel
			}))
		for i := 0; i < 40; i++ {
			name := filepath.Join(dir, "f"+string(rune('a'+i%8)))
			f, err := ffs.Create(name)
			if err != nil {
				continue
			}
			f.Write([]byte("payload"))
			f.Sync()
			f.Close()
		}
		return ffs.Injected()
	}

	a, b := run(42), run(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%v\nvs\n%v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("schedule with prob 0.3 injected nothing over 160 calls")
	}
	if c := run(1042); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules (suspicious)")
	}
}
