// Package vfs is the filesystem seam under every state-touching layer of
// the build stack (internal/state, internal/history, internal/buildsys).
// Production code uses OS, a thin passthrough to the os package; tests
// wrap it in a FaultFS that injects I/O failures deterministically —
// per-op, per-path-glob, nth-call, torn writes, and full "crash here"
// stops — so the degradation guarantee ("a state-layer fault costs at
// most a cold build, never a wrong or failed one") can be proven at every
// fault point instead of asserted in comments. See docs/ROBUSTNESS.md.
//
// The interface is intentionally small: exactly the operations the state,
// history, and build layers perform, nothing speculative. Everything is
// safe for concurrent use when the wrapped filesystem is.
package vfs

import (
	"io"
	"io/fs"
	"os"
)

// Op names one injectable filesystem operation. Fault rules select on it;
// the FaultFS call log records it.
type Op string

// The complete operation vocabulary. Directory-level ops come from FS,
// handle-level ops (OpRead..OpClose) from File.
const (
	OpOpen       Op = "open"
	OpCreate     Op = "create"
	OpOpenFile   Op = "openfile"
	OpCreateTemp Op = "createtemp"
	OpRename     Op = "rename"
	OpRemove     Op = "remove"
	OpMkdirAll   Op = "mkdirall"
	OpReadDir    Op = "readdir"
	OpStat       Op = "stat"

	OpRead  Op = "read"
	OpWrite Op = "write"
	OpSync  Op = "sync"
	OpClose Op = "close"
)

// Ops lists every injectable operation, in a fixed order (used by the
// chaos harness to reason about fault-space coverage).
var Ops = []Op{
	OpOpen, OpCreate, OpOpenFile, OpCreateTemp, OpRename, OpRemove,
	OpMkdirAll, OpReadDir, OpStat, OpRead, OpWrite, OpSync, OpClose,
}

// File is an open file handle: the subset of *os.File the state-touching
// layers use.
type File interface {
	io.Reader
	io.Writer
	// Sync flushes the file to stable storage (fsync).
	Sync() error
	Close() error
	// Name returns the path the handle was opened with (for CreateTemp,
	// the generated temp path).
	Name() string
}

// FS is the filesystem interface. All paths are host paths, as with the
// os package.
type FS interface {
	// Open opens a file for reading.
	Open(name string) (File, error)
	// Create truncates or creates a file for writing.
	Create(name string) (File, error)
	// OpenFile is the generalized open (used for O_APPEND writers).
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// CreateTemp creates a uniquely named file in dir from pattern.
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	MkdirAll(path string, perm fs.FileMode) error
	ReadDir(name string) ([]fs.DirEntry, error)
	Stat(name string) (fs.FileInfo, error)
}

// OS is the passthrough filesystem every call site defaults to.
var OS FS = osFS{}

// Default normalizes a possibly-nil FS option to OS.
func Default(fsys FS) FS {
	if fsys == nil {
		return OS
	}
	return fsys
}

// osFS implements FS directly on the os package.
type osFS struct{}

func (osFS) Open(name string) (File, error)   { return fixNil(os.Open(name)) }
func (osFS) Create(name string) (File, error) { return fixNil(os.Create(name)) }

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return fixNil(os.OpenFile(name, flag, perm))
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	return fixNil(os.CreateTemp(dir, pattern))
}

func (osFS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                   { return os.Remove(name) }
func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }
func (osFS) Stat(name string) (fs.FileInfo, error)      { return os.Stat(name) }

// fixNil keeps a failed open from producing a non-nil File interface
// wrapping a nil *os.File.
func fixNil(f *os.File, err error) (File, error) {
	if err != nil {
		return nil, err
	}
	return f, nil
}
