package footprint

import (
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"statefulcc/internal/vfs"
)

func TestTraceCanonicalAndDedupes(t *testing.T) {
	// Two insertion orders, duplicate keys mixed in: identical records out,
	// with the first write winning each key.
	a := NewTrace("u.mc")
	a.Add(KindGlobal, "g", 7)
	a.Add(KindCall, "f", 2)
	a.Add(KindCall, "f", 99) // dup: ignored
	a.AddSource("u.mc", []byte("src"))
	a.AddPipeline([]string{"p1", "p2"})

	b := NewTrace("u.mc")
	b.AddPipeline([]string{"p1", "p2"})
	b.AddSource("u.mc", []byte("src"))
	b.Add(KindCall, "f", 2)
	b.Add(KindGlobal, "g", 7)

	ra, rb := a.Finish(42), b.Finish(42)
	if !ra.Equal(rb) {
		t.Fatalf("insertion order changed the canonical record:\n%v\nvs\n%v", ra.Entries, rb.Entries)
	}
	if h, ok := ra.Get(KindCall, "f"); !ok || h != 2 {
		t.Fatalf("Get(call f) = %d, %v; want first-write value 2", h, ok)
	}
	for i := 1; i < len(ra.Entries); i++ {
		p, c := ra.Entries[i-1], ra.Entries[i]
		if c.Kind < p.Kind || (c.Kind == p.Kind && c.Name <= p.Name) {
			t.Fatalf("entries not strictly ascending: %v before %v", p, c)
		}
	}
}

func TestChangedVerdicts(t *testing.T) {
	src := []byte("func f() int { return 1; }")
	pipe := []string{"mem2reg", "dce"}
	tr := NewTrace("u.mc")
	tr.AddSource("u.mc", src)
	tr.AddPipeline(pipe)
	tr.Add(KindCall, "ext", 3) // link-scope: never in Changed
	rec := tr.Finish(1)

	if got := rec.Changed(src, HashStrings(pipe)); len(got) != 0 {
		t.Fatalf("identical inputs reported changed: %v", got)
	}
	if got := rec.Changed([]byte("edited"), HashStrings(pipe)); len(got) != 1 || got[0].Kind != KindSource {
		t.Fatalf("source edit verdict = %v, want one source entry", got)
	}
	if got := rec.Changed(src, HashStrings([]string{"mem2reg"})); len(got) != 1 || got[0].Kind != KindPipeline {
		t.Fatalf("pipeline change verdict = %v, want one pipeline entry", got)
	}
}

func TestDiff(t *testing.T) {
	old := &Record{Entries: []Entry{
		{KindSource, "u.mc", 1}, {KindCall, "dropped", 2}, {KindCall, "kept", 3},
	}}
	new := &Record{Entries: []Entry{
		{KindSource, "u.mc", 9}, {KindCall, "kept", 3}, {KindGlobal, "added", 4},
	}}
	old.Canon()
	new.Canon()
	got := Diff(old, new)
	want := map[string]bool{}
	for _, d := range got {
		want[d] = true
	}
	for _, expect := range []string{"~ source u.mc@", "- call dropped@", "+ global added@"} {
		found := false
		for _, d := range got {
			if strings.HasPrefix(d, expect) {
				found = true
			}
		}
		if !found {
			t.Fatalf("Diff missing %q; got %v", expect, got)
		}
	}
	if len(got) != 3 {
		t.Fatalf("Diff = %v, want exactly 3 deltas", got)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	tr := NewTrace("u.mc")
	tr.AddSource("u.mc", []byte("body"))
	tr.AddPipeline([]string{"a", "b"})
	tr.Add(KindFile, "cache/u.state", 0xAB)
	tr.Add(KindStat, "", 0) // empty name, zero hash: still encodable
	tr.Add(KindCall, "callee", 2)
	rec := tr.Finish(0xDEAD)

	enc := rec.AppendBinary(nil)
	if len(enc) != rec.EncodedSize() {
		t.Fatalf("EncodedSize %d != actual %d", rec.EncodedSize(), len(enc))
	}
	dec, err := DecodeBinary(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rec, dec) {
		t.Fatalf("round trip mismatch:\n%+v\nvs\n%+v", rec, dec)
	}
	if re := dec.AppendBinary(nil); string(re) != string(enc) {
		t.Fatal("re-encode not byte-identical")
	}
}

func TestCodecRejects(t *testing.T) {
	good := (&Record{DeclaredHash: 5, Entries: []Entry{
		{KindSource, "u", 1}, {KindCall, "f", 2},
	}}).AppendBinary(nil)
	if _, err := DecodeBinary(good); err != nil {
		t.Fatalf("canonical buffer rejected: %v", err)
	}

	mutate := func(name string, f func(b []byte) []byte) {
		b := append([]byte(nil), good...)
		b = f(b)
		if _, err := DecodeBinary(b); err == nil {
			t.Errorf("%s: corrupt buffer accepted", name)
		}
	}
	mutate("bad version", func(b []byte) []byte { b[0] = 9; return b })
	mutate("trailing byte", func(b []byte) []byte { return append(b, 0) })
	mutate("invalid kind", func(b []byte) []byte { b[10] = 0; return b })
	mutate("kind past max", func(b []byte) []byte { b[10] = byte(maxKind) + 1; return b })
	mutate("hostile count", func(b []byte) []byte { b[9] = 0xFF; return b })

	// Every strict prefix must be rejected: the codec consumes the whole
	// buffer or nothing.
	for i := 0; i < len(good); i++ {
		if _, err := DecodeBinary(good[:i]); err == nil {
			t.Fatalf("prefix of %d/%d bytes accepted", i, len(good))
		}
	}

	// Disorder and duplicates: swap the two entries / repeat one.
	swapped := (&Record{DeclaredHash: 5, Entries: []Entry{
		{KindCall, "f", 2}, {KindSource, "u", 1},
	}}).AppendBinary(nil)
	if _, err := DecodeBinary(swapped); err == nil {
		t.Error("out-of-order entries accepted")
	}
	dup := (&Record{DeclaredHash: 5, Entries: []Entry{
		{KindSource, "u", 1}, {KindSource, "u", 1},
	}}).AppendBinary(nil)
	if _, err := DecodeBinary(dup); err == nil {
		t.Error("duplicate entries accepted")
	}
}

func TestTraceFSRecordsReads(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.txt")
	content := []byte("hello footprint")
	if err := writeFile(path, content); err != nil {
		t.Fatal(err)
	}

	tr := NewTrace("u.mc")
	fsys := tr.FS(vfs.OS)

	f, err := fsys.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4) // small buffer: hash must accumulate across reads
	for {
		if _, err := f.Read(buf); err != nil {
			break
		}
	}
	f.Close()
	if _, err := fsys.Stat(path); err != nil {
		t.Fatal(err)
	}
	if _, err := fsys.ReadDir(dir); err != nil {
		t.Fatal(err)
	}

	rec := tr.Finish(1)
	if h, ok := rec.Get(KindFile, path); !ok || h != HashBytes(content) {
		t.Fatalf("file entry hash %016x, want incremental HashBytes %016x (ok=%v)", h, HashBytes(content), ok)
	}
	if _, ok := rec.Get(KindStat, path); !ok {
		t.Fatal("stat entry not recorded")
	}
	if _, ok := rec.Get(KindDir, dir); !ok {
		t.Fatal("readdir entry not recorded")
	}
}

func TestTraceFSCloseWithoutEOF(t *testing.T) {
	// A file closed before EOF still records, hashing what was read.
	dir := t.TempDir()
	path := filepath.Join(dir, "data.txt")
	if err := writeFile(path, []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	tr := NewTrace("u.mc")
	fsys := tr.FS(vfs.OS)
	f, err := fsys.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := f.Read(buf); err != nil {
		t.Fatal(err)
	}
	f.Close()
	rec := tr.Finish(1)
	if h, ok := rec.Get(KindFile, path); !ok || h != HashBytes([]byte("0123")) {
		t.Fatalf("partial-read hash %016x, want HashBytes of the 4 bytes read (ok=%v)", h, ok)
	}
}

func TestTraceConcurrentAdd(t *testing.T) {
	// Concurrent Adds with racing duplicates: no data race (run under
	// -race), deterministic size, one entry per key.
	tr := NewTrace("u.mc")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Add(KindCall, "shared", uint64(g)) // same key from all goroutines
				tr.Add(KindGlobal, names[i%len(names)], uint64(i))
			}
		}(g)
	}
	wg.Wait()
	rec := tr.Finish(1)
	if want := 1 + len(names); len(rec.Entries) != want {
		t.Fatalf("got %d entries, want %d (dedupe under concurrency)", len(rec.Entries), want)
	}
}

var names = []string{"g0", "g1", "g2", "g3", "g4"}

// writeFile is a tiny os.WriteFile stand-in through the vfs seam.
func writeFile(path string, data []byte) error {
	f, err := vfs.OS.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
