package footprint

import (
	"encoding/binary"
	"fmt"
)

// Binary layout (embedded in state files as a sized block, so the codec
// carries its own version byte but no magic):
//
//	u8  codecVersion (1)
//	u64 DeclaredHash (little-endian)
//	uv  entry count
//	per entry: u8 kind | uv len(name) | name bytes | u64 hash
//
// The encoding is canonical: entries strictly ascending by (Kind, Name).
// DecodeBinary rejects anything else — unknown versions, invalid kinds,
// duplicates, disorder, trailing bytes — and validates the entry count
// against the bytes actually present before allocating, so a hostile
// count cannot force a large allocation. The round-trip law the fuzzer
// pins: any buffer DecodeBinary accepts re-encodes to the same bytes.

const codecVersion = 1

// minEntryBytes is the smallest possible encoded entry (kind byte + 1-byte
// name length of 0 + 8 hash bytes); the decoder caps the declared entry
// count at remaining/minEntryBytes.
const minEntryBytes = 1 + 1 + 8

// AppendBinary appends the canonical encoding of r to dst. The record
// must be canonical (Canon, or produced by Trace.Finish / DecodeBinary).
func (r *Record) AppendBinary(dst []byte) []byte {
	dst = append(dst, codecVersion)
	dst = binary.LittleEndian.AppendUint64(dst, r.DeclaredHash)
	dst = binary.AppendUvarint(dst, uint64(len(r.Entries)))
	for _, e := range r.Entries {
		dst = append(dst, byte(e.Kind))
		dst = binary.AppendUvarint(dst, uint64(len(e.Name)))
		dst = append(dst, e.Name...)
		dst = binary.LittleEndian.AppendUint64(dst, e.Hash)
	}
	return dst
}

// DecodeBinary parses a canonical footprint encoding, consuming the whole
// buffer. Name strings are copied (the buffer may be a transient read).
func DecodeBinary(data []byte) (*Record, error) {
	if len(data) < 1+8 {
		return nil, fmt.Errorf("footprint: short buffer (%d bytes)", len(data))
	}
	if data[0] != codecVersion {
		return nil, fmt.Errorf("footprint: unknown codec version %d", data[0])
	}
	rec := &Record{DeclaredHash: binary.LittleEndian.Uint64(data[1:9])}
	data = data[9:]
	n, used := binary.Uvarint(data)
	if used <= 0 || used != uvarintLen(n) {
		// A padded (non-minimal) varint re-encodes shorter than it arrived;
		// rejecting it keeps the accepted language exactly the canonical one.
		return nil, fmt.Errorf("footprint: bad entry count varint")
	}
	data = data[used:]
	if n > uint64(len(data)/minEntryBytes) {
		return nil, fmt.Errorf("footprint: entry count %d exceeds remaining %d bytes", n, len(data))
	}
	rec.Entries = make([]Entry, 0, n)
	for i := uint64(0); i < n; i++ {
		if len(data) < 1 {
			return nil, fmt.Errorf("footprint: entry %d truncated", i)
		}
		kind := Kind(data[0])
		if kind == 0 || kind > maxKind {
			return nil, fmt.Errorf("footprint: entry %d: invalid kind %d", i, data[0])
		}
		data = data[1:]
		nameLen, used := binary.Uvarint(data)
		if used <= 0 || used != uvarintLen(nameLen) || nameLen > uint64(len(data)-used) {
			return nil, fmt.Errorf("footprint: entry %d: bad name length", i)
		}
		data = data[used:]
		name := string(data[:nameLen])
		data = data[nameLen:]
		if len(data) < 8 {
			return nil, fmt.Errorf("footprint: entry %d: truncated hash", i)
		}
		e := Entry{Kind: kind, Name: name, Hash: binary.LittleEndian.Uint64(data[:8])}
		data = data[8:]
		if m := len(rec.Entries); m > 0 {
			prev := rec.Entries[m-1]
			if e.Kind < prev.Kind || (e.Kind == prev.Kind && e.Name <= prev.Name) {
				return nil, fmt.Errorf("footprint: entry %d (%s) out of canonical order", i, e)
			}
		}
		rec.Entries = append(rec.Entries, e)
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("footprint: %d trailing bytes", len(data))
	}
	return rec, nil
}

// EncodedSize returns the exact byte length AppendBinary would produce.
func (r *Record) EncodedSize() int {
	n := 1 + 8 + uvarintLen(uint64(len(r.Entries)))
	for _, e := range r.Entries {
		n += 1 + uvarintLen(uint64(len(e.Name))) + len(e.Name) + 8
	}
	return n
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
