// Package footprint records what a unit's compilation actually read — the
// dependency footprint — and derives the *true* invalidation set from it.
//
// The build system's declared invalidation model (content-hash the unit's
// source, reuse the cached object on a match) is an assumption; this
// package is the instrument that checks it on every build, the
// always-correct-mode discipline of LaForge and of "Detecting Build
// Dependency Errors in Incremental Builds" (PAPERS.md). During a compile a
// Trace gathers:
//
//   - the unit's own source bytes (KindSource) and the pipeline
//     configuration (KindPipeline) — the *invalidating* entries: if either
//     ground-truth hash moved, the cached object is stale;
//   - cross-unit symbol reads resolved at link time (KindCall with the call
//     arity as its hash, KindGlobal) — the *link-scope* entries: re-checked
//     by the linker on every build, recorded so `minibuild deps` can print
//     the real cross-unit dependency graph;
//   - filesystem reads observed through the vfs seam (KindFile/KindStat/
//     KindDir, recorded by the wrapper from Trace.FS) — *advisory* entries:
//     dormancy-state loads and similar reads that influence only how fast
//     the compile runs, never its output, and therefore must not trigger
//     recompiles.
//
// Ground-truth hashing (HashBytes/HashStrings) is deliberately a different
// algorithm (FNV-1a) from the fingerprint hasher the declared channel uses,
// and the declared channel is overridable in tests (a lying invalidator):
// a bug or lie on the declared side cannot also corrupt the check. A unit
// whose declared hash says "unchanged" while an invalidating footprint
// entry moved is a missed invalidation; the reverse is a redundant
// recompile. See docs/ROBUSTNESS.md for the taxonomy.
package footprint

import (
	"fmt"
	"sort"
)

// Kind classifies a footprint entry.
type Kind uint8

// Entry kinds. The zero value is invalid so a zeroed entry can never pass
// decoding.
const (
	// KindSource is the unit's own source bytes (hash: HashBytes of the
	// compiled source). Invalidating.
	KindSource Kind = 1
	// KindPipeline is the pass-pipeline configuration (hash: HashStrings of
	// the pass list). Invalidating.
	KindPipeline Kind = 2
	// KindFile is a file read through the recording FS during the compile
	// (hash: HashBytes of the bytes actually read). Advisory.
	KindFile Kind = 3
	// KindStat is a Stat observed through the recording FS (hash: size and
	// mtime). Advisory.
	KindStat Kind = 4
	// KindDir is a ReadDir observed through the recording FS (hash: the
	// sorted entry names). Advisory.
	KindDir Kind = 5
	// KindCall is an external function the unit calls; the hash is the call
	// arity, which the linker re-checks against the callee. Link-scope.
	KindCall Kind = 6
	// KindGlobal is an external global the unit addresses. Link-scope.
	KindGlobal Kind = 7

	maxKind = KindGlobal
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindSource:
		return "source"
	case KindPipeline:
		return "pipeline"
	case KindFile:
		return "file"
	case KindStat:
		return "stat"
	case KindDir:
		return "dir"
	case KindCall:
		return "call"
	case KindGlobal:
		return "global"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Invalidating reports whether entries of this kind participate in
// invalidation: a changed invalidating entry means the cached object is
// stale.
func (k Kind) Invalidating() bool { return k == KindSource || k == KindPipeline }

// LinkScope reports whether entries of this kind are re-resolved (and
// arity-checked) by the linker on every build — recorded for dependency
// reporting, not for recompile decisions.
func (k Kind) LinkScope() bool { return k == KindCall || k == KindGlobal }

// Advisory reports whether entries of this kind reflect reads that affect
// only compile speed (dormancy-state files and similar), never output.
func (k Kind) Advisory() bool {
	return k == KindFile || k == KindStat || k == KindDir
}

// Entry is one recorded dependency.
type Entry struct {
	Kind Kind
	// Name identifies the dependency: the unit name for KindSource, a path
	// for the filesystem kinds, a symbol for KindCall/KindGlobal.
	Name string
	// Hash is the ground-truth content hash observed at read time.
	Hash uint64
}

// String renders "kind name@hash" for diagnostics.
func (e Entry) String() string {
	return fmt.Sprintf("%s %s@%016x", e.Kind, e.Name, e.Hash)
}

// Record is one unit's footprint from one compile, in canonical form:
// entries sorted by (Kind, Name) with no duplicates.
type Record struct {
	// DeclaredHash is the content hash the *declared* invalidation channel
	// reported for the compiled source — recorded verbatim (lies included)
	// so an offline check can detect the paradox "declared says unchanged,
	// ground truth says changed".
	DeclaredHash uint64
	// Entries is the canonical dependency list.
	Entries []Entry
}

// Canon sorts entries by (Kind, Name) and drops duplicate keys (first
// occurrence wins), establishing the canonical form Encode requires.
func (r *Record) Canon() {
	sort.SliceStable(r.Entries, func(i, j int) bool {
		a, b := r.Entries[i], r.Entries[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Name < b.Name
	})
	out := r.Entries[:0]
	for _, e := range r.Entries {
		if n := len(out); n > 0 && out[n-1].Kind == e.Kind && out[n-1].Name == e.Name {
			continue
		}
		out = append(out, e)
	}
	r.Entries = out
}

// Get looks up the hash recorded for (kind, name).
func (r *Record) Get(kind Kind, name string) (uint64, bool) {
	for _, e := range r.Entries {
		if e.Kind == kind && e.Name == name {
			return e.Hash, true
		}
	}
	return 0, false
}

// Source returns the unit's recorded source entry.
func (r *Record) Source() (Entry, bool) {
	for _, e := range r.Entries {
		if e.Kind == KindSource {
			return e, true
		}
	}
	return Entry{}, false
}

// Filter returns the entries whose kind satisfies pred, in canonical order.
func (r *Record) Filter(pred func(Kind) bool) []Entry {
	var out []Entry
	for _, e := range r.Entries {
		if pred(e.Kind) {
			out = append(out, e)
		}
	}
	return out
}

// Changed derives the true invalidation verdict: the invalidating entries
// whose ground-truth hashes no longer match the given current source bytes
// and pipeline hash. An empty result means the recorded compile's inputs
// are byte-identical to the current ones, so its object is still valid.
func (r *Record) Changed(src []byte, pipelineHash uint64) []Entry {
	var out []Entry
	for _, e := range r.Entries {
		switch e.Kind {
		case KindSource:
			if HashBytes(src) != e.Hash {
				out = append(out, e)
			}
		case KindPipeline:
			if pipelineHash != e.Hash {
				out = append(out, e)
			}
		}
	}
	return out
}

// Equal reports whether two records are identical (canonical forms
// compared field by field; nil equals nil).
func (r *Record) Equal(o *Record) bool {
	if r == nil || o == nil {
		return r == o
	}
	if r.DeclaredHash != o.DeclaredHash || len(r.Entries) != len(o.Entries) {
		return false
	}
	for i := range r.Entries {
		if r.Entries[i] != o.Entries[i] {
			return false
		}
	}
	return true
}

// Diff describes the entry-level delta from old to new: "+ e" added,
// "- e" removed, "~ e(old→new)" hash changed. Both records must be
// canonical. Used by `minibuild deps` to show footprint drift between
// builds.
func Diff(old, new *Record) []string {
	var out []string
	i, j := 0, 0
	oe, ne := old.Entries, new.Entries
	for i < len(oe) || j < len(ne) {
		switch {
		case i >= len(oe):
			out = append(out, "+ "+ne[j].String())
			j++
		case j >= len(ne):
			out = append(out, "- "+oe[i].String())
			i++
		default:
			a, b := oe[i], ne[j]
			switch {
			case a.Kind == b.Kind && a.Name == b.Name:
				if a.Hash != b.Hash {
					out = append(out, fmt.Sprintf("~ %s %s@%016x→%016x", a.Kind, a.Name, a.Hash, b.Hash))
				}
				i++
				j++
			case a.Kind < b.Kind || (a.Kind == b.Kind && a.Name < b.Name):
				out = append(out, "- "+a.String())
				i++
			default:
				out = append(out, "+ "+b.String())
				j++
			}
		}
	}
	return out
}

// --- ground-truth hashing ----------------------------------------------------

// FNV-1a 64-bit parameters. Deliberately not the fingerprint package's
// hasher: the check channel must not share failure modes with the declared
// channel it is checking.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// HashBytes is the ground-truth content hash of a byte string, with the
// length folded in so prefixes never collide with their extensions.
func HashBytes(b []byte) uint64 {
	h := uint64(fnvOffset)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	h ^= uint64(len(b))
	h *= fnvPrime
	return h
}

// HashString is HashBytes over a string without copying.
func HashString(s string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	h ^= uint64(len(s))
	h *= fnvPrime
	return h
}

// HashStrings hashes a string list unambiguously (each element's hash is
// folded with its position). Used for the pipeline-configuration entry.
func HashStrings(ss []string) uint64 {
	h := uint64(fnvOffset)
	for i, s := range ss {
		h ^= HashString(s)
		h *= fnvPrime
		h ^= uint64(i)
		h *= fnvPrime
	}
	h ^= uint64(len(ss))
	h *= fnvPrime
	return h
}

// HashUint64 folds a machine word into a ground-truth hash (Stat entries).
func HashUint64(vs ...uint64) uint64 {
	h := uint64(fnvOffset)
	for _, v := range vs {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xFF
			h *= fnvPrime
		}
	}
	return h
}
