package footprint_test

// The differential soundness battery — the tentpole's acceptance proof.
//
// Oracle: a stateless builder compiling every snapshot from scratch. For
// every suite profile × edit stream, an enforce-footprint stateful builder
// (persisting state to disk) must produce byte-identical linked programs
// (by disassembly) at every commit, and honest builds must cross-check
// every cache decision with zero missed invalidations (TestFootprintGuard,
// `make footprint-guard`).
//
// The adversarial case: a lying invalidator (Options.ContentHashHook
// freezing each unit's first-seen hash) makes the declared channel claim
// "unchanged" forever. The very next build after an edit must flag the
// edited units as footprint.missed, and under enforcement the output must
// still match the stateless oracle — the traced footprint overrides the
// lie.
//
// A -race-gated stability check pins per-unit footprints (non-advisory
// entries) identical across 1/4/16 workers: shared reads dedupe once per
// unit no matter the schedule.

import (
	"reflect"
	"testing"

	"statefulcc/internal/buildsys"
	"statefulcc/internal/codegen"
	"statefulcc/internal/compiler"
	"statefulcc/internal/footprint"
	"statefulcc/internal/obs"
	"statefulcc/internal/project"
	"statefulcc/internal/workload"
)

// batteryHistory builds the snapshot sequence for one profile × stream.
func batteryHistory(p workload.Profile, kind workload.StreamKind, commits int) []project.Snapshot {
	base := workload.Generate(p)
	hist := workload.GenerateHistoryStream(base, p.Seed*13, commits, workload.DefaultCommitOptions(), kind)
	return append([]project.Snapshot{base}, hist.Commits...)
}

func statelessDis(t *testing.T, snap project.Snapshot) string {
	t.Helper()
	b, err := buildsys.NewBuilder(buildsys.Options{Mode: compiler.ModeStateless})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := b.Build(snap)
	if err != nil {
		t.Fatal(err)
	}
	return codegen.DisassembleProgram(rep.Program)
}

func TestDifferentialBattery(t *testing.T) {
	profiles := workload.QuickSuite()
	if !testing.Short() {
		profiles = append(profiles, workload.StandardSuite()[3]) // netstack
	}
	streams := []workload.StreamKind{
		workload.StreamDefault, workload.StreamRenameWave, workload.StreamInterfaceChurn,
	}
	for _, p := range profiles {
		for _, kind := range streams {
			p, kind := p, kind
			t.Run(p.Name+"/"+kind.String(), func(t *testing.T) {
				t.Parallel()
				snaps := batteryHistory(p, kind, 4)
				enforced, err := buildsys.NewBuilder(buildsys.Options{
					Mode: compiler.ModeStateful, StateDir: t.TempDir(),
					Footprint: true, EnforceFootprint: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				for i, snap := range snaps {
					rep, err := enforced.Build(snap)
					if err != nil {
						t.Fatalf("commit %d: %v", i, err)
					}
					if got, want := codegen.DisassembleProgram(rep.Program), statelessDis(t, snap); got != want {
						t.Fatalf("commit %d: enforce-footprint output diverged from the stateless oracle", i)
					}
					if len(rep.FootprintMissed) != 0 {
						t.Fatalf("commit %d: honest build reported missed invalidations: %v", i, rep.FootprintMissed)
					}
				}
			})
		}
	}
}

// lyingHook freezes each unit's first-seen declared hash: after an edit the
// declared channel still reports the pre-edit hash, the classic broken
// invalidator.
func lyingHook() func(string, []byte, uint64) uint64 {
	frozen := map[string]uint64{}
	return func(unit string, _ []byte, honest uint64) uint64 {
		if h, ok := frozen[unit]; ok {
			return h
		}
		frozen[unit] = honest
		return honest
	}
}

// editedUnits lists the units whose bytes differ between two snapshots.
func editedUnits(a, b project.Snapshot) map[string]bool {
	out := map[string]bool{}
	for unit, src := range b {
		if old, ok := a[unit]; !ok || string(old) != string(src) {
			out[unit] = true
		}
	}
	return out
}

func TestLyingInvalidatorCaughtNextBuild(t *testing.T) {
	p := workload.QuickSuite()[0]
	snaps := batteryHistory(p, workload.StreamDefault, 2)
	base, edited := snaps[0], snaps[1]
	want := editedUnits(base, edited)
	if len(want) == 0 {
		t.Fatal("history edited nothing; the lie would be unobservable")
	}

	// Detection only (no enforcement): the missed invalidation must be
	// flagged on the very next build, and the stale object really served.
	b, err := buildsys.NewBuilder(buildsys.Options{
		Mode: compiler.ModeStateful, StateDir: t.TempDir(),
		Footprint: true, ContentHashHook: lyingHook(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(base); err != nil {
		t.Fatal(err)
	}
	rep, err := b.Build(edited)
	if err != nil {
		t.Fatal(err)
	}
	flagged := map[string]bool{}
	for _, u := range rep.FootprintMissed {
		flagged[u] = true
	}
	for u := range want {
		if !flagged[u] {
			t.Errorf("edited unit %s not flagged as missed invalidation (flagged: %v)", u, rep.FootprintMissed)
		}
	}
	m := b.Metrics()
	if m[obs.CtrFootprintMissed] == 0 {
		t.Fatal("footprint.missed counter is zero after a caught lie")
	}
	found := false
	for _, w := range rep.Warnings {
		if containsAll(w, "missed invalidation") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no missed-invalidation warning surfaced: %v", rep.Warnings)
	}

	// Enforcement: same lie, but the output must match the stateless oracle
	// anyway — the footprint overrides the declared channel.
	e, err := buildsys.NewBuilder(buildsys.Options{
		Mode: compiler.ModeStateful, StateDir: t.TempDir(),
		Footprint: true, EnforceFootprint: true, ContentHashHook: lyingHook(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Build(base); err != nil {
		t.Fatal(err)
	}
	erep, err := e.Build(edited)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := codegen.DisassembleProgram(erep.Program), statelessDis(t, edited); got != want {
		t.Fatal("enforce-footprint build shipped a stale object despite the traced footprint")
	}
	if len(erep.FootprintMissed) == 0 {
		t.Fatal("enforcement silently corrected the lie without flagging it")
	}
}

// TestFootprintGuard is the CI tripwire (`make footprint-guard`): honest
// suite builds with tracing on must cross-check cached units and produce
// zero missed invalidations and zero redundant recompiles — the declared
// channel and the traced ground truth must agree exactly.
func TestFootprintGuard(t *testing.T) {
	profiles := workload.QuickSuite()
	profiles = append(profiles, workload.StandardSuite()[2]) // mathkit
	if !testing.Short() {
		profiles = append(profiles, workload.MegaProfile())
	}
	for _, p := range profiles {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			snaps := batteryHistory(p, workload.StreamDefault, 3)
			b, err := buildsys.NewBuilder(buildsys.Options{
				Mode: compiler.ModeStateful, StateDir: t.TempDir(), Footprint: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, snap := range snaps {
				rep, err := b.Build(snap)
				if err != nil {
					t.Fatalf("commit %d: %v", i, err)
				}
				if len(rep.FootprintMissed) != 0 || len(rep.FootprintRedundant) != 0 {
					t.Fatalf("commit %d: honest build disagreed with its own footprint: missed %v redundant %v",
						i, rep.FootprintMissed, rep.FootprintRedundant)
				}
			}
			m := b.Metrics()
			if m[obs.CtrFootprintChecked] == 0 {
				t.Fatal("footprint.checked is zero; the cross-check never ran and the guard is vacuous")
			}
			if m[obs.CtrFootprintMissed] != 0 || m[obs.CtrFootprintRedundant] != 0 {
				t.Fatalf("guard counters: checked %d missed %d redundant %d",
					m[obs.CtrFootprintChecked], m[obs.CtrFootprintMissed], m[obs.CtrFootprintRedundant])
			}
		})
	}
}

// nonAdvisory strips the advisory entries (state-file reads whose hashes
// embed timing EWMAs and are legitimately nondeterministic) so worker-count
// comparisons see only the deterministic footprint.
func nonAdvisory(r *footprint.Record) []footprint.Entry {
	return r.Filter(func(k footprint.Kind) bool { return !k.Advisory() })
}

// TestFootprintWorkerStability pins per-unit footprints stable across
// worker counts: the recording FS and trace dedupe shared reads once per
// unit regardless of schedule. Run under -race via `make race`.
func TestFootprintWorkerStability(t *testing.T) {
	p := workload.StandardSuite()[1] // parserlib: enough units to saturate 16 workers
	snap := workload.Generate(p)

	perWorkers := map[int]map[string]*footprint.Record{}
	for _, workers := range []int{1, 4, 16} {
		b, err := buildsys.NewBuilder(buildsys.Options{
			Mode: compiler.ModeStateful, StateDir: t.TempDir(),
			Footprint: true, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.Build(snap); err != nil {
			t.Fatal(err)
		}
		perWorkers[workers] = b.Footprints()
	}

	ref := perWorkers[1]
	if len(ref) != len(snap) {
		t.Fatalf("baseline retained %d footprints for %d units", len(ref), len(snap))
	}
	for _, workers := range []int{4, 16} {
		got := perWorkers[workers]
		if len(got) != len(ref) {
			t.Fatalf("workers=%d retained %d footprints, want %d", workers, len(got), len(ref))
		}
		for unit, rref := range ref {
			rgot, ok := got[unit]
			if !ok {
				t.Fatalf("workers=%d missing footprint for %s", workers, unit)
			}
			if rgot.DeclaredHash != rref.DeclaredHash {
				t.Fatalf("workers=%d unit %s: declared hash drifted", workers, unit)
			}
			if !reflect.DeepEqual(nonAdvisory(rgot), nonAdvisory(rref)) {
				t.Fatalf("workers=%d unit %s: footprint differs from single-worker baseline:\n%v\nvs\n%v",
					workers, unit, nonAdvisory(rgot), nonAdvisory(rref))
			}
			// Advisory entries must reference only the unit's own state
			// file — cross-unit contamination would mean a shared trace.
			for _, e := range rgot.Entries {
				if e.Kind.Advisory() && !containsAll(e.Name, sanitizedBase(unit)) {
					t.Fatalf("workers=%d unit %s: advisory entry for foreign path %s", workers, unit, e.Name)
				}
			}
		}
	}
}

// sanitizedBase mirrors the state-store's filename sanitization closely
// enough to recognize a unit's own state path.
func sanitizedBase(unit string) string {
	out := make([]rune, 0, len(unit))
	for _, r := range unit {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-', r == '_':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

func containsAll(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
