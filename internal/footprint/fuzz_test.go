package footprint

import (
	"bytes"
	"testing"
)

// FuzzFootprintDecode pins the decoder's three safety properties against
// arbitrary input: it never panics, it never allocates an entry slice
// larger than the input could encode (hostile counts are capped before
// allocation), and every accepted buffer is canonical — re-encoding the
// decoded record reproduces the input byte for byte.
func FuzzFootprintDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{codecVersion})
	seed := (&Record{DeclaredHash: 0xDEADBEEF, Entries: []Entry{
		{KindSource, "u.mc", 1},
		{KindPipeline, "pipeline", 2},
		{KindFile, "cache/u.state", 3},
		{KindCall, "callee", 2},
		{KindGlobal, "g0", 0},
	}}).AppendBinary(nil)
	f.Add(seed)
	f.Add(seed[:len(seed)-1])
	f.Add(append(append([]byte(nil), seed...), 0))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodeBinary(data)
		if err != nil {
			return
		}
		if len(rec.Entries) > len(data)/minEntryBytes {
			t.Fatalf("decoded %d entries from %d bytes: allocation bound violated",
				len(rec.Entries), len(data))
		}
		re := rec.AppendBinary(nil)
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted buffer is not canonical:\n in: %x\nout: %x", data, re)
		}
		// Accepted records must themselves satisfy the canonical-order
		// invariant Canon would establish.
		check := &Record{DeclaredHash: rec.DeclaredHash, Entries: append([]Entry(nil), rec.Entries...)}
		check.Canon()
		if !rec.Equal(check) {
			t.Fatal("accepted record not in canonical form")
		}
	})
}
