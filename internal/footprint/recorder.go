package footprint

import (
	"io"
	"io/fs"
	"sync"

	"statefulcc/internal/vfs"
)

// Trace accumulates one unit's footprint during its compile. It is safe
// for concurrent use: the worker pool may hand the recording FS to code
// that reads from several goroutines, and the same (kind, name) observed
// more than once — a shared file read twice, a symbol referenced from two
// call sites — is recorded exactly once (first observation wins), so
// shared reads are never double-counted.
type Trace struct {
	unit string

	mu      sync.Mutex
	entries map[entryKey]uint64
}

type entryKey struct {
	kind Kind
	name string
}

// NewTrace starts an empty footprint trace for one unit's compile.
func NewTrace(unit string) *Trace {
	return &Trace{unit: unit, entries: make(map[entryKey]uint64)}
}

// Unit returns the unit this trace records.
func (t *Trace) Unit() string { return t.unit }

// Add records one dependency observation. The first hash recorded for a
// (kind, name) pair sticks; later observations of the same pair are
// ignored (the compile read whatever it read first).
func (t *Trace) Add(kind Kind, name string, hash uint64) {
	t.mu.Lock()
	k := entryKey{kind, name}
	if _, ok := t.entries[k]; !ok {
		t.entries[k] = hash
	}
	t.mu.Unlock()
}

// AddSource records the unit's own source bytes (invalidating).
func (t *Trace) AddSource(unit string, src []byte) {
	t.Add(KindSource, unit, HashBytes(src))
}

// AddPipeline records the pass-pipeline configuration (invalidating).
func (t *Trace) AddPipeline(pipeline []string) {
	t.Add(KindPipeline, "pipeline", HashStrings(pipeline))
}

// Len returns the number of distinct entries recorded so far.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}

// Finish snapshots the trace into a canonical Record stamped with the
// declared-channel hash observed for the compiled source. The trace stays
// usable (a later Finish sees any entries added in between).
func (t *Trace) Finish(declaredHash uint64) *Record {
	t.mu.Lock()
	rec := &Record{DeclaredHash: declaredHash, Entries: make([]Entry, 0, len(t.entries))}
	for k, h := range t.entries {
		rec.Entries = append(rec.Entries, Entry{Kind: k.kind, Name: k.name, Hash: h})
	}
	t.mu.Unlock()
	rec.Canon()
	return rec
}

// FS wraps a filesystem so every successful read lands in the trace as an
// advisory entry: Open records the bytes actually read from the handle
// (hashed incrementally, charged at Close or EOF), Stat records size and
// mtime, ReadDir records the entry-name listing. Writes and failed calls
// pass through unrecorded — the footprint is what the compile *read*.
func (t *Trace) FS(inner vfs.FS) vfs.FS {
	return &traceFS{inner: vfs.Default(inner), t: t}
}

type traceFS struct {
	inner vfs.FS
	t     *Trace
}

func (f *traceFS) Open(name string) (vfs.File, error) {
	h, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &traceFile{File: h, t: f.t, path: name, hash: fnvOffset}, nil
}

// Create, OpenFile, and CreateTemp are write-side: pass through.
func (f *traceFS) Create(name string) (vfs.File, error) { return f.inner.Create(name) }

func (f *traceFS) OpenFile(name string, flag int, perm fs.FileMode) (vfs.File, error) {
	return f.inner.OpenFile(name, flag, perm)
}

func (f *traceFS) CreateTemp(dir, pattern string) (vfs.File, error) {
	return f.inner.CreateTemp(dir, pattern)
}

func (f *traceFS) Rename(oldpath, newpath string) error { return f.inner.Rename(oldpath, newpath) }
func (f *traceFS) Remove(name string) error             { return f.inner.Remove(name) }

func (f *traceFS) MkdirAll(path string, perm fs.FileMode) error {
	return f.inner.MkdirAll(path, perm)
}

func (f *traceFS) ReadDir(name string) ([]fs.DirEntry, error) {
	des, err := f.inner.ReadDir(name)
	if err != nil {
		return nil, err
	}
	h := uint64(fnvOffset)
	for _, de := range des { // os.ReadDir returns sorted entries
		h ^= HashString(de.Name())
		h *= fnvPrime
	}
	h ^= uint64(len(des))
	h *= fnvPrime
	f.t.Add(KindDir, name, h)
	return des, nil
}

func (f *traceFS) Stat(name string) (fs.FileInfo, error) {
	fi, err := f.inner.Stat(name)
	if err != nil {
		return nil, err
	}
	f.t.Add(KindStat, name, HashUint64(uint64(fi.Size()), uint64(fi.ModTime().UnixNano())))
	return fi, nil
}

// traceFile hashes bytes as they are read and charges one KindFile entry
// for the whole handle when reading finishes (EOF or Close). The hash
// covers exactly the bytes the compile consumed, in order.
type traceFile struct {
	vfs.File
	t    *Trace
	path string

	mu       sync.Mutex
	hash     uint64
	n        int
	recorded bool
}

func (f *traceFile) Read(p []byte) (int, error) {
	n, err := f.File.Read(p)
	f.mu.Lock()
	for _, c := range p[:n] {
		f.hash ^= uint64(c)
		f.hash *= fnvPrime
	}
	f.n += n
	if err == io.EOF {
		f.recordLocked()
	}
	f.mu.Unlock()
	return n, err
}

func (f *traceFile) Close() error {
	f.mu.Lock()
	f.recordLocked()
	f.mu.Unlock()
	return f.File.Close()
}

// recordLocked charges the entry once per handle; callers hold f.mu.
func (f *traceFile) recordLocked() {
	if f.recorded {
		return
	}
	f.recorded = true
	h := f.hash
	h ^= uint64(f.n)
	h *= fnvPrime
	f.t.Add(KindFile, f.path, h)
}
