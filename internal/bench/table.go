// Package bench is the evaluation harness: it runs the paper's experiments
// over the synthetic project suite and renders each table and figure as
// text. Every experiment in DESIGN.md §5 has a function here, a
// testing.B wrapper in bench_test.go, and a CLI entry in cmd/experiments.
package bench

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: the rows the paper's table or
// figure would plot.
type Table struct {
	// ID is the experiment identifier (e.g. "T2", "F1").
	ID string
	// Title describes the experiment.
	Title string
	// Columns are the header names.
	Columns []string
	// Rows hold the data.
	Rows [][]string
	// Notes carry caveats (what is simulated, expected shape).
	Notes []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)

	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Markdown renders the table as a GitHub-flavored markdown table, used by
// the EXPERIMENTS.md generator.
func (t *Table) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s: %s\n\n", t.ID, t.Title)
	sb.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat(" --- |", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	sb.WriteByte('\n')
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "*%s*\n\n", n)
	}
	return sb.String()
}

func ms(ns int64) string { return fmt.Sprintf("%.2f", float64(ns)/1e6) }

func pct(x float64) string { return fmt.Sprintf("%.2f%%", 100*x) }

func kb(n int) string { return fmt.Sprintf("%.1f", float64(n)/1024) }
